package overd

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"
)

// BalancerSweepRow is one cell of the balancer laboratory: one registered
// balancer racing one case on one machine under one fault plan, judged by
// the virtual clock.
type BalancerSweepRow struct {
	Balancer string `json:"balancer"`
	Case     string `json:"case"`
	Machine  string `json:"machine"`
	// Fault names the perturbation: "none" or "straggler" (the
	// Table5FaultPlan mid-run compute straggler).
	Fault       string  `json:"fault"`
	Nodes       int     `json:"nodes"`
	TotalTime   float64 `json:"total_time"`
	TimePerStep float64 `json:"time_per_step"`
	PctConnect  float64 `json:"pct_dcf3d"`
	// PctWait is the share of rank 0's run spent blocked — the
	// load-imbalance symptom the step balancers try to shrink.
	PctWait    float64 `json:"pct_wait"`
	Rebalances int     `json:"rebalances"`
	// Moved is the total gridpoint volume the balancer's repartitions
	// shipped (the cost side of its ledger).
	Moved int     `json:"moved_points"`
	Tau   float64 `json:"tau"`
}

// balancerSweepFo picks the load factor each balancer races under: the
// dynamic scheme needs a finite trigger (the Table 5 value would be 5; 2 is
// twitchier, so short smoke sweeps still fire), everything else runs with
// the factor disabled and its own defaults.
func balancerSweepFo(name string) float64 {
	if name == "dynamic" {
		return 2
	}
	return math.Inf(1)
}

// RunBalancerSweep races every registered balancer across the laboratory
// matrix — two paper cases, two machine models, clean and straggler-faulted
// — and returns one row per combination, in deterministic order (cases ×
// machines × faults in fixed order, balancers sorted by name). Every run is
// itself deterministic, so repeated sweeps are byte-identical once
// rendered.
func RunBalancerSweep(opt Options) ([]BalancerSweepRow, error) {
	opt = opt.withDefaults()
	steps := opt.Steps
	if steps < 4 {
		steps = 4 // the step balancers need check intervals to fire
	}
	cases := []struct {
		name  string
		mk    func(float64) *Case
		nodes int
	}{
		{"airfoil", OscillatingAirfoil, 12},
		{"storesep", StoreSeparation, 16},
	}
	machines := []Machine{SP2(), SP()}
	faults := []struct {
		name string
		plan *FaultPlan
	}{
		{"none", nil},
		{"straggler", Table5FaultPlan()},
	}

	var out []BalancerSweepRow
	for _, c := range cases {
		for _, m := range machines {
			for _, f := range faults {
				for _, name := range BalancerNames() {
					opt.logf("balancer sweep: %s on %s, fault %s, balancer %s...",
						c.name, m.Name, f.name, name)
					res, err := Run(Config{
						Case: c.mk(opt.Scale), Nodes: c.nodes, Machine: m,
						Steps: steps, Fo: balancerSweepFo(name),
						CheckInterval: 2, Balancer: name,
						Faults: f.plan, Metrics: opt.Metrics,
					})
					if err != nil {
						return nil, fmt.Errorf("balancer sweep: %s on %s (%s, %s): %w",
							c.name, m.Name, f.name, name, err)
					}
					out = append(out, BalancerSweepRow{
						Balancer: name, Case: c.name, Machine: m.Name,
						Fault: f.name, Nodes: c.nodes,
						TotalTime:   res.TotalTime,
						TimePerStep: res.TimePerStep(),
						PctConnect:  res.PctConnect(),
						PctWait:     res.PctWait(),
						Rebalances:  res.Rebalances,
						Moved:       res.MovedPoints,
						Tau:         res.Tau,
					})
				}
			}
		}
	}
	return out, nil
}

// EmitBalancerSweepJSON writes sweep rows as tagged JSON lines (table id
// "balancers"), the same format as the golden tables.
func EmitBalancerSweepJSON(w io.Writer, rows []BalancerSweepRow) error {
	return EmitRowsJSON(w, "balancers", rows)
}

// FprintBalancerSweep writes the sweep as a comparison table grouped by
// case/machine/fault, one line per balancer.
func FprintBalancerSweep(w io.Writer, rows []BalancerSweepRow) {
	fmt.Fprintln(w, "Balancer sweep (virtual clock; lower total time wins)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Case\tMachine\tFault\tBalancer\tTime/step\t%DCF3D\t%wait\tRebal\tMoved\tτ")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s/%d\t%s\t%s\t%s\t%s\t%s\t%s\t%d\t%d\t%s\n",
			r.Case, r.Nodes, r.Machine, r.Fault, r.Balancer,
			fmtStat("%.3f", r.TimePerStep), fmtStat("%.0f%%", r.PctConnect),
			fmtStat("%.0f%%", r.PctWait), r.Rebalances, r.Moved,
			fmtStat("%.3f", r.Tau))
	}
	tw.Flush()
}
