// Package overd is a Go reproduction of the parallel dynamic overset-grid
// system of Wissink & Meakin, "On Parallel Implementations of Dynamic
// Overset Grid Methods" (SC 1997): a structured Chimera flow solver
// (OVERFLOW analog) with diagonalized approximate-factorization implicit
// time stepping, a distributed domain-connectivity solution (DCF3D analog)
// with asynchronous donor searches, forwarding and nth-level restart,
// six-degree-of-freedom grid motion, the paper's static and dynamic load
// balancing schemes (Algorithms 1 and 2), and the §5 adaptive Cartesian
// scheme with the grouping strategy (Algorithm 3).
//
// Every run executes the real algorithms — real grids, real implicit CFD
// arithmetic, real donor searches, real message passing between goroutine
// "processors" — while virtual clocks measure them against calibrated
// models of the paper's machines (IBM SP2, IBM SP, Cray YMP/864), so the
// published parallel-performance experiments can be regenerated on modern
// hardware. See DESIGN.md for the substitution rationale and EXPERIMENTS.md
// for paper-versus-measured results.
//
// Quick start:
//
//	cfg := overd.Config{
//		Case:    overd.OscillatingAirfoil(1.0),
//		Nodes:   12,
//		Machine: overd.SP2(),
//		Steps:   10,
//		Fo:      math.Inf(1), // static load balancing only
//	}
//	res, err := overd.Run(cfg)
//	fmt.Println(res.MflopsPerNode(), res.PctConnect())
package overd

import (
	"overd/internal/adapt"
	"overd/internal/balance"
	"overd/internal/cases"
	"overd/internal/core"
	"overd/internal/fault"
	"overd/internal/flow"
	"overd/internal/geom"
	"overd/internal/machine"
	"overd/internal/metrics"
	"overd/internal/trace"
)

// Machine is a performance model of one of the paper's computers.
type Machine = machine.Model

// SP2 returns the NASA Ames IBM SP2 model (POWER2 nodes, 40 MB/s switch).
func SP2() Machine { return machine.SP2() }

// SP returns the CEWES IBM SP model (P2SC nodes, 110 MB/s switch).
func SP() Machine { return machine.SP() }

// YMP864 returns the single-processor Cray YMP/864 model (Table 6 baseline).
func YMP864() Machine { return machine.YMP864() }

// C90 returns the Cray C90 single-head model.
func C90() Machine { return machine.C90() }

// MachineByName resolves "SP2", "SP", "YMP" or "C90".
func MachineByName(name string) (Machine, error) { return machine.ByName(name) }

// Case is a complete moving-body overset problem: grid system, connectivity
// configuration, motion, and flow conditions.
type Case = cases.Case

// OscillatingAirfoil builds the paper's §4.1 problem: a NACA 0012 airfoil
// pitching α(t) = 5°·sin(πt/2) under three overset grids (64K composite
// points at scale 1, IGBP ratio ≈ 44e-3), M∞ = 0.8, Re = 1e6.
func OscillatingAirfoil(scale float64) *Case { return cases.OscAirfoil(scale) }

// DescendingDeltaWing builds the paper's §4.2 problem: four grids, ~1M
// composite points at scale 1, IGBP ratio ≈ 33e-3, descent at M = 0.064,
// viscous in all directions, no turbulence model.
func DescendingDeltaWing(scale float64) *Case { return cases.DeltaWing(scale) }

// StoreSeparation builds the paper's §4.3 problem: sixteen grids (ten
// store, three wing/pylon, three Cartesian backgrounds), ~0.81M composite
// points at scale 1, IGBP ratio ≈ 66e-3, M∞ = 1.6 with Baldwin-Lomax on
// the curvilinear grids and a prescribed separation trajectory.
func StoreSeparation(scale float64) *Case { return cases.StoreSep(scale) }

// StoreSeparationFree is StoreSeparation with the store's trajectory
// computed from integrated aerodynamic loads through the 6-DOF model
// rather than prescribed (the paper notes the free motion changes parallel
// performance negligibly).
func StoreSeparationFree(scale float64) *Case { return cases.StoreSepFree(scale) }

// Config selects the case, processor count, machine model, step count and
// load-balancing behavior of a run.
type Config = core.Config

// Result carries a run's measured statistics: virtual wall time, per-phase
// breakdown, Mflops/node, %-time in the connectivity solution, and the
// final processor distribution.
type Result = core.Result

// StepStats is the per-timestep phase breakdown.
type StepStats = core.StepStats

// Run executes a case on the simulated machine. It is deterministic: the
// same configuration produces bit-identical virtual times and flow fields.
func Run(cfg Config) (*Result, error) { return core.Run(cfg) }

// BalancerNames lists the registered load balancers ("static", "dynamic",
// "sfc", "diffusive", ...) in sorted order; any of them is a valid
// Config.Balancer value.
func BalancerNames() []string { return balance.Names() }

// ValidateBalancer reports whether name selects a registered balancer and
// whether it is consistent with the given load-balance factor fo (e.g.
// "dynamic" needs a finite fo > 0, "static" rejects one). An empty name is
// always valid: Run resolves it from fo.
func ValidateBalancer(name string, fo float64) error {
	return balance.ValidateSelection(name, fo)
}

// InterruptError is the error Run returns when Config.Interrupt stopped the
// run at a step boundary; Unwrap exposes the hook's error so callers can
// classify the cause (e.g. context.Canceled vs context.DeadlineExceeded).
type InterruptError = core.InterruptError

// EstimateSerialTime models the single-processor execution time of the
// given floating-point workload on a serial machine (the Cray YMP baseline
// of Table 6).
func EstimateSerialTime(flops float64, m Machine) float64 {
	return core.EstimateSerialTime(flops, m)
}

// TraceRecorder collects per-rank virtual-time events when attached through
// Config.Trace: every compute interval, message, wait and barrier on every
// rank. After the run it provides the wait/idle decomposition
// (TraceRecorder.Summarize), the critical path through the message/barrier
// dependency graph (TraceRecorder.CriticalPath), and Chrome trace-event
// JSON export for chrome://tracing or Perfetto (WriteChromeTrace). A nil
// Config.Trace records nothing and leaves virtual times bit-identical.
type TraceRecorder = trace.Recorder

// TraceSummary is a recorded run's per-rank busy/wait decomposition.
type TraceSummary = trace.Summary

// TraceCriticalPath is the dependency chain that set a run's makespan.
type TraceCriticalPath = trace.CriticalPath

// NewTraceRecorder returns an empty recorder ready to set as Config.Trace.
func NewTraceRecorder() *TraceRecorder { return trace.NewRecorder() }

// MetricsRegistry is a deterministic registry of typed counters, gauges and
// histograms keyed by rank/phase/grid, populated by the runtime and
// numerical layers when attached through Config.Metrics and exportable as
// Prometheus text (WritePrometheus) or JSON (WriteJSON). A nil
// Config.Metrics records nothing and leaves virtual times bit-identical.
type MetricsRegistry = metrics.Registry

// NewMetricsRegistry returns an empty registry ready to set as
// Config.Metrics.
func NewMetricsRegistry() *MetricsRegistry { return metrics.New() }

// FaultPlan is a deterministic fault schedule perturbing a run: per-rank
// compute stragglers, degraded links, seeded message loss and scheduled
// rank crashes, all expressed against the virtual clock (set Config.Faults;
// see package fault). A run under a plan with crashes recovers through
// periodic checkpoints (Config.CheckpointEvery) — the crashed rank's work
// is re-spread over the survivors and the recovery cost lands in the
// Result. A nil plan leaves the run bit-identical to an unfaulted one.
type FaultPlan = fault.Plan

// FaultStraggler, FaultLink, FaultLoss and FaultCrash are the plan's
// building blocks.
type (
	FaultStraggler = fault.Straggler
	FaultLink      = fault.LinkFault
	FaultLoss      = fault.Loss
	FaultCrash     = fault.Crash
)

// ParseFaultPlan decodes and validates a JSON fault plan.
func ParseFaultPlan(data []byte) (*FaultPlan, error) { return fault.ParsePlan(data) }

// LoadFaultPlan reads, decodes and validates a JSON fault-plan file.
func LoadFaultPlan(path string) (*FaultPlan, error) { return fault.LoadPlan(path) }

// SampleSpec selects field and surface extraction from a run's final
// solution (set Config.Sample).
type SampleSpec = core.SampleSpec

// FieldSample is one sampled flow state (position, density, pressure,
// Mach number, Chimera iblank state).
type FieldSample = core.FieldSample

// SurfaceSample is one wall point with its pressure coefficient.
type SurfaceSample = core.SurfaceSample

// Vec3 is a world-frame position or direction.
type Vec3 = geom.Vec3

// Box is an axis-aligned bounding box.
type Box = geom.Box

// Freestream is the nondimensional far-field flow state.
type Freestream = flow.Freestream

// The §5 adaptive Cartesian scheme: off-body systems of seven-parameter
// Cartesian bricks with proximity/error-driven refinement, search-free
// connectivity, and Algorithm-3 grouping onto nodes.

// AdaptiveConfig controls off-body Cartesian system generation.
type AdaptiveConfig = adapt.Config

// AdaptiveSystem is a generated off-body brick system.
type AdaptiveSystem = adapt.System

// AdaptiveRunner advances a real flow solution over an adaptive system with
// the coarse-grained group-parallel strategy of §5.
type AdaptiveRunner = adapt.Runner

// GenerateAdaptive builds an off-body Cartesian system for the given
// desired-refinement-level indicator.
func GenerateAdaptive(cfg AdaptiveConfig, want func(p Vec3) int) *AdaptiveSystem {
	return adapt.Generate(cfg, want)
}

// ProximityIndicator returns the §5 initial refinement rule: finest level
// inside the near-body bounds, decaying with distance.
func ProximityIndicator(near Box, maxLevel int) func(Vec3) int {
	return adapt.ProximityIndicator(near, maxLevel)
}

// NewAdaptiveRunner groups an adaptive system over nodes (Algorithm 3 when
// grouping is true; round-robin baseline otherwise) and prepares the
// coarse-grain parallel solver.
func NewAdaptiveRunner(sys *AdaptiveSystem, nodes int, fs Freestream, grouping bool) (*AdaptiveRunner, error) {
	return adapt.NewRunner(sys, nodes, fs, grouping)
}

// DecompositionSurface returns the total subdomain surface-point count of
// the static partition of a case over the given node count, with either the
// prime-factor minimal-surface rule or 1-D slabs — the communication-surface
// measure the paper's Fig. 4 subdivision minimizes.
func DecompositionSurface(c *Case, nodes int, slabs bool) (int, error) {
	plan, err := balance.Static(c.GridSizes(), nodes)
	if err != nil {
		return 0, err
	}
	if slabs {
		balance.SubdividePlanSlabs(plan, c.GridDims())
	} else {
		balance.SubdividePlan(plan, c.GridDims())
	}
	total := 0
	for _, p := range plan.Parts {
		total += p.Box.SurfacePoints()
	}
	return total, nil
}
