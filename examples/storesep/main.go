// Storesep runs the paper's §4.3 wing/pylon/finned-store separation event
// and writes the computed flow out for plotting: the store's near-field
// Mach number field on a cutting plane (the paper's Fig. 9 left) and the
// surface pressure coefficient on the store body (Fig. 9 right), plus the
// prescribed separation trajectory.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"overd"
)

func main() {
	scale := flag.Float64("scale", 0.1, "gridpoint budget multiplier (1 = paper's 0.81M)")
	nodes := flag.Int("nodes", 16, "simulated SP2 nodes")
	steps := flag.Int("steps", 10, "timesteps")
	outdir := flag.String("out", ".", "output directory")
	flag.Parse()

	c := overd.StoreSeparation(*scale)
	fmt.Printf("%s: %d grids, %d points\n", c.Name, len(c.Sys.Grids), c.Sys.NPoints())

	res, err := overd.Run(overd.Config{
		Case:    c,
		Nodes:   *nodes,
		Machine: overd.SP2(),
		Steps:   *steps,
		Fo:      math.Inf(1),
		Sample: &overd.SampleSpec{
			FieldGrid:   13, // near-store Cartesian background
			FieldK:      -1,
			SurfaceGrid: 0, // store body wall
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Mflops/node %.1f, %%DCF3D %.0f%%, %d IGBPs (ratio %.1fe-3; paper 66e-3), %d orphans\n",
		res.MflopsPerNode(), res.PctConnect(), res.IGBPs,
		1000*float64(res.IGBPs)/float64(c.Sys.NPoints()), res.Orphans)

	// Mach field on the z≈0 plane of the near background (Fig. 9 left).
	ff, err := os.Create(*outdir + "/store_mach_field.csv")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(ff, "x,y,z,mach,rho,p,iblank")
	nWrote := 0
	for _, s := range res.Field {
		if math.Abs(s.Z) > 0.25 {
			continue
		}
		fmt.Fprintf(ff, "%.5f,%.5f,%.5f,%.5f,%.5f,%.5f,%d\n",
			s.X, s.Y, s.Z, s.Mach, s.Rho, s.P, s.IBlank)
		nWrote++
	}
	ff.Close()
	fmt.Printf("wrote %d Mach-field samples to store_mach_field.csv\n", nWrote)

	// Surface pressure on the store body (Fig. 9 right).
	sf, err := os.Create(*outdir + "/store_surface_cp.csv")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(sf, "x,y,z,cp")
	for _, s := range res.Surface {
		fmt.Fprintf(sf, "%.5f,%.5f,%.5f,%.5f\n", s.X, s.Y, s.Z, s.Cp)
	}
	sf.Close()
	fmt.Printf("wrote %d surface-pressure samples to store_surface_cp.csv\n", len(res.Surface))

	// Separation trajectory (prescribed path, sampled per step).
	tf, err := os.Create(*outdir + "/store_trajectory.csv")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintln(tf, "t,dx,dz,pitch_deg")
	dt := c.DT
	for i := 0; i <= *steps; i++ {
		t := float64(i) * dt
		fmt.Fprintf(tf, "%.4f,%.6f,%.6f,%.4f\n",
			t, -0.5*0.004*t*t, -0.5*0.02*t*t, -0.01*t*180/math.Pi)
	}
	tf.Close()
	fmt.Println("wrote store_trajectory.csv")
}
