// Adaptive demonstrates the paper's §5 solution-adaption scheme on an
// X-38-like lifting body (the Fig. 12 scenario): the off-body domain is
// automatically partitioned into Cartesian bricks refined by proximity to
// the near-body region, a real flow solution advances over the brick system
// with the coarse-grain group-parallel strategy (Algorithm 3), and the
// system is then re-adapted from a solution-error indicator, refining where
// gradients are strong and coarsening elsewhere.
package main

import (
	"flag"
	"fmt"
	"log"

	"overd"
)

func main() {
	nodes := flag.Int("nodes", 8, "simulated SP2 nodes (one group per node)")
	steps := flag.Int("steps", 4, "timesteps between adapt cycles")
	flag.Parse()

	// X-38 analog: a blunt lifting body about 2 units long.
	body := overd.Box{
		Min: overd.Vec3{X: -1.1, Y: -0.45, Z: -0.8},
		Max: overd.Vec3{X: 1.1, Y: 0.35, Z: 0.8},
	}
	cfg := overd.AdaptiveConfig{
		Domain: overd.Box{
			Min: overd.Vec3{X: -8, Y: -8, Z: -8},
			Max: overd.Vec3{X: 8, Y: 8, Z: 8},
		},
		H0:         1.0,
		BrickCells: 6,
		MaxLevel:   3,
	}

	// a) Default off-body Cartesian set: refinement by proximity (Fig 12a).
	sys := overd.GenerateAdaptive(cfg, overd.ProximityIndicator(body, cfg.MaxLevel))
	fmt.Printf("initial off-body system: %d bricks, %d points\n",
		len(sys.Bricks), sys.TotalPoints())
	fmt.Printf("  bricks per level: %v\n", sys.LevelCounts())

	fs := overd.Freestream{Mach: 0.6}
	ru, err := overd.NewAdaptiveRunner(sys, *nodes, fs, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  Algorithm-3 grouping over %d nodes: group sizes ", *nodes)
	for _, g := range ru.Groups {
		fmt.Printf("%d ", len(g))
	}
	fmt.Printf("\n  connectivity edges cut by the grouping: %d\n", ru.CutEdges)

	// Advance the flow (real implicit Euler on every brick).
	stats, err := ru.Run(overd.SP2(), *steps, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	var cross, local int
	for _, s := range stats {
		cross += s.BytesCross
		local += s.BytesLocal
	}
	fmt.Printf("\nafter %d steps: intergrid traffic %d B cross-node, %d B intra-node\n",
		*steps, cross, local)
	fmt.Printf("  (Cartesian connectivity is search-free: donors resolve by index arithmetic)\n")

	// b) Re-adapt from the solution-error estimate (Fig 12b): refinement
	// follows the flow, coarsening falls out of the regeneration. In the
	// full scheme the near-body curvilinear solution feeds the off-body
	// gradients; this standalone demo stands that in with the body's wake
	// footprint imposed on the brick solution.
	wake := overd.Box{
		Min: overd.Vec3{X: 1.1, Y: -1.0, Z: -1.0},
		Max: overd.Vec3{X: 5.0, Y: 1.0, Z: 1.0},
	}
	ru.ImposeDisturbance(wake, 0.35)
	ind := ru.ErrorIndicator(overd.ProximityIndicator(body, cfg.MaxLevel), 0.05)
	sys2 := sys.Adapt(ind)
	fmt.Printf("\nrefined system after adapt cycle: %d bricks, %d points\n",
		len(sys2.Bricks), sys2.TotalPoints())
	fmt.Printf("  bricks per level: %v\n", sys2.LevelCounts())

	// Transfer the solution onto the new system and keep going.
	ru2, err := ru.Regrid(sys2, *nodes, true)
	if err != nil {
		log.Fatal(err)
	}
	stats2, err := ru2.Run(overd.SP2(), 2, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncontinued %d steps on the adapted system (%.4f s/step virtual)\n",
		len(stats2), stats2[len(stats2)-1].Time)
}
