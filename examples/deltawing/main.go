// Deltawing runs the paper's §4.2 descending delta-wing case across the
// published processor partitions and reports the Table 3 statistics,
// demonstrating how static load balancing (Algorithm 1) assigns processor
// groups to the four component grids.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"

	"overd"
)

func main() {
	scale := flag.Float64("scale", 0.05, "gridpoint budget multiplier (1 = paper's ~1M)")
	steps := flag.Int("steps", 4, "timesteps per partition")
	flag.Parse()

	fmt.Println("descending delta wing (paper §4.2) on the simulated IBM SP2")
	var base *overd.Result
	for _, nodes := range []int{7, 12, 26} {
		c := overd.DescendingDeltaWing(*scale)
		res, err := overd.Run(overd.Config{
			Case:    c,
			Nodes:   nodes,
			Machine: overd.SP2(),
			Steps:   *steps,
			Fo:      math.Inf(1),
		})
		if err != nil {
			log.Fatal(err)
		}
		if base == nil {
			base = res
		}
		fmt.Printf("\n%2d nodes: processors per grid %v (τ = %.3f)\n", nodes, res.Np, res.Tau)
		fmt.Printf("   avg gridpoints/node %d\n", c.Sys.NPoints()/nodes)
		fmt.Printf("   Mflops/node %.1f   speedup %.2f   %%DCF3D %.0f%%\n",
			res.MflopsPerNode(), base.TotalTime/res.TotalTime, res.PctConnect())
		fmt.Printf("   module times/step: flow %.3fs  motion %.3fs  connect %.3fs\n",
			res.FlowTime/float64(*steps), res.MotionTime/float64(*steps),
			res.ConnectTime/float64(*steps))
	}
}
