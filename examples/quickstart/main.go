// Quickstart: run the paper's 2-D oscillating-airfoil case on a simulated
// 12-node IBM SP2 and print the per-step module breakdown — the smallest
// complete use of the overd public API.
package main

import (
	"fmt"
	"log"
	"math"

	"overd"
)

func main() {
	// Build the §4.1 case at 30% of the paper's gridpoint budget so the
	// example finishes in seconds (pass 1.0 for the full 64K points).
	c := overd.OscillatingAirfoil(0.3)
	fmt.Printf("case %q: %d component grids, %d composite gridpoints\n",
		c.Name, len(c.Sys.Grids), c.Sys.NPoints())

	res, err := overd.Run(overd.Config{
		Case:    c,
		Nodes:   12,
		Machine: overd.SP2(),
		Steps:   8,
		Fo:      math.Inf(1), // static load balancing only (as in Table 1)
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nprocessors per grid (Algorithm 1): %v   tolerance factor τ = %.3f\n",
		res.Np, res.Tau)
	fmt.Printf("intergrid boundary points: %d (ratio %.1fe-3)\n",
		res.IGBPs, 1000*float64(res.IGBPs)/float64(c.Sys.NPoints()))

	fmt.Println("\nstep   flow(s)  motion(s)  connect(s)  [virtual seconds on the SP2]")
	for i, s := range res.Steps {
		fmt.Printf("%4d   %7.4f  %9.4f  %10.4f\n", i+1, s.Flow, s.Motion, s.Connect)
	}

	fmt.Printf("\naverage Mflops/node: %.1f\n", res.MflopsPerNode())
	fmt.Printf("%% time in connectivity (DCF3D): %.1f%%\n", res.PctConnect())
	fmt.Printf("time per step: %.3f s\n", res.TimePerStep())
}
