package overd

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"overd/internal/report"
)

// Options controls an experiment reproduction run.
type Options struct {
	// Scale multiplies every case's gridpoint budget (1 = paper size).
	Scale float64
	// Steps is the number of measured timesteps per run (the paper's
	// statistics are steady-state averages; restart-mode connectivity
	// dominates from step 2 on).
	Steps int
	// Log, when non-nil, receives progress lines.
	Log io.Writer
	// Metrics, when non-nil, is attached to every run (Config.Metrics).
	// Each run resets it, so after a table sweep it holds the last run's
	// series; attaching it never changes virtual times or table values.
	Metrics *MetricsRegistry
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1
	}
	if o.Steps <= 0 {
		o.Steps = 4
	}
	return o
}

func (o Options) logf(format string, args ...any) {
	if o.Log != nil {
		fmt.Fprintf(o.Log, format+"\n", args...)
	}
}

// ModuleSpeedup is one point of the paper's per-module speedup figures
// (Figs. 5, 7, 10, 11): the flow solver (OVERFLOW), connectivity (DCF3D)
// and combined speedups relative to the experiment's base node count.
type ModuleSpeedup struct {
	Nodes    int
	Flow     float64
	Connect  float64
	Combined float64
}

// PerfRow is one row of the paper's performance tables (1, 3, 4): per-node
// Mflop rate, parallel speedup, and connectivity share, per machine.
type PerfRow struct {
	Nodes       int
	PtsPerNode  int
	MflopsSP2   float64
	MflopsSP    float64
	SpeedupSP2  float64
	SpeedupSP   float64
	PctDCF3DSP2 float64
	PctDCF3DSP  float64
}

// PerfTable bundles a performance table with its speedup-figure series.
type PerfTable struct {
	Title  string
	Rows   []PerfRow
	FigSP2 []ModuleSpeedup
	FigSP  []ModuleSpeedup
}

// ratio returns num/den, or NaN when the denominator is zero — a baseline
// or module time of zero (degenerate zero-step runs) must not leak an
// untagged Inf/NaN into a speedup column. Renderers show NaN as "—" and
// the JSON emitter nulls it to 0, so degenerate statistics are visible as
// such instead of crashing the encoder or printing "NaN%".
func ratio(num, den float64) float64 {
	if den == 0 {
		return math.NaN()
	}
	return num / den
}

// fmtStat formats a statistic with the given verb, rendering non-finite
// values (degenerate ratios) as an em dash.
func fmtStat(format string, v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "—"
	}
	return fmt.Sprintf(format, v)
}

// runPerfTable executes a case constructor over node counts on both
// machines and assembles the paper-style table.
func runPerfTable(title string, mk func(float64) *Case, nodes []int, opt Options) (*PerfTable, error) {
	opt = opt.withDefaults()
	t := &PerfTable{Title: title}
	results := map[string][]*Result{}
	for _, m := range []Machine{SP2(), SP()} {
		for _, n := range nodes {
			opt.logf("%s: %s %d nodes...", title, m.Name, n)
			c := mk(opt.Scale)
			res, err := Run(Config{
				Case: c, Nodes: n, Machine: m, Steps: opt.Steps,
				Fo: math.Inf(1), Metrics: opt.Metrics,
			})
			if err != nil {
				return nil, fmt.Errorf("%s on %d %s nodes: %w", title, n, m.Name, err)
			}
			results[m.Name] = append(results[m.Name], res)
		}
	}
	base2 := results["SP2"][0]
	baseS := results["SP"][0]
	np := 0
	{
		c := mk(opt.Scale)
		np = c.Sys.NPoints()
	}
	for i, n := range nodes {
		r2 := results["SP2"][i]
		rs := results["SP"][i]
		t.Rows = append(t.Rows, PerfRow{
			Nodes:       n,
			PtsPerNode:  np / n,
			MflopsSP2:   r2.MflopsPerNode(),
			MflopsSP:    rs.MflopsPerNode(),
			SpeedupSP2:  ratio(base2.TotalTime, r2.TotalTime),
			SpeedupSP:   ratio(baseS.TotalTime, rs.TotalTime),
			PctDCF3DSP2: r2.PctConnect(),
			PctDCF3DSP:  rs.PctConnect(),
		})
		t.FigSP2 = append(t.FigSP2, ModuleSpeedup{
			Nodes:    n,
			Flow:     ratio(base2.FlowTime, r2.FlowTime),
			Connect:  ratio(base2.ConnectTime, r2.ConnectTime),
			Combined: ratio(base2.TotalTime, r2.TotalTime),
		})
		t.FigSP = append(t.FigSP, ModuleSpeedup{
			Nodes:    n,
			Flow:     ratio(baseS.FlowTime, rs.FlowTime),
			Connect:  ratio(baseS.ConnectTime, rs.ConnectTime),
			Combined: ratio(baseS.TotalTime, rs.TotalTime),
		})
	}
	return t, nil
}

// Table1Nodes are the paper's oscillating-airfoil processor partitions.
var Table1Nodes = []int{6, 9, 12, 18, 24}

// RunTable1 reproduces Table 1 and Figure 5: the 2-D oscillating airfoil
// on 6-24 nodes of the SP2 and SP.
func RunTable1(opt Options) (*PerfTable, error) {
	return runPerfTable("Table 1 (2D oscillating airfoil)", OscillatingAirfoil, Table1Nodes, opt)
}

// Table3Nodes are the paper's delta-wing partitions.
var Table3Nodes = []int{7, 12, 26, 55}

// RunTable3 reproduces Table 3 and Figure 7: the descending delta wing.
func RunTable3(opt Options) (*PerfTable, error) {
	return runPerfTable("Table 3 (descending delta wing)", DescendingDeltaWing, Table3Nodes, opt)
}

// Table4Nodes are the paper's finned-store partitions.
var Table4Nodes = []int{16, 18, 22, 28, 35, 42, 52, 61}

// RunTable4 reproduces Table 4 and Figure 10: the wing/pylon/finned-store
// separation with static load balancing.
func RunTable4(opt Options) (*PerfTable, error) {
	return runPerfTable("Table 4 (finned-store separation)", StoreSeparation, Table4Nodes, opt)
}

// ScaleupRow is one row of Table 2: the airfoil scale-up study.
type ScaleupRow struct {
	Name        string
	Nodes       int
	Points      int
	PtsPerNode  int
	SecStepSP2  float64
	SecStepSP   float64
	PctDCF3DSP2 float64
	PctDCF3DSP  float64
}

// RunTable2 reproduces Table 2: the oscillating-airfoil scale-up study —
// the coarsened (x1/4 points, 3 nodes), original (12 nodes) and refined
// (x4 points, 48 nodes) grids hold gridpoints per node fixed near 5000.
func RunTable2(opt Options) ([]ScaleupRow, error) {
	opt = opt.withDefaults()
	rows := []struct {
		name  string
		scale float64
		nodes int
	}{
		{"Coarsened", 0.25 * opt.Scale, 3},
		{"Original", 1 * opt.Scale, 12},
		{"Refined", 4 * opt.Scale, 48},
	}
	var out []ScaleupRow
	for _, rw := range rows {
		row := ScaleupRow{Name: rw.name, Nodes: rw.nodes}
		for _, m := range []Machine{SP2(), SP()} {
			opt.logf("Table 2: %s on %s...", rw.name, m.Name)
			c := OscillatingAirfoil(rw.scale)
			res, err := Run(Config{Case: c, Nodes: rw.nodes, Machine: m,
				Steps: opt.Steps, Fo: math.Inf(1), Metrics: opt.Metrics})
			if err != nil {
				return nil, err
			}
			row.Points = c.Sys.NPoints()
			row.PtsPerNode = row.Points / rw.nodes
			if m.Name == "SP2" {
				row.SecStepSP2 = res.TimePerStep()
				row.PctDCF3DSP2 = res.PctConnect()
			} else {
				row.SecStepSP = res.TimePerStep()
				row.PctDCF3DSP = res.PctConnect()
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// Table5Nodes are the partitions of the dynamic-load-balance comparison.
var Table5Nodes = []int{16, 18, 28, 52}

// Table5Row compares static and dynamic (fo=5) load balancing for the
// store-separation case on the SP2 (Table 5 and Fig. 11).
type Table5Row struct {
	Nodes          int
	PctDCFStatic   float64
	PctDCFDynamic  float64
	DCFSpeedupStat float64
	DCFSpeedupDyn  float64
	// Combined speedups expose the paper's conclusion that the dynamic
	// scheme costs more overall than it saves.
	CombinedStat float64
	CombinedDyn  float64
	FlowStat     float64
	FlowDyn      float64
}

// RunTable5 reproduces Table 5 and Figure 11: static versus dynamic load
// balancing (fo = 5) for the finned-store case on the SP2.
func RunTable5(opt Options) ([]Table5Row, error) {
	opt = opt.withDefaults()
	steps := opt.Steps
	if steps < 6 {
		steps = 6 // the dynamic scheme needs check intervals to fire
	}
	run := func(nodes int, fo float64) (*Result, error) {
		c := StoreSeparation(opt.Scale)
		return Run(Config{Case: c, Nodes: nodes, Machine: SP2(), Steps: steps,
			Fo: fo, CheckInterval: 3, Metrics: opt.Metrics})
	}
	var out []Table5Row
	var baseStat, baseDyn *Result
	for _, n := range Table5Nodes {
		opt.logf("Table 5: %d nodes static...", n)
		rs, err := run(n, math.Inf(1))
		if err != nil {
			return nil, err
		}
		opt.logf("Table 5: %d nodes dynamic fo=5...", n)
		rd, err := run(n, 5)
		if err != nil {
			return nil, err
		}
		if baseStat == nil {
			baseStat, baseDyn = rs, rd
		}
		out = append(out, Table5Row{
			Nodes:          n,
			PctDCFStatic:   rs.PctConnect(),
			PctDCFDynamic:  rd.PctConnect(),
			DCFSpeedupStat: ratio(baseStat.ConnectTime, rs.ConnectTime),
			DCFSpeedupDyn:  ratio(baseDyn.ConnectTime, rd.ConnectTime),
			CombinedStat:   ratio(baseStat.TotalTime, rs.TotalTime),
			CombinedDyn:    ratio(baseDyn.TotalTime, rd.TotalTime),
			FlowStat:       ratio(baseStat.FlowTime, rs.FlowTime),
			FlowDyn:        ratio(baseDyn.FlowTime, rd.FlowTime),
		})
	}
	return out, nil
}

// Table5FaultPlan returns the perturbation of the robustness headline
// experiment: rank 1 computes at one third of its rated speed from
// timestep 2 until the end of the run — the virtual-machine analog of a
// node sharing its CPU with a rogue daemon mid-job.
func Table5FaultPlan() *FaultPlan {
	return &FaultPlan{
		Seed:       1,
		Stragglers: []FaultStraggler{{Rank: 1, Factor: 3, FromStep: 2}},
	}
}

// Table5FaultedRow compares how the static and dynamic (fo = 5) load
// balancing schemes absorb a mid-run compute straggler: the slowdown each
// scheme suffers relative to its own clean run, the connectivity share
// under fault, and how often the dynamic scheme repartitioned while
// perturbed. The paper's Table 5 verdict — dynamic balancing costs more
// than it saves — holds for its balanced runs; this sweep probes whether a
// genuinely imbalanced machine changes the answer.
type Table5FaultedRow struct {
	Nodes int
	// SlowdownStat and SlowdownDyn are faulted-over-clean total virtual
	// time under each scheme (1 = the straggler was fully hidden).
	SlowdownStat float64
	SlowdownDyn  float64
	// PctDCFStat and PctDCFDyn are the connectivity shares under fault.
	PctDCFStat float64
	PctDCFDyn  float64
	// RebalancesDyn counts the Algorithm-2 repartitions the dynamic
	// scheme fired during the faulted run.
	RebalancesDyn int
}

// RunTable5Faulted re-runs the Table 5 static-versus-dynamic sweep under
// the Table5FaultPlan straggler (the robustness headline experiment).
func RunTable5Faulted(opt Options) ([]Table5FaultedRow, error) {
	return runTable5Faulted(opt, Table5Nodes)
}

func runTable5Faulted(opt Options, nodes []int) ([]Table5FaultedRow, error) {
	opt = opt.withDefaults()
	steps := opt.Steps
	if steps < 6 {
		steps = 6 // the dynamic scheme needs check intervals to fire
	}
	run := func(n int, fo float64, plan *FaultPlan) (*Result, error) {
		c := StoreSeparation(opt.Scale)
		return Run(Config{Case: c, Nodes: n, Machine: SP2(), Steps: steps,
			Fo: fo, CheckInterval: 3, Faults: plan, Metrics: opt.Metrics})
	}
	plan := Table5FaultPlan()
	var out []Table5FaultedRow
	for _, n := range nodes {
		opt.logf("Table 5 faulted: %d nodes static clean/straggler...", n)
		cs, err := run(n, math.Inf(1), nil)
		if err != nil {
			return nil, err
		}
		fs, err := run(n, math.Inf(1), plan)
		if err != nil {
			return nil, err
		}
		opt.logf("Table 5 faulted: %d nodes dynamic fo=5 clean/straggler...", n)
		cd, err := run(n, 5, nil)
		if err != nil {
			return nil, err
		}
		fd, err := run(n, 5, plan)
		if err != nil {
			return nil, err
		}
		out = append(out, Table5FaultedRow{
			Nodes:         n,
			SlowdownStat:  ratio(fs.TotalTime, cs.TotalTime),
			SlowdownDyn:   ratio(fd.TotalTime, cd.TotalTime),
			PctDCFStat:    fs.PctConnect(),
			PctDCFDyn:     fd.PctConnect(),
			RebalancesDyn: fd.Rebalances,
		})
	}
	return out, nil
}

// Table6Nodes are the wallclock-speedup partitions of Table 6.
var Table6Nodes = []int{18, 28, 42, 61}

// Table6Row is one row of the Cray-YMP wallclock comparison: overall and
// per-node speedups in "YMP units" (1 unit = the same computation on a
// single YMP/864 processor).
type Table6Row struct {
	Nodes       int
	OverallSP2  float64
	OverallSP   float64
	PerNodeSP2  float64
	PerNodeSP   float64
	YMPTimeStep float64
}

// RunTable6 reproduces Table 6: run-time speedup of the finned-store case
// over a single-processor Cray YMP/864.
func RunTable6(opt Options) ([]Table6Row, error) {
	opt = opt.withDefaults()
	var out []Table6Row
	for _, n := range Table6Nodes {
		row := Table6Row{Nodes: n}
		for _, m := range []Machine{SP2(), SP()} {
			opt.logf("Table 6: %d nodes on %s...", n, m.Name)
			c := StoreSeparation(opt.Scale)
			res, err := Run(Config{Case: c, Nodes: n, Machine: m,
				Steps: opt.Steps, Fo: math.Inf(1), Metrics: opt.Metrics})
			if err != nil {
				return nil, err
			}
			ympT := EstimateSerialTime(res.Flops, YMP864())
			overall := ratio(ympT, res.TotalTime)
			if m.Name == "SP2" {
				row.OverallSP2 = overall
				row.PerNodeSP2 = overall / float64(n)
			} else {
				row.OverallSP = overall
				row.PerNodeSP = overall / float64(n)
			}
			row.YMPTimeStep = ratio(ympT, float64(len(res.Steps)))
		}
		out = append(out, row)
	}
	return out, nil
}

// FprintPerfTable writes a PerfTable in the paper's layout.
func FprintPerfTable(w io.Writer, t *PerfTable) {
	fmt.Fprintf(w, "%s\n", t.Title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Nodes\tPts/node\tMflops/node SP2\tSP\tSpeedup SP2\tSP\t%DCF3D SP2\tSP")
	for _, r := range t.Rows {
		fmt.Fprintf(tw, "%d\t%d\t%.1f\t%.1f\t%s\t%s\t%s\t%s\n",
			r.Nodes, r.PtsPerNode, r.MflopsSP2, r.MflopsSP,
			fmtStat("%.2f", r.SpeedupSP2), fmtStat("%.2f", r.SpeedupSP),
			fmtStat("%.0f%%", r.PctDCF3DSP2), fmtStat("%.0f%%", r.PctDCF3DSP))
	}
	tw.Flush()
	fmt.Fprintln(w, "Module speedups (SP2): nodes flow(OVERFLOW) connect(DCF3D) combined")
	for _, f := range t.FigSP2 {
		fmt.Fprintf(w, "  %3d  %6s  %6s  %6s\n", f.Nodes,
			fmtStat("%.2f", f.Flow), fmtStat("%.2f", f.Connect), fmtStat("%.2f", f.Combined))
	}
}

// FprintSpeedupFigure renders a PerfTable's per-module speedups as the
// paper-style text figure (Figs. 5, 7, 10) for one machine ("SP2" or "SP").
func FprintSpeedupFigure(w io.Writer, t *PerfTable, machine string) {
	figs := t.FigSP2
	if machine == "SP" {
		figs = t.FigSP
	}
	nodes := make([]int, len(figs))
	flow := make([]float64, len(figs))
	connect := make([]float64, len(figs))
	combined := make([]float64, len(figs))
	for i, f := range figs {
		nodes[i], flow[i], connect[i], combined[i] = f.Nodes, f.Flow, f.Connect, f.Combined
	}
	report.SpeedupFigure(w, fmt.Sprintf("%s — parallel speedup (%s)", t.Title, machine),
		nodes, flow, connect, combined)
}

// FprintTable2 writes the scale-up study in the paper's layout.
func FprintTable2(w io.Writer, rows []ScaleupRow) {
	fmt.Fprintln(w, "Table 2 (airfoil scale-up study)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Case\tPoints\tPts/node\tTime/step SP2\tSP\t%DCF3D SP2\tSP")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s - %d nodes\t%d\t%d\t%.3f\t%.3f\t%s\t%s\n",
			r.Name, r.Nodes, r.Points, r.PtsPerNode,
			r.SecStepSP2, r.SecStepSP,
			fmtStat("%.0f%%", r.PctDCF3DSP2), fmtStat("%.0f%%", r.PctDCF3DSP))
	}
	tw.Flush()
}

// FprintTable5 writes the static/dynamic comparison in the paper's layout.
func FprintTable5(w io.Writer, rows []Table5Row) {
	fmt.Fprintln(w, "Table 5 (DCF3D with dynamic load balancing, fo=5, SP2)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Nodes\t%DCF dyn\t%DCF stat\tDCF speedup dyn\tstat\tcombined dyn\tstat")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%s\t%s\t%s\n",
			r.Nodes, fmtStat("%.0f%%", r.PctDCFDynamic), fmtStat("%.0f%%", r.PctDCFStatic),
			fmtStat("%.2f", r.DCFSpeedupDyn), fmtStat("%.2f", r.DCFSpeedupStat),
			fmtStat("%.2f", r.CombinedDyn), fmtStat("%.2f", r.CombinedStat))
	}
	tw.Flush()
}

// FprintTable5Faulted writes the straggler-perturbed Table 5 sweep.
func FprintTable5Faulted(w io.Writer, rows []Table5FaultedRow) {
	fmt.Fprintln(w, "Table 5 under a mid-run straggler (rank 1 at 1/3 speed from step 2, SP2)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Nodes\tSlowdown stat\tdyn\t%DCF stat\tdyn\tRebalances dyn")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%s\t%d\n",
			r.Nodes, fmtStat("%.2fx", r.SlowdownStat), fmtStat("%.2fx", r.SlowdownDyn),
			fmtStat("%.0f%%", r.PctDCFStat), fmtStat("%.0f%%", r.PctDCFDyn), r.RebalancesDyn)
	}
	tw.Flush()
}

// FprintTable6 writes the YMP comparison in the paper's layout.
func FprintTable6(w io.Writer, rows []Table6Row) {
	fmt.Fprintln(w, "Table 6 (wallclock speedup over 1-processor Cray YMP, YMP units)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Nodes\tOverall SP2\tSP\tPer node SP2\tSP")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%s\n",
			r.Nodes, fmtStat("%.1f", r.OverallSP2), fmtStat("%.1f", r.OverallSP),
			fmtStat("%.2f", r.PerNodeSP2), fmtStat("%.2f", r.PerNodeSP))
	}
	tw.Flush()
}
