package overd

import (
	"math"
	"testing"
)

// TestAirfoilDevelopsCirculation integrates the pitching airfoil long
// enough for the angle of attack to build and checks that the flow responds
// physically: fields stay bounded, the wall stays impermeable, and the
// force magnitude grows from its impulsive-start value.
func TestAirfoilDevelopsCirculation(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration")
	}
	c := OscillatingAirfoil(0.1)
	res, err := Run(Config{
		Case: c, Nodes: 6, Machine: SP2(), Steps: 25, Fo: math.Inf(1),
		Sample: &SampleSpec{FieldGrid: 0, FieldK: -1, SurfaceGrid: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every sampled state physical.
	for _, s := range res.Field {
		if s.Rho <= 0 || s.P <= 0 || math.IsNaN(s.Mach) || s.Mach > 5 {
			t.Fatalf("unphysical state %+v", s)
		}
	}
	// Surface pressure varies around the pitching airfoil (flow is not
	// stuck at freestream).
	minCp, maxCp := math.Inf(1), math.Inf(-1)
	for _, s := range res.Surface {
		minCp = math.Min(minCp, s.Cp)
		maxCp = math.Max(maxCp, s.Cp)
	}
	if maxCp-minCp < 0.05 {
		t.Errorf("surface Cp range [%.3f, %.3f] too flat for M=0.8 flow", minCp, maxCp)
	}
	if maxCp > 3 || minCp < -6 {
		t.Errorf("surface Cp range [%.3f, %.3f] unphysical", minCp, maxCp)
	}
}

// TestStoreSupersonicField checks the Mach 1.6 store case develops a
// supersonic region with shocks (the Fig. 9 flow character): the computed
// field must contain both supersonic and decelerated subsonic zones.
func TestStoreSupersonicField(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration")
	}
	c := StoreSeparation(0.05)
	res, err := Run(Config{
		Case: c, Nodes: 16, Machine: SP2(), Steps: 12, Fo: math.Inf(1),
		Sample: &SampleSpec{FieldGrid: 0, FieldK: -1, SurfaceGrid: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	super, slowed, n := 0, 0, 0
	for _, s := range res.Field {
		if s.IBlank != 1 {
			continue
		}
		n++
		if s.Mach > 1.2 {
			super++
		}
		if s.Mach < 1.0 {
			slowed++ // subsonic pocket near the no-slip store surface
		}
		if s.Rho <= 0 || s.P <= 0 || s.Mach > 8 {
			t.Fatalf("unphysical state %+v", s)
		}
	}
	if n == 0 {
		t.Fatal("no field samples")
	}
	if super == 0 {
		t.Error("M=1.6 freestream should leave supersonic regions")
	}
	if slowed == 0 {
		t.Error("the store body grid should hold subsonic near-wall flow")
	}
}

// TestDynamicSchemeSignature reproduces the paper's central qualitative
// claim at a reduced scale: with a low threshold the dynamic scheme grows
// donor-heavy grids' processor counts and the repartition conserves the
// total processor count.
func TestDynamicSchemeSignature(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration")
	}
	c := StoreSeparation(0.05)
	res, err := Run(Config{
		Case: c, Nodes: 24, Machine: SP2(), Steps: 8,
		Fo: 1.8, CheckInterval: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebalances == 0 {
		t.Skip("imbalance below threshold at this scale")
	}
	sum := 0
	for _, np := range res.Np {
		if np < 1 {
			t.Fatalf("grid starved of processors: %v", res.Np)
		}
		sum += np
	}
	if sum != 24 {
		t.Errorf("processor count changed: %v", res.Np)
	}
}

// TestScaleupShape reproduces Table 2's qualitative claim at reduced scale:
// holding points-per-node fixed, the connectivity share grows with problem
// size (DCF3D's relative lack of scalability).
func TestScaleupShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration")
	}
	rows, err := RunTable2(Options{Scale: 0.1, Steps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rows[2].PctDCF3DSP2 <= rows[0].PctDCF3DSP2 {
		t.Errorf("%%DCF should grow with problem size: %v -> %v",
			rows[0].PctDCF3DSP2, rows[2].PctDCF3DSP2)
	}
	// (The paper's rising time/step holds at paper scale — see Table 2 in
	// EXPERIMENTS.md; at this reduced scale the minimum-dimension floors
	// distort points-per-node parity, so it is not asserted here.)
}

// TestModuleSpeedupOrdering checks Figure 5/7/10's shape: the flow solver
// scales better than the connectivity solution.
func TestModuleSpeedupOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration")
	}
	tbl, err := runPerfTable("fig-shape", OscillatingAirfoil, []int{6, 18}, Options{Scale: 0.3, Steps: 3})
	if err != nil {
		t.Fatal(err)
	}
	f := tbl.FigSP2[1]
	if f.Flow <= f.Connect {
		t.Errorf("flow speedup %.2f should beat connectivity %.2f (the paper's Figs. 5/7/10)",
			f.Flow, f.Connect)
	}
	if f.Combined < f.Connect || f.Combined > f.Flow {
		t.Errorf("combined %.2f should sit between connect %.2f and flow %.2f",
			f.Combined, f.Connect, f.Flow)
	}
}

// TestYMPUnitsShape reproduces Table 6's qualitative claims at reduced
// scale: one-to-two orders of magnitude wallclock speedup over the YMP,
// with SP per-node performance around the YMP's and SP2 per-node below it.
func TestYMPUnitsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("long integration")
	}
	c := StoreSeparation(0.2)
	res, err := Run(Config{Case: c, Nodes: 18, Machine: SP2(), Steps: 3, Fo: math.Inf(1)})
	if err != nil {
		t.Fatal(err)
	}
	ympT := EstimateSerialTime(res.Flops, YMP864())
	overall := ympT / res.TotalTime
	if overall < 2 || overall > 40 {
		t.Errorf("18-node SP2 speedup over YMP = %.1f, want single-to-low-double digits", overall)
	}
	perNode := overall / 18
	if perNode > 1.2 {
		t.Errorf("SP2 per-node %.2f YMP units should be below ~1", perNode)
	}
}
