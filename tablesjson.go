package overd

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"reflect"
	"sort"
	"strings"
)

// ValidTableIDs is the set of table identifiers accepted by -only: the
// paper's Tables 1-6 plus "5f", the straggler-faulted Table 5 rerun.
var ValidTableIDs = map[string]bool{
	"1": true, "2": true, "3": true, "4": true, "5": true, "5f": true, "6": true,
}

// ParseTableSelection parses a comma-separated table list ("1,2,5f") into a
// selection set, rejecting unknown ids with an error naming the bad id and
// the valid choices.
func ParseTableSelection(only string) (map[string]bool, error) {
	want := map[string]bool{}
	for _, t := range strings.Split(only, ",") {
		id := strings.TrimSpace(t)
		if id == "" {
			continue
		}
		if !ValidTableIDs[id] {
			valid := make([]string, 0, len(ValidTableIDs))
			for k := range ValidTableIDs {
				valid = append(valid, k)
			}
			sort.Strings(valid)
			return nil, fmt.Errorf("unknown table %q (valid: %s)", id, strings.Join(valid, ", "))
		}
		want[id] = true
	}
	if len(want) == 0 {
		return nil, fmt.Errorf("empty table selection %q", only)
	}
	return want, nil
}

// sanitizeRow replaces any non-finite float64 field of a row struct with 0:
// encoding/json rejects NaN/Inf outright, so one degenerate ratio (see
// ratio) must not abort the whole emission. Rows with only finite fields
// are returned untouched, so normal output bytes are unaffected.
func sanitizeRow(row any) any {
	v := reflect.ValueOf(row)
	if v.Kind() != reflect.Struct {
		return row
	}
	dirty := false
	for i := 0; i < v.NumField(); i++ {
		if f := v.Field(i); f.Kind() == reflect.Float64 {
			if x := f.Float(); math.IsNaN(x) || math.IsInf(x, 0) {
				dirty = true
				break
			}
		}
	}
	if !dirty {
		return row
	}
	c := reflect.New(v.Type()).Elem()
	c.Set(v)
	for i := 0; i < c.NumField(); i++ {
		if f := c.Field(i); f.Kind() == reflect.Float64 {
			if x := f.Float(); math.IsNaN(x) || math.IsInf(x, 0) {
				f.SetFloat(0)
			}
		}
	}
	return c.Interface()
}

// EmitRowsJSON writes one JSON object per table row to w (JSON-lines),
// tagging each with its table id so downstream tooling can append rows from
// many runs into one BENCH_*.json trajectory file.
func EmitRowsJSON(w io.Writer, table string, rows any) error {
	enc := json.NewEncoder(w)
	v := reflect.ValueOf(rows)
	for i := 0; i < v.Len(); i++ {
		if err := enc.Encode(struct {
			Table string `json:"table"`
			Row   any    `json:"row"`
		}{table, sanitizeRow(v.Index(i).Interface())}); err != nil {
			return err
		}
	}
	return nil
}

// EmitPerfTableJSON writes a PerfTable's rows plus its per-module speedup
// figure series (the Figs. 5/7/10 points) as JSON lines.
func EmitPerfTableJSON(w io.Writer, table string, t *PerfTable) error {
	if err := EmitRowsJSON(w, table, t.Rows); err != nil {
		return err
	}
	if err := EmitRowsJSON(w, table+".fig.SP2", t.FigSP2); err != nil {
		return err
	}
	return EmitRowsJSON(w, table+".fig.SP", t.FigSP)
}

// RunRow is the summary row of a single run, emitted (with table id "run")
// at the head of a job's tables artifact by EmitRunJSON. Every field is a
// pure function of the run's configuration, so the encoded bytes are too.
type RunRow struct {
	Case       string  `json:"case"`
	Machine    string  `json:"machine"`
	Balancer   string  `json:"balancer"`
	Nodes      int     `json:"nodes"`
	Steps      int     `json:"steps"`
	TotalTime  float64 `json:"total_time"`
	Flow       float64 `json:"flow"`
	Motion     float64 `json:"motion"`
	Connect    float64 `json:"connect"`
	Balance    float64 `json:"balance"`
	Mflops     float64 `json:"mflops_per_node"`
	PctConnect float64 `json:"pct_dcf3d"`
	IGBPs      int     `json:"igbps"`
	Orphans    int     `json:"orphans"`
	Rebalances int     `json:"rebalances"`
	Moved      int     `json:"moved_points"`
	Recoveries int     `json:"recoveries"`
	FinalNodes int     `json:"final_nodes"`
}

// RunStepRow is one timestep's phase breakdown in a job's tables artifact
// (table id "run.steps").
type RunStepRow struct {
	Step    int     `json:"step"`
	Flow    float64 `json:"flow"`
	Motion  float64 `json:"motion"`
	Connect float64 `json:"connect"`
	Balance float64 `json:"balance"`
	IGBPs   int     `json:"igbps"`
	MaxF    float64 `json:"max_f"`
}

// EmitRunJSON writes one run's summary and per-step rows as JSON lines in
// the same tagged-row format as EmitTablesJSON, so a job's artifact and a
// table sweep's output concatenate cleanly. It shares EmitRowsJSON's
// sanitization, and — like the golden tables — its bytes are a pure
// function of the run's request, which is what lets the serve layer cache
// them content-addressed.
func EmitRunJSON(w io.Writer, res *Result) error {
	summary := RunRow{
		Case:       res.Config.Case.Name,
		Machine:    res.Config.Machine.Name,
		Balancer:   res.Config.Balancer,
		Nodes:      res.Config.Nodes,
		Steps:      len(res.Steps),
		TotalTime:  res.TotalTime,
		Flow:       res.FlowTime,
		Motion:     res.MotionTime,
		Connect:    res.ConnectTime,
		Balance:    res.BalanceTime,
		Mflops:     res.MflopsPerNode(),
		PctConnect: res.PctConnect(),
		IGBPs:      res.IGBPs,
		Orphans:    res.Orphans,
		Rebalances: res.Rebalances,
		Moved:      res.MovedPoints,
		Recoveries: res.Recoveries,
		FinalNodes: res.FinalNodes,
	}
	if err := EmitRowsJSON(w, "run", []RunRow{summary}); err != nil {
		return err
	}
	steps := make([]RunStepRow, len(res.Steps))
	for i, s := range res.Steps {
		steps[i] = RunStepRow{
			Step: i, Flow: s.Flow, Motion: s.Motion,
			Connect: s.Connect, Balance: s.Balance,
			IGBPs: s.IGBPs, MaxF: s.MaxF,
		}
	}
	return EmitRowsJSON(w, "run.steps", steps)
}

// EmitTablesJSON runs the selected tables (in fixed 1,2,3,4,5,5f,6 order)
// and writes their rows as JSON lines. This is the single code path behind
// `tables -json` and the bit-identity golden test: any change to the
// simulation that alters a virtual clock, a table row, or a figure point
// changes these bytes.
func EmitTablesJSON(w io.Writer, opt Options, want map[string]bool) error {
	if want["1"] {
		t, err := RunTable1(opt)
		if err != nil {
			return err
		}
		if err := EmitPerfTableJSON(w, "1", t); err != nil {
			return err
		}
	}
	if want["2"] {
		rows, err := RunTable2(opt)
		if err != nil {
			return err
		}
		if err := EmitRowsJSON(w, "2", rows); err != nil {
			return err
		}
	}
	if want["3"] {
		t, err := RunTable3(opt)
		if err != nil {
			return err
		}
		if err := EmitPerfTableJSON(w, "3", t); err != nil {
			return err
		}
	}
	if want["4"] {
		t, err := RunTable4(opt)
		if err != nil {
			return err
		}
		if err := EmitPerfTableJSON(w, "4", t); err != nil {
			return err
		}
	}
	if want["5"] {
		rows, err := RunTable5(opt)
		if err != nil {
			return err
		}
		if err := EmitRowsJSON(w, "5", rows); err != nil {
			return err
		}
	}
	if want["5f"] {
		rows, err := RunTable5Faulted(opt)
		if err != nil {
			return err
		}
		if err := EmitRowsJSON(w, "5f", rows); err != nil {
			return err
		}
	}
	if want["6"] {
		rows, err := RunTable6(opt)
		if err != nil {
			return err
		}
		if err := EmitRowsJSON(w, "6", rows); err != nil {
			return err
		}
	}
	return nil
}
