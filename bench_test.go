package overd

// The benchmark harness regenerates every table and figure of the paper's
// evaluation section (§4: Tables 1-6, Figures 5/7/10/11, the Fig. 9 flow
// solution and the §5/Fig. 12 adaptive scheme), plus ablation benches for
// the design choices DESIGN.md calls out. Each benchmark runs the full
// experiment once per iteration and prints the regenerated rows through
// b.Logf (visible with `go test -bench . -v` or in bench output).
//
// Environment knobs:
//
//	OVERD_BENCH_SCALE  gridpoint budget multiplier (default 1 = paper size)
//	OVERD_BENCH_STEPS  measured timesteps per run  (default 3)

import (
	"math"
	"os"
	"strconv"
	"strings"
	"testing"
)

func benchOptions(b *testing.B) Options {
	opt := Options{Scale: 1, Steps: 3}
	if v := os.Getenv("OVERD_BENCH_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 {
			opt.Scale = f
		}
	}
	if v := os.Getenv("OVERD_BENCH_STEPS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			opt.Steps = n
		}
	}
	b.Logf("options: scale %.3g, %d steps", opt.Scale, opt.Steps)
	return opt
}

func logTable(b *testing.B, render func(*strings.Builder)) {
	var sb strings.Builder
	sb.WriteByte('\n')
	render(&sb)
	b.Log(sb.String())
}

// BenchmarkTable1_OscAirfoil regenerates Table 1 and Figure 5: the 2-D
// oscillating airfoil on 6-24 nodes of the SP2 and SP.
func BenchmarkTable1_OscAirfoil(b *testing.B) {
	opt := benchOptions(b)
	for i := 0; i < b.N; i++ {
		t, err := RunTable1(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, func(sb *strings.Builder) { FprintPerfTable(sb, t) })
			last := t.Rows[len(t.Rows)-1]
			b.ReportMetric(t.Rows[0].MflopsSP2, "Mflops/node@base")
			b.ReportMetric(last.SpeedupSP2, "speedup@max")
			b.ReportMetric(last.PctDCF3DSP2, "%DCF@max")
		}
	}
}

// BenchmarkTable2_AirfoilScaleup regenerates Table 2: the airfoil scale-up
// study holding ~5000 gridpoints per node.
func BenchmarkTable2_AirfoilScaleup(b *testing.B) {
	opt := benchOptions(b)
	for i := 0; i < b.N; i++ {
		rows, err := RunTable2(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, func(sb *strings.Builder) { FprintTable2(sb, rows) })
			// The paper's claim: %DCF3D grows ~2.2x from coarsened to refined.
			b.ReportMetric(rows[len(rows)-1].PctDCF3DSP2/rows[0].PctDCF3DSP2, "%DCF-growth")
			b.ReportMetric(rows[len(rows)-1].SecStepSP2/rows[0].SecStepSP2, "t/step-growth")
		}
	}
}

// BenchmarkTable3_DeltaWing regenerates Table 3 and Figure 7: the
// descending delta wing on 7-55 nodes.
func BenchmarkTable3_DeltaWing(b *testing.B) {
	opt := benchOptions(b)
	for i := 0; i < b.N; i++ {
		t, err := RunTable3(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, func(sb *strings.Builder) { FprintPerfTable(sb, t) })
			last := t.Rows[len(t.Rows)-1]
			b.ReportMetric(last.SpeedupSP2, "speedup@max")
			b.ReportMetric(last.PctDCF3DSP2, "%DCF@max")
		}
	}
}

// BenchmarkTable4_StoreSep regenerates Table 4 and Figure 10: the
// wing/pylon/finned-store separation with static load balancing.
func BenchmarkTable4_StoreSep(b *testing.B) {
	opt := benchOptions(b)
	for i := 0; i < b.N; i++ {
		t, err := RunTable4(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, func(sb *strings.Builder) { FprintPerfTable(sb, t) })
			last := t.Rows[len(t.Rows)-1]
			b.ReportMetric(last.SpeedupSP2, "speedup@max")
			b.ReportMetric(last.PctDCF3DSP2/t.Rows[0].PctDCF3DSP2, "%DCF-growth")
		}
	}
}

// BenchmarkTable5_DynamicLB regenerates Table 5 and Figure 11: static
// versus dynamic (fo=5) load balancing on the store case.
func BenchmarkTable5_DynamicLB(b *testing.B) {
	opt := benchOptions(b)
	for i := 0; i < b.N; i++ {
		rows, err := RunTable5(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, func(sb *strings.Builder) { FprintTable5(sb, rows) })
			last := rows[len(rows)-1]
			b.ReportMetric(last.DCFSpeedupDyn, "dcf-speedup-dyn@max")
			b.ReportMetric(last.DCFSpeedupStat, "dcf-speedup-stat@max")
		}
	}
}

// BenchmarkTable6_YMPUnits regenerates Table 6: wallclock speedup over the
// single-processor Cray YMP/864 in YMP units.
func BenchmarkTable6_YMPUnits(b *testing.B) {
	opt := benchOptions(b)
	for i := 0; i < b.N; i++ {
		rows, err := RunTable6(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			logTable(b, func(sb *strings.Builder) { FprintTable6(sb, rows) })
			last := rows[len(rows)-1]
			b.ReportMetric(last.OverallSP2, "YMP-units@max-SP2")
			b.ReportMetric(last.PerNodeSP, "per-node-SP@max")
		}
	}
}

// BenchmarkFig9_StoreFields integrates the store-separation flow and
// reports statistics of the computed Mach field and surface pressure — the
// quantitative series behind the paper's Fig. 9 contour plots.
func BenchmarkFig9_StoreFields(b *testing.B) {
	opt := benchOptions(b)
	for i := 0; i < b.N; i++ {
		c := StoreSeparation(opt.Scale)
		res, err := Run(Config{
			Case: c, Nodes: 16, Machine: SP2(), Steps: opt.Steps,
			Fo: math.Inf(1),
			Sample: &SampleSpec{
				FieldGrid: 13, FieldK: -1, SurfaceGrid: 0,
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			maxMach, super, n := 0.0, 0, 0
			for _, s := range res.Field {
				if s.IBlank != 1 {
					continue
				}
				n++
				if s.Mach > maxMach {
					maxMach = s.Mach
				}
				if s.Mach > 1 {
					super++
				}
			}
			minCp, maxCp := math.Inf(1), math.Inf(-1)
			for _, s := range res.Surface {
				minCp = math.Min(minCp, s.Cp)
				maxCp = math.Max(maxCp, s.Cp)
			}
			b.Logf("Fig 9 series: %d field samples, max Mach %.3f, supersonic fraction %.3f; surface Cp in [%.3f, %.3f] over %d wall points",
				n, maxMach, float64(super)/float64(n), minCp, maxCp, len(res.Surface))
			b.ReportMetric(maxMach, "max-Mach")
			b.ReportMetric(float64(super)/float64(n), "supersonic-frac")
		}
	}
}

// BenchmarkFig12_AdaptiveScheme exercises the §5 adaptive Cartesian scheme
// (the Fig. 12 scenario): proximity-based generation, group-parallel flow
// advance, and an error-driven adapt cycle; the reported series is the
// brick-per-level histogram before and after adaptation.
func BenchmarkFig12_AdaptiveScheme(b *testing.B) {
	for i := 0; i < b.N; i++ {
		body := Box{Min: Vec3{X: -1.1, Y: -0.45, Z: -0.8}, Max: Vec3{X: 1.1, Y: 0.35, Z: 0.8}}
		cfg := AdaptiveConfig{
			Domain:     Box{Min: Vec3{X: -8, Y: -8, Z: -8}, Max: Vec3{X: 8, Y: 8, Z: 8}},
			H0:         1.0,
			BrickCells: 6,
			MaxLevel:   3,
		}
		sys := GenerateAdaptive(cfg, ProximityIndicator(body, cfg.MaxLevel))
		ru, err := NewAdaptiveRunner(sys, 8, Freestream{Mach: 0.6}, true)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ru.Run(SP2(), 2, 0.05); err != nil {
			b.Fatal(err)
		}
		ru.ImposeDisturbance(Box{Min: Vec3{X: 1.1, Y: -1, Z: -1}, Max: Vec3{X: 5, Y: 1, Z: 1}}, 0.35)
		sys2 := sys.Adapt(ru.ErrorIndicator(ProximityIndicator(body, cfg.MaxLevel), 0.05))
		if i == 0 {
			b.Logf("Fig 12 series: initial bricks/level %v (total %d); after adapt cycle %v (total %d)",
				sys.LevelCounts(), len(sys.Bricks), sys2.LevelCounts(), len(sys2.Bricks))
			b.ReportMetric(float64(len(sys.Bricks)), "bricks-initial")
			b.ReportMetric(float64(len(sys2.Bricks)), "bricks-adapted")
		}
	}
}

// ---- Ablation benches for DESIGN.md's called-out design choices. ----

// BenchmarkAblation_NthLevelRestart compares the connectivity cost with and
// without nth-level restart (§2.2's "considerable reduction in the time
// spent in the connectivity solution").
func BenchmarkAblation_NthLevelRestart(b *testing.B) {
	opt := benchOptions(b)
	run := func(disable bool) float64 {
		c := OscillatingAirfoil(math.Min(opt.Scale, 0.3))
		c.Overset.DisableRestart = disable
		res, err := Run(Config{Case: c, Nodes: 12, Machine: SP2(),
			Steps: opt.Steps + 2, Fo: math.Inf(1)})
		if err != nil {
			b.Fatal(err)
		}
		return res.ConnectTime / float64(len(res.Steps))
	}
	for i := 0; i < b.N; i++ {
		withRestart := run(false)
		scratch := run(true)
		if i == 0 {
			b.Logf("connectivity s/step: restart %.4f, from-scratch %.4f (x%.2f)",
				withRestart, scratch, scratch/withRestart)
			b.ReportMetric(scratch/withRestart, "scratch/restart-ratio")
		}
	}
}

// BenchmarkAblation_FoSweep sweeps the dynamic load-balance factor fo on
// the store case, tracing the paper's flow-versus-connectivity tradeoff
// ("the 'best' value of fo is problem dependent").
func BenchmarkAblation_FoSweep(b *testing.B) {
	opt := benchOptions(b)
	for i := 0; i < b.N; i++ {
		for _, fo := range []float64{2, 3, 5, math.Inf(1)} {
			c := StoreSeparation(opt.Scale)
			res, err := Run(Config{Case: c, Nodes: 52, Machine: SP2(),
				Steps: 8, Fo: fo, CheckInterval: 2})
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.Logf("fo=%-4v: %%DCF %.0f%%  flow %.2fs  connect %.2fs  total %.2fs  repartitions %d  Np=%v",
					fo, res.PctConnect(), res.FlowTime, res.ConnectTime,
					res.TotalTime, res.Rebalances, res.Np)
			}
		}
	}
}

// BenchmarkAblation_Subdivision compares the prime-factor minimal-surface
// subdivision (Fig. 4) with naive 1-D slabs on the delta wing at 8 nodes,
// where the cubic background's four subdomains split 2x2x1 against 4 thin
// slabs. (On high-aspect 2-D grids, or when a grid's processor count is
// prime, the two rules legitimately coincide.)
func BenchmarkAblation_Subdivision(b *testing.B) {
	opt := benchOptions(b)
	run := func(slabs bool) float64 {
		c := DescendingDeltaWing(math.Min(opt.Scale, 0.5))
		res, err := Run(Config{Case: c, Nodes: 8, Machine: SP2(),
			Steps: opt.Steps, Fo: math.Inf(1), SlabDecomp: slabs})
		if err != nil {
			b.Fatal(err)
		}
		return res.FlowTime
	}
	for i := 0; i < b.N; i++ {
		pf := run(false)
		slab := run(true)
		if i == 0 {
			c := DescendingDeltaWing(math.Min(opt.Scale, 0.5))
			sp, err := DecompositionSurface(c, 8, false)
			if err != nil {
				b.Fatal(err)
			}
			ss, err := DecompositionSurface(c, 8, true)
			if err != nil {
				b.Fatal(err)
			}
			b.Logf("flow time: prime-factor %.3fs, slabs %.3fs (time penalty x%.3f); subdomain surface: %d vs %d points (x%.3f)",
				pf, slab, slab/pf, sp, ss, float64(ss)/float64(sp))
			b.ReportMetric(slab/pf, "slab-time-penalty")
			b.ReportMetric(float64(ss)/float64(sp), "slab-surface-ratio")
		}
	}
}

// BenchmarkAblation_Grouping compares Algorithm 3 with round-robin
// assignment for the §5 adaptive scheme's many small grids.
func BenchmarkAblation_Grouping(b *testing.B) {
	body := Box{Min: Vec3{X: -1, Y: -0.5, Z: -0.8}, Max: Vec3{X: 1, Y: 0.4, Z: 0.8}}
	cfg := AdaptiveConfig{
		Domain:     Box{Min: Vec3{X: -8, Y: -8, Z: -8}, Max: Vec3{X: 8, Y: 8, Z: 8}},
		H0:         1.0,
		BrickCells: 6,
		MaxLevel:   2,
	}
	sys := GenerateAdaptive(cfg, ProximityIndicator(body, cfg.MaxLevel))
	run := func(grouping bool) (cut int, cross int, t float64) {
		ru, err := NewAdaptiveRunner(sys, 4, Freestream{Mach: 0.6}, grouping)
		if err != nil {
			b.Fatal(err)
		}
		stats, err := ru.Run(SP2(), 2, 0.05)
		if err != nil {
			b.Fatal(err)
		}
		return ru.CutEdges, stats[1].BytesCross, stats[1].Time
	}
	for i := 0; i < b.N; i++ {
		gc, gx, gt := run(true)
		rc, rx, rt := run(false)
		if i == 0 {
			b.Logf("Algorithm 3: %d cut edges, %d B cross-node, %.4f s/step", gc, gx, gt)
			b.Logf("round-robin: %d cut edges, %d B cross-node, %.4f s/step", rc, rx, rt)
			b.ReportMetric(float64(rx)/float64(gx), "traffic-ratio")
		}
	}
}

// BenchmarkAblation_HoleMap compares hole cutting through the Cartesian
// hole-map acceleration against direct analytic cutter queries.
func BenchmarkAblation_HoleMap(b *testing.B) {
	opt := benchOptions(b)
	run := func(res int) float64 {
		c := OscillatingAirfoil(math.Min(opt.Scale, 0.3))
		c.Overset.HoleMapRes = res
		r, err := Run(Config{Case: c, Nodes: 6, Machine: SP2(),
			Steps: opt.Steps, Fo: math.Inf(1)})
		if err != nil {
			b.Fatal(err)
		}
		return r.ConnectTime
	}
	for i := 0; i < b.N; i++ {
		mapped := run(32)
		direct := run(0)
		if i == 0 {
			b.Logf("connectivity time: hole map %.4fs, direct cutters %.4fs (x%.2f)",
				mapped, direct, direct/mapped)
			b.ReportMetric(direct/mapped, "direct/map-ratio")
		}
	}
}
