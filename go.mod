module overd

go 1.22
