package main

import (
	"strings"
	"testing"
)

func TestValidateTablesFlags(t *testing.T) {
	cases := []struct {
		name      string
		scale     float64
		steps     int
		only      string
		figures   bool
		asJSON    bool
		balancers bool
		wantErr   string // substring, "" = must succeed
	}{
		{"defaults", 1, 4, "1,2,3,4,5,6", false, false, false, ""},
		{"json mode", 0.05, 2, "4", false, true, false, ""},
		{"faulted table", 1, 4, "5f", false, false, false, ""},
		{"zero scale", 0, 4, "1", false, false, false, "-scale must be > 0"},
		{"negative scale", -1, 4, "1", false, false, false, "-scale must be > 0"},
		{"zero steps", 1, 0, "1", false, false, false, "-steps must be > 0"},
		{"negative steps", 1, -2, "1", false, false, false, "-steps must be > 0"},
		{"unknown table", 1, 4, "1,9", false, false, false, `unknown table "9"`},
		{"garbage table", 1, 4, "five", false, false, false, `unknown table "five"`},
		{"empty selection", 1, 4, "", false, false, false, "empty table selection"},
		{"figures with json", 1, 4, "1", true, true, false, "no effect with -json"},
		{"balancers mode", 0.05, 4, "1,2,3,4,5,6", false, false, true, ""},
		{"balancers json", 0.05, 4, "1,2,3,4,5,6", false, true, true, ""},
		{"balancers ignores -only", 0.05, 4, "bogus", false, false, true, ""},
		{"balancers with figures", 1, 4, "1", true, false, true, "no effect with -balancers"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg, err := validateTablesFlags(c.scale, c.steps, c.only, c.figures, c.asJSON, c.balancers, nil)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if !c.balancers && len(cfg.want) == 0 {
					t.Fatal("valid flags produced empty selection")
				}
				if c.balancers && !cfg.balancers {
					t.Fatal("balancers flag lost in validation")
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got nil", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not contain %q", err, c.wantErr)
			}
		})
	}
}
