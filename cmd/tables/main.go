// Command tables regenerates the paper's evaluation tables and figure
// series (Tables 1-6, Figures 5/7/10/11) on the simulated IBM SP2 and SP.
//
// Usage:
//
// The extra id "5f" re-runs the Table 5 sweep under a mid-run compute
// straggler (the robustness experiment; see package fault).
//
//	tables [-scale f] [-steps n] [-only 1,2,3,4,5,5f,6] [-v] [-json]
//	tables -balancers [-scale f] [-steps n] [-v] [-json]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"overd"
)

// tablesConfig is the validated form of the command-line flags.
type tablesConfig struct {
	opt       overd.Options
	want      map[string]bool
	figures   bool
	asJSON    bool
	balancers bool
}

// validateTablesFlags turns raw flag values into a runnable config,
// rejecting nonsensical inputs with a clear error instead of letting them
// degrade into silent defaults or a hung run.
func validateTablesFlags(scale float64, steps int, only string, figures, asJSON, balancers bool, logw io.Writer) (tablesConfig, error) {
	if scale <= 0 {
		return tablesConfig{}, fmt.Errorf("-scale must be > 0 (got %g)", scale)
	}
	if steps <= 0 {
		return tablesConfig{}, fmt.Errorf("-steps must be > 0 (got %d)", steps)
	}
	if figures && asJSON {
		return tablesConfig{}, fmt.Errorf("-figures has no effect with -json; pick one output mode")
	}
	if balancers && figures {
		return tablesConfig{}, fmt.Errorf("-figures has no effect with -balancers; pick one output mode")
	}
	cfg := tablesConfig{
		opt:       overd.Options{Scale: scale, Steps: steps, Log: logw},
		figures:   figures,
		asJSON:    asJSON,
		balancers: balancers,
	}
	if balancers {
		// The sweep replaces the paper tables; -only is ignored.
		return cfg, nil
	}
	want, err := overd.ParseTableSelection(only)
	if err != nil {
		return tablesConfig{}, err
	}
	cfg.want = want
	return cfg, nil
}

func main() {
	scale := flag.Float64("scale", 1, "gridpoint budget multiplier (1 = paper size)")
	steps := flag.Int("steps", 4, "measured timesteps per run")
	only := flag.String("only", "1,2,3,4,5,6", "comma-separated tables to run (add 5f for the straggler-faulted Table 5)")
	verbose := flag.Bool("v", false, "log per-run progress to stderr")
	figures := flag.Bool("figures", false, "render the speedup figures (Figs. 5/7/10) as text plots")
	asJSON := flag.Bool("json", false, "emit one machine-readable JSON object per table row instead of text")
	balancers := flag.Bool("balancers", false, "race every registered load balancer across cases, machines and fault plans instead of the paper tables")
	flag.Parse()

	var logw io.Writer
	if *verbose {
		logw = os.Stderr
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}

	cfg, err := validateTablesFlags(*scale, *steps, *only, *figures, *asJSON, *balancers, logw)
	if err != nil {
		fail(err)
	}

	if cfg.balancers {
		rows, err := overd.RunBalancerSweep(cfg.opt)
		if err != nil {
			fail(err)
		}
		if cfg.asJSON {
			if err := overd.EmitBalancerSweepJSON(os.Stdout, rows); err != nil {
				fail(err)
			}
			return
		}
		overd.FprintBalancerSweep(os.Stdout, rows)
		return
	}

	if cfg.asJSON {
		if err := overd.EmitTablesJSON(os.Stdout, cfg.opt, cfg.want); err != nil {
			fail(err)
		}
		return
	}

	if cfg.want["1"] {
		t, err := overd.RunTable1(cfg.opt)
		if err != nil {
			fail(err)
		}
		overd.FprintPerfTable(os.Stdout, t)
		if cfg.figures {
			overd.FprintSpeedupFigure(os.Stdout, t, "SP2") // Fig. 5 left
			overd.FprintSpeedupFigure(os.Stdout, t, "SP")  // Fig. 5 right
		}
		fmt.Println()
	}
	if cfg.want["2"] {
		rows, err := overd.RunTable2(cfg.opt)
		if err != nil {
			fail(err)
		}
		overd.FprintTable2(os.Stdout, rows)
		fmt.Println()
	}
	if cfg.want["3"] {
		t, err := overd.RunTable3(cfg.opt)
		if err != nil {
			fail(err)
		}
		overd.FprintPerfTable(os.Stdout, t)
		if cfg.figures {
			overd.FprintSpeedupFigure(os.Stdout, t, "SP2") // Fig. 7
		}
		fmt.Println()
	}
	if cfg.want["4"] {
		t, err := overd.RunTable4(cfg.opt)
		if err != nil {
			fail(err)
		}
		overd.FprintPerfTable(os.Stdout, t)
		if cfg.figures {
			overd.FprintSpeedupFigure(os.Stdout, t, "SP2") // Fig. 10
		}
		fmt.Println()
	}
	if cfg.want["5"] {
		rows, err := overd.RunTable5(cfg.opt)
		if err != nil {
			fail(err)
		}
		overd.FprintTable5(os.Stdout, rows)
		fmt.Println()
	}
	if cfg.want["5f"] {
		rows, err := overd.RunTable5Faulted(cfg.opt)
		if err != nil {
			fail(err)
		}
		overd.FprintTable5Faulted(os.Stdout, rows)
		fmt.Println()
	}
	if cfg.want["6"] {
		rows, err := overd.RunTable6(cfg.opt)
		if err != nil {
			fail(err)
		}
		overd.FprintTable6(os.Stdout, rows)
		fmt.Println()
	}
}
