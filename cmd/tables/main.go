// Command tables regenerates the paper's evaluation tables and figure
// series (Tables 1-6, Figures 5/7/10/11) on the simulated IBM SP2 and SP.
//
// Usage:
//
// The extra id "5f" re-runs the Table 5 sweep under a mid-run compute
// straggler (the robustness experiment; see package fault).
//
//	tables [-scale f] [-steps n] [-only 1,2,3,4,5,5f,6] [-v] [-json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"reflect"
	"strings"

	"overd"
)

// emitJSON writes one JSON object per table row to w (JSON-lines), tagging
// each with its table id so downstream tooling can append rows from many
// runs into one BENCH_*.json trajectory file.
func emitJSON(w io.Writer, table string, rows any) error {
	enc := json.NewEncoder(w)
	v := reflect.ValueOf(rows)
	for i := 0; i < v.Len(); i++ {
		if err := enc.Encode(struct {
			Table string `json:"table"`
			Row   any    `json:"row"`
		}{table, v.Index(i).Interface()}); err != nil {
			return err
		}
	}
	return nil
}

// emitPerfJSON writes a PerfTable's rows plus its per-module speedup figure
// series (the Figs. 5/7/10 points) as JSON lines.
func emitPerfJSON(w io.Writer, table string, t *overd.PerfTable) error {
	if err := emitJSON(w, table, t.Rows); err != nil {
		return err
	}
	if err := emitJSON(w, table+".fig.SP2", t.FigSP2); err != nil {
		return err
	}
	return emitJSON(w, table+".fig.SP", t.FigSP)
}

func main() {
	scale := flag.Float64("scale", 1, "gridpoint budget multiplier (1 = paper size)")
	steps := flag.Int("steps", 4, "measured timesteps per run")
	only := flag.String("only", "1,2,3,4,5,6", "comma-separated tables to run (add 5f for the straggler-faulted Table 5)")
	verbose := flag.Bool("v", false, "log per-run progress to stderr")
	figures := flag.Bool("figures", false, "render the speedup figures (Figs. 5/7/10) as text plots")
	asJSON := flag.Bool("json", false, "emit one machine-readable JSON object per table row instead of text")
	flag.Parse()

	var logw io.Writer
	if *verbose {
		logw = os.Stderr
	}
	opt := overd.Options{Scale: *scale, Steps: *steps, Log: logw}
	want := map[string]bool{}
	for _, t := range strings.Split(*only, ",") {
		want[strings.TrimSpace(t)] = true
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}

	if want["1"] {
		t, err := overd.RunTable1(opt)
		if err != nil {
			fail(err)
		}
		if *asJSON {
			if err := emitPerfJSON(os.Stdout, "1", t); err != nil {
				fail(err)
			}
		} else {
			overd.FprintPerfTable(os.Stdout, t)
			if *figures {
				overd.FprintSpeedupFigure(os.Stdout, t, "SP2") // Fig. 5 left
				overd.FprintSpeedupFigure(os.Stdout, t, "SP")  // Fig. 5 right
			}
			fmt.Println()
		}
	}
	if want["2"] {
		rows, err := overd.RunTable2(opt)
		if err != nil {
			fail(err)
		}
		if *asJSON {
			if err := emitJSON(os.Stdout, "2", rows); err != nil {
				fail(err)
			}
		} else {
			overd.FprintTable2(os.Stdout, rows)
			fmt.Println()
		}
	}
	if want["3"] {
		t, err := overd.RunTable3(opt)
		if err != nil {
			fail(err)
		}
		if *asJSON {
			if err := emitPerfJSON(os.Stdout, "3", t); err != nil {
				fail(err)
			}
		} else {
			overd.FprintPerfTable(os.Stdout, t)
			if *figures {
				overd.FprintSpeedupFigure(os.Stdout, t, "SP2") // Fig. 7
			}
			fmt.Println()
		}
	}
	if want["4"] {
		t, err := overd.RunTable4(opt)
		if err != nil {
			fail(err)
		}
		if *asJSON {
			if err := emitPerfJSON(os.Stdout, "4", t); err != nil {
				fail(err)
			}
		} else {
			overd.FprintPerfTable(os.Stdout, t)
			if *figures {
				overd.FprintSpeedupFigure(os.Stdout, t, "SP2") // Fig. 10
			}
			fmt.Println()
		}
	}
	if want["5"] {
		rows, err := overd.RunTable5(opt)
		if err != nil {
			fail(err)
		}
		if *asJSON {
			if err := emitJSON(os.Stdout, "5", rows); err != nil {
				fail(err)
			}
		} else {
			overd.FprintTable5(os.Stdout, rows)
			fmt.Println()
		}
	}
	if want["5f"] {
		rows, err := overd.RunTable5Faulted(opt)
		if err != nil {
			fail(err)
		}
		if *asJSON {
			if err := emitJSON(os.Stdout, "5f", rows); err != nil {
				fail(err)
			}
		} else {
			overd.FprintTable5Faulted(os.Stdout, rows)
			fmt.Println()
		}
	}
	if want["6"] {
		rows, err := overd.RunTable6(opt)
		if err != nil {
			fail(err)
		}
		if *asJSON {
			if err := emitJSON(os.Stdout, "6", rows); err != nil {
				fail(err)
			}
		} else {
			overd.FprintTable6(os.Stdout, rows)
			fmt.Println()
		}
	}
}
