// Command tables regenerates the paper's evaluation tables and figure
// series (Tables 1-6, Figures 5/7/10/11) on the simulated IBM SP2 and SP.
//
// Usage:
//
//	tables [-scale f] [-steps n] [-only 1,2,3,4,5,6] [-v]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"overd"
)

func main() {
	scale := flag.Float64("scale", 1, "gridpoint budget multiplier (1 = paper size)")
	steps := flag.Int("steps", 4, "measured timesteps per run")
	only := flag.String("only", "1,2,3,4,5,6", "comma-separated tables to run")
	verbose := flag.Bool("v", false, "log per-run progress to stderr")
	figures := flag.Bool("figures", false, "render the speedup figures (Figs. 5/7/10) as text plots")
	flag.Parse()

	var logw io.Writer
	if *verbose {
		logw = os.Stderr
	}
	opt := overd.Options{Scale: *scale, Steps: *steps, Log: logw}
	want := map[string]bool{}
	for _, t := range strings.Split(*only, ",") {
		want[strings.TrimSpace(t)] = true
	}

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}

	if want["1"] {
		t, err := overd.RunTable1(opt)
		if err != nil {
			fail(err)
		}
		overd.FprintPerfTable(os.Stdout, t)
		if *figures {
			overd.FprintSpeedupFigure(os.Stdout, t, "SP2") // Fig. 5 left
			overd.FprintSpeedupFigure(os.Stdout, t, "SP")  // Fig. 5 right
		}
		fmt.Println()
	}
	if want["2"] {
		rows, err := overd.RunTable2(opt)
		if err != nil {
			fail(err)
		}
		overd.FprintTable2(os.Stdout, rows)
		fmt.Println()
	}
	if want["3"] {
		t, err := overd.RunTable3(opt)
		if err != nil {
			fail(err)
		}
		overd.FprintPerfTable(os.Stdout, t)
		if *figures {
			overd.FprintSpeedupFigure(os.Stdout, t, "SP2") // Fig. 7
		}
		fmt.Println()
	}
	if want["4"] {
		t, err := overd.RunTable4(opt)
		if err != nil {
			fail(err)
		}
		overd.FprintPerfTable(os.Stdout, t)
		if *figures {
			overd.FprintSpeedupFigure(os.Stdout, t, "SP2") // Fig. 10
		}
		fmt.Println()
	}
	if want["5"] {
		rows, err := overd.RunTable5(opt)
		if err != nil {
			fail(err)
		}
		overd.FprintTable5(os.Stdout, rows)
		fmt.Println()
	}
	if want["6"] {
		rows, err := overd.RunTable6(opt)
		if err != nil {
			fail(err)
		}
		overd.FprintTable6(os.Stdout, rows)
		fmt.Println()
	}
}
