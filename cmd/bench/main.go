// Command bench runs the repository's table-regeneration benchmarks
// (`Benchmark*` in the root package) under -benchmem and writes the parsed
// results as a machine-readable JSON trajectory file (BENCH_*.json).
//
// The wall-clock numbers are host-dependent; the point of the file is the
// allocation columns (allocs/op, B/op), which the hot-path optimization
// passes drive down while TestPerfPassBitIdentical pins the virtual-time
// results exactly.
//
// Usage:
//
//	bench [-bench regex] [-scale f] [-steps n] [-benchtime 1x] [-out BENCH_3.json]
//	bench -diff [-ns-threshold f] [-allocs-threshold f] [-bytes-threshold f] old.json new.json
//
// In -diff mode the two positional files are compared benchmark-by-benchmark
// and the exit status is 1 when any result regressed beyond the thresholds —
// a CI tripwire against re-introducing the allocations the perf passes
// removed.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
)

// benchFile is the BENCH_*.json document shape.
type benchFile struct {
	Harness   string        `json:"harness"`
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	Scale     float64       `json:"scale"`
	Steps     int           `json:"steps"`
	BenchTime string        `json:"benchtime"`
	Results   []BenchResult `json:"results"`
}

func main() {
	benchRe := flag.String("bench", "BenchmarkTable", "benchmark regex passed to go test -bench")
	scale := flag.Float64("scale", 0.1, "OVERD_BENCH_SCALE for the run (gridpoint budget multiplier)")
	steps := flag.Int("steps", 2, "OVERD_BENCH_STEPS for the run (measured timesteps)")
	benchtime := flag.String("benchtime", "1x", "go test -benchtime value")
	out := flag.String("out", "BENCH_3.json", "output JSON path")
	pkg := flag.String("pkg", ".", "package containing the benchmarks")
	diff := flag.Bool("diff", false, "compare two BENCH_*.json files (old new) instead of running benchmarks")
	nsThreshold := flag.Float64("ns-threshold", 0.30, "-diff: relative ns/op growth that counts as a regression")
	allocsThreshold := flag.Float64("allocs-threshold", 0.10, "-diff: relative allocs/op growth that counts as a regression")
	bytesThreshold := flag.Float64("bytes-threshold", 0.10, "-diff: relative B/op growth that counts as a regression")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	if *diff {
		if flag.NArg() != 2 {
			fail(fmt.Errorf("-diff wants exactly two files: old.json new.json (got %d args)", flag.NArg()))
		}
		oldDoc, err := loadBenchFile(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		newDoc, err := loadBenchFile(flag.Arg(1))
		if err != nil {
			fail(err)
		}
		rows, regressions := diffBench(oldDoc, newDoc,
			thresholds{ns: *nsThreshold, allocs: *allocsThreshold, bytes: *bytesThreshold})
		printDiff(os.Stdout, rows)
		if regressions > 0 {
			fail(fmt.Errorf("%d benchmark regression(s) beyond thresholds (ns %.0f%%, allocs %.0f%%, B %.0f%%)",
				regressions, 100**nsThreshold, 100**allocsThreshold, 100**bytesThreshold))
		}
		fmt.Printf("no regressions across %d benchmarks (%s vs %s)\n",
			len(rows), flag.Arg(0), flag.Arg(1))
		return
	}
	if *scale <= 0 {
		fail(fmt.Errorf("-scale must be > 0 (got %g)", *scale))
	}
	if *steps <= 0 {
		fail(fmt.Errorf("-steps must be > 0 (got %d)", *steps))
	}

	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", *benchRe, "-benchmem", "-benchtime", *benchtime, *pkg)
	cmd.Env = append(os.Environ(),
		fmt.Sprintf("OVERD_BENCH_SCALE=%g", *scale),
		fmt.Sprintf("OVERD_BENCH_STEPS=%d", *steps))
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	fmt.Fprintf(os.Stderr, "bench: go test -run '^$' -bench %q -benchmem -benchtime %s %s (scale %g, %d steps)\n",
		*benchRe, *benchtime, *pkg, *scale, *steps)
	if err := cmd.Run(); err != nil {
		os.Stderr.Write(buf.Bytes())
		fail(fmt.Errorf("go test -bench: %w", err))
	}

	results, err := parseBenchOutput(buf.String())
	if err != nil {
		os.Stderr.Write(buf.Bytes())
		fail(err)
	}

	doc := benchFile{
		Harness:   "cmd/bench",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Scale:     *scale,
		Steps:     *steps,
		BenchTime: *benchtime,
		Results:   results,
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fail(err)
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fail(err)
	}
	for _, r := range results {
		fmt.Printf("%-28s %14.0f ns/op %14d B/op %10d allocs/op\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	fmt.Printf("wrote %d benchmark results to %s\n", len(results), *out)
}
