// Command bench runs the repository's table-regeneration benchmarks
// (`Benchmark*` in the root package) under -benchmem and writes the parsed
// results as a machine-readable JSON trajectory file (BENCH_*.json).
//
// The wall-clock numbers are host-dependent; the point of the file is the
// allocation columns (allocs/op, B/op), which the hot-path optimization
// passes drive down while TestPerfPassBitIdentical pins the virtual-time
// results exactly.
//
// Usage:
//
//	bench [-bench regex] [-scale f] [-steps n] [-benchtime 1x] [-out BENCH_5.json]
//	      [-procs 1,2,4] [-cpuprofile cpu.prof] [-memprofile mem.prof]
//	bench -diff [-ns-threshold f] [-allocs-threshold f] [-bytes-threshold f] old.json new.json
//
// -procs sweeps the benchmarks across GOMAXPROCS values (forwarded to go
// test -cpu): each benchmark is measured once per proc count, result names
// keep the -N suffix end-to-end (the 1-proc run gets an explicit -1), and
// -diff on two sweep files compares like-with-like per proc count and
// reports a parallel-efficiency line (speedup at N procs vs 1).
//
// -cpuprofile and -memprofile are forwarded to go test, producing pprof
// files for `go tool pprof` alongside the JSON — the workflow the kernel
// optimization passes use to find the next hot spot.
//
// In -diff mode the two positional files are compared benchmark-by-benchmark
// and the exit status is 1 when any result regressed beyond the thresholds —
// a CI tripwire against re-introducing the allocations the perf passes
// removed.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
)

// benchFile is the BENCH_*.json document shape.
type benchFile struct {
	Harness   string  `json:"harness"`
	GoVersion string  `json:"go_version"`
	GOOS      string  `json:"goos"`
	GOARCH    string  `json:"goarch"`
	Scale     float64 `json:"scale"`
	Steps     int     `json:"steps"`
	BenchTime string  `json:"benchtime"`
	// Procs is the GOMAXPROCS sweep matrix (-procs); absent for the
	// historical single-proc shape where name suffixes are stripped.
	Procs   []int         `json:"procs,omitempty"`
	Results []BenchResult `json:"results"`
}

// benchFlags carries the raw command-line values for a measurement run;
// validateBenchFlags turns them into a clear error before any subprocess
// spawns. Keeping validation out of main() makes the edge cases testable
// without running the binary (same pattern as cmd/overd's runFlags).
type benchFlags struct {
	benchRe    string
	scale      float64
	steps      int
	benchtime  string
	out        string
	pkg        string
	cpuprofile string
	memprofile string
	procs      string
}

// parseProcs parses the -procs value (comma-separated positive ints, e.g.
// "1,2,4") into the sweep matrix. Empty means no sweep.
func parseProcs(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	procs := make([]int, 0, len(parts))
	seen := make(map[int]bool, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("-procs %q: want comma-separated positive proc counts (e.g. 1,2,4)", s)
		}
		if seen[n] {
			return nil, fmt.Errorf("-procs %q: proc count %d repeats", s, n)
		}
		seen[n] = true
		procs = append(procs, n)
	}
	return procs, nil
}

func validateBenchFlags(f benchFlags) error {
	if f.benchRe == "" {
		return fmt.Errorf("-bench must not be empty (use '.' to run everything)")
	}
	if f.scale <= 0 {
		return fmt.Errorf("-scale must be > 0 (got %g)", f.scale)
	}
	if f.steps <= 0 {
		return fmt.Errorf("-steps must be > 0 (got %d)", f.steps)
	}
	if f.benchtime == "" {
		return fmt.Errorf("-benchtime must not be empty (e.g. 1x or 2s)")
	}
	if f.out == "" {
		return fmt.Errorf("-out must not be empty")
	}
	if f.cpuprofile != "" && f.cpuprofile == f.out {
		return fmt.Errorf("-cpuprofile %q would overwrite the -out JSON file", f.cpuprofile)
	}
	if f.memprofile != "" && f.memprofile == f.out {
		return fmt.Errorf("-memprofile %q would overwrite the -out JSON file", f.memprofile)
	}
	if f.cpuprofile != "" && f.cpuprofile == f.memprofile {
		return fmt.Errorf("-cpuprofile and -memprofile both write %q", f.cpuprofile)
	}
	if _, err := parseProcs(f.procs); err != nil {
		return err
	}
	return nil
}

func main() {
	var bf benchFlags
	flag.StringVar(&bf.benchRe, "bench", "BenchmarkTable", "benchmark regex passed to go test -bench")
	flag.Float64Var(&bf.scale, "scale", 0.1, "OVERD_BENCH_SCALE for the run (gridpoint budget multiplier)")
	flag.IntVar(&bf.steps, "steps", 2, "OVERD_BENCH_STEPS for the run (measured timesteps)")
	flag.StringVar(&bf.benchtime, "benchtime", "1x", "go test -benchtime value")
	flag.StringVar(&bf.out, "out", "BENCH_5.json", "output JSON path")
	flag.StringVar(&bf.pkg, "pkg", ".", "package containing the benchmarks")
	flag.StringVar(&bf.cpuprofile, "cpuprofile", "", "forward to go test -cpuprofile (pprof output file)")
	flag.StringVar(&bf.memprofile, "memprofile", "", "forward to go test -memprofile (pprof output file)")
	flag.StringVar(&bf.procs, "procs", "", "comma-separated GOMAXPROCS sweep (e.g. 1,2,4), forwarded to go test -cpu; result names keep the -N suffix")
	diff := flag.Bool("diff", false, "compare two BENCH_*.json files (old new) instead of running benchmarks")
	nsThreshold := flag.Float64("ns-threshold", 0.30, "-diff: relative ns/op growth that counts as a regression")
	allocsThreshold := flag.Float64("allocs-threshold", 0.10, "-diff: relative allocs/op growth that counts as a regression")
	bytesThreshold := flag.Float64("bytes-threshold", 0.10, "-diff: relative B/op growth that counts as a regression")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	if *diff {
		if flag.NArg() != 2 {
			fail(fmt.Errorf("-diff wants exactly two files: old.json new.json (got %d args)", flag.NArg()))
		}
		oldDoc, err := loadBenchFile(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		newDoc, err := loadBenchFile(flag.Arg(1))
		if err != nil {
			fail(err)
		}
		// Proc-suffixed sweep files compare per proc count (names match
		// like-with-like by construction). A mixed pair is reconciled by
		// reducing the sweep side to its 1-proc results — loudly, never by
		// silently collapsing suffixes across different proc counts.
		oldProc, newProc := procMode(oldDoc), procMode(newDoc)
		if oldProc != newProc {
			if oldProc {
				fmt.Printf("note: %s is a -procs sweep and %s is not; comparing its 1-proc results against the unsuffixed baseline\n",
					flag.Arg(0), flag.Arg(1))
				oldDoc = collapseToOneProc(oldDoc)
			} else {
				fmt.Printf("note: %s is a -procs sweep and %s is not; comparing its 1-proc results against the unsuffixed baseline\n",
					flag.Arg(1), flag.Arg(0))
				newDoc = collapseToOneProc(newDoc)
			}
		}
		rows, regressions := diffBench(oldDoc, newDoc,
			thresholds{ns: *nsThreshold, allocs: *allocsThreshold, bytes: *bytesThreshold})
		printDiff(os.Stdout, rows)
		if oldProc && newProc {
			for _, line := range efficiencyLines(newDoc) {
				fmt.Println(line)
			}
		}
		if regressions > 0 {
			fail(fmt.Errorf("%d benchmark regression(s) beyond thresholds (ns %.0f%%, allocs %.0f%%, B %.0f%%)",
				regressions, 100**nsThreshold, 100**allocsThreshold, 100**bytesThreshold))
		}
		fmt.Printf("no regressions across %d benchmarks (%s vs %s)\n",
			len(rows), flag.Arg(0), flag.Arg(1))
		return
	}
	if err := validateBenchFlags(bf); err != nil {
		fail(err)
	}

	procs, _ := parseProcs(bf.procs) // validated above
	args := []string{"test", "-run", "^$",
		"-bench", bf.benchRe, "-benchmem", "-benchtime", bf.benchtime}
	if bf.procs != "" {
		args = append(args, "-cpu", bf.procs)
	}
	if bf.cpuprofile != "" {
		args = append(args, "-cpuprofile", bf.cpuprofile)
	}
	if bf.memprofile != "" {
		args = append(args, "-memprofile", bf.memprofile)
	}
	args = append(args, bf.pkg)
	cmd := exec.Command("go", args...)
	cmd.Env = append(os.Environ(),
		fmt.Sprintf("OVERD_BENCH_SCALE=%g", bf.scale),
		fmt.Sprintf("OVERD_BENCH_STEPS=%d", bf.steps))
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	fmt.Fprintf(os.Stderr, "bench: go test -run '^$' -bench %q -benchmem -benchtime %s %s (scale %g, %d steps)\n",
		bf.benchRe, bf.benchtime, bf.pkg, bf.scale, bf.steps)
	if err := cmd.Run(); err != nil {
		os.Stderr.Write(buf.Bytes())
		fail(fmt.Errorf("go test -bench: %w", err))
	}

	results, err := parseBenchOutput(buf.String(), len(procs) > 0)
	if err != nil {
		os.Stderr.Write(buf.Bytes())
		fail(err)
	}

	doc := benchFile{
		Harness:   "cmd/bench",
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Scale:     bf.scale,
		Steps:     bf.steps,
		BenchTime: bf.benchtime,
		Procs:     procs,
		Results:   results,
	}
	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fail(err)
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(bf.out, enc, 0o644); err != nil {
		fail(err)
	}
	for _, r := range results {
		fmt.Printf("%-28s %14.0f ns/op %14d B/op %10d allocs/op\n",
			r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	fmt.Printf("wrote %d benchmark results to %s\n", len(results), bf.out)
	for _, line := range efficiencyLines(doc) {
		fmt.Println(line)
	}
	if bf.cpuprofile != "" {
		fmt.Printf("cpu profile: go tool pprof %s\n", bf.cpuprofile)
	}
	if bf.memprofile != "" {
		fmt.Printf("mem profile: go tool pprof %s\n", bf.memprofile)
	}
}
