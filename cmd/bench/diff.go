package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// thresholds are the relative regression limits for -diff. A new value more
// than (1+limit)× the old one is a regression; improvements never fail.
type thresholds struct {
	ns     float64 // ns/op — wall clock, noisy, so the default is loose
	allocs float64 // allocs/op — deterministic per run, tight default
	bytes  float64 // B/op — mostly deterministic, tight default
}

// diffRow is one benchmark's old/new comparison.
type diffRow struct {
	Name       string
	Old, New   *BenchResult // nil when the side is missing
	Regression bool
	Notes      []string
}

func loadBenchFile(path string) (benchFile, error) {
	var doc benchFile
	data, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("%s: %v", path, err)
	}
	if len(doc.Results) == 0 {
		return doc, fmt.Errorf("%s: no benchmark results", path)
	}
	return doc, nil
}

// relDelta returns (new-old)/old; +Inf when old is zero and new is not.
func relDelta(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return new // treated as infinite growth; any positive value trips
	}
	return (new - old) / old
}

// diffBench compares two benchmark documents by benchmark name and flags
// regressions beyond the thresholds. Benchmarks present only in the new file
// are noted but never regressions (new coverage is fine); benchmarks that
// disappeared ARE regressions (lost coverage).
func diffBench(old, new benchFile, t thresholds) (rows []diffRow, regressions int) {
	newByName := map[string]*BenchResult{}
	for i := range new.Results {
		newByName[new.Results[i].Name] = &new.Results[i]
	}
	seen := map[string]bool{}
	for i := range old.Results {
		o := &old.Results[i]
		seen[o.Name] = true
		row := diffRow{Name: o.Name, Old: o, New: newByName[o.Name]}
		if row.New == nil {
			row.Regression = true
			row.Notes = append(row.Notes, "benchmark missing from new file")
			rows = append(rows, row)
			regressions++
			continue
		}
		n := row.New
		if d := relDelta(o.NsPerOp, n.NsPerOp); d > t.ns {
			row.Regression = true
			row.Notes = append(row.Notes, fmt.Sprintf("ns/op %+.1f%% (limit %+.0f%%)", 100*d, 100*t.ns))
		}
		if o.AllocsPerOp >= 0 && n.AllocsPerOp >= 0 {
			if d := relDelta(float64(o.AllocsPerOp), float64(n.AllocsPerOp)); d > t.allocs {
				row.Regression = true
				row.Notes = append(row.Notes, fmt.Sprintf("allocs/op %d -> %d (%+.1f%%, limit %+.0f%%)",
					o.AllocsPerOp, n.AllocsPerOp, 100*d, 100*t.allocs))
			}
		}
		if o.BytesPerOp >= 0 && n.BytesPerOp >= 0 {
			if d := relDelta(float64(o.BytesPerOp), float64(n.BytesPerOp)); d > t.bytes {
				row.Regression = true
				row.Notes = append(row.Notes, fmt.Sprintf("B/op %d -> %d (%+.1f%%, limit %+.0f%%)",
					o.BytesPerOp, n.BytesPerOp, 100*d, 100*t.bytes))
			}
		}
		row.Notes = append(row.Notes, diffMetrics(o.Metrics, n.Metrics)...)
		if row.Regression {
			regressions++
		}
		rows = append(rows, row)
	}
	for i := range new.Results {
		n := &new.Results[i]
		if !seen[n.Name] {
			rows = append(rows, diffRow{Name: n.Name, New: n,
				Notes: []string{"new benchmark (no baseline)"}})
		}
	}
	return rows, regressions
}

// diffMetrics compares the b.ReportMetric extras by unit. Custom units carry
// no better/worse direction the tool can assume, and newer files routinely
// grow units (or whole tables of them) an older baseline never recorded — so
// every outcome here is an informational note, never a regression, and
// unknown units on either side are tolerated rather than errors.
func diffMetrics(old, new []Metric) []string {
	if len(old) == 0 && len(new) == 0 {
		return nil
	}
	newByUnit := map[string]float64{}
	var newOrder []string
	for _, m := range new {
		if _, dup := newByUnit[m.Unit]; !dup {
			newOrder = append(newOrder, m.Unit)
		}
		newByUnit[m.Unit] = m.Value
	}
	var notes []string
	seen := map[string]bool{}
	for _, m := range old {
		if seen[m.Unit] {
			continue
		}
		seen[m.Unit] = true
		nv, ok := newByUnit[m.Unit]
		if !ok {
			notes = append(notes, fmt.Sprintf("metric %s: %g in old file only", m.Unit, m.Value))
			continue
		}
		if d := relDelta(m.Value, nv); d != 0 {
			notes = append(notes, fmt.Sprintf("metric %s: %g -> %g (%+.1f%%, informational)",
				m.Unit, m.Value, nv, 100*d))
		}
	}
	for _, unit := range newOrder {
		if !seen[unit] {
			notes = append(notes, fmt.Sprintf("metric %s: %g in new file only (no baseline)",
				unit, newByUnit[unit]))
		}
	}
	return notes
}

// procMode reports whether a bench file carries a -procs sweep: either the
// recorded matrix, or (for hand-assembled files) any per-result proc count.
func procMode(doc benchFile) bool {
	if len(doc.Procs) > 0 {
		return true
	}
	for _, r := range doc.Results {
		if r.Procs > 0 {
			return true
		}
	}
	return false
}

// collapseToOneProc reduces a sweep file to its 1-proc results with the
// name suffix stripped, the shape a pre-sweep baseline file has — used when
// -diff is handed one sweep file and one unsuffixed file.
func collapseToOneProc(doc benchFile) benchFile {
	out := doc
	out.Procs = nil
	out.Results = nil
	for _, r := range doc.Results {
		if r.Procs == 1 {
			r.Name = trimProcSuffix(r.Name)
			r.Procs = 0
			out.Results = append(out.Results, r)
		}
	}
	return out
}

// efficiencyLines reports, for every multi-proc result in a sweep file, the
// wall-clock speedup over the same benchmark's 1-proc result and the
// parallel efficiency (speedup / proc count).
func efficiencyLines(doc benchFile) []string {
	base := map[string]float64{} // benchmark base name -> 1-proc ns/op
	for _, r := range doc.Results {
		if r.Procs == 1 {
			base[trimProcSuffix(r.Name)] = r.NsPerOp
		}
	}
	var lines []string
	for _, r := range doc.Results {
		if r.Procs <= 1 {
			continue
		}
		name := trimProcSuffix(r.Name)
		b, ok := base[name]
		if !ok || b <= 0 || r.NsPerOp <= 0 {
			continue
		}
		sp := b / r.NsPerOp
		lines = append(lines, fmt.Sprintf(
			"parallel efficiency %-28s %d procs: speedup %.2fx vs 1 proc (efficiency %.0f%%)",
			name, r.Procs, sp, 100*sp/float64(r.Procs)))
	}
	return lines
}

func printDiff(w io.Writer, rows []diffRow) {
	for _, r := range rows {
		status := "ok"
		if r.Regression {
			status = "REGRESSION"
		} else if r.Old == nil {
			status = "new"
		}
		switch {
		case r.Old != nil && r.New != nil:
			fmt.Fprintf(w, "%-11s %-28s ns/op %12.0f -> %-12.0f B/op %10d -> %-10d allocs/op %7d -> %-7d\n",
				status, r.Name, r.Old.NsPerOp, r.New.NsPerOp,
				r.Old.BytesPerOp, r.New.BytesPerOp, r.Old.AllocsPerOp, r.New.AllocsPerOp)
		case r.Old != nil:
			fmt.Fprintf(w, "%-11s %-28s (only in old file)\n", status, r.Name)
		default:
			fmt.Fprintf(w, "%-11s %-28s ns/op %12.0f B/op %10d allocs/op %7d\n",
				status, r.Name, r.New.NsPerOp, r.New.BytesPerOp, r.New.AllocsPerOp)
		}
		for _, n := range r.Notes {
			fmt.Fprintf(w, "            %s\n", n)
		}
	}
}
