package main

import (
	"strings"
	"testing"
)

// validBenchFlags returns a flag set that passes validation; each test case
// mutates one field.
func validBenchFlags() benchFlags {
	return benchFlags{
		benchRe:   "BenchmarkTable",
		scale:     0.1,
		steps:     2,
		benchtime: "1x",
		out:       "BENCH_5.json",
		pkg:       ".",
	}
}

func TestValidateBenchFlags(t *testing.T) {
	cases := []struct {
		name    string
		mut     func(*benchFlags)
		wantErr string // substring; empty = must pass
	}{
		{"defaults", func(f *benchFlags) {}, ""},
		{"cpuprofile alone", func(f *benchFlags) { f.cpuprofile = "cpu.prof" }, ""},
		{"memprofile alone", func(f *benchFlags) { f.memprofile = "mem.prof" }, ""},
		{"both profiles", func(f *benchFlags) { f.cpuprofile, f.memprofile = "cpu.prof", "mem.prof" }, ""},
		{"empty bench regex", func(f *benchFlags) { f.benchRe = "" }, "-bench"},
		{"zero scale", func(f *benchFlags) { f.scale = 0 }, "-scale"},
		{"negative scale", func(f *benchFlags) { f.scale = -1 }, "-scale"},
		{"zero steps", func(f *benchFlags) { f.steps = 0 }, "-steps"},
		{"negative steps", func(f *benchFlags) { f.steps = -3 }, "-steps"},
		{"empty benchtime", func(f *benchFlags) { f.benchtime = "" }, "-benchtime"},
		{"empty out", func(f *benchFlags) { f.out = "" }, "-out"},
		{"cpuprofile clobbers out", func(f *benchFlags) { f.cpuprofile = f.out }, "overwrite"},
		{"memprofile clobbers out", func(f *benchFlags) { f.memprofile = f.out }, "overwrite"},
		{"profiles collide", func(f *benchFlags) { f.cpuprofile, f.memprofile = "p.prof", "p.prof" }, "both write"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := validBenchFlags()
			tc.mut(&f)
			err := validateBenchFlags(f)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("want valid, got %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got nil", tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("want error containing %q, got %q", tc.wantErr, err)
			}
		})
	}
}
