package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func benchDoc(results ...BenchResult) benchFile {
	return benchFile{Harness: "cmd/bench", Scale: 0.1, Steps: 2, Results: results}
}

func defThresholds() thresholds {
	return thresholds{ns: 0.30, allocs: 0.10, bytes: 0.10}
}

func TestDiffBenchDetectsAllocsRegression(t *testing.T) {
	old := benchDoc(
		BenchResult{Name: "BenchmarkTable1", NsPerOp: 1e8, BytesPerOp: 4 << 20, AllocsPerOp: 1000},
		BenchResult{Name: "BenchmarkTable4", NsPerOp: 2e8, BytesPerOp: 8 << 20, AllocsPerOp: 5000},
	)
	// Table4 allocs grow 25% — past the 10% default limit; Table1 is stable
	// and ns/op noise inside the 30% limit must not trip.
	cur := benchDoc(
		BenchResult{Name: "BenchmarkTable1", NsPerOp: 1.2e8, BytesPerOp: 4 << 20, AllocsPerOp: 1000},
		BenchResult{Name: "BenchmarkTable4", NsPerOp: 2e8, BytesPerOp: 8 << 20, AllocsPerOp: 6250},
	)
	rows, regressions := diffBench(old, cur, defThresholds())
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1", regressions)
	}
	var hit *diffRow
	for i := range rows {
		if rows[i].Name == "BenchmarkTable4" {
			hit = &rows[i]
		}
	}
	if hit == nil || !hit.Regression {
		t.Fatalf("BenchmarkTable4 not flagged: %+v", rows)
	}
	if len(hit.Notes) != 1 || !strings.Contains(hit.Notes[0], "allocs/op") {
		t.Errorf("notes = %v, want a single allocs/op note", hit.Notes)
	}
	var buf bytes.Buffer
	printDiff(&buf, rows)
	if !strings.Contains(buf.String(), "REGRESSION") {
		t.Errorf("printDiff output lacks REGRESSION marker:\n%s", buf.String())
	}
}

func TestDiffBenchIdenticalDocsPass(t *testing.T) {
	doc := benchDoc(
		BenchResult{Name: "BenchmarkTable1", NsPerOp: 1e8, BytesPerOp: 4 << 20, AllocsPerOp: 1000},
		BenchResult{Name: "BenchmarkTable6", NsPerOp: 3e8, BytesPerOp: 1 << 20, AllocsPerOp: 42},
	)
	rows, regressions := diffBench(doc, doc, defThresholds())
	if regressions != 0 {
		t.Fatalf("identical docs report %d regressions: %+v", regressions, rows)
	}
}

func TestDiffBenchImprovementsNeverFail(t *testing.T) {
	old := benchDoc(BenchResult{Name: "B", NsPerOp: 1e8, BytesPerOp: 1 << 20, AllocsPerOp: 1000})
	cur := benchDoc(BenchResult{Name: "B", NsPerOp: 1e7, BytesPerOp: 1 << 10, AllocsPerOp: 10})
	if _, regressions := diffBench(old, cur, defThresholds()); regressions != 0 {
		t.Fatalf("improvement counted as regression")
	}
}

func TestDiffBenchMissingAndNewBenchmarks(t *testing.T) {
	old := benchDoc(
		BenchResult{Name: "BenchmarkGone", NsPerOp: 1e8, AllocsPerOp: 100},
		BenchResult{Name: "BenchmarkKept", NsPerOp: 1e8, AllocsPerOp: 100},
	)
	cur := benchDoc(
		BenchResult{Name: "BenchmarkKept", NsPerOp: 1e8, AllocsPerOp: 100},
		BenchResult{Name: "BenchmarkAdded", NsPerOp: 1e8, AllocsPerOp: 100},
	)
	rows, regressions := diffBench(old, cur, defThresholds())
	if regressions != 1 {
		t.Fatalf("regressions = %d, want 1 (missing benchmark)", regressions)
	}
	var gone, added bool
	for _, r := range rows {
		if r.Name == "BenchmarkGone" && r.Regression {
			gone = true
		}
		if r.Name == "BenchmarkAdded" && !r.Regression && r.Old == nil {
			added = true
		}
	}
	if !gone || !added {
		t.Errorf("gone=%v added=%v rows=%+v", gone, added, rows)
	}
}

func TestDiffBenchZeroAllocBaseline(t *testing.T) {
	old := benchDoc(BenchResult{Name: "B", NsPerOp: 1e6, AllocsPerOp: 0})
	cur := benchDoc(BenchResult{Name: "B", NsPerOp: 1e6, AllocsPerOp: 3})
	if _, regressions := diffBench(old, cur, defThresholds()); regressions != 1 {
		t.Fatal("0 -> 3 allocs/op not flagged as a regression")
	}
}

// TestDiffBenchUnknownMetricsAreTolerated pins the forward-compatibility
// contract: a newer results file may carry benchmarks and custom metric
// units the baseline never recorded, and -diff must neither crash nor count
// them as regressions.
func TestDiffBenchUnknownMetricsAreTolerated(t *testing.T) {
	old := benchDoc(
		BenchResult{Name: "BenchmarkTable4", NsPerOp: 1e8, AllocsPerOp: 100,
			Metrics: []Metric{{Unit: "mflops/node", Value: 18.2}}},
	)
	cur := benchDoc(
		BenchResult{Name: "BenchmarkTable4", NsPerOp: 1e8, AllocsPerOp: 100,
			Metrics: []Metric{
				{Unit: "mflops/node", Value: 19.0},   // both sides: informational
				{Unit: "igbps/step", Value: 5400},    // new unit: tolerated
				{Unit: "orphans/step", Value: 0.125}, // new unit: tolerated
			}},
		BenchResult{Name: "BenchmarkTable9_Future", NsPerOp: 3e8, AllocsPerOp: 7,
			Metrics: []Metric{{Unit: "quux/op", Value: 1}}},
	)
	rows, regressions := diffBench(old, cur, defThresholds())
	if regressions != 0 {
		var buf bytes.Buffer
		printDiff(&buf, rows)
		t.Fatalf("unknown metrics/benchmarks counted as %d regressions:\n%s", regressions, buf.String())
	}
	var t4 *diffRow
	for i := range rows {
		if rows[i].Name == "BenchmarkTable4" {
			t4 = &rows[i]
		}
	}
	if t4 == nil {
		t.Fatal("BenchmarkTable4 row missing")
	}
	joined := strings.Join(t4.Notes, "\n")
	for _, want := range []string{"mflops/node", "igbps/step", "orphans/step", "informational", "no baseline"} {
		if !strings.Contains(joined, want) {
			t.Errorf("notes %q missing %q", joined, want)
		}
	}
	var buf bytes.Buffer
	printDiff(&buf, rows) // must not panic on metric-only notes
	if !strings.Contains(buf.String(), "BenchmarkTable9_Future") {
		t.Errorf("new benchmark not shown:\n%s", buf.String())
	}
}

// TestDiffBenchOldOnlyMetricIsNoteNotRegression: a unit that vanished from
// the newer file is surfaced but stays advisory.
func TestDiffBenchOldOnlyMetricIsNoteNotRegression(t *testing.T) {
	old := benchDoc(BenchResult{Name: "B", NsPerOp: 1e6, AllocsPerOp: 1,
		Metrics: []Metric{{Unit: "gone/op", Value: 3}}})
	cur := benchDoc(BenchResult{Name: "B", NsPerOp: 1e6, AllocsPerOp: 1})
	rows, regressions := diffBench(old, cur, defThresholds())
	if regressions != 0 {
		t.Fatalf("vanished metric counted as a regression: %+v", rows)
	}
	if len(rows) != 1 || !strings.Contains(strings.Join(rows[0].Notes, " "), "gone/op") {
		t.Errorf("vanished metric not noted: %+v", rows)
	}
}

// TestLoadBenchFileUnknownFields: newer writers may add top-level fields
// (extra tables, environment stamps); the loader must ignore them.
func TestLoadBenchFileUnknownFields(t *testing.T) {
	path := t.TempDir() + "/new.json"
	doc := `{
  "harness": "cmd/bench", "scale": 0.1, "steps": 2,
  "future_table": {"rows": [1, 2, 3]},
  "results": [
    {"name": "BenchmarkKept", "iters": 3, "ns_per_op": 1e8,
     "bytes_per_op": 10, "allocs_per_op": 5,
     "metrics": [{"unit": "quux/op", "value": 2, "future_field": true}]}
  ]
}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := loadBenchFile(path)
	if err != nil {
		t.Fatalf("unknown top-level fields rejected: %v", err)
	}
	if len(got.Results) != 1 || got.Results[0].Name != "BenchmarkKept" {
		t.Fatalf("results mangled: %+v", got.Results)
	}
	if len(got.Results[0].Metrics) != 1 || got.Results[0].Metrics[0].Unit != "quux/op" {
		t.Fatalf("metrics mangled: %+v", got.Results[0].Metrics)
	}
}

// TestDiffBenchCommittedBaselineAgainstItself pins the CI contract: the
// committed trajectory file always passes a self-diff, so the advisory
// bench-diff job can only fail on a genuine change.
func TestDiffBenchCommittedBaselineAgainstItself(t *testing.T) {
	doc, err := loadBenchFile("../../BENCH_5.json")
	if err != nil {
		t.Fatalf("loading committed baseline: %v", err)
	}
	rows, regressions := diffBench(doc, doc, defThresholds())
	if regressions != 0 {
		var buf bytes.Buffer
		printDiff(&buf, rows)
		t.Fatalf("BENCH_3.json vs itself reports %d regressions:\n%s", regressions, buf.String())
	}
	if len(rows) == 0 {
		t.Fatal("no rows compared")
	}
}
