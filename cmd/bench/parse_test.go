package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: overd
cpu: SomeCPU @ 2.40GHz
BenchmarkTable1_OscAirfoil-8   	       1	1234567890 ns/op	 22334455 B/op	  334455 allocs/op	        14.21 Mflops/node@base	         1.50 speedup@max
--- BENCH: BenchmarkTable1_OscAirfoil-8
    bench_test.go:35: options: scale 0.1, 2 steps
BenchmarkTable4_StoreSep-8     	       1	9777293443 ns/op	4346849736 B/op	  605307 allocs/op
PASS
ok  	overd	21.5s
`

func TestParseBenchOutput(t *testing.T) {
	results, err := parseBenchOutput(sampleOutput, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2: %+v", len(results), results)
	}

	r := results[0]
	if r.Name != "Table1_OscAirfoil" {
		t.Errorf("name = %q, want Table1_OscAirfoil (suffix stripped)", r.Name)
	}
	if r.Iters != 1 || r.NsPerOp != 1234567890 || r.BytesPerOp != 22334455 || r.AllocsPerOp != 334455 {
		t.Errorf("standard columns wrong: %+v", r)
	}
	if len(r.Metrics) != 2 || r.Metrics[0].Unit != "Mflops/node@base" || r.Metrics[0].Value != 14.21 ||
		r.Metrics[1].Unit != "speedup@max" || r.Metrics[1].Value != 1.5 {
		t.Errorf("custom metrics wrong: %+v", r.Metrics)
	}

	r = results[1]
	if r.Name != "Table4_StoreSep" || r.AllocsPerOp != 605307 || len(r.Metrics) != 0 {
		t.Errorf("second result wrong: %+v", r)
	}
}

func TestTrimProcSuffix(t *testing.T) {
	cases := []struct {
		in, want string
	}{
		{"Table4_StoreSep-8", "Table4_StoreSep"},
		{"Table4_StoreSep-128", "Table4_StoreSep"},
		{"Halo-SIMD", "Halo-SIMD"},       // hyphenated name, no proc suffix
		{"Halo-SIMD-8", "Halo-SIMD"},     // hyphenated name with suffix
		{"Halo-SIMD-v2", "Halo-SIMD-v2"}, // trailing segment not all digits
		{"Table1_OscAirfoil", "Table1_OscAirfoil"},
		{"X-", "X-"}, // trailing hyphen, nothing to strip
		{"-8", "-8"}, // leading hyphen is not a suffix separator
		{"", ""},
	}
	for _, c := range cases {
		if got := trimProcSuffix(c.in); got != c.want {
			t.Errorf("trimProcSuffix(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseBenchOutputHyphenatedName(t *testing.T) {
	results, err := parseBenchOutput("BenchmarkHalo-SIMD-8 \t 3 \t 400 ns/op\nPASS\n", false)
	if err != nil {
		t.Fatal(err)
	}
	if r := results[0]; r.Name != "Halo-SIMD" {
		t.Errorf("name = %q, want Halo-SIMD (only the proc suffix stripped)", r.Name)
	}
}

func TestParseBenchOutputNoBenchmem(t *testing.T) {
	results, err := parseBenchOutput("BenchmarkX-4 \t 2 \t 500 ns/op\nPASS\n", false)
	if err != nil {
		t.Fatal(err)
	}
	if r := results[0]; r.BytesPerOp != -1 || r.AllocsPerOp != -1 {
		t.Errorf("missing -benchmem columns should be -1, got %+v", r)
	}
}

func TestParseBenchOutputErrors(t *testing.T) {
	if _, err := parseBenchOutput("PASS\nok  \tsomething\t1.2s\n", false); err == nil {
		t.Error("want error when no benchmark lines present")
	}
	_, err := parseBenchOutput("BenchmarkY-4 \t 1 \t bogus ns/op\n", false)
	if err == nil || !strings.Contains(err.Error(), "bad value") {
		t.Errorf("want bad-value error, got %v", err)
	}
}
