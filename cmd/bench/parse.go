package main

import (
	"bufio"
	"fmt"
	"strconv"
	"strings"
)

// BenchResult is one parsed `go test -bench` result line.
type BenchResult struct {
	// Name is the benchmark name. In the default single-proc mode the
	// -GOMAXPROCS suffix is stripped (BenchmarkTable4_StoreSep-8 ->
	// Table4_StoreSep); in a -procs sweep the suffix is kept — normalized
	// so the 1-proc run carries an explicit "-1" — and Procs records it.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS the result was measured at (0 in the default
	// mode, where the suffix is stripped and proc count is not tracked).
	Procs int `json:"procs,omitempty"`
	// Iters is the measured iteration count (b.N).
	Iters int `json:"iters"`
	// NsPerOp, BytesPerOp and AllocsPerOp are the standard -benchmem
	// columns; BytesPerOp/AllocsPerOp are -1 when -benchmem was off.
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Metrics holds the b.ReportMetric extras in order of appearance.
	Metrics []Metric `json:"metrics,omitempty"`
}

// Metric is one custom b.ReportMetric value.
type Metric struct {
	Unit  string  `json:"unit"`
	Value float64 `json:"value"`
}

// splitProcSuffix splits the -GOMAXPROCS suffix the bench runner appends
// (Table4_StoreSep-8 -> Table4_StoreSep, 8). Only a trailing run of digits
// after the final hyphen qualifies: a hyphen elsewhere in the name
// (Halo-SIMD) is part of the name, not a processor count. procs is 0 when
// the name has no suffix (go test omits it at GOMAXPROCS=1).
func splitProcSuffix(name string) (base string, procs int) {
	i := strings.LastIndex(name, "-")
	if i <= 0 || i+1 == len(name) {
		return name, 0
	}
	n, err := strconv.Atoi(name[i+1:])
	if err != nil || n <= 0 {
		return name, 0
	}
	return name[:i], n
}

// trimProcSuffix strips the -GOMAXPROCS suffix if present.
func trimProcSuffix(name string) string {
	base, _ := splitProcSuffix(name)
	return base
}

// parseBenchOutput extracts result lines from `go test -bench -benchmem`
// output. Lines it does not recognize (logs, PASS, ok) are skipped.
//
// keepProcs selects the -procs sweep mode: the -GOMAXPROCS name suffix is
// kept end-to-end (normalized so the 1-proc run, which go test leaves
// unsuffixed, carries an explicit "-1") and recorded in Procs, so a sweep
// file holds one distinct result per (benchmark, proc count) pair. With
// keepProcs false the suffix is stripped, the historical single-proc shape.
func parseBenchOutput(out string, keepProcs bool) ([]BenchResult, error) {
	var results []BenchResult
	sc := bufio.NewScanner(strings.NewReader(out))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, iters, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.Atoi(fields[1])
		if err != nil {
			continue
		}
		base, procs := splitProcSuffix(strings.TrimPrefix(fields[0], "Benchmark"))
		r := BenchResult{Name: base, Iters: iters, BytesPerOp: -1, AllocsPerOp: -1}
		if keepProcs {
			if procs == 0 {
				procs = 1
			}
			r.Name = fmt.Sprintf("%s-%d", base, procs)
			r.Procs = procs
		}
		for i := 2; i+1 < len(fields); i += 2 {
			val, unit := fields[i], fields[i+1]
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("bench line %q: bad value %q for unit %q", line, val, unit)
			}
			switch unit {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			default:
				r.Metrics = append(r.Metrics, Metric{Unit: unit, Value: v})
			}
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found in output")
	}
	return results, nil
}
