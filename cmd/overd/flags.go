package main

import (
	"fmt"
	"net"
	"path/filepath"
	"strconv"
	"strings"

	"overd"
)

// runFlags carries the raw command-line values; validateRunFlags turns them
// into runnable pieces or a clear error. Keeping validation out of main()
// makes the edge cases testable without spawning the binary.
type runFlags struct {
	caseName        string
	nodes           int
	machineName     string
	steps           int
	scale           float64
	fo              float64
	balancer        string
	checkEvery      int
	checkpointEvery int
	faultsPath      string
	fieldOut        string
	metricsOut      string
	serveAddr       string
	workers         int
}

// validated holds the parts of the config that validation resolves.
type validated struct {
	c         *overd.Case
	m         overd.Machine
	fieldGrid int
	fieldFile string
}

// validateServeAddr checks a -serve listen address for host:port shape.
func validateServeAddr(addr string) error {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("-serve %q: want host:port (e.g. :9090 or localhost:9090): %v", addr, err)
	}
	if p, err := strconv.Atoi(port); err != nil || p < 0 || p > 65535 {
		return fmt.Errorf("-serve %q: port %q is not a number in 0..65535", addr, port)
	}
	_ = host // empty host = all interfaces, fine
	return nil
}

func validateRunFlags(f runFlags) (validated, error) {
	var v validated
	if f.nodes <= 0 {
		return v, fmt.Errorf("-nodes %d: the simulated machine needs at least one processor", f.nodes)
	}
	if f.steps < 0 {
		return v, fmt.Errorf("-steps %d: the timestep count cannot be negative", f.steps)
	}
	if f.scale <= 0 {
		return v, fmt.Errorf("-scale %g: the gridpoint budget multiplier must be positive", f.scale)
	}
	if f.fo < 0 {
		return v, fmt.Errorf("-fo %g: the load-balance factor cannot be negative (use +Inf or 0 to disable)", f.fo)
	}
	if f.checkEvery <= 0 {
		return v, fmt.Errorf("-check %d: the balance-check interval must be positive", f.checkEvery)
	}
	if f.workers < 0 {
		return v, fmt.Errorf("-workers %d: the parallelism bound cannot be negative (0 means unbounded)", f.workers)
	}
	if err := overd.ValidateBalancer(f.balancer, f.fo); err != nil {
		return v, fmt.Errorf("-balancer %v", err)
	}
	if f.checkpointEvery > 0 && f.faultsPath == "" {
		return v, fmt.Errorf("-checkpoint-every %d without -faults: checkpoints only matter when the fault plan can crash ranks", f.checkpointEvery)
	}
	if f.metricsOut != "" {
		switch ext := strings.ToLower(filepath.Ext(f.metricsOut)); ext {
		case ".prom", ".txt", ".json":
		default:
			return v, fmt.Errorf("-metrics %q: want a .prom/.txt (Prometheus text) or .json extension, got %q", f.metricsOut, ext)
		}
	}
	// -serve is valid on its own (job-service daemon) or with -metrics
	// (live view of a one-shot run); only the address syntax is checked.
	if f.serveAddr != "" {
		if err := validateServeAddr(f.serveAddr); err != nil {
			return v, err
		}
	}

	switch f.caseName {
	case "airfoil":
		v.c = overd.OscillatingAirfoil(f.scale)
	case "deltawing":
		v.c = overd.DescendingDeltaWing(f.scale)
	case "storesep":
		v.c = overd.StoreSeparation(f.scale)
	default:
		return v, fmt.Errorf("unknown case %q (valid: airfoil, deltawing, storesep)", f.caseName)
	}

	m, err := overd.MachineByName(f.machineName)
	if err != nil {
		return v, err
	}
	v.m = m

	v.fieldGrid = -1
	if f.fieldOut != "" {
		var gid int
		var file string
		if _, err := fmt.Sscanf(f.fieldOut, "%d:%s", &gid, &file); err != nil {
			return v, fmt.Errorf("-field wants gridID:file.csv (got %q): %v", f.fieldOut, err)
		}
		if gid < 0 || gid >= len(v.c.Sys.Grids) {
			return v, fmt.Errorf("-field grid %d out of range: case %s has grids 0..%d", gid, v.c.Name, len(v.c.Sys.Grids)-1)
		}
		v.fieldGrid = gid
		v.fieldFile = file
	}
	return v, nil
}
