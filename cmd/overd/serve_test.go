package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"overd"
	"overd/internal/metrics"
	"overd/internal/serve"
)

// populatedRegistry runs a tiny case so the live registry has real series.
func populatedRegistry(t *testing.T) *overd.MetricsRegistry {
	t.Helper()
	reg := overd.NewMetricsRegistry()
	cfg := overd.Config{
		Case: overd.OscillatingAirfoil(0.05), Nodes: 4,
		Machine: overd.SP2(), Steps: 1, CheckInterval: 5,
		Metrics: reg, Trace: overd.NewTraceRecorder(),
	}
	if _, err := overd.Run(cfg); err != nil {
		t.Fatal(err)
	}
	return reg
}

// TestStartMetricsServerEndpoints covers the legacy -serve+-metrics mux:
// status codes, content types, and that /metrics round-trips through the
// strict Prometheus parser.
func TestStartMetricsServerEndpoints(t *testing.T) {
	reg := populatedRegistry(t)
	bound, err := startMetricsServer("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + bound

	get := func(path string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, b
	}

	resp, body := get("/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4" {
		t.Errorf("/metrics content type %q", ct)
	}
	fams, err := metrics.ParsePrometheus(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("/metrics output does not re-parse: %v", err)
	}
	if len(fams) == 0 {
		t.Error("/metrics exported no families from a populated registry")
	}

	resp, body = get("/metrics?format=json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics?format=json status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/metrics json content type %q", ct)
	}
	if !json.Valid(body) {
		t.Error("/metrics?format=json is not valid JSON")
	}

	resp, body = get("/debug/vars")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars status %d", resp.StatusCode)
	}
	if !json.Valid(body) {
		t.Error("/debug/vars is not valid JSON")
	}

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, _ := get(path)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status %d", path, resp.StatusCode)
		}
	}
}

// TestRunJobServiceGracefulShutdown: the daemon serves jobs, and cancelling
// its context (the SIGINT/SIGTERM path in main) drains and returns nil.
func TestRunJobServiceGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boundc := make(chan string, 1)
	errc := make(chan error, 1)
	go func() {
		errc <- runJobService(ctx, "127.0.0.1:0", serve.Config{Workers: 1},
			func(bound string) { boundc <- bound })
	}()
	var base string
	select {
	case b := <-boundc:
		base = "http://" + b
	case err := <-errc:
		t.Fatalf("service exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("service never became ready")
	}

	resp, err := http.Post(base+"/jobs", "application/json",
		strings.NewReader(`{"case":"airfoil","nodes":4,"steps":1,"scale":0.05}`))
	if err != nil {
		t.Fatal(err)
	}
	var v struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs status %d", resp.StatusCode)
	}
	deadline := time.Now().Add(20 * time.Second)
	for v.Status != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", v.ID, v.Status)
		}
		time.Sleep(10 * time.Millisecond)
		r, err := http.Get(base + "/jobs/" + v.ID)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
	}

	cancel() // what SIGINT/SIGTERM does in main
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("service did not shut down after cancel")
	}
	if _, err := http.Get(base + "/metrics"); err == nil {
		t.Error("listener still accepting connections after shutdown")
	}
}

// TestRunJobServiceBadAddr surfaces bind failures as errors, not hangs.
func TestRunJobServiceBadAddr(t *testing.T) {
	err := runJobService(context.Background(), "256.0.0.1:99999", serve.Config{}, nil)
	if err == nil {
		t.Fatal("expected bind error")
	}
	if !strings.Contains(err.Error(), "-serve") {
		t.Errorf("bind error %q does not name the flag", err)
	}
}
