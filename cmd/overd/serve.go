package main

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"

	"overd"
)

// startMetricsServer exposes the live registry over HTTP while the run is in
// progress. The registry's per-shard locks make concurrent scrapes safe, and
// scrapes never touch the virtual clocks — observers on the host wall clock
// cannot perturb the simulation. Returns the bound address (useful when the
// caller asked for port 0).
func startMetricsServer(addr string, reg *overd.MetricsRegistry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("-serve %s: %v", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			if err := reg.WriteJSON(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	// Host-process introspection rides along: Go runtime counters and
	// profiles describe the simulator itself, not the simulated machine.
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		// The process exits when the run completes; the listener dies with it.
		_ = http.Serve(ln, mux)
	}()
	return ln.Addr().String(), nil
}
