package main

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"overd"
	"overd/internal/serve"
)

// startMetricsServer exposes the live registry over HTTP while the run is in
// progress. The registry's per-shard locks make concurrent scrapes safe, and
// scrapes never touch the virtual clocks — observers on the host wall clock
// cannot perturb the simulation. Returns the bound address (useful when the
// caller asked for port 0).
func startMetricsServer(addr string, reg *overd.MetricsRegistry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("-serve %s: %v", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			if err := reg.WriteJSON(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := reg.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	// Host-process introspection rides along: Go runtime counters and
	// profiles describe the simulator itself, not the simulated machine.
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		// The process exits when the run completes; the listener dies with it.
		_ = http.Serve(ln, mux)
	}()
	return ln.Addr().String(), nil
}

// runJobService runs the multi-tenant job service (-serve without -metrics):
// it binds addr, serves internal/serve's HTTP API, and blocks until ctx is
// cancelled — then drains gracefully, refusing new work while queued and
// running jobs finish. ready (may be nil) is told the bound address once the
// listener is up, which makes ":0" usable in tests.
func runJobService(ctx context.Context, addr string, cfg serve.Config, ready func(bound string)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("-serve %s: %v", addr, err)
	}
	s, err := serve.NewServer(cfg)
	if err != nil {
		ln.Close()
		return err
	}
	s.Start()
	hs := &http.Server{Handler: s.Handler()}
	served := make(chan error, 1)
	go func() { served <- hs.Serve(ln) }()
	if ready != nil {
		ready(ln.Addr().String())
	}
	select {
	case err := <-served:
		// The listener failed out from under us; still drain admitted work.
		drain, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(drain)
		return err
	case <-ctx.Done():
	}
	drain, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := hs.Shutdown(drain); err != nil {
		return err
	}
	return s.Shutdown(drain)
}
