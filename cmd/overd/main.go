// Command overd runs one of the paper's moving-body overset cases on a
// simulated machine and reports the paper-style performance statistics.
//
// Usage:
//
//	overd -case airfoil|deltawing|storesep [-nodes n] [-machine SP2|SP]
//	      [-steps n] [-scale f] [-fo f] [-workers k] [-dump] [-field out.csv]
//	      [-trace out.json] [-trace-summary]
//	      [-metrics out.prom|out.json] [-serve :9090]
//	      [-faults plan.json] [-checkpoint-every n]
//
// With -serve and no -metrics, overd instead runs the multi-tenant job
// service daemon (POST /jobs et al.; see internal/serve) until SIGINT or
// SIGTERM, draining in-flight jobs before exiting.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"overd"
	"overd/internal/plot3d"
	"overd/internal/report"
	"overd/internal/serve"
)

func main() {
	caseName := flag.String("case", "airfoil", "airfoil, deltawing or storesep")
	nodes := flag.Int("nodes", 12, "simulated processor count")
	machineName := flag.String("machine", "SP2", "SP2 or SP")
	steps := flag.Int("steps", 5, "timesteps")
	scale := flag.Float64("scale", 1, "gridpoint budget multiplier (1 = paper size)")
	fo := flag.Float64("fo", math.Inf(1), "dynamic load-balance factor (Algorithm 2); +Inf disables")
	checkEvery := flag.Int("check", 5, "steps between dynamic-balance checks")
	workers := flag.Int("workers", 0, "bound on rank goroutines running simultaneously (0 = unbounded; results are bit-identical at any value)")
	balancerName := flag.String("balancer", "", "load balancer: "+strings.Join(overd.BalancerNames(), ", ")+" (empty resolves from -fo)")
	dump := flag.Bool("dump", false, "print the grid system and static partition, then exit")
	fieldOut := flag.String("field", "", "write a field CSV of the given grid id after the run (format gridID:file.csv)")
	xyzOut := flag.String("xyz", "", "write the grid system as a PLOT3D XYZ file after the run (suffix .g for ASCII, .gb for binary)")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON of the run (open in chrome://tracing or Perfetto)")
	traceSummary := flag.Bool("trace-summary", false, "print per-rank busy/wait breakdowns and the critical path")
	faultsPath := flag.String("faults", "", "JSON fault plan: stragglers, degraded links, message loss, rank crashes (see package fault)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "steps between crash-recovery checkpoints (0 = auto when the plan crashes ranks, negative = off)")
	metricsOut := flag.String("metrics", "", "write run metrics after the run (.prom/.txt = Prometheus text, .json = JSON)")
	serveAddr := flag.String("serve", "", "with -metrics: serve that run's live /metrics on this host:port; alone: run the multi-tenant job service daemon here instead of a one-shot run")
	serveWorkers := flag.Int("serve-workers", 0, "job-service worker-pool size (0 = default)")
	serveQueue := flag.Int("serve-queue", 0, "job-service admission queue depth (0 = default)")
	serveCacheDir := flag.String("serve-cache-dir", "", "job-service persistent result-cache directory (empty = memory only)")
	serveJournalDir := flag.String("serve-journal-dir", "", "job-service durable journal directory: admitted jobs are fsync'd and replayed after a crash (empty = no journal)")
	serveFlight := flag.Int("serve-flight", 0, "job-service span flight-recorder capacity: the last N finished jobs keep wall-clock spans for GET /jobs/{id}/spans and /status (0 = default 64, negative = disable the span layer)")
	flag.Parse()

	if *serveAddr != "" && *metricsOut == "" {
		// Daemon mode: no one-shot run; the POST body picks case/machine/
		// scale per job, so the run flags are ignored.
		if err := validateServeAddr(*serveAddr); err != nil {
			log.Fatal(err)
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		err := runJobService(ctx, *serveAddr, serve.Config{
			Workers: *serveWorkers, QueueDepth: *serveQueue,
			CacheDir: *serveCacheDir, JournalDir: *serveJournalDir,
			FlightRecorder: *serveFlight,
			Logf:           log.Printf,
		}, func(bound string) {
			fmt.Printf("overd job service on http://%s — POST /jobs, GET /jobs/{id}[/result|/events|/spans], /status, /metrics (SIGINT/SIGTERM drains and exits)\n", bound)
		})
		if err != nil {
			log.Fatal(err)
		}
		return
	}

	v, err := validateRunFlags(runFlags{
		caseName: *caseName, nodes: *nodes, machineName: *machineName,
		steps: *steps, scale: *scale, fo: *fo, balancer: *balancerName,
		checkEvery: *checkEvery, checkpointEvery: *checkpointEvery,
		faultsPath: *faultsPath, fieldOut: *fieldOut,
		metricsOut: *metricsOut, serveAddr: *serveAddr,
		workers: *workers,
	})
	if err != nil {
		log.Fatal(err)
	}
	c, m := v.c, v.m

	fmt.Printf("case %s: %d grids, %d composite gridpoints\n",
		c.Name, len(c.Sys.Grids), c.Sys.NPoints())

	if *dump {
		fmt.Println("\ncomponent grids:")
		for i, g := range c.Sys.Grids {
			kind := "curvilinear"
			if g.Cartesian {
				kind = "cartesian"
			}
			tags := ""
			if g.Moving {
				tags += " moving"
			}
			if g.Viscous {
				tags += " viscous"
			}
			if g.Turbulent {
				tags += " turbulent"
			}
			fmt.Printf("  %2d %-16s %4dx%3dx%3d = %7d points  %s%s\n",
				i, g.Name, g.NI, g.NJ, g.NK, g.NPoints(), kind, tags)
		}
		return
	}

	cfg := overd.Config{
		Case: c, Nodes: *nodes, Machine: m, Steps: *steps,
		Fo: *fo, CheckInterval: *checkEvery, Balancer: *balancerName,
		CheckpointEvery: *checkpointEvery, Workers: *workers,
	}
	if *faultsPath != "" {
		plan, err := overd.LoadFaultPlan(*faultsPath)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Faults = plan
		fmt.Printf("fault plan %s: %d stragglers, %d degraded links, %d loss rules, %d crashes (seed %d)\n",
			*faultsPath, len(plan.Stragglers), len(plan.Links), len(plan.Losses),
			len(plan.Crashes), plan.Seed)
	}
	var rec *overd.TraceRecorder
	if *traceOut != "" || *traceSummary {
		rec = overd.NewTraceRecorder()
		cfg.Trace = rec
	}
	var reg *overd.MetricsRegistry
	if *metricsOut != "" {
		reg = overd.NewMetricsRegistry()
		cfg.Metrics = reg
		if cfg.Trace == nil {
			// The post-run roll-up copies per-rank busy/wait totals out of
			// the trace summary; attach a recorder so they are present even
			// when no trace output was requested.
			cfg.Trace = overd.NewTraceRecorder()
		}
		if *serveAddr != "" {
			bound, err := startMetricsServer(*serveAddr, reg)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("serving live metrics on http://%s/metrics (also /debug/vars, /debug/pprof)\n", bound)
		}
	}
	var spec overd.SampleSpec
	spec.FieldGrid, spec.FieldK, spec.SurfaceGrid = -1, -1, -1
	if v.fieldGrid >= 0 {
		spec.FieldGrid = v.fieldGrid
		cfg.Sample = &spec
		defer func() { writeField(v.fieldFile, cfg) }()
	}

	res, err := overd.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	lastRes = res

	fmt.Printf("\nprocessors per grid (balancer %s): %v  (τ = %.3f)\n",
		res.Config.Balancer, res.Np, res.Tau)
	fmt.Printf("IGBPs: %d  orphans: %d\n", res.IGBPs, res.Orphans)
	if res.Rebalances > 0 {
		fmt.Printf("step-boundary repartitions: %d (%d gridpoints moved)\n",
			res.Rebalances, res.MovedPoints)
	}
	fmt.Printf("\nvirtual time: %.3f s over %d steps (%.3f s/step) on the %s\n",
		res.TotalTime, len(res.Steps), res.TimePerStep(), m.Name)
	fmt.Printf("module breakdown: flow %.3fs  motion %.3fs  connect %.3fs  balance %.3fs\n",
		res.FlowTime, res.MotionTime, res.ConnectTime, res.BalanceTime)
	fmt.Printf("avg Mflops/node: %.1f   %%time in DCF3D: %.1f%%\n",
		res.MflopsPerNode(), res.PctConnect())

	fs := report.FaultStats{
		Recoveries: res.Recoveries, RecoverySteps: res.RecoverySteps,
		RecoveryTime: res.RecoveryTime,
		Checkpoints:  res.Checkpoints, CheckpointTime: res.CheckpointTime,
		StartNodes: *nodes, FinalNodes: res.FinalNodes,
		DroppedMsgs: res.DroppedMsgs, SendRetries: res.SendRetries,
		FaultWaitTime: res.FaultWaitTime,
	}
	if cfg.Faults != nil || fs.Any() {
		fmt.Println()
		report.FaultSummary(os.Stdout, fs)
	}

	if rec != nil {
		if *traceSummary {
			fmt.Printf("\nwait breakdown (rank 0): flow %.3fs  motion %.3fs  connect %.3fs  balance %.3fs  (%.1f%% of run blocked)\n",
				res.FlowWaitTime, res.MotionWaitTime, res.ConnectWaitTime,
				res.BalanceWaitTime, res.PctWait())
			s := rec.Summarize()
			fmt.Println()
			report.BusyWaitGantt(os.Stdout, s, 48)
			fmt.Println()
			report.PhaseWaitTable(os.Stdout, s, rec.PhaseLabel)
			fmt.Println()
			rec.CriticalPath().Fprint(os.Stdout, rec)
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				log.Fatal(err)
			}
			if err := rec.WriteChromeTrace(f); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("wrote Chrome trace (%d ranks) to %s — open in chrome://tracing or https://ui.perfetto.dev\n",
				rec.NRanks(), *traceOut)
		}
	}

	if reg != nil {
		f, err := os.Create(*metricsOut)
		if err != nil {
			log.Fatal(err)
		}
		werr := error(nil)
		if strings.HasSuffix(strings.ToLower(*metricsOut), ".json") {
			werr = reg.WriteJSON(f)
		} else {
			werr = reg.WritePrometheus(f)
		}
		if werr != nil {
			log.Fatal(werr)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote run metrics (%d ranks) to %s\n", reg.NRanks(), *metricsOut)
	}

	if *xyzOut != "" {
		f, err := os.Create(*xyzOut)
		if err != nil {
			log.Fatal(err)
		}
		format := plot3d.ASCII
		if strings.HasSuffix(*xyzOut, ".gb") {
			format = plot3d.Binary
		}
		if err := plot3d.WriteXYZ(f, c.Sys.Grids, format); err != nil {
			log.Fatal(err)
		}
		f.Close()
		fmt.Printf("wrote PLOT3D grid system (with iblank) to %s\n", *xyzOut)
	}
}

var lastRes *overd.Result

func writeField(file string, cfg overd.Config) {
	if lastRes == nil || len(lastRes.Field) == 0 {
		return
	}
	f, err := os.Create(file)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	fmt.Fprintln(f, "x,y,z,mach,rho,p,iblank")
	for _, s := range lastRes.Field {
		fmt.Fprintf(f, "%.5f,%.5f,%.5f,%.5f,%.5f,%.5f,%d\n",
			s.X, s.Y, s.Z, s.Mach, s.Rho, s.P, s.IBlank)
	}
	fmt.Printf("wrote %d field samples to %s\n", len(lastRes.Field), file)
}
