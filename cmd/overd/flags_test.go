package main

import (
	"math"
	"strings"
	"testing"
)

// good returns a valid baseline flag set; each case mutates one field.
func good() runFlags {
	return runFlags{
		caseName: "airfoil", nodes: 12, machineName: "SP2",
		steps: 5, scale: 1, fo: math.Inf(1), checkEvery: 5,
	}
}

func TestValidateRunFlags(t *testing.T) {
	cases := []struct {
		name    string
		mut     func(*runFlags)
		wantErr string // substring of the error, "" = must succeed
	}{
		{"baseline", func(f *runFlags) {}, ""},
		{"zero nodes", func(f *runFlags) { f.nodes = 0 }, "at least one processor"},
		{"negative nodes", func(f *runFlags) { f.nodes = -4 }, "at least one processor"},
		{"negative steps", func(f *runFlags) { f.steps = -1 }, "cannot be negative"},
		{"zero steps ok", func(f *runFlags) { f.steps = 0 }, ""},
		{"zero scale", func(f *runFlags) { f.scale = 0 }, "must be positive"},
		{"negative scale", func(f *runFlags) { f.scale = -0.5 }, "must be positive"},
		{"negative fo", func(f *runFlags) { f.fo = -1 }, "cannot be negative"},
		{"zero fo ok", func(f *runFlags) { f.fo = 0 }, ""},
		{"zero check interval", func(f *runFlags) { f.checkEvery = 0 }, "must be positive"},
		{"empty balancer ok", func(f *runFlags) { f.balancer = "" }, ""},
		{"static balancer ok", func(f *runFlags) { f.balancer = "static" }, ""},
		{"sfc balancer ok", func(f *runFlags) { f.balancer = "sfc" }, ""},
		{"diffusive balancer ok", func(f *runFlags) { f.balancer = "diffusive" }, ""},
		{"dynamic balancer with fo ok", func(f *runFlags) {
			f.balancer = "dynamic"
			f.fo = 2
		}, ""},
		{"dynamic balancer without fo", func(f *runFlags) { f.balancer = "dynamic" }, "finite load factor"},
		{"static balancer with fo", func(f *runFlags) {
			f.balancer = "static"
			f.fo = 2
		}, "no effect"},
		{"unknown balancer", func(f *runFlags) { f.balancer = "magic" }, `unknown balancer "magic"`},
		{"checkpoint without faults", func(f *runFlags) { f.checkpointEvery = 3 }, "without -faults"},
		{"checkpoint with faults ok", func(f *runFlags) {
			f.checkpointEvery = 3
			f.faultsPath = "plan.json"
		}, ""},
		{"checkpoint auto without faults ok", func(f *runFlags) { f.checkpointEvery = 0 }, ""},
		{"checkpoint disabled without faults ok", func(f *runFlags) { f.checkpointEvery = -1 }, ""},
		{"unknown case", func(f *runFlags) { f.caseName = "wing47" }, `unknown case "wing47"`},
		{"unknown machine", func(f *runFlags) { f.machineName = "CM5" }, "CM5"},
		{"deltawing ok", func(f *runFlags) { f.caseName = "deltawing" }, ""},
		{"storesep on SP ok", func(f *runFlags) {
			f.caseName = "storesep"
			f.machineName = "SP"
		}, ""},
		{"bad field format", func(f *runFlags) { f.fieldOut = "out.csv" }, "gridID:file.csv"},
		{"field grid out of range", func(f *runFlags) { f.fieldOut = "99:out.csv" }, "out of range"},
		{"field ok", func(f *runFlags) { f.fieldOut = "0:out.csv" }, ""},
		{"metrics prom ok", func(f *runFlags) { f.metricsOut = "run.prom" }, ""},
		{"metrics txt ok", func(f *runFlags) { f.metricsOut = "run.txt" }, ""},
		{"metrics json ok", func(f *runFlags) { f.metricsOut = "run.json" }, ""},
		{"metrics bad extension", func(f *runFlags) { f.metricsOut = "run.csv" }, ".prom/.txt"},
		{"metrics no extension", func(f *runFlags) { f.metricsOut = "metricsfile" }, ".prom/.txt"},
		{"serve alone ok (job-service daemon)", func(f *runFlags) { f.serveAddr = ":9090" }, ""},
		{"serve alone port 0 ok", func(f *runFlags) { f.serveAddr = "127.0.0.1:0" }, ""},
		{"serve alone missing port", func(f *runFlags) { f.serveAddr = "localhost" }, "host:port"},
		{"serve with metrics ok", func(f *runFlags) {
			f.metricsOut = "run.prom"
			f.serveAddr = ":9090"
		}, ""},
		{"serve host ok", func(f *runFlags) {
			f.metricsOut = "run.prom"
			f.serveAddr = "localhost:0"
		}, ""},
		{"serve missing port", func(f *runFlags) {
			f.metricsOut = "run.prom"
			f.serveAddr = "localhost"
		}, "host:port"},
		{"serve non-numeric port", func(f *runFlags) {
			f.metricsOut = "run.prom"
			f.serveAddr = ":http"
		}, "0..65535"},
		{"serve port out of range", func(f *runFlags) {
			f.metricsOut = "run.prom"
			f.serveAddr = ":70000"
		}, "0..65535"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := good()
			c.mut(&f)
			v, err := validateRunFlags(f)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if v.c == nil {
					t.Fatal("valid flags returned nil case")
				}
				if v.m.Name == "" {
					t.Fatal("valid flags returned zero machine")
				}
				return
			}
			if err == nil {
				t.Fatalf("want error containing %q, got nil", c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not contain %q", err, c.wantErr)
			}
		})
	}
}
