package overd

import (
	"math"
	"strings"
	"testing"
)

func TestPublicAPICaseConstructors(t *testing.T) {
	for name, mk := range map[string]func(float64) *Case{
		"airfoil":   OscillatingAirfoil,
		"deltawing": DescendingDeltaWing,
		"storesep":  StoreSeparation,
	} {
		c := mk(0.05)
		if c == nil || c.Sys.NPoints() == 0 {
			t.Errorf("%s: empty case", name)
		}
	}
}

func TestMachineByName(t *testing.T) {
	for _, n := range []string{"SP2", "SP", "YMP", "C90"} {
		if _, err := MachineByName(n); err != nil {
			t.Errorf("MachineByName(%q): %v", n, err)
		}
	}
	if _, err := MachineByName("nope"); err == nil {
		t.Error("unknown machine should error")
	}
}

func TestRunPublicAPI(t *testing.T) {
	res, err := Run(Config{
		Case: OscillatingAirfoil(0.05), Nodes: 6, Machine: SP2(),
		Steps: 2, Fo: math.Inf(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MflopsPerNode() <= 0 || res.PctConnect() <= 0 {
		t.Errorf("stats: %v %v", res.MflopsPerNode(), res.PctConnect())
	}
}

func TestRunWithSampling(t *testing.T) {
	res, err := Run(Config{
		Case: OscillatingAirfoil(0.05), Nodes: 3, Machine: SP2(),
		Steps: 2, Fo: math.Inf(1),
		Sample: &SampleSpec{FieldGrid: 2, FieldK: -1, SurfaceGrid: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Field) == 0 {
		t.Error("no field samples")
	}
	if len(res.Surface) == 0 {
		t.Error("no surface samples")
	}
	// Field values physical.
	for _, s := range res.Field[:10] {
		if s.Rho <= 0 || s.P <= 0 || math.IsNaN(s.Mach) {
			t.Fatalf("unphysical sample %+v", s)
		}
	}
}

func TestRunTable2SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("table run")
	}
	rows, err := RunTable2(Options{Scale: 0.05, Steps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Point counts scale by ~4x between rows.
	if !(rows[0].Points < rows[1].Points && rows[1].Points < rows[2].Points) {
		t.Errorf("scale-up points: %d %d %d", rows[0].Points, rows[1].Points, rows[2].Points)
	}
	var sb strings.Builder
	FprintTable2(&sb, rows)
	if !strings.Contains(sb.String(), "Coarsened") {
		t.Error("table output missing rows")
	}
}

func TestRunPerfTableSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("table run")
	}
	// A reduced Table-1-style sweep over two node counts.
	tbl, err := runPerfTable("mini", OscillatingAirfoil, []int{6, 12}, Options{Scale: 0.05, Steps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 || len(tbl.FigSP2) != 2 {
		t.Fatalf("rows %d figs %d", len(tbl.Rows), len(tbl.FigSP2))
	}
	if tbl.Rows[0].SpeedupSP2 != 1 {
		t.Errorf("base speedup = %v", tbl.Rows[0].SpeedupSP2)
	}
	if tbl.Rows[1].SpeedupSP2 <= tbl.Rows[0].SpeedupSP2*0.5 {
		t.Errorf("speedup collapsed: %+v", tbl.Rows)
	}
	var sb strings.Builder
	FprintPerfTable(&sb, tbl)
	if !strings.Contains(sb.String(), "Mflops/node") {
		t.Error("perf table output malformed")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale != 1 || o.Steps <= 0 {
		t.Errorf("defaults: %+v", o)
	}
}

func TestEstimateSerialTimePublic(t *testing.T) {
	m := YMP864()
	if got := EstimateSerialTime(m.BaseMflops*1e6, m); math.Abs(got-1) > 0.02 {
		t.Errorf("EstimateSerialTime = %v", got)
	}
}

func TestAdaptivePublicAPI(t *testing.T) {
	body := Box{Min: Vec3{X: -1, Y: -1, Z: -1}, Max: Vec3{X: 1, Y: 1, Z: 1}}
	cfg := AdaptiveConfig{
		Domain:     Box{Min: Vec3{X: -4, Y: -4, Z: -4}, Max: Vec3{X: 4, Y: 4, Z: 4}},
		H0:         1,
		BrickCells: 4,
		MaxLevel:   1,
	}
	sys := GenerateAdaptive(cfg, ProximityIndicator(body, 1))
	if len(sys.Bricks) == 0 {
		t.Fatal("no bricks")
	}
	ru, err := NewAdaptiveRunner(sys, 2, Freestream{Mach: 0.5}, true)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ru.Run(SP2(), 1, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 || stats[0].Time <= 0 {
		t.Errorf("stats %+v", stats)
	}
}

func TestFprintSpeedupFigure(t *testing.T) {
	tbl := &PerfTable{
		Title: "Figure test",
		FigSP2: []ModuleSpeedup{
			{Nodes: 6, Flow: 1, Connect: 1, Combined: 1},
			{Nodes: 24, Flow: 3.5, Connect: 1.3, Combined: 3.0},
		},
		FigSP: []ModuleSpeedup{
			{Nodes: 6, Flow: 1, Connect: 1, Combined: 1},
			{Nodes: 24, Flow: 3.7, Connect: 1.4, Combined: 3.2},
		},
	}
	for _, m := range []string{"SP2", "SP"} {
		var sb strings.Builder
		FprintSpeedupFigure(&sb, tbl, m)
		out := sb.String()
		for _, want := range []string{"OVERFLOW", "DCF3D", "combined", "ideal", m} {
			if !strings.Contains(out, want) {
				t.Errorf("%s figure missing %q", m, want)
			}
		}
	}
}
