package overd

import (
	"bytes"
	"math"
	"strconv"
	"testing"

	"overd/internal/metrics"
)

// TestTable4MetricsPrometheusReconciles is the tentpole acceptance check: a
// Table-4 store-separation run with metrics and tracing attached must emit
// Prometheus text that (a) passes the strict exposition parser and (b)
// carries per-rank busy/wait totals exactly equal — bit for bit, through
// the text round-trip — to the trace summary of the same run.
func TestTable4MetricsPrometheusReconciles(t *testing.T) {
	reg := NewMetricsRegistry()
	rec := NewTraceRecorder()
	cfg := Config{
		Case:    StoreSeparation(0.05),
		Nodes:   16, // first Table 4 node count
		Machine: SP2(),
		Steps:   2,
		Fo:      math.Inf(1),
		Trace:   rec,
		Metrics: reg,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := metrics.ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("strict parse of Table-4 exposition output: %v", err)
	}
	samples := map[string]map[string]float64{} // family -> rank label -> value
	for _, f := range fams {
		m := map[string]float64{}
		for _, s := range f.Samples {
			if s.Name == f.Name {
				m[s.Labels["rank"]] = s.Value
			}
		}
		samples[f.Name] = m
	}

	s := rec.Summarize()
	if len(s.Ranks) != cfg.Nodes {
		t.Fatalf("summary has %d ranks, want %d", len(s.Ranks), cfg.Nodes)
	}
	for _, rs := range s.Ranks {
		key := strconv.Itoa(rs.Rank)
		for _, chk := range []struct {
			family string
			want   float64
		}{
			{"overd_trace_rank_busy_seconds", rs.Busy},
			{"overd_trace_rank_recv_wait_seconds", rs.RecvWait},
			{"overd_trace_rank_barrier_wait_seconds", rs.BarrierWait},
			{"overd_trace_rank_fault_wait_seconds", rs.FaultWait},
			{"overd_trace_rank_msgs_sent", float64(rs.MsgsSent)},
			{"overd_trace_rank_bytes_sent", float64(rs.BytesSent)},
		} {
			got, ok := samples[chk.family][key]
			if !ok {
				t.Fatalf("no %s sample for rank %s", chk.family, key)
			}
			if got != chk.want { // exact: shortest round-trip formatting
				t.Errorf("rank %s: parsed %s = %.17g, summary = %.17g",
					key, chk.family, got, chk.want)
			}
		}
		// The parsed live wait histograms reconcile with the summary too:
		// _sum over phases equals the rank's flat wait within float
		// reassociation tolerance (flat sums interleave phases).
		var recvSum float64
		for _, f := range fams {
			if f.Name != "overd_par_recv_wait_seconds" {
				continue
			}
			for _, smp := range f.Samples {
				if smp.Name == "overd_par_recv_wait_seconds_sum" && smp.Labels["rank"] == key {
					recvSum += smp.Value
				}
			}
		}
		if tol := 1e-12 * (1 + rs.RecvWait); math.Abs(recvSum-rs.RecvWait) > tol {
			t.Errorf("rank %s: histogram recv-wait sum %.17g != summary %.17g", key, recvSum, rs.RecvWait)
		}
	}

	// The Result-derived globals made it through the text format exactly.
	if got := samples["overd_run_virtual_seconds"][""]; got != res.TotalTime {
		t.Errorf("overd_run_virtual_seconds = %.17g, want %.17g", got, res.TotalTime)
	}
	if got := samples["overd_run_final_nodes"][""]; got != float64(cfg.Nodes) {
		t.Errorf("overd_run_final_nodes = %v, want %d", got, cfg.Nodes)
	}

	// JSON export of the same registry stays valid and non-empty.
	var js bytes.Buffer
	if err := reg.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if js.Len() == 0 || !bytes.Contains(js.Bytes(), []byte("overd_par_msgs_sent_total")) {
		t.Error("JSON export missing expected metric")
	}
}
