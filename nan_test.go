package overd

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRatioGuardsZeroDenominator(t *testing.T) {
	if got := ratio(6, 3); got != 2 {
		t.Errorf("ratio(6,3) = %v, want 2", got)
	}
	if got := ratio(0, 0); !math.IsNaN(got) {
		t.Errorf("ratio(0,0) = %v, want NaN", got)
	}
	if got := ratio(5, 0); !math.IsNaN(got) {
		t.Errorf("ratio(5,0) = %v, want NaN (not +Inf)", got)
	}
	// Bit-identity contract: for a nonzero denominator, ratio must be
	// exactly the hardware division it replaced.
	n, d := 0.12345678901234567, 0.9876543210987654
	if got, want := ratio(n, d), n/d; got != want {
		t.Errorf("ratio(%v,%v) = %v, want exact quotient %v", n, d, got, want)
	}
}

func TestFmtStatRendersDashForNonFinite(t *testing.T) {
	if got := fmtStat("%.0f%%", 28.4); got != "28%" {
		t.Errorf("fmtStat finite = %q, want \"28%%\"", got)
	}
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if got := fmtStat("%.2f", v); got != "—" {
			t.Errorf("fmtStat(%v) = %q, want em dash", v, got)
		}
	}
}

// TestRenderersNeverPrintNaN drives each table renderer with rows holding
// degenerate (NaN/Inf) statistics — what a zero-time module would have
// produced before ratio() — and asserts the output shows em dashes, never
// "NaN%" or "+Inf".
func TestRenderersNeverPrintNaN(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	var b bytes.Buffer

	FprintPerfTable(&b, &PerfTable{
		Title: "degenerate",
		Rows: []PerfRow{{
			Nodes: 4, PtsPerNode: 100,
			SpeedupSP2: nan, SpeedupSP: inf, PctDCF3DSP2: nan, PctDCF3DSP: 12,
		}},
		FigSP2: []ModuleSpeedup{{Nodes: 4, Flow: nan, Connect: inf, Combined: 1}},
	})
	FprintTable2(&b, []ScaleupRow{{Name: "X", Nodes: 3, PctDCF3DSP2: nan, PctDCF3DSP: inf}})
	FprintTable5(&b, []Table5Row{{Nodes: 16, PctDCFDynamic: nan, DCFSpeedupStat: inf, CombinedDyn: nan}})
	FprintTable5Faulted(&b, []Table5FaultedRow{{Nodes: 16, SlowdownStat: nan, SlowdownDyn: inf, PctDCFStat: nan}})
	FprintTable6(&b, []Table6Row{{Nodes: 18, OverallSP2: nan, OverallSP: inf, PerNodeSP2: nan}})

	out := b.String()
	for _, bad := range []string{"NaN", "Inf", "inf"} {
		if strings.Contains(out, bad) {
			t.Fatalf("renderer output contains %q:\n%s", bad, out)
		}
	}
	if !strings.Contains(out, "—") {
		t.Fatalf("renderer output shows no em dash for degenerate stats:\n%s", out)
	}
}

// TestEmitRowsJSONSanitizesNonFinite pins the JSON emitter against the
// encoder's hard NaN/Inf rejection: degenerate fields become 0 and the
// emission succeeds; finite rows pass through bit-for-bit.
func TestEmitRowsJSONSanitizesNonFinite(t *testing.T) {
	var b bytes.Buffer
	rows := []Table6Row{
		{Nodes: 18, OverallSP2: 1.5, OverallSP: 2.5, PerNodeSP2: 0.083, PerNodeSP: 0.089},
		{Nodes: 28, OverallSP2: math.NaN(), OverallSP: math.Inf(1), PerNodeSP2: math.Inf(-1)},
	}
	if err := EmitRowsJSON(&b, "6", rows); err != nil {
		t.Fatalf("EmitRowsJSON with non-finite fields: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), b.String())
	}
	if want := `{"table":"6","row":{"Nodes":18,"OverallSP2":1.5,"OverallSP":2.5,"PerNodeSP2":0.083,"PerNodeSP":0.089,"YMPTimeStep":0}}`; lines[0] != want {
		t.Errorf("finite row changed encoding:\n got %s\nwant %s", lines[0], want)
	}
	if want := `{"table":"6","row":{"Nodes":28,"OverallSP2":0,"OverallSP":0,"PerNodeSP2":0,"PerNodeSP":0,"YMPTimeStep":0}}`; lines[1] != want {
		t.Errorf("degenerate row not sanitized:\n got %s\nwant %s", lines[1], want)
	}
}
