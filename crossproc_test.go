package overd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
)

// These tests pin the parallel-execution contract from DESIGN.md
// ("Deterministic parallelism"): GOMAXPROCS and Config.Workers choose how
// many rank goroutines run simultaneously on the host, and nothing else.
// Virtual clocks, table rows, trace events and metric values are functions
// of the configuration alone, so every artifact a run can emit must be
// byte-identical whether the ranks time-slice on one core or race on four.

// withGOMAXPROCS runs f at the given GOMAXPROCS, restoring the old value.
func withGOMAXPROCS(n int, f func()) {
	old := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(old)
	f()
}

// runArtifacts executes one run with a trace recorder and metrics registry
// attached and returns every observable artifact concatenated: the run's
// result JSON, the trace summary JSON, the Chrome trace export, and the
// Prometheus metrics exposition. Any divergence across schedules shows up
// as a byte mismatch somewhere in this stream.
func runArtifacts(t *testing.T, mk func() Config) []byte {
	t.Helper()
	rec := NewTraceRecorder()
	reg := NewMetricsRegistry()
	cfg := mk()
	cfg.Trace = rec
	cfg.Metrics = reg
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var buf bytes.Buffer
	if err := EmitRunJSON(&buf, res); err != nil {
		t.Fatalf("EmitRunJSON: %v", err)
	}
	sum, err := json.Marshal(rec.Summarize())
	if err != nil {
		t.Fatalf("marshal trace summary: %v", err)
	}
	buf.Write(sum)
	buf.WriteByte('\n')
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return buf.Bytes()
}

// firstDiff points a byte mismatch at its first diverging line so failures
// name the artifact (run JSON, summary, trace, metrics) rather than dumping
// two multi-megabyte blobs.
func firstDiff(a, b []byte) string {
	al := bytes.Split(a, []byte("\n"))
	bl := bytes.Split(b, []byte("\n"))
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(al[i], bl[i]) {
			return fmt.Sprintf("line %d:\n a: %.200s\n b: %.200s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("line counts differ: %d vs %d", len(al), len(bl))
}

// TestCrossProcDeterminism is the full schedule-independence matrix:
// airfoil and store-separation, every registered balancer, clean and under
// the Table-5 straggler fault, each executed at GOMAXPROCS 1 and 4. All
// artifacts must match byte-for-byte — the (clock, rank) and (arrival,
// flow) tie-breaks in internal/par are what make this hold.
func TestCrossProcDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full determinism matrix; skipped in -short mode")
	}
	cases := []struct {
		name  string
		mk    func(float64) *Case
		scale float64
		nodes int
	}{
		{"airfoil", OscillatingAirfoil, 0.05, 12},
		{"storesep", StoreSeparation, 0.05, 16},
	}
	faults := []struct {
		name string
		plan func() *FaultPlan
	}{
		{"clean", func() *FaultPlan { return nil }},
		{"straggler", Table5FaultPlan},
	}
	for _, c := range cases {
		for _, f := range faults {
			for _, bal := range BalancerNames() {
				bal := bal
				t.Run(fmt.Sprintf("%s/%s/%s", c.name, f.name, bal), func(t *testing.T) {
					mk := func() Config {
						return Config{
							// Rebuild the case per run: grid motion
							// mutates it in place.
							Case: c.mk(c.scale), Nodes: c.nodes,
							Machine: SP2(), Steps: 4,
							Fo: balancerSweepFo(bal), CheckInterval: 2,
							Balancer: bal, Faults: f.plan(),
						}
					}
					var at1, at4 []byte
					withGOMAXPROCS(1, func() { at1 = runArtifacts(t, mk) })
					withGOMAXPROCS(4, func() { at4 = runArtifacts(t, mk) })
					if !bytes.Equal(at1, at4) {
						t.Errorf("artifacts diverge between GOMAXPROCS 1 and 4; %s",
							firstDiff(at1, at4))
					}
				})
			}
		}
	}
}

// TestWorkersBoundBitIdentical pins the Config.Workers contract: the run
// -slot gate bounds host concurrency only, so every bound — serialized,
// partial, unbounded — produces the same artifact bytes. This is what lets
// the job service vary workers_per_job without invalidating its
// content-addressed result cache.
func TestWorkersBoundBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run identity check; skipped in -short mode")
	}
	mkAt := func(workers int) func() Config {
		return func() Config {
			return Config{
				Case: StoreSeparation(0.05), Nodes: 16, Machine: SP2(),
				Steps: 3, Fo: 5, CheckInterval: 2, Workers: workers,
				Faults: Table5FaultPlan(),
			}
		}
	}
	var base []byte
	withGOMAXPROCS(4, func() {
		base = runArtifacts(t, mkAt(0))
		for _, workers := range []int{1, 2, 5} {
			got := runArtifacts(t, mkAt(workers))
			if !bytes.Equal(base, got) {
				t.Errorf("Workers=%d diverges from unbounded; %s",
					workers, firstDiff(base, got))
			}
		}
	})
}

// TestPerfPassBitIdenticalAcrossProcs re-emits a golden table subset at
// GOMAXPROCS 2 and 4 and requires the bytes to match both the GOMAXPROCS=1
// emission and the committed golden file — the cross-schedule version of
// TestPerfPassBitIdentical. One table keeps the tripled runtime bounded;
// the full sweep is covered at a single schedule by the base test and
// across schedules (per case/balancer/fault) by TestCrossProcDeterminism.
func TestPerfPassBitIdenticalAcrossProcs(t *testing.T) {
	if testing.Short() {
		t.Skip("table sweep; skipped in -short mode")
	}
	want, err := os.ReadFile("testdata/tables_scale005_steps2.jsonl")
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	sel, err := ParseTableSelection("4")
	if err != nil {
		t.Fatal(err)
	}
	emit := func() []byte {
		var buf bytes.Buffer
		if err := EmitTablesJSON(&buf, Options{Scale: 0.05, Steps: 2}, sel); err != nil {
			t.Fatalf("EmitTablesJSON: %v", err)
		}
		return buf.Bytes()
	}
	var at1 []byte
	withGOMAXPROCS(1, func() { at1 = emit() })
	for _, procs := range []int{2, 4} {
		var got []byte
		withGOMAXPROCS(procs, func() { got = emit() })
		if !bytes.Equal(at1, got) {
			t.Errorf("table output diverges between GOMAXPROCS 1 and %d; %s",
				procs, firstDiff(at1, got))
		}
	}
	for _, line := range bytes.Split(bytes.TrimSpace(at1), []byte("\n")) {
		if !bytes.Contains(want, line) {
			t.Fatalf("emitted table-4 line not found in golden: %s", line)
		}
	}
}
