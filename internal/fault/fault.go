// Package fault provides deterministic, seeded fault injection for the
// virtual-clock runtime: per-rank compute slowdowns over step windows
// (stragglers), per-link latency/bandwidth degradation, per-tag message
// loss, and scheduled rank crashes. A Plan is pure data (loadable from
// JSON); an Engine compiled from it answers the runtime's queries — the
// machine model's rate hooks, the transport's drop decision, and the
// solution loop's crash schedule — as pure functions of the plan, the
// seed, and integer coordinates (rank, step, message sequence number), so
// a faulted run is bit-reproducible: same plan + seed, same event stream.
//
// All perturbations are expressed against the virtual clock. A "2x
// straggler" means the afflicted rank's modeled compute rate halves while
// the window is active, so its virtual clock advances twice as fast per
// flop; a "dropped message" means the payload never becomes available to
// the receiver, while a zero-byte tombstone still crosses the wire so
// timeout-aware receivers (par.Rank.RecvTimeout) can detect the loss
// deterministically instead of deadlocking. Faults activate only inside
// the measured timestep loop (the runtime reports step -1 during
// preprocessing and restart re-setup, when no window matches).
package fault

import (
	"encoding/json"
	"fmt"
	"os"
)

// Straggler slows one rank's compute rate over a step window, modeling a
// shared node that lost cycles to another job (the paper's SP2/SP runs
// were done on exactly such machines).
type Straggler struct {
	// Rank is the afflicted rank.
	Rank int `json:"rank"`
	// Factor is the slowdown: 2 means compute takes twice the virtual
	// time. Must be >= 1.
	Factor float64 `json:"factor"`
	// FromStep (inclusive) and ToStep (exclusive) bound the afflicted
	// timesteps. ToStep <= FromStep means "to the end of the run".
	FromStep int `json:"from_step"`
	ToStep   int `json:"to_step"`
}

// LinkFault degrades the interconnect between two ranks over a step
// window: latency is multiplied by LatencyFactor and bandwidth divided by
// BandwidthFactor.
type LinkFault struct {
	// From and To are the link endpoints; -1 matches any rank.
	From int `json:"from"`
	To   int `json:"to"`
	// LatencyFactor multiplies the point-to-point startup cost (>= 1).
	LatencyFactor float64 `json:"latency_factor"`
	// BandwidthFactor divides the link bandwidth (>= 1; 4 means the link
	// moves bytes at a quarter of its nominal rate).
	BandwidthFactor float64 `json:"bandwidth_factor"`
	FromStep        int     `json:"from_step"`
	ToStep          int     `json:"to_step"`
}

// Loss drops a fraction of the messages on a tag, decided per message by a
// seeded hash of (seed, from, to, tag, sequence number) so the set of
// dropped messages is a deterministic function of the plan.
//
// The halo, donor-search and fringe-value exchanges ride a reliable
// transport and degrade gracefully under loss (retries, then orphan-point
// fallback). Collectives never traverse the lossy transport. Loss on the
// implicit solver's pipeline tag (2) aborts the run with a diagnostic —
// that tightly-coupled sweep protocol cannot tolerate loss, matching a
// real MPI job's fate.
type Loss struct {
	// Tag is the par message-tag value to afflict; -1 matches any tag.
	// (halo=1, pipeline=2, bbox=3, search-req=4, search-rep=5, forward=6,
	// repart=8, fringe values=101.)
	Tag int `json:"tag"`
	// From and To restrict the loss to one direction; -1 matches any rank.
	From int `json:"from"`
	To   int `json:"to"`
	// Prob is the per-message drop probability in [0, 1].
	Prob     float64 `json:"prob"`
	FromStep int     `json:"from_step"`
	ToStep   int     `json:"to_step"`
}

// Crash kills one rank at the top of one timestep. The runtime surfaces it
// as a typed error (par.Crash inside par.RankFailure) and, when
// checkpointing is enabled, the run restarts from the last checkpoint with
// the dead rank's work re-spread over the survivors.
type Crash struct {
	Rank int `json:"rank"`
	Step int `json:"step"`
}

// Plan is a complete deterministic fault schedule for one run. The zero
// Plan injects nothing; a nil *Plan disables the fault layer entirely
// (bit-identical to an unfaulted run).
type Plan struct {
	// Seed feeds the per-message loss hash. Two plans that differ only in
	// Seed drop different (but individually deterministic) message sets.
	Seed       int64       `json:"seed"`
	Stragglers []Straggler `json:"stragglers,omitempty"`
	Links      []LinkFault `json:"links,omitempty"`
	Losses     []Loss      `json:"losses,omitempty"`
	Crashes    []Crash     `json:"crashes,omitempty"`
}

// Validate reports the first structural problem in the plan.
func (p *Plan) Validate() error {
	for i, s := range p.Stragglers {
		if s.Rank < 0 {
			return fmt.Errorf("fault: straggler %d: negative rank %d", i, s.Rank)
		}
		if s.Factor < 1 {
			return fmt.Errorf("fault: straggler %d: factor %g < 1", i, s.Factor)
		}
	}
	for i, l := range p.Links {
		if l.From < -1 || l.To < -1 {
			return fmt.Errorf("fault: link %d: invalid endpoints %d->%d", i, l.From, l.To)
		}
		if l.LatencyFactor != 0 && l.LatencyFactor < 1 {
			return fmt.Errorf("fault: link %d: latency factor %g < 1", i, l.LatencyFactor)
		}
		if l.BandwidthFactor != 0 && l.BandwidthFactor < 1 {
			return fmt.Errorf("fault: link %d: bandwidth factor %g < 1", i, l.BandwidthFactor)
		}
	}
	for i, l := range p.Losses {
		if l.Prob < 0 || l.Prob > 1 {
			return fmt.Errorf("fault: loss %d: probability %g outside [0,1]", i, l.Prob)
		}
		if l.Tag < -1 {
			return fmt.Errorf("fault: loss %d: invalid tag %d", i, l.Tag)
		}
	}
	for i, c := range p.Crashes {
		if c.Rank < 0 {
			return fmt.Errorf("fault: crash %d: negative rank %d", i, c.Rank)
		}
		if c.Step < 0 {
			return fmt.Errorf("fault: crash %d: negative step %d", i, c.Step)
		}
	}
	return nil
}

// Empty reports whether the plan schedules no faults at all.
func (p *Plan) Empty() bool {
	return p == nil ||
		len(p.Stragglers) == 0 && len(p.Links) == 0 &&
			len(p.Losses) == 0 && len(p.Crashes) == 0
}

// HasCrashes reports whether the plan schedules any rank crash (which is
// what makes checkpointing worth its cost).
func (p *Plan) HasCrashes() bool { return p != nil && len(p.Crashes) > 0 }

// ParsePlan decodes a JSON fault plan and validates it.
func ParsePlan(data []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("fault: parsing plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// LoadPlan reads and parses a JSON fault plan file.
func LoadPlan(path string) (*Plan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	return ParsePlan(data)
}

// stepIn reports whether step falls inside the [from, to) window, with
// to <= from meaning open-ended.
func stepIn(step, from, to int) bool {
	return step >= from && (to <= from || step < to)
}

// Engine answers the runtime's fault queries for one run. Methods indexed
// by rank are called only from that rank's goroutine (each rank reads and
// writes its own current-step slot), so the engine needs no locks. An
// engine may be re-attached across restart attempts; the consumed state of
// crash entries persists so a crash fires exactly once per run.
type Engine struct {
	plan *Plan
	// curStep[r] is rank r's current timestep, -1 outside the measured
	// loop. Each rank touches only its own slot.
	curStep []int
	// crashed marks plan crash entries that already fired this run.
	crashed []bool
}

// NewEngine compiles a plan. A nil plan returns a nil engine (no faults).
func NewEngine(p *Plan) *Engine {
	if p == nil {
		return nil
	}
	return &Engine{plan: p, crashed: make([]bool, len(p.Crashes))}
}

// Attach sizes the engine for a world of n ranks (called once per run
// attempt, before the world starts). Crash consumption survives Attach so
// a restarted run does not re-fire an already-consumed crash.
func (e *Engine) Attach(n int) {
	e.curStep = make([]int, n)
	for i := range e.curStep {
		e.curStep[i] = -1
	}
}

// BeginStep records that rank entered the given timestep; fault windows
// are evaluated against it. Called by each rank for itself only.
func (e *Engine) BeginStep(rank, step int) {
	if rank < len(e.curStep) {
		e.curStep[rank] = step
	}
}

// step returns rank's current step, -1 when unknown.
func (e *Engine) step(rank int) int {
	if rank < 0 || rank >= len(e.curStep) {
		return -1
	}
	return e.curStep[rank]
}

// RateScale implements the machine model's per-rank compute-rate hook: it
// returns the multiplicative factor (<= 1) applied to the nominal rate at
// virtual time t. Stacked stragglers multiply.
func (e *Engine) RateScale(rank int, t float64) float64 {
	step := e.step(rank)
	if step < 0 {
		return 1
	}
	s := 1.0
	for _, f := range e.plan.Stragglers {
		if f.Rank == rank && f.Factor > 1 && stepIn(step, f.FromStep, f.ToStep) {
			s /= f.Factor
		}
	}
	return s
}

// LinkScale implements the machine model's link hook: multiplicative
// factors on the from→to link's latency (>= 1) and bandwidth (<= 1) at
// virtual time t. The window is evaluated against the sender's step.
func (e *Engine) LinkScale(from, to int, t float64) (latScale, bwScale float64) {
	latScale, bwScale = 1, 1
	step := e.step(from)
	if step < 0 {
		return
	}
	for _, f := range e.plan.Links {
		if f.From != -1 && f.From != from {
			continue
		}
		if f.To != -1 && f.To != to {
			continue
		}
		if !stepIn(step, f.FromStep, f.ToStep) {
			continue
		}
		if f.LatencyFactor > 1 {
			latScale *= f.LatencyFactor
		}
		if f.BandwidthFactor > 1 {
			bwScale /= f.BandwidthFactor
		}
	}
	return
}

// Drop implements the transport's loss decision for one physical message
// attempt: a seeded hash of (from, to, tag, seq) compared against the
// matching loss probabilities. Each retry attempt carries a fresh sequence
// number and so re-rolls independently.
func (e *Engine) Drop(from, to, tag int, seq uint64) bool {
	step := e.step(from)
	if step < 0 {
		return false
	}
	for _, l := range e.plan.Losses {
		if l.Prob <= 0 {
			continue
		}
		if l.Tag != -1 && l.Tag != tag {
			continue
		}
		if l.From != -1 && l.From != from {
			continue
		}
		if l.To != -1 && l.To != to {
			continue
		}
		if !stepIn(step, l.FromStep, l.ToStep) {
			continue
		}
		if hash01(uint64(e.plan.Seed), uint64(from), uint64(to), uint64(tag), seq) < l.Prob {
			return true
		}
	}
	return false
}

// CrashNow reports whether rank is scheduled to crash at step, consuming
// the matching plan entry so it fires exactly once per run (a restarted
// attempt replaying the same step does not re-crash). Called by each rank
// for itself only — the rank filter runs before the consumed-flag access
// so concurrent ranks never touch each other's entries.
func (e *Engine) CrashNow(rank, step int) bool {
	for i, c := range e.plan.Crashes {
		if c.Rank != rank || c.Step != step {
			continue
		}
		if e.crashed[i] {
			continue
		}
		e.crashed[i] = true
		return true
	}
	return false
}

// hash01 maps the message coordinates to a uniform value in [0, 1) with a
// splitmix64-style finalizer over the mixed inputs.
func hash01(vs ...uint64) float64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vs {
		h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
	}
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	// 53 significant bits into [0, 1).
	return float64(h>>11) / float64(1<<53)
}
