package fault

import (
	"os"
	"path/filepath"
	"testing"
)

func TestParsePlanRoundTrip(t *testing.T) {
	src := `{
		"seed": 12,
		"stragglers": [{"rank": 1, "factor": 2.5, "from_step": 3, "to_step": 9}],
		"links": [{"from": 0, "to": -1, "latency_factor": 10, "bandwidth_factor": 4}],
		"losses": [{"tag": 5, "from": -1, "to": -1, "prob": 0.3}],
		"crashes": [{"rank": 2, "step": 5}]
	}`
	p, err := ParsePlan([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 12 || len(p.Stragglers) != 1 || len(p.Links) != 1 ||
		len(p.Losses) != 1 || len(p.Crashes) != 1 {
		t.Fatalf("parsed %+v", p)
	}
	if p.Stragglers[0].Factor != 2.5 || p.Stragglers[0].ToStep != 9 {
		t.Errorf("straggler %+v", p.Stragglers[0])
	}
	if p.Empty() {
		t.Error("plan reported empty")
	}
	if !p.HasCrashes() {
		t.Error("plan should report crashes")
	}
}

func TestParsePlanRejectsBadInput(t *testing.T) {
	for name, src := range map[string]string{
		"syntax":        `{"seed": `,
		"factor":        `{"stragglers": [{"rank": 0, "factor": 0.5}]}`,
		"negative rank": `{"stragglers": [{"rank": -1, "factor": 2}]}`,
		"probability":   `{"losses": [{"tag": 1, "prob": 1.5}]}`,
		"latency":       `{"links": [{"from": 0, "to": 1, "latency_factor": 0.2}]}`,
		"crash step":    `{"crashes": [{"rank": 0, "step": -2}]}`,
	} {
		if _, err := ParsePlan([]byte(src)); err == nil {
			t.Errorf("%s: bad plan accepted", name)
		}
	}
}

func TestLoadPlanFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plan.json")
	if err := os.WriteFile(path, []byte(`{"seed": 3, "crashes": [{"rank": 1, "step": 2}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := LoadPlan(path)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 3 || !p.HasCrashes() {
		t.Errorf("loaded %+v", p)
	}
	if _, err := LoadPlan(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestNilPlanHelpers(t *testing.T) {
	var p *Plan
	if !p.Empty() {
		t.Error("nil plan not empty")
	}
	if p.HasCrashes() {
		t.Error("nil plan has crashes")
	}
	if NewEngine(nil) != nil {
		t.Error("nil plan should compile to a nil engine")
	}
}

func TestStepWindows(t *testing.T) {
	cases := []struct {
		step, from, to int
		want           bool
	}{
		{5, 0, 0, true},    // open-ended from step 0
		{5, 3, 3, true},    // to <= from: open-ended
		{2, 3, 0, false},   // before the window
		{3, 3, 6, true},    // inclusive start
		{6, 3, 6, false},   // exclusive end
		{10, 3, 0, true},   // open-ended tail
		{10, 3, 10, false}, // boundary
	}
	for _, c := range cases {
		if got := stepIn(c.step, c.from, c.to); got != c.want {
			t.Errorf("stepIn(%d, %d, %d) = %v", c.step, c.from, c.to, got)
		}
	}
}

func TestRateScaleWindowsAndStacking(t *testing.T) {
	e := NewEngine(&Plan{Stragglers: []Straggler{
		{Rank: 1, Factor: 2, FromStep: 2, ToStep: 4},
		{Rank: 1, Factor: 3, FromStep: 3, ToStep: 5},
	}})
	e.Attach(2)
	// Outside the measured loop faults are inert.
	if s := e.RateScale(1, 0); s != 1 {
		t.Errorf("preprocessing scale = %v", s)
	}
	e.BeginStep(1, 2)
	if s := e.RateScale(1, 0); s != 0.5 {
		t.Errorf("step 2 scale = %v, want 0.5", s)
	}
	e.BeginStep(1, 3)
	if s := e.RateScale(1, 0); s != 0.5/3 {
		t.Errorf("step 3 stacked scale = %v, want %v", s, 0.5/3)
	}
	e.BeginStep(1, 5)
	if s := e.RateScale(1, 0); s != 1 {
		t.Errorf("step 5 scale = %v, want 1", s)
	}
	// The healthy rank is untouched.
	e.BeginStep(0, 3)
	if s := e.RateScale(0, 0); s != 1 {
		t.Errorf("healthy rank scale = %v", s)
	}
}

func TestLinkScaleMatchingAndWildcards(t *testing.T) {
	e := NewEngine(&Plan{Links: []LinkFault{
		{From: 0, To: -1, LatencyFactor: 10, BandwidthFactor: 4},
	}})
	e.Attach(3)
	e.BeginStep(0, 1)
	lat, bw := e.LinkScale(0, 2, 0)
	if lat != 10 || bw != 0.25 {
		t.Errorf("degraded link scales = %v, %v", lat, bw)
	}
	// Reverse direction unaffected (From must match).
	e.BeginStep(2, 1)
	lat, bw = e.LinkScale(2, 0, 0)
	if lat != 1 || bw != 1 {
		t.Errorf("reverse link scales = %v, %v", lat, bw)
	}
}

func TestDropDeterministicAndSeedSensitive(t *testing.T) {
	plan := &Plan{Seed: 1, Losses: []Loss{{Tag: -1, From: -1, To: -1, Prob: 0.5}}}
	a := NewEngine(plan)
	b := NewEngine(plan)
	a.Attach(2)
	b.Attach(2)
	a.BeginStep(0, 1)
	b.BeginStep(0, 1)
	drops := 0
	for seq := uint64(0); seq < 1000; seq++ {
		da := a.Drop(0, 1, 5, seq)
		if db := b.Drop(0, 1, 5, seq); da != db {
			t.Fatalf("seq %d: nondeterministic drop", seq)
		}
		if da {
			drops++
		}
	}
	// Prob 0.5 over 1000 trials: expect a healthy spread around 500.
	if drops < 350 || drops > 650 {
		t.Errorf("dropped %d of 1000 at prob 0.5", drops)
	}
	// A different seed drops a different set.
	c := NewEngine(&Plan{Seed: 2, Losses: plan.Losses})
	c.Attach(2)
	c.BeginStep(0, 1)
	diff := 0
	for seq := uint64(0); seq < 1000; seq++ {
		if a.Drop(0, 1, 5, seq) != c.Drop(0, 1, 5, seq) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("seed change did not alter the drop set")
	}
}

func TestDropInertOutsideMeasuredLoop(t *testing.T) {
	e := NewEngine(&Plan{Losses: []Loss{{Tag: -1, From: -1, To: -1, Prob: 1}}})
	e.Attach(2)
	if e.Drop(0, 1, 5, 7) {
		t.Error("dropped during preprocessing (step -1)")
	}
	e.BeginStep(0, 0)
	if !e.Drop(0, 1, 5, 7) {
		t.Error("prob-1 loss did not drop inside the loop")
	}
}

func TestCrashNowConsumesOnceAcrossAttach(t *testing.T) {
	e := NewEngine(&Plan{Crashes: []Crash{{Rank: 1, Step: 4}}})
	e.Attach(3)
	if e.CrashNow(1, 3) || e.CrashNow(0, 4) {
		t.Error("crash fired for wrong rank or step")
	}
	if !e.CrashNow(1, 4) {
		t.Error("scheduled crash did not fire")
	}
	// Restart attempt: re-attach must not re-fire the consumed crash.
	e.Attach(2)
	if e.CrashNow(1, 4) {
		t.Error("consumed crash re-fired after restart")
	}
}

func TestHash01Range(t *testing.T) {
	for seq := uint64(0); seq < 10000; seq++ {
		v := hash01(1, 2, 3, 4, seq)
		if v < 0 || v >= 1 {
			t.Fatalf("hash01 out of range: %v", v)
		}
	}
}
