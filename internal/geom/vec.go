// Package geom provides the small geometric vocabulary shared by the grid,
// flow, overset and six-DOF packages: 3-vectors, 3x3 matrices, quaternions,
// axis-aligned bounding boxes and rigid transforms.
package geom

import (
	"fmt"
	"math"
)

// Vec3 is a point or direction in R^3.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s*v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the inner product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the vector product v×w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Norm2 returns the squared Euclidean length of v.
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Normalized returns v/|v|. It returns the zero vector if |v| == 0.
func (v Vec3) Normalized() Vec3 {
	n := v.Norm()
	if n == 0 {
		return Vec3{}
	}
	return v.Scale(1 / n)
}

// Dist returns |v-w|.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// String implements fmt.Stringer.
func (v Vec3) String() string { return fmt.Sprintf("(%g, %g, %g)", v.X, v.Y, v.Z) }

// Mat3 is a 3x3 matrix in row-major order.
type Mat3 [3][3]float64

// Identity3 returns the 3x3 identity matrix.
func Identity3() Mat3 {
	return Mat3{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}
}

// MulVec returns m·v.
func (m Mat3) MulVec(v Vec3) Vec3 {
	return Vec3{
		m[0][0]*v.X + m[0][1]*v.Y + m[0][2]*v.Z,
		m[1][0]*v.X + m[1][1]*v.Y + m[1][2]*v.Z,
		m[2][0]*v.X + m[2][1]*v.Y + m[2][2]*v.Z,
	}
}

// Mul returns the matrix product m·n.
func (m Mat3) Mul(n Mat3) Mat3 {
	var r Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			s := 0.0
			for k := 0; k < 3; k++ {
				s += m[i][k] * n[k][j]
			}
			r[i][j] = s
		}
	}
	return r
}

// Transpose returns mᵀ.
func (m Mat3) Transpose() Mat3 {
	var r Mat3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			r[i][j] = m[j][i]
		}
	}
	return r
}

// Det returns the determinant of m.
func (m Mat3) Det() float64 {
	return m[0][0]*(m[1][1]*m[2][2]-m[1][2]*m[2][1]) -
		m[0][1]*(m[1][0]*m[2][2]-m[1][2]*m[2][0]) +
		m[0][2]*(m[1][0]*m[2][1]-m[1][1]*m[2][0])
}

// Inverse returns m⁻¹ and reports whether m is invertible. A singular matrix
// (|det| below 1e-300) returns the identity and false.
func (m Mat3) Inverse() (Mat3, bool) {
	d := m.Det()
	if math.Abs(d) < 1e-300 {
		return Identity3(), false
	}
	inv := 1 / d
	var r Mat3
	r[0][0] = (m[1][1]*m[2][2] - m[1][2]*m[2][1]) * inv
	r[0][1] = (m[0][2]*m[2][1] - m[0][1]*m[2][2]) * inv
	r[0][2] = (m[0][1]*m[1][2] - m[0][2]*m[1][1]) * inv
	r[1][0] = (m[1][2]*m[2][0] - m[1][0]*m[2][2]) * inv
	r[1][1] = (m[0][0]*m[2][2] - m[0][2]*m[2][0]) * inv
	r[1][2] = (m[0][2]*m[1][0] - m[0][0]*m[1][2]) * inv
	r[2][0] = (m[1][0]*m[2][1] - m[1][1]*m[2][0]) * inv
	r[2][1] = (m[0][1]*m[2][0] - m[0][0]*m[2][1]) * inv
	r[2][2] = (m[0][0]*m[1][1] - m[0][1]*m[1][0]) * inv
	return r, true
}

// RotX returns the rotation matrix about the x axis by angle a (radians).
func RotX(a float64) Mat3 {
	c, s := math.Cos(a), math.Sin(a)
	return Mat3{{1, 0, 0}, {0, c, -s}, {0, s, c}}
}

// RotY returns the rotation matrix about the y axis by angle a (radians).
func RotY(a float64) Mat3 {
	c, s := math.Cos(a), math.Sin(a)
	return Mat3{{c, 0, s}, {0, 1, 0}, {-s, 0, c}}
}

// RotZ returns the rotation matrix about the z axis by angle a (radians).
func RotZ(a float64) Mat3 {
	c, s := math.Cos(a), math.Sin(a)
	return Mat3{{c, -s, 0}, {s, c, 0}, {0, 0, 1}}
}
