package geom

import "math"

// Box is an axis-aligned bounding box. A box with Min > Max in any
// coordinate is empty; EmptyBox returns the canonical empty box.
type Box struct {
	Min, Max Vec3
}

// EmptyBox returns a box that contains nothing and extends under union.
func EmptyBox() Box {
	inf := math.Inf(1)
	return Box{Min: Vec3{inf, inf, inf}, Max: Vec3{-inf, -inf, -inf}}
}

// IsEmpty reports whether b contains no points.
func (b Box) IsEmpty() bool {
	return b.Min.X > b.Max.X || b.Min.Y > b.Max.Y || b.Min.Z > b.Max.Z
}

// Extend returns the smallest box containing b and point p.
func (b Box) Extend(p Vec3) Box {
	return Box{
		Min: Vec3{math.Min(b.Min.X, p.X), math.Min(b.Min.Y, p.Y), math.Min(b.Min.Z, p.Z)},
		Max: Vec3{math.Max(b.Max.X, p.X), math.Max(b.Max.Y, p.Y), math.Max(b.Max.Z, p.Z)},
	}
}

// Union returns the smallest box containing both b and c.
func (b Box) Union(c Box) Box {
	if c.IsEmpty() {
		return b
	}
	if b.IsEmpty() {
		return c
	}
	return b.Extend(c.Min).Extend(c.Max)
}

// Contains reports whether p lies inside or on the boundary of b.
func (b Box) Contains(p Vec3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// Overlaps reports whether b and c share any point.
func (b Box) Overlaps(c Box) bool {
	if b.IsEmpty() || c.IsEmpty() {
		return false
	}
	return b.Min.X <= c.Max.X && c.Min.X <= b.Max.X &&
		b.Min.Y <= c.Max.Y && c.Min.Y <= b.Max.Y &&
		b.Min.Z <= c.Max.Z && c.Min.Z <= b.Max.Z
}

// Inflate returns b grown by d on every side.
func (b Box) Inflate(d float64) Box {
	if b.IsEmpty() {
		return b
	}
	v := Vec3{d, d, d}
	return Box{Min: b.Min.Sub(v), Max: b.Max.Add(v)}
}

// Center returns the centroid of b.
func (b Box) Center() Vec3 {
	return b.Min.Add(b.Max).Scale(0.5)
}

// Size returns the edge lengths of b.
func (b Box) Size() Vec3 { return b.Max.Sub(b.Min) }

// Volume returns the volume of b (0 for empty boxes).
func (b Box) Volume() float64 {
	if b.IsEmpty() {
		return 0
	}
	s := b.Size()
	return s.X * s.Y * s.Z
}

// SurfaceArea returns the total surface area of b (0 for empty boxes).
func (b Box) SurfaceArea() float64 {
	if b.IsEmpty() {
		return 0
	}
	s := b.Size()
	return 2 * (s.X*s.Y + s.Y*s.Z + s.Z*s.X)
}

// Transform is a rigid-body placement: x_world = R·x_body + T.
type Transform struct {
	R Mat3
	T Vec3
}

// IdentityTransform returns the identity placement.
func IdentityTransform() Transform {
	return Transform{R: Identity3()}
}

// Apply maps a body-frame point to the world frame.
func (t Transform) Apply(p Vec3) Vec3 { return t.R.MulVec(p).Add(t.T) }

// ApplyVec maps a body-frame direction to the world frame (no translation).
func (t Transform) ApplyVec(v Vec3) Vec3 { return t.R.MulVec(v) }

// Inverse returns the transform mapping world to body frame.
func (t Transform) Inverse() Transform {
	rt := t.R.Transpose()
	return Transform{R: rt, T: rt.MulVec(t.T).Scale(-1)}
}

// Compose returns the transform equivalent to applying u first, then t.
func (t Transform) Compose(u Transform) Transform {
	return Transform{R: t.R.Mul(u.R), T: t.R.MulVec(u.T).Add(t.T)}
}

// ApplyBox returns an axis-aligned box containing the image of b under t.
func (t Transform) ApplyBox(b Box) Box {
	if b.IsEmpty() {
		return b
	}
	out := EmptyBox()
	for corner := 0; corner < 8; corner++ {
		p := Vec3{b.Min.X, b.Min.Y, b.Min.Z}
		if corner&1 != 0 {
			p.X = b.Max.X
		}
		if corner&2 != 0 {
			p.Y = b.Max.Y
		}
		if corner&4 != 0 {
			p.Z = b.Max.Z
		}
		out = out.Extend(t.Apply(p))
	}
	return out
}
