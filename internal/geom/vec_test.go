package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func vecAlmostEq(a, b Vec3, tol float64) bool {
	return almostEq(a.X, b.X, tol) && almostEq(a.Y, b.Y, tol) && almostEq(a.Z, b.Z, tol)
}

func TestVecBasics(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, -5, 6}
	if got := a.Add(b); got != (Vec3{5, -3, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec3{-3, 7, -3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 4-10+18 {
		t.Errorf("Dot = %v", got)
	}
	if got := a.Norm(); !almostEq(got, math.Sqrt(14), 1e-15) {
		t.Errorf("Norm = %v", got)
	}
	if got := a.Norm2(); got != 14 {
		t.Errorf("Norm2 = %v", got)
	}
}

func TestCrossOrthogonality(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{-2, 1, 5}
	c := a.Cross(b)
	if !almostEq(c.Dot(a), 0, 1e-12) || !almostEq(c.Dot(b), 0, 1e-12) {
		t.Errorf("cross product not orthogonal: %v", c)
	}
	// Right-handedness on unit axes.
	if got := (Vec3{1, 0, 0}).Cross(Vec3{0, 1, 0}); got != (Vec3{0, 0, 1}) {
		t.Errorf("x cross y = %v, want z", got)
	}
}

func TestNormalized(t *testing.T) {
	v := Vec3{3, 4, 0}.Normalized()
	if !vecAlmostEq(v, Vec3{0.6, 0.8, 0}, 1e-15) {
		t.Errorf("Normalized = %v", v)
	}
	if got := (Vec3{}).Normalized(); got != (Vec3{}) {
		t.Errorf("Normalized zero = %v, want zero", got)
	}
}

func TestCrossAnticommutative_Property(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		for _, v := range []float64{ax, ay, az, bx, by, bz} {
			if math.IsNaN(v) || math.Abs(v) > 1e150 {
				return true // avoid overflow to ±Inf, where Inf-Inf = NaN
			}
		}
		a := Vec3{ax, ay, az}
		b := Vec3{bx, by, bz}
		c1 := a.Cross(b)
		c2 := b.Cross(a).Scale(-1)
		return c1 == c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMat3Identity(t *testing.T) {
	id := Identity3()
	v := Vec3{7, -2, 0.5}
	if got := id.MulVec(v); got != v {
		t.Errorf("I*v = %v", got)
	}
	if got := id.Det(); got != 1 {
		t.Errorf("det I = %v", got)
	}
}

func TestMat3InverseRoundTrip(t *testing.T) {
	m := Mat3{{2, 1, 0}, {1, 3, 1}, {0, 1, 4}}
	inv, ok := m.Inverse()
	if !ok {
		t.Fatal("matrix should be invertible")
	}
	p := m.Mul(inv)
	id := Identity3()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if !almostEq(p[i][j], id[i][j], 1e-12) {
				t.Errorf("m*inv[%d][%d] = %v", i, j, p[i][j])
			}
		}
	}
}

func TestMat3SingularInverse(t *testing.T) {
	m := Mat3{{1, 2, 3}, {2, 4, 6}, {0, 0, 1}}
	if _, ok := m.Inverse(); ok {
		t.Error("singular matrix reported invertible")
	}
}

func TestRotationMatricesOrthonormal(t *testing.T) {
	for name, m := range map[string]Mat3{
		"RotX": RotX(0.7), "RotY": RotY(-1.2), "RotZ": RotZ(2.9),
	} {
		if !almostEq(m.Det(), 1, 1e-12) {
			t.Errorf("%s det = %v, want 1", name, m.Det())
		}
		p := m.Mul(m.Transpose())
		id := Identity3()
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if !almostEq(p[i][j], id[i][j], 1e-12) {
					t.Errorf("%s not orthonormal at [%d][%d]: %v", name, i, j, p[i][j])
				}
			}
		}
	}
}

func TestRotZQuarterTurn(t *testing.T) {
	got := RotZ(math.Pi / 2).MulVec(Vec3{1, 0, 0})
	if !vecAlmostEq(got, Vec3{0, 1, 0}, 1e-15) {
		t.Errorf("RotZ(90°)·x = %v, want y", got)
	}
}

func TestMatMulAssociative_Property(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		a = math.Mod(a, 2*math.Pi)
		b = math.Mod(b, 2*math.Pi)
		m1 := RotX(a)
		m2 := RotY(b)
		m3 := RotZ(a - b)
		l := m1.Mul(m2).Mul(m3)
		r := m1.Mul(m2.Mul(m3))
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if !almostEq(l[i][j], r[i][j], 1e-12) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRotationPreservesNorm_Property(t *testing.T) {
	f := func(a, x, y, z float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return true
		}
		v := Vec3{x, y, z}
		if math.IsInf(v.Norm(), 0) || math.IsNaN(v.Norm()) {
			return true
		}
		w := RotY(a).MulVec(v)
		return almostEq(w.Norm(), v.Norm(), 1e-9*(1+v.Norm()))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
