package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuatIdentityRotate(t *testing.T) {
	v := Vec3{1, 2, 3}
	if got := IdentityQuat().Rotate(v); !vecAlmostEq(got, v, 1e-15) {
		t.Errorf("identity rotate = %v", got)
	}
}

func TestAxisAngleMatchesRotZ(t *testing.T) {
	for _, a := range []float64{0, 0.3, -1.1, math.Pi, 2.5} {
		q := AxisAngle(Vec3{0, 0, 1}, a)
		m := RotZ(a)
		v := Vec3{0.3, -0.7, 1.9}
		if !vecAlmostEq(q.Rotate(v), m.MulVec(v), 1e-12) {
			t.Errorf("angle %v: quat %v vs matrix %v", a, q.Rotate(v), m.MulVec(v))
		}
	}
}

func TestQuatMatAgreesWithRotate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for n := 0; n < 50; n++ {
		axis := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if axis.Norm() < 1e-9 {
			continue
		}
		q := AxisAngle(axis, rng.Float64()*6-3)
		v := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		if !vecAlmostEq(q.Mat().MulVec(v), q.Rotate(v), 1e-12) {
			t.Fatalf("Mat and Rotate disagree for %+v", q)
		}
	}
}

func TestQuatComposition(t *testing.T) {
	q1 := AxisAngle(Vec3{0, 0, 1}, math.Pi/2)
	q2 := AxisAngle(Vec3{1, 0, 0}, math.Pi/2)
	v := Vec3{0, 1, 0}
	// Apply q2 then q1: y -> z (by q2), z -> z (by q1 about z).
	got := q1.Mul(q2).Rotate(v)
	want := q1.Rotate(q2.Rotate(v))
	if !vecAlmostEq(got, want, 1e-12) {
		t.Errorf("composition: got %v want %v", got, want)
	}
	if !vecAlmostEq(got, Vec3{0, 0, 1}, 1e-12) {
		t.Errorf("y after q2 then q1 = %v, want z", got)
	}
}

func TestQuatRotatePreservesNorm_Property(t *testing.T) {
	f := func(w, x, y, z, vx, vy, vz float64) bool {
		q := Quat{w, x, y, z}
		if q.Norm() < 1e-6 || math.IsInf(q.Norm(), 0) || math.IsNaN(q.Norm()) {
			return true
		}
		q = q.Normalized()
		v := Vec3{vx, vy, vz}
		n := v.Norm()
		if math.IsInf(n, 0) || math.IsNaN(n) {
			return true
		}
		return almostEq(q.Rotate(v).Norm(), n, 1e-9*(1+n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuatDerivZeroOmega(t *testing.T) {
	q := AxisAngle(Vec3{1, 1, 0}, 0.4)
	d := q.Deriv(Vec3{})
	if d != (Quat{}) {
		t.Errorf("Deriv with zero omega = %+v, want zero", d)
	}
}

func TestQuatDerivIntegratesRotation(t *testing.T) {
	// Integrate q̇ = ½ q(0,ω) with ω = (0,0,w) using small Euler steps;
	// after time T the attitude should be a rotation by w*T about z.
	q := IdentityQuat()
	w := 0.8
	dt := 1e-4
	steps := 10000 // T = 1
	for i := 0; i < steps; i++ {
		q = q.AddScaled(q.Deriv(Vec3{0, 0, w}), dt).Normalized()
	}
	want := AxisAngle(Vec3{0, 0, 1}, w)
	v := Vec3{1, 0, 0}
	if !vecAlmostEq(q.Rotate(v), want.Rotate(v), 1e-4) {
		t.Errorf("integrated rotation %v, want %v", q.Rotate(v), want.Rotate(v))
	}
}
