package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEmptyBox(t *testing.T) {
	b := EmptyBox()
	if !b.IsEmpty() {
		t.Error("EmptyBox not empty")
	}
	if b.Volume() != 0 || b.SurfaceArea() != 0 {
		t.Error("empty box has nonzero measure")
	}
	if b.Contains(Vec3{}) {
		t.Error("empty box contains origin")
	}
}

func TestBoxExtendContains(t *testing.T) {
	b := EmptyBox().Extend(Vec3{1, 1, 1}).Extend(Vec3{-1, 2, 0})
	for _, p := range []Vec3{{1, 1, 1}, {-1, 2, 0}, {0, 1.5, 0.5}} {
		if !b.Contains(p) {
			t.Errorf("box should contain %v", p)
		}
	}
	if b.Contains(Vec3{2, 1, 1}) {
		t.Error("box should not contain (2,1,1)")
	}
}

func TestBoxOverlaps(t *testing.T) {
	a := Box{Vec3{0, 0, 0}, Vec3{1, 1, 1}}
	b := Box{Vec3{0.5, 0.5, 0.5}, Vec3{2, 2, 2}}
	c := Box{Vec3{1.5, 1.5, 1.5}, Vec3{2, 2, 2}}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a and b should overlap")
	}
	if a.Overlaps(c) {
		t.Error("a and c should not overlap")
	}
	// Touching faces count as overlap.
	d := Box{Vec3{1, 0, 0}, Vec3{2, 1, 1}}
	if !a.Overlaps(d) {
		t.Error("touching boxes should overlap")
	}
	if a.Overlaps(EmptyBox()) || EmptyBox().Overlaps(a) {
		t.Error("nothing overlaps the empty box")
	}
}

func TestBoxUnionVolume(t *testing.T) {
	a := Box{Vec3{0, 0, 0}, Vec3{1, 1, 1}}
	b := Box{Vec3{2, 0, 0}, Vec3{3, 1, 1}}
	u := a.Union(b)
	if u.Volume() != 3 {
		t.Errorf("union volume = %v, want 3", u.Volume())
	}
	if got := a.Union(EmptyBox()); got != a {
		t.Errorf("union with empty = %v", got)
	}
	if got := EmptyBox().Union(a); got != a {
		t.Errorf("empty union a = %v", got)
	}
}

func TestBoxInflate(t *testing.T) {
	a := Box{Vec3{0, 0, 0}, Vec3{1, 1, 1}}
	g := a.Inflate(0.5)
	if g.Min != (Vec3{-0.5, -0.5, -0.5}) || g.Max != (Vec3{1.5, 1.5, 1.5}) {
		t.Errorf("Inflate = %+v", g)
	}
	if got := EmptyBox().Inflate(1); !got.IsEmpty() {
		t.Error("inflated empty box should stay empty")
	}
}

func TestBoxSurfaceArea(t *testing.T) {
	a := Box{Vec3{0, 0, 0}, Vec3{2, 3, 4}}
	want := 2.0 * (2*3 + 3*4 + 4*2)
	if a.SurfaceArea() != want {
		t.Errorf("SurfaceArea = %v, want %v", a.SurfaceArea(), want)
	}
}

func TestTransformRoundTrip(t *testing.T) {
	tr := Transform{R: RotZ(0.9).Mul(RotX(-0.4)), T: Vec3{1, -2, 3}}
	inv := tr.Inverse()
	p := Vec3{0.3, 0.7, -1.1}
	if got := inv.Apply(tr.Apply(p)); !vecAlmostEq(got, p, 1e-12) {
		t.Errorf("inverse round trip = %v, want %v", got, p)
	}
}

func TestTransformCompose(t *testing.T) {
	a := Transform{R: RotZ(0.5), T: Vec3{1, 0, 0}}
	b := Transform{R: RotX(1.1), T: Vec3{0, 2, 0}}
	p := Vec3{0.2, -0.3, 0.9}
	got := a.Compose(b).Apply(p)
	want := a.Apply(b.Apply(p))
	if !vecAlmostEq(got, want, 1e-12) {
		t.Errorf("compose = %v, want %v", got, want)
	}
}

func TestTransformApplyBoxContainsImages_Property(t *testing.T) {
	f := func(angle, tx, ty, tz, px, py, pz float64) bool {
		if math.IsNaN(angle) || math.IsInf(angle, 0) {
			return true
		}
		for _, v := range []float64{tx, ty, tz, px, py, pz} {
			if math.IsNaN(v) || math.Abs(v) > 1e6 {
				return true
			}
		}
		tr := Transform{R: RotY(angle), T: Vec3{tx, ty, tz}}
		b := Box{Vec3{-1, -1, -1}, Vec3{1, 1, 1}}
		ib := tr.ApplyBox(b)
		// Any point of the box maps inside the image box.
		p := Vec3{clamp(px, -1, 1), clamp(py, -1, 1), clamp(pz, -1, 1)}
		return ib.Inflate(1e-9).Contains(tr.Apply(p))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func clamp(x, lo, hi float64) float64 {
	if math.IsNaN(x) {
		return lo
	}
	return math.Max(lo, math.Min(hi, x))
}

func TestBoxCenterSize(t *testing.T) {
	b := Box{Vec3{1, 2, 3}, Vec3{3, 6, 11}}
	if b.Center() != (Vec3{2, 4, 7}) {
		t.Errorf("Center = %v", b.Center())
	}
	if b.Size() != (Vec3{2, 4, 8}) {
		t.Errorf("Size = %v", b.Size())
	}
}
