package geom

import "math"

// Quat is a unit quaternion W + Xi + Yj + Zk representing an attitude.
// The zero value is not a valid rotation; use IdentityQuat.
type Quat struct {
	W, X, Y, Z float64
}

// IdentityQuat returns the identity rotation.
func IdentityQuat() Quat { return Quat{W: 1} }

// AxisAngle returns the quaternion rotating by angle a (radians) about axis.
func AxisAngle(axis Vec3, a float64) Quat {
	axis = axis.Normalized()
	s := math.Sin(a / 2)
	return Quat{math.Cos(a / 2), s * axis.X, s * axis.Y, s * axis.Z}
}

// Mul returns the quaternion product q·p (apply p, then q).
func (q Quat) Mul(p Quat) Quat {
	return Quat{
		q.W*p.W - q.X*p.X - q.Y*p.Y - q.Z*p.Z,
		q.W*p.X + q.X*p.W + q.Y*p.Z - q.Z*p.Y,
		q.W*p.Y - q.X*p.Z + q.Y*p.W + q.Z*p.X,
		q.W*p.Z + q.X*p.Y - q.Y*p.X + q.Z*p.W,
	}
}

// Norm returns the quaternion magnitude.
func (q Quat) Norm() float64 {
	return math.Sqrt(q.W*q.W + q.X*q.X + q.Y*q.Y + q.Z*q.Z)
}

// Normalized returns q scaled to unit magnitude. The identity is returned
// for a zero quaternion.
func (q Quat) Normalized() Quat {
	n := q.Norm()
	if n == 0 {
		return IdentityQuat()
	}
	return Quat{q.W / n, q.X / n, q.Y / n, q.Z / n}
}

// Conj returns the conjugate (inverse for unit quaternions).
func (q Quat) Conj() Quat { return Quat{q.W, -q.X, -q.Y, -q.Z} }

// Rotate applies the rotation q to vector v.
func (q Quat) Rotate(v Vec3) Vec3 {
	// v' = q (0,v) q*
	p := Quat{0, v.X, v.Y, v.Z}
	r := q.Mul(p).Mul(q.Conj())
	return Vec3{r.X, r.Y, r.Z}
}

// Mat returns the rotation matrix equivalent to q (assumed unit).
func (q Quat) Mat() Mat3 {
	w, x, y, z := q.W, q.X, q.Y, q.Z
	return Mat3{
		{1 - 2*(y*y+z*z), 2 * (x*y - w*z), 2 * (x*z + w*y)},
		{2 * (x*y + w*z), 1 - 2*(x*x+z*z), 2 * (y*z - w*x)},
		{2 * (x*z - w*y), 2 * (y*z + w*x), 1 - 2*(x*x+y*y)},
	}
}

// Deriv returns dq/dt for body angular velocity omega (body frame):
// q̇ = ½ q ⊗ (0, ω).
func (q Quat) Deriv(omega Vec3) Quat {
	h := q.Mul(Quat{0, omega.X, omega.Y, omega.Z})
	return Quat{h.W / 2, h.X / 2, h.Y / 2, h.Z / 2}
}

// AddScaled returns q + s*d, without normalization (integration helper).
func (q Quat) AddScaled(d Quat, s float64) Quat {
	return Quat{q.W + s*d.W, q.X + s*d.X, q.Y + s*d.Y, q.Z + s*d.Z}
}
