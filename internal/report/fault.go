package report

import (
	"fmt"
	"io"
)

// FaultStats is the fault/recovery slice of a run's statistics, decoupled
// from the core Result type so report stays a pure rendering package.
type FaultStats struct {
	// Recoveries counts crash-triggered restarts; RecoverySteps the
	// timesteps re-executed; RecoveryTime the virtual seconds of lost work.
	Recoveries    int
	RecoverySteps int
	RecoveryTime  float64
	// Checkpoints counts snapshots taken; CheckpointTime their virtual cost.
	Checkpoints    int
	CheckpointTime float64
	// StartNodes and FinalNodes bracket the processor count (crashes shrink
	// the machine).
	StartNodes, FinalNodes int
	// DroppedMsgs counts fault-injected message drops; SendRetries the
	// retransmissions among them; FaultWaitTime the rank-seconds lost to
	// retry backoff and loss discovery.
	DroppedMsgs   int
	SendRetries   int
	FaultWaitTime float64
}

// Any reports whether the run recorded fault activity worth a table.
func (s FaultStats) Any() bool {
	return s.Recoveries > 0 || s.Checkpoints > 0 || s.DroppedMsgs > 0 ||
		s.SendRetries > 0 || s.FaultWaitTime > 0
}

// FaultSummary renders the fault/recovery table of a perturbed run: what
// the injected faults cost in crashes recovered, checkpoints, re-executed
// work, dropped traffic and retry stalls.
func FaultSummary(w io.Writer, s FaultStats) {
	fmt.Fprintln(w, "fault / recovery summary")
	if s.Recoveries > 0 {
		fmt.Fprintf(w, "  rank crashes recovered  %6d   (%d -> %d nodes)\n",
			s.Recoveries, s.StartNodes, s.FinalNodes)
		fmt.Fprintf(w, "  timesteps re-executed   %6d   (%.3fs of lost work)\n",
			s.RecoverySteps, s.RecoveryTime)
	}
	if s.Checkpoints > 0 {
		fmt.Fprintf(w, "  checkpoints taken       %6d   (%.3fs virtual cost)\n",
			s.Checkpoints, s.CheckpointTime)
	}
	if s.DroppedMsgs > 0 || s.SendRetries > 0 {
		fmt.Fprintf(w, "  messages dropped        %6d   (%d retransmissions)\n",
			s.DroppedMsgs, s.SendRetries)
	}
	if s.FaultWaitTime > 0 {
		fmt.Fprintf(w, "  fault wait              %9.3fs rank-seconds (backoff + loss discovery)\n",
			s.FaultWaitTime)
	}
	if !s.Any() {
		fmt.Fprintln(w, "  (no fault activity)")
	}
}
