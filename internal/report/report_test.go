package report

import (
	"strings"
	"testing"
)

func TestSpeedupFigureRender(t *testing.T) {
	var sb strings.Builder
	SpeedupFigure(&sb, "Figure 5 (SP2)", []int{6, 9, 12, 18, 24},
		[]float64{1, 1.45, 1.89, 2.66, 3.39},
		[]float64{1, 1.09, 1.30, 1.16, 1.29},
		[]float64{1, 1.41, 1.80, 2.37, 2.92})
	out := sb.String()
	for _, want := range []string{"Figure 5 (SP2)", "ideal", "OVERFLOW", "DCF3D", "combined", "processors"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Markers present.
	for _, m := range []string{"o", "x", "*"} {
		if !strings.Contains(out, m) {
			t.Errorf("marker %q missing", m)
		}
	}
	// Lines have consistent width.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) < 18 {
		t.Errorf("chart too short: %d lines", len(lines))
	}
}

func TestChartEmptyData(t *testing.T) {
	var sb strings.Builder
	Chart{Title: "empty"}.Render(&sb)
	if !strings.Contains(sb.String(), "no data") {
		t.Error("empty chart should say so")
	}
}

func TestChartSinglePointAndDegenerate(t *testing.T) {
	var sb strings.Builder
	Chart{
		Title:  "one",
		X:      []int{8},
		Series: []Series{{Label: "s", Marker: 's', Y: []float64{1}}},
		Ideal:  true,
	}.Render(&sb)
	if !strings.Contains(sb.String(), "one") {
		t.Error("render failed for single point")
	}
}

func TestChartMarkersAtCorrectEnds(t *testing.T) {
	// The flow series ends near ideal; its marker should appear in the
	// upper portion of the plot and the flat series' in the lower.
	var sb strings.Builder
	Chart{
		Title: "shape",
		X:     []int{1, 2, 4},
		Series: []Series{
			{Label: "up", Marker: 'U', Y: []float64{1, 2, 4}},
			{Label: "flat", Marker: 'F', Y: []float64{1, 1, 1}},
		},
		Width: 40, Height: 12,
	}.Render(&sb)
	lines := strings.Split(sb.String(), "\n")
	var upRow, flatRow int = -1, -1
	for i, l := range lines {
		if strings.Contains(l, "U") && !strings.Contains(l, "legend") && upRow < 0 {
			upRow = i
		}
		if idx := strings.LastIndex(l, "F"); idx > 6 && !strings.Contains(l, "legend") && flatRow < 0 {
			flatRow = i
		}
	}
	if upRow < 0 || flatRow < 0 {
		t.Fatalf("markers not found:\n%s", sb.String())
	}
	if upRow >= flatRow {
		t.Errorf("rising series (row %d) should plot above flat series (row %d)", upRow, flatRow)
	}
}
