package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"overd/internal/trace"
)

// BusyWaitGantt renders a per-rank horizontal bar chart of a traced run's
// wait/idle decomposition: each rank's window time split into busy work
// ('#'), receive wait ('~') and barrier wait ('='). Bars share one scale
// (the largest per-rank total), so imbalance shows up as ragged bar ends
// and communication overhead as the non-'#' tail — the text analog of a
// timeline gantt for the paper's Fig. 5-style breakdowns.
func BusyWaitGantt(w io.Writer, s *trace.Summary, width int) {
	if width <= 0 {
		width = 48
	}
	maxT := s.MaxTotal()
	fmt.Fprintf(w, "per-rank busy/wait over %.4fs window (# busy, ~ recv wait, = barrier wait)\n",
		s.WindowEnd-s.WindowStart)
	if maxT <= 0 {
		fmt.Fprintln(w, "  (no events in window)")
		return
	}
	for _, r := range s.Ranks {
		nb := int(r.Busy / maxT * float64(width))
		nr := int(r.RecvWait / maxT * float64(width))
		nw := int(r.BarrierWait / maxT * float64(width))
		bar := strings.Repeat("#", nb) + strings.Repeat("~", nr) + strings.Repeat("=", nw)
		fmt.Fprintf(w, "rank %3d |%-*s| busy %6.3fs  recv %6.3fs  barrier %6.3fs\n",
			r.Rank, width, bar, r.Busy, r.RecvWait, r.BarrierWait)
	}
}

// PhaseWaitTable renders the per-phase busy/wait decomposition summed over
// ranks: for each phase, total busy, receive-wait and barrier-wait seconds
// and the wait share — which module's time is computation and which is
// communication overhead.
func PhaseWaitTable(w io.Writer, s *trace.Summary, label func(int) string) {
	nPhase := 0
	for _, r := range s.Ranks {
		if len(r.ByPhase) > nPhase {
			nPhase = len(r.ByPhase)
		}
	}
	type row struct {
		phase int
		pb    trace.PhaseBreakdown
	}
	var rows []row
	anyFault := false
	for p := 0; p < nPhase; p++ {
		var pb trace.PhaseBreakdown
		for _, r := range s.Ranks {
			if p < len(r.ByPhase) {
				pb.Busy += r.ByPhase[p].Busy
				pb.RecvWait += r.ByPhase[p].RecvWait
				pb.BarrierWait += r.ByPhase[p].BarrierWait
				pb.FaultWait += r.ByPhase[p].FaultWait
			}
		}
		if pb.FaultWait > 0 {
			anyFault = true
		}
		if pb.Total() > 0 {
			rows = append(rows, row{p, pb})
		}
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].pb.Total() > rows[b].pb.Total() })
	// The fault-wait column appears only when fault injection charged time,
	// so fault-free reports keep the familiar shape.
	if anyFault {
		fmt.Fprintln(w, "phase         busy        recv-wait   barrier-wait  fault-wait   wait share (rank-seconds)")
	} else {
		fmt.Fprintln(w, "phase         busy        recv-wait   barrier-wait  wait share (rank-seconds)")
	}
	for _, r := range rows {
		wait := r.pb.RecvWait + r.pb.BarrierWait + r.pb.FaultWait
		if anyFault {
			fmt.Fprintf(w, "%-12s  %9.3fs  %9.3fs  %9.3fs  %9.3fs     %5.1f%%\n",
				label(r.phase), r.pb.Busy, r.pb.RecvWait, r.pb.BarrierWait,
				r.pb.FaultWait, 100*wait/r.pb.Total())
			continue
		}
		fmt.Fprintf(w, "%-12s  %9.3fs  %9.3fs  %9.3fs     %5.1f%%\n",
			label(r.phase), r.pb.Busy, r.pb.RecvWait, r.pb.BarrierWait,
			100*wait/r.pb.Total())
	}
}
