// Package report renders the paper's speedup figures (Figs. 5, 7, 10, 11)
// as text plots: parallel speedup versus processor count with the ideal
// line, per solution module — a terminal-friendly stand-in for the paper's
// graphs that makes the qualitative shapes (flow scales, connectivity
// doesn't, combined sits between) visible at a glance.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one labeled curve: y values over the shared x positions.
type Series struct {
	Label  string
	Marker byte
	Y      []float64
}

// Chart is a speedup-vs-processors figure.
type Chart struct {
	Title string
	// X holds processor counts.
	X []int
	// Series holds the curves (e.g. OVERFLOW, DCF3D, Combined).
	Series []Series
	// Ideal adds the y=x/x[0] ideal-speedup reference line.
	Ideal bool
	// Width and Height are the plot area size in characters.
	Width, Height int
}

// Render draws the chart to w.
func (c Chart) Render(w io.Writer) {
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 56
	}
	if height <= 0 {
		height = 16
	}
	if len(c.X) == 0 {
		fmt.Fprintf(w, "%s: (no data)\n", c.Title)
		return
	}

	xmin, xmax := float64(c.X[0]), float64(c.X[len(c.X)-1])
	if xmax == xmin {
		xmax = xmin + 1
	}
	ymin := 0.0
	ymax := 1.0
	for _, s := range c.Series {
		for _, v := range s.Y {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && v > ymax {
				ymax = v
			}
		}
	}
	if c.Ideal {
		if ideal := xmax / xmin; ideal > ymax {
			ymax = ideal
		}
	}
	ymax *= 1.05

	cells := make([][]byte, height)
	for r := range cells {
		cells[r] = []byte(strings.Repeat(" ", width))
	}
	put := func(x, y float64, m byte, force bool) {
		col := int((x - xmin) / (xmax - xmin) * float64(width-1))
		row := int((y - ymin) / (ymax - ymin) * float64(height-1))
		if col < 0 || col >= width || row < 0 || row >= height {
			return
		}
		r := height - 1 - row
		if force || cells[r][col] == ' ' || cells[r][col] == '.' {
			cells[r][col] = m
		}
	}

	if c.Ideal {
		// Ideal speedup: y = x / x[0], drawn as dots.
		for col := 0; col < width; col++ {
			x := xmin + (xmax-xmin)*float64(col)/float64(width-1)
			put(x, x/xmin, '.', false)
		}
	}
	for _, s := range c.Series {
		// Line segments between points, then markers on top.
		for i := 1; i < len(s.Y) && i < len(c.X); i++ {
			x0, y0 := float64(c.X[i-1]), s.Y[i-1]
			x1, y1 := float64(c.X[i]), s.Y[i]
			const steps = 40
			for t := 0; t <= steps; t++ {
				f := float64(t) / steps
				put(x0+(x1-x0)*f, y0+(y1-y0)*f, ':', false)
			}
		}
	}
	for _, s := range c.Series {
		for i, v := range s.Y {
			if i < len(c.X) {
				put(float64(c.X[i]), v, s.Marker, true)
			}
		}
	}

	fmt.Fprintf(w, "%s\n", c.Title)
	for r, line := range cells {
		label := "      "
		// y axis labels at top, middle, bottom.
		switch r {
		case 0:
			label = fmt.Sprintf("%5.1f ", ymax)
		case height / 2:
			label = fmt.Sprintf("%5.1f ", ymin+(ymax-ymin)/2)
		case height - 1:
			label = fmt.Sprintf("%5.1f ", ymin)
		}
		fmt.Fprintf(w, "%s|%s\n", label, string(line))
	}
	fmt.Fprintf(w, "      +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(w, "      %-d%*d  processors\n", c.X[0], width-len(fmt.Sprint(c.X[0])), c.X[len(c.X)-1])
	var legend []string
	if c.Ideal {
		legend = append(legend, ".. ideal")
	}
	for _, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c %s", s.Marker, s.Label))
	}
	fmt.Fprintf(w, "      legend: %s\n", strings.Join(legend, "   "))
}

// SpeedupFigure renders a paper-style per-module speedup figure from
// parallel module speedups (flow, connectivity, combined) over processor
// counts.
func SpeedupFigure(w io.Writer, title string, nodes []int, flow, connect, combined []float64) {
	Chart{
		Title: title,
		X:     nodes,
		Series: []Series{
			{Label: "OVERFLOW (flow)", Marker: 'o', Y: flow},
			{Label: "DCF3D (connectivity)", Marker: 'x', Y: connect},
			{Label: "combined", Marker: '*', Y: combined},
		},
		Ideal: true,
	}.Render(w)
}
