package report

import (
	"bytes"
	"strings"
	"testing"

	"overd/internal/trace"
)

// The golden tests pin the exact text the rendering functions emit. These
// reports are the human-facing contract of the observability layer — a
// formatting drift would silently invalidate every saved transcript, so a
// change here must be deliberate (update the golden string in the same
// commit that changes the format).

func gattSummary() *trace.Summary {
	return &trace.Summary{
		WindowStart: 0, WindowEnd: 2,
		Ranks: []trace.RankSummary{
			{Rank: 0, PhaseBreakdown: trace.PhaseBreakdown{Busy: 1, RecvWait: 0.5, BarrierWait: 0.5}},
			{Rank: 1, PhaseBreakdown: trace.PhaseBreakdown{Busy: 1.5, RecvWait: 0.25, BarrierWait: 0.25}},
		},
	}
}

func TestBusyWaitGanttGolden(t *testing.T) {
	var buf bytes.Buffer
	BusyWaitGantt(&buf, gattSummary(), 8)
	want := `per-rank busy/wait over 2.0000s window (# busy, ~ recv wait, = barrier wait)
rank   0 |####~~==| busy  1.000s  recv  0.500s  barrier  0.500s
rank   1 |######~=| busy  1.500s  recv  0.250s  barrier  0.250s
`
	if got := buf.String(); got != want {
		t.Errorf("gantt output drifted:\n got: %q\nwant: %q", got, want)
	}
}

func TestBusyWaitGanttZeroWidthUsesDefault(t *testing.T) {
	var zero, def bytes.Buffer
	BusyWaitGantt(&zero, gattSummary(), 0)
	BusyWaitGantt(&def, gattSummary(), 48)
	if zero.String() != def.String() {
		t.Errorf("width=0 output differs from the 48-column default:\n%q\nvs\n%q",
			zero.String(), def.String())
	}
	// The default bar really is 48 columns wide between the pipes.
	line := strings.Split(zero.String(), "\n")[1]
	open := strings.IndexByte(line, '|')
	close := strings.LastIndexByte(line, '|')
	if close-open-1 != 48 {
		t.Errorf("default bar width = %d, want 48 (%q)", close-open-1, line)
	}
}

func TestBusyWaitGanttZeroTotalGolden(t *testing.T) {
	var buf bytes.Buffer
	BusyWaitGantt(&buf, &trace.Summary{WindowStart: 1, WindowEnd: 1,
		Ranks: []trace.RankSummary{{Rank: 0}}}, 8)
	want := `per-rank busy/wait over 0.0000s window (# busy, ~ recv wait, = barrier wait)
  (no events in window)
`
	if got := buf.String(); got != want {
		t.Errorf("zero-total gantt drifted:\n got: %q\nwant: %q", got, want)
	}
}

func phaseSummary() *trace.Summary {
	return &trace.Summary{
		WindowStart: 0, WindowEnd: 4,
		Ranks: []trace.RankSummary{
			{Rank: 0, ByPhase: []trace.PhaseBreakdown{
				{Busy: 2, RecvWait: 0.5, BarrierWait: 0.5}, {}, {Busy: 1},
			}},
			{Rank: 1, ByPhase: []trace.PhaseBreakdown{
				{Busy: 1, RecvWait: 0.25, BarrierWait: 0.75}, {}, {Busy: 0.5, RecvWait: 0.5},
			}},
		},
	}
}

func phaseLabel(p int) string { return []string{"flow", "motion", "connect"}[p] }

func TestPhaseWaitTableGolden(t *testing.T) {
	var buf bytes.Buffer
	PhaseWaitTable(&buf, phaseSummary(), phaseLabel)
	// Rows sort by descending total; the all-zero "motion" phase is skipped;
	// no fault column on a fault-free run.
	want := `phase         busy        recv-wait   barrier-wait  wait share (rank-seconds)
flow              3.000s      0.750s      1.250s      40.0%
connect           1.500s      0.500s      0.000s      25.0%
`
	if got := buf.String(); got != want {
		t.Errorf("phase table drifted:\n got: %q\nwant: %q", got, want)
	}
}

func TestPhaseWaitTableFaultColumnGolden(t *testing.T) {
	s := phaseSummary()
	s.Ranks[0].ByPhase[2].FaultWait = 0.25
	var buf bytes.Buffer
	PhaseWaitTable(&buf, s, phaseLabel)
	// Any nonzero fault wait switches every row to the wide format.
	want := `phase         busy        recv-wait   barrier-wait  fault-wait   wait share (rank-seconds)
flow              3.000s      0.750s      1.250s      0.000s      40.0%
connect           1.500s      0.500s      0.000s      0.250s      33.3%
`
	if got := buf.String(); got != want {
		t.Errorf("fault phase table drifted:\n got: %q\nwant: %q", got, want)
	}
}

func TestPhaseWaitTableZeroTotal(t *testing.T) {
	var buf bytes.Buffer
	PhaseWaitTable(&buf, &trace.Summary{Ranks: []trace.RankSummary{
		{Rank: 0, ByPhase: make([]trace.PhaseBreakdown, 3)},
	}}, phaseLabel)
	// Header only: every phase total is zero, so no rows render.
	want := "phase         busy        recv-wait   barrier-wait  wait share (rank-seconds)\n"
	if got := buf.String(); got != want {
		t.Errorf("zero-total phase table drifted:\n got: %q\nwant: %q", got, want)
	}
}

func TestFaultSummaryGolden(t *testing.T) {
	var buf bytes.Buffer
	FaultSummary(&buf, FaultStats{
		Recoveries: 2, RecoverySteps: 6, RecoveryTime: 1.5,
		Checkpoints: 3, CheckpointTime: 0.125,
		StartNodes: 8, FinalNodes: 6,
		DroppedMsgs: 40, SendRetries: 37, FaultWaitTime: 0.75,
	})
	want := `fault / recovery summary
  rank crashes recovered       2   (8 -> 6 nodes)
  timesteps re-executed        6   (1.500s of lost work)
  checkpoints taken            3   (0.125s virtual cost)
  messages dropped            40   (37 retransmissions)
  fault wait                  0.750s rank-seconds (backoff + loss discovery)
`
	if got := buf.String(); got != want {
		t.Errorf("fault summary drifted:\n got: %q\nwant: %q", got, want)
	}
}

func TestFaultSummaryEmptyGolden(t *testing.T) {
	var buf bytes.Buffer
	FaultSummary(&buf, FaultStats{})
	want := "fault / recovery summary\n  (no fault activity)\n"
	if got := buf.String(); got != want {
		t.Errorf("empty fault summary drifted:\n got: %q\nwant: %q", got, want)
	}
}
