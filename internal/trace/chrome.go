package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// chromeEvent is one entry of the catapult trace-event JSON schema
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Virtual seconds map to microseconds so Perfetto's time axis reads
// naturally; each rank is one thread track of a single process.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const usPerSec = 1e6

// WriteChromeTrace exports the recorded run in the Chrome trace-event JSON
// format: one thread track per rank, busy slices named by phase, wait and
// barrier slices in their own categories, and send→recv flow arrows. The
// output loads in chrome://tracing and Perfetto.
func (rec *Recorder) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(e chromeEvent) error {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}

	emit(chromeEvent{Name: "process_name", Ph: "M", PID: 0,
		Args: map[string]any{"name": "overd virtual machine"}})
	for r := 0; r < rec.NRanks(); r++ {
		if err := emit(chromeEvent{Name: "thread_name", Ph: "M", PID: 0, TID: r,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", r)}}); err != nil {
			return err
		}
		if err := emit(chromeEvent{Name: "thread_sort_index", Ph: "M", PID: 0, TID: r,
			Args: map[string]any{"sort_index": r}}); err != nil {
			return err
		}
	}

	for r := 0; r < rec.NRanks(); r++ {
		for _, e := range rec.Events(r) {
			ce := chromeEvent{PID: 0, TID: r, TS: e.Start * usPerSec}
			switch e.Kind {
			case KindCompute, KindElapse:
				// Busy slices are named by phase so every module gets a
				// stable color in the viewer.
				ce.Name, ce.Cat, ce.Ph = rec.PhaseLabel(int(e.Phase)), "compute", "X"
				ce.Dur = e.Dur * usPerSec
			case KindSend:
				ce.Name, ce.Cat, ce.Ph = "send "+rec.TagLabel(int(e.Tag)), "comm", "X"
				ce.Dur = e.Dur * usPerSec
				ce.Args = map[string]any{"to": e.Peer, "bytes": e.Bytes}
				if err := emit(ce); err != nil {
					return err
				}
				if e.Flow == 0 {
					continue
				}
				// Flow start pinned inside the send slice.
				ce = chromeEvent{Name: "msg", Cat: "comm", Ph: "s", PID: 0, TID: r,
					TS: e.Start * usPerSec, ID: fmt.Sprintf("%x", e.Flow)}
			case KindRecv:
				ce.Name, ce.Cat, ce.Ph = "recv "+rec.TagLabel(int(e.Tag)), "comm", "i"
				ce.S = "t"
				ce.Args = map[string]any{"from": e.Peer, "bytes": e.Bytes}
				if err := emit(ce); err != nil {
					return err
				}
				if e.Flow == 0 {
					continue
				}
				ce = chromeEvent{Name: "msg", Cat: "comm", Ph: "f", BP: "e", PID: 0, TID: r,
					TS: e.Start * usPerSec, ID: fmt.Sprintf("%x", e.Flow)}
			case KindWait:
				ce.Name, ce.Cat, ce.Ph = "recv-wait", "wait", "X"
				ce.Dur = e.Dur * usPerSec
				ce.Args = map[string]any{"from": e.Peer, "tag": rec.TagLabel(int(e.Tag))}
			case KindBarrier:
				ce.Name, ce.Cat, ce.Ph = "barrier-wait", "barrier", "X"
				ce.Dur = e.Dur * usPerSec
				ce.Args = map[string]any{"released_by": e.Peer}
			case KindSync:
				ce.Name, ce.Cat, ce.Ph = "barrier-sync", "barrier", "X"
				ce.Dur = e.Dur * usPerSec
			case KindGather:
				ce.Name, ce.Cat, ce.Ph = "allgather", "collective", "X"
				ce.Dur = e.Dur * usPerSec
				ce.Args = map[string]any{"bytes": e.Bytes}
			case KindFaultWait:
				ce.Name, ce.Cat, ce.Ph = "fault-wait", "wait", "X"
				ce.Dur = e.Dur * usPerSec
				ce.Args = map[string]any{"peer": e.Peer, "tag": rec.TagLabel(int(e.Tag))}
			case KindPhase:
				ce.Name, ce.Cat, ce.Ph = "phase → "+rec.PhaseLabel(int(e.Phase)), "phase", "i"
				ce.S = "t"
			default:
				continue
			}
			if err := emit(ce); err != nil {
				return err
			}
		}
	}
	if _, err := bw.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// ExtraSlice is one caller-timed complete slice to merge into a Chrome
// trace document as an additional process: the job service uses it to put
// wall-clock lifecycle spans next to the solver's virtual-time timeline.
// Times are microseconds on the extra process's own clock track (for the
// service: microseconds since the job entered the server).
type ExtraSlice struct {
	Name    string
	Cat     string
	TID     int
	StartUS float64
	DurUS   float64
	Args    map[string]any
}

// MergeChromeTrace parses a Chrome trace-event JSON document (as written by
// WriteChromeTrace; nil/empty doc means an empty trace) and appends one
// extra process of caller-timed slices, returning the merged document.
//
// The merged file intentionally carries two different clocks: the original
// process's events are virtual microseconds (the simulated machine), the
// extra process's are wall-clock microseconds (the service). Chrome's time
// axis is shared, so the two tracks line up only by construction — both
// start at zero — but that is exactly the point: one file answers "where
// did the wall clock go?" directly underneath "where did the virtual clock
// go?". threads names the extra process's thread tracks (tid → name);
// slices must reference tids from it or plain unnamed tids.
func MergeChromeTrace(doc []byte, pid int, procName string, threads map[int]string, slices []ExtraSlice) ([]byte, error) {
	var parsed struct {
		TraceEvents     []json.RawMessage `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
	}
	parsed.DisplayTimeUnit = "ms"
	if len(doc) > 0 {
		if err := json.Unmarshal(doc, &parsed); err != nil {
			return nil, fmt.Errorf("trace: parsing chrome document to merge: %w", err)
		}
	}
	extra := make([]chromeEvent, 0, len(slices)+1+len(threads))
	extra = append(extra, chromeEvent{Name: "process_name", Ph: "M", PID: pid,
		Args: map[string]any{"name": procName}})
	tids := make([]int, 0, len(threads))
	for tid := range threads {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		extra = append(extra, chromeEvent{Name: "thread_name", Ph: "M", PID: pid, TID: tid,
			Args: map[string]any{"name": threads[tid]}})
	}
	for _, s := range slices {
		extra = append(extra, chromeEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X", PID: pid, TID: s.TID,
			TS: s.StartUS, Dur: s.DurUS, Args: s.Args,
		})
	}
	for _, e := range extra {
		b, err := json.Marshal(e)
		if err != nil {
			return nil, fmt.Errorf("trace: encoding merged event: %w", err)
		}
		parsed.TraceEvents = append(parsed.TraceEvents, b)
	}
	out, err := json.Marshal(struct {
		TraceEvents     []json.RawMessage `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
	}{parsed.TraceEvents, parsed.DisplayTimeUnit})
	if err != nil {
		return nil, fmt.Errorf("trace: encoding merged document: %w", err)
	}
	return out, nil
}
