package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the catapult trace-event JSON schema
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
// Virtual seconds map to microseconds so Perfetto's time axis reads
// naturally; each rank is one thread track of a single process.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

const usPerSec = 1e6

// WriteChromeTrace exports the recorded run in the Chrome trace-event JSON
// format: one thread track per rank, busy slices named by phase, wait and
// barrier slices in their own categories, and send→recv flow arrows. The
// output loads in chrome://tracing and Perfetto.
func (rec *Recorder) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(e chromeEvent) error {
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}

	emit(chromeEvent{Name: "process_name", Ph: "M", PID: 0,
		Args: map[string]any{"name": "overd virtual machine"}})
	for r := 0; r < rec.NRanks(); r++ {
		if err := emit(chromeEvent{Name: "thread_name", Ph: "M", PID: 0, TID: r,
			Args: map[string]any{"name": fmt.Sprintf("rank %d", r)}}); err != nil {
			return err
		}
		if err := emit(chromeEvent{Name: "thread_sort_index", Ph: "M", PID: 0, TID: r,
			Args: map[string]any{"sort_index": r}}); err != nil {
			return err
		}
	}

	for r := 0; r < rec.NRanks(); r++ {
		for _, e := range rec.Events(r) {
			ce := chromeEvent{PID: 0, TID: r, TS: e.Start * usPerSec}
			switch e.Kind {
			case KindCompute, KindElapse:
				// Busy slices are named by phase so every module gets a
				// stable color in the viewer.
				ce.Name, ce.Cat, ce.Ph = rec.PhaseLabel(int(e.Phase)), "compute", "X"
				ce.Dur = e.Dur * usPerSec
			case KindSend:
				ce.Name, ce.Cat, ce.Ph = "send "+rec.TagLabel(int(e.Tag)), "comm", "X"
				ce.Dur = e.Dur * usPerSec
				ce.Args = map[string]any{"to": e.Peer, "bytes": e.Bytes}
				if err := emit(ce); err != nil {
					return err
				}
				if e.Flow == 0 {
					continue
				}
				// Flow start pinned inside the send slice.
				ce = chromeEvent{Name: "msg", Cat: "comm", Ph: "s", PID: 0, TID: r,
					TS: e.Start * usPerSec, ID: fmt.Sprintf("%x", e.Flow)}
			case KindRecv:
				ce.Name, ce.Cat, ce.Ph = "recv "+rec.TagLabel(int(e.Tag)), "comm", "i"
				ce.S = "t"
				ce.Args = map[string]any{"from": e.Peer, "bytes": e.Bytes}
				if err := emit(ce); err != nil {
					return err
				}
				if e.Flow == 0 {
					continue
				}
				ce = chromeEvent{Name: "msg", Cat: "comm", Ph: "f", BP: "e", PID: 0, TID: r,
					TS: e.Start * usPerSec, ID: fmt.Sprintf("%x", e.Flow)}
			case KindWait:
				ce.Name, ce.Cat, ce.Ph = "recv-wait", "wait", "X"
				ce.Dur = e.Dur * usPerSec
				ce.Args = map[string]any{"from": e.Peer, "tag": rec.TagLabel(int(e.Tag))}
			case KindBarrier:
				ce.Name, ce.Cat, ce.Ph = "barrier-wait", "barrier", "X"
				ce.Dur = e.Dur * usPerSec
				ce.Args = map[string]any{"released_by": e.Peer}
			case KindSync:
				ce.Name, ce.Cat, ce.Ph = "barrier-sync", "barrier", "X"
				ce.Dur = e.Dur * usPerSec
			case KindGather:
				ce.Name, ce.Cat, ce.Ph = "allgather", "collective", "X"
				ce.Dur = e.Dur * usPerSec
				ce.Args = map[string]any{"bytes": e.Bytes}
			case KindFaultWait:
				ce.Name, ce.Cat, ce.Ph = "fault-wait", "wait", "X"
				ce.Dur = e.Dur * usPerSec
				ce.Args = map[string]any{"peer": e.Peer, "tag": rec.TagLabel(int(e.Tag))}
			case KindPhase:
				ce.Name, ce.Cat, ce.Ph = "phase → "+rec.PhaseLabel(int(e.Phase)), "phase", "i"
				ce.S = "t"
			default:
				continue
			}
			if err := emit(ce); err != nil {
				return err
			}
		}
	}
	if _, err := bw.WriteString("\n],\"displayTimeUnit\":\"ms\"}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
