package trace

import (
	"encoding/json"
	"testing"
)

// decodeTraceDoc parses a Chrome trace document into generic events.
func decodeTraceDoc(t *testing.T, doc []byte) []map[string]any {
	t.Helper()
	var parsed struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(doc, &parsed); err != nil {
		t.Fatalf("merged document is not valid JSON: %v", err)
	}
	if parsed.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", parsed.DisplayTimeUnit)
	}
	return parsed.TraceEvents
}

func TestMergeChromeTraceIntoEmptyDoc(t *testing.T) {
	merged, err := MergeChromeTrace(nil, 1, "service wall clock",
		map[int]string{0: "lifecycle"},
		[]ExtraSlice{{Name: "execute", Cat: "service", TID: 0, StartUS: 10, DurUS: 250,
			Args: map[string]any{"attempt": 1}}})
	if err != nil {
		t.Fatal(err)
	}
	evs := decodeTraceDoc(t, merged)
	var haveProc, haveThread, haveSlice bool
	for _, e := range evs {
		switch e["name"] {
		case "process_name":
			haveProc = e["args"].(map[string]any)["name"] == "service wall clock"
		case "thread_name":
			haveThread = e["args"].(map[string]any)["name"] == "lifecycle"
		case "execute":
			haveSlice = e["ph"] == "X" && e["ts"] == 10.0 && e["dur"] == 250.0 && e["pid"] == 1.0
		}
	}
	if !haveProc || !haveThread || !haveSlice {
		t.Errorf("merged doc missing pieces: proc=%v thread=%v slice=%v in %s",
			haveProc, haveThread, haveSlice, merged)
	}
}

func TestMergeChromeTracePreservesOriginalEvents(t *testing.T) {
	base := []byte(`{"traceEvents":[
{"name":"process_name","ph":"M","ts":0,"pid":0,"tid":0,"args":{"name":"overd virtual machine"}},
{"name":"flow","cat":"compute","ph":"X","ts":5,"dur":100,"pid":0,"tid":2}
],"displayTimeUnit":"ms"}`)
	merged, err := MergeChromeTrace(base, 1, "service", nil,
		[]ExtraSlice{{Name: "queue", TID: 0, StartUS: 0, DurUS: 42}})
	if err != nil {
		t.Fatal(err)
	}
	evs := decodeTraceDoc(t, merged)
	pids := map[float64]int{}
	var haveFlow, haveQueue bool
	for _, e := range evs {
		pids[e["pid"].(float64)]++
		if e["name"] == "flow" && e["pid"] == 0.0 && e["dur"] == 100.0 {
			haveFlow = true
		}
		if e["name"] == "queue" && e["pid"] == 1.0 && e["dur"] == 42.0 {
			haveQueue = true
		}
	}
	if !haveFlow {
		t.Error("original virtual-time slice lost in merge")
	}
	if !haveQueue {
		t.Error("wall-clock slice missing from merge")
	}
	if pids[0] == 0 || pids[1] == 0 {
		t.Errorf("merged doc should hold both clock tracks, got pids %v", pids)
	}
}

func TestMergeChromeTraceRejectsGarbage(t *testing.T) {
	if _, err := MergeChromeTrace([]byte("not json"), 1, "p", nil, nil); err == nil {
		t.Fatal("garbage document accepted")
	}
}
