// Package trace is a virtual-time event tracer for the par runtime. When a
// Recorder is attached to a par.World, every clock advance on every rank —
// compute, modeled memory traffic, message send overhead, receive wait,
// barrier wait, collective synchronization — emits one typed Event into a
// per-rank append-only buffer. Ranks own their buffers exclusively while the
// world runs (no locks on the hot path); the merged stream is analyzed only
// after World.Run returns.
//
// Because every clock mutation emits exactly one event, the events of a rank
// tile its virtual timeline: the sum of event durations equals the rank's
// final clock. That invariant is what makes the three analyses exact rather
// than sampled: Summarize decomposes each rank and phase into busy time
// versus blocked (receive-wait and barrier-wait) time, CriticalPath chains
// backward through message and barrier dependencies to the sequence of work
// that set the makespan, and WriteChromeTrace exports the whole timeline in
// the Chrome trace-event (catapult) JSON format for chrome://tracing or
// Perfetto.
//
// The package depends only on the standard library; par imports trace, not
// the other way around, so Phase and Tag appear here as plain ints labeled
// through a caller-provided function.
package trace

// Kind classifies an event. Busy kinds advance the clock by modeled work;
// wait kinds advance it by blocking on a peer; marker kinds carry no time.
type Kind uint8

const (
	// KindCompute is floating-point work charged through Rank.Compute.
	KindCompute Kind = iota
	// KindElapse is modeled memory/bookkeeping time charged through
	// Rank.Elapse.
	KindElapse
	// KindSend is the sender-side software overhead of a message; its Flow
	// field links it to the matching KindRecv on the destination rank.
	KindSend
	// KindRecv marks a message match completing on the receiver (zero
	// duration; any blocked time is the preceding KindWait).
	KindRecv
	// KindWait is time blocked in a receive for a message still in flight;
	// Peer is the sender and Flow links to the KindSend that bounds it.
	KindWait
	// KindBarrier is time blocked in a barrier or collective rendezvous
	// waiting for slower ranks; Peer is the rank whose clock set the
	// release time.
	KindBarrier
	// KindSync is the modeled log-tree synchronization cost every rank pays
	// after a barrier rendezvous.
	KindSync
	// KindGather is the modeled data-movement cost of an AllGather-family
	// collective.
	KindGather
	// KindPhase is a zero-duration marker recording a phase change.
	KindPhase
	// KindFaultWait is virtual time lost to the fault layer: retry backoff
	// after a dropped message acknowledgment, or the grace period spent
	// discovering a loss in a timed-out receive. Peer is the unreachable
	// rank; Tag is the afflicted message stream.
	KindFaultWait
	numKinds
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCompute:
		return "compute"
	case KindElapse:
		return "elapse"
	case KindSend:
		return "send"
	case KindRecv:
		return "recv"
	case KindWait:
		return "recv-wait"
	case KindBarrier:
		return "barrier-wait"
	case KindSync:
		return "barrier-sync"
	case KindGather:
		return "allgather"
	case KindPhase:
		return "phase"
	case KindFaultWait:
		return "fault-wait"
	}
	return "kind(?)"
}

// Busy reports whether the kind represents productive (non-blocked) virtual
// time: modeled computation, memory traffic, send overhead, or the
// synchronization work of collectives.
func (k Kind) Busy() bool {
	switch k {
	case KindCompute, KindElapse, KindSend, KindSync, KindGather:
		return true
	}
	return false
}

// Wait reports whether the kind represents time blocked on a peer.
func (k Kind) Wait() bool { return k == KindWait || k == KindBarrier || k == KindFaultWait }

// NoPeer is the Peer value of events not caused by another rank.
const NoPeer = -1

// Event is one virtual-time interval (or marker) on one rank's timeline.
type Event struct {
	Kind  Kind
	Rank  int32
	Phase int32
	// Tag is the message tag for send/recv/wait events; 0 otherwise.
	Tag int32
	// Peer is the other rank involved: destination for sends, source for
	// receives and receive-waits, and the clock-setting (slowest) rank for
	// barrier waits. NoPeer when not applicable.
	Peer int32
	// Bytes is the modeled wire size for message and gather events.
	Bytes int64
	// Flow links a KindSend to its matching KindWait/KindRecv across ranks
	// (unique per message); 0 when not applicable.
	Flow uint64
	// Start is the rank's virtual clock when the event began, in seconds.
	Start float64
	// Dur is the virtual duration in seconds (0 for markers).
	Dur float64
}

// End returns the event's ending virtual time.
func (e Event) End() float64 { return e.Start + e.Dur }

// RankBuf is one rank's private event buffer. Exactly one goroutine appends
// to a RankBuf while the world runs, so Emit takes no locks.
type RankBuf struct {
	ev []Event
	// pad keeps adjacent ranks' buffers off a shared cache line so
	// concurrent appends do not false-share.
	_ [64 - 24%64]byte
}

// Emit appends an event. Amortized O(1); the only cost besides the append is
// occasional slice growth.
func (b *RankBuf) Emit(e Event) { b.ev = append(b.ev, e) }

// Len returns the number of events recorded so far.
func (b *RankBuf) Len() int { return len(b.ev) }

// Recorder collects the per-rank event streams of one run plus the metadata
// the analyses need. Attach it through core.Config.Trace (or par's
// World.SetTrace); a Recorder may be reused across runs — each attachment
// resets it.
type Recorder struct {
	bufs       []RankBuf
	finalClock []float64
	phaseLabel func(int) string
	tagLabel   func(int) string

	// Measurement window [winStart, winEnd] in virtual seconds; analyses
	// clip to it when set so they reconcile with statistics that exclude
	// preprocessing. Zero window means "whole run".
	winStart, winEnd float64
	hasWindow        bool
}

// NewRecorder returns an empty recorder. It becomes usable once attached to
// a world (which calls Reset with the rank count).
func NewRecorder() *Recorder { return &Recorder{} }

// Reset clears all state and sizes the recorder for n ranks.
func (rec *Recorder) Reset(n int) {
	rec.bufs = make([]RankBuf, n)
	rec.finalClock = make([]float64, n)
	rec.winStart, rec.winEnd, rec.hasWindow = 0, 0, false
}

// NRanks returns the number of rank buffers (0 before attachment).
func (rec *Recorder) NRanks() int { return len(rec.bufs) }

// Buf returns rank's private buffer for the runtime to emit into.
func (rec *Recorder) Buf(rank int) *RankBuf { return &rec.bufs[rank] }

// Events returns rank's recorded events in emission (virtual-time) order.
// The returned slice is owned by the recorder; callers must not mutate it.
func (rec *Recorder) Events(rank int) []Event { return rec.bufs[rank].ev }

// SetFinalClock records rank's clock at the end of the run.
func (rec *Recorder) SetFinalClock(rank int, clock float64) { rec.finalClock[rank] = clock }

// FinalClock returns rank's clock at the end of the run.
func (rec *Recorder) FinalClock(rank int) float64 { return rec.finalClock[rank] }

// SetPhaseLabel installs the function used to name phase ints in reports and
// exports (par installs the par.Phase stringer on attachment).
func (rec *Recorder) SetPhaseLabel(f func(int) string) { rec.phaseLabel = f }

// SetTagLabel installs the function used to name message tags in exports.
func (rec *Recorder) SetTagLabel(f func(int) string) { rec.tagLabel = f }

// PhaseLabel names a phase int, falling back to "phaseN".
func (rec *Recorder) PhaseLabel(p int) string {
	if rec.phaseLabel != nil {
		return rec.phaseLabel(p)
	}
	return "phase" + itoa(p)
}

// TagLabel names a message tag int, falling back to "tagN".
func (rec *Recorder) TagLabel(t int) string {
	if rec.tagLabel != nil {
		return rec.tagLabel(t)
	}
	return "tag" + itoa(t)
}

// SetWindow restricts analyses to the virtual-time interval [start, end] —
// core marks the measured timestep loop this way so trace summaries
// reconcile with Result.TotalTime, which excludes preprocessing.
func (rec *Recorder) SetWindow(start, end float64) {
	rec.winStart, rec.winEnd, rec.hasWindow = start, end, true
}

// Window returns the analysis window. When none was set it spans from 0 to
// the maximum final clock.
func (rec *Recorder) Window() (start, end float64) {
	if rec.hasWindow {
		return rec.winStart, rec.winEnd
	}
	end = 0
	for _, c := range rec.finalClock {
		if c > end {
			end = c
		}
	}
	return 0, end
}

// MaxPhase returns the largest phase int seen in any event (-1 if none).
func (rec *Recorder) MaxPhase() int {
	maxP := -1
	for r := range rec.bufs {
		for _, e := range rec.bufs[r].ev {
			if int(e.Phase) > maxP {
				maxP = int(e.Phase)
			}
		}
	}
	return maxP
}

// itoa avoids importing strconv into every caller path for label fallbacks.
func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
