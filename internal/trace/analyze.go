package trace

import (
	"fmt"
	"io"
	"sort"
)

// PhaseBreakdown splits one rank's time in one phase into busy work and the
// two blocked categories the raw phaseTime counters cannot distinguish.
type PhaseBreakdown struct {
	Busy        float64 // compute, elapse, send overhead, collective work
	RecvWait    float64 // blocked on messages still in flight
	BarrierWait float64 // blocked in barriers/collectives for slower ranks
	FaultWait   float64 // retry backoff and loss-discovery time (fault layer)
}

// Total returns all virtual time attributed to the phase.
func (p PhaseBreakdown) Total() float64 {
	return p.Busy + p.RecvWait + p.BarrierWait + p.FaultWait
}

// RankSummary is one rank's wait/idle decomposition over the window.
type RankSummary struct {
	Rank int
	PhaseBreakdown
	// ByPhase is indexed by phase int (dense, length MaxPhase+1).
	ByPhase []PhaseBreakdown
	// MsgsSent and BytesSent count send events whose start falls inside
	// the window. Unlike the time columns these are attributed by start
	// instant (self-sends have zero duration), so zero-duration sends
	// still count.
	MsgsSent  int64
	BytesSent int64
}

// Summary is the per-rank wait/idle decomposition of a recorded run.
type Summary struct {
	// WindowStart and WindowEnd bound the analyzed interval.
	WindowStart, WindowEnd float64
	Ranks                  []RankSummary
}

// Summarize decomposes every rank's window time into busy versus blocked
// time, per phase. Events straddling the window boundary contribute only
// their overlap, so each rank's Total() reconciles with WindowEnd−WindowStart
// (the barriers in core's step loop keep all clocks equal at both bounds).
func (rec *Recorder) Summarize() *Summary {
	start, end := rec.Window()
	nPhase := rec.MaxPhase() + 1
	s := &Summary{WindowStart: start, WindowEnd: end}
	for r := range rec.bufs {
		rs := RankSummary{Rank: r, ByPhase: make([]PhaseBreakdown, nPhase)}
		for _, e := range rec.bufs[r].ev {
			if e.Kind == KindSend && e.Start >= start && e.Start < end {
				rs.MsgsSent++
				rs.BytesSent += e.Bytes
			}
			if e.Dur <= 0 {
				continue
			}
			lo, hi := e.Start, e.End()
			if lo < start {
				lo = start
			}
			if hi > end {
				hi = end
			}
			d := hi - lo
			if d <= 0 {
				continue
			}
			pb := &rs.ByPhase[e.Phase]
			switch {
			case e.Kind == KindWait:
				rs.RecvWait += d
				pb.RecvWait += d
			case e.Kind == KindBarrier:
				rs.BarrierWait += d
				pb.BarrierWait += d
			case e.Kind == KindFaultWait:
				rs.FaultWait += d
				pb.FaultWait += d
			case e.Kind.Busy():
				rs.Busy += d
				pb.Busy += d
			}
		}
		s.Ranks = append(s.Ranks, rs)
	}
	return s
}

// MaxTotal returns the largest per-rank Total in the summary.
func (s *Summary) MaxTotal() float64 {
	m := 0.0
	for _, r := range s.Ranks {
		if t := r.Total(); t > m {
			m = t
		}
	}
	return m
}

// Segment is one contributor to the critical path: a busy interval on a
// rank, or a message transfer chained through (Kind == KindSend with the
// duration being the modeled wire time).
type Segment struct {
	Rank  int
	Phase int
	Kind  Kind
	Start float64
	Dur   float64
}

// CriticalPath is the dependency chain that set the run's makespan: the
// sequence of work and message transfers such that shortening any element
// would (to first order) shorten the whole run.
type CriticalPath struct {
	// Makespan is the window length the path explains.
	Makespan float64
	// Covered is the portion of the makespan accounted for by Segments;
	// the remainder is time before the earliest recorded dependency.
	Covered float64
	// Segments lists the chain in forward virtual-time order.
	Segments []Segment
	// Hops counts rank switches along the path (message or barrier edges).
	Hops int
}

// flowKey locates a send event for cross-rank chaining.
type flowSite struct {
	rank  int
	start float64 // sender clock at the send call
	phase int
	bytes int64
}

// CriticalPath walks the event dependency graph backward from the rank that
// finished the window latest. Busy intervals extend the path on the same
// rank; a receive wait chains to the sender at its send time (the in-flight
// interval is charged as a message-transfer segment); a barrier wait chains
// to the rank whose clock set the release time. The walk stops at the window
// start.
func (rec *Recorder) CriticalPath() *CriticalPath {
	start, end := rec.Window()
	cp := &CriticalPath{Makespan: end - start}
	n := len(rec.bufs)
	if n == 0 || cp.Makespan <= 0 {
		return cp
	}

	// Index send events by flow id for receive-wait chaining.
	flows := make(map[uint64]flowSite)
	for r := range rec.bufs {
		for _, e := range rec.bufs[r].ev {
			if e.Kind == KindSend && e.Flow != 0 {
				flows[e.Flow] = flowSite{rank: r, start: e.Start, phase: int(e.Phase), bytes: e.Bytes}
			}
		}
	}

	const eps = 1e-12
	cur := 0
	for r := 1; r < n; r++ {
		if rec.finalClock[r] > rec.finalClock[cur] {
			cur = r
		}
	}
	t := end

	// Walk backward; every iteration either consumes an event or hops to a
	// peer rank, so the total step count is bounded by events + hops.
	maxSteps := 0
	for r := range rec.bufs {
		maxSteps += len(rec.bufs[r].ev) + 1
	}
	var segs []Segment
	for step := 0; step < maxSteps && t > start+eps; step++ {
		ev := rec.bufs[cur].ev
		// Last event beginning strictly before t.
		i := sort.Search(len(ev), func(k int) bool { return ev[k].Start >= t-eps }) - 1
		if i < 0 {
			break // nothing earlier on this rank: unexplained head
		}
		e := ev[i]
		switch {
		case e.Dur <= eps:
			// Marker (phase change, recv completion, zero-length wait):
			// step over it without advancing time past its start.
			t = min(t, e.Start)
		case e.Kind == KindWait:
			// Blocked on an in-flight message: the path runs through the
			// sender. Charge the wire interval [send, arrival] as a
			// transfer segment, then continue on the sender at send time.
			if fs, ok := flows[e.Flow]; ok && fs.rank != cur {
				arr := e.End()
				segs = append(segs, Segment{Rank: fs.rank, Phase: fs.phase,
					Kind: KindSend, Start: fs.start, Dur: arr - fs.start})
				cur, t = fs.rank, fs.start
				cp.Hops++
			} else {
				// Self-send or unmatched flow: treat as local time.
				segs = append(segs, Segment{Rank: cur, Phase: int(e.Phase),
					Kind: e.Kind, Start: e.Start, Dur: e.Dur})
				t = e.Start
			}
		case e.Kind == KindBarrier:
			// Blocked in a rendezvous until the slowest rank (Peer)
			// arrived at the release time e.End(); continue on that rank
			// at the moment it reached the rendezvous. Never move forward
			// in time: an earlier hop may have landed inside this wait.
			if p := int(e.Peer); p >= 0 && p != cur {
				cur = p
				cp.Hops++
				t = min(t, e.End())
			} else {
				t = e.Start
			}
		default:
			// Busy work on the path.
			d := e.Dur
			if e.End() > t+eps {
				d = t - e.Start // partially consumed by an earlier hop
			}
			if d > 0 {
				segs = append(segs, Segment{Rank: cur, Phase: int(e.Phase),
					Kind: e.Kind, Start: e.Start, Dur: d})
			}
			t = e.Start
		}
	}

	// Reverse into forward order and total the coverage.
	for l, r := 0, len(segs)-1; l < r; l, r = l+1, r-1 {
		segs[l], segs[r] = segs[r], segs[l]
	}
	cp.Segments = segs
	for _, s := range segs {
		cp.Covered += s.Dur
	}
	return cp
}

// TimeByRank aggregates path time per rank.
func (cp *CriticalPath) TimeByRank() map[int]float64 {
	m := map[int]float64{}
	for _, s := range cp.Segments {
		m[s.Rank] += s.Dur
	}
	return m
}

// TimeByPhase aggregates path time per phase int.
func (cp *CriticalPath) TimeByPhase() map[int]float64 {
	m := map[int]float64{}
	for _, s := range cp.Segments {
		m[s.Phase] += s.Dur
	}
	return m
}

// TimeByRankPhase aggregates path time per (rank, phase).
func (cp *CriticalPath) TimeByRankPhase() map[[2]int]float64 {
	m := map[[2]int]float64{}
	for _, s := range cp.Segments {
		m[[2]int{s.Rank, s.Phase}] += s.Dur
	}
	return m
}

// CommTime returns the path time spent in message transfers (the wire
// intervals chained through receive waits).
func (cp *CriticalPath) CommTime() float64 {
	t := 0.0
	for _, s := range cp.Segments {
		if s.Kind == KindSend {
			t += s.Dur
		}
	}
	return t
}

// Dominant returns the (rank, phase) pair holding the most critical-path
// time, with that time in seconds. Returns rank -1 on an empty path.
func (cp *CriticalPath) Dominant() (rank, phase int, seconds float64) {
	rank = -1
	for rp, d := range cp.TimeByRankPhase() {
		if d > seconds || (d == seconds && rank >= 0 && (rp[0] < rank || (rp[0] == rank && rp[1] < phase))) {
			rank, phase, seconds = rp[0], rp[1], d
		}
	}
	return rank, phase, seconds
}

// Fprint writes a human-readable critical-path report: coverage, dominant
// contributor, and the per-phase and per-rank path time.
func (cp *CriticalPath) Fprint(w io.Writer, rec *Recorder) {
	fmt.Fprintf(w, "critical path: makespan %.4fs, %.4fs on-path (%.0f%%), %d rank hops, comm %.4fs\n",
		cp.Makespan, cp.Covered, pct(cp.Covered, cp.Makespan), cp.Hops, cp.CommTime())
	rank, phase, sec := cp.Dominant()
	if rank < 0 {
		fmt.Fprintln(w, "  (empty path)")
		return
	}
	fmt.Fprintf(w, "  dominant: rank %d in %s (%.4fs, %.0f%% of path)\n",
		rank, rec.PhaseLabel(phase), sec, pct(sec, cp.Covered))
	byPhase := cp.TimeByPhase()
	phases := make([]int, 0, len(byPhase))
	for p := range byPhase {
		phases = append(phases, p)
	}
	sort.Ints(phases)
	fmt.Fprintf(w, "  by phase:")
	for _, p := range phases {
		fmt.Fprintf(w, "  %s %.4fs (%.0f%%)", rec.PhaseLabel(p), byPhase[p], pct(byPhase[p], cp.Covered))
	}
	fmt.Fprintln(w)
	byRank := cp.TimeByRank()
	ranks := make([]int, 0, len(byRank))
	for r := range byRank {
		ranks = append(ranks, r)
	}
	sort.Slice(ranks, func(a, b int) bool { return byRank[ranks[a]] > byRank[ranks[b]] })
	if len(ranks) > 4 {
		ranks = ranks[:4]
	}
	fmt.Fprintf(w, "  top ranks:")
	for _, r := range ranks {
		fmt.Fprintf(w, "  #%d %.4fs", r, byRank[r])
	}
	fmt.Fprintln(w)
}

func pct(part, whole float64) float64 {
	if whole <= 0 {
		return 0
	}
	return 100 * part / whole
}
