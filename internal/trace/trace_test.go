package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// build assembles a recorder from hand-written per-rank event lists.
func build(t *testing.T, perRank [][]Event, finals []float64) *Recorder {
	t.Helper()
	rec := NewRecorder()
	rec.Reset(len(perRank))
	for r, evs := range perRank {
		for _, e := range evs {
			e.Rank = int32(r)
			rec.Buf(r).Emit(e)
		}
		rec.SetFinalClock(r, finals[r])
	}
	return rec
}

func TestSummarizeDecomposesAndReconciles(t *testing.T) {
	// Two ranks over a [0,10] window. Rank 0: 10s busy in phase 0.
	// Rank 1: 4s busy phase 0, 3s recv wait phase 0, 3s barrier wait phase 1.
	rec := build(t, [][]Event{
		{{Kind: KindCompute, Phase: 0, Start: 0, Dur: 10}},
		{
			{Kind: KindCompute, Phase: 0, Start: 0, Dur: 4},
			{Kind: KindWait, Phase: 0, Start: 4, Dur: 3, Peer: 0},
			{Kind: KindBarrier, Phase: 1, Start: 7, Dur: 3, Peer: 0},
		},
	}, []float64{10, 10})
	s := rec.Summarize()
	for _, rs := range s.Ranks {
		if got := rs.Total(); math.Abs(got-10) > 1e-12 {
			t.Errorf("rank %d total %v, want 10 (reconcile with window)", rs.Rank, got)
		}
	}
	r1 := s.Ranks[1]
	if r1.Busy != 4 || r1.RecvWait != 3 || r1.BarrierWait != 3 {
		t.Errorf("rank 1 decomposition = %+v", r1.PhaseBreakdown)
	}
	if r1.ByPhase[0].RecvWait != 3 || r1.ByPhase[1].BarrierWait != 3 {
		t.Errorf("per-phase attribution = %+v", r1.ByPhase)
	}
}

func TestSummarizeClipsToWindow(t *testing.T) {
	rec := build(t, [][]Event{
		{{Kind: KindCompute, Phase: 0, Start: 0, Dur: 10}},
	}, []float64{10})
	rec.SetWindow(2, 7)
	s := rec.Summarize()
	if got := s.Ranks[0].Busy; math.Abs(got-5) > 1e-12 {
		t.Errorf("clipped busy %v, want 5", got)
	}
}

// TestCriticalPathChainsThroughMessage: rank 1 computes 1s then waits 4s
// for a message rank 0 sent at t=4 (after 4s of compute); the path must be
// rank 0's compute + the wire, not rank 1's idle wait.
func TestCriticalPathChainsThroughMessage(t *testing.T) {
	rec := build(t, [][]Event{
		{
			{Kind: KindCompute, Phase: 2, Start: 0, Dur: 4},
			{Kind: KindSend, Phase: 2, Start: 4, Dur: 0.1, Peer: 1, Flow: 7, Bytes: 100},
		},
		{
			{Kind: KindCompute, Phase: 0, Start: 0, Dur: 1},
			{Kind: KindWait, Phase: 0, Start: 1, Dur: 4, Peer: 0, Flow: 7},
			{Kind: KindRecv, Phase: 0, Start: 5, Dur: 0, Peer: 0, Flow: 7},
			{Kind: KindCompute, Phase: 0, Start: 5, Dur: 2},
		},
	}, []float64{4.1, 7})
	cp := rec.CriticalPath()
	if math.Abs(cp.Makespan-7) > 1e-12 {
		t.Fatalf("makespan %v, want 7", cp.Makespan)
	}
	if math.Abs(cp.Covered-7) > 1e-9 {
		t.Errorf("covered %v, want 7 (full explanation)", cp.Covered)
	}
	byRank := cp.TimeByRank()
	// Rank 0 carries its 4s compute plus the 1s wire interval (send→arrival).
	if math.Abs(byRank[0]-5) > 1e-9 || math.Abs(byRank[1]-2) > 1e-9 {
		t.Errorf("path time by rank = %v, want {0:5, 1:2}", byRank)
	}
	rank, phase, _ := cp.Dominant()
	if rank != 0 || phase != 2 {
		t.Errorf("dominant = rank %d phase %d, want rank 0 phase 2", rank, phase)
	}
	if cp.Hops != 1 {
		t.Errorf("hops = %d, want 1", cp.Hops)
	}
	if got := cp.CommTime(); math.Abs(got-1) > 1e-9 {
		t.Errorf("comm time on path %v, want 1 (send at 4, arrival at 5)", got)
	}
}

// TestCriticalPathChainsThroughBarrier: the slowest rank into a barrier is
// the path, not the ranks that waited for it.
func TestCriticalPathChainsThroughBarrier(t *testing.T) {
	rec := build(t, [][]Event{
		{
			{Kind: KindCompute, Phase: 0, Start: 0, Dur: 1},
			{Kind: KindBarrier, Phase: 0, Start: 1, Dur: 5, Peer: 1},
			{Kind: KindCompute, Phase: 1, Start: 6, Dur: 2},
		},
		{
			{Kind: KindCompute, Phase: 3, Start: 0, Dur: 6},
			{Kind: KindCompute, Phase: 1, Start: 6, Dur: 1},
		},
	}, []float64{8, 7})
	cp := rec.CriticalPath()
	byRank := cp.TimeByRank()
	// Path: rank 0's trailing 2s, hop at barrier to rank 1's 6s head.
	if math.Abs(byRank[0]-2) > 1e-9 || math.Abs(byRank[1]-6) > 1e-9 {
		t.Errorf("path time by rank = %v, want {0:2, 1:6}", byRank)
	}
	rank, phase, sec := cp.Dominant()
	if rank != 1 || phase != 3 || math.Abs(sec-6) > 1e-9 {
		t.Errorf("dominant = rank %d phase %d %.3fs, want rank 1 phase 3 6s", rank, phase, sec)
	}
}

func TestChromeTraceIsValidJSON(t *testing.T) {
	rec := build(t, [][]Event{
		{
			{Kind: KindPhase, Phase: 0, Start: 0},
			{Kind: KindCompute, Phase: 0, Start: 0, Dur: 1},
			{Kind: KindSend, Phase: 0, Start: 1, Dur: 0.1, Peer: 1, Flow: 3, Bytes: 64, Tag: 1},
			{Kind: KindSync, Phase: 0, Start: 1.1, Dur: 0.1},
		},
		{
			{Kind: KindWait, Phase: 0, Start: 0, Dur: 1.5, Peer: 0, Flow: 3, Tag: 1},
			{Kind: KindRecv, Phase: 0, Start: 1.5, Dur: 0, Peer: 0, Flow: 3, Bytes: 64, Tag: 1},
			{Kind: KindBarrier, Phase: 1, Start: 1.5, Dur: 0.5, Peer: 0},
			{Kind: KindGather, Phase: 1, Start: 2, Dur: 0.2, Bytes: 16},
		},
	}, []float64{1.2, 2.2})
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	cats := map[string]bool{}
	tids := map[float64]bool{}
	var flowS, flowF int
	for _, e := range doc.TraceEvents {
		if c, ok := e["cat"].(string); ok {
			cats[c] = true
		}
		if ph := e["ph"]; ph == "X" {
			tids[e["tid"].(float64)] = true
		} else if ph == "s" {
			flowS++
		} else if ph == "f" {
			flowF++
		}
		for _, req := range []string{"name", "ph", "pid", "tid"} {
			if _, ok := e[req]; !ok {
				t.Fatalf("event missing %q: %v", req, e)
			}
		}
	}
	if len(cats) < 4 {
		t.Errorf("only %d event categories %v, want >= 4", len(cats), cats)
	}
	if len(tids) != 2 {
		t.Errorf("%d rank tracks, want 2", len(tids))
	}
	if flowS != 1 || flowF != 1 {
		t.Errorf("flow events s=%d f=%d, want 1/1", flowS, flowF)
	}
}

func TestCriticalPathReportRenders(t *testing.T) {
	rec := build(t, [][]Event{
		{{Kind: KindCompute, Phase: 0, Start: 0, Dur: 2}},
	}, []float64{2})
	var sb strings.Builder
	rec.CriticalPath().Fprint(&sb, rec)
	out := sb.String()
	for _, want := range []string{"critical path", "dominant", "by phase"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestWindowDefaultsToMaxFinalClock(t *testing.T) {
	rec := build(t, [][]Event{{}, {}}, []float64{3, 5})
	if s, e := rec.Window(); s != 0 || e != 5 {
		t.Errorf("default window = [%v, %v], want [0, 5]", s, e)
	}
}
