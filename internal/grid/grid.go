// Package grid provides the structured curvilinear and Cartesian component
// grids of the Chimera overset scheme: index-space geometry, world-frame
// coordinates under rigid-body motion, iblank (hole/fringe) state, and the
// coarsen/refine operations used by the paper's scale-up study.
package grid

import (
	"fmt"

	"overd/internal/geom"
)

// BC identifies the physical boundary condition applied on a grid face.
type BC int

// Boundary condition kinds.
const (
	BCFarfield BC = iota // characteristic freestream
	BCWall               // solid surface (slip if inviscid, no-slip if viscous)
	BCSymmetry           // symmetry plane
	BCOverset            // fringe: values interpolated from overlapping grids
	BCPeriodic           // wrap-around (O-grid closure in i)
	BCExtrap             // zeroth-order extrapolation
)

// String implements fmt.Stringer.
func (b BC) String() string {
	switch b {
	case BCFarfield:
		return "farfield"
	case BCWall:
		return "wall"
	case BCSymmetry:
		return "symmetry"
	case BCOverset:
		return "overset"
	case BCPeriodic:
		return "periodic"
	case BCExtrap:
		return "extrapolate"
	}
	return fmt.Sprintf("bc(%d)", int(b))
}

// Face identifies one of the six logical faces of a structured grid.
type Face int

// Grid faces in index order.
const (
	IMin Face = iota
	IMax
	JMin
	JMax
	KMin
	KMax
)

// String implements fmt.Stringer.
func (f Face) String() string {
	return [...]string{"imin", "imax", "jmin", "jmax", "kmin", "kmax"}[f]
}

// IBlank states, following Chimera convention.
const (
	IBHole   int8 = 0 // blanked: inside a body or excess overlap; not computed
	IBField  int8 = 1 // normal field point, updated by the flow solver
	IBFringe int8 = 2 // intergrid boundary point: receives interpolated data
)

// Grid is one structured component grid of an overset system.
//
// Coordinates are stored twice: the body frame (X0,Y0,Z0), fixed at creation,
// and the world frame (X,Y,Z), updated by ApplyTransform as the component
// moves. Index (i,j,k) maps to slice offset i + NI*(j + NJ*k).
type Grid struct {
	// ID is the grid's index within its overset system.
	ID int
	// Name identifies the grid in reports ("airfoil", "background", ...).
	Name string
	// NI, NJ, NK are the point counts in each index direction. A 2-D grid
	// has NK == 1.
	NI, NJ, NK int

	// X0, Y0, Z0 are body-frame coordinates (immutable after generation).
	X0, Y0, Z0 []float64
	// X, Y, Z are world-frame coordinates.
	X, Y, Z []float64

	// IBlank is the hole/fringe state per point.
	IBlank []int8

	// BCs gives the physical boundary condition on each face.
	BCs [6]BC

	// Viscous enables viscous terms on this grid; Turbulent additionally
	// enables the Baldwin-Lomax model.
	Viscous   bool
	Turbulent bool
	// Cartesian marks uniformly spaced axis-aligned background grids
	// (which need only seven parameters to describe and admit search-free
	// connectivity; see §5 of the paper).
	Cartesian bool
	// Moving marks grids attached to a moving body.
	Moving bool

	// Xform is the current body-to-world placement.
	Xform geom.Transform
}

// New allocates an ni x nj x nk grid with identity placement, all points
// marked as field points, and farfield conditions on all faces.
func New(id int, name string, ni, nj, nk int) *Grid {
	if ni < 1 || nj < 1 || nk < 1 {
		panic(fmt.Sprintf("grid: invalid dims %dx%dx%d", ni, nj, nk))
	}
	n := ni * nj * nk
	g := &Grid{
		ID: id, Name: name, NI: ni, NJ: nj, NK: nk,
		X0: make([]float64, n), Y0: make([]float64, n), Z0: make([]float64, n),
		X: make([]float64, n), Y: make([]float64, n), Z: make([]float64, n),
		IBlank: make([]int8, n),
		Xform:  geom.IdentityTransform(),
	}
	for i := range g.IBlank {
		g.IBlank[i] = IBField
	}
	return g
}

// Idx returns the slice offset of point (i,j,k).
func (g *Grid) Idx(i, j, k int) int { return i + g.NI*(j+g.NJ*k) }

// NPoints returns the total number of points.
func (g *Grid) NPoints() int { return g.NI * g.NJ * g.NK }

// Is2D reports whether the grid is planar (NK == 1).
func (g *Grid) Is2D() bool { return g.NK == 1 }

// SetBody sets the body-frame coordinates of point (i,j,k) and initializes
// the world frame to the same position.
func (g *Grid) SetBody(i, j, k int, p geom.Vec3) {
	n := g.Idx(i, j, k)
	g.X0[n], g.Y0[n], g.Z0[n] = p.X, p.Y, p.Z
	g.X[n], g.Y[n], g.Z[n] = p.X, p.Y, p.Z
}

// At returns the world-frame position of point (i,j,k).
func (g *Grid) At(i, j, k int) geom.Vec3 {
	n := g.Idx(i, j, k)
	return geom.Vec3{X: g.X[n], Y: g.Y[n], Z: g.Z[n]}
}

// AtBody returns the body-frame position of point (i,j,k).
func (g *Grid) AtBody(i, j, k int) geom.Vec3 {
	n := g.Idx(i, j, k)
	return geom.Vec3{X: g.X0[n], Y: g.Y0[n], Z: g.Z0[n]}
}

// ApplyTransform places the grid in the world frame: world = t(body).
// Non-moving grids keep their identity placement throughout a run.
func (g *Grid) ApplyTransform(t geom.Transform) {
	g.Xform = t
	for n := range g.X0 {
		p := t.Apply(geom.Vec3{X: g.X0[n], Y: g.Y0[n], Z: g.Z0[n]})
		g.X[n], g.Y[n], g.Z[n] = p.X, p.Y, p.Z
	}
}

// Bounds returns the world-frame bounding box of all points.
func (g *Grid) Bounds() geom.Box {
	b := geom.EmptyBox()
	for n := range g.X {
		b = b.Extend(geom.Vec3{X: g.X[n], Y: g.Y[n], Z: g.Z[n]})
	}
	return b
}

// BoundsOf returns the world-frame bounding box of the points in index box ib.
func (g *Grid) BoundsOf(ib IBox) geom.Box {
	b := geom.EmptyBox()
	for k := ib.KLo; k <= ib.KHi; k++ {
		for j := ib.JLo; j <= ib.JHi; j++ {
			for i := ib.ILo; i <= ib.IHi; i++ {
				b = b.Extend(g.At(i, j, k))
			}
		}
	}
	return b
}

// Full returns the index box covering the whole grid.
func (g *Grid) Full() IBox { return FullBox(g.NI, g.NJ, g.NK) }

// PeriodicI reports whether the i direction wraps (O-grid closure).
func (g *Grid) PeriodicI() bool { return g.BCs[IMin] == BCPeriodic && g.BCs[IMax] == BCPeriodic }

// Coarsen returns a new grid with every other point removed in each
// direction (the paper's scale-up study reduces gridpoints "by a factor of
// four" in 2-D this way). Endpoint parity: the first point of each pair is
// kept, and the last point is always retained so boundaries survive.
func (g *Grid) Coarsen() *Grid {
	ci := coarseIndices(g.NI)
	cj := coarseIndices(g.NJ)
	ck := coarseIndices(g.NK)
	ng := New(g.ID, g.Name+"-coarse", len(ci), len(cj), len(ck))
	ng.BCs = g.BCs
	ng.Viscous, ng.Turbulent, ng.Cartesian, ng.Moving = g.Viscous, g.Turbulent, g.Cartesian, g.Moving
	for k, sk := range ck {
		for j, sj := range cj {
			for i, si := range ci {
				ng.SetBody(i, j, k, g.AtBody(si, sj, sk))
			}
		}
	}
	return ng
}

func coarseIndices(n int) []int {
	if n == 1 {
		return []int{0}
	}
	var out []int
	for i := 0; i < n; i += 2 {
		out = append(out, i)
	}
	if out[len(out)-1] != n-1 {
		out = append(out, n-1)
	}
	return out
}

// Refine returns a new grid with a midpoint inserted between each pair of
// adjacent points in every direction ("adding a gridpoint between the
// others"), quadrupling the 2-D point count as in the paper's refined case.
func (g *Grid) Refine() *Grid {
	rni := refinedCount(g.NI)
	rnj := refinedCount(g.NJ)
	rnk := refinedCount(g.NK)
	ng := New(g.ID, g.Name+"-fine", rni, rnj, rnk)
	ng.BCs = g.BCs
	ng.Viscous, ng.Turbulent, ng.Cartesian, ng.Moving = g.Viscous, g.Turbulent, g.Cartesian, g.Moving
	for k := 0; k < rnk; k++ {
		for j := 0; j < rnj; j++ {
			for i := 0; i < rni; i++ {
				ng.SetBody(i, j, k, g.interpBody(i, j, k))
			}
		}
	}
	return ng
}

func refinedCount(n int) int {
	if n == 1 {
		return 1
	}
	return 2*n - 1
}

// interpBody evaluates the body-frame position at refined index (i,j,k) by
// multilinear interpolation of the parent grid.
func (g *Grid) interpBody(i, j, k int) geom.Vec3 {
	i0, fi := i/2, float64(i%2)*0.5
	j0, fj := j/2, float64(j%2)*0.5
	k0, fk := k/2, float64(k%2)*0.5
	i1, j1, k1 := min(i0+1, g.NI-1), min(j0+1, g.NJ-1), min(k0+1, g.NK-1)
	var p geom.Vec3
	for dk := 0; dk <= 1; dk++ {
		wk := fk
		kk := k1
		if dk == 0 {
			wk = 1 - fk
			kk = k0
		}
		if g.NK == 1 {
			if dk == 1 {
				continue
			}
			wk = 1
		}
		for dj := 0; dj <= 1; dj++ {
			wj := fj
			jj := j1
			if dj == 0 {
				wj = 1 - fj
				jj = j0
			}
			for di := 0; di <= 1; di++ {
				wi := fi
				ii := i1
				if di == 0 {
					wi = 1 - fi
					ii = i0
				}
				w := wi * wj * wk
				if w == 0 {
					continue
				}
				p = p.Add(g.AtBody(ii, jj, kk).Scale(w))
			}
		}
	}
	return p
}

// CountIBlank returns how many points currently hold the given iblank state.
func (g *Grid) CountIBlank(state int8) int {
	c := 0
	for _, v := range g.IBlank {
		if v == state {
			c++
		}
	}
	return c
}

// ResetIBlank marks every point as a field point.
func (g *Grid) ResetIBlank() {
	for i := range g.IBlank {
		g.IBlank[i] = IBField
	}
}

// System is an ordered collection of component grids forming one overset
// ("Chimera") decomposition of the flow domain.
type System struct {
	Grids []*Grid
}

// NPoints returns the composite gridpoint total over all components.
func (s *System) NPoints() int {
	n := 0
	for _, g := range s.Grids {
		n += g.NPoints()
	}
	return n
}

// NFringe returns the composite count of fringe (intergrid boundary) points.
func (s *System) NFringe() int {
	n := 0
	for _, g := range s.Grids {
		n += g.CountIBlank(IBFringe)
	}
	return n
}

// IGBPRatio returns the intergrid-boundary-point to gridpoint ratio that the
// paper reports per case (44e-3, 33e-3, 66e-3 for its three problems).
func (s *System) IGBPRatio() float64 {
	np := s.NPoints()
	if np == 0 {
		return 0
	}
	return float64(s.NFringe()) / float64(np)
}
