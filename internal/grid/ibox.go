package grid

import "fmt"

// IBox is an inclusive range of structured-grid point indices
// [ILo..IHi] x [JLo..JHi] x [KLo..KHi]. It describes a subdomain of a
// component grid in that grid's own index space.
type IBox struct {
	ILo, IHi, JLo, JHi, KLo, KHi int
}

// FullBox returns the index box covering an ni x nj x nk point grid.
func FullBox(ni, nj, nk int) IBox {
	return IBox{0, ni - 1, 0, nj - 1, 0, nk - 1}
}

// NI returns the number of points in the i direction.
func (b IBox) NI() int { return b.IHi - b.ILo + 1 }

// NJ returns the number of points in the j direction.
func (b IBox) NJ() int { return b.JHi - b.JLo + 1 }

// NK returns the number of points in the k direction.
func (b IBox) NK() int { return b.KHi - b.KLo + 1 }

// Count returns the number of points in the box.
func (b IBox) Count() int {
	if !b.Valid() {
		return 0
	}
	return b.NI() * b.NJ() * b.NK()
}

// Valid reports whether the box is non-empty.
func (b IBox) Valid() bool {
	return b.IHi >= b.ILo && b.JHi >= b.JLo && b.KHi >= b.KLo
}

// Contains reports whether point (i,j,k) lies in the box.
func (b IBox) Contains(i, j, k int) bool {
	return i >= b.ILo && i <= b.IHi && j >= b.JLo && j <= b.JHi && k >= b.KLo && k <= b.KHi
}

// Intersect returns the overlap of b and c (possibly invalid if disjoint).
func (b IBox) Intersect(c IBox) IBox {
	return IBox{
		max(b.ILo, c.ILo), min(b.IHi, c.IHi),
		max(b.JLo, c.JLo), min(b.JHi, c.JHi),
		max(b.KLo, c.KLo), min(b.KHi, c.KHi),
	}
}

// LargestDim returns the axis (0=i, 1=j, 2=k) with the most points.
func (b IBox) LargestDim() int {
	d, n := 0, b.NI()
	if b.NJ() > n {
		d, n = 1, b.NJ()
	}
	if b.NK() > n {
		d = 2
	}
	return d
}

// SplitDim cuts the box into parts nearly equal pieces along axis dim,
// splitting at point boundaries (each point belongs to exactly one piece).
// Pieces are returned low-to-high. If the axis has fewer points than parts,
// fewer boxes are returned (each at least one point wide).
func (b IBox) SplitDim(dim, parts int) []IBox {
	lo, hi := b.ILo, b.IHi
	switch dim {
	case 1:
		lo, hi = b.JLo, b.JHi
	case 2:
		lo, hi = b.KLo, b.KHi
	}
	n := hi - lo + 1
	if parts > n {
		parts = n
	}
	if parts < 1 {
		parts = 1
	}
	out := make([]IBox, 0, parts)
	start := lo
	for p := 0; p < parts; p++ {
		// Distribute remainder one point at a time.
		size := n / parts
		if p < n%parts {
			size++
		}
		piece := b
		switch dim {
		case 0:
			piece.ILo, piece.IHi = start, start+size-1
		case 1:
			piece.JLo, piece.JHi = start, start+size-1
		case 2:
			piece.KLo, piece.KHi = start, start+size-1
		}
		out = append(out, piece)
		start += size
	}
	return out
}

// SurfacePoints returns the number of boundary points of the box, a proxy
// for the communication surface of a subdomain.
func (b IBox) SurfacePoints() int {
	ni, nj, nk := b.NI(), b.NJ(), b.NK()
	total := b.Count()
	inner := max(ni-2, 0) * max(nj-2, 0) * max(nk-2, 0)
	return total - inner
}

// String implements fmt.Stringer.
func (b IBox) String() string {
	return fmt.Sprintf("[%d..%d, %d..%d, %d..%d]", b.ILo, b.IHi, b.JLo, b.JHi, b.KLo, b.KHi)
}
