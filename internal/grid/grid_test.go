package grid

import (
	"math"
	"testing"
	"testing/quick"

	"overd/internal/geom"
)

func TestIdxRoundTrip(t *testing.T) {
	g := New(0, "t", 4, 5, 6)
	seen := make(map[int]bool)
	for k := 0; k < 6; k++ {
		for j := 0; j < 5; j++ {
			for i := 0; i < 4; i++ {
				n := g.Idx(i, j, k)
				if n < 0 || n >= g.NPoints() {
					t.Fatalf("Idx(%d,%d,%d) = %d out of range", i, j, k, n)
				}
				if seen[n] {
					t.Fatalf("Idx collision at (%d,%d,%d)", i, j, k)
				}
				seen[n] = true
			}
		}
	}
	if len(seen) != 120 {
		t.Errorf("covered %d offsets, want 120", len(seen))
	}
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with zero dim should panic")
		}
	}()
	New(0, "bad", 0, 3, 3)
}

func TestSetBodyAndTransform(t *testing.T) {
	g := New(0, "t", 3, 3, 1)
	for j := 0; j < 3; j++ {
		for i := 0; i < 3; i++ {
			g.SetBody(i, j, 0, geom.Vec3{X: float64(i), Y: float64(j)})
		}
	}
	tr := geom.Transform{R: geom.RotZ(math.Pi / 2), T: geom.Vec3{X: 10}}
	g.ApplyTransform(tr)
	got := g.At(1, 0, 0)
	want := geom.Vec3{X: 10, Y: 1}
	if got.Dist(want) > 1e-12 {
		t.Errorf("transformed point = %v, want %v", got, want)
	}
	// Body frame untouched.
	if g.AtBody(1, 0, 0) != (geom.Vec3{X: 1}) {
		t.Error("body frame mutated by transform")
	}
	// Identity restores.
	g.ApplyTransform(geom.IdentityTransform())
	if g.At(1, 0, 0).Dist(geom.Vec3{X: 1}) > 1e-12 {
		t.Error("identity transform should restore body positions")
	}
}

func TestBounds(t *testing.T) {
	g := New(0, "t", 2, 2, 2)
	g.SetBody(0, 0, 0, geom.Vec3{X: -1, Y: -2, Z: -3})
	g.SetBody(1, 1, 1, geom.Vec3{X: 4, Y: 5, Z: 6})
	b := g.Bounds()
	if !b.Contains(geom.Vec3{X: -1, Y: -2, Z: -3}) || !b.Contains(geom.Vec3{X: 4, Y: 5, Z: 6}) {
		t.Errorf("bounds %v misses corners", b)
	}
}

func TestCoarsenRefineCounts(t *testing.T) {
	g := New(0, "t", 9, 5, 1)
	for j := 0; j < 5; j++ {
		for i := 0; i < 9; i++ {
			g.SetBody(i, j, 0, geom.Vec3{X: float64(i), Y: float64(j)})
		}
	}
	c := g.Coarsen()
	if c.NI != 5 || c.NJ != 3 || c.NK != 1 {
		t.Errorf("coarsened dims %dx%dx%d, want 5x3x1", c.NI, c.NJ, c.NK)
	}
	r := g.Refine()
	if r.NI != 17 || r.NJ != 9 || r.NK != 1 {
		t.Errorf("refined dims %dx%dx%d, want 17x9x1", r.NI, r.NJ, r.NK)
	}
	// Refined midpoints interpolate.
	mid := r.AtBody(1, 0, 0)
	if mid.Dist(geom.Vec3{X: 0.5}) > 1e-12 {
		t.Errorf("refined midpoint = %v, want (0.5,0,0)", mid)
	}
	// Corners preserved by both.
	if c.AtBody(4, 2, 0) != (geom.Vec3{X: 8, Y: 4}) {
		t.Errorf("coarse corner = %v", c.AtBody(4, 2, 0))
	}
	if r.AtBody(16, 8, 0) != (geom.Vec3{X: 8, Y: 4}) {
		t.Errorf("refined corner = %v", r.AtBody(16, 8, 0))
	}
}

func TestCoarsenQuartersPointCount2D(t *testing.T) {
	// The paper's scale-up study changes point counts by ~4x in 2-D.
	g := New(0, "t", 101, 81, 1)
	c := g.Coarsen()
	ratio := float64(g.NPoints()) / float64(c.NPoints())
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("coarsen ratio = %v, want ~4", ratio)
	}
	r := g.Refine()
	ratio = float64(r.NPoints()) / float64(g.NPoints())
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("refine ratio = %v, want ~4", ratio)
	}
}

func TestIBlankCountsAndSystem(t *testing.T) {
	g1 := New(0, "a", 4, 4, 1)
	g2 := New(1, "b", 3, 3, 1)
	g1.IBlank[0] = IBHole
	g1.IBlank[1] = IBFringe
	g1.IBlank[2] = IBFringe
	s := &System{Grids: []*Grid{g1, g2}}
	if s.NPoints() != 25 {
		t.Errorf("NPoints = %d", s.NPoints())
	}
	if s.NFringe() != 2 {
		t.Errorf("NFringe = %d", s.NFringe())
	}
	if got := s.IGBPRatio(); math.Abs(got-2.0/25) > 1e-15 {
		t.Errorf("IGBPRatio = %v", got)
	}
	g1.ResetIBlank()
	if g1.CountIBlank(IBField) != 16 {
		t.Error("ResetIBlank failed")
	}
}

func TestIBoxSplitDimCoversExactly(t *testing.T) {
	b := FullBox(17, 9, 5)
	for dim := 0; dim < 3; dim++ {
		for parts := 1; parts <= 6; parts++ {
			pieces := b.SplitDim(dim, parts)
			total := 0
			for _, p := range pieces {
				if !p.Valid() {
					t.Fatalf("invalid piece %v", p)
				}
				total += p.Count()
			}
			if total != b.Count() {
				t.Errorf("dim %d parts %d: pieces cover %d, want %d", dim, parts, total, b.Count())
			}
		}
	}
}

func TestIBoxSplitBalance_Property(t *testing.T) {
	f := func(n uint8, parts uint8) bool {
		ni := int(n%60) + 2
		p := int(parts%8) + 1
		pieces := FullBox(ni, 3, 3).SplitDim(0, p)
		lo, hi := 1<<30, 0
		for _, pc := range pieces {
			if pc.NI() < lo {
				lo = pc.NI()
			}
			if pc.NI() > hi {
				hi = pc.NI()
			}
		}
		return hi-lo <= 1 // pieces differ by at most one point
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIBoxBasics(t *testing.T) {
	b := IBox{2, 5, 1, 3, 0, 0}
	if b.Count() != 4*3*1 {
		t.Errorf("Count = %d", b.Count())
	}
	if !b.Contains(2, 1, 0) || !b.Contains(5, 3, 0) || b.Contains(6, 1, 0) {
		t.Error("Contains wrong")
	}
	iv := b.Intersect(IBox{4, 9, 2, 9, 0, 5})
	if iv != (IBox{4, 5, 2, 3, 0, 0}) {
		t.Errorf("Intersect = %v", iv)
	}
	empty := b.Intersect(IBox{9, 12, 0, 0, 0, 0})
	if empty.Valid() || empty.Count() != 0 {
		t.Error("disjoint intersect should be invalid with zero count")
	}
	if b.LargestDim() != 0 {
		t.Errorf("LargestDim = %d", b.LargestDim())
	}
	if (IBox{0, 1, 0, 8, 0, 2}).LargestDim() != 1 {
		t.Error("LargestDim should be j")
	}
}

func TestSurfacePoints(t *testing.T) {
	b := FullBox(4, 4, 4)
	// 64 total, 8 interior.
	if got := b.SurfacePoints(); got != 56 {
		t.Errorf("SurfacePoints = %d, want 56", got)
	}
	flat := FullBox(5, 5, 1)
	if got := flat.SurfacePoints(); got != 25 {
		t.Errorf("2-D slab surface = %d, want all 25", got)
	}
}

func TestBoundsOfSubbox(t *testing.T) {
	g := New(0, "t", 4, 4, 1)
	for j := 0; j < 4; j++ {
		for i := 0; i < 4; i++ {
			g.SetBody(i, j, 0, geom.Vec3{X: float64(i), Y: float64(j)})
		}
	}
	b := g.BoundsOf(IBox{1, 2, 1, 2, 0, 0})
	if b.Min != (geom.Vec3{X: 1, Y: 1}) || b.Max != (geom.Vec3{X: 2, Y: 2}) {
		t.Errorf("BoundsOf = %+v", b)
	}
}

func TestFaceAndBCStrings(t *testing.T) {
	if IMin.String() != "imin" || KMax.String() != "kmax" {
		t.Error("Face strings wrong")
	}
	if BCWall.String() != "wall" || BCOverset.String() != "overset" {
		t.Error("BC strings wrong")
	}
}

func TestPeriodicI(t *testing.T) {
	g := New(0, "t", 4, 4, 1)
	if g.PeriodicI() {
		t.Error("default grid should not be periodic")
	}
	g.BCs[IMin] = BCPeriodic
	g.BCs[IMax] = BCPeriodic
	if !g.PeriodicI() {
		t.Error("PeriodicI should be true")
	}
}
