// Package machine provides calibrated performance models of the computers
// used in the paper's evaluation: the IBM SP2 (POWER2, 66.7 MHz, 40 MB/s
// switch), the IBM SP (P2SC, 135 MHz, 110 MB/s switch), and the single
// processor Cray YMP/864 used as the serial reference in Table 6.
//
// A model converts work done by the reproduction's real algorithms — floating
// point operations and message bytes — into virtual seconds. Per-node compute
// rate depends mildly on the working-set size to capture the cache effects the
// paper observes ("super scalar speedups ... caused by an improvement in the
// cache performance as a result of the shorter loop lengths").
package machine

import "fmt"

// Model describes one machine: per-node sustained floating-point rate with a
// cache model, plus the interconnect's point-to-point latency and bandwidth.
type Model struct {
	// Name identifies the machine in reports ("SP2", "SP", "YMP").
	Name string
	// BaseMflops is the sustained per-node rate (Mflop/s) for working sets
	// much larger than the cache.
	BaseMflops float64
	// CacheBoost is the fractional rate gain when the working set fits in
	// cache (rate approaches BaseMflops*(1+CacheBoost) as the set shrinks).
	CacheBoost float64
	// CacheBytes is the effective cache capacity used by the boost model.
	CacheBytes float64
	// LatencySec is the point-to-point message startup cost in seconds.
	LatencySec float64
	// BandwidthBps is the point-to-point link bandwidth in bytes/second.
	BandwidthBps float64
	// ShortLoopBytes is the working-set size at which the per-node rate
	// has fallen to half of its large-set value, modeling the short-loop
	// pipeline-startup penalty of RISC nodes on small subdomains (the
	// paper's Mflop rate "drops off significantly ... a consequence of the
	// low number of gridpoints ... on large numbers of processors").
	ShortLoopBytes float64
	// PeakMflops is the advertised peak rate, reported for context only.
	PeakMflops float64

	// RateHook, when non-nil, scales the per-node compute rate for a given
	// rank at a given virtual time (fault injection: stragglers). It returns
	// a factor in (0, 1]; 1 means nominal speed. A nil hook is bit-identical
	// to the unhooked model.
	RateHook func(rank int, t float64) float64
	// LinkHook, when non-nil, degrades the point-to-point link from one
	// rank to another at a given virtual time (fault injection: slow
	// links). It returns a latency multiplier (>= 1) and a bandwidth
	// multiplier (<= 1). A nil hook is bit-identical to the unhooked model.
	// Collectives (barriers, gathers) use the nominal interconnect.
	LinkHook func(from, to int, t float64) (latScale, bwScale float64)
}

// SP2 returns a model of the NASA Ames IBM SP2 (RS/6000 POWER2 nodes at
// 66.7 MHz, peak interconnect 40 MB/s).
func SP2() Model {
	return Model{
		Name:           "SP2",
		BaseMflops:     29,
		CacheBoost:     0.30,
		CacheBytes:     2 << 20,
		LatencySec:     70e-6,
		BandwidthBps:   40e6,
		ShortLoopBytes: 220 << 10,
		PeakMflops:     266,
	}
}

// SP returns a model of the CEWES IBM SP (P2SC nodes at 135 MHz, maximum
// interconnect 110 MB/s).
func SP() Model {
	return Model{
		Name:           "SP",
		BaseMflops:     43,
		CacheBoost:     0.38,
		CacheBytes:     1 << 20,
		LatencySec:     45e-6,
		BandwidthBps:   110e6,
		ShortLoopBytes: 160 << 10,
		PeakMflops:     540,
	}
}

// YMP864 returns a model of a single Cray YMP/864 processor (4.2 ns clock,
// 333 Mflops peak), the serial baseline of Table 6. The sustained rate is
// calibrated to the baseline the paper actually compared against: the 1992
// vectorized moving-body code of [Meakin, AIAA-92-4568], whose effective
// rate on this scalar-heavy overset workload — implied jointly by the
// paper's Tables 4 and 6 (e.g. 15.0 Mflops/node x 18 nodes at a 9.4x YMP
// speedup) — was about 29 Mflops, roughly 10%% of peak. Vector machines
// have no cache cliff, so the boost and short-loop terms are zero and the
// interconnect fields are unused.
func YMP864() Model {
	return Model{
		Name:         "YMP",
		BaseMflops:   29,
		CacheBoost:   0,
		CacheBytes:   1,
		LatencySec:   0,
		BandwidthBps: 1e12,
		PeakMflops:   333,
	}
}

// C90 returns a model of one Cray C90 head (6.0 ns clock, 1 Gflop peak),
// "two to three times" faster than the YMP on this workload per the paper.
func C90() Model {
	return Model{
		Name:         "C90",
		BaseMflops:   72,
		CacheBoost:   0,
		CacheBytes:   1,
		LatencySec:   0,
		BandwidthBps: 1e12,
		PeakMflops:   1000,
	}
}

// ByName returns the model with the given name (case-sensitive: "SP2", "SP",
// "YMP", "C90").
func ByName(name string) (Model, error) {
	switch name {
	case "SP2":
		return SP2(), nil
	case "SP":
		return SP(), nil
	case "YMP":
		return YMP864(), nil
	case "C90":
		return C90(), nil
	}
	return Model{}, fmt.Errorf("machine: unknown model %q", name)
}

// Rate returns the effective per-node rate in flop/s for a working set of
// the given size in bytes. Two competing effects shape it: the rate rises
// toward BaseMflops*(1+CacheBoost) as the working set shrinks below
// CacheBytes (the paper's "super scalar speedups ... caused by an
// improvement in the cache performance" — CacheBytes is an effective
// reuse-window size, larger than the physical cache, since blocked sweeps
// keep only a few planes resident), and falls once the set gets so small
// that loop lengths no longer amortize pipeline startup (the Mflop
// drop-off at large processor counts).
func (m Model) Rate(workingSetBytes float64) float64 {
	if workingSetBytes < 0 {
		workingSetBytes = 0
	}
	frac := m.CacheBytes / (m.CacheBytes + workingSetBytes)
	rate := m.BaseMflops * 1e6 * (1 + m.CacheBoost*frac)
	if m.ShortLoopBytes > 0 {
		// Even a nominal zero working set touches some state; floor the
		// penalty term so the rate never reaches zero.
		ws := workingSetBytes
		if ws < 32<<10 {
			ws = 32 << 10
		}
		rate *= ws / (ws + m.ShortLoopBytes)
	}
	return rate
}

// ComputeTime returns the virtual seconds to execute the given number of
// floating-point operations with the given working-set size.
func (m Model) ComputeTime(flops, workingSetBytes float64) float64 {
	if flops <= 0 {
		return 0
	}
	return flops / m.Rate(workingSetBytes)
}

// CommTime returns the virtual seconds for a point-to-point message of the
// given size: latency plus bytes over bandwidth.
func (m Model) CommTime(bytes int) float64 {
	if bytes < 0 {
		bytes = 0
	}
	return m.LatencySec + float64(bytes)/m.BandwidthBps
}

// ComputeTimeFor is ComputeTime for a specific rank at a specific virtual
// time, honoring RateHook. With a nil hook it is exactly ComputeTime.
func (m *Model) ComputeTimeFor(rank int, t, flops, workingSetBytes float64) float64 {
	if m.RateHook == nil {
		return m.ComputeTime(flops, workingSetBytes)
	}
	if flops <= 0 {
		return 0
	}
	scale := m.RateHook(rank, t)
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	return flops / (m.Rate(workingSetBytes) * scale)
}

// CommTimeFor is CommTime for a specific directed link at a specific
// virtual time, honoring LinkHook. With a nil hook it is exactly CommTime.
func (m *Model) CommTimeFor(from, to int, t float64, bytes int) float64 {
	if m.LinkHook == nil {
		return m.CommTime(bytes)
	}
	if bytes < 0 {
		bytes = 0
	}
	lat, bw := m.LinkHook(from, to, t)
	if lat < 1 {
		lat = 1
	}
	if bw <= 0 || bw > 1 {
		bw = 1
	}
	return lat*m.LatencySec + float64(bytes)/(bw*m.BandwidthBps)
}
