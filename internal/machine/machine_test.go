package machine

import (
	"testing"
	"testing/quick"
)

func TestByName(t *testing.T) {
	for _, name := range []string{"SP2", "SP", "YMP", "C90"} {
		m, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if m.Name != name {
			t.Errorf("ByName(%q).Name = %q", name, m.Name)
		}
	}
	if _, err := ByName("T3E"); err == nil {
		t.Error("ByName(T3E) should fail")
	}
}

func TestYMPBaselineCalibration(t *testing.T) {
	// The paper's Tables 4 and 6 jointly imply the YMP baseline ran near
	// 29 Mflops effective (15.0 Mflops/node x 18 nodes / 9.4 YMP units),
	// and the C90 2-3x faster.
	y, c := YMP864(), C90()
	if y.BaseMflops < 25 || y.BaseMflops > 35 {
		t.Errorf("YMP sustained = %v, want ~29", y.BaseMflops)
	}
	ratio := c.BaseMflops / y.BaseMflops
	if ratio < 2 || ratio > 3 {
		t.Errorf("C90/YMP = %v, want 2-3 (paper §4.3)", ratio)
	}
}

func TestSPFasterThanSP2(t *testing.T) {
	sp2, sp := SP2(), SP()
	if sp.Rate(1e6) <= sp2.Rate(1e6) {
		t.Error("SP per-node rate should exceed SP2")
	}
	if sp.CommTime(1<<20) >= sp2.CommTime(1<<20) {
		t.Error("SP comm should be faster than SP2")
	}
	// The paper's observed per-node ratio is roughly 1.3-1.7x.
	ratio := sp.Rate(4e6) / sp2.Rate(4e6)
	if ratio < 1.2 || ratio > 2.0 {
		t.Errorf("SP/SP2 rate ratio = %v, want within [1.2, 2.0]", ratio)
	}
}

func TestRateShape(t *testing.T) {
	// The rate rises from tiny working sets (short-loop penalty), peaks,
	// then decays toward the base rate for huge sets (cache misses).
	m := SP2()
	tiny := m.Rate(4 << 10)
	peak := 0.0
	var peakWS float64
	for ws := 8.0 * 1024; ws < 1e9; ws *= 1.3 {
		if r := m.Rate(ws); r > peak {
			peak, peakWS = r, ws
		}
	}
	huge := m.Rate(1 << 30)
	if tiny >= peak || huge >= peak {
		t.Errorf("rate should peak between extremes: tiny %v peak %v huge %v", tiny, peak, huge)
	}
	if peakWS < 64<<10 || peakWS > 16<<20 {
		t.Errorf("peak at ws=%v, want between 64KB and 16MB", peakWS)
	}
	// Huge working sets approach the base rate.
	if huge < m.BaseMflops*1e6*0.9 || huge > m.BaseMflops*1e6*1.1 {
		t.Errorf("asymptotic rate %v, want ~%v", huge, m.BaseMflops*1e6)
	}
}

func TestRateBounds_Property(t *testing.T) {
	m := SP()
	f := func(ws float64) bool {
		if ws < 0 {
			ws = -ws
		}
		if ws > 1e300 {
			return true
		}
		r := m.Rate(ws)
		return r >= 0 && r <= m.BaseMflops*1e6*(1+m.CacheBoost)*1.001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestComputeTime(t *testing.T) {
	m := YMP864()
	// One second of work at the calibrated sustained rate.
	got := m.ComputeTime(m.BaseMflops*1e6, 1e9)
	if got < 0.99 || got > 1.01 {
		t.Errorf("ComputeTime = %v, want ~1", got)
	}
	if m.ComputeTime(0, 0) != 0 {
		t.Error("zero flops should take zero time")
	}
	if m.ComputeTime(-5, 0) != 0 {
		t.Error("negative flops should take zero time")
	}
}

func TestCommTime(t *testing.T) {
	m := SP2()
	if got, want := m.CommTime(0), m.LatencySec; got != want {
		t.Errorf("CommTime(0) = %v, want latency %v", got, want)
	}
	// 40 MB at 40 MB/s ≈ 1 second plus latency.
	got := m.CommTime(40e6)
	if got < 1.0 || got > 1.01 {
		t.Errorf("CommTime(40MB) = %v, want ~1s", got)
	}
	if m.CommTime(-1) != m.LatencySec {
		t.Error("negative bytes should clamp to zero payload")
	}
}

func TestCacheBoostVisible(t *testing.T) {
	// A working set near the cache size outperforms a huge one.
	m := SP()
	mid := m.Rate(1 << 20)
	big := m.Rate(64 << 20)
	if mid <= big*1.02 {
		t.Errorf("cache boost too weak: mid=%v big=%v", mid, big)
	}
}
