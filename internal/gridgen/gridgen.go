// Package gridgen generates the structured component grids used by the
// reproduction's test cases. The paper's grid systems (NACA 0012 O-grids, a
// descending delta wing with pipe jet, and a wing/pylon/finned-store
// configuration) were proprietary PLOT3D files; these generators build
// programmatic analogs that match the published statistics — number of
// component grids, composite gridpoint totals, and intergrid-boundary-point
// densities — which are the quantities the measured parallel performance
// depends on.
package gridgen

import (
	"math"

	"overd/internal/geom"
	"overd/internal/grid"
)

// NACA0012Thickness returns the half-thickness of a NACA 0012 airfoil at
// chordwise station x in [0,1] (closed trailing edge variant).
func NACA0012Thickness(x float64) float64 {
	if x < 0 {
		x = 0
	}
	if x > 1 {
		x = 1
	}
	const t = 0.12
	return 5 * t * (0.2969*math.Sqrt(x) - 0.1260*x - 0.3516*x*x +
		0.2843*x*x*x - 0.1036*x*x*x*x)
}

// AirfoilSurface returns the NACA 0012 surface point at parameter
// s in [0,1): s=0 is the trailing edge, s grows over the upper surface to
// the leading edge at s=0.5, and returns along the lower surface.
func AirfoilSurface(s float64) geom.Vec3 {
	s = s - math.Floor(s)
	// Cosine clustering of chord stations toward both edges.
	var x, sign float64
	if s < 0.5 {
		u := s * 2 // 0 at TE, 1 at LE over upper surface
		x = 0.5 * (1 + math.Cos(math.Pi*u))
		sign = 1
	} else {
		u := (s - 0.5) * 2 // 0 at LE, 1 at TE over lower surface
		x = 0.5 * (1 - math.Cos(math.Pi*u))
		sign = -1
	}
	return geom.Vec3{X: x, Y: sign * NACA0012Thickness(x)}
}

// GeometricSpacing returns n fractions in [0,1] (first 0, last 1) whose
// successive gaps grow by the given ratio, clustering points toward 0 when
// ratio > 1. n must be at least 2.
func GeometricSpacing(n int, ratio float64) []float64 {
	if n < 2 {
		panic("gridgen: GeometricSpacing needs n >= 2")
	}
	out := make([]float64, n)
	gap := 1.0
	sum := 0.0
	gaps := make([]float64, n-1)
	for i := range gaps {
		gaps[i] = gap
		sum += gap
		gap *= ratio
	}
	acc := 0.0
	for i := 1; i < n; i++ {
		acc += gaps[i-1] / sum
		out[i] = acc
	}
	out[n-1] = 1
	return out
}

// AirfoilOGrid builds a 2-D O-grid (NK=1) around a NACA 0012 airfoil with
// ni points around the surface (periodic in i) and nj points from the wall
// (j=0) to a circular outer boundary of the given radius centered at
// mid-chord. Wall spacing clusters geometrically toward the surface.
func AirfoilOGrid(id int, name string, ni, nj int, radius float64) *grid.Grid {
	g := grid.New(id, name, ni, nj, 1)
	g.BCs[grid.IMin] = grid.BCPeriodic
	g.BCs[grid.IMax] = grid.BCPeriodic
	g.BCs[grid.JMin] = grid.BCWall
	g.BCs[grid.JMax] = grid.BCOverset
	g.Viscous = true
	center := geom.Vec3{X: 0.5}
	radial := GeometricSpacing(nj, 1.12)
	for i := 0; i < ni; i++ {
		s := float64(i) / float64(ni)
		surf := AirfoilSurface(-s) // negative: clockwise traversal keeps the O-grid right-handed
		// Outer point: angle from center through the surface point keeps
		// radial lines from crossing on this convex-ish shape.
		dir := surf.Sub(center)
		if dir.Norm() < 1e-9 {
			dir = geom.Vec3{X: 1}
		}
		ang := math.Atan2(dir.Y, dir.X)
		outer := center.Add(geom.Vec3{X: radius * math.Cos(ang), Y: radius * math.Sin(ang)})
		for j := 0; j < nj; j++ {
			f := radial[j]
			p := surf.Scale(1 - f).Add(outer.Scale(f))
			g.SetBody(i, j, 0, p)
		}
	}
	return g
}

// Annulus builds a 2-D ring grid between radii rIn and rOut centered at
// (cx, cy), periodic in i, with overset fringes on both radial boundaries.
func Annulus(id int, name string, ni, nj int, cx, cy, rIn, rOut float64) *grid.Grid {
	g := grid.New(id, name, ni, nj, 1)
	g.BCs[grid.IMin] = grid.BCPeriodic
	g.BCs[grid.IMax] = grid.BCPeriodic
	g.BCs[grid.JMin] = grid.BCOverset
	g.BCs[grid.JMax] = grid.BCOverset
	for i := 0; i < ni; i++ {
		ang := -2 * math.Pi * float64(i) / float64(ni) // clockwise: right-handed with j outward
		for j := 0; j < nj; j++ {
			r := rIn + (rOut-rIn)*float64(j)/float64(nj-1)
			g.SetBody(i, j, 0, geom.Vec3{X: cx + r*math.Cos(ang), Y: cy + r*math.Sin(ang)})
		}
	}
	return g
}

// CartesianBox builds a uniformly spaced Cartesian grid covering box with
// the given point counts (nz == 1 makes it 2-D). Faces default to farfield.
func CartesianBox(id int, name string, nx, ny, nz int, box geom.Box) *grid.Grid {
	g := grid.New(id, name, nx, ny, nz)
	g.Cartesian = true
	size := box.Size()
	for k := 0; k < nz; k++ {
		fz := 0.0
		if nz > 1 {
			fz = float64(k) / float64(nz-1)
		}
		for j := 0; j < ny; j++ {
			fy := 0.0
			if ny > 1 {
				fy = float64(j) / float64(ny-1)
			}
			for i := 0; i < nx; i++ {
				fx := 0.0
				if nx > 1 {
					fx = float64(i) / float64(nx-1)
				}
				g.SetBody(i, j, k, geom.Vec3{
					X: box.Min.X + fx*size.X,
					Y: box.Min.Y + fy*size.Y,
					Z: box.Min.Z + fz*size.Z,
				})
			}
		}
	}
	return g
}

// Profile describes an axisymmetric body: Radius(t) is the body radius at
// axial fraction t in [0,1]; X(t) is the axial station. Radius must vanish
// or stay positive at the ends (a blunt end keeps a small positive radius).
type Profile struct {
	Length float64
	Radius func(t float64) float64
}

// OgiveProfile returns a store-like body of revolution: an ogive nose,
// cylindrical midbody, and tapered tail, with the given length and radius.
func OgiveProfile(length, radius float64) Profile {
	return Profile{
		Length: length,
		Radius: func(t float64) float64 {
			const eps = 0.04 // blunt caps avoid degenerate cells on the axis
			switch {
			case t < 0.25: // nose
				u := t / 0.25
				return radius * (eps + (1-eps)*math.Sin(u*math.Pi/2))
			case t > 0.8: // tail taper
				u := (1 - t) / 0.2
				return radius * (eps + (1-eps)*u)
			default:
				return radius
			}
		},
	}
}

// BodyOfRevolutionGrid builds a 3-D O-grid around an axisymmetric body:
// k runs along the axis (x direction, from x0), i is azimuthal (periodic),
// and j is radial from the wall to the given outer radius.
func BodyOfRevolutionGrid(id int, name string, ni, nj, nk int, p Profile, outer float64) *grid.Grid {
	g := grid.New(id, name, ni, nj, nk)
	g.BCs[grid.IMin] = grid.BCPeriodic
	g.BCs[grid.IMax] = grid.BCPeriodic
	g.BCs[grid.JMin] = grid.BCWall
	g.BCs[grid.JMax] = grid.BCOverset
	// Axial end faces extrapolate: treating the thin end rings as overset
	// fringes would demand donors right at the body caps, where overlap
	// cannot be guaranteed; first-order extrapolation is the standard cap
	// closure for component O-grids.
	g.BCs[grid.KMin] = grid.BCExtrap
	g.BCs[grid.KMax] = grid.BCExtrap
	g.Viscous = true
	radial := GeometricSpacing(nj, 1.18)
	for k := 0; k < nk; k++ {
		t := float64(k) / float64(nk-1)
		x := t * p.Length
		rw := p.Radius(t)
		for i := 0; i < ni; i++ {
			ang := -2 * math.Pi * float64(i) / float64(ni) // clockwise: right-handed
			cy, cz := math.Cos(ang), math.Sin(ang)
			for j := 0; j < nj; j++ {
				r := rw + (outer-rw)*radial[j]
				g.SetBody(i, j, k, geom.Vec3{X: x, Y: r * cy, Z: r * cz})
			}
		}
	}
	return g
}

// EllipsoidGrid builds a 3-D O-grid around an ellipsoid with semi-axes
// (a, b, c) — a flattened ellipsoid stands in for wing-like components.
// i is azimuthal around the y axis cross-section (periodic), k runs along
// the polar angle of the x axis, j is radial to `outer` times the local
// surface radius.
func EllipsoidGrid(id int, name string, ni, nj, nk int, a, b, c, outer float64) *grid.Grid {
	g := grid.New(id, name, ni, nj, nk)
	g.BCs[grid.IMin] = grid.BCPeriodic
	g.BCs[grid.IMax] = grid.BCPeriodic
	g.BCs[grid.JMin] = grid.BCWall
	g.BCs[grid.JMax] = grid.BCOverset
	// Polar end faces extrapolate (pole caps; see BodyOfRevolutionGrid).
	g.BCs[grid.KMin] = grid.BCExtrap
	g.BCs[grid.KMax] = grid.BCExtrap
	g.Viscous = true
	radial := GeometricSpacing(nj, 1.18)
	for k := 0; k < nk; k++ {
		// Polar angle avoiding the exact poles (degenerate cells).
		th := math.Pi * (0.08 + 0.84*float64(k)/float64(nk-1))
		for i := 0; i < ni; i++ {
			ph := -2 * math.Pi * float64(i) / float64(ni) // clockwise: right-handed
			// Unit-sphere direction scaled onto the ellipsoid.
			dir := geom.Vec3{
				X: math.Cos(th),
				Y: math.Sin(th) * math.Cos(ph),
				Z: math.Sin(th) * math.Sin(ph),
			}
			surf := geom.Vec3{X: a * dir.X, Y: b * dir.Y, Z: c * dir.Z}
			for j := 0; j < nj; j++ {
				f := radial[j]
				scale := 1 + (outer-1)*f
				g.SetBody(i, j, k, surf.Scale(scale))
			}
		}
	}
	return g
}

// FinGrid builds a small 3-D grid wrapped around a flat-plate fin: the fin
// lies in a plane, k runs spanwise, i wraps the section (periodic), j is
// normal distance. chord and span size the plate; thick is its thickness.
func FinGrid(id int, name string, ni, nj, nk int, chord, span, thick, outer float64) *grid.Grid {
	g := grid.New(id, name, ni, nj, nk)
	g.BCs[grid.IMin] = grid.BCPeriodic
	g.BCs[grid.IMax] = grid.BCPeriodic
	g.BCs[grid.JMin] = grid.BCWall
	g.BCs[grid.JMax] = grid.BCOverset
	// Spanwise end faces extrapolate (root/tip closure).
	g.BCs[grid.KMin] = grid.BCExtrap
	g.BCs[grid.KMax] = grid.BCExtrap
	g.Viscous = true
	radial := GeometricSpacing(nj, 1.2)
	for k := 0; k < nk; k++ {
		z := span * float64(k) / float64(nk-1)
		for i := 0; i < ni; i++ {
			s := float64(i) / float64(ni)
			// Elliptic cross-section of the plate (clockwise: right-handed).
			ang := -2 * math.Pi * s
			surf := geom.Vec3{
				X: chord / 2 * math.Cos(ang),
				Y: thick / 2 * math.Sin(ang),
				Z: z,
			}
			// Outer boundary: concentric ellipse grown by `outer`.
			out := geom.Vec3{
				X: outer * chord / 2 * math.Cos(ang),
				Y: outer * chord / 2 * math.Sin(ang),
				Z: z,
			}
			for j := 0; j < nj; j++ {
				f := radial[j]
				g.SetBody(i, j, k, surf.Scale(1-f).Add(out.Scale(f)))
			}
		}
	}
	return g
}
