package gridgen

import (
	"math"
	"testing"

	"overd/internal/geom"
	"overd/internal/grid"
)

func TestNACA0012Thickness(t *testing.T) {
	if got := NACA0012Thickness(0); got != 0 {
		t.Errorf("thickness at LE = %v", got)
	}
	// Max thickness ~6% half-thickness near x=0.3.
	peak := NACA0012Thickness(0.3)
	if peak < 0.055 || peak > 0.065 {
		t.Errorf("half-thickness at 0.3 = %v, want ~0.06", peak)
	}
	// Closed trailing edge.
	if te := NACA0012Thickness(1); math.Abs(te) > 1e-3 {
		t.Errorf("TE thickness = %v, want ~0", te)
	}
	// Clamping.
	if NACA0012Thickness(-1) != 0 {
		t.Error("negative x should clamp")
	}
}

func TestAirfoilSurfaceClosedLoop(t *testing.T) {
	// s and s+1 coincide (periodic parameterization).
	for _, s := range []float64{0, 0.2, 0.77} {
		a := AirfoilSurface(s)
		b := AirfoilSurface(s + 1)
		if a.Dist(b) > 1e-12 {
			t.Errorf("surface not periodic at s=%v", s)
		}
	}
	// Leading edge at s=0.5 is x=0.
	le := AirfoilSurface(0.5)
	if math.Abs(le.X) > 1e-9 {
		t.Errorf("LE at %v", le)
	}
	// Upper surface has y >= 0, lower y <= 0.
	if AirfoilSurface(0.25).Y <= 0 {
		t.Error("upper surface should have positive y")
	}
	if AirfoilSurface(0.75).Y >= 0 {
		t.Error("lower surface should have negative y")
	}
}

func TestGeometricSpacing(t *testing.T) {
	s := GeometricSpacing(5, 1.5)
	if s[0] != 0 || s[len(s)-1] != 1 {
		t.Errorf("endpoints = %v, %v", s[0], s[len(s)-1])
	}
	for i := 1; i < len(s); i++ {
		if s[i] <= s[i-1] {
			t.Fatalf("not monotone at %d: %v", i, s)
		}
	}
	// Growing gaps for ratio > 1.
	g1 := s[1] - s[0]
	g2 := s[4] - s[3]
	if g2 <= g1 {
		t.Errorf("gaps should grow: first %v last %v", g1, g2)
	}
	// Uniform for ratio 1.
	u := GeometricSpacing(5, 1)
	for i := range u {
		if math.Abs(u[i]-float64(i)/4) > 1e-12 {
			t.Errorf("uniform spacing wrong: %v", u)
		}
	}
}

func TestAirfoilOGridProperties(t *testing.T) {
	g := AirfoilOGrid(0, "airfoil", 64, 20, 8)
	if g.NI != 64 || g.NJ != 20 || g.NK != 1 {
		t.Fatalf("dims %dx%dx%d", g.NI, g.NJ, g.NK)
	}
	if !g.PeriodicI() {
		t.Error("O-grid should be periodic in i")
	}
	if g.BCs[grid.JMin] != grid.BCWall || g.BCs[grid.JMax] != grid.BCOverset {
		t.Error("O-grid BCs wrong")
	}
	// Wall points lie on the airfoil (|y| <= max thickness, 0<=x<=1).
	for i := 0; i < g.NI; i++ {
		p := g.At(i, 0, 0)
		if p.X < -1e-9 || p.X > 1+1e-9 || math.Abs(p.Y) > 0.07 {
			t.Fatalf("wall point %d = %v not on airfoil", i, p)
		}
	}
	// Outer points lie on the circle of radius 8 about (0.5, 0).
	for i := 0; i < g.NI; i++ {
		p := g.At(i, g.NJ-1, 0)
		r := p.Sub(geom.Vec3{X: 0.5}).Norm()
		if math.Abs(r-8) > 1e-9 {
			t.Fatalf("outer point radius %v, want 8", r)
		}
	}
	// Radial monotonicity: j increases away from the wall.
	for i := 0; i < g.NI; i += 7 {
		prev := -1.0
		for j := 0; j < g.NJ; j++ {
			r := g.At(i, j, 0).Sub(geom.Vec3{X: 0.5}).Norm()
			if r < prev-1e-12 {
				t.Fatalf("radial line %d not monotone at j=%d", i, j)
			}
			prev = r
		}
	}
}

func TestAnnulus(t *testing.T) {
	g := Annulus(1, "ring", 48, 10, 0.5, 0, 1.5, 3)
	for i := 0; i < g.NI; i++ {
		rin := g.At(i, 0, 0).Sub(geom.Vec3{X: 0.5}).Norm()
		rout := g.At(i, g.NJ-1, 0).Sub(geom.Vec3{X: 0.5}).Norm()
		if math.Abs(rin-1.5) > 1e-9 || math.Abs(rout-3) > 1e-9 {
			t.Fatalf("ring radii %v %v", rin, rout)
		}
	}
	if g.BCs[grid.JMin] != grid.BCOverset || g.BCs[grid.JMax] != grid.BCOverset {
		t.Error("ring should have overset BCs on both radial faces")
	}
}

func TestCartesianBox(t *testing.T) {
	box := geom.Box{Min: geom.Vec3{X: -1, Y: -2, Z: 0}, Max: geom.Vec3{X: 3, Y: 2, Z: 4}}
	g := CartesianBox(2, "bg", 5, 5, 5, box)
	if !g.Cartesian {
		t.Error("should be marked Cartesian")
	}
	if g.At(0, 0, 0) != box.Min || g.At(4, 4, 4) != box.Max {
		t.Error("corners wrong")
	}
	// Uniform spacing.
	dx := g.At(1, 0, 0).X - g.At(0, 0, 0).X
	if math.Abs(dx-1) > 1e-12 {
		t.Errorf("dx = %v, want 1", dx)
	}
	// 2-D variant.
	g2 := CartesianBox(3, "bg2", 4, 4, 1, box)
	if g2.NK != 1 || !g2.Is2D() {
		t.Error("nz=1 should be 2-D")
	}
}

func TestBodyOfRevolutionGrid(t *testing.T) {
	p := OgiveProfile(4, 0.4)
	g := BodyOfRevolutionGrid(0, "store", 24, 12, 20, p, 1.5)
	if g.NPoints() != 24*12*20 {
		t.Fatal("point count")
	}
	// Wall points have radius equal to the profile radius.
	for k := 0; k < g.NK; k += 5 {
		tfrac := float64(k) / float64(g.NK-1)
		want := p.Radius(tfrac)
		for i := 0; i < g.NI; i += 6 {
			pt := g.At(i, 0, k)
			r := math.Hypot(pt.Y, pt.Z)
			if math.Abs(r-want) > 1e-9 {
				t.Fatalf("wall radius at k=%d: %v want %v", k, r, want)
			}
		}
	}
	// Outer boundary at radius 1.5.
	pt := g.At(0, g.NJ-1, g.NK/2)
	if r := math.Hypot(pt.Y, pt.Z); math.Abs(r-1.5) > 1e-9 {
		t.Errorf("outer radius %v, want 1.5", r)
	}
	if !g.Viscous {
		t.Error("body grid should be viscous")
	}
}

func TestOgiveProfilePositive(t *testing.T) {
	p := OgiveProfile(4, 0.4)
	for i := 0; i <= 100; i++ {
		tf := float64(i) / 100
		if r := p.Radius(tf); r <= 0 || r > 0.41 {
			t.Fatalf("radius(%v) = %v out of range", tf, r)
		}
	}
}

func TestEllipsoidGrid(t *testing.T) {
	g := EllipsoidGrid(0, "wing", 32, 10, 16, 3, 0.3, 2, 4)
	// Wall points satisfy the ellipsoid equation.
	for k := 0; k < g.NK; k += 5 {
		for i := 0; i < g.NI; i += 8 {
			p := g.At(i, 0, k)
			v := p.X*p.X/9 + p.Y*p.Y/0.09 + p.Z*p.Z/4
			if math.Abs(v-1) > 1e-9 {
				t.Fatalf("wall point %v not on ellipsoid: %v", p, v)
			}
		}
	}
	// Outer surface is the ellipsoid scaled by 4.
	p := g.At(3, g.NJ-1, 3)
	v := p.X*p.X/9 + p.Y*p.Y/0.09 + p.Z*p.Z/4
	if math.Abs(v-16) > 1e-6 {
		t.Errorf("outer point scale: %v, want 16", v)
	}
}

func TestFinGrid(t *testing.T) {
	g := FinGrid(0, "fin", 16, 8, 6, 1, 0.8, 0.06, 3)
	if g.NPoints() != 16*8*6 {
		t.Fatal("point count")
	}
	// Spanwise extent covers [0, span].
	zmin, zmax := math.Inf(1), math.Inf(-1)
	for k := 0; k < g.NK; k++ {
		z := g.At(0, 0, k).Z
		zmin = math.Min(zmin, z)
		zmax = math.Max(zmax, z)
	}
	if math.Abs(zmin) > 1e-9 || math.Abs(zmax-0.8) > 1e-9 {
		t.Errorf("span [%v,%v], want [0,0.8]", zmin, zmax)
	}
}

func TestGeometricSpacingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("n=1 should panic")
		}
	}()
	GeometricSpacing(1, 1.1)
}
