package flow

import (
	"math"
	"testing"

	"overd/internal/balance"
	"overd/internal/geom"
	"overd/internal/grid"
	"overd/internal/gridgen"
	"overd/internal/machine"
	"overd/internal/par"
)

// runSerial executes fn on a single-rank world.
func runSerial(t *testing.T, fn func(r *par.Rank)) {
	t.Helper()
	par.NewWorld(1, machine.SP2()).Run(fn)
}

func TestFreestreamPreservationCartesian3D(t *testing.T) {
	g := gridgen.CartesianBox(0, "bg", 12, 10, 8,
		geom.Box{Min: geom.Vec3{X: -1, Y: -1, Z: -1}, Max: geom.Vec3{X: 1, Y: 1, Z: 1}})
	fs := Freestream{Mach: 0.8}
	qf := fs.Conserved()
	runSerial(t, func(r *par.Rank) {
		b := NewBlock(g, g.Full(), fs)
		for step := 0; step < 3; step++ {
			b.FlowStep(r, 0.01)
		}
		maxDiff := 0.0
		b.eachInterior(func(p int) {
			for c := 0; c < 5; c++ {
				d := math.Abs(b.Q[5*p+c] - qf[c])
				if d > maxDiff {
					maxDiff = d
				}
			}
		})
		if maxDiff > 1e-11 {
			t.Errorf("freestream drift %v on Cartesian grid", maxDiff)
		}
	})
}

func TestFreestreamPreservationCurvilinear(t *testing.T) {
	// A curved ring grid: metric errors exist, but freestream subtraction
	// must keep the uniform state exactly stationary.
	g := gridgen.Annulus(0, "ring", 40, 12, 0, 0, 1, 3)
	fs := Freestream{Mach: 0.8}
	qf := fs.Conserved()
	runSerial(t, func(r *par.Rank) {
		b := NewBlock(g, g.Full(), fs)
		// Wire periodic wrap to self.
		b.Nbr[0][0] = Neighbor{Rank: 0, Wrap: true}
		b.Nbr[0][1] = Neighbor{Rank: 0, Wrap: true}
		for step := 0; step < 3; step++ {
			b.FlowStep(r, 0.01)
		}
		maxDiff := 0.0
		b.eachInterior(func(p int) {
			for c := 0; c < 5; c++ {
				if d := math.Abs(b.Q[5*p+c] - qf[c]); d > maxDiff {
					maxDiff = d
				}
			}
		})
		if maxDiff > 1e-11 {
			t.Errorf("freestream drift %v on curvilinear ring", maxDiff)
		}
	})
}

func TestJacobianPositiveOnGeneratedGrids(t *testing.T) {
	grids := []*grid.Grid{
		gridgen.AirfoilOGrid(0, "airfoil", 64, 16, 6),
		gridgen.Annulus(1, "ring", 32, 8, 0.5, 0, 1.2, 3),
		gridgen.CartesianBox(2, "bg", 8, 8, 8, geom.Box{Min: geom.Vec3{X: -1, Y: -1, Z: -1}, Max: geom.Vec3{X: 1, Y: 1, Z: 1}}),
		gridgen.BodyOfRevolutionGrid(3, "store", 20, 10, 14, gridgen.OgiveProfile(4, 0.4), 1.5),
	}
	for _, g := range grids {
		b := NewBlock(g, g.Full(), Freestream{Mach: 0.5})
		bad := 0
		b.eachInterior(func(p int) {
			if b.Jac[p] <= 0 || b.Jac[p] > 1e11 {
				bad++
			}
		})
		if bad > 0 {
			t.Errorf("grid %q has %d degenerate-Jacobian points", g.Name, bad)
		}
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	// The pipelined implicit solves must reproduce the serial arithmetic
	// exactly; a decomposed run must match a single-block run to roundoff
	// (paper §2.1: "solution convergence characteristics remain unchanged
	// with different numbers of processors").
	mk := func() *grid.Grid { return gridgen.AirfoilOGrid(0, "airfoil", 48, 14, 5) }
	fs := Freestream{Mach: 0.5, Alpha: 0.05}
	const steps = 3
	const dt = 0.02

	// Serial run.
	gS := mk()
	var qSerial []float64
	runSerial(t, func(r *par.Rank) {
		bs := BuildBlocks(gS, []grid.IBox{gS.Full()}, []int{0}, fs)
		b := bs[0]
		for s := 0; s < steps; s++ {
			b.FlowStep(r, dt)
		}
		qSerial = make([]float64, len(b.Q))
		copy(qSerial, b.Q)
	})
	bS := NewBlock(gS, gS.Full(), fs)

	// Parallel run on 4 ranks (2x2 in i,j).
	gP := mk()
	boxes := balance.Subdivide(gP.Full(), 4)
	if len(boxes) != 4 {
		t.Fatalf("expected 4 boxes, got %d", len(boxes))
	}
	ranks := []int{0, 1, 2, 3}
	blocks := BuildBlocks(gP, boxes, ranks, fs)
	w := par.NewWorld(4, machine.SP2())
	w.Run(func(r *par.Rank) {
		b := blocks[r.ID]
		for s := 0; s < steps; s++ {
			b.FlowStep(r, dt)
			r.Barrier()
		}
	})

	// Compare owned points.
	maxDiff := 0.0
	for bi, box := range boxes {
		b := blocks[bi]
		for k := box.KLo; k <= box.KHi; k++ {
			for j := box.JLo; j <= box.JHi; j++ {
				for i := box.ILo; i <= box.IHi; i++ {
					li, lj, lk := b.Local(i, j, k)
					pPar := b.LIdx(li, lj, lk)
					ls, ms, ns := bS.Local(i, j, k)
					pSer := bS.LIdx(ls, ms, ns)
					for c := 0; c < 5; c++ {
						d := math.Abs(b.Q[5*pPar+c] - qSerial[5*pSer+c])
						if d > maxDiff {
							maxDiff = d
						}
					}
				}
			}
		}
	}
	if maxDiff > 1e-10 {
		t.Errorf("parallel/serial divergence %v", maxDiff)
	}
}

func TestWallSlipCondition(t *testing.T) {
	g := gridgen.AirfoilOGrid(0, "airfoil", 48, 14, 6)
	fs := Freestream{Mach: 0.5}
	runSerial(t, func(r *par.Rank) {
		b := NewBlock(g, g.Full(), fs)
		b.Nbr[0][0] = Neighbor{Rank: 0, Wrap: true}
		b.Nbr[0][1] = Neighbor{Rank: 0, Wrap: true}
		for s := 0; s < 10; s++ {
			b.FlowStep(r, 0.02)
		}
		// Check relative normal velocity at wall points.
		maxVn := 0.0
		b.eachFacePoint(grid.JMin, func(p, in int) {
			_, u, v, w, _ := Primitive(b.QAt(p))
			n := geom.Vec3{X: b.Met[9*p+3], Y: b.Met[9*p+4], Z: b.Met[9*p+5]}.Normalized()
			vn := math.Abs(n.X*u + n.Y*v + n.Z*w)
			if vn > maxVn {
				maxVn = vn
			}
		})
		if maxVn > 1e-10 {
			t.Errorf("wall normal velocity %v, want ~0", maxVn)
		}
	})
}

func TestSolveADIZeroRHSGivesZeroUpdate(t *testing.T) {
	g := gridgen.Annulus(0, "ring", 24, 8, 0, 0, 1, 2)
	fs := Freestream{Mach: 0.6}
	runSerial(t, func(r *par.Rank) {
		b := NewBlock(g, g.Full(), fs)
		b.ensureScratch()
		// Perturb the state so eigenvalues are nontrivial.
		b.eachInterior(func(p int) { b.Q[5*p] *= 1.1 })
		for i := range b.RHS {
			b.RHS[i] = 0
		}
		b.SolveADI(r, 0.05)
		for i, v := range b.DQ {
			if v != 0 {
				t.Fatalf("DQ[%d] = %v for zero RHS", i, v)
			}
		}
	})
}

func TestForcesClosedBodyUniformPressure(t *testing.T) {
	// A uniform pressure field over a closed O-grid body integrates to
	// (nearly) zero net force.
	g := gridgen.AirfoilOGrid(0, "airfoil", 96, 10, 5)
	fs := Freestream{Mach: 0.5}
	b := NewBlock(g, g.Full(), fs)
	// State with p = 2*p∞ everywhere.
	p := 2 * fs.Pressure()
	e := p / (Gamma - 1)
	for n := 0; n < b.NPointsLocal(); n++ {
		b.SetQ(n, [5]float64{1, 0, 0, 0, e})
	}
	force, _, _ := b.Forces(geom.Vec3{})
	// Net force should be small relative to p * surface scale (~chord=1).
	if force.Norm() > 0.02*p {
		t.Errorf("closed body net force %v, want ~0", force)
	}
}

func TestForcesFlatWallDirection(t *testing.T) {
	// Wall at y=0 (JMin), fluid above. Overpressure at the wall must push
	// the body down (-y).
	g := grid.New(0, "plate", 8, 6, 1)
	for j := 0; j < 6; j++ {
		for i := 0; i < 8; i++ {
			g.SetBody(i, j, 0, geom.Vec3{X: float64(i), Y: float64(j)})
		}
	}
	g.BCs[grid.JMin] = grid.BCWall
	fs := Freestream{Mach: 0.5}
	b := NewBlock(g, g.Full(), fs)
	p := 3 * fs.Pressure()
	e := p / (Gamma - 1)
	for n := 0; n < b.NPointsLocal(); n++ {
		b.SetQ(n, [5]float64{1, 0, 0, 0, e})
	}
	force, _, _ := b.Forces(geom.Vec3{})
	if force.Y >= 0 {
		t.Errorf("overpressure should push the wall down: Fy = %v", force.Y)
	}
	if math.Abs(force.X) > 1e-9 {
		t.Errorf("flat wall should have no x force: Fx = %v", force.X)
	}
}

func TestMaxDTPositiveAndScales(t *testing.T) {
	fs := Freestream{Mach: 0.8}
	g1 := gridgen.Annulus(0, "ring", 32, 10, 0, 0, 1, 3)
	b1 := NewBlock(g1, g1.Full(), fs)
	dt1 := b1.MaxDTLocal(1)
	if dt1 <= 0 || math.IsInf(dt1, 0) {
		t.Fatalf("dt = %v", dt1)
	}
	// Refined grid must require a smaller timestep.
	g2 := g1.Refine()
	b2 := NewBlock(g2, g2.Full(), fs)
	dt2 := b2.MaxDTLocal(1)
	if dt2 >= dt1 {
		t.Errorf("refined dt %v should be below coarse dt %v", dt2, dt1)
	}
}

func TestInterpolateCellLinearExactness(t *testing.T) {
	g := gridgen.CartesianBox(0, "bg", 6, 6, 6,
		geom.Box{Min: geom.Vec3{}, Max: geom.Vec3{X: 5, Y: 5, Z: 5}})
	fs := Freestream{Mach: 0.5}
	b := NewBlock(g, g.Full(), fs)
	// Q = linear function of position.
	for lk := 0; lk < b.MK; lk++ {
		for lj := 0; lj < b.MJ; lj++ {
			for li := 0; li < b.MI; li++ {
				p := b.LIdx(li, lj, lk)
				x, y, z := b.XL[p], b.YL[p], b.ZL[p]
				b.SetQ(p, [5]float64{1 + x, 2*y - z, x + y + z, 0.5 * z, 3})
			}
		}
	}
	q, ok := b.InterpolateCell(2, 3, 1, 0.25, 0.5, 0.75)
	if !ok {
		t.Fatal("interpolation failed")
	}
	x, y, z := 2.25, 3.5, 1.75
	want := [5]float64{1 + x, 2*y - z, x + y + z, 0.5 * z, 3}
	for c := 0; c < 5; c++ {
		if math.Abs(q[c]-want[c]) > 1e-12 {
			t.Errorf("component %d: %v, want %v", c, q[c], want[c])
		}
	}
}

func TestInterpolateCellRejectsHoles(t *testing.T) {
	g := gridgen.CartesianBox(0, "bg", 5, 5, 5,
		geom.Box{Min: geom.Vec3{}, Max: geom.Vec3{X: 4, Y: 4, Z: 4}})
	g.IBlank[g.Idx(3, 3, 2)] = grid.IBHole
	b := NewBlock(g, g.Full(), Freestream{Mach: 0.5})
	if _, ok := b.InterpolateCell(2, 2, 1, 0.5, 0.5, 0.5); ok {
		t.Error("donor cell with a hole corner must be rejected")
	}
	if _, ok := b.InterpolateCell(0, 0, 0, 0.5, 0.5, 0.5); !ok {
		t.Error("clean donor cell should interpolate")
	}
}

func TestSetFringeAndQAtGlobal(t *testing.T) {
	g := gridgen.CartesianBox(0, "bg", 6, 6, 1,
		geom.Box{Min: geom.Vec3{}, Max: geom.Vec3{X: 5, Y: 5}})
	b := NewBlock(g, g.Full(), Freestream{Mach: 0.5})
	q := [5]float64{2, 0.1, 0.2, 0, 3}
	if !b.SetFringe(3, 4, 0, q) {
		t.Fatal("SetFringe on owned point failed")
	}
	got, ok := b.QAtGlobal(3, 4, 0)
	if !ok {
		t.Fatal("QAtGlobal failed")
	}
	if got != q {
		t.Errorf("QAtGlobal = %v", got)
	}
	if _, ok := b.QAtGlobal(99, 0, 0); ok {
		t.Error("out-of-box query should fail")
	}
}

func TestBaldwinLomaxProducesEddyViscosity(t *testing.T) {
	// Boundary-layer-like profile on a wall grid: mut must be positive in
	// the layer, zero at the wall vicinity handled, and finite everywhere.
	g := gridgen.AirfoilOGrid(0, "airfoil", 32, 20, 4)
	g.Turbulent = true
	fs := Freestream{Mach: 0.5, Re: 1e6}
	b := NewBlock(g, g.Full(), fs)
	// Impose a tangential shear profile: u grows from 0 at wall.
	for lj := 0; lj < b.MJ; lj++ {
		f := float64(lj) / float64(b.MJ-1)
		u := 0.5 * math.Tanh(3*f)
		for lk := 0; lk < b.MK; lk++ {
			for li := 0; li < b.MI; li++ {
				p := b.LIdx(li, lj, lk)
				e := fs.Pressure()/(Gamma-1) + 0.5*u*u
				b.SetQ(p, [5]float64{1, u, 0, 0, e})
			}
		}
	}
	b.ComputeTurbulence()
	maxMut, bad := 0.0, 0
	for _, v := range b.MuT {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			bad++
		}
		if v > maxMut {
			maxMut = v
		}
	}
	if bad > 0 {
		t.Fatalf("%d invalid eddy-viscosity values", bad)
	}
	if maxMut <= 0 {
		t.Error("Baldwin-Lomax produced no eddy viscosity in a shear layer")
	}
}

func TestHaloExchangeTwoRanks(t *testing.T) {
	g := gridgen.CartesianBox(0, "bg", 12, 6, 1,
		geom.Box{Min: geom.Vec3{}, Max: geom.Vec3{X: 11, Y: 5}})
	boxes := balance.Subdivide(g.Full(), 2)
	blocks := BuildBlocks(g, boxes, []int{0, 1}, Freestream{Mach: 0.5})
	// Tag every owned point with its global index.
	for bi, box := range boxes {
		b := blocks[bi]
		for j := box.JLo; j <= box.JHi; j++ {
			for i := box.ILo; i <= box.IHi; i++ {
				li, lj, lk := b.Local(i, j, 0)
				b.SetQ(b.LIdx(li, lj, lk), [5]float64{float64(g.Idx(i, j, 0)), 0, 0, 0, 1})
			}
		}
	}
	w := par.NewWorld(2, machine.SP2())
	w.Run(func(r *par.Rank) {
		blocks[r.ID].ExchangeHalo(r)
	})
	// Rank 0's +i ghosts must hold rank 1's boundary values.
	b := blocks[0]
	box := boxes[0]
	for j := box.JLo; j <= box.JHi; j++ {
		for gl := 1; gl <= Halo; gl++ {
			i := box.IHi + gl
			li, lj, lk := b.Local(i, j, 0)
			got := b.Q[5*b.LIdx(li, lj, lk)]
			want := float64(g.Idx(i, j, 0))
			if got != want {
				t.Fatalf("ghost (%d,%d): got %v want %v", i, j, got, want)
			}
		}
	}
}

func TestResidualNormAfterStep(t *testing.T) {
	g := gridgen.AirfoilOGrid(0, "airfoil", 32, 10, 5)
	fs := Freestream{Mach: 0.5}
	runSerial(t, func(r *par.Rank) {
		b := NewBlock(g, g.Full(), fs)
		b.Nbr[0][0] = Neighbor{Rank: 0, Wrap: true}
		b.Nbr[0][1] = Neighbor{Rank: 0, Wrap: true}
		b.FlowStep(r, 0.02)
		res := b.ResidualNorm()
		if math.IsNaN(res) || math.IsInf(res, 0) {
			t.Fatalf("residual = %v", res)
		}
		if res == 0 {
			t.Error("impulsive start should produce a nonzero residual")
		}
	})
}

func TestFlowStepChargesVirtualTime(t *testing.T) {
	g := gridgen.Annulus(0, "ring", 24, 10, 0, 0, 1, 2)
	fs := Freestream{Mach: 0.5}
	w := par.NewWorld(1, machine.SP2())
	ranks := w.Run(func(r *par.Rank) {
		r.SetPhase(par.PhaseFlow)
		b := NewBlock(g, g.Full(), fs)
		b.FlowStep(r, 0.01)
	})
	if ranks[0].PhaseTime(par.PhaseFlow) <= 0 {
		t.Error("flow step should consume virtual time")
	}
	if ranks[0].PhaseFlops(par.PhaseFlow) <= 0 {
		t.Error("flow step should record flops")
	}
}
