package flow

import (
	"testing"

	"overd/internal/gridgen"
	"overd/internal/machine"
	"overd/internal/par"
)

func benchBlock(b *testing.B) (*Block, *par.World) {
	g := gridgen.AirfoilOGrid(0, "airfoil", 128, 32, 3)
	g.Turbulent = true
	fs := Freestream{Mach: 0.8, Re: 1e6}
	w := par.NewWorld(1, machine.SP2())
	blk := NewBlock(g, g.Full(), fs)
	blk.Nbr[0][0] = Neighbor{Rank: 0, Wrap: true}
	blk.Nbr[0][1] = Neighbor{Rank: 0, Wrap: true}
	return blk, w
}

// BenchmarkFlowStep measures a full implicit timestep on a 4K-point block.
func BenchmarkFlowStep(b *testing.B) {
	blk, w := benchBlock(b)
	b.ResetTimer()
	w.Run(func(r *par.Rank) {
		for i := 0; i < b.N; i++ {
			blk.FlowStep(r, 0.01)
		}
	})
	b.ReportMetric(float64(blk.NOwned()), "points")
}

// BenchmarkComputeRHS measures the explicit residual alone.
func BenchmarkComputeRHS(b *testing.B) {
	blk, _ := benchBlock(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk.ComputeRHS(0.01)
	}
}

// BenchmarkSolveADI measures the factored implicit solve alone.
func BenchmarkSolveADI(b *testing.B) {
	blk, w := benchBlock(b)
	blk.ComputeRHS(0.01)
	b.ResetTimer()
	w.Run(func(r *par.Rank) {
		for i := 0; i < b.N; i++ {
			blk.SolveADI(r, 0.01)
		}
	})
}

// BenchmarkEigenSet measures one eigensystem construction.
func BenchmarkEigenSet(b *testing.B) {
	q := (Freestream{Mach: 0.8}).Conserved()
	var e Eigen
	for i := 0; i < b.N; i++ {
		e.Set(q, 1.0, 0.2, -0.3, 0.05)
	}
	_ = e
}

// BenchmarkBaldwinLomax measures the turbulence model pass.
func BenchmarkBaldwinLomax(b *testing.B) {
	blk, _ := benchBlock(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk.ComputeTurbulence()
	}
}
