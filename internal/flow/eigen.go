package flow

import "math"

// The diagonalized approximate-factorization scheme (Pulliam & Chaussee)
// replaces each implicit flux Jacobian A_k = ∂F̂_k/∂Q with its similarity
// decomposition T_k Λ_k T_k⁻¹, turning each ADI factor into five scalar
// tridiagonal solves bracketed by 5x5 eigenvector products. The matrices
// below are the standard generalized-coordinate Euler eigensystem; tests
// verify T Λ T⁻¹ against a finite-difference flux Jacobian.

// Eigen holds the similarity transform of one direction's flux Jacobian at
// one point.
type Eigen struct {
	// Lam are the eigenvalues [θ, θ, θ, θ+c|∇k|, θ−c|∇k|] including the
	// grid-motion term kt.
	Lam [5]float64
	T   [5][5]float64
	Ti  [5][5]float64
}

// NewEigen builds the eigensystem for conserved state q, direction metric
// (kx,ky,kz) (unscaled, i.e. ∇k/J times J — any common scale factors apply
// to the eigenvalues only), and grid-motion term kt.
func NewEigen(q [5]float64, kx, ky, kz, kt float64) Eigen {
	var e Eigen
	e.Set(q, kx, ky, kz, kt)
	return e
}

// Set fills the eigensystem in place (avoids copying the 5x5 matrices in
// the solver's hot loops).
func (e *Eigen) Set(q [5]float64, kx, ky, kz, kt float64) {
	e.SetTi(q, kx, ky, kz, kt)
	e.SetT(q, kx, ky, kz, kt)
}

// SetTi fills the eigenvalues and the left eigenvector matrix T⁻¹ only —
// all the first ADI pointwise pass needs. Elements are written individually
// (no composite-literal temporary) and T is left untouched.
func (e *Eigen) SetTi(q [5]float64, kx, ky, kz, kt float64) {
	rho, u, v, w, p := Primitive(q)
	a := SoundSpeed(rho, p)
	gm := math.Sqrt(kx*kx + ky*ky + kz*kz)
	if gm < 1e-300 {
		gm = 1e-300
	}
	nx, ny, nz := kx/gm, ky/gm, kz/gm
	theta := kx*u + ky*v + kz*w + kt
	thN := nx*u + ny*v + nz*w // normalized contravariant velocity (no kt)

	phi2 := 0.5 * (Gamma - 1) * (u*u + v*v + w*w)
	beta := 1 / (math.Sqrt2 * rho * a)
	g1 := Gamma - 1

	e.Lam[0] = theta
	e.Lam[1] = theta
	e.Lam[2] = theta
	e.Lam[3] = theta + a*gm
	e.Lam[4] = theta - a*gm

	ti := &e.Ti
	ti[0][0] = nx*(1-phi2/(a*a)) - (nz*v-ny*w)/rho
	ti[0][1] = nx * g1 * u / (a * a)
	ti[0][2] = nx*g1*v/(a*a) + nz/rho
	ti[0][3] = nx*g1*w/(a*a) - ny/rho
	ti[0][4] = -nx * g1 / (a * a)
	ti[1][0] = ny*(1-phi2/(a*a)) - (nx*w-nz*u)/rho
	ti[1][1] = ny*g1*u/(a*a) - nz/rho
	ti[1][2] = ny * g1 * v / (a * a)
	ti[1][3] = ny*g1*w/(a*a) + nx/rho
	ti[1][4] = -ny * g1 / (a * a)
	ti[2][0] = nz*(1-phi2/(a*a)) - (ny*u-nx*v)/rho
	ti[2][1] = nz*g1*u/(a*a) + ny/rho
	ti[2][2] = nz*g1*v/(a*a) - nx/rho
	ti[2][3] = nz * g1 * w / (a * a)
	ti[2][4] = -nz * g1 / (a * a)
	ti[3][0] = beta * (phi2 - a*thN)
	ti[3][1] = beta * (nx*a - g1*u)
	ti[3][2] = beta * (ny*a - g1*v)
	ti[3][3] = beta * (nz*a - g1*w)
	ti[3][4] = beta * g1
	ti[4][0] = beta * (phi2 + a*thN)
	ti[4][1] = beta * (-nx*a - g1*u)
	ti[4][2] = beta * (-ny*a - g1*v)
	ti[4][3] = beta * (-nz*a - g1*w)
	ti[4][4] = beta * g1
}

// SetT fills the right eigenvector matrix T only — all the second ADI
// pointwise pass needs. Lam and Ti are left untouched.
func (e *Eigen) SetT(q [5]float64, kx, ky, kz, kt float64) {
	rho, u, v, w, p := Primitive(q)
	a := SoundSpeed(rho, p)
	gm := math.Sqrt(kx*kx + ky*ky + kz*kz)
	if gm < 1e-300 {
		gm = 1e-300
	}
	nx, ny, nz := kx/gm, ky/gm, kz/gm
	thN := nx*u + ny*v + nz*w

	phi2 := 0.5 * (Gamma - 1) * (u*u + v*v + w*w)
	alpha := rho / (math.Sqrt2 * a)
	g1 := Gamma - 1

	t := &e.T
	t[0][0] = nx
	t[0][1] = ny
	t[0][2] = nz
	t[0][3] = alpha
	t[0][4] = alpha
	t[1][0] = nx * u
	t[1][1] = ny*u - nz*rho
	t[1][2] = nz*u + ny*rho
	t[1][3] = alpha * (u + nx*a)
	t[1][4] = alpha * (u - nx*a)
	t[2][0] = nx*v + nz*rho
	t[2][1] = ny * v
	t[2][2] = nz*v - nx*rho
	t[2][3] = alpha * (v + ny*a)
	t[2][4] = alpha * (v - ny*a)
	t[3][0] = nx*w - ny*rho
	t[3][1] = ny*w + nx*rho
	t[3][2] = nz * w
	t[3][3] = alpha * (w + nz*a)
	t[3][4] = alpha * (w - nz*a)
	t[4][0] = nx*phi2/g1 + rho*(nz*v-ny*w)
	t[4][1] = ny*phi2/g1 + rho*(nx*w-nz*u)
	t[4][2] = nz*phi2/g1 + rho*(ny*u-nx*v)
	t[4][3] = alpha * ((phi2+a*a)/g1 + a*thN)
	t[4][4] = alpha * ((phi2+a*a)/g1 - a*thN)
}

// MulT applies the right eigenvector matrix: out = T · x.
func (e *Eigen) MulT(x [5]float64) [5]float64 {
	var out [5]float64
	for i := 0; i < 5; i++ {
		s := 0.0
		for j := 0; j < 5; j++ {
			s += e.T[i][j] * x[j]
		}
		out[i] = s
	}
	return out
}

// MulTi applies the left eigenvector matrix: out = T⁻¹ · x.
func (e *Eigen) MulTi(x [5]float64) [5]float64 {
	var out [5]float64
	for i := 0; i < 5; i++ {
		s := 0.0
		for j := 0; j < 5; j++ {
			s += e.Ti[i][j] * x[j]
		}
		out[i] = s
	}
	return out
}

// Flux returns the generalized-coordinate inviscid flux
// F̂ = [ρU, ρuU + kx p, ρvU + ky p, ρwU + kz p, (e+p)U − kt p]
// for metric (kx,ky,kz) and grid-motion term kt, where
// U = kt + kx u + ky v + kz w.
func Flux(q [5]float64, kx, ky, kz, kt float64) [5]float64 {
	rho, u, v, w, p := Primitive(q)
	U := kt + kx*u + ky*v + kz*w
	return [5]float64{
		rho * U,
		q[1]*U + kx*p,
		q[2]*U + ky*p,
		q[3]*U + kz*p,
		(q[4]+p)*U - kt*p,
	}
}

// SpectralRadius returns |U| + c|∇k| for metric (kx,ky,kz) and motion kt.
func SpectralRadius(q [5]float64, kx, ky, kz, kt float64) float64 {
	rho, u, v, w, p := Primitive(q)
	a := SoundSpeed(rho, p)
	U := kt + kx*u + ky*v + kz*w
	return math.Abs(U) + a*math.Sqrt(kx*kx+ky*ky+kz*kz)
}
