package flow

import "math"

// The diagonalized approximate-factorization scheme (Pulliam & Chaussee)
// replaces each implicit flux Jacobian A_k = ∂F̂_k/∂Q with its similarity
// decomposition T_k Λ_k T_k⁻¹, turning each ADI factor into five scalar
// tridiagonal solves bracketed by 5x5 eigenvector products. The matrices
// below are the standard generalized-coordinate Euler eigensystem; tests
// verify T Λ T⁻¹ against a finite-difference flux Jacobian.

// Eigen holds the similarity transform of one direction's flux Jacobian at
// one point.
type Eigen struct {
	// Lam are the eigenvalues [θ, θ, θ, θ+c|∇k|, θ−c|∇k|] including the
	// grid-motion term kt.
	Lam [5]float64
	T   [5][5]float64
	Ti  [5][5]float64
}

// NewEigen builds the eigensystem for conserved state q, direction metric
// (kx,ky,kz) (unscaled, i.e. ∇k/J times J — any common scale factors apply
// to the eigenvalues only), and grid-motion term kt.
func NewEigen(q [5]float64, kx, ky, kz, kt float64) Eigen {
	var e Eigen
	e.Set(q, kx, ky, kz, kt)
	return e
}

// Set fills the eigensystem in place (avoids copying the 5x5 matrices in
// the solver's hot loops).
func (e *Eigen) Set(q [5]float64, kx, ky, kz, kt float64) {
	rho, u, v, w, p := Primitive(q)
	a := SoundSpeed(rho, p)
	gm := math.Sqrt(kx*kx + ky*ky + kz*kz)
	if gm < 1e-300 {
		gm = 1e-300
	}
	nx, ny, nz := kx/gm, ky/gm, kz/gm
	theta := kx*u + ky*v + kz*w + kt
	thN := nx*u + ny*v + nz*w // normalized contravariant velocity (no kt)

	phi2 := 0.5 * (Gamma - 1) * (u*u + v*v + w*w)
	alpha := rho / (math.Sqrt2 * a)
	beta := 1 / (math.Sqrt2 * rho * a)
	g1 := Gamma - 1

	e.Lam = [5]float64{theta, theta, theta, theta + a*gm, theta - a*gm}

	// Right eigenvector matrix T (columns are eigenvectors).
	e.T = [5][5]float64{
		{nx, ny, nz, alpha, alpha},
		{nx * u, ny*u - nz*rho, nz*u + ny*rho, alpha * (u + nx*a), alpha * (u - nx*a)},
		{nx*v + nz*rho, ny * v, nz*v - nx*rho, alpha * (v + ny*a), alpha * (v - ny*a)},
		{nx*w - ny*rho, ny*w + nx*rho, nz * w, alpha * (w + nz*a), alpha * (w - nz*a)},
		{
			nx*phi2/g1 + rho*(nz*v-ny*w),
			ny*phi2/g1 + rho*(nx*w-nz*u),
			nz*phi2/g1 + rho*(ny*u-nx*v),
			alpha * ((phi2+a*a)/g1 + a*thN),
			alpha * ((phi2+a*a)/g1 - a*thN),
		},
	}

	// Left eigenvector matrix T⁻¹.
	e.Ti = [5][5]float64{
		{
			nx*(1-phi2/(a*a)) - (nz*v-ny*w)/rho,
			nx * g1 * u / (a * a),
			nx*g1*v/(a*a) + nz/rho,
			nx*g1*w/(a*a) - ny/rho,
			-nx * g1 / (a * a),
		},
		{
			ny*(1-phi2/(a*a)) - (nx*w-nz*u)/rho,
			ny*g1*u/(a*a) - nz/rho,
			ny * g1 * v / (a * a),
			ny*g1*w/(a*a) + nx/rho,
			-ny * g1 / (a * a),
		},
		{
			nz*(1-phi2/(a*a)) - (ny*u-nx*v)/rho,
			nz*g1*u/(a*a) + ny/rho,
			nz*g1*v/(a*a) - nx/rho,
			nz * g1 * w / (a * a),
			-nz * g1 / (a * a),
		},
		{
			beta * (phi2 - a*thN),
			beta * (nx*a - g1*u),
			beta * (ny*a - g1*v),
			beta * (nz*a - g1*w),
			beta * g1,
		},
		{
			beta * (phi2 + a*thN),
			beta * (-nx*a - g1*u),
			beta * (-ny*a - g1*v),
			beta * (-nz*a - g1*w),
			beta * g1,
		},
	}
}

// MulT applies the right eigenvector matrix: out = T · x.
func (e *Eigen) MulT(x [5]float64) [5]float64 {
	var out [5]float64
	for i := 0; i < 5; i++ {
		s := 0.0
		for j := 0; j < 5; j++ {
			s += e.T[i][j] * x[j]
		}
		out[i] = s
	}
	return out
}

// MulTi applies the left eigenvector matrix: out = T⁻¹ · x.
func (e *Eigen) MulTi(x [5]float64) [5]float64 {
	var out [5]float64
	for i := 0; i < 5; i++ {
		s := 0.0
		for j := 0; j < 5; j++ {
			s += e.Ti[i][j] * x[j]
		}
		out[i] = s
	}
	return out
}

// Flux returns the generalized-coordinate inviscid flux
// F̂ = [ρU, ρuU + kx p, ρvU + ky p, ρwU + kz p, (e+p)U − kt p]
// for metric (kx,ky,kz) and grid-motion term kt, where
// U = kt + kx u + ky v + kz w.
func Flux(q [5]float64, kx, ky, kz, kt float64) [5]float64 {
	rho, u, v, w, p := Primitive(q)
	U := kt + kx*u + ky*v + kz*w
	return [5]float64{
		rho * U,
		q[1]*U + kx*p,
		q[2]*U + ky*p,
		q[3]*U + kz*p,
		(q[4]+p)*U - kt*p,
	}
}

// SpectralRadius returns |U| + c|∇k| for metric (kx,ky,kz) and motion kt.
func SpectralRadius(q [5]float64, kx, ky, kz, kt float64) float64 {
	rho, u, v, w, p := Primitive(q)
	a := SoundSpeed(rho, p)
	U := kt + kx*u + ky*v + kz*w
	return math.Abs(U) + a*math.Sqrt(kx*kx+ky*ky+kz*kz)
}
