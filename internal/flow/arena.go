package flow

import "overd/internal/par"

// Arenas holds one world's per-rank sharded envelope arenas (see par.Arena)
// for the flow solver's two message kinds: halo face planes and pipelined
// tridiagonal boundary state. Each rank's block Gets from and Puts to its own
// shard, so steady-state envelope reuse never contends across ranks the way
// the process-global sync.Pools' per-P caches do at GOMAXPROCS > 1. One
// Arenas is shared by all of a world's blocks and survives repartitions.
type Arenas struct {
	face par.Arena[faceMsg]
	pipe par.Arena[pipeMsg]
}

// NewArenas sizes envelope arenas for an n-rank world.
func NewArenas(n int) *Arenas {
	a := &Arenas{}
	a.face.Init(n)
	a.pipe.Init(n)
	return a
}

// UseArenas attaches shared per-rank envelope arenas; pass nil to fall back
// to the process-global pools. Affects host allocation behavior only — wire
// sizes and virtual clocks never depend on where an envelope came from.
func (b *Block) UseArenas(a *Arenas) { b.ar = a }

// Envelope get/put helpers: the calling rank's arena shard when attached,
// the global pool otherwise. A received envelope is Put into the RECEIVER's
// shard — cross-rank envelope migration is the arena's designed-for case.
func (b *Block) getFace(r *par.Rank) *faceMsg {
	if b.ar != nil {
		return b.ar.face.Get(r.ID)
	}
	return facePool.Get()
}

func (b *Block) putFace(r *par.Rank, x *faceMsg) {
	if b.ar != nil {
		b.ar.face.Put(r.ID, x)
		return
	}
	facePool.Put(x)
}

func (b *Block) getPipe(r *par.Rank) *pipeMsg {
	if b.ar != nil {
		return b.ar.pipe.Get(r.ID)
	}
	return pipePool.Get()
}

func (b *Block) putPipe(r *par.Rank, x *pipeMsg) {
	if b.ar != nil {
		b.ar.pipe.Put(r.ID, x)
		return
	}
	pipePool.Put(x)
}
