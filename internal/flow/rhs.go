package flow

import (
	"math"

	"overd/internal/grid"
)

// Scratch arrays allocated lazily by ensureScratch.
type scratch struct {
	fw   []float64    // per-direction flux workspace (5 per point)
	pr   []float64    // pressure field
	sig  [3][]float64 // per-direction spectral radii
	upd  []bool       // point is updated by the implicit scheme
	stv  []bool       // point is valid for difference stencils
	rhs0 []float64    // cached freestream residual (5 per point)

	// Pipelined Thomas-solve state, hoisted out of lineSolves so the three
	// sweeps per step reuse one set of buffers instead of allocating six
	// arrays per direction. cpAll caches the full c' field for back
	// substitution (5 per point); the rest hold 5 values per transverse
	// line and are grown to the largest direction's line count on first use.
	// Every element read during a sweep is written earlier in the same
	// sweep, so no zeroing between reuses is needed.
	cpAll                []float64
	cIn, dIn, cOut, dOut []float64
	xIn                  []float64
}

func (b *Block) ensureScratch() {
	if b.scr != nil {
		return
	}
	n := b.NPointsLocal()
	s := &scratch{
		fw:    make([]float64, 5*n),
		pr:    make([]float64, n),
		upd:   make([]bool, n),
		stv:   make([]bool, n),
		rhs0:  make([]float64, 5*n),
		cpAll: make([]float64, 5*n),
	}
	for d := 0; d < 3; d++ {
		s.sig[d] = make([]float64, n)
	}
	b.scr = s
	b.classifyPoints()
	b.computeFreestreamResidual()
}

// classifyPoints fills the updatable and stencil-valid masks. A point is
// updatable when it is a field point not lying on a Dirichlet face of the
// component grid (walls, farfield, overset and symmetry boundary values are
// set explicitly; periodic faces are ordinary interior points). A point is
// stencil-valid when it carries meaningful data: field, fringe, or explicit
// boundary values, inside the grid extent.
func (b *Block) classifyPoints() {
	g := b.G
	s := b.scr
	for lk := 0; lk < b.MK; lk++ {
		for lj := 0; lj < b.MJ; lj++ {
			for li := 0; li < b.MI; li++ {
				n := b.LIdx(li, lj, lk)
				i, j, k := b.GlobalFromLocal(li, lj, lk)
				if g.PeriodicI() {
					i = ((i % g.NI) + g.NI) % g.NI
				}
				inside := i >= 0 && i < g.NI && j >= 0 && j < g.NJ && (b.TwoD || k >= 0 && k < g.NK)
				if !inside {
					s.upd[n] = false
					s.stv[n] = false
					continue
				}
				s.stv[n] = b.IBl[n] != grid.IBHole
				upd := b.IBl[n] == grid.IBField
				if upd {
					if !g.PeriodicI() && (i == 0 || i == g.NI-1) {
						upd = false
					}
					if j == 0 || j == g.NJ-1 {
						upd = false
					}
					if !b.TwoD && (k == 0 || k == g.NK-1) {
						upd = false
					}
				}
				s.upd[n] = upd
			}
		}
	}
}

// RefreshMasks recomputes the point classification after an iblank update
// (connectivity re-established holes and fringes).
func (b *Block) RefreshMasks() {
	b.refreshIBlank()
	if b.scr != nil {
		b.classifyPoints()
	}
}

// RefreshFreestreamResidual recomputes the cached metric-error correction;
// call after geometry changes (moving grids).
func (b *Block) RefreshFreestreamResidual() {
	if b.scr != nil {
		b.computeFreestreamResidual()
	}
}

// computeFreestreamResidual caches the central flux divergence of the
// uniform freestream state. Finite-difference metrics do not satisfy the
// discrete metric identities exactly, so a uniform flow produces a small
// spurious residual; subtracting this cached field ("freestream
// subtraction", as in production overset codes) restores exact freestream
// preservation.
func (b *Block) computeFreestreamResidual() {
	s := b.scr
	qf := b.FS.Conserved()
	n := b.NPointsLocal()
	// Freestream flux at every point for each direction, differenced.
	for p := 0; p < 5*n; p++ {
		s.rhs0[p] = 0
	}
	ndir := 3
	if b.TwoD {
		ndir = 2
	}
	for d := 0; d < ndir; d++ {
		for p := 0; p < n; p++ {
			kx, ky, kz := b.Met[9*p+3*d], b.Met[9*p+3*d+1], b.Met[9*p+3*d+2]
			kt := -(kx*b.XT[p] + ky*b.YT[p] + kz*b.ZT[p])
			f := Flux(qf, kx, ky, kz, kt)
			copy(s.fw[5*p:5*p+5], f[:])
		}
		str := b.strideOf(d)
		b.eachInterior(func(p int) {
			for c := 0; c < 5; c++ {
				s.rhs0[5*p+c] += 0.5 * (s.fw[5*(p+str)+c] - s.fw[5*(p-str)+c])
			}
		})
	}
}

// strideOf returns the flat-index stride of one step in local direction d.
func (b *Block) strideOf(d int) int {
	switch d {
	case 0:
		return 1
	case 1:
		return b.MI
	default:
		return b.MI * b.MJ
	}
}

// eachInterior calls fn for every owned point (ghosts excluded).
func (b *Block) eachInterior(fn func(p int)) {
	klo, khi := b.kBounds()
	for lk := klo; lk <= khi; lk++ {
		for lj := Halo; lj < b.MJ-Halo; lj++ {
			base := b.LIdx(Halo, lj, lk)
			for li := 0; li < b.Own.NI(); li++ {
				fn(base + li)
			}
		}
	}
}

// Dissipation coefficients (JST): second- and fourth-difference scaling and
// the pressure-switch gain.
const (
	dissK2 = 0.50
	dissK4 = 1.0 / 48
)

// Approximate floating point operations per point for the flop accounting,
// by kernel. The counts tally multiplies and adds in the inner loops.
const (
	flopsFluxPerDir  = 50.0
	flopsDissPerDir  = 60.0
	flopsPressure    = 12.0
	flopsSpectral    = 20.0
	flopsEigenBuild  = 110.0
	flopsEigenApply  = 55.0
	flopsTriPerComp  = 16.0
	flopsBCPoint     = 30.0
	flopsViscPoint   = 130.0
	flopsBLPoint     = 90.0
	flopsMetricPoint = 160.0
	flopsForcePoint  = 40.0
)

// ComputeRHS fills b.RHS with Δt·J·R(Q) where R is the semi-discrete
// residual (negative flux divergence plus artificial dissipation, with the
// cached freestream correction subtracted). Non-updatable points get zero.
// It returns the number of floating-point operations performed, for the
// caller's virtual-time accounting.
func (b *Block) ComputeRHS(dt float64) float64 {
	b.ensureScratch()
	s := b.scr
	n := b.NPointsLocal()

	// Pressure and per-direction spectral radii.
	for p := 0; p < n; p++ {
		q := b.QAt(p)
		rho, u, v, w, pr := Primitive(q)
		s.pr[p] = pr
		a := SoundSpeed(rho, pr)
		ndir := 3
		if b.TwoD {
			ndir = 2
		}
		for d := 0; d < ndir; d++ {
			kx, ky, kz := b.Met[9*p+3*d], b.Met[9*p+3*d+1], b.Met[9*p+3*d+2]
			kt := -(kx*b.XT[p] + ky*b.YT[p] + kz*b.ZT[p])
			U := kt + kx*u + ky*v + kz*w
			s.sig[d][p] = math.Abs(U) + a*math.Sqrt(kx*kx+ky*ky+kz*kz)
		}
	}

	for p := 0; p < 5*n; p++ {
		b.RHS[p] = 0
	}

	ndir := 3
	if b.TwoD {
		ndir = 2
	}
	flops := float64(n) * (flopsPressure + flopsSpectral*float64(ndir))

	for d := 0; d < ndir; d++ {
		// Fluxes at every stencil-relevant point.
		for p := 0; p < n; p++ {
			kx, ky, kz := b.Met[9*p+3*d], b.Met[9*p+3*d+1], b.Met[9*p+3*d+2]
			kt := -(kx*b.XT[p] + ky*b.YT[p] + kz*b.ZT[p])
			f := Flux(b.QAt(p), kx, ky, kz, kt)
			copy(s.fw[5*p:5*p+5], f[:])
		}
		str := b.strideOf(d)
		b.eachInterior(func(p int) {
			if !s.upd[p] {
				return
			}
			// Central flux difference.
			for c := 0; c < 5; c++ {
				b.RHS[5*p+c] -= 0.5 * (s.fw[5*(p+str)+c] - s.fw[5*(p-str)+c])
			}
			// JST dissipation: d_{+1/2} - d_{-1/2}.
			b.addDissipation(p, str, d)
		})
		flops += float64(n)*flopsFluxPerDir + float64(b.NOwned())*flopsDissPerDir
	}

	flops += b.addViscousRHS()

	// Freestream subtraction, Jacobian scaling and Δt.
	b.eachInterior(func(p int) {
		if !s.upd[p] {
			for c := 0; c < 5; c++ {
				b.RHS[5*p+c] = 0
			}
			return
		}
		jdt := b.Jac[p] * dt
		for c := 0; c < 5; c++ {
			b.RHS[5*p+c] = (b.RHS[5*p+c] + s.rhs0[5*p+c]) * jdt
		}
	})
	flops += float64(b.NOwned()) * 12
	return flops
}

// addDissipation accumulates the scalar JST dissipation along direction d
// (stride str) at point p into RHS. Stencil validity degrades the fourth-
// difference term to second difference near holes and boundaries.
func (b *Block) addDissipation(p, str, d int) {
	s := b.scr
	for side := 0; side < 2; side++ {
		// Interface p+1/2 (side 0) and p-1/2 (side 1).
		pl, pr := p, p+str
		sign := 1.0
		if side == 1 {
			pl, pr = p-str, p
			sign = -1
		}
		if !s.stv[pl] || !s.stv[pr] {
			continue
		}
		sigma := 0.5 * (s.sig[d][pl] + s.sig[d][pr])
		// Pressure switch.
		nu := pressureSensor(s, pl, str) // at pl
		if n2 := pressureSensor(s, pr, str); n2 > nu {
			nu = n2
		}
		eps2 := dissK2 * nu
		eps4 := dissK4 - eps2
		if eps4 < 0 {
			eps4 = 0
		}
		// Fourth-difference needs two more valid neighbors.
		pll, prr := pl-str, pr+str
		fourth := s.stv[pll] && s.stv[prr]
		for c := 0; c < 5; c++ {
			d1 := b.Q[5*pr+c] - b.Q[5*pl+c]
			flux := eps2 * d1
			if fourth {
				d3 := b.Q[5*prr+c] - 3*b.Q[5*pr+c] + 3*b.Q[5*pl+c] - b.Q[5*pll+c]
				flux -= eps4 * d3
			}
			b.RHS[5*p+c] += sign * sigma * flux
		}
	}
}

// pressureSensor returns the normalized second difference of pressure at
// point p along stride str, the JST shock switch.
func pressureSensor(s *scratch, p, str int) float64 {
	pm, pp := p-str, p+str
	if !s.stv[pm] || !s.stv[pp] {
		return 0
	}
	num := math.Abs(s.pr[pp] - 2*s.pr[p] + s.pr[pm])
	den := s.pr[pp] + 2*s.pr[p] + s.pr[pm]
	if den < 1e-12 {
		return 0
	}
	return num / den
}
