package flow

import (
	"math"

	"overd/internal/grid"
)

// Scratch arrays allocated lazily by ensureScratch.
type scratch struct {
	fw   []float64    // per-direction flux workspace (5 per point)
	pr   []float64    // pressure field
	prim []float64    // cached primitives ρ,u,v,w (4 per point), filled with pr
	sig  [3][]float64 // per-direction spectral radii
	upd  []bool       // point is updated by the implicit scheme
	stv  []bool       // point is valid for difference stencils
	rhs0 []float64    // cached freestream residual (5 per point)

	// Pipelined Thomas-solve state, hoisted out of lineSolves so the three
	// sweeps per step reuse one set of buffers instead of allocating six
	// arrays per direction. cpAll caches the full c' field for back
	// substitution (5 per point); the rest hold 5 values per transverse
	// line and are grown to the largest direction's line count on first use.
	// Every element read during a sweep is written earlier in the same
	// sweep, so no zeroing between reuses is needed.
	cpAll                []float64
	cIn, dIn, cOut, dOut []float64
	xIn                  []float64
	// epsLn holds the per-point implicit-smoothing coefficient of one line,
	// computed once instead of once per component.
	epsLn []float64

	// Baldwin-Lomax per-line scratch (wall-normal extent); every element is
	// written before it is read on each line, so no clearing between lines.
	blOmega, blY, blRho []float64
}

func (b *Block) ensureScratch() {
	if b.scr != nil {
		return
	}
	n := b.NPointsLocal()
	s := &scratch{
		fw:    make([]float64, 5*n),
		pr:    make([]float64, n),
		prim:  make([]float64, 4*n),
		upd:   make([]bool, n),
		stv:   make([]bool, n),
		rhs0:  make([]float64, 5*n),
		cpAll: make([]float64, 5*n),
	}
	for d := 0; d < 3; d++ {
		s.sig[d] = make([]float64, n)
	}
	b.scr = s
	b.classifyPoints()
	b.computeFreestreamResidual()
}

// classifyPoints fills the updatable and stencil-valid masks. A point is
// updatable when it is a field point not lying on a Dirichlet face of the
// component grid (walls, farfield, overset and symmetry boundary values are
// set explicitly; periodic faces are ordinary interior points). A point is
// stencil-valid when it carries meaningful data: field, fringe, or explicit
// boundary values, inside the grid extent.
func (b *Block) classifyPoints() {
	g := b.G
	s := b.scr
	for lk := 0; lk < b.MK; lk++ {
		for lj := 0; lj < b.MJ; lj++ {
			for li := 0; li < b.MI; li++ {
				n := b.LIdx(li, lj, lk)
				i, j, k := b.GlobalFromLocal(li, lj, lk)
				if g.PeriodicI() {
					i = ((i % g.NI) + g.NI) % g.NI
				}
				inside := i >= 0 && i < g.NI && j >= 0 && j < g.NJ && (b.TwoD || k >= 0 && k < g.NK)
				if !inside {
					s.upd[n] = false
					s.stv[n] = false
					continue
				}
				s.stv[n] = b.IBl[n] != grid.IBHole
				upd := b.IBl[n] == grid.IBField
				if upd {
					if !g.PeriodicI() && (i == 0 || i == g.NI-1) {
						upd = false
					}
					if j == 0 || j == g.NJ-1 {
						upd = false
					}
					if !b.TwoD && (k == 0 || k == g.NK-1) {
						upd = false
					}
				}
				s.upd[n] = upd
			}
		}
	}
}

// RefreshMasks recomputes the point classification after an iblank update
// (connectivity re-established holes and fringes).
func (b *Block) RefreshMasks() {
	b.refreshIBlank()
	if b.scr != nil {
		b.classifyPoints()
	}
}

// RefreshFreestreamResidual recomputes the cached metric-error correction;
// call after geometry changes (moving grids).
func (b *Block) RefreshFreestreamResidual() {
	if b.scr != nil {
		b.computeFreestreamResidual()
	}
}

// computeFreestreamResidual caches the central flux divergence of the
// uniform freestream state. Finite-difference metrics do not satisfy the
// discrete metric identities exactly, so a uniform flow produces a small
// spurious residual; subtracting this cached field ("freestream
// subtraction", as in production overset codes) restores exact freestream
// preservation. Runs every step on moving grids, so the freestream
// primitives are hoisted and the flux is written in place.
func (b *Block) computeFreestreamResidual() {
	s := b.scr
	qf := b.FS.Conserved()
	n := b.NPointsLocal()
	rhs0 := s.rhs0
	for p := 0; p < 5*n; p++ {
		rhs0[p] = 0
	}
	ndir := 3
	if b.TwoD {
		ndir = 2
	}
	rho, u, v, w, pf := Primitive(qf)
	q1, q2, q3, q4 := qf[1], qf[2], qf[3], qf[4]
	fw, met := s.fw, b.Met
	xt, yt, zt := b.XT, b.YT, b.ZT
	klo, khi := b.kBounds()
	niOwn := b.Own.NI()
	for d := 0; d < ndir; d++ {
		for p := 0; p < n; p++ {
			mp := met[9*p+3*d : 9*p+3*d+3 : 9*p+3*d+3]
			kx, ky, kz := mp[0], mp[1], mp[2]
			kt := -(kx*xt[p] + ky*yt[p] + kz*zt[p])
			U := kt + kx*u + ky*v + kz*w
			f := fw[5*p : 5*p+5 : 5*p+5]
			f[0] = rho * U
			f[1] = q1*U + kx*pf
			f[2] = q2*U + ky*pf
			f[3] = q3*U + kz*pf
			f[4] = (q4+pf)*U - kt*pf
		}
		str := b.strideOf(d)
		for lk := klo; lk <= khi; lk++ {
			for lj := Halo; lj < b.MJ-Halo; lj++ {
				p0 := b.LIdx(Halo, lj, lk)
				for p := p0; p < p0+niOwn; p++ {
					r0 := rhs0[5*p : 5*p+5 : 5*p+5]
					fp := fw[5*(p+str) : 5*(p+str)+5]
					fm := fw[5*(p-str) : 5*(p-str)+5]
					r0[0] += 0.5 * (fp[0] - fm[0])
					r0[1] += 0.5 * (fp[1] - fm[1])
					r0[2] += 0.5 * (fp[2] - fm[2])
					r0[3] += 0.5 * (fp[3] - fm[3])
					r0[4] += 0.5 * (fp[4] - fm[4])
				}
			}
		}
	}
}

// strideOf returns the flat-index stride of one step in local direction d.
func (b *Block) strideOf(d int) int {
	switch d {
	case 0:
		return 1
	case 1:
		return b.MI
	default:
		return b.MI * b.MJ
	}
}

// eachInterior calls fn for every owned point (ghosts excluded). Hot kernels
// inline this iteration instead (see "Kernel rules" in DESIGN.md); the
// closure form remains for cold paths.
func (b *Block) eachInterior(fn func(p int)) {
	klo, khi := b.kBounds()
	for lk := klo; lk <= khi; lk++ {
		for lj := Halo; lj < b.MJ-Halo; lj++ {
			base := b.LIdx(Halo, lj, lk)
			for li := 0; li < b.Own.NI(); li++ {
				fn(base + li)
			}
		}
	}
}

// Dissipation coefficients (JST): second- and fourth-difference scaling and
// the pressure-switch gain.
const (
	dissK2 = 0.50
	dissK4 = 1.0 / 48
)

// Approximate floating point operations per point for the flop accounting,
// by kernel. The counts tally multiplies and adds in the inner loops.
const (
	flopsFluxPerDir  = 50.0
	flopsDissPerDir  = 60.0
	flopsPressure    = 12.0
	flopsSpectral    = 20.0
	flopsEigenBuild  = 110.0
	flopsEigenApply  = 55.0
	flopsTriPerComp  = 16.0
	flopsBCPoint     = 30.0
	flopsViscPoint   = 130.0
	flopsBLPoint     = 90.0
	flopsMetricPoint = 160.0
	flopsForcePoint  = 40.0
)

// ComputeRHS fills b.RHS with Δt·J·R(Q) where R is the semi-discrete
// residual (negative flux divergence plus artificial dissipation, with the
// cached freestream correction subtracted). Non-updatable points get zero.
// It returns the number of floating-point operations performed, for the
// caller's virtual-time accounting.
//
// The kernel is fused: one pass caches primitives and fills pressure and
// spectral radii, then each direction fills the flux workspace from the
// cached primitives (Q is unchanged within this call, so Primitive would
// return identical bits) and accumulates the central difference plus JST
// dissipation in a single sweep over contiguous i-runs.
func (b *Block) ComputeRHS(dt float64) float64 {
	b.ensureScratch()
	s := b.scr
	n := b.NPointsLocal()
	ndir := 3
	if b.TwoD {
		ndir = 2
	}

	// Pressure, cached primitives and per-direction spectral radii.
	prim, prS := s.prim, s.pr
	sig0, sig1, sig2 := s.sig[0], s.sig[1], s.sig[2]
	met := b.Met
	xt, yt, zt := b.XT, b.YT, b.ZT
	for p := 0; p < n; p++ {
		rho, u, v, w, pr := Primitive(b.QAt(p))
		pm := prim[4*p : 4*p+4 : 4*p+4]
		pm[0], pm[1], pm[2], pm[3] = rho, u, v, w
		prS[p] = pr
		a := SoundSpeed(rho, pr)
		xtp, ytp, ztp := xt[p], yt[p], zt[p]
		mp := met[9*p : 9*p+9 : 9*p+9]
		{
			kx, ky, kz := mp[0], mp[1], mp[2]
			kt := -(kx*xtp + ky*ytp + kz*ztp)
			U := kt + kx*u + ky*v + kz*w
			sig0[p] = math.Abs(U) + a*math.Sqrt(kx*kx+ky*ky+kz*kz)
		}
		{
			kx, ky, kz := mp[3], mp[4], mp[5]
			kt := -(kx*xtp + ky*ytp + kz*ztp)
			U := kt + kx*u + ky*v + kz*w
			sig1[p] = math.Abs(U) + a*math.Sqrt(kx*kx+ky*ky+kz*kz)
		}
		if ndir == 3 {
			kx, ky, kz := mp[6], mp[7], mp[8]
			kt := -(kx*xtp + ky*ytp + kz*ztp)
			U := kt + kx*u + ky*v + kz*w
			sig2[p] = math.Abs(U) + a*math.Sqrt(kx*kx+ky*ky+kz*kz)
		}
	}

	rhs := b.RHS
	for p := 0; p < 5*n; p++ {
		rhs[p] = 0
	}

	flops := float64(n) * (flopsPressure + flopsSpectral*float64(ndir))

	q, fw, upd := b.Q, s.fw, s.upd
	klo, khi := b.kBounds()
	niOwn := b.Own.NI()
	for d := 0; d < ndir; d++ {
		// Fluxes at every stencil-relevant point, from the cached primitives.
		md := 3 * d
		for p := 0; p < n; p++ {
			mp := met[9*p+md : 9*p+md+3 : 9*p+md+3]
			kx, ky, kz := mp[0], mp[1], mp[2]
			kt := -(kx*xt[p] + ky*yt[p] + kz*zt[p])
			pm := prim[4*p : 4*p+4 : 4*p+4]
			pr := prS[p]
			U := kt + kx*pm[1] + ky*pm[2] + kz*pm[3]
			qp := q[5*p : 5*p+5 : 5*p+5]
			f := fw[5*p : 5*p+5 : 5*p+5]
			f[0] = pm[0] * U
			f[1] = qp[1]*U + kx*pr
			f[2] = qp[2]*U + ky*pr
			f[3] = qp[3]*U + kz*pr
			f[4] = (qp[4]+pr)*U - kt*pr
		}
		str := b.strideOf(d)
		sigd := s.sig[d]
		for lk := klo; lk <= khi; lk++ {
			for lj := Halo; lj < b.MJ-Halo; lj++ {
				p0 := b.LIdx(Halo, lj, lk)
				for p := p0; p < p0+niOwn; p++ {
					if !upd[p] {
						continue
					}
					// Central flux difference.
					rp := rhs[5*p : 5*p+5 : 5*p+5]
					fp := fw[5*(p+str) : 5*(p+str)+5]
					fm := fw[5*(p-str) : 5*(p-str)+5]
					rp[0] -= 0.5 * (fp[0] - fm[0])
					rp[1] -= 0.5 * (fp[1] - fm[1])
					rp[2] -= 0.5 * (fp[2] - fm[2])
					rp[3] -= 0.5 * (fp[3] - fm[3])
					rp[4] -= 0.5 * (fp[4] - fm[4])
					// JST dissipation: d_{+1/2} - d_{-1/2}.
					b.addDissipation(p, str, sigd)
				}
			}
		}
		flops += float64(n)*flopsFluxPerDir + float64(b.NOwned())*flopsDissPerDir
	}

	flops += b.addViscousRHS()

	// Freestream subtraction, Jacobian scaling and Δt.
	rhs0, jac := s.rhs0, b.Jac
	for lk := klo; lk <= khi; lk++ {
		for lj := Halo; lj < b.MJ-Halo; lj++ {
			p0 := b.LIdx(Halo, lj, lk)
			for p := p0; p < p0+niOwn; p++ {
				rp := rhs[5*p : 5*p+5 : 5*p+5]
				if !upd[p] {
					rp[0], rp[1], rp[2], rp[3], rp[4] = 0, 0, 0, 0, 0
					continue
				}
				jdt := jac[p] * dt
				r0 := rhs0[5*p : 5*p+5 : 5*p+5]
				rp[0] = (rp[0] + r0[0]) * jdt
				rp[1] = (rp[1] + r0[1]) * jdt
				rp[2] = (rp[2] + r0[2]) * jdt
				rp[3] = (rp[3] + r0[3]) * jdt
				rp[4] = (rp[4] + r0[4]) * jdt
			}
		}
	}
	flops += float64(b.NOwned()) * 12
	return flops
}

// addDissipation accumulates the scalar JST dissipation along the direction
// with stride str at point p into RHS. sigd is that direction's spectral
// radius field. Stencil validity degrades the fourth-difference term to
// second difference near holes and boundaries.
func (b *Block) addDissipation(p, str int, sigd []float64) {
	s := b.scr
	q, stv := b.Q, s.stv
	rp := b.RHS[5*p : 5*p+5 : 5*p+5]
	for side := 0; side < 2; side++ {
		// Interface p+1/2 (side 0) and p-1/2 (side 1).
		pl, pr := p, p+str
		sign := 1.0
		if side == 1 {
			pl, pr = p-str, p
			sign = -1
		}
		if !stv[pl] || !stv[pr] {
			continue
		}
		sigma := 0.5 * (sigd[pl] + sigd[pr])
		// Pressure switch.
		nu := pressureSensor(s, pl, str) // at pl
		if n2 := pressureSensor(s, pr, str); n2 > nu {
			nu = n2
		}
		eps2 := dissK2 * nu
		eps4 := dissK4 - eps2
		if eps4 < 0 {
			eps4 = 0
		}
		// Fourth-difference needs two more valid neighbors.
		pll, prr := pl-str, pr+str
		fourth := stv[pll] && stv[prr]
		ss := sign * sigma
		ql := q[5*pl : 5*pl+5 : 5*pl+5]
		qr := q[5*pr : 5*pr+5 : 5*pr+5]
		if fourth {
			qll := q[5*pll : 5*pll+5 : 5*pll+5]
			qrr := q[5*prr : 5*prr+5 : 5*prr+5]
			for c := 0; c < 5; c++ {
				d1 := qr[c] - ql[c]
				flux := eps2 * d1
				d3 := qrr[c] - 3*qr[c] + 3*ql[c] - qll[c]
				flux -= eps4 * d3
				rp[c] += ss * flux
			}
		} else {
			for c := 0; c < 5; c++ {
				d1 := qr[c] - ql[c]
				flux := eps2 * d1
				rp[c] += ss * flux
			}
		}
	}
}

// pressureSensor returns the normalized second difference of pressure at
// point p along stride str, the JST shock switch.
func pressureSensor(s *scratch, p, str int) float64 {
	pm, pp := p-str, p+str
	if !s.stv[pm] || !s.stv[pp] {
		return 0
	}
	num := math.Abs(s.pr[pp] - 2*s.pr[p] + s.pr[pm])
	den := s.pr[pp] + 2*s.pr[p] + s.pr[pm]
	if den < 1e-12 {
		return 0
	}
	return num / den
}
