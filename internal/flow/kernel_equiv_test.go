package flow

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"overd/internal/geom"
	"overd/internal/grid"
	"overd/internal/gridgen"
	"overd/internal/machine"
	"overd/internal/par"
)

// This file keeps naive, closure-based copies of the hot kernels — the
// forms the fused kernels replaced — and asserts bit-for-bit (==) agreement
// on randomized blocks: 2-D and 3-D, with random hole/fringe masks and
// periodic wrap seams. Any floating-point reassociation or reordering in a
// fused kernel shows up here as a ULP diff long before it would drift the
// virtual-clock golden file.

// refScratch holds the reference kernels' private workspace so they never
// touch the block's scratch beyond reading the shared masks.
type refScratch struct {
	fw   []float64
	pr   []float64
	sig  [3][]float64
	rhs0 []float64
}

func newRefScratch(n int) *refScratch {
	rs := &refScratch{
		fw:   make([]float64, 5*n),
		pr:   make([]float64, n),
		rhs0: make([]float64, 5*n),
	}
	for d := 0; d < 3; d++ {
		rs.sig[d] = make([]float64, n)
	}
	return rs
}

// refComputeRHS is the pre-fusion ComputeRHS: per-point closure dispatch,
// array-returning Flux calls, per-direction passes. Writes Δt·J·R into out.
func refComputeRHS(b *Block, rs *refScratch, dt float64, out []float64) {
	s := b.scr
	n := b.NPointsLocal()
	ndir := 3
	if b.TwoD {
		ndir = 2
	}

	// Freestream residual, old form.
	qf := b.FS.Conserved()
	for p := 0; p < 5*n; p++ {
		rs.rhs0[p] = 0
	}
	for d := 0; d < ndir; d++ {
		for p := 0; p < n; p++ {
			kx, ky, kz := b.Met[9*p+3*d], b.Met[9*p+3*d+1], b.Met[9*p+3*d+2]
			kt := -(kx*b.XT[p] + ky*b.YT[p] + kz*b.ZT[p])
			f := Flux(qf, kx, ky, kz, kt)
			copy(rs.fw[5*p:5*p+5], f[:])
		}
		str := b.strideOf(d)
		b.eachInterior(func(p int) {
			for c := 0; c < 5; c++ {
				rs.rhs0[5*p+c] += 0.5 * (rs.fw[5*(p+str)+c] - rs.fw[5*(p-str)+c])
			}
		})
	}

	// Pressure and per-direction spectral radii, old per-point form.
	for p := 0; p < n; p++ {
		q := b.QAt(p)
		rho, u, v, w, pr := Primitive(q)
		rs.pr[p] = pr
		a := SoundSpeed(rho, pr)
		for d := 0; d < ndir; d++ {
			kx, ky, kz := b.Met[9*p+3*d], b.Met[9*p+3*d+1], b.Met[9*p+3*d+2]
			kt := -(kx*b.XT[p] + ky*b.YT[p] + kz*b.ZT[p])
			U := kt + kx*u + ky*v + kz*w
			rs.sig[d][p] = math.Abs(U) + a*math.Sqrt(kx*kx+ky*ky+kz*kz)
		}
	}

	for p := 0; p < 5*n; p++ {
		out[p] = 0
	}
	for d := 0; d < ndir; d++ {
		for p := 0; p < n; p++ {
			kx, ky, kz := b.Met[9*p+3*d], b.Met[9*p+3*d+1], b.Met[9*p+3*d+2]
			kt := -(kx*b.XT[p] + ky*b.YT[p] + kz*b.ZT[p])
			f := Flux(b.QAt(p), kx, ky, kz, kt)
			copy(rs.fw[5*p:5*p+5], f[:])
		}
		str := b.strideOf(d)
		b.eachInterior(func(p int) {
			if !s.upd[p] {
				return
			}
			for c := 0; c < 5; c++ {
				out[5*p+c] -= 0.5 * (rs.fw[5*(p+str)+c] - rs.fw[5*(p-str)+c])
			}
			refAddDissipation(b, rs, out, p, str, d)
		})
	}

	refAddViscousRHS(b, rs, out)

	b.eachInterior(func(p int) {
		if !s.upd[p] {
			for c := 0; c < 5; c++ {
				out[5*p+c] = 0
			}
			return
		}
		jdt := b.Jac[p] * dt
		for c := 0; c < 5; c++ {
			out[5*p+c] = (out[5*p+c] + rs.rhs0[5*p+c]) * jdt
		}
	})
}

// refAddDissipation is the old two-sided JST accumulation.
func refAddDissipation(b *Block, rs *refScratch, out []float64, p, str, d int) {
	s := b.scr
	for side := 0; side < 2; side++ {
		pl, pr := p, p+str
		sign := 1.0
		if side == 1 {
			pl, pr = p-str, p
			sign = -1
		}
		if !s.stv[pl] || !s.stv[pr] {
			continue
		}
		sigma := 0.5 * (rs.sig[d][pl] + rs.sig[d][pr])
		nu := refPressureSensor(b, rs, pl, str)
		if n2 := refPressureSensor(b, rs, pr, str); n2 > nu {
			nu = n2
		}
		eps2 := dissK2 * nu
		eps4 := dissK4 - eps2
		if eps4 < 0 {
			eps4 = 0
		}
		pll, prr := pl-str, pr+str
		fourth := s.stv[pll] && s.stv[prr]
		for c := 0; c < 5; c++ {
			d1 := b.Q[5*pr+c] - b.Q[5*pl+c]
			flux := eps2 * d1
			if fourth {
				d3 := b.Q[5*prr+c] - 3*b.Q[5*pr+c] + 3*b.Q[5*pl+c] - b.Q[5*pll+c]
				flux -= eps4 * d3
			}
			out[5*p+c] += sign * sigma * flux
		}
	}
}

func refPressureSensor(b *Block, rs *refScratch, p, str int) float64 {
	s := b.scr
	pm, pp := p-str, p+str
	if !s.stv[pm] || !s.stv[pp] {
		return 0
	}
	num := math.Abs(rs.pr[pp] - 2*rs.pr[p] + rs.pr[pm])
	den := rs.pr[pp] + 2*rs.pr[p] + rs.pr[pm]
	if den < 1e-12 {
		return 0
	}
	return num / den
}

// refAddViscousRHS is the old thin-layer viscous accumulation.
func refAddViscousRHS(b *Block, rs *refScratch, out []float64) {
	mu := b.FS.MuCoef()
	if mu == 0 || !b.G.Viscous {
		return
	}
	s := b.scr
	ndir := 3
	if b.TwoD {
		ndir = 2
	}
	for d := 0; d < ndir; d++ {
		if !b.viscDirs[d] {
			continue
		}
		str := b.strideOf(d)
		ilo, ihi := Halo, b.MI-Halo-1
		jlo, jhi := Halo, b.MJ-Halo-1
		klo, khi := b.kBounds()
		switch d {
		case 0:
			ilo--
		case 1:
			jlo--
		default:
			klo--
		}
		for lk := klo; lk <= khi; lk++ {
			for lj := jlo; lj <= jhi; lj++ {
				for li := ilo; li <= ihi; li++ {
					refViscFlux(b, rs, b.LIdx(li, lj, lk), str, d, mu)
				}
			}
		}
		b.eachInterior(func(p int) {
			if !s.upd[p] {
				return
			}
			for c := 0; c < 5; c++ {
				out[5*p+c] += rs.fw[5*p+c] - rs.fw[5*(p-str)+c]
			}
		})
	}
}

func refViscFlux(b *Block, rs *refScratch, p, str, d int, mu float64) {
	s := b.scr
	if !s.stv[p] || !s.stv[p+str] {
		for c := 0; c < 5; c++ {
			rs.fw[5*p+c] = 0
		}
		return
	}
	q0 := b.QAt(p)
	q1 := b.QAt(p + str)
	rho0, u0, v0, w0, p0 := Primitive(q0)
	rho1, u1, v1, w1, p1 := Primitive(q1)

	kx := 0.5 * (b.Met[9*p+3*d] + b.Met[9*(p+str)+3*d])
	ky := 0.5 * (b.Met[9*p+3*d+1] + b.Met[9*(p+str)+3*d+1])
	kz := 0.5 * (b.Met[9*p+3*d+2] + b.Met[9*(p+str)+3*d+2])
	jm := 0.5 * (b.Jac[p] + b.Jac[p+str])

	du, dv, dw := u1-u0, v1-v0, w1-w0
	a20 := Gamma * p0 / rho0
	a21 := Gamma * p1 / rho1
	da2 := a21 - a20

	mut := 0.0
	if b.MuT != nil {
		mut = 0.5 * (b.MuT[p] + b.MuT[p+str])
	}
	muMom := mu * (1 + mut)
	muEne := mu * (1/Pr + mut/PrT) / (Gamma - 1)

	alpha := (kx*kx + ky*ky + kz*kz) * jm
	beta := (kx*du + ky*dv + kz*dw) * jm

	um, vm, wm := 0.5*(u0+u1), 0.5*(v0+v1), 0.5*(w0+w1)

	f1 := muMom * (alpha*du + beta*kx/3)
	f2 := muMom * (alpha*dv + beta*ky/3)
	f3 := muMom * (alpha*dw + beta*kz/3)
	f4 := muMom*(alpha*(um*du+vm*dv+wm*dw)+beta*(kx*um+ky*vm+kz*wm)/3) +
		muEne*alpha*da2

	rs.fw[5*p] = 0
	rs.fw[5*p+1] = f1
	rs.fw[5*p+2] = f2
	rs.fw[5*p+3] = f3
	rs.fw[5*p+4] = f4
}

// refSolveADI is the old closure-based sweep on an isolated block (no
// cross-rank pipeline), operating on dq in place. lam and cpAll are the
// caller's workspaces (5 per point each).
func refSolveADI(b *Block, dt float64, dq, lam, cpAll []float64) {
	ndir := 3
	if b.TwoD {
		ndir = 2
	}
	for d := 0; d < ndir; d++ {
		refSweepDirection(b, d, dt, dq, lam, cpAll)
	}
}

func refSweepDirection(b *Block, d int, dt float64, dq, lam, cpAll []float64) {
	s := b.scr
	var e Eigen

	// Pointwise: W = T⁻¹ · DQ, stash eigenvalues.
	b.eachInterior(func(p int) {
		kx, ky, kz := b.Met[9*p+3*d], b.Met[9*p+3*d+1], b.Met[9*p+3*d+2]
		kt := -(kx*b.XT[p] + ky*b.YT[p] + kz*b.ZT[p])
		e.Set(b.QAt(p), kx, ky, kz, kt)
		w := e.MulTi([5]float64{dq[5*p], dq[5*p+1], dq[5*p+2], dq[5*p+3], dq[5*p+4]})
		copy(dq[5*p:5*p+5], w[:])
		jdt := b.Jac[p] * dt
		for c := 0; c < 5; c++ {
			lam[5*p+c] = e.Lam[c] * jdt
		}
	})

	// Scalar tridiagonal solves, old closure-based line enumeration, no
	// cross-rank pipeline (isolated block).
	nLines, lineAt := refLineSet(b, d)
	for ln := 0; ln < nLines; ln++ {
		base, stride, count := lineAt(ln)
		for c := 0; c < 5; c++ {
			cPrev, dPrev := 0.0, 0.0
			for m := 0; m < count; m++ {
				p := base + m*stride
				var am, bm, cm, rm float64
				if !s.upd[p] {
					am, bm, cm, rm = 0, 1, 0, 0
				} else {
					l := lam[5*p+c]
					lp := 0.5 * (l + abs(l))
					lm := 0.5 * (l - abs(l))
					eps := implicitEps * dt * b.Jac[p] * s.sig[d][p]
					am = -lp - eps
					bm = 1 + (lp - lm) + 2*eps
					cm = lm - eps
					rm = dq[5*p+c]
				}
				den := bm - am*cPrev
				if den == 0 {
					den = 1e-30
				}
				cPrev = cm / den
				dPrev = (rm - am*dPrev) / den
				cpAll[5*p+c] = cPrev
				dq[5*p+c] = dPrev
			}
			xNext := 0.0
			for m := count - 1; m >= 0; m-- {
				p := base + m*stride
				x := dq[5*p+c] - cpAll[5*p+c]*xNext
				dq[5*p+c] = x
				xNext = x
			}
		}
	}

	// Pointwise: DQ = T · W.
	b.eachInterior(func(p int) {
		kx, ky, kz := b.Met[9*p+3*d], b.Met[9*p+3*d+1], b.Met[9*p+3*d+2]
		kt := -(kx*b.XT[p] + ky*b.YT[p] + kz*b.ZT[p])
		e.Set(b.QAt(p), kx, ky, kz, kt)
		w := e.MulT([5]float64{dq[5*p], dq[5*p+1], dq[5*p+2], dq[5*p+3], dq[5*p+4]})
		copy(dq[5*p:5*p+5], w[:])
	})
}

// refLineSet is the old closure-returning line enumerator.
func refLineSet(b *Block, d int) (nLines int, lineStart func(idx int) (base, stride, count int)) {
	klo, khi := b.kBounds()
	nk := khi - klo + 1
	switch d {
	case 0:
		nj := b.MJ - 2*Halo
		return nj * nk, func(idx int) (int, int, int) {
			lj := Halo + idx%nj
			lk := klo + idx/nj
			return b.LIdx(Halo, lj, lk), 1, b.Own.NI()
		}
	case 1:
		ni := b.MI - 2*Halo
		return ni * nk, func(idx int) (int, int, int) {
			li := Halo + idx%ni
			lk := klo + idx/ni
			return b.LIdx(li, Halo, lk), b.MI, b.Own.NJ()
		}
	default:
		ni := b.MI - 2*Halo
		nj := b.MJ - 2*Halo
		return ni * nj, func(idx int) (int, int, int) {
			li := Halo + idx%ni
			lj := Halo + idx/ni
			return b.LIdx(li, lj, Halo), b.MI * b.MJ, b.Own.NK()
		}
	}
}

// cmpBits asserts bit-for-bit equality of two float64 slices.
func cmpBits(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", name, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: index %d: fused %v (%#016x) != reference %v (%#016x)",
				name, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

// equivCase builds one randomized block configuration.
type equivCase struct {
	name    string
	build   func() *grid.Grid
	viscous [3]bool
	holes   bool
}

func equivCases() []equivCase {
	return []equivCase{
		{
			name:    "airfoil-2d-wrap-viscous",
			build:   func() *grid.Grid { g := gridgen.AirfoilOGrid(0, "airfoil", 64, 24, 3); g.Turbulent = true; return g },
			viscous: [3]bool{false, true, false},
			holes:   false,
		},
		{
			name:    "airfoil-2d-holes",
			build:   func() *grid.Grid { return gridgen.AirfoilOGrid(0, "airfoil", 48, 20, 2.5) },
			viscous: [3]bool{false, true, false},
			holes:   true,
		},
		{
			name: "body-3d-wrap-viscous",
			build: func() *grid.Grid {
				return gridgen.BodyOfRevolutionGrid(0, "store", 20, 12, 10, gridgen.OgiveProfile(3, 0.25), 1.5)
			},
			viscous: [3]bool{true, true, true},
			holes:   true,
		},
		{
			name: "cartesian-3d-inviscid",
			build: func() *grid.Grid {
				return gridgen.CartesianBox(0, "bg", 16, 12, 10,
					geom.Box{Min: geom.Vec3{X: -2, Y: -2, Z: -2}, Max: geom.Vec3{X: 2, Y: 2, Z: 2}})
			},
			holes: true,
		},
	}
}

// buildEquivBlock constructs and randomizes a block: perturbed conserved
// state everywhere (ghosts included), random grid speeds, and optionally
// random hole/fringe marks in the interior.
func buildEquivBlock(tc equivCase, seed int64) *Block {
	g := tc.build()
	fs := Freestream{Mach: 0.8, Alpha: 0.02, Re: 1e6}
	b := NewBlock(g, g.Full(), fs)
	b.SetViscousDirs(tc.viscous)
	b.ensureScratch()

	rng := rand.New(rand.NewSource(seed))
	qf := fs.Conserved()
	n := b.NPointsLocal()
	for p := 0; p < n; p++ {
		for c := 0; c < 5; c++ {
			b.Q[5*p+c] = qf[c] * (1 + 0.2*(rng.Float64()-0.5))
		}
		b.XT[p] = 0.05 * (rng.Float64() - 0.5)
		b.YT[p] = 0.05 * (rng.Float64() - 0.5)
		b.ZT[p] = 0.05 * (rng.Float64() - 0.5)
	}
	// The cached freestream residual was computed with zero grid speeds;
	// refresh it so both kernels see the randomized XT/YT/ZT.
	b.RefreshFreestreamResidual()
	if tc.holes {
		for p := 0; p < n; p++ {
			switch r := rng.Float64(); {
			case r < 0.03:
				b.IBl[p] = grid.IBHole
			case r < 0.07:
				b.IBl[p] = grid.IBFringe
			}
		}
		b.classifyPoints()
	}
	if b.MuT != nil {
		b.ComputeTurbulence()
	}
	return b
}

// TestKernelEquivalence runs the fused kernels against the naive references
// on every randomized configuration and demands exact agreement.
func TestKernelEquivalence(t *testing.T) {
	const dt = 0.01
	for _, tc := range equivCases() {
		for trial := 0; trial < 3; trial++ {
			t.Run(fmt.Sprintf("%s/trial%d", tc.name, trial), func(t *testing.T) {
				b := buildEquivBlock(tc, int64(1000*trial+7))
				n := b.NPointsLocal()
				rs := newRefScratch(n)

				// RHS: reference first (reads only Q/metrics/masks).
				refRHS := make([]float64, 5*n)
				refComputeRHS(b, rs, dt, refRHS)
				b.ComputeRHS(dt)
				cmpBits(t, "freestream residual", b.scr.rhs0, rs.rhs0)
				cmpBits(t, "ComputeRHS", b.RHS, refRHS)

				// ADI: both start from the same RHS; the reference uses the
				// sig fields ComputeRHS just filled (identical by the check
				// above since rs.sig was compared implicitly through RHS).
				refDQ := append([]float64(nil), b.RHS...)
				lam := make([]float64, 5*n)
				cpAll := make([]float64, 5*n)
				refSolveADI(b, dt, refDQ, lam, cpAll)
				w := par.NewWorld(1, machine.SP2())
				w.Run(func(r *par.Rank) {
					b.SolveADI(r, dt)
				})
				cmpBits(t, "SolveADI", b.DQ, refDQ)

				// ApplyUpdate.
				refQ := append([]float64(nil), b.Q...)
				refApplyUpdate(b, refQ)
				b.ApplyUpdate()
				cmpBits(t, "ApplyUpdate", b.Q, refQ)

				// Halo pack/unpack on every live face.
				ndim := 3
				if b.TwoD {
					ndim = 2
				}
				rng := rand.New(rand.NewSource(99))
				for dim := 0; dim < ndim; dim++ {
					for side := 0; side < 2; side++ {
						got := b.packFace(nil, dim, side)
						want := refPackFace(b, nil, dim, side)
						cmpBits(t, fmt.Sprintf("packFace d%ds%d", dim, side), got, want)

						data := make([]float64, len(got))
						for i := range data {
							data[i] = rng.NormFloat64()
						}
						refQ2 := append([]float64(nil), b.Q...)
						refUnpackFace(b, refQ2, dim, side, data)
						b.unpackFace(dim, side, data)
						cmpBits(t, fmt.Sprintf("unpackFace d%ds%d", dim, side), b.Q, refQ2)
					}
				}
			})
		}
	}
}

// refApplyUpdate is the old closure-based update, writing into q.
func refApplyUpdate(b *Block, q []float64) {
	s := b.scr
	b.eachInterior(func(p int) {
		if !s.upd[p] {
			return
		}
		for c := 0; c < 5; c++ {
			q[5*p+c] += b.DQ[5*p+c]
		}
		if b.TwoD {
			q[5*p+3] = 0
		}
		if q[5*p] < 1e-6 {
			q[5*p] = 1e-6
		}
		var qp [5]float64
		copy(qp[:], q[5*p:5*p+5])
		rho, u, v, w, pr := Primitive(qp)
		if pr <= 1e-8 {
			pr = 1e-8
			q[5*p+4] = pr/(Gamma-1) + 0.5*rho*(u*u+v*v+w*w)
		}
	})
}

// refPackFace is the old per-point halo pack.
func refPackFace(b *Block, out []float64, dim, side int) []float64 {
	ilo, ihi, jlo, jhi, klo, khi := b.faceSlabBounds(dim, side, true)
	for lk := klo; lk <= khi; lk++ {
		for lj := jlo; lj <= jhi; lj++ {
			for li := ilo; li <= ihi; li++ {
				p := b.LIdx(li, lj, lk)
				out = append(out, b.Q[5*p:5*p+5]...)
			}
		}
	}
	return out
}

// refUnpackFace is the old per-point halo unpack, writing into q.
func refUnpackFace(b *Block, q []float64, dim, side int, data []float64) {
	ilo, ihi, jlo, jhi, klo, khi := b.faceSlabBounds(dim, side, false)
	pos := 0
	for lk := klo; lk <= khi; lk++ {
		for lj := jlo; lj <= jhi; lj++ {
			for li := ilo; li <= ihi; li++ {
				p := b.LIdx(li, lj, lk)
				copy(q[5*p:5*p+5], data[pos:pos+5])
				pos += 5
			}
		}
	}
}
