package flow

import (
	"overd/internal/par"
)

// faceMsg is the pooled envelope for one halo plane. The receiver copies
// vals into its ghost layer and returns the envelope to facePool, so
// steady-state exchanges allocate nothing per face.
type faceMsg struct {
	vals []float64
}

// facePool recycles faceMsg envelopes across all ranks and blocks.
var facePool par.Pool[faceMsg]

// ExchangeHalo swaps the Halo-deep boundary planes of Q with the face
// neighbors of this block (including periodic wrap neighbors). All sends
// are posted first (asynchronous, as in the MPI original), then receives
// are matched by face. Returns flops (zero — pure communication — but pack
// and unpack charge a small per-point cost through r.Elapse by the caller's
// convention of counting copies as memory traffic, not flops).
func (b *Block) ExchangeHalo(r *par.Rank) {
	type post struct {
		dim, side int
		nbr       Neighbor
	}
	// At most 6 faces; a fixed array keeps the post list off the heap.
	var posts [6]post
	nposts, haloBytes := 0, 0
	for dim := 0; dim < 3; dim++ {
		if b.TwoD && dim == 2 {
			continue
		}
		for side := 0; side < 2; side++ {
			nbr := b.Nbr[dim][side]
			if nbr.Rank < 0 {
				continue
			}
			posts[nposts] = post{dim, side, nbr}
			nposts++
			fm := b.getFace(r)
			fm.vals = b.packFace(fm.vals[:0], dim, side)
			// Tag encodes the receiving face so a 2-rank periodic ring
			// can distinguish its two connections to the same peer.
			// Reliable send: halo planes are required for correctness, so
			// under fault injection a dropped plane is retransmitted (with
			// backed-off ack timeouts) rather than lost.
			tag := par.TagHalo + par.Tag(10*dim+(1-side))
			haloBytes += 8 * len(fm.vals)
			r.SendReliable(nbr.Rank, tag, fm, 8*len(fm.vals))
		}
	}
	publishHaloMetrics(r, nposts, haloBytes)
	faulty := r.Faulty()
	for _, p := range posts[:nposts] {
		tag := par.TagHalo + par.Tag(10*p.dim+p.side)
		if faulty {
			// A plane lost beyond the retry budget degrades to reusing the
			// previous ghost values (first-order in time) instead of
			// deadlocking or killing the run.
			if m, ok := r.RecvTimeout(p.nbr.Rank, tag, 2*r.Model().LatencySec); ok {
				fm := m.Data.(*faceMsg)
				b.unpackFace(p.dim, p.side, fm.vals)
				b.putFace(r, fm)
			}
			continue
		}
		m := r.Recv(p.nbr.Rank, tag)
		fm := m.Data.(*faceMsg)
		b.unpackFace(p.dim, p.side, fm.vals)
		b.putFace(r, fm)
	}
}

// faceSlabBounds returns the local index bounds of a Halo-deep slab on the
// given face: owned boundary planes when owned=true, ghost planes otherwise.
func (b *Block) faceSlabBounds(dim, side int, owned bool) (ilo, ihi, jlo, jhi, klo, khi int) {
	ilo, ihi = Halo, b.MI-Halo-1
	jlo, jhi = Halo, b.MJ-Halo-1
	if b.TwoD {
		klo, khi = 0, 0
	} else {
		klo, khi = Halo, b.MK-Halo-1
	}
	set := func(lo, hi int) (int, int) {
		if owned {
			if side == 0 {
				return lo, lo + Halo - 1
			}
			return hi - Halo + 1, hi
		}
		if side == 0 {
			return lo - Halo, lo - 1
		}
		return hi + 1, hi + Halo
	}
	switch dim {
	case 0:
		ilo, ihi = set(ilo, ihi)
	case 1:
		jlo, jhi = set(jlo, jhi)
	default:
		klo, khi = set(klo, khi)
	}
	return
}

// packFace appends the owned boundary slab of face (dim, side) of Q to out
// (normally a recycled envelope buffer) and returns it. The innermost (li)
// direction is contiguous in both Q and the wire layout, so each (lj,lk)
// row is one bulk append instead of a per-point copy.
func (b *Block) packFace(out []float64, dim, side int) []float64 {
	ilo, ihi, jlo, jhi, klo, khi := b.faceSlabBounds(dim, side, true)
	run := 5 * (ihi - ilo + 1)
	if n := (ihi - ilo + 1) * (jhi - jlo + 1) * (khi - klo + 1); cap(out) < 5*n {
		out = make([]float64, 0, 5*n)
	}
	for lk := klo; lk <= khi; lk++ {
		for lj := jlo; lj <= jhi; lj++ {
			p0 := 5 * b.LIdx(ilo, lj, lk)
			out = append(out, b.Q[p0:p0+run]...)
		}
	}
	return out
}

// unpackFace writes a received slab into the ghost layers of face
// (dim, side), one contiguous row per copy.
func (b *Block) unpackFace(dim, side int, data []float64) {
	ilo, ihi, jlo, jhi, klo, khi := b.faceSlabBounds(dim, side, false)
	run := 5 * (ihi - ilo + 1)
	pos := 0
	for lk := klo; lk <= khi; lk++ {
		for lj := jlo; lj <= jhi; lj++ {
			p0 := 5 * b.LIdx(ilo, lj, lk)
			copy(b.Q[p0:p0+run], data[pos:pos+run])
			pos += run
		}
	}
}
