package flow

import (
	"overd/internal/geom"
	"overd/internal/grid"
)

// ApplyBCs fills the physical boundary values on every grid face owned (in
// part) by this block: walls, farfield, symmetry and extrapolation faces.
// Overset faces are left for the connectivity module; periodic faces are
// handled by the halo exchange. Ghost layers beyond physical faces receive
// the boundary value so dissipation stencils stay defined. Returns flops.
func (b *Block) ApplyBCs() float64 {
	flops := 0.0
	for f := grid.IMin; f <= grid.KMax; f++ {
		if b.TwoD && (f == grid.KMin || f == grid.KMax) {
			continue
		}
		bc := b.G.BCs[f]
		if bc == grid.BCPeriodic || bc == grid.BCOverset {
			continue
		}
		if !b.ownsFace(f) {
			continue
		}
		flops += b.applyFaceBC(f, bc)
	}
	return flops
}

// ownsFace reports whether this block's owned box touches grid face f.
func (b *Block) ownsFace(f grid.Face) bool {
	g := b.G
	switch f {
	case grid.IMin:
		return b.Own.ILo == 0
	case grid.IMax:
		return b.Own.IHi == g.NI-1
	case grid.JMin:
		return b.Own.JLo == 0
	case grid.JMax:
		return b.Own.JHi == g.NJ-1
	case grid.KMin:
		return b.TwoD || b.Own.KLo == 0
	default:
		return b.TwoD || b.Own.KHi == g.NK-1
	}
}

// faceInfo returns iteration bounds over the local boundary points of face
// f, the local coordinate value on the face, the in-domain direction
// stride, and the metric row index of the face-normal direction.
func (b *Block) faceInfo(f grid.Face) (dim int, fixed int, inward int) {
	switch f {
	case grid.IMin:
		return 0, Halo, 1
	case grid.IMax:
		return 0, b.MI - Halo - 1, -1
	case grid.JMin:
		return 1, Halo, 1
	case grid.JMax:
		return 1, b.MJ - Halo - 1, -1
	case grid.KMin:
		return 2, Halo, 1
	default:
		return 2, b.MK - Halo - 1, -1
	}
}

// eachFacePoint calls fn with the flat index of every owned point on face f
// and the stride pointing into the domain.
func (b *Block) eachFacePoint(f grid.Face, fn func(p, inStride int)) {
	dim, fixed, inward := b.faceInfo(f)
	stride := b.strideOf(dim) * inward
	klo, khi := b.kBounds()
	switch dim {
	case 0:
		for lk := klo; lk <= khi; lk++ {
			for lj := Halo; lj < b.MJ-Halo; lj++ {
				fn(b.LIdx(fixed, lj, lk), stride)
			}
		}
	case 1:
		for lk := klo; lk <= khi; lk++ {
			for li := Halo; li < b.MI-Halo; li++ {
				fn(b.LIdx(li, fixed, lk), stride)
			}
		}
	default:
		for lj := Halo; lj < b.MJ-Halo; lj++ {
			for li := Halo; li < b.MI-Halo; li++ {
				fn(b.LIdx(li, lj, fixed), stride)
			}
		}
	}
}

func (b *Block) applyFaceBC(f grid.Face, bc grid.BC) float64 {
	dim, _, _ := b.faceInfo(f)
	count := 0
	qf := b.FS.Conserved()
	viscous := b.G.Viscous && b.FS.Re > 0
	b.eachFacePoint(f, func(p, in int) {
		count++
		switch bc {
		case grid.BCWall:
			b.wallBC(p, in, dim, viscous)
		case grid.BCFarfield:
			b.farfieldBC(p, in, dim, qf)
		case grid.BCSymmetry:
			b.symmetryBC(p, in, dim)
		case grid.BCExtrap:
			copy(b.Q[5*p:5*p+5], b.Q[5*(p+in):5*(p+in)+5])
		}
		// Fill ghost layers beyond the face with the boundary value.
		for gl := 1; gl <= Halo; gl++ {
			gp := p - gl*in
			copy(b.Q[5*gp:5*gp+5], b.Q[5*p:5*p+5])
		}
	})
	return float64(count) * flopsBCPoint
}

// wallBC imposes the solid-surface condition at boundary point p with
// in-domain stride `in`. Inviscid grids slip (the velocity component normal
// to the wall, relative to the wall's own motion, is removed); viscous
// grids stick (fluid velocity equals the wall velocity). Pressure and
// density follow the zero-normal-gradient approximation.
func (b *Block) wallBC(p, in, dim int, viscous bool) {
	pi := p + in // first interior point
	rho, u, v, w, _ := Primitive(b.QAt(pi))
	pr := b.scrPressure(pi)
	wall := geom.Vec3{X: b.XT[p], Y: b.YT[p], Z: b.ZT[p]}
	var vel geom.Vec3
	if viscous {
		vel = wall
	} else {
		n := geom.Vec3{
			X: b.Met[9*p+3*dim],
			Y: b.Met[9*p+3*dim+1],
			Z: b.Met[9*p+3*dim+2],
		}.Normalized()
		rel := geom.Vec3{X: u, Y: v, Z: w}.Sub(wall)
		vel = rel.Sub(n.Scale(rel.Dot(n))).Add(wall)
	}
	if b.TwoD {
		vel.Z = 0
	}
	e := pr/(Gamma-1) + 0.5*rho*vel.Norm2()
	b.SetQ(p, [5]float64{rho, rho * vel.X, rho * vel.Y, rho * vel.Z, e})
}

// scrPressure returns pressure at local point p (from scratch when fresh,
// else recomputed).
func (b *Block) scrPressure(p int) float64 {
	_, _, _, _, pr := Primitive(b.QAt(p))
	return pr
}

// farfieldBC imposes a simple characteristic far-field: freestream on
// inflow, first-order extrapolation on outflow, judged by the sign of the
// boundary-normal relative velocity.
func (b *Block) farfieldBC(p, in, dim int, qf [5]float64) {
	pi := p + in
	_, u, v, w, _ := Primitive(b.QAt(pi))
	// Inward-pointing normal (toward the domain interior).
	n := geom.Vec3{
		X: b.Met[9*p+3*dim],
		Y: b.Met[9*p+3*dim+1],
		Z: b.Met[9*p+3*dim+2],
	}.Normalized()
	if in < 0 {
		n = n.Scale(-1)
	}
	vn := n.X*u + n.Y*v + n.Z*w
	if vn >= 0 {
		// Flow entering the domain: freestream.
		b.SetQ(p, qf)
	} else {
		// Outflow: extrapolate.
		copy(b.Q[5*p:5*p+5], b.Q[5*pi:5*pi+5])
	}
}

// symmetryBC mirrors the interior state, zeroing the normal velocity.
func (b *Block) symmetryBC(p, in, dim int) {
	pi := p + in
	rho, u, v, w, pr := Primitive(b.QAt(pi))
	n := geom.Vec3{
		X: b.Met[9*p+3*dim],
		Y: b.Met[9*p+3*dim+1],
		Z: b.Met[9*p+3*dim+2],
	}.Normalized()
	vel := geom.Vec3{X: u, Y: v, Z: w}
	vel = vel.Sub(n.Scale(vel.Dot(n)))
	e := pr/(Gamma-1) + 0.5*rho*vel.Norm2()
	b.SetQ(p, [5]float64{rho, rho * vel.X, rho * vel.Y, rho * vel.Z, e})
}

// Forces integrates the pressure and (on viscous grids) shear contributions
// over the wall faces owned by this block, returning force and moment about
// ref. The force uses the nondimensional convention F = ∮ (p - p∞) n̂ dA on
// the body, with n̂ the outward body normal.
func (b *Block) Forces(ref geom.Vec3) (force, moment geom.Vec3, flops float64) {
	pinf := b.FS.Pressure()
	mu := b.FS.MuCoef()
	for f := grid.IMin; f <= grid.KMax; f++ {
		if b.G.BCs[f] != grid.BCWall || !b.ownsFace(f) {
			continue
		}
		if b.TwoD && (f == grid.KMin || f == grid.KMax) {
			continue
		}
		dim, _, _ := b.faceInfo(f)
		b.eachFacePoint(f, func(p, in int) {
			flops += flopsForcePoint
			// Face area vector: the scaled metric row times the sign that
			// points away from the fluid (outward from the body).
			s := geom.Vec3{
				X: b.Met[9*p+3*dim],
				Y: b.Met[9*p+3*dim+1],
				Z: b.Met[9*p+3*dim+2],
			}
			if in < 0 {
				s = s.Scale(-1) // orient toward the fluid: the outward body normal
			}
			pr := b.scrPressure(p)
			df := s.Scale(-(pr - pinf)) // pressure pushes opposite the body normal
			if mu > 0 && b.G.Viscous {
				// Wall shear: tangential velocity gradient at the wall.
				pi := p + in
				_, u1, v1, w1, _ := Primitive(b.QAt(pi))
				wallV := geom.Vec3{X: b.XT[p], Y: b.YT[p], Z: b.ZT[p]}
				dv := geom.Vec3{X: u1, Y: v1, Z: w1}.Sub(wallV)
				n := s.Normalized()
				dvT := dv.Sub(n.Scale(dv.Dot(n)))
				// Gradient scale: |∇η| = |S|·J.
				gs := s.Norm() * b.Jac[p]
				df = df.Add(dvT.Scale(mu * gs * s.Norm()))
			}
			pos := geom.Vec3{X: b.XL[p], Y: b.YL[p], Z: b.ZL[p]}
			force = force.Add(df)
			moment = moment.Add(pos.Sub(ref).Cross(df))
		})
	}
	return force, moment, flops
}
