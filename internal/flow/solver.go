package flow

import (
	"math"

	"overd/internal/grid"
	"overd/internal/par"
)

// DefaultCFL is the implicit-scheme timestep factor used when a case does
// not specify its own. The paper notes the timestep is "most often governed
// by stability conditions of the flow solver" and chosen so donor cells
// move at most one receiver cell per step.
const DefaultCFL = 5.0

// MaxDTLocal returns the largest stable local timestep of this block,
// CFL / max(σξ+ση+σζ), with the Jacobian-scaled spectral radii. The caller
// reduces this across ranks (AllReduce) for the global timestep.
func (b *Block) MaxDTLocal(cfl float64) float64 {
	b.ensureScratch()
	s := b.scr
	minDT := math.Inf(1)
	ndir := 3
	if b.TwoD {
		ndir = 2
	}
	b.eachInterior(func(p int) {
		if !s.upd[p] {
			return
		}
		sum := 0.0
		q := b.QAt(p)
		for d := 0; d < ndir; d++ {
			kx, ky, kz := b.Met[9*p+3*d], b.Met[9*p+3*d+1], b.Met[9*p+3*d+2]
			kt := -(kx*b.XT[p] + ky*b.YT[p] + kz*b.ZT[p])
			sum += SpectralRadius(q, kx, ky, kz, kt)
		}
		sum *= b.Jac[p] // convert to inverse time: σ per index unit × J
		if sum > 0 {
			if dt := cfl / sum; dt < minDT {
				minDT = dt
			}
		}
	})
	return minDT
}

// FlowStep advances the block one implicit timestep. It performs, in order:
// halo exchange of Q, physical boundary conditions, the Baldwin-Lomax eddy
// viscosity (turbulent grids), the explicit residual, the diagonalized ADI
// factorization with pipelined line solves, the conserved update, and a
// final boundary-condition pass. All compute is charged to the rank's
// virtual clock; communication is charged by the messaging layer.
func (b *Block) FlowStep(r *par.Rank, dt float64) {
	r.SetWorkingSet(b.WorkingSetBytes())
	b.ExchangeHalo(r)
	r.Compute(b.ApplyBCs())
	r.Compute(b.ComputeTurbulence())
	r.Compute(b.ComputeRHS(dt))
	r.Compute(b.SolveADI(r, dt))
	r.Compute(b.ApplyUpdate())
	r.Compute(b.ApplyBCs())
	sweeps := 3
	if b.TwoD {
		sweeps = 2
	}
	publishFlowStepMetrics(r, sweeps)
}

// ResidualNorm returns the RMS of the density-equation residual over owned
// updatable points (a convergence monitor).
func (b *Block) ResidualNorm() float64 {
	b.ensureScratch()
	s := b.scr
	sum, n := 0.0, 0
	b.eachInterior(func(p int) {
		if !s.upd[p] {
			return
		}
		sum += b.RHS[5*p] * b.RHS[5*p]
		n++
	})
	if n == 0 {
		return 0
	}
	return math.Sqrt(sum / float64(n))
}

// SetFringe stores interpolated conserved data at a fringe point given in
// parent-grid indices. Used by the connectivity module.
func (b *Block) SetFringe(i, j, k int, q [5]float64) bool {
	li, lj, lk := b.Local(i, j, k)
	if li < Halo || li >= b.MI-Halo || lj < Halo || lj >= b.MJ-Halo {
		return false
	}
	if !b.TwoD && (lk < Halo || lk >= b.MK-Halo) {
		return false
	}
	b.SetQ(b.LIdx(li, lj, lk), q)
	return true
}

// QAtGlobal returns the conserved state at parent-grid indices, and whether
// the point is owned by this block.
func (b *Block) QAtGlobal(i, j, k int) ([5]float64, bool) {
	if !b.Own.Contains(i, j, clampK(b, k)) {
		return [5]float64{}, false
	}
	li, lj, lk := b.Local(i, j, k)
	return b.QAt(b.LIdx(li, lj, lk)), true
}

func clampK(b *Block, k int) int {
	if b.TwoD {
		return 0
	}
	return k
}

// InterpolateCell evaluates the trilinear interpolation of Q within the
// donor cell whose lowest corner is parent-grid point (i,j,k), at local
// cell coordinates (a,b,c) in [0,1]^3 (c ignored on 2-D blocks). All eight
// (four in 2-D) corner points must be owned or lie in the halo.
func (b *Block) InterpolateCell(i, j, k int, a, bb, c float64) ([5]float64, bool) {
	var out [5]float64
	corners := 8
	if b.TwoD {
		corners = 4
		c = 0
	}
	for m := 0; m < corners; m++ {
		di, dj, dk := m&1, (m>>1)&1, (m>>2)&1
		w := wgt(a, di) * wgt(bb, dj) * wgt(c, dk)
		if w == 0 {
			continue
		}
		ii, jj, kk := i+di, j+dj, k+dk
		li, lj, lk := b.Local(ii, jj, kk)
		if b.G.PeriodicI() && (li < 0 || li >= b.MI) {
			// Donor cells spanning the periodic seam: the wrapped image
			// of the corner may live in this block or its halo.
			for _, alt := range [2]int{ii - b.G.NI, ii + b.G.NI} {
				if l := alt - b.Own.ILo + Halo; l >= 0 && l < b.MI {
					li = l
					break
				}
			}
		}
		if li < 0 || li >= b.MI || lj < 0 || lj >= b.MJ {
			return out, false
		}
		if !b.TwoD && (lk < 0 || lk >= b.MK) {
			return out, false
		}
		p := b.LIdx(li, lj, lk)
		if b.IBl[p] == grid.IBHole {
			return out, false
		}
		for cq := 0; cq < 5; cq++ {
			out[cq] += w * b.Q[5*p+cq]
		}
	}
	return out, true
}

func wgt(f float64, d int) float64 {
	if d == 1 {
		return f
	}
	return 1 - f
}
