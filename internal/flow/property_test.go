package flow

import (
	"math"
	"testing"
	"testing/quick"
)

// The Euler fluxes are homogeneous of degree one in the conserved state:
// F(λQ) = λF(Q). The diagonalized implicit scheme relies on this property.
func TestFluxHomogeneity_Property(t *testing.T) {
	f := func(rho, u, v, w, p, lam float64) bool {
		rho = 0.2 + math.Abs(math.Mod(rho, 3))
		p = 0.2 + math.Abs(math.Mod(p, 3))
		u = math.Mod(u, 2)
		v = math.Mod(v, 2)
		w = math.Mod(w, 2)
		lam = 0.5 + math.Abs(math.Mod(lam, 4))
		e := p/(Gamma-1) + 0.5*rho*(u*u+v*v+w*w)
		q := [5]float64{rho, rho * u, rho * v, rho * w, e}
		var ql [5]float64
		for c := range q {
			ql[c] = lam * q[c]
		}
		f1 := Flux(q, 0.7, -0.2, 0.4, 0.1)
		f2 := Flux(ql, 0.7, -0.2, 0.4, 0.1)
		for c := 0; c < 5; c++ {
			if math.Abs(f2[c]-lam*f1[c]) > 1e-9*(1+math.Abs(f1[c])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Primitive/conserved round trip.
func TestPrimitiveRoundTrip_Property(t *testing.T) {
	f := func(rho, u, v, w, p float64) bool {
		rho = 0.2 + math.Abs(math.Mod(rho, 3))
		p = 0.2 + math.Abs(math.Mod(p, 3))
		u = math.Mod(u, 2)
		v = math.Mod(v, 2)
		w = math.Mod(w, 2)
		e := p/(Gamma-1) + 0.5*rho*(u*u+v*v+w*w)
		r2, u2, v2, w2, p2 := Primitive([5]float64{rho, rho * u, rho * v, rho * w, e})
		tol := 1e-10
		return math.Abs(r2-rho) < tol && math.Abs(u2-u) < tol &&
			math.Abs(v2-v) < tol && math.Abs(w2-w) < tol && math.Abs(p2-p) < tol*10
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Eigenvalues bound the spectral radius: max|λ| = |U| + c|∇k| exactly.
func TestEigenvaluesMatchSpectralRadius_Property(t *testing.T) {
	f := func(rho, u, p, kx, ky float64) bool {
		rho = 0.2 + math.Abs(math.Mod(rho, 3))
		p = 0.2 + math.Abs(math.Mod(p, 3))
		u = math.Mod(u, 2)
		kx = math.Mod(kx, 3)
		ky = math.Mod(ky, 3)
		if kx*kx+ky*ky < 1e-4 {
			return true
		}
		e := p/(Gamma-1) + 0.5*rho*u*u
		q := [5]float64{rho, rho * u, 0, 0, e}
		eg := NewEigen(q, kx, ky, 0, 0)
		maxAbs := 0.0
		for _, l := range eg.Lam {
			if a := math.Abs(l); a > maxAbs {
				maxAbs = a
			}
		}
		sr := SpectralRadius(q, kx, ky, 0, 0)
		return math.Abs(maxAbs-sr) < 1e-9*(1+sr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Freestream conserved state always reconstructs a unit sound speed.
func TestFreestreamSoundSpeed_Property(t *testing.T) {
	f := func(mach, alpha float64) bool {
		mach = math.Abs(math.Mod(mach, 3))
		alpha = math.Mod(alpha, 0.5)
		fs := Freestream{Mach: mach, Alpha: alpha}
		rho, _, _, _, p := Primitive(fs.Conserved())
		return math.Abs(SoundSpeed(rho, p)-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
