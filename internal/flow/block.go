package flow

import (
	"fmt"

	"overd/internal/geom"
	"overd/internal/grid"
)

// Halo is the ghost-layer width required by the second-order central
// differences plus fourth-order dissipation stencils.
const Halo = 2

// Neighbor links one face of a block to the adjacent rank of the same
// component grid.
type Neighbor struct {
	// Rank owning the adjacent subdomain, or -1 for none.
	Rank int
	// Wrap marks the periodic seam (O-grid closure): indices wrap modulo
	// the grid extent across this face.
	Wrap bool
}

// Block is the rank-local piece of one component grid: the owned index box
// plus ghost layers, with all solver state. Array index (li,lj,lk) covers
// [0,MI) x [0,MJ) x [0,MK) where li = i - Own.ILo + Halo.
type Block struct {
	// G is the parent component grid (read-only shared geometry source).
	G *grid.Grid
	// Own is the owned point range in the parent's index space.
	Own grid.IBox
	// FS is the freestream condition.
	FS Freestream

	// MI, MJ, MK are local array dims including ghosts.
	MI, MJ, MK int

	// Q holds conserved variables, 5 per point, interleaved.
	Q []float64
	// DQ is the implicit update workspace (5 per point).
	DQ []float64
	// RHS is the residual workspace (5 per point).
	RHS []float64

	// XL, YL, ZL are local world-frame coordinates with ghosts.
	XL, YL, ZL []float64
	// XT, YT, ZT are grid-point velocities (zero for static grids).
	XT, YT, ZT []float64
	// Met holds 9 metric components per point, scaled by 1/J:
	// [ξx ξy ξz ηx ηy ηz ζx ζy ζz]/J, and Jac holds J (points/volume).
	Met []float64
	Jac []float64
	// IBl is the local iblank state with ghosts (ghosts outside the grid
	// are marked hole so stencil logic treats them as invalid).
	IBl []int8

	// MuT is the Baldwin-Lomax eddy viscosity (allocated when Turbulent).
	MuT []float64

	// Nbr gives the neighboring rank across each local face
	// ([dim][0]=low side, [dim][1]=high side).
	Nbr [3][2]Neighbor

	// TwoD marks planar blocks (parent NK == 1): the ζ direction is
	// inactive and w ≡ 0.
	TwoD bool

	// viscDirs selects which directions carry viscous terms (set by the
	// driver; defaults to wall-normal η for viscous grids).
	viscDirs [3]bool

	// ar, when non-nil, holds the world-shared per-rank envelope arenas
	// (see UseArenas). Nil falls back to the process-global pools.
	ar *Arenas

	scr *scratch
}

// NewBlock allocates the solver state for the given owned box of grid g.
func NewBlock(g *grid.Grid, own grid.IBox, fs Freestream) *Block {
	if !own.Valid() {
		panic(fmt.Sprintf("flow: invalid owned box %v", own))
	}
	b := &Block{G: g, Own: own, FS: fs, TwoD: g.NK == 1}
	b.MI = own.NI() + 2*Halo
	b.MJ = own.NJ() + 2*Halo
	b.MK = own.NK() + 2*Halo
	if b.TwoD {
		b.MK = 1
	}
	n := b.MI * b.MJ * b.MK
	b.Q = make([]float64, 5*n)
	b.DQ = make([]float64, 5*n)
	b.RHS = make([]float64, 5*n)
	b.XL = make([]float64, n)
	b.YL = make([]float64, n)
	b.ZL = make([]float64, n)
	b.XT = make([]float64, n)
	b.YT = make([]float64, n)
	b.ZT = make([]float64, n)
	b.Met = make([]float64, 9*n)
	b.Jac = make([]float64, n)
	b.IBl = make([]int8, n)
	if g.Turbulent {
		b.MuT = make([]float64, n)
	}
	for d := 0; d < 3; d++ {
		b.Nbr[d][0].Rank = -1
		b.Nbr[d][1].Rank = -1
	}
	b.RefreshGeometry(0)
	b.InitFreestream()
	return b
}

// NPointsLocal returns the local array size including ghosts.
func (b *Block) NPointsLocal() int { return b.MI * b.MJ * b.MK }

// NOwned returns the number of owned (non-ghost) points.
func (b *Block) NOwned() int { return b.Own.Count() }

// LIdx maps local indices to the flat offset.
func (b *Block) LIdx(li, lj, lk int) int { return li + b.MI*(lj+b.MJ*lk) }

// Local converts parent-grid indices to local indices.
func (b *Block) Local(i, j, k int) (li, lj, lk int) {
	if b.TwoD {
		return i - b.Own.ILo + Halo, j - b.Own.JLo + Halo, 0
	}
	return i - b.Own.ILo + Halo, j - b.Own.JLo + Halo, k - b.Own.KLo + Halo
}

// GlobalFromLocal converts local indices to parent-grid indices (possibly
// outside the grid for ghosts).
func (b *Block) GlobalFromLocal(li, lj, lk int) (i, j, k int) {
	if b.TwoD {
		return li - Halo + b.Own.ILo, lj - Halo + b.Own.JLo, 0
	}
	return li - Halo + b.Own.ILo, lj - Halo + b.Own.JLo, lk - Halo + b.Own.KLo
}

// kLo and kHi give the local loop bounds of owned points in k.
func (b *Block) kBounds() (lo, hi int) {
	if b.TwoD {
		return 0, 0
	}
	return Halo, Halo + b.Own.NK() - 1
}

// InitFreestream fills Q with the freestream state everywhere.
func (b *Block) InitFreestream() {
	qf := b.FS.Conserved()
	n := b.NPointsLocal()
	for p := 0; p < n; p++ {
		for c := 0; c < 5; c++ {
			b.Q[5*p+c] = qf[c]
		}
	}
}

// RefreshGeometry recomputes local coordinates, grid velocities and metrics
// from the parent grid's current (world-frame) coordinates. dt > 0 computes
// grid-point velocities by backward difference against the previous local
// coordinates; dt == 0 (initialization) leaves velocities zero.
func (b *Block) RefreshGeometry(dt float64) {
	g := b.G
	for lk := 0; lk < b.MK; lk++ {
		for lj := 0; lj < b.MJ; lj++ {
			for li := 0; li < b.MI; li++ {
				i, j, k := b.GlobalFromLocal(li, lj, lk)
				p := b.clampedPoint(i, j, k)
				n := b.LIdx(li, lj, lk)
				if dt > 0 && g.Moving {
					b.XT[n] = (p.X - b.XL[n]) / dt
					b.YT[n] = (p.Y - b.YL[n]) / dt
					b.ZT[n] = (p.Z - b.ZL[n]) / dt
				}
				b.XL[n], b.YL[n], b.ZL[n] = p.X, p.Y, p.Z
			}
		}
	}
	b.computeMetrics()
	b.refreshIBlank()
}

// clampedPoint returns the world position of grid point (i,j,k), handling
// periodic wrap in i and linear extrapolation outside physical boundaries
// (ghost coordinates only feed metric stencils).
func (b *Block) clampedPoint(i, j, k int) geom.Vec3 {
	g := b.G
	if g.PeriodicI() {
		i = ((i % g.NI) + g.NI) % g.NI
	}
	ci := clampInt(i, 0, g.NI-1)
	cj := clampInt(j, 0, g.NJ-1)
	ck := clampInt(k, 0, g.NK-1)
	p := g.At(ci, cj, ck)
	// Linear extrapolation for out-of-range indices.
	if ci != i {
		d := g.At(ci, cj, ck).Sub(g.At(clampInt(2*ci-i, 0, g.NI-1), cj, ck))
		p = p.Add(d)
	}
	if cj != j {
		d := g.At(ci, cj, ck).Sub(g.At(ci, clampInt(2*cj-j, 0, g.NJ-1), ck))
		p = p.Add(d)
	}
	if ck != k {
		d := g.At(ci, cj, ck).Sub(g.At(ci, cj, clampInt(2*ck-k, 0, g.NK-1)))
		p = p.Add(d)
	}
	return p
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// refreshIBlank copies the parent grid's iblank state into the local array;
// ghost points outside the physical grid are marked as holes.
func (b *Block) refreshIBlank() {
	g := b.G
	for lk := 0; lk < b.MK; lk++ {
		for lj := 0; lj < b.MJ; lj++ {
			for li := 0; li < b.MI; li++ {
				i, j, k := b.GlobalFromLocal(li, lj, lk)
				if g.PeriodicI() {
					i = ((i % g.NI) + g.NI) % g.NI
				}
				n := b.LIdx(li, lj, lk)
				if i < 0 || i >= g.NI || j < 0 || j >= g.NJ || k < 0 || k >= g.NK {
					b.IBl[n] = grid.IBHole
					continue
				}
				b.IBl[n] = g.IBlank[g.Idx(i, j, k)]
			}
		}
	}
}

// computeMetrics evaluates the inverse-Jacobian-scaled metrics by central
// differences of the local coordinates. 2-D blocks use a unit ζ direction.
// Interior points (the vast majority) take an inlined central-difference
// fast path; edges fall back to the general one-sided stencil in diff.
func (b *Block) computeMetrics() {
	xl, yl, zl := b.XL, b.YL, b.ZL
	strJ := b.MI
	strK := b.MI * b.MJ
	twoD := b.TwoD
	for lk := 0; lk < b.MK; lk++ {
		for lj := 0; lj < b.MJ; lj++ {
			for li := 0; li < b.MI; li++ {
				n := b.LIdx(li, lj, lk)
				var m geom.Mat3 // rows: d(x,y,z)/dξ, /dη, /dζ as columns... see below
				if li > 0 && li < b.MI-1 {
					im, ip := n-1, n+1
					m[0][0] = (xl[ip] - xl[im]) * 0.5
					m[1][0] = (yl[ip] - yl[im]) * 0.5
					m[2][0] = (zl[ip] - zl[im]) * 0.5
				} else {
					m[0][0], m[1][0], m[2][0] = b.diff(li, lj, lk, 0)
				}
				if lj > 0 && lj < b.MJ-1 {
					im, ip := n-strJ, n+strJ
					m[0][1] = (xl[ip] - xl[im]) * 0.5
					m[1][1] = (yl[ip] - yl[im]) * 0.5
					m[2][1] = (zl[ip] - zl[im]) * 0.5
				} else {
					m[0][1], m[1][1], m[2][1] = b.diff(li, lj, lk, 1)
				}
				if twoD {
					m[0][2], m[1][2], m[2][2] = 0, 0, 1
				} else if lk > 0 && lk < b.MK-1 {
					im, ip := n-strK, n+strK
					m[0][2] = (xl[ip] - xl[im]) * 0.5
					m[1][2] = (yl[ip] - yl[im]) * 0.5
					m[2][2] = (zl[ip] - zl[im]) * 0.5
				} else {
					m[0][2], m[1][2], m[2][2] = b.diff(li, lj, lk, 2)
				}
				// m columns are x_ξ, x_η, x_ζ; rows x,y,z. Its inverse has
				// rows (ξx ξy ξz), (ηx ηy ηz), (ζx ζy ζz).
				det := m.Det()
				if det < 1e-12 {
					det = 1e-12 // degenerate cell; metrics stay bounded
				}
				inv, ok := m.Inverse()
				if !ok {
					inv = geom.Identity3()
				}
				jac := 1 / det
				b.Jac[n] = jac
				// Store metrics divided by J: (1/J)∇ξ = det * inv rows.
				mp := b.Met[9*n : 9*n+9 : 9*n+9]
				mp[0] = inv[0][0] / jac
				mp[1] = inv[0][1] / jac
				mp[2] = inv[0][2] / jac
				mp[3] = inv[1][0] / jac
				mp[4] = inv[1][1] / jac
				mp[5] = inv[1][2] / jac
				mp[6] = inv[2][0] / jac
				mp[7] = inv[2][1] / jac
				mp[8] = inv[2][2] / jac
			}
		}
	}
}

// diff returns the one-sided/central difference of (x,y,z) along local
// direction d at the given local point.
func (b *Block) diff(li, lj, lk, d int) (dx, dy, dz float64) {
	var im, ip int
	switch d {
	case 0:
		lo, hi := 0, b.MI-1
		a, c := li-1, li+1
		h := 0.5
		if a < lo {
			a, h = li, 1
		}
		if c > hi {
			c, h = li, 1
		}
		if a == c {
			return 1, 0, 0
		}
		im, ip = b.LIdx(a, lj, lk), b.LIdx(c, lj, lk)
		return (b.XL[ip] - b.XL[im]) * h, (b.YL[ip] - b.YL[im]) * h, (b.ZL[ip] - b.ZL[im]) * h
	case 1:
		lo, hi := 0, b.MJ-1
		a, c := lj-1, lj+1
		h := 0.5
		if a < lo {
			a, h = lj, 1
		}
		if c > hi {
			c, h = lj, 1
		}
		if a == c {
			return 0, 1, 0
		}
		im, ip = b.LIdx(li, a, lk), b.LIdx(li, c, lk)
		return (b.XL[ip] - b.XL[im]) * h, (b.YL[ip] - b.YL[im]) * h, (b.ZL[ip] - b.ZL[im]) * h
	default:
		lo, hi := 0, b.MK-1
		a, c := lk-1, lk+1
		h := 0.5
		if a < lo {
			a, h = lk, 1
		}
		if c > hi {
			c, h = lk, 1
		}
		if a == c {
			return 0, 0, 1
		}
		im, ip = b.LIdx(li, lj, a), b.LIdx(li, lj, c)
		return (b.XL[ip] - b.XL[im]) * h, (b.YL[ip] - b.YL[im]) * h, (b.ZL[ip] - b.ZL[im]) * h
	}
}

// QAt returns the conserved state at a local point.
func (b *Block) QAt(n int) [5]float64 {
	return [5]float64{b.Q[5*n], b.Q[5*n+1], b.Q[5*n+2], b.Q[5*n+3], b.Q[5*n+4]}
}

// SetQ stores a conserved state at a local point.
func (b *Block) SetQ(n int, q [5]float64) {
	copy(b.Q[5*n:5*n+5], q[:])
}

// WorkingSetBytes estimates the block's resident solver state for the cache
// model: Q, DQ, RHS, metrics, coordinates and velocities.
func (b *Block) WorkingSetBytes() float64 {
	return float64(b.NPointsLocal()) * (5*3 + 9 + 1 + 6 + 1) * 8
}
