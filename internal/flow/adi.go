package flow

import (
	"overd/internal/par"
)

// The diagonalized approximate-factorization implicit scheme: the update
// ΔQ solves
//
//	(I + Δt·J·δξ·Âξ)(I + Δt·J·δη·Âη)(I + Δt·J·δζ·Âζ) ΔQ = RHS
//
// with each Jacobian replaced by T Λ T⁻¹, so a factor becomes a pointwise
// multiply by T⁻¹, five scalar tridiagonal line solves (first-order upwind
// implicit operator plus implicit smoothing), and a pointwise multiply by
// T. Lines crossing subdomain boundaries are solved with a pipelined Thomas
// algorithm: forward elimination flows down the rank chain, back
// substitution flows back, in line batches so successive batches overlap —
// implicitness is maintained across subdomains and convergence is
// independent of the partitioning (paper §2.1). Non-updatable points (holes,
// fringes, explicit boundaries) contribute identity rows, which decouples
// line segments exactly as Dirichlet conditions.

// implicit smoothing coefficient added to the scalar operators.
const implicitEps = 0.12

// pipeBatches is the number of line batches per boundary message used to
// overlap the pipelined sweeps.
const pipeBatches = 4

// SolveADI factors and applies the implicit operator in place: on entry
// b.RHS holds Δt·J·R; on return b.DQ holds ΔQ. Returns flops performed
// locally (communication time is charged through r directly).
func (b *Block) SolveADI(r *par.Rank, dt float64) float64 {
	b.ensureScratch()
	copy(b.DQ, b.RHS)
	flops := 0.0
	ndir := 3
	if b.TwoD {
		ndir = 2
	}
	for d := 0; d < ndir; d++ {
		flops += b.sweepDirection(r, d, dt)
	}
	return flops
}

// lineGeom describes the transverse point set of direction d without a
// closure (which would heap-allocate per sweep): line idx starts at
// base0 + (idx%nu)*strideU + (idx/nu)*strideV and holds count owned points
// stride apart. The enumeration order is identical to the old per-index
// (lj,lk) arithmetic.
type lineGeom struct {
	nLines, nu       int
	base0            int
	strideU, strideV int
	stride, count    int
}

// lineBase returns the first point of line idx.
func (lg *lineGeom) lineBase(idx int) int {
	return lg.base0 + (idx%lg.nu)*lg.strideU + (idx/lg.nu)*lg.strideV
}

func (b *Block) lineSet(d int) lineGeom {
	klo, khi := b.kBounds()
	nk := khi - klo + 1
	switch d {
	case 0:
		nj := b.MJ - 2*Halo
		return lineGeom{
			nLines: nj * nk, nu: nj,
			base0:   b.LIdx(Halo, Halo, klo),
			strideU: b.MI, strideV: b.MI * b.MJ,
			stride: 1, count: b.Own.NI(),
		}
	case 1:
		ni := b.MI - 2*Halo
		return lineGeom{
			nLines: ni * nk, nu: ni,
			base0:   b.LIdx(Halo, Halo, klo),
			strideU: 1, strideV: b.MI * b.MJ,
			stride: b.MI, count: b.Own.NJ(),
		}
	default:
		ni := b.MI - 2*Halo
		nj := b.MJ - 2*Halo
		return lineGeom{
			nLines: ni * nj, nu: ni,
			base0:   b.LIdx(Halo, Halo, Halo),
			strideU: 1, strideV: b.MI,
			stride: b.MI * b.MJ, count: b.Own.NK(),
		}
	}
}

// pipeMsg carries the Thomas recurrence state across a rank boundary for a
// batch of lines: forward messages hold (c', d') per line per component;
// backward messages hold the solved x per line per component. Envelopes are
// pooled (see par.Pool): the receiver copies Vals out and returns the
// envelope, so steady-state sweeps allocate nothing per batch.
type pipeMsg struct {
	Dir   int
	Batch int
	Vals  []float64
}

// pipePool recycles pipeMsg envelopes across all ranks and blocks.
var pipePool par.Pool[pipeMsg]

// sweepDirection applies one ADI factor along direction d. The pointwise
// passes walk contiguous i-runs and build only the matrix each pass needs
// (T⁻¹ before the line solves, T after); both charge the full eigensystem
// flop constant — the accounting is per point, not per host instruction.
func (b *Block) sweepDirection(r *par.Rank, d int, dt float64) float64 {
	s := b.scr

	// Pointwise: W = T⁻¹ · DQ, and stash eigenvalues per point.
	lam := s.fw // reuse flux workspace: 5 eigenvalues per point
	var e Eigen
	met, dqs, jac := b.Met, b.DQ, b.Jac
	xt, yt, zt := b.XT, b.YT, b.ZT
	md := 3 * d
	klo, khi := b.kBounds()
	niOwn := b.Own.NI()
	for lk := klo; lk <= khi; lk++ {
		for lj := Halo; lj < b.MJ-Halo; lj++ {
			p0 := b.LIdx(Halo, lj, lk)
			for p := p0; p < p0+niOwn; p++ {
				mp := met[9*p+md : 9*p+md+3 : 9*p+md+3]
				kx, ky, kz := mp[0], mp[1], mp[2]
				kt := -(kx*xt[p] + ky*yt[p] + kz*zt[p])
				e.SetTi(b.QAt(p), kx, ky, kz, kt)
				dq := dqs[5*p : 5*p+5 : 5*p+5]
				w := e.MulTi([5]float64{dq[0], dq[1], dq[2], dq[3], dq[4]})
				dq[0], dq[1], dq[2], dq[3], dq[4] = w[0], w[1], w[2], w[3], w[4]
				jdt := jac[p] * dt
				lp := lam[5*p : 5*p+5 : 5*p+5]
				lp[0] = e.Lam[0] * jdt
				lp[1] = e.Lam[1] * jdt
				lp[2] = e.Lam[2] * jdt
				lp[3] = e.Lam[3] * jdt
				lp[4] = e.Lam[4] * jdt
			}
		}
	}
	flops := float64(b.NOwned()) * (flopsEigenBuild + flopsEigenApply)

	// Scalar tridiagonal solves along d, pipelined across ranks.
	flops += b.lineSolves(r, d, dt, lam)

	// Pointwise: DQ = T · W.
	for lk := klo; lk <= khi; lk++ {
		for lj := Halo; lj < b.MJ-Halo; lj++ {
			p0 := b.LIdx(Halo, lj, lk)
			for p := p0; p < p0+niOwn; p++ {
				mp := met[9*p+md : 9*p+md+3 : 9*p+md+3]
				kx, ky, kz := mp[0], mp[1], mp[2]
				kt := -(kx*xt[p] + ky*yt[p] + kz*zt[p])
				e.SetT(b.QAt(p), kx, ky, kz, kt)
				dq := dqs[5*p : 5*p+5 : 5*p+5]
				w := e.MulT([5]float64{dq[0], dq[1], dq[2], dq[3], dq[4]})
				dq[0], dq[1], dq[2], dq[3], dq[4] = w[0], w[1], w[2], w[3], w[4]
			}
		}
	}
	flops += float64(b.NOwned()) * (flopsEigenBuild + flopsEigenApply)
	return flops
}

// lineSolves performs the five scalar tridiagonal solves along direction d.
// lam holds the Δt·J-scaled eigenvalues (5 per point). Pipelining: the
// transverse lines are split into batches; the forward elimination of a
// batch waits for the upstream rank's boundary state for that batch only,
// so downstream ranks start while upstream ones continue.
func (b *Block) lineSolves(r *par.Rank, d int, dt float64, lam []float64) float64 {
	s := b.scr
	lg := b.lineSet(d)
	nLines, stride, count := lg.nLines, lg.stride, lg.count
	prev := b.Nbr[d][0]
	next := b.Nbr[d][1]
	// The periodic seam is treated explicitly (no implicit wrap coupling).
	prevRank, nextRank := -1, -1
	if prev.Rank >= 0 && !prev.Wrap {
		prevRank = prev.Rank
	}
	if next.Rank >= 0 && !next.Wrap {
		nextRank = next.Rank
	}

	// Work through batches.
	batches := pipeBatches
	if batches > nLines {
		batches = nLines
	}
	if batches < 1 {
		batches = 1
	}
	flops := 0.0

	// Storage for cross-boundary state per line: entering (c', d') and the
	// back-substituted x from downstream. Reused from the block's scratch
	// across directions and steps; every element is written before it is
	// read within a sweep, so stale contents are harmless.
	if cap(s.cIn) < nLines*5 {
		s.cIn = make([]float64, nLines*5)
		s.dIn = make([]float64, nLines*5)
		s.cOut = make([]float64, nLines*5)
		s.dOut = make([]float64, nLines*5)
		s.xIn = make([]float64, nLines*5)
	}
	cIn := s.cIn[:nLines*5]
	dIn := s.dIn[:nLines*5]
	cOut := s.cOut[:nLines*5]
	dOut := s.dOut[:nLines*5]
	xIn := s.xIn[:nLines*5]

	// cpAll stores the full c' field (needed again for back substitution).
	cpAll := s.cpAll

	// Per-line implicit-smoothing coefficients, computed once per point
	// instead of once per point per component.
	maxCount := b.Own.NI()
	if c := b.Own.NJ(); c > maxCount {
		maxCount = c
	}
	if c := b.Own.NK(); c > maxCount {
		maxCount = c
	}
	if cap(s.epsLn) < maxCount {
		s.epsLn = make([]float64, maxCount)
	}
	epsLn := s.epsLn[:maxCount]
	upd, jac, sigd, dq := s.upd, b.Jac, s.sig[d], b.DQ

	batchRange := func(bi int) (lo, hi int) {
		lo = bi * nLines / batches
		hi = (bi+1)*nLines/batches - 1
		return
	}

	// Forward elimination, batch by batch.
	for bi := 0; bi < batches; bi++ {
		lo, hi := batchRange(bi)
		if prevRank >= 0 {
			m := r.Recv(prevRank, par.TagPipeline)
			pm := m.Data.(*pipeMsg)
			copy(cIn[lo*5:(hi+1)*5], pm.Vals[:5*(hi-lo+1)])
			copy(dIn[lo*5:(hi+1)*5], pm.Vals[5*(hi-lo+1):])
			b.putPipe(r, pm)
		}
		for ln := lo; ln <= hi; ln++ {
			base := lg.lineBase(ln)
			for m := 0; m < count; m++ {
				p := base + m*stride
				if upd[p] {
					epsLn[m] = implicitEps * dt * jac[p] * sigd[p]
				}
			}
			for c := 0; c < 5; c++ {
				cPrev, dPrev := 0.0, 0.0
				if prevRank >= 0 {
					cPrev, dPrev = cIn[ln*5+c], dIn[ln*5+c]
				}
				for m := 0; m < count; m++ {
					p := base + m*stride
					var am, bm, cm, rm float64
					if !upd[p] {
						am, bm, cm, rm = 0, 1, 0, 0
					} else {
						l := lam[5*p+c]
						lp := 0.5 * (l + abs(l))
						lm := 0.5 * (l - abs(l))
						eps := epsLn[m]
						am = -lp - eps
						bm = 1 + (lp - lm) + 2*eps
						cm = lm - eps
						rm = dq[5*p+c]
					}
					den := bm - am*cPrev
					if den == 0 {
						den = 1e-30
					}
					cPrev = cm / den
					dPrev = (rm - am*dPrev) / den
					cpAll[5*p+c] = cPrev
					dq[5*p+c] = dPrev // store d' in place
				}
				cOut[ln*5+c], dOut[ln*5+c] = cPrev, dPrev
			}
			flops += float64(count) * 5 * flopsTriPerComp
		}
		if nextRank >= 0 {
			nv := hi - lo + 1
			pm := b.getPipe(r)
			pm.Dir, pm.Batch = d, bi
			pm.Vals = append(pm.Vals[:0], cOut[lo*5:(hi+1)*5]...)
			pm.Vals = append(pm.Vals, dOut[lo*5:(hi+1)*5]...)
			r.Send(nextRank, par.TagPipeline, pm, 8*10*nv)
		}
	}

	// Back substitution, batch by batch (reverse chain direction).
	for bi := 0; bi < batches; bi++ {
		lo, hi := batchRange(bi)
		if nextRank >= 0 {
			m := r.Recv(nextRank, par.TagPipeline)
			pm := m.Data.(*pipeMsg)
			copy(xIn[lo*5:(hi+1)*5], pm.Vals)
			b.putPipe(r, pm)
		}
		for ln := lo; ln <= hi; ln++ {
			base := lg.lineBase(ln)
			for c := 0; c < 5; c++ {
				xNext := 0.0
				if nextRank >= 0 {
					xNext = xIn[ln*5+c]
				}
				for m := count - 1; m >= 0; m-- {
					p := base + m*stride
					x := dq[5*p+c] - cpAll[5*p+c]*xNext
					dq[5*p+c] = x
					xNext = x
				}
				xIn[ln*5+c] = xNext // my first point's x, for upstream
			}
			flops += float64(count) * 5 * 2
		}
		if prevRank >= 0 {
			nv := hi - lo + 1
			pm := b.getPipe(r)
			pm.Dir, pm.Batch = d, bi
			pm.Vals = append(pm.Vals[:0], xIn[lo*5:(hi+1)*5]...)
			r.Send(prevRank, par.TagPipeline, pm, 8*5*nv)
		}
	}
	return flops
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// ApplyUpdate adds ΔQ to the conserved state at updatable points and
// enforces w = 0 on planar blocks. Returns flops.
func (b *Block) ApplyUpdate() float64 {
	b.ensureScratch()
	s := b.scr
	upd, qs, dqs := s.upd, b.Q, b.DQ
	twoD := b.TwoD
	count := 0
	klo, khi := b.kBounds()
	niOwn := b.Own.NI()
	for lk := klo; lk <= khi; lk++ {
		for lj := Halo; lj < b.MJ-Halo; lj++ {
			p0 := b.LIdx(Halo, lj, lk)
			for p := p0; p < p0+niOwn; p++ {
				if !upd[p] {
					continue
				}
				count++
				qp := qs[5*p : 5*p+5 : 5*p+5]
				dq := dqs[5*p : 5*p+5 : 5*p+5]
				qp[0] += dq[0]
				qp[1] += dq[1]
				qp[2] += dq[2]
				qp[3] += dq[3]
				qp[4] += dq[4]
				if twoD {
					qp[3] = 0
				}
				// Keep the state physical: floor density and pressure.
				if qp[0] < 1e-6 {
					qp[0] = 1e-6
				}
				rho, u, v, w, pr := Primitive(b.QAt(p))
				if pr <= 1e-8 {
					pr = 1e-8
					qp[4] = pr/(Gamma-1) + 0.5*rho*(u*u+v*v+w*w)
				}
			}
		}
	}
	return float64(count) * 8
}
