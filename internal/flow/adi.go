package flow

import (
	"overd/internal/par"
)

// The diagonalized approximate-factorization implicit scheme: the update
// ΔQ solves
//
//	(I + Δt·J·δξ·Âξ)(I + Δt·J·δη·Âη)(I + Δt·J·δζ·Âζ) ΔQ = RHS
//
// with each Jacobian replaced by T Λ T⁻¹, so a factor becomes a pointwise
// multiply by T⁻¹, five scalar tridiagonal line solves (first-order upwind
// implicit operator plus implicit smoothing), and a pointwise multiply by
// T. Lines crossing subdomain boundaries are solved with a pipelined Thomas
// algorithm: forward elimination flows down the rank chain, back
// substitution flows back, in line batches so successive batches overlap —
// implicitness is maintained across subdomains and convergence is
// independent of the partitioning (paper §2.1). Non-updatable points (holes,
// fringes, explicit boundaries) contribute identity rows, which decouples
// line segments exactly as Dirichlet conditions.

// implicit smoothing coefficient added to the scalar operators.
const implicitEps = 0.12

// pipeBatches is the number of line batches per boundary message used to
// overlap the pipelined sweeps.
const pipeBatches = 4

// SolveADI factors and applies the implicit operator in place: on entry
// b.RHS holds Δt·J·R; on return b.DQ holds ΔQ. Returns flops performed
// locally (communication time is charged through r directly).
func (b *Block) SolveADI(r *par.Rank, dt float64) float64 {
	b.ensureScratch()
	copy(b.DQ, b.RHS)
	flops := 0.0
	ndir := 3
	if b.TwoD {
		ndir = 2
	}
	for d := 0; d < ndir; d++ {
		flops += b.sweepDirection(r, d, dt)
	}
	return flops
}

// lineSet enumerates the transverse point set of direction d: every owned
// (lj,lk)-style pair; each yields one line of owned points along d.
func (b *Block) lineSet(d int) (nLines int, lineStart func(idx int) (base, stride, count int)) {
	klo, khi := b.kBounds()
	nk := khi - klo + 1
	switch d {
	case 0:
		nj := b.MJ - 2*Halo
		return nj * nk, func(idx int) (int, int, int) {
			lj := Halo + idx%nj
			lk := klo + idx/nj
			return b.LIdx(Halo, lj, lk), 1, b.Own.NI()
		}
	case 1:
		ni := b.MI - 2*Halo
		return ni * nk, func(idx int) (int, int, int) {
			li := Halo + idx%ni
			lk := klo + idx/ni
			return b.LIdx(li, Halo, lk), b.MI, b.Own.NJ()
		}
	default:
		ni := b.MI - 2*Halo
		nj := b.MJ - 2*Halo
		return ni * nj, func(idx int) (int, int, int) {
			li := Halo + idx%ni
			lj := Halo + idx/ni
			return b.LIdx(li, lj, Halo), b.MI * b.MJ, b.Own.NK()
		}
	}
}

// pipeMsg carries the Thomas recurrence state across a rank boundary for a
// batch of lines: forward messages hold (c', d') per line per component;
// backward messages hold the solved x per line per component. Envelopes are
// pooled (see par.Pool): the receiver copies Vals out and returns the
// envelope, so steady-state sweeps allocate nothing per batch.
type pipeMsg struct {
	Dir   int
	Batch int
	Vals  []float64
}

// pipePool recycles pipeMsg envelopes across all ranks and blocks.
var pipePool par.Pool[pipeMsg]

// sweepDirection applies one ADI factor along direction d.
func (b *Block) sweepDirection(r *par.Rank, d int, dt float64) float64 {
	s := b.scr

	// Pointwise: W = T⁻¹ · DQ, and stash eigenvalues per point.
	lam := s.fw // reuse flux workspace: 5 eigenvalues per point
	var e Eigen
	b.eachInterior(func(p int) {
		kx, ky, kz := b.Met[9*p+3*d], b.Met[9*p+3*d+1], b.Met[9*p+3*d+2]
		kt := -(kx*b.XT[p] + ky*b.YT[p] + kz*b.ZT[p])
		e.Set(b.QAt(p), kx, ky, kz, kt)
		w := e.MulTi([5]float64{b.DQ[5*p], b.DQ[5*p+1], b.DQ[5*p+2], b.DQ[5*p+3], b.DQ[5*p+4]})
		copy(b.DQ[5*p:5*p+5], w[:])
		jdt := b.Jac[p] * dt
		for c := 0; c < 5; c++ {
			lam[5*p+c] = e.Lam[c] * jdt
		}
	})
	flops := float64(b.NOwned()) * (flopsEigenBuild + flopsEigenApply)

	// Scalar tridiagonal solves along d, pipelined across ranks.
	flops += b.lineSolves(r, d, dt, lam)

	// Pointwise: DQ = T · W.
	b.eachInterior(func(p int) {
		kx, ky, kz := b.Met[9*p+3*d], b.Met[9*p+3*d+1], b.Met[9*p+3*d+2]
		kt := -(kx*b.XT[p] + ky*b.YT[p] + kz*b.ZT[p])
		e.Set(b.QAt(p), kx, ky, kz, kt)
		w := e.MulT([5]float64{b.DQ[5*p], b.DQ[5*p+1], b.DQ[5*p+2], b.DQ[5*p+3], b.DQ[5*p+4]})
		copy(b.DQ[5*p:5*p+5], w[:])
	})
	flops += float64(b.NOwned()) * (flopsEigenBuild + flopsEigenApply)
	return flops
}

// lineSolves performs the five scalar tridiagonal solves along direction d.
// lam holds the Δt·J-scaled eigenvalues (5 per point). Pipelining: the
// transverse lines are split into batches; the forward elimination of a
// batch waits for the upstream rank's boundary state for that batch only,
// so downstream ranks start while upstream ones continue.
func (b *Block) lineSolves(r *par.Rank, d int, dt float64, lam []float64) float64 {
	s := b.scr
	nLines, lineAt := b.lineSet(d)
	prev := b.Nbr[d][0]
	next := b.Nbr[d][1]
	// The periodic seam is treated explicitly (no implicit wrap coupling).
	prevRank, nextRank := -1, -1
	if prev.Rank >= 0 && !prev.Wrap {
		prevRank = prev.Rank
	}
	if next.Rank >= 0 && !next.Wrap {
		nextRank = next.Rank
	}

	// Work through batches.
	batches := pipeBatches
	if batches > nLines {
		batches = nLines
	}
	if batches < 1 {
		batches = 1
	}
	flops := 0.0

	// Storage for cross-boundary state per line: entering (c', d') and the
	// back-substituted x from downstream. Reused from the block's scratch
	// across directions and steps; every element is written before it is
	// read within a sweep, so stale contents are harmless.
	if cap(s.cIn) < nLines*5 {
		s.cIn = make([]float64, nLines*5)
		s.dIn = make([]float64, nLines*5)
		s.cOut = make([]float64, nLines*5)
		s.dOut = make([]float64, nLines*5)
		s.xIn = make([]float64, nLines*5)
	}
	cIn := s.cIn[:nLines*5]
	dIn := s.dIn[:nLines*5]
	cOut := s.cOut[:nLines*5]
	dOut := s.dOut[:nLines*5]
	xIn := s.xIn[:nLines*5]

	// cpAll stores the full c' field (needed again for back substitution).
	cpAll := s.cpAll

	batchRange := func(bi int) (lo, hi int) {
		lo = bi * nLines / batches
		hi = (bi+1)*nLines/batches - 1
		return
	}

	// Forward elimination, batch by batch.
	for bi := 0; bi < batches; bi++ {
		lo, hi := batchRange(bi)
		if prevRank >= 0 {
			m := r.Recv(prevRank, par.TagPipeline)
			pm := m.Data.(*pipeMsg)
			copy(cIn[lo*5:(hi+1)*5], pm.Vals[:5*(hi-lo+1)])
			copy(dIn[lo*5:(hi+1)*5], pm.Vals[5*(hi-lo+1):])
			pipePool.Put(pm)
		}
		for ln := lo; ln <= hi; ln++ {
			base, stride, count := lineAt(ln)
			for c := 0; c < 5; c++ {
				cPrev, dPrev := 0.0, 0.0
				if prevRank >= 0 {
					cPrev, dPrev = cIn[ln*5+c], dIn[ln*5+c]
				}
				for m := 0; m < count; m++ {
					p := base + m*stride
					var am, bm, cm, rm float64
					if !s.upd[p] {
						am, bm, cm, rm = 0, 1, 0, 0
					} else {
						l := lam[5*p+c]
						lp := 0.5 * (l + abs(l))
						lm := 0.5 * (l - abs(l))
						eps := implicitEps * dt * b.Jac[p] * s.sig[d][p]
						am = -lp - eps
						bm = 1 + (lp - lm) + 2*eps
						cm = lm - eps
						rm = b.DQ[5*p+c]
					}
					den := bm - am*cPrev
					if den == 0 {
						den = 1e-30
					}
					cPrev = cm / den
					dPrev = (rm - am*dPrev) / den
					cpAll[5*p+c] = cPrev
					b.DQ[5*p+c] = dPrev // store d' in place
				}
				cOut[ln*5+c], dOut[ln*5+c] = cPrev, dPrev
			}
			flops += float64(count) * 5 * flopsTriPerComp
		}
		if nextRank >= 0 {
			nv := hi - lo + 1
			pm := pipePool.Get()
			pm.Dir, pm.Batch = d, bi
			pm.Vals = append(pm.Vals[:0], cOut[lo*5:(hi+1)*5]...)
			pm.Vals = append(pm.Vals, dOut[lo*5:(hi+1)*5]...)
			r.Send(nextRank, par.TagPipeline, pm, 8*10*nv)
		}
	}

	// Back substitution, batch by batch (reverse chain direction).
	for bi := 0; bi < batches; bi++ {
		lo, hi := batchRange(bi)
		if nextRank >= 0 {
			m := r.Recv(nextRank, par.TagPipeline)
			pm := m.Data.(*pipeMsg)
			copy(xIn[lo*5:(hi+1)*5], pm.Vals)
			pipePool.Put(pm)
		}
		for ln := lo; ln <= hi; ln++ {
			base, stride, count := lineAt(ln)
			for c := 0; c < 5; c++ {
				xNext := 0.0
				if nextRank >= 0 {
					xNext = xIn[ln*5+c]
				}
				for m := count - 1; m >= 0; m-- {
					p := base + m*stride
					x := b.DQ[5*p+c] - cpAll[5*p+c]*xNext
					b.DQ[5*p+c] = x
					xNext = x
				}
				xIn[ln*5+c] = xNext // my first point's x, for upstream
			}
			flops += float64(count) * 5 * 2
		}
		if prevRank >= 0 {
			nv := hi - lo + 1
			pm := pipePool.Get()
			pm.Dir, pm.Batch = d, bi
			pm.Vals = append(pm.Vals[:0], xIn[lo*5:(hi+1)*5]...)
			r.Send(prevRank, par.TagPipeline, pm, 8*5*nv)
		}
	}
	return flops
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// ApplyUpdate adds ΔQ to the conserved state at updatable points and
// enforces w = 0 on planar blocks. Returns flops.
func (b *Block) ApplyUpdate() float64 {
	b.ensureScratch()
	s := b.scr
	count := 0
	b.eachInterior(func(p int) {
		if !s.upd[p] {
			return
		}
		count++
		for c := 0; c < 5; c++ {
			b.Q[5*p+c] += b.DQ[5*p+c]
		}
		if b.TwoD {
			b.Q[5*p+3] = 0
		}
		// Keep the state physical: floor density and pressure.
		if b.Q[5*p] < 1e-6 {
			b.Q[5*p] = 1e-6
		}
		rho, u, v, w, pr := Primitive(b.QAt(p))
		if pr <= 1e-8 {
			pr = 1e-8
			b.Q[5*p+4] = pr/(Gamma-1) + 0.5*rho*(u*u+v*v+w*w)
		}
	})
	return float64(count) * 8
}
