// Package flow implements the OVERFLOW analog: a structured-grid implicit
// Euler / thin-layer Navier-Stokes solver in generalized curvilinear
// coordinates with second-order central differencing, scalar JST-style
// artificial dissipation, a diagonalized approximate-factorization (ADI)
// implicit scheme marched first-order in time, the Baldwin-Lomax algebraic
// turbulence model, and moving-grid terms. The parallel implementation uses
// coarse-grained parallelism between component grids and fine-grained
// decomposition within grids; implicitness is maintained across subdomain
// boundaries by pipelined line solves, so convergence is independent of the
// processor count (paper §2.1).
package flow

import "math"

// Gamma is the ratio of specific heats for air.
const Gamma = 1.4

// Prandtl numbers for laminar and turbulent transport.
const (
	Pr  = 0.72
	PrT = 0.9
)

// Freestream describes the nondimensional far-field state. Velocities are
// scaled by the freestream speed of sound, density by freestream density,
// so a∞ = 1, ρ∞ = 1, p∞ = 1/γ.
type Freestream struct {
	// Mach is the freestream Mach number.
	Mach float64
	// Alpha is the angle of attack in radians (flow in the x-y plane).
	Alpha float64
	// Re is the Reynolds number based on reference length and freestream
	// velocity. Zero disables viscous terms globally.
	Re float64
}

// Velocity returns the freestream velocity components.
func (f Freestream) Velocity() (u, v, w float64) {
	return f.Mach * math.Cos(f.Alpha), f.Mach * math.Sin(f.Alpha), 0
}

// Pressure returns the nondimensional freestream pressure 1/γ.
func (f Freestream) Pressure() float64 { return 1 / Gamma }

// Conserved returns the freestream conserved state
// [ρ, ρu, ρv, ρw, e].
func (f Freestream) Conserved() [5]float64 {
	u, v, w := f.Velocity()
	p := f.Pressure()
	e := p/(Gamma-1) + 0.5*(u*u+v*v+w*w)
	return [5]float64{1, u, v, w, e}
}

// MuCoef returns the coefficient multiplying viscous fluxes,
// M∞/Re (the nondimensional freestream dynamic viscosity when velocities
// are scaled by the sound speed). Zero when Re is zero (inviscid).
func (f Freestream) MuCoef() float64 {
	if f.Re <= 0 {
		return 0
	}
	return f.Mach / f.Re
}

// Primitive converts a conserved state to (ρ, u, v, w, p).
func Primitive(q [5]float64) (rho, u, v, w, p float64) {
	rho = q[0]
	if rho < 1e-12 {
		rho = 1e-12
	}
	u = q[1] / rho
	v = q[2] / rho
	w = q[3] / rho
	p = (Gamma - 1) * (q[4] - 0.5*rho*(u*u+v*v+w*w))
	if p < 1e-12 {
		p = 1e-12
	}
	return
}

// SoundSpeed returns the local speed of sound for the given primitive state.
func SoundSpeed(rho, p float64) float64 {
	return math.Sqrt(Gamma * p / rho)
}
