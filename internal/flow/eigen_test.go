package flow

import (
	"math"
	"math/rand"
	"testing"
)

// numJacobian computes ∂F̂/∂Q by central finite differences.
func numJacobian(q [5]float64, kx, ky, kz, kt float64) [5][5]float64 {
	var jac [5][5]float64
	for j := 0; j < 5; j++ {
		h := 1e-7 * (1 + math.Abs(q[j]))
		qp, qm := q, q
		qp[j] += h
		qm[j] -= h
		fp := Flux(qp, kx, ky, kz, kt)
		fm := Flux(qm, kx, ky, kz, kt)
		for i := 0; i < 5; i++ {
			jac[i][j] = (fp[i] - fm[i]) / (2 * h)
		}
	}
	return jac
}

func randomState(rng *rand.Rand) [5]float64 {
	rho := 0.5 + rng.Float64()
	u := rng.NormFloat64() * 0.5
	v := rng.NormFloat64() * 0.5
	w := rng.NormFloat64() * 0.5
	p := 0.3 + rng.Float64()
	e := p/(Gamma-1) + 0.5*rho*(u*u+v*v+w*w)
	return [5]float64{rho, rho * u, rho * v, rho * w, e}
}

func TestEigenSimilarityMatchesJacobian(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		q := randomState(rng)
		kx := rng.NormFloat64()
		ky := rng.NormFloat64()
		kz := rng.NormFloat64()
		kt := rng.NormFloat64() * 0.3
		if kx*kx+ky*ky+kz*kz < 0.01 {
			continue
		}
		e := NewEigen(q, kx, ky, kz, kt)
		want := numJacobian(q, kx, ky, kz, kt)
		// Reconstruct A = T Λ T⁻¹.
		var got [5][5]float64
		for i := 0; i < 5; i++ {
			for j := 0; j < 5; j++ {
				s := 0.0
				for m := 0; m < 5; m++ {
					s += e.T[i][m] * e.Lam[m] * e.Ti[m][j]
				}
				got[i][j] = s
			}
		}
		scale := 0.0
		for i := 0; i < 5; i++ {
			for j := 0; j < 5; j++ {
				if a := math.Abs(want[i][j]); a > scale {
					scale = a
				}
			}
		}
		for i := 0; i < 5; i++ {
			for j := 0; j < 5; j++ {
				if diff := math.Abs(got[i][j] - want[i][j]); diff > 1e-4*(1+scale) {
					t.Fatalf("trial %d: A[%d][%d] = %v, want %v (diff %v)\nq=%v k=(%v,%v,%v) kt=%v",
						trial, i, j, got[i][j], want[i][j], diff, q, kx, ky, kz, kt)
				}
			}
		}
	}
}

func TestEigenInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		q := randomState(rng)
		e := NewEigen(q, 0.3+rng.Float64(), rng.NormFloat64(), rng.NormFloat64(), 0)
		for i := 0; i < 5; i++ {
			for j := 0; j < 5; j++ {
				s := 0.0
				for m := 0; m < 5; m++ {
					s += e.T[i][m] * e.Ti[m][j]
				}
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(s-want) > 1e-10 {
					t.Fatalf("trial %d: (T·T⁻¹)[%d][%d] = %v", trial, i, j, s)
				}
			}
		}
	}
}

func TestEigenMulRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := randomState(rng)
	e := NewEigen(q, 1, 0.2, -0.4, 0.1)
	x := [5]float64{0.3, -1.2, 0.8, 0.05, 2.1}
	y := e.MulT(e.MulTi(x))
	for i := 0; i < 5; i++ {
		if math.Abs(y[i]-x[i]) > 1e-10 {
			t.Fatalf("round trip component %d: %v vs %v", i, y[i], x[i])
		}
	}
}

func TestFluxFreestreamConsistency(t *testing.T) {
	fs := Freestream{Mach: 0.8}
	q := fs.Conserved()
	// Flux along a direction orthogonal to the flow with no motion:
	// only pressure terms survive in momentum.
	f := Flux(q, 0, 1, 0, 0)
	if math.Abs(f[0]) > 1e-12 {
		t.Errorf("mass flux across streamline = %v", f[0])
	}
	if math.Abs(f[2]-fs.Pressure()) > 1e-12 {
		t.Errorf("y-momentum flux = %v, want p = %v", f[2], fs.Pressure())
	}
	// Along the flow: mass flux = ρ u kx.
	f = Flux(q, 1, 0, 0, 0)
	if math.Abs(f[0]-0.8) > 1e-12 {
		t.Errorf("mass flux = %v, want 0.8", f[0])
	}
}

func TestSpectralRadius(t *testing.T) {
	fs := Freestream{Mach: 0.5}
	q := fs.Conserved()
	// σ = |u| + a for unit metric: 0.5 + 1.
	got := SpectralRadius(q, 1, 0, 0, 0)
	if math.Abs(got-1.5) > 1e-12 {
		t.Errorf("spectral radius = %v, want 1.5", got)
	}
	// Grid motion shifts the convective part.
	got = SpectralRadius(q, 1, 0, 0, -0.5)
	if math.Abs(got-1.0) > 1e-12 {
		t.Errorf("moving spectral radius = %v, want 1.0", got)
	}
}

func TestPrimitiveFloorsDegenerate(t *testing.T) {
	rho, _, _, _, p := Primitive([5]float64{-1, 0, 0, 0, -1})
	if rho <= 0 || p <= 0 {
		t.Errorf("Primitive should floor: rho=%v p=%v", rho, p)
	}
}

func TestFreestreamConserved(t *testing.T) {
	fs := Freestream{Mach: 0.8, Alpha: math.Pi / 36} // 5 degrees
	q := fs.Conserved()
	rho, u, v, w, p := Primitive(q)
	if math.Abs(rho-1) > 1e-12 || math.Abs(p-1/Gamma) > 1e-12 {
		t.Errorf("rho=%v p=%v", rho, p)
	}
	if math.Abs(math.Hypot(u, v)-0.8) > 1e-12 || w != 0 {
		t.Errorf("speed = %v", math.Hypot(u, v))
	}
	if math.Abs(v/u-math.Tan(math.Pi/36)) > 1e-12 {
		t.Errorf("alpha wrong: u=%v v=%v", u, v)
	}
	// Sound speed is 1 in this nondimensionalization.
	if a := SoundSpeed(rho, p); math.Abs(a-1) > 1e-12 {
		t.Errorf("a∞ = %v, want 1", a)
	}
}

func TestMuCoef(t *testing.T) {
	fs := Freestream{Mach: 0.8, Re: 1e6}
	if got := fs.MuCoef(); math.Abs(got-0.8e-6) > 1e-18 {
		t.Errorf("MuCoef = %v", got)
	}
	if (Freestream{Mach: 0.8}).MuCoef() != 0 {
		t.Error("inviscid MuCoef should be 0")
	}
}
