package flow

import (
	"math"
	"testing"

	"overd/internal/geom"
	"overd/internal/grid"
	"overd/internal/gridgen"
)

// flatChannel builds a simple 2-D rectangular grid with configurable BCs.
func flatChannel(bcJMin, bcJMax grid.BC) *grid.Grid {
	g := grid.New(0, "chan", 12, 8, 1)
	for j := 0; j < 8; j++ {
		for i := 0; i < 12; i++ {
			g.SetBody(i, j, 0, geom.Vec3{X: float64(i) * 0.5, Y: float64(j) * 0.5})
		}
	}
	g.BCs[grid.JMin] = bcJMin
	g.BCs[grid.JMax] = bcJMax
	return g
}

func TestFarfieldInflowSetsFreestream(t *testing.T) {
	g := flatChannel(grid.BCFarfield, grid.BCFarfield)
	fs := Freestream{Mach: 0.5, Alpha: math.Pi / 2} // flow straight up: +y
	b := NewBlock(g, g.Full(), fs)
	// Perturb the whole field, then apply BCs: the JMin face (inflow,
	// freestream coming up through it) must revert to freestream.
	for n := 0; n < b.NPointsLocal(); n++ {
		q := b.QAt(n)
		q[0] = 1.7
		b.SetQ(n, q)
	}
	b.ApplyBCs()
	qf := fs.Conserved()
	b.eachFacePoint(grid.JMin, func(p, in int) {
		q := b.QAt(p)
		for c := 0; c < 5; c++ {
			if math.Abs(q[c]-qf[c]) > 1e-12 {
				t.Fatalf("inflow point not freestream: %v", q)
			}
		}
	})
	// The JMax face sees outflow: extrapolated from interior (rho = 1.7).
	// Corner columns are excluded: the i-face BCs run first and reset the
	// corner neighborhoods to freestream.
	b.eachFacePoint(grid.JMax, func(p, in int) {
		li := p % b.MI
		if li < Halo+2 || li >= b.MI-Halo-2 {
			return
		}
		if q := b.QAt(p); math.Abs(q[0]-1.7) > 1e-12 {
			t.Fatalf("outflow point should extrapolate: rho = %v", q[0])
		}
	})
}

func TestSymmetryBCRemovesNormalVelocity(t *testing.T) {
	g := flatChannel(grid.BCSymmetry, grid.BCFarfield)
	fs := Freestream{Mach: 0.5}
	b := NewBlock(g, g.Full(), fs)
	// Give the interior a downward velocity component.
	for n := 0; n < b.NPointsLocal(); n++ {
		e := fs.Pressure()/(Gamma-1) + 0.5*(0.5*0.5+0.2*0.2)
		b.SetQ(n, [5]float64{1, 0.5, -0.2, 0, e})
	}
	b.ApplyBCs()
	b.eachFacePoint(grid.JMin, func(p, in int) {
		_, u, v, _, _ := Primitive(b.QAt(p))
		if math.Abs(v) > 1e-12 {
			t.Fatalf("symmetry plane has normal velocity %v", v)
		}
		if math.Abs(u-0.5) > 1e-12 {
			t.Fatalf("tangential velocity should survive: %v", u)
		}
	})
}

func TestViscousWallNoSlip(t *testing.T) {
	g := flatChannel(grid.BCWall, grid.BCFarfield)
	g.Viscous = true
	fs := Freestream{Mach: 0.5, Re: 1e5}
	b := NewBlock(g, g.Full(), fs)
	b.ApplyBCs()
	b.eachFacePoint(grid.JMin, func(p, in int) {
		_, u, v, w, _ := Primitive(b.QAt(p))
		if math.Abs(u)+math.Abs(v)+math.Abs(w) > 1e-12 {
			t.Fatalf("no-slip wall moving: (%v,%v,%v)", u, v, w)
		}
	})
}

func TestMovingWallVelocityMatchesGrid(t *testing.T) {
	g := flatChannel(grid.BCWall, grid.BCFarfield)
	g.Viscous = true
	g.Moving = true
	fs := Freestream{Mach: 0.5, Re: 1e5}
	b := NewBlock(g, g.Full(), fs)
	// Translate the grid and refresh with dt so XT is nonzero.
	g.ApplyTransform(geom.Transform{R: geom.Identity3(), T: geom.Vec3{X: 0.1}})
	b.RefreshGeometry(0.05) // wall speed = 2 in +x
	b.ApplyBCs()
	b.eachFacePoint(grid.JMin, func(p, in int) {
		_, u, v, _, _ := Primitive(b.QAt(p))
		if math.Abs(u-2.0) > 1e-9 || math.Abs(v) > 1e-9 {
			t.Fatalf("moving no-slip wall velocity (%v,%v), want (2,0)", u, v)
		}
	})
}

func TestViscousFluxDiffusesShear(t *testing.T) {
	// A shear profile u(y) must experience viscous momentum exchange: the
	// RHS contribution of the viscous terms is nonzero and smooths the
	// profile (positive where u is locally low, negative where high).
	g := flatChannel(grid.BCWall, grid.BCFarfield)
	g.Viscous = true
	fs := Freestream{Mach: 0.5, Re: 1e3}
	b := NewBlock(g, g.Full(), fs)
	b.SetViscousDirs([3]bool{false, true, false})
	b.ensureScratch()
	// u varies with j with a kink at mid-height.
	for lk := 0; lk < b.MK; lk++ {
		for lj := 0; lj < b.MJ; lj++ {
			u := 0.1 * math.Abs(float64(lj)-float64(b.MJ)/2)
			for li := 0; li < b.MI; li++ {
				p := b.LIdx(li, lj, lk)
				e := fs.Pressure()/(Gamma-1) + 0.5*u*u
				b.SetQ(p, [5]float64{1, u, 0, 0, e})
			}
		}
	}
	for i := range b.RHS {
		b.RHS[i] = 0
	}
	b.refreshPrimitives()
	flops := b.addViscousRHS()
	if flops <= 0 {
		t.Fatal("no viscous work recorded")
	}
	maxMom := 0.0
	b.eachInterior(func(p int) {
		if v := math.Abs(b.RHS[5*p+1]); v > maxMom {
			maxMom = v
		}
	})
	if maxMom == 0 {
		t.Error("viscous terms left a sheared profile untouched")
	}
}

func TestForcesLiftSignOnInclinedPressure(t *testing.T) {
	// Higher pressure below the airfoil than above must give positive lift.
	g := gridgen.AirfoilOGrid(0, "airfoil", 64, 10, 4)
	g.Viscous = false
	fs := Freestream{Mach: 0.5}
	b := NewBlock(g, g.Full(), fs)
	for lk := 0; lk < b.MK; lk++ {
		for lj := 0; lj < b.MJ; lj++ {
			for li := 0; li < b.MI; li++ {
				p := b.LIdx(li, lj, lk)
				pr := fs.Pressure()
				if b.YL[p] < 0 {
					pr *= 1.3 // overpressure below
				}
				b.SetQ(p, [5]float64{1, 0, 0, 0, pr / (Gamma - 1)})
			}
		}
	}
	force, _, _ := b.Forces(geom.Vec3{X: 0.25})
	if force.Y <= 0 {
		t.Errorf("lift should be positive with overpressure below: Fy = %v", force.Y)
	}
}
