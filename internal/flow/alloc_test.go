package flow

import (
	"runtime"
	"testing"

	"overd/internal/gridgen"
	"overd/internal/machine"
	"overd/internal/par"
)

// pinOneProc pins GOMAXPROCS to 1 for the duration of the test.
// testing.AllocsPerRun counts every allocation in the process during its
// runs, so at GOMAXPROCS>1 a concurrently scheduled goroutine (GC worker,
// another rank) can charge allocations to the measured hot path and flake
// the zero-alloc assertion — the measurement needs serial execution even
// though the measured code is parallel-safe.
func pinOneProc(t *testing.T) {
	t.Helper()
	old := runtime.GOMAXPROCS(1)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// allocBlock builds the same isolated single-rank block the benchmarks use.
func allocBlock() (*Block, *par.World) {
	g := gridgen.AirfoilOGrid(0, "airfoil", 128, 32, 3)
	g.Turbulent = true
	fs := Freestream{Mach: 0.8, Re: 1e6}
	w := par.NewWorld(1, machine.SP2())
	blk := NewBlock(g, g.Full(), fs)
	blk.Nbr[0][0] = Neighbor{Rank: 0, Wrap: true}
	blk.Nbr[0][1] = Neighbor{Rank: 0, Wrap: true}
	return blk, w
}

// The fused RHS kernel must not allocate once scratch is warm: the hot path
// is re-run every timestep and any per-call garbage shows up directly in
// the wall-clock tables.
func TestComputeRHSZeroAlloc(t *testing.T) {
	pinOneProc(t)
	blk, _ := allocBlock()
	blk.ComputeRHS(0.01) // warm scratch
	if n := testing.AllocsPerRun(10, func() {
		blk.ComputeRHS(0.01)
	}); n != 0 {
		t.Fatalf("ComputeRHS allocates %v times per call, want 0", n)
	}
}

// The diagonalized ADI sweep (including the pipelined line solves and the
// update application) must be allocation-free in steady state.
func TestSolveADIZeroAlloc(t *testing.T) {
	pinOneProc(t)
	blk, w := allocBlock()
	w.Run(func(r *par.Rank) {
		blk.ComputeRHS(0.01)
		blk.SolveADI(r, 0.01) // warm scratch and pools
		if n := testing.AllocsPerRun(10, func() {
			blk.SolveADI(r, 0.01)
		}); n != 0 {
			t.Fatalf("SolveADI allocates %v times per call, want 0", n)
		}
	})
}

// ApplyUpdate is a pure sweep over Q/DQ and may never allocate.
func TestApplyUpdateZeroAlloc(t *testing.T) {
	pinOneProc(t)
	blk, w := allocBlock()
	w.Run(func(r *par.Rank) {
		blk.ComputeRHS(0.01)
		blk.SolveADI(r, 0.01)
		if n := testing.AllocsPerRun(10, func() {
			blk.ApplyUpdate()
		}); n != 0 {
			t.Fatalf("ApplyUpdate allocates %v times per call, want 0", n)
		}
	})
}

// Halo pack/unpack reuse envelope buffers; with a warm buffer the row-wise
// bulk copies must not allocate.
func TestHaloPackUnpackZeroAlloc(t *testing.T) {
	pinOneProc(t)
	blk, _ := allocBlock()
	buf := blk.packFace(nil, 0, 0)
	data := append([]float64(nil), buf...)
	if n := testing.AllocsPerRun(10, func() {
		buf = blk.packFace(buf[:0], 0, 0)
	}); n != 0 {
		t.Fatalf("packFace allocates %v times per call, want 0", n)
	}
	if n := testing.AllocsPerRun(10, func() {
		blk.unpackFace(0, 0, data)
	}); n != 0 {
		t.Fatalf("unpackFace allocates %v times per call, want 0", n)
	}
}

// The Baldwin-Lomax pass reuses per-line scratch from the block.
func TestComputeTurbulenceZeroAlloc(t *testing.T) {
	pinOneProc(t)
	blk, _ := allocBlock()
	blk.ComputeTurbulence() // warm scratch
	if n := testing.AllocsPerRun(10, func() {
		blk.ComputeTurbulence()
	}); n != 0 {
		t.Fatalf("ComputeTurbulence allocates %v times per call, want 0", n)
	}
}
