package flow

import (
	"overd/internal/metrics"
	"overd/internal/par"
)

// publishHaloMetrics records one halo exchange's shipped volume. Registered
// per call (an idempotent map lookup) at per-step frequency — cheap, and it
// keeps Block free of registry plumbing.
func publishHaloMetrics(r *par.Rank, planes, bytes int) {
	reg := r.MetricsRegistry()
	if reg == nil {
		return
	}
	reg.Counter("overd_flow_halo_planes_total", metrics.Opts{
		Help: "halo boundary planes shipped to face neighbors", Windowed: true,
	}).Add(r.ID, float64(planes))
	reg.Counter("overd_flow_halo_bytes_total", metrics.Opts{
		Help: "modeled halo-exchange payload bytes shipped", Windowed: true,
	}).Add(r.ID, float64(bytes))
}

// publishFlowStepMetrics records one implicit timestep's solver work: the
// step itself and the ADI line-solve sweep directions performed.
func publishFlowStepMetrics(r *par.Rank, sweeps int) {
	reg := r.MetricsRegistry()
	if reg == nil {
		return
	}
	reg.Counter("overd_flow_steps_total", metrics.Opts{
		Help: "implicit flow timesteps advanced", Windowed: true,
	}).Add(r.ID, 1)
	reg.Counter("overd_flow_sweeps_total", metrics.Opts{
		Help: "ADI factorization sweep directions performed", Windowed: true,
	}).Add(r.ID, float64(sweeps))
}
