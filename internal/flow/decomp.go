package flow

import (
	"fmt"

	"overd/internal/grid"
)

// BuildBlocks constructs the solver blocks for one component grid from its
// subdomain boxes and the world ranks that own them (boxes[i] is owned by
// ranks[i]), wiring face neighbors — including the periodic wrap in i for
// O-grids. The decomposition must be regular (a product of one-dimensional
// splits, as produced by balance.Subdivide) so that each face has at most
// one neighbor.
func BuildBlocks(g *grid.Grid, boxes []grid.IBox, ranks []int, fs Freestream) []*Block {
	if len(boxes) != len(ranks) {
		panic("flow: boxes/ranks length mismatch")
	}
	blocks := make([]*Block, len(boxes))
	for i, box := range boxes {
		blocks[i] = NewBlock(g, box, fs)
		if g.Viscous {
			// Default viscous direction: wall-normal η. Cases may widen
			// this with SetViscousDirs.
			blocks[i].viscDirs = [3]bool{false, true, false}
		}
	}

	find := func(i, j, k int) int {
		for bi, box := range boxes {
			if box.Contains(i, j, k) {
				return bi
			}
		}
		return -1
	}

	for bi, box := range boxes {
		b := blocks[bi]
		type probe struct {
			dim, side int
			i, j, k   int
		}
		probes := []probe{
			{0, 0, box.ILo - 1, box.JLo, box.KLo},
			{0, 1, box.IHi + 1, box.JLo, box.KLo},
			{1, 0, box.ILo, box.JLo - 1, box.KLo},
			{1, 1, box.ILo, box.JHi + 1, box.KLo},
			{2, 0, box.ILo, box.JLo, box.KLo - 1},
			{2, 1, box.ILo, box.JLo, box.KHi + 1},
		}
		for _, p := range probes {
			i, j, k := p.i, p.j, p.k
			wrap := false
			if p.dim == 0 && g.PeriodicI() {
				if i < 0 {
					i, wrap = g.NI-1, true
				} else if i >= g.NI {
					i, wrap = 0, true
				}
			}
			if i < 0 || i >= g.NI || j < 0 || j >= g.NJ || k < 0 || k >= g.NK {
				continue
			}
			ni := find(i, j, k)
			if ni < 0 {
				panic(fmt.Sprintf("flow: no owner for probe (%d,%d,%d) of grid %q", i, j, k, g.Name))
			}
			b.Nbr[p.dim][p.side] = Neighbor{Rank: ranks[ni], Wrap: wrap}
		}
	}
	return blocks
}
