package flow

import (
	"math"

	"overd/internal/grid"
)

// ViscousDirs selects which index directions carry viscous terms on this
// block, set by the driver from the case definition: body-fitted grids use
// at least the wall-normal (η) direction (classical thin-layer); the
// delta-wing case activates all directions.
func (b *Block) SetViscousDirs(dirs [3]bool) { b.viscDirs = dirs }

// refreshPrimitives fills the scratch primitive and pressure caches from Q.
// ComputeRHS fills them fused with the spectral-radius pass; standalone
// callers of addViscousRHS (tests) refresh them here first.
func (b *Block) refreshPrimitives() {
	b.ensureScratch()
	s := b.scr
	n := b.NPointsLocal()
	for p := 0; p < n; p++ {
		rho, u, v, w, pr := Primitive(b.QAt(p))
		pm := s.prim[4*p : 4*p+4 : 4*p+4]
		pm[0], pm[1], pm[2], pm[3] = rho, u, v, w
		s.pr[p] = pr
	}
}

// AddViscousRHS accumulates the thin-layer viscous fluxes along every
// active direction into RHS (called inside ComputeRHS before the Jacobian
// scaling, which leaves the scratch primitive caches current with Q).
// Returns flops.
func (b *Block) addViscousRHS() float64 {
	mu := b.FS.MuCoef()
	if mu == 0 || !b.G.Viscous {
		return 0
	}
	b.ensureScratch()
	s := b.scr
	flops := 0.0
	ndir := 3
	if b.TwoD {
		ndir = 2
	}
	fw, rhs, upd := s.fw, b.RHS, s.upd
	iklo, ikhi := b.kBounds()
	niOwn := b.Own.NI()
	for d := 0; d < ndir; d++ {
		if !b.viscDirs[d] {
			continue
		}
		str := b.strideOf(d)
		// Interface flux between p and p+str, stored at p in fw, for every
		// point whose +d neighbor exists: one layer beyond the interior on
		// the low side so interior points can difference fw[p]-fw[p-str].
		ilo, ihi := Halo, b.MI-Halo-1
		jlo, jhi := Halo, b.MJ-Halo-1
		klo, khi := b.kBounds()
		switch d {
		case 0:
			ilo--
		case 1:
			jlo--
		default:
			klo--
		}
		for lk := klo; lk <= khi; lk++ {
			for lj := jlo; lj <= jhi; lj++ {
				base := b.LIdx(0, lj, lk)
				for li := ilo; li <= ihi; li++ {
					b.viscFlux(base+li, str, d, mu)
				}
			}
		}
		for lk := iklo; lk <= ikhi; lk++ {
			for lj := Halo; lj < b.MJ-Halo; lj++ {
				p0 := b.LIdx(Halo, lj, lk)
				for p := p0; p < p0+niOwn; p++ {
					if !upd[p] {
						continue
					}
					rp := rhs[5*p : 5*p+5 : 5*p+5]
					fp := fw[5*p : 5*p+5 : 5*p+5]
					fm := fw[5*(p-str) : 5*(p-str)+5]
					rp[0] += fp[0] - fm[0]
					rp[1] += fp[1] - fm[1]
					rp[2] += fp[2] - fm[2]
					rp[3] += fp[3] - fm[3]
					rp[4] += fp[4] - fm[4]
				}
			}
		}
		flops += float64(b.NOwned()) * flopsViscPoint
	}
	return flops
}

// viscFlux evaluates the thin-layer viscous flux at the interface between
// local points p and p+str along direction d, storing it in scr.fw[5p..].
// Primitives come from the scratch cache filled in ComputeRHS pass 1: Q is
// unchanged within the call, so the cached values are bit-identical to a
// fresh Primitive evaluation.
func (b *Block) viscFlux(p, str, d int, mu float64) {
	s := b.scr
	if !s.stv[p] || !s.stv[p+str] {
		for c := 0; c < 5; c++ {
			s.fw[5*p+c] = 0
		}
		return
	}
	pm0 := s.prim[4*p : 4*p+4 : 4*p+4]
	pm1 := s.prim[4*(p+str) : 4*(p+str)+4 : 4*(p+str)+4]
	rho0, u0, v0, w0, p0 := pm0[0], pm0[1], pm0[2], pm0[3], s.pr[p]
	rho1, u1, v1, w1, p1 := pm1[0], pm1[1], pm1[2], pm1[3], s.pr[p+str]

	// Midpoint metrics: ∇d/J and J.
	m0 := b.Met[9*p+3*d : 9*p+3*d+3 : 9*p+3*d+3]
	m1 := b.Met[9*(p+str)+3*d : 9*(p+str)+3*d+3 : 9*(p+str)+3*d+3]
	kx := 0.5 * (m0[0] + m1[0])
	ky := 0.5 * (m0[1] + m1[1])
	kz := 0.5 * (m0[2] + m1[2])
	jm := 0.5 * (b.Jac[p] + b.Jac[p+str])

	// Velocity and temperature-like differences along the line.
	du, dv, dw := u1-u0, v1-v0, w1-w0
	a20 := Gamma * p0 / rho0
	a21 := Gamma * p1 / rho1
	da2 := a21 - a20

	// Effective viscosities (laminar plus Baldwin-Lomax eddy viscosity,
	// stored as a multiple of the laminar value).
	mut := 0.0
	if b.MuT != nil {
		mut = 0.5 * (b.MuT[p] + b.MuT[p+str])
	}
	muMom := mu * (1 + mut)
	muEne := mu * (1/Pr + mut/PrT) / (Gamma - 1)

	alpha := (kx*kx + ky*ky + kz*kz) * jm
	beta := (kx*du + ky*dv + kz*dw) * jm

	um, vm, wm := 0.5*(u0+u1), 0.5*(v0+v1), 0.5*(w0+w1)

	f1 := muMom * (alpha*du + beta*kx/3)
	f2 := muMom * (alpha*dv + beta*ky/3)
	f3 := muMom * (alpha*dw + beta*kz/3)
	f4 := muMom*(alpha*(um*du+vm*dv+wm*dw)+beta*(kx*um+ky*vm+kz*wm)/3) +
		muEne*alpha*da2

	s.fw[5*p] = 0
	s.fw[5*p+1] = f1
	s.fw[5*p+2] = f2
	s.fw[5*p+3] = f3
	s.fw[5*p+4] = f4
}

// ComputeTurbulence runs the Baldwin-Lomax algebraic model along the
// wall-normal (η) lines of blocks that own the wall face (j = 0). Blocks of
// the same grid that do not contain the wall keep zero eddy viscosity — the
// outer-region contribution there is small, and wall distance is unavailable
// off-wall, the standard compromise for decomposed algebraic models.
// Returns flops.
func (b *Block) ComputeTurbulence() float64 {
	if b.MuT == nil || !b.G.Turbulent {
		return 0
	}
	for i := range b.MuT {
		b.MuT[i] = 0
	}
	if b.G.BCs[grid.JMin] != grid.BCWall || b.Own.JLo != 0 {
		return 0
	}
	mu := b.FS.MuCoef()
	if mu == 0 {
		return 0
	}

	const (
		aPlus = 26.0
		kappa = 0.40
		kBig  = 0.0168
		cCp   = 1.6
		cKleb = 0.3
		cWk   = 1.0
	)

	klo, khi := b.kBounds()
	nj := b.Own.NJ()
	b.ensureScratch()
	s := b.scr
	if cap(s.blOmega) < nj {
		s.blOmega = make([]float64, nj)
		s.blY = make([]float64, nj)
		s.blRho = make([]float64, nj)
	}
	count := 0
	for lk := klo; lk <= khi; lk++ {
		for li := Halo; li < b.MI-Halo; li++ {
			// Walk the wall-normal line.
			wallP := b.LIdx(li, Halo, lk)
			if b.IBl[wallP] == grid.IBHole {
				continue
			}
			count += nj
			// Pass 1: distance, vorticity, F(y).
			var (
				fMax, yMax   float64
				uMin, uMax   float64 = math.Inf(1), 0
				dist                 = 0.0
				prevX, prevY         = b.XL[wallP], b.YL[wallP]
				prevZ                = b.ZL[wallP]
			)
			omega := s.blOmega[:nj]
			ydist := s.blY[:nj]
			rhoL := s.blRho[:nj]
			wallVx, wallVy, wallVz := b.XT[wallP], b.YT[wallP], b.ZT[wallP]
			// The previous point's velocity is carried forward instead of
			// re-deriving it with a second Primitive call — same pure
			// function of the same unchanged Q, so the bits are identical.
			var um, vm, wm float64
			for m := 0; m < nj; m++ {
				p := b.LIdx(li, Halo+m, lk)
				rho, u, v, w, _ := Primitive(b.QAt(p))
				rhoL[m] = rho
				dx := b.XL[p] - prevX
				dy := b.YL[p] - prevY
				dz := b.ZL[p] - prevZ
				dist += math.Sqrt(dx*dx + dy*dy + dz*dz)
				prevX, prevY, prevZ = b.XL[p], b.YL[p], b.ZL[p]
				ydist[m] = dist
				// Shear magnitude: derivative of velocity along the line.
				if m > 0 {
					dy := ydist[m] - ydist[m-1]
					if dy < 1e-12 {
						dy = 1e-12
					}
					omega[m] = math.Sqrt((u-um)*(u-um)+(v-vm)*(v-vm)+(w-wm)*(w-wm)) / dy
				}
				um, vm, wm = u, v, w
				speed := math.Sqrt((u-wallVx)*(u-wallVx) + (v-wallVy)*(v-wallVy) + (w-wallVz)*(w-wallVz))
				if speed > uMax {
					uMax = speed
				}
				if speed < uMin {
					uMin = speed
				}
			}
			omega[0] = omega[1]
			tauW := mu * omega[0]
			if tauW < 1e-20 {
				continue
			}
			rhoW := rhoL[0]
			ustar := math.Sqrt(tauW / rhoW)
			for m := 1; m < nj; m++ {
				yp := ydist[m] * ustar * rhoW / mu
				dvd := 1 - math.Exp(-yp/aPlus)
				fy := ydist[m] * omega[m] * dvd
				if fy > fMax {
					fMax, yMax = fy, ydist[m]
				}
			}
			if fMax < 1e-20 {
				continue
			}
			uDif := uMax - uMin
			fWake := yMax * fMax
			if alt := cWk * yMax * uDif * uDif / fMax; alt < fWake {
				fWake = alt
			}
			// Pass 2: inner/outer with crossover.
			inner := true
			for m := 1; m < nj; m++ {
				p := b.LIdx(li, Halo+m, lk)
				y := ydist[m]
				yp := y * ustar * rhoW / mu
				dvd := 1 - math.Exp(-yp/aPlus)
				l := kappa * y * dvd
				mti := rhoL[m] * l * l * omega[m]
				fk := 1 / (1 + 5.5*math.Pow(cKleb*y/yMax, 6))
				mto := kBig * cCp * rhoL[m] * fWake * fk
				mt := mti
				if inner && mti > mto {
					inner = false
				}
				if !inner {
					mt = mto
				}
				b.MuT[p] = mt / mu // stored as a multiple of laminar μ
			}
		}
	}
	return float64(count) * flopsBLPoint
}
