package flow

import (
	"math"

	"overd/internal/grid"
)

// ViscousDirs selects which index directions carry viscous terms on this
// block, set by the driver from the case definition: body-fitted grids use
// at least the wall-normal (η) direction (classical thin-layer); the
// delta-wing case activates all directions.
func (b *Block) SetViscousDirs(dirs [3]bool) { b.viscDirs = dirs }

// AddViscousRHS accumulates the thin-layer viscous fluxes along every
// active direction into RHS (called inside ComputeRHS before the Jacobian
// scaling). Returns flops.
func (b *Block) addViscousRHS() float64 {
	mu := b.FS.MuCoef()
	if mu == 0 || !b.G.Viscous {
		return 0
	}
	b.ensureScratch()
	s := b.scr
	flops := 0.0
	ndir := 3
	if b.TwoD {
		ndir = 2
	}
	for d := 0; d < ndir; d++ {
		if !b.viscDirs[d] {
			continue
		}
		str := b.strideOf(d)
		// Interface flux between p and p+str, stored at p in fw, for every
		// point whose +d neighbor exists: one layer beyond the interior on
		// the low side so interior points can difference fw[p]-fw[p-str].
		ilo, ihi := Halo, b.MI-Halo-1
		jlo, jhi := Halo, b.MJ-Halo-1
		klo, khi := b.kBounds()
		switch d {
		case 0:
			ilo--
		case 1:
			jlo--
		default:
			klo--
		}
		for lk := klo; lk <= khi; lk++ {
			for lj := jlo; lj <= jhi; lj++ {
				for li := ilo; li <= ihi; li++ {
					b.viscFlux(b.LIdx(li, lj, lk), str, d, mu)
				}
			}
		}
		b.eachInterior(func(p int) {
			if !s.upd[p] {
				return
			}
			for c := 0; c < 5; c++ {
				b.RHS[5*p+c] += s.fw[5*p+c] - s.fw[5*(p-str)+c]
			}
		})
		flops += float64(b.NOwned()) * flopsViscPoint
	}
	return flops
}

// viscFlux evaluates the thin-layer viscous flux at the interface between
// local points p and p+str along direction d, storing it in scr.fw[5p..].
func (b *Block) viscFlux(p, str, d int, mu float64) {
	s := b.scr
	if !s.stv[p] || !s.stv[p+str] {
		for c := 0; c < 5; c++ {
			s.fw[5*p+c] = 0
		}
		return
	}
	q0 := b.QAt(p)
	q1 := b.QAt(p + str)
	rho0, u0, v0, w0, p0 := Primitive(q0)
	rho1, u1, v1, w1, p1 := Primitive(q1)

	// Midpoint metrics: ∇d/J and J.
	kx := 0.5 * (b.Met[9*p+3*d] + b.Met[9*(p+str)+3*d])
	ky := 0.5 * (b.Met[9*p+3*d+1] + b.Met[9*(p+str)+3*d+1])
	kz := 0.5 * (b.Met[9*p+3*d+2] + b.Met[9*(p+str)+3*d+2])
	jm := 0.5 * (b.Jac[p] + b.Jac[p+str])

	// Velocity and temperature-like differences along the line.
	du, dv, dw := u1-u0, v1-v0, w1-w0
	a20 := Gamma * p0 / rho0
	a21 := Gamma * p1 / rho1
	da2 := a21 - a20

	// Effective viscosities (laminar plus Baldwin-Lomax eddy viscosity,
	// stored as a multiple of the laminar value).
	mut := 0.0
	if b.MuT != nil {
		mut = 0.5 * (b.MuT[p] + b.MuT[p+str])
	}
	muMom := mu * (1 + mut)
	muEne := mu * (1/Pr + mut/PrT) / (Gamma - 1)

	alpha := (kx*kx + ky*ky + kz*kz) * jm
	beta := (kx*du + ky*dv + kz*dw) * jm

	um, vm, wm := 0.5*(u0+u1), 0.5*(v0+v1), 0.5*(w0+w1)

	f1 := muMom * (alpha*du + beta*kx/3)
	f2 := muMom * (alpha*dv + beta*ky/3)
	f3 := muMom * (alpha*dw + beta*kz/3)
	f4 := muMom*(alpha*(um*du+vm*dv+wm*dw)+beta*(kx*um+ky*vm+kz*wm)/3) +
		muEne*alpha*da2

	s.fw[5*p] = 0
	s.fw[5*p+1] = f1
	s.fw[5*p+2] = f2
	s.fw[5*p+3] = f3
	s.fw[5*p+4] = f4
}

// ComputeTurbulence runs the Baldwin-Lomax algebraic model along the
// wall-normal (η) lines of blocks that own the wall face (j = 0). Blocks of
// the same grid that do not contain the wall keep zero eddy viscosity — the
// outer-region contribution there is small, and wall distance is unavailable
// off-wall, the standard compromise for decomposed algebraic models.
// Returns flops.
func (b *Block) ComputeTurbulence() float64 {
	if b.MuT == nil || !b.G.Turbulent {
		return 0
	}
	for i := range b.MuT {
		b.MuT[i] = 0
	}
	if b.G.BCs[grid.JMin] != grid.BCWall || b.Own.JLo != 0 {
		return 0
	}
	mu := b.FS.MuCoef()
	if mu == 0 {
		return 0
	}

	const (
		aPlus = 26.0
		kappa = 0.40
		kBig  = 0.0168
		cCp   = 1.6
		cKleb = 0.3
		cWk   = 1.0
	)

	klo, khi := b.kBounds()
	nj := b.Own.NJ()
	count := 0
	for lk := klo; lk <= khi; lk++ {
		for li := Halo; li < b.MI-Halo; li++ {
			// Walk the wall-normal line.
			wallP := b.LIdx(li, Halo, lk)
			if b.IBl[wallP] == grid.IBHole {
				continue
			}
			count += nj
			// Pass 1: distance, vorticity, F(y).
			var (
				fMax, yMax   float64
				uMin, uMax   float64 = math.Inf(1), 0
				dist                 = 0.0
				prevX, prevY         = b.XL[wallP], b.YL[wallP]
				prevZ                = b.ZL[wallP]
			)
			omega := make([]float64, nj)
			ydist := make([]float64, nj)
			rhoL := make([]float64, nj)
			wallVx, wallVy, wallVz := b.XT[wallP], b.YT[wallP], b.ZT[wallP]
			for m := 0; m < nj; m++ {
				p := b.LIdx(li, Halo+m, lk)
				rho, u, v, w, _ := Primitive(b.QAt(p))
				rhoL[m] = rho
				dx := b.XL[p] - prevX
				dy := b.YL[p] - prevY
				dz := b.ZL[p] - prevZ
				dist += math.Sqrt(dx*dx + dy*dy + dz*dz)
				prevX, prevY, prevZ = b.XL[p], b.YL[p], b.ZL[p]
				ydist[m] = dist
				// Shear magnitude: derivative of velocity along the line.
				if m > 0 {
					pm := b.LIdx(li, Halo+m-1, lk)
					_, um, vm, wm, _ := Primitive(b.QAt(pm))
					dy := ydist[m] - ydist[m-1]
					if dy < 1e-12 {
						dy = 1e-12
					}
					omega[m] = math.Sqrt((u-um)*(u-um)+(v-vm)*(v-vm)+(w-wm)*(w-wm)) / dy
				}
				speed := math.Sqrt((u-wallVx)*(u-wallVx) + (v-wallVy)*(v-wallVy) + (w-wallVz)*(w-wallVz))
				if speed > uMax {
					uMax = speed
				}
				if speed < uMin {
					uMin = speed
				}
			}
			omega[0] = omega[1]
			tauW := mu * omega[0]
			if tauW < 1e-20 {
				continue
			}
			rhoW := rhoL[0]
			ustar := math.Sqrt(tauW / rhoW)
			for m := 1; m < nj; m++ {
				yp := ydist[m] * ustar * rhoW / mu
				dvd := 1 - math.Exp(-yp/aPlus)
				fy := ydist[m] * omega[m] * dvd
				if fy > fMax {
					fMax, yMax = fy, ydist[m]
				}
			}
			if fMax < 1e-20 {
				continue
			}
			uDif := uMax - uMin
			fWake := yMax * fMax
			if alt := cWk * yMax * uDif * uDif / fMax; alt < fWake {
				fWake = alt
			}
			// Pass 2: inner/outer with crossover.
			inner := true
			for m := 1; m < nj; m++ {
				p := b.LIdx(li, Halo+m, lk)
				y := ydist[m]
				yp := y * ustar * rhoW / mu
				dvd := 1 - math.Exp(-yp/aPlus)
				l := kappa * y * dvd
				mti := rhoL[m] * l * l * omega[m]
				fk := 1 / (1 + 5.5*math.Pow(cKleb*y/yMax, 6))
				mto := kBig * cCp * rhoL[m] * fWake * fk
				mt := mti
				if inner && mti > mto {
					inner = false
				}
				if !inner {
					mt = mto
				}
				b.MuT[p] = mt / mu // stored as a multiple of laminar μ
			}
		}
	}
	return float64(count) * flopsBLPoint
}
