package balance

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"overd/internal/grid"
)

func TestRegistryNames(t *testing.T) {
	names := Names()
	want := []string{"diffusive", "dynamic", "sfc", "static"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	if _, err := New("nope", Params{}); err == nil || !strings.Contains(err.Error(), `unknown balancer "nope"`) {
		t.Errorf("New(nope) error = %v, want unknown-balancer", err)
	}
	for _, name := range names {
		b, err := New(name, Params{Fo: 5, CheckInterval: 2})
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		if b.Name() != name {
			t.Errorf("New(%s).Name() = %q", name, b.Name())
		}
	}
}

func TestValidateSelection(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name    string
		fo      float64
		wantErr string // substring, "" = valid
	}{
		{"", inf, ""},
		{"", 5, ""}, // empty resolves from fo, never contradictory
		{"static", inf, ""},
		{"static", 0, ""},
		{"static", 5, "no effect"},
		{"sfc", inf, ""},
		{"sfc", 2, "no effect"},
		{"dynamic", 5, ""},
		{"dynamic", inf, "finite load factor"},
		{"dynamic", 0, "finite load factor"},
		{"diffusive", inf, ""},
		{"diffusive", 1.5, ""},
		{"diffusive", 1, "must exceed 1"},
		{"diffusive", 0.5, "must exceed 1"},
		{"bogus", inf, `unknown balancer "bogus"`},
	}
	for _, c := range cases {
		err := ValidateSelection(c.name, c.fo)
		if c.wantErr == "" {
			if err != nil {
				t.Errorf("ValidateSelection(%q, %g) = %v, want nil", c.name, c.fo, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("ValidateSelection(%q, %g) = %v, want error containing %q", c.name, c.fo, err, c.wantErr)
		}
	}
}

func TestDynamicBalancerActive(t *testing.T) {
	mk := func(fo float64) StepBalancer {
		b, err := New("dynamic", Params{Fo: fo, CheckInterval: 5})
		if err != nil {
			t.Fatal(err)
		}
		return b.(StepBalancer)
	}
	if mk(math.Inf(1)).Active() {
		t.Error("dynamic with fo=+Inf should be inactive")
	}
	if mk(0).Active() {
		t.Error("dynamic with fo=0 should be inactive")
	}
	if !mk(5).Active() {
		t.Error("dynamic with fo=5 should be active")
	}
	if !mk(5).Needs().IGBPs {
		t.Error("dynamic should request IGBPs")
	}
}

// The old ad-hoc isInf helper treated any factor above 1e300 as infinite,
// silently disabling an absurd-but-finite fo; the math.IsInf replacement
// must keep true +Inf, -Inf (via fo <= 0) and NaN disabled while letting a
// finite 1e301 run its (never-firing) check.
func TestDynamicFoSentinels(t *testing.T) {
	plan, err := Static([]int{1000, 1000}, 4)
	if err != nil {
		t.Fatal(err)
	}
	recv := []int{100, 0, 0, 0} // wildly imbalanced: factor 4 on rank 0

	for _, fo := range []float64{math.Inf(1), math.Inf(-1), 0, -3, math.NaN()} {
		d := Dynamic{Fo: fo, CheckInterval: 5}
		got, res, err := d.Check(plan, []int{1000, 1000}, recv)
		if err != nil {
			t.Fatalf("fo=%g: %v", fo, err)
		}
		if res.Rebalanced || got != plan || res.MaxF != 0 {
			t.Errorf("fo=%g should disable the check entirely, got %+v", fo, res)
		}
	}

	// Finite but enormous: the check runs (MaxF computed) and never fires.
	d := Dynamic{Fo: 1e301, CheckInterval: 5}
	_, res, err := d.Check(plan, []int{1000, 1000}, recv)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebalanced {
		t.Error("fo=1e301 can never be exceeded")
	}
	if res.MaxF != 4 {
		t.Errorf("fo=1e301 should still measure MaxF = 4, got %g", res.MaxF)
	}
}

func TestMortonOrderFollowsSpace(t *testing.T) {
	// Three grids along the x axis, listed out of order: the curve visits
	// them left to right.
	centers := [][3]float64{{90, 0, 0}, {10, 0, 0}, {50, 0, 0}}
	got := mortonOrder(centers, 3)
	if !reflect.DeepEqual(got, []int{1, 2, 0}) {
		t.Errorf("mortonOrder = %v, want [1 2 0]", got)
	}
	// Nil or mismatched centers: grid-index order.
	if got := mortonOrder(nil, 3); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("mortonOrder(nil) = %v", got)
	}
	// Identical centers: stable, so grid-index order again.
	same := [][3]float64{{1, 1, 1}, {1, 1, 1}, {1, 1, 1}}
	if got := mortonOrder(same, 3); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("mortonOrder(identical) = %v", got)
	}
}

func TestMortonKeyInterleaves(t *testing.T) {
	if k := mortonKey(1, 0, 0); k != 1 {
		t.Errorf("mortonKey(1,0,0) = %d, want 1", k)
	}
	if k := mortonKey(0, 1, 0); k != 2 {
		t.Errorf("mortonKey(0,1,0) = %d, want 2", k)
	}
	if k := mortonKey(0, 0, 1); k != 4 {
		t.Errorf("mortonKey(0,0,1) = %d, want 4", k)
	}
	// Keys preserve dominance: a point farther along every axis sorts later.
	if mortonKey(3, 3, 3) <= mortonKey(2, 2, 2) {
		t.Error("dominated point should have the smaller key")
	}
}

func TestKnapsackCountsProportional(t *testing.T) {
	sizes := []int{6000, 3000, 1000}
	order := []int{0, 1, 2}
	counts := knapsackCounts(sizes, 10, order)
	if got := counts[0] + counts[1] + counts[2]; got != 10 {
		t.Fatalf("counts %v sum to %d, want 10", counts, got)
	}
	if !reflect.DeepEqual(counts, []int{6, 3, 1}) {
		t.Errorf("counts = %v, want [6 3 1]", counts)
	}
}

func TestSFCPlanErrors(t *testing.T) {
	b, err := New("sfc", Params{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Plan(Input{}); err == nil {
		t.Error("want error for zero grids")
	}
	in := Input{Sizes: []int{100, 100}, Dims: [][3]int{{10, 10, 1}, {10, 10, 1}}, NP: 1}
	if _, err := b.Plan(in); err == nil || !strings.Contains(err.Error(), "cannot cover") {
		t.Errorf("want too-few-processors error, got %v", err)
	}
}

func TestSFCPlanOrdersRanksAlongCurve(t *testing.T) {
	b, err := New("sfc", Params{})
	if err != nil {
		t.Fatal(err)
	}
	in := Input{
		Sizes:   []int{400, 400},
		Dims:    [][3]int{{20, 20, 1}, {20, 20, 1}},
		Centers: [][3]float64{{100, 0, 0}, {0, 0, 0}}, // grid 1 first on the curve
		NP:      4,
	}
	plan, err := b.Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Parts[0].Grid != 1 {
		t.Errorf("rank 0 should land on the curve-first grid 1, got grid %d", plan.Parts[0].Grid)
	}
	if plan.Tau < 0 {
		t.Errorf("Tau = %g, want >= 0", plan.Tau)
	}
}

func newDiffusive(t *testing.T, fo float64) StepBalancer {
	t.Helper()
	b, err := New("diffusive", Params{Fo: fo})
	if err != nil {
		t.Fatal(err)
	}
	return b.(StepBalancer)
}

func TestDiffusiveMigratesTowardBusyGrid(t *testing.T) {
	sizes := []int{1000, 1000}
	dims := [][3]int{{10, 10, 10}, {10, 10, 10}}
	in := Input{Sizes: sizes, Dims: dims, NP: 4}
	b := newDiffusive(t, math.Inf(1)) // default 1.15 threshold
	if !b.Active() || !b.Needs().Waits {
		t.Fatal("diffusive should be active and wait-fed")
	}
	cur, err := b.Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	// Np = [2, 2]; ranks 0,1 on grid 0, ranks 2,3 on grid 1. Rank 0 is
	// drowning, rank 3 idles: grid 0 should take a processor from grid 1.
	fb := Feedback{Busy: []float64{10, 5, 5, 1}, Wait: []float64{0, 5, 5, 9}}
	got, res, err := b.Rebalance(cur, in, fb)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rebalanced {
		t.Fatal("10x busy spread should trigger a migration")
	}
	if !reflect.DeepEqual(got.Np, []int{3, 1}) {
		t.Errorf("Np = %v, want [3 1]", got.Np)
	}
	for _, p := range got.Parts {
		if !p.Box.Valid() {
			t.Fatalf("rank %d box not filled", p.Rank)
		}
	}
	if res.MaxF <= 1 {
		t.Errorf("MaxF = %g, want > 1 for an imbalanced vector", res.MaxF)
	}
}

func TestDiffusiveQuietBelowThreshold(t *testing.T) {
	in := Input{Sizes: []int{1000, 1000}, Dims: [][3]int{{10, 10, 10}, {10, 10, 10}}, NP: 4}
	b := newDiffusive(t, 2) // rebalance only beyond a 2x spread
	cur, err := b.Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	got, res, err := b.Rebalance(cur, in, Feedback{Busy: []float64{3, 2, 2, 2}, Wait: make([]float64, 4)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebalanced || got != cur {
		t.Error("1.5x spread under a 2x threshold should be a no-op")
	}
	// Zero busy anywhere (no signal yet) is also a no-op, not a division.
	got, res, err = b.Rebalance(cur, in, Feedback{Busy: []float64{3, 2, 2, 0}, Wait: make([]float64, 4)})
	if err != nil || res.Rebalanced || got != cur {
		t.Errorf("zero-busy rank should suppress migration, got %+v, %v", res, err)
	}
	if _, _, err := b.Rebalance(cur, in, Feedback{Busy: []float64{1}}); err == nil {
		t.Error("want length-mismatch error")
	}
}

func TestDiffusiveFallbackDonor(t *testing.T) {
	// Busiest and idlest rank on the same grid: the donor must be another
	// grid that can spare a processor.
	in := Input{Sizes: []int{2000, 1000}, Dims: [][3]int{{20, 10, 10}, {10, 10, 10}}, NP: 4}
	b := newDiffusive(t, math.Inf(1))
	cur, err := b.Plan(in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cur.Np, []int{3, 1}) {
		t.Fatalf("precondition: Np = %v, want [3 1]", cur.Np)
	}
	// Ranks 0-2 on grid 0, rank 3 on grid 1. Busiest rank 0 and idlest
	// rank 2 share grid 0; grid 1 has only one processor, so no donor
	// exists and the check must stand pat rather than starve a grid.
	fb := Feedback{Busy: []float64{10, 9, 1, 9}, Wait: make([]float64, 4)}
	got, res, err := b.Rebalance(cur, in, fb)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebalanced || got != cur {
		t.Error("no eligible donor: rebalance should be a no-op")
	}
}

func TestMovedPoints(t *testing.T) {
	dims := [][3]int{{10, 10, 1}}
	plan, err := Static([]int{100}, 2)
	if err != nil {
		t.Fatal(err)
	}
	SubdividePlan(plan, dims)
	if got := MovedPoints(plan, plan); got != 0 {
		t.Errorf("identical plans moved %d points, want 0", got)
	}
	// Swap the two ranks' boxes: every point changes owner.
	swapped := &Plan{Np: plan.Np, Tau: plan.Tau}
	swapped.Parts = []Part{
		{Grid: 0, Rank: 0, Box: plan.Parts[1].Box},
		{Grid: 0, Rank: 1, Box: plan.Parts[0].Box},
	}
	if got := MovedPoints(plan, swapped); got != 100 {
		t.Errorf("full swap moved %d points, want 100", got)
	}
}

func TestNewGrouper(t *testing.T) {
	for _, name := range []string{"group", "roundrobin"} {
		g, err := NewGrouper(name)
		if err != nil {
			t.Fatalf("NewGrouper(%s): %v", name, err)
		}
		if g.Name() != name {
			t.Errorf("NewGrouper(%s).Name() = %q", name, g.Name())
		}
		groups := g.Group([]int{10, 20, 30}, func(a, b int) bool { return false }, 2)
		n := 0
		for _, members := range groups {
			n += len(members)
		}
		if n != 3 {
			t.Errorf("%s: %d grids assigned, want 3", name, n)
		}
	}
	if _, err := NewGrouper("hashmod"); err == nil || !strings.Contains(err.Error(), "unknown grouper") {
		t.Errorf("NewGrouper(hashmod) = %v, want unknown-grouper error", err)
	}
}

func TestSubdivideSlabsHelper(t *testing.T) {
	full := grid.FullBox(30, 10, 5)
	pieces := subdivideSlabs(full, 4)
	if len(pieces) != 4 {
		t.Fatalf("got %d pieces, want 4", len(pieces))
	}
	total := 0
	for _, p := range pieces {
		if !p.Valid() {
			t.Fatal("invalid slab piece")
		}
		total += p.Count()
	}
	if total != full.Count() {
		t.Errorf("slabs cover %d of %d points", total, full.Count())
	}
}
