package balance

import (
	"fmt"
	"math"
	"sort"

	"overd/internal/grid"
)

// Input is everything an initial-plan balancer may consult: the per-grid
// point counts and index dimensions Algorithm 1 uses, the world-space grid
// centers the SFC scheme orders by, the processor count, and the
// subdivision flavor (slabs is the Fig. 4 ablation baseline).
type Input struct {
	// Sizes are the component gridpoint counts g(n).
	Sizes []int
	// Dims are the per-component index dimensions.
	Dims [][3]int
	// Centers are the world-space grid centers (geometry input for
	// space-filling-curve placement); may be nil for balancers that do
	// not consult geometry.
	Centers [][3]float64
	// NP is the processor count to distribute.
	NP int
	// Slabs selects 1-D slab subdomains instead of the prime-factor
	// minimal-surface subdivision.
	Slabs bool
}

// Balancer produces a complete initial partition, boxes filled. All
// registered balancers are deterministic: the same Input yields the same
// Plan, which is what lets the sweep harness and the serve cache treat a
// balancer name as part of a run's identity.
type Balancer interface {
	// Name is the registry name ("static", "dynamic", "sfc", ...).
	Name() string
	// Plan computes the initial partition with every Part's Box filled.
	Plan(in Input) (*Plan, error)
}

// Needs declares which step-boundary measurements a StepBalancer wants
// gathered. Each gathered quantity costs one modeled collective per check,
// so the runtime gathers only what the balancer asks for — a balancer that
// needs nothing (Active() false) perturbs no virtual clock at all.
type Needs struct {
	// IGBPs requests the per-rank received intergrid-boundary-point counts
	// (Algorithm 2's I(p)).
	IGBPs bool
	// Waits requests the per-rank busy and blocked virtual seconds since
	// the previous check (the trace layer's decomposition, measured live).
	Waits bool
}

// Feedback is the step-boundary measurement delivered to Rebalance. Only
// the slices matching Needs are populated; all are indexed by rank and
// identical on every rank (they come off a collective).
type Feedback struct {
	// Step is the 0-based timestep the check runs after.
	Step int
	// ReceivedIGBPs are the per-rank received IGBP counts since the last
	// connectivity solve (when Needs.IGBPs).
	ReceivedIGBPs []int
	// Busy and Wait are per-rank virtual seconds since the previous check:
	// Busy is clock advance minus blocked time, Wait the blocked time
	// (receive + barrier + fault wait). Populated when Needs.Waits.
	Busy []float64
	Wait []float64
}

// StepResult summarizes one step-boundary rebalance decision.
type StepResult struct {
	// Rebalanced reports whether a new plan was produced.
	Rebalanced bool
	// MaxF is the maximum observed load factor (scheme-specific: received
	// IGBPs over the mean for the dynamic scheme, busy time over the mean
	// for the diffusive one).
	MaxF float64
}

// StepBalancer is a Balancer with a periodic step-boundary rebalance hook.
// The runtime consults Active() once per run: an inactive step balancer is
// treated as a pure initial-plan balancer and triggers no measurement
// collectives, keeping such runs bit-identical to static ones.
type StepBalancer interface {
	Balancer
	// Active reports whether the step hook should run at all.
	Active() bool
	// Needs declares the measurements to gather before each Rebalance.
	Needs() Needs
	// Rebalance inspects the feedback and either returns the current plan
	// unchanged or a new plan with boxes filled. It must be a
	// deterministic pure function of its arguments: every rank calls it
	// with identical inputs and must reach the identical decision.
	Rebalance(cur *Plan, in Input, fb Feedback) (*Plan, StepResult, error)
}

// Params carries the user-facing tuning knobs into a balancer factory.
type Params struct {
	// Fo is the load factor: the dynamic scheme's I(p)/Ī trigger, and
	// (when finite and > 1) the diffusive scheme's busy-ratio threshold.
	Fo float64
	// CheckInterval is the number of timesteps between step-boundary
	// checks (enforced by the runtime, recorded here for reference).
	CheckInterval int
}

// Factory builds a balancer from its parameters.
type Factory func(p Params) Balancer

var registry = map[string]Factory{}

// Register adds a balancer factory under a unique name. Called from init
// functions; a duplicate name is a programming error and panics.
func Register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("balance: duplicate balancer %q", name))
	}
	registry[name] = f
}

// New builds the named balancer, or an error naming the valid choices.
func New(name string, p Params) (Balancer, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("balance: unknown balancer %q (valid: %s)",
			name, namesList())
	}
	return f(p), nil
}

// Names returns the registered balancer names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func namesList() string {
	s := ""
	for i, n := range Names() {
		if i > 0 {
			s += ", "
		}
		s += n
	}
	return s
}

// ValidateSelection checks a balancer name against the registry and the
// compatibility of the dynamic load factor fo with it (fo as the runtime
// sees it: +Inf or 0 means "no dynamic scheme"). It exists so the flag
// surface and the job service reject contradictions — a "static" run with a
// finite fo, a "dynamic" run with none — with one shared rule.
func ValidateSelection(name string, fo float64) error {
	if name == "" {
		// Unset: the runtime resolves it from fo, which cannot contradict
		// itself.
		return nil
	}
	if _, ok := registry[name]; !ok {
		return fmt.Errorf("balance: unknown balancer %q (valid: %s)", name, namesList())
	}
	finite := fo > 0 && !math.IsInf(fo, 1)
	switch name {
	case "dynamic":
		if !finite {
			return fmt.Errorf("balance: the dynamic balancer needs a finite load factor fo > 0 (got %g)", fo)
		}
	case "static", "sfc":
		if finite {
			return fmt.Errorf("balance: fo %g has no effect on the %s balancer (it never rebalances); leave it unset", fo, name)
		}
	case "diffusive":
		if finite && fo <= 1 {
			return fmt.Errorf("balance: the diffusive busy-ratio threshold must exceed 1 (got fo %g)", fo)
		}
	}
	return nil
}

func init() {
	Register("static", func(Params) Balancer { return staticBalancer{} })
	Register("dynamic", func(p Params) Balancer {
		return &dynamicBalancer{d: Dynamic{Fo: p.Fo, CheckInterval: p.CheckInterval}}
	})
}

// fillBoxes fills a plan's boxes with the subdivision flavor the input
// selects.
func fillBoxes(plan *Plan, in Input) {
	if in.Slabs {
		SubdividePlanSlabs(plan, in.Dims)
	} else {
		SubdividePlan(plan, in.Dims)
	}
}

// staticBalancer is Algorithm 1 behind the interface: the paper's
// gridpoint-volume distribution with prime-factor minimal-surface
// subdivision, and no step hook.
type staticBalancer struct{}

func (staticBalancer) Name() string { return "static" }

func (staticBalancer) Plan(in Input) (*Plan, error) {
	plan, err := Static(in.Sizes, in.NP)
	if err != nil {
		return nil, err
	}
	fillBoxes(plan, in)
	return plan, nil
}

// dynamicBalancer is Algorithm 2 behind the interface: a static initial
// plan plus the connectivity-driven regrow check at step boundaries. With a
// disabled load factor (fo <= 0 or +Inf) it is inert and the runtime treats
// it exactly like the static balancer.
type dynamicBalancer struct {
	staticBalancer
	d Dynamic
}

func (b *dynamicBalancer) Name() string { return "dynamic" }

func (b *dynamicBalancer) Active() bool {
	return b.d.Fo > 0 && !math.IsInf(b.d.Fo, 1)
}

func (b *dynamicBalancer) Needs() Needs { return Needs{IGBPs: true} }

func (b *dynamicBalancer) Rebalance(cur *Plan, in Input, fb Feedback) (*Plan, StepResult, error) {
	newPlan, res, err := b.d.Check(cur, in.Sizes, fb.ReceivedIGBPs)
	if err != nil || !res.Rebalanced {
		return cur, StepResult{MaxF: res.MaxF}, err
	}
	// The dynamic scheme always re-cuts with the minimal-surface rule, as
	// the original in-loop implementation did.
	SubdividePlan(newPlan, in.Dims)
	return newPlan, StepResult{Rebalanced: true, MaxF: res.MaxF}, nil
}

// MovedPoints counts the gridpoints whose owning rank differs between two
// box-filled plans of the same grid system — the volume the repartition
// actually shipped. Computed host-side from box intersections so recording
// it costs no collective (and therefore perturbs no virtual clock).
func MovedPoints(oldPlan, newPlan *Plan) int {
	moved := 0
	for _, np := range newPlan.Parts {
		for _, op := range oldPlan.Parts {
			if op.Grid != np.Grid || op.Rank == np.Rank {
				continue
			}
			if ix := op.Box.Intersect(np.Box); ix.Valid() {
				moved += ix.Count()
			}
		}
	}
	return moved
}

// Grouper is the coarse-grained counterpart of Balancer for the §5
// many-small-grids regime: instead of splitting component grids across
// ranks it assigns whole grids to m groups (one per node). Algorithm 3 and
// the locality-blind round-robin baseline both implement it; the adaptive
// Cartesian runner picks one by name.
type Grouper interface {
	// Name is the registry name ("group" or "roundrobin").
	Name() string
	// Group assigns each grid index to exactly one of m groups. connected
	// reports intergrid overlap (the communication edges Algorithm 3
	// keeps within a group).
	Group(sizes []int, connected func(a, b int) bool, m int) [][]int
}

var grouperRegistry = map[string]Grouper{
	"group":      alg3Grouper{},
	"roundrobin": roundRobinGrouper{},
}

// NewGrouper resolves a grouping strategy by name.
func NewGrouper(name string) (Grouper, error) {
	g, ok := grouperRegistry[name]
	if !ok {
		names := make([]string, 0, len(grouperRegistry))
		for n := range grouperRegistry {
			names = append(names, n)
		}
		sort.Strings(names)
		s := ""
		for i, n := range names {
			if i > 0 {
				s += ", "
			}
			s += n
		}
		return nil, fmt.Errorf("balance: unknown grouper %q (valid: %s)", name, s)
	}
	return g, nil
}

// alg3Grouper is Algorithm 3 behind the Grouper interface.
type alg3Grouper struct{}

func (alg3Grouper) Name() string { return "group" }
func (alg3Grouper) Group(sizes []int, connected func(a, b int) bool, m int) [][]int {
	return Group(sizes, connected, m)
}

// roundRobinGrouper is the locality-blind baseline.
type roundRobinGrouper struct{}

func (roundRobinGrouper) Name() string { return "roundrobin" }
func (roundRobinGrouper) Group(sizes []int, connected func(a, b int) bool, m int) [][]int {
	return RoundRobin(len(sizes), m)
}

// subdivideSlabs cuts a box into count 1-D slabs along its largest
// dimension, bisecting the largest piece greedily when the dimension cannot
// honor the count (shared by SubdividePlanSlabs and the SFC balancer's slab
// mode).
func subdivideSlabs(full grid.IBox, count int) []grid.IBox {
	boxes := full.SplitDim(full.LargestDim(), count)
	for len(boxes) < count && len(boxes) < full.Count() {
		bi, bc := 0, 0
		for i, p := range boxes {
			if c := p.Count(); c > bc {
				bi, bc = i, c
			}
		}
		p := boxes[bi]
		halves := p.SplitDim(p.LargestDim(), 2)
		if len(halves) < 2 {
			break
		}
		boxes = append(boxes[:bi], append(halves, boxes[bi+1:]...)...)
	}
	return boxes
}
