// Package balance implements the paper's load-balancing schemes: the static
// gridpoint-volume balancer (Algorithm 1) with its prime-factor
// minimal-surface subdivision, the dynamic connectivity re-balancer
// (Algorithm 2), and the grouping strategy for large numbers of small
// Cartesian grids (Algorithm 3, §5).
package balance

import (
	"fmt"
	"sort"

	"overd/internal/grid"
)

// Part assigns one rank a subdomain of one component grid.
type Part struct {
	// Grid is the component grid index.
	Grid int
	// Rank is the processor owning this part.
	Rank int
	// Box is the owned point range in the grid's index space.
	Box grid.IBox
}

// Plan is a complete partition of an overset grid system across NP ranks.
// Ranks are numbered contiguously grid by grid, so the parts of one
// component form one "processor group" as in the paper's Fig. 2.
type Plan struct {
	// Parts is indexed by rank.
	Parts []Part
	// Np is the number of processors applied to each component grid.
	Np []int
	// Tau is the converged tolerance factor of Algorithm 1 — the paper's
	// measure of the degree of static load imbalance (0 = perfect).
	Tau float64
}

// NP returns the total number of ranks in the plan.
func (p *Plan) NP() int { return len(p.Parts) }

// RanksOfGrid returns the ranks owning parts of component grid n.
func (p *Plan) RanksOfGrid(n int) []int {
	var out []int
	for r, part := range p.Parts {
		if part.Grid == n {
			out = append(out, r)
		}
	}
	return out
}

// MaxPoints returns the largest per-rank gridpoint count, whose ratio to the
// mean measures the achieved flow-solution balance.
func (p *Plan) MaxPoints() int {
	m := 0
	for _, part := range p.Parts {
		if c := part.Box.Count(); c > m {
			m = c
		}
	}
	return m
}

// Static computes Algorithm 1: distribute NP processors over the component
// grids proportionally to their gridpoint counts g(n) (each grid gets at
// least one), then subdivide each grid into np(n) subdomains of minimal
// surface area using the prime factors of np(n).
//
// The published recurrence initializes ε = G/NP and, while Σnp < NP, sets
// τ += Δτ and ε = ε·(1+τ). Growing ε can only shrink np(n) = int(g(n)/ε), so
// taken literally the loop cannot reach Σnp = NP; the clearly intended
// update, used here, shrinks the target subdomain size, ε = ε₀/(1+τ), until
// enough subdomains exist. The paper's special condition for the
// integer-arithmetic tie (equal grids competing for an odd processor) is
// kept verbatim: add the grid index n to g(n) and retry.
func Static(sizes []int, np int) (*Plan, error) {
	ng := len(sizes)
	if ng == 0 {
		return nil, fmt.Errorf("balance: no grids")
	}
	if np < ng {
		return nil, fmt.Errorf("balance: %d processors cannot cover %d grids (np(n) >= 1)", np, ng)
	}
	counts, tau, err := solveCounts(sizes, np, nil)
	if err != nil {
		return nil, err
	}
	return buildPlan(sizes, counts, tau), nil
}

// StaticWithMinimums is Algorithm 1 with per-grid lower bounds on np(n),
// used by the dynamic scheme's re-run ("with above np(n) condition enforced
// for grid n").
func StaticWithMinimums(sizes []int, np int, minNp []int) (*Plan, error) {
	ng := len(sizes)
	if ng == 0 {
		return nil, fmt.Errorf("balance: no grids")
	}
	total := 0
	for _, m := range minNp {
		if m < 1 {
			m = 1
		}
		total += m
	}
	if total > np {
		return nil, fmt.Errorf("balance: minimum processor counts (%d) exceed NP=%d", total, np)
	}
	counts, tau, err := solveCounts(sizes, np, minNp)
	if err != nil {
		return nil, err
	}
	return buildPlan(sizes, counts, tau), nil
}

// solveCounts finds np(n) >= max(1, minNp(n)) with Σnp = NP, keeping np(n)
// proportional to g(n)/ε for a subdomain size ε as close as possible to the
// ideal ε₀ = G/NP. The paper iterates a tolerance factor τ in fixed steps of
// ~0.1 to adjust ε; because Σnp(ε) is monotone in ε, the equivalent and more
// robust search used here bisects on ε directly (the fixed step can jump
// past the solution at large processor counts, and the per-grid minimums of
// the dynamic scheme can put the initial Σnp on either side of NP). The
// returned τ = |ε₀/ε − 1| preserves the paper's meaning: the degree of
// static load imbalance, 0 when the problem divides perfectly. The paper's
// special condition for the integer-arithmetic tie — equal grids flipping
// together so no ε yields Σnp = NP exactly — is kept verbatim: add the grid
// index n to g(n) and repeat.
func solveCounts(sizes []int, np int, minNp []int) ([]int, float64, error) {
	ng := len(sizes)
	g := make([]float64, ng)
	for i, s := range sizes {
		if s <= 0 {
			return nil, 0, fmt.Errorf("balance: grid %d has %d points", i, s)
		}
		g[i] = float64(s)
	}
	mins := make([]int, ng)
	for i := range mins {
		mins[i] = 1
		if minNp != nil && minNp[i] > 1 {
			mins[i] = minNp[i]
		}
	}

	countsAt := func(eps float64) []int {
		c := make([]int, ng)
		for i := range c {
			c[i] = int(g[i] / eps)
			if c[i] < mins[i] {
				c[i] = mins[i]
			}
		}
		return c
	}
	sum := func(c []int) int {
		s := 0
		for _, v := range c {
			s += v
		}
		return s
	}

	for attempt := 0; attempt < ng+4; attempt++ {
		var G float64
		for _, v := range g {
			G += v
		}
		eps0 := G / float64(np)
		// Bracket: lo gives many subdomains (Σnp >= NP), hi gives few.
		lo, hi := eps0/float64(np+1), G+1
		if s := sum(countsAt(lo)); s < np {
			lo = 1e-9 // extremely skewed sizes; widen
		}
		if sum(countsAt(eps0)) == np {
			return countsAt(eps0), 0, nil // perfectly balanced, τ = 0
		}
		for iter := 0; iter < 200; iter++ {
			eps := (lo + hi) / 2
			s := sum(countsAt(eps))
			if s == np {
				// Valid ε found; walk it toward the ideal ε₀ so the
				// reported τ measures the minimum necessary deviation.
				good, bad := eps, eps0
				for i := 0; i < 100; i++ {
					mid := (good + bad) / 2
					if sum(countsAt(mid)) == np {
						good = mid
					} else {
						bad = mid
					}
				}
				tau := eps0/good - 1
				if tau < 0 {
					tau = -tau
				}
				return countsAt(good), tau, nil
			}
			if s > np {
				lo = eps
			} else {
				hi = eps
			}
		}
		// Paper's special condition: perturb g(n) by the grid index so
		// symmetric grids stop flipping together, then repeat.
		for i := range g {
			g[i] += float64(i + 1)
		}
	}
	return nil, 0, fmt.Errorf("balance: static scheme failed to converge for %d grids on %d processors", ng, np)
}

func buildPlan(sizes []int, counts []int, tau float64) *Plan {
	plan := &Plan{Np: counts, Tau: tau}
	rank := 0
	for n := range sizes {
		// The caller provides index dims through SubdividePlan; here we
		// only reserve rank numbering. Boxes are filled by SubdividePlan.
		for s := 0; s < counts[n]; s++ {
			plan.Parts = append(plan.Parts, Part{Grid: n, Rank: rank})
			rank++
		}
	}
	return plan
}

// SubdividePlan fills the index boxes of a plan for the given grid
// dimensions using the prime-factor minimal-surface rule: for each grid the
// prime factors of np(n) are applied largest first, each cutting the
// largest remaining dimension of every current subdomain, yielding index
// spaces "as close to cubic as possible" (paper Fig. 4).
func SubdividePlan(plan *Plan, dims [][3]int) {
	idx := 0
	for n, count := range plan.Np {
		boxes := Subdivide(grid.FullBox(dims[n][0], dims[n][1], dims[n][2]), count)
		for _, b := range boxes {
			plan.Parts[idx].Box = b
			idx++
		}
	}
}

// SubdividePlanSlabs fills the plan with one-dimensional slab subdomains
// (each grid cut only along its largest dimension) — the naive baseline the
// minimal-surface ablation compares against.
func SubdividePlanSlabs(plan *Plan, dims [][3]int) {
	idx := 0
	for n, count := range plan.Np {
		full := grid.FullBox(dims[n][0], dims[n][1], dims[n][2])
		// Degenerate grids may not honor count slabs; subdivideSlabs
		// bisects the largest piece until the count is met.
		boxes := subdivideSlabs(full, count)
		for _, b := range boxes {
			plan.Parts[idx].Box = b
			idx++
		}
	}
}

// ProcGrid returns the processor-grid shape (pi, pj, pk) for splitting a box
// into np subdomains: the prime factors of np, largest first, are each
// assigned to the largest remaining dimension, shrinking that dimension's
// bookkeeping size. This yields index spaces "as close to cubic as possible"
// (paper Fig. 4) and a regular arrangement with exactly one neighbor per
// subdomain face, which the halo exchange and pipelined implicit solves of
// the flow solver rely on. Factors that fit no dimension (degenerate boxes)
// are dropped, so pi*pj*pk may be less than np in pathological cases.
func ProcGrid(box grid.IBox, np int) (pi, pj, pk int) {
	pi, pj, pk = 1, 1, 1
	di, dj, dk := box.NI(), box.NJ(), box.NK()
	for _, f := range PrimeFactors(np) {
		switch {
		case di >= dj && di >= dk && di >= f:
			pi *= f
			di /= f
		case dj >= dk && dj >= f:
			pj *= f
			dj /= f
		case dk >= f:
			pk *= f
			dk /= f
		case di >= f:
			pi *= f
			di /= f
		case dj >= f:
			pj *= f
			dj /= f
		}
	}
	return pi, pj, pk
}

// Subdivide splits an index box into np subdomains using the prime factors
// of np, largest factor first, each assigned to the largest remaining
// dimension (see ProcGrid). Pieces come back in k-major, then j, then i
// order. If the regular processor grid cannot realize np pieces (np has a
// prime factor larger than every dimension), the largest pieces are
// bisected greedily until the count is met; this cannot trigger for the
// paper's configurations but keeps the dynamic scheme safe when it piles
// processors onto small grids.
func Subdivide(box grid.IBox, np int) []grid.IBox {
	if np < 1 {
		np = 1
	}
	pi, pj, pk := ProcGrid(box, np)
	isplits := box.SplitDim(0, pi)
	var pieces []grid.IBox
	for _, kp := range box.SplitDim(2, pk) {
		for _, jp := range box.SplitDim(1, pj) {
			for _, ip := range isplits {
				pieces = append(pieces, grid.IBox{
					ILo: ip.ILo, IHi: ip.IHi,
					JLo: jp.JLo, JHi: jp.JHi,
					KLo: kp.KLo, KHi: kp.KHi,
				})
			}
		}
	}
	for len(pieces) < np && len(pieces) < box.Count() {
		bi, bc := 0, 0
		for i, p := range pieces {
			if c := p.Count(); c > bc {
				bi, bc = i, c
			}
		}
		p := pieces[bi]
		halves := p.SplitDim(p.LargestDim(), 2)
		if len(halves) < 2 {
			break
		}
		pieces = append(pieces[:bi], append(halves, pieces[bi+1:]...)...)
	}
	sort.Slice(pieces, func(a, b int) bool {
		pa, pb := pieces[a], pieces[b]
		if pa.KLo != pb.KLo {
			return pa.KLo < pb.KLo
		}
		if pa.JLo != pb.JLo {
			return pa.JLo < pb.JLo
		}
		return pa.ILo < pb.ILo
	})
	return pieces
}

// PrimeFactors returns the prime factorization of n in descending order
// (e.g. 12 -> [3 2 2]), matching the paper's example.
func PrimeFactors(n int) []int {
	var f []int
	for d := 2; d*d <= n; d++ {
		for n%d == 0 {
			f = append(f, d)
			n /= d
		}
	}
	if n > 1 {
		f = append(f, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(f)))
	return f
}
