package balance

import (
	"fmt"
	"sort"

	"overd/internal/grid"
)

// sfcBalancer distributes processors with the space-filling-curve plus
// greedy-knapsack strategy of block-structured AMR frameworks: component
// grids are ordered along a Morton (Z-order) curve through their
// world-space centers so that spatially adjacent grids get contiguous rank
// numbers, and processors are granted one at a time to whichever grid
// currently carries the heaviest per-processor load (greedy bin packing).
//
// For the paper's few-large-grids cases the resulting counts np(n) usually
// match Algorithm 1's — both chase g(n)/np(n) uniformity — but the rank
// numbering follows spatial locality instead of grid index order, and the
// count search is greedy rather than a tolerance-factor iteration. It has
// no step hook: like the static scheme it bets that the initial placement
// stays good.
type sfcBalancer struct{}

func (sfcBalancer) Name() string { return "sfc" }

func (sfcBalancer) Plan(in Input) (*Plan, error) {
	ng := len(in.Sizes)
	if ng == 0 {
		return nil, errNoGrids()
	}
	if in.NP < ng {
		return nil, errTooFewProcs(in.NP, ng)
	}
	order := mortonOrder(in.Centers, ng)
	counts := knapsackCounts(in.Sizes, in.NP, order)

	// Tau keeps Algorithm 1's meaning — achieved max load over the ideal
	// mean, minus one — so the sweep table compares like with like.
	var total float64
	maxLoad := 0.0
	for n, s := range in.Sizes {
		total += float64(s)
		if l := float64(s) / float64(counts[n]); l > maxLoad {
			maxLoad = l
		}
	}
	tau := maxLoad/(total/float64(in.NP)) - 1
	if tau < 0 {
		tau = 0
	}

	plan := &Plan{Np: counts, Tau: tau}
	rank := 0
	for _, n := range order {
		full := grid.FullBox(in.Dims[n][0], in.Dims[n][1], in.Dims[n][2])
		var boxes []grid.IBox
		if in.Slabs {
			boxes = subdivideSlabs(full, counts[n])
		} else {
			boxes = Subdivide(full, counts[n])
		}
		for _, b := range boxes {
			plan.Parts = append(plan.Parts, Part{Grid: n, Rank: rank, Box: b})
			rank++
		}
	}
	return plan, nil
}

// mortonOrder returns grid indices sorted by the Morton key of their
// quantized centers (10 bits per axis against the global bounding box).
// Ties — including a nil Centers input — fall back to grid index order, so
// the ordering is always total and deterministic.
func mortonOrder(centers [][3]float64, ng int) []int {
	order := make([]int, ng)
	for i := range order {
		order[i] = i
	}
	if len(centers) != ng {
		return order
	}
	var lo, hi [3]float64
	for a := 0; a < 3; a++ {
		lo[a], hi[a] = centers[0][a], centers[0][a]
	}
	for _, c := range centers {
		for a := 0; a < 3; a++ {
			if c[a] < lo[a] {
				lo[a] = c[a]
			}
			if c[a] > hi[a] {
				hi[a] = c[a]
			}
		}
	}
	keys := make([]uint64, ng)
	for i, c := range centers {
		var q [3]uint32
		for a := 0; a < 3; a++ {
			span := hi[a] - lo[a]
			if span > 0 {
				q[a] = uint32((c[a] - lo[a]) / span * 1023)
				if q[a] > 1023 {
					q[a] = 1023
				}
			}
		}
		keys[i] = mortonKey(q[0], q[1], q[2])
	}
	sort.SliceStable(order, func(a, b int) bool {
		return keys[order[a]] < keys[order[b]]
	})
	return order
}

// mortonKey interleaves the low 10 bits of x, y and z into a 30-bit Z-order
// key (x in the lowest lane).
func mortonKey(x, y, z uint32) uint64 {
	return spreadBits(x) | spreadBits(y)<<1 | spreadBits(z)<<2
}

// spreadBits spaces the low 10 bits of v two apart (b -> b*8 weight gaps),
// the classic magic-number dilation.
func spreadBits(v uint32) uint64 {
	x := uint64(v) & 0x3ff
	x = (x | x<<16) & 0x030000ff
	x = (x | x<<8) & 0x0300f00f
	x = (x | x<<4) & 0x030c30c3
	x = (x | x<<2) & 0x09249249
	return x
}

// knapsackCounts gives every grid one processor, then grants the remaining
// NP-ng one at a time to the grid with the heaviest current per-processor
// load g(n)/np(n). Ties break toward the earlier grid in Morton order; the
// comparison cross-multiplies in integers so the greedy choice is exact.
func knapsackCounts(sizes []int, np int, order []int) []int {
	counts := make([]int, len(sizes))
	for i := range counts {
		counts[i] = 1
	}
	for extra := np - len(sizes); extra > 0; extra-- {
		best := -1
		for _, n := range order {
			if best < 0 ||
				int64(sizes[n])*int64(counts[best]) > int64(sizes[best])*int64(counts[n]) {
				best = n
			}
		}
		counts[best]++
	}
	return counts
}

func errNoGrids() error { return fmt.Errorf("balance: no grids") }

func errTooFewProcs(np, ng int) error {
	return fmt.Errorf("balance: %d processors cannot cover %d grids (np(n) >= 1)", np, ng)
}

func init() {
	Register("sfc", func(Params) Balancer { return sfcBalancer{} })
}
