package balance

import "math"

// Dynamic implements Algorithm 2, the connectivity-solution re-balancer.
//
// After the solution has run for a specified number of timesteps, the
// per-processor counts of received intergrid boundary points I(p) are
// examined. For every processor whose load factor f(p) = I(p)/Ī exceeds the
// user-specified fo, one more processor is granted to the component grid
// that processor is assigned to, and the static routine is re-run with the
// grown counts enforced as minimums. fo ≈ ∞ retains the static partition
// (flow-solver optimal); fo ≈ 1 keeps chasing connectivity balance.
type Dynamic struct {
	// Fo is the user-specified load-balance factor. Values <= 0 are
	// treated as infinite (dynamic scheme disabled).
	Fo float64
	// CheckInterval is the number of timesteps between imbalance checks.
	CheckInterval int
}

// Result summarizes one dynamic-balance decision.
type Result struct {
	// Rebalanced reports whether a new plan was produced.
	Rebalanced bool
	// MaxF is the maximum load factor f(p) observed.
	MaxF float64
	// MeanI is the global average Ī of received IGBPs per processor.
	MeanI float64
	// GrownGrids lists component grids granted extra processors.
	GrownGrids []int
}

// Check applies Algorithm 2 to the observed per-rank received-IGBP counts.
// sizes are the component gridpoint counts g(n); plan is the current
// partition. It returns the (possibly new) plan and a decision summary.
func (d Dynamic) Check(plan *Plan, sizes []int, receivedIGBPs []int) (*Plan, Result, error) {
	res := Result{}
	np := plan.NP()
	if len(receivedIGBPs) != np {
		return plan, res, errLenMismatch(np, len(receivedIGBPs))
	}
	// Fo <= 0 (which also catches -Inf) and +Inf both mean "disabled";
	// NaN can never compare above any load factor, so treat it the same
	// way instead of silently running a check that cannot fire.
	if d.Fo <= 0 || math.IsInf(d.Fo, 1) || math.IsNaN(d.Fo) {
		return plan, res, nil
	}

	var total float64
	for _, v := range receivedIGBPs {
		total += float64(v)
	}
	mean := total / float64(np)
	res.MeanI = mean
	if mean <= 0 {
		return plan, res, nil
	}

	// np(n) grows once per offending processor assigned to grid n.
	grow := make([]int, len(sizes))
	for p, v := range receivedIGBPs {
		f := float64(v) / mean
		if f > res.MaxF {
			res.MaxF = f
		}
		if f > d.Fo {
			grow[plan.Parts[p].Grid]++
		}
	}

	minNp := make([]int, len(sizes))
	grew := false
	for n := range sizes {
		minNp[n] = plan.Np[n] + grow[n]
		if grow[n] > 0 {
			grew = true
			res.GrownGrids = append(res.GrownGrids, n)
		}
	}
	if !grew {
		return plan, res, nil
	}
	// Keep the total processor count: other grids shrink as needed. If the
	// grown minimums no longer fit, cap them at what fits.
	totMin := 0
	for _, m := range minNp {
		totMin += m
	}
	for i := len(sizes) - 1; totMin > np && i >= 0; i-- {
		for totMin > np && minNp[i] > 1 {
			minNp[i]--
			totMin--
		}
	}
	newPlan, err := StaticWithMinimums(sizes, np, minNp)
	if err != nil {
		return plan, res, err
	}
	res.Rebalanced = true
	return newPlan, res, nil
}

type lenErr struct{ want, got int }

func errLenMismatch(want, got int) error { return lenErr{want, got} }

func (e lenErr) Error() string {
	return "balance: received-IGBP slice length mismatch"
}
