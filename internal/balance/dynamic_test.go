package balance

import (
	"math"
	"testing"
)

func mkPlan(t *testing.T, sizes []int, np int) *Plan {
	t.Helper()
	plan, err := Static(sizes, np)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestDynamicDisabledWhenFoInfinite(t *testing.T) {
	sizes := []int{100000, 100000}
	plan := mkPlan(t, sizes, 4)
	d := Dynamic{Fo: math.Inf(1)}
	got, res, err := d.Check(plan, sizes, []int{1000, 0, 0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebalanced || got != plan {
		t.Error("fo=inf must retain the static partition")
	}
	// fo <= 0 also disables.
	d = Dynamic{Fo: 0}
	_, res, _ = d.Check(plan, sizes, []int{1000, 0, 0, 0})
	if res.Rebalanced {
		t.Error("fo=0 should disable the dynamic scheme")
	}
}

func TestDynamicGrowsOverloadedGrid(t *testing.T) {
	sizes := []int{100000, 100000, 100000, 100000}
	plan := mkPlan(t, sizes, 8)
	if plan.Np[0] != 2 {
		t.Fatalf("setup: Np = %v", plan.Np)
	}
	// Rank 0 (grid 0) receives far more IGBP search requests than average.
	recv := make([]int, 8)
	for i := range recv {
		recv[i] = 100
	}
	recv[0] = 2000
	d := Dynamic{Fo: 5}
	newPlan, res, err := d.Check(plan, sizes, recv)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rebalanced {
		t.Fatal("should rebalance: f(0) >> fo")
	}
	if newPlan.Np[0] <= plan.Np[0] {
		t.Errorf("grid 0 should gain processors: %v -> %v", plan.Np, newPlan.Np)
	}
	if newPlan.NP() != plan.NP() {
		t.Errorf("total processors changed: %d -> %d", plan.NP(), newPlan.NP())
	}
	if len(res.GrownGrids) != 1 || res.GrownGrids[0] != 0 {
		t.Errorf("GrownGrids = %v", res.GrownGrids)
	}
	if res.MaxF < 5 {
		t.Errorf("MaxF = %v, want > 5", res.MaxF)
	}
}

func TestDynamicNoRebalanceWhenBalanced(t *testing.T) {
	sizes := []int{100000, 100000}
	plan := mkPlan(t, sizes, 4)
	recv := []int{100, 110, 95, 105}
	d := Dynamic{Fo: 5}
	_, res, err := d.Check(plan, sizes, recv)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebalanced {
		t.Error("balanced load must not trigger repartition")
	}
	if res.MaxF > 1.2 {
		t.Errorf("MaxF = %v", res.MaxF)
	}
}

func TestDynamicZeroTraffic(t *testing.T) {
	sizes := []int{1000, 1000}
	plan := mkPlan(t, sizes, 2)
	d := Dynamic{Fo: 2}
	_, res, err := d.Check(plan, sizes, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rebalanced {
		t.Error("zero traffic must not rebalance")
	}
}

func TestDynamicLengthMismatch(t *testing.T) {
	sizes := []int{1000, 1000}
	plan := mkPlan(t, sizes, 2)
	d := Dynamic{Fo: 2}
	if _, _, err := d.Check(plan, sizes, []int{1}); err == nil {
		t.Error("length mismatch should error")
	}
}

func TestDynamicRepeatedGrowthCapped(t *testing.T) {
	// Keep demanding growth; the scheme must never exceed NP total.
	sizes := []int{50000, 50000, 50000}
	plan := mkPlan(t, sizes, 6)
	d := Dynamic{Fo: 1.5}
	for iter := 0; iter < 5; iter++ {
		recv := make([]int, 6)
		for i := range recv {
			recv[i] = 10
		}
		// Overload whatever ranks grid 0 currently owns.
		for _, r := range plan.RanksOfGrid(0) {
			recv[r] = 500
		}
		var err error
		plan, _, err = d.Check(plan, sizes, recv)
		if err != nil {
			t.Fatal(err)
		}
		if plan.NP() != 6 {
			t.Fatalf("iteration %d: NP = %d", iter, plan.NP())
		}
		sum := 0
		for _, c := range plan.Np {
			if c < 1 {
				t.Fatalf("iteration %d: np dropped below 1: %v", iter, plan.Np)
			}
			sum += c
		}
		if sum != 6 {
			t.Fatalf("iteration %d: Σnp = %d", iter, sum)
		}
	}
	// Grid 0 should have absorbed most processors by now.
	if plan.Np[0] < 3 {
		t.Errorf("grid 0 should dominate after repeated growth: %v", plan.Np)
	}
}
