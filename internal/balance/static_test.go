package balance

import (
	"math"
	"testing"
	"testing/quick"

	"overd/internal/grid"
)

func TestPrimeFactors(t *testing.T) {
	cases := map[int][]int{
		12: {3, 2, 2},
		7:  {7},
		1:  nil,
		60: {5, 3, 2, 2},
		64: {2, 2, 2, 2, 2, 2},
	}
	for n, want := range cases {
		got := PrimeFactors(n)
		if len(got) != len(want) {
			t.Errorf("PrimeFactors(%d) = %v, want %v", n, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("PrimeFactors(%d) = %v, want %v", n, got, want)
				break
			}
		}
	}
}

func TestPrimeFactorsProduct_Property(t *testing.T) {
	f := func(n uint16) bool {
		v := int(n)%5000 + 2
		p := 1
		for _, f := range PrimeFactors(v) {
			p *= f
		}
		return p == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStaticEqualGrids(t *testing.T) {
	// Paper's tie case: 2 equal grids on 3 processors must converge via
	// the grid-index perturbation.
	plan, err := Static([]int{1000, 1000}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Np[0]+plan.Np[1] != 3 {
		t.Fatalf("Np = %v, want sum 3", plan.Np)
	}
	if plan.Np[0] < 1 || plan.Np[1] < 1 {
		t.Fatalf("every grid needs a processor: %v", plan.Np)
	}
}

func TestStaticProportional(t *testing.T) {
	// A grid with 3x the points should get roughly 3x the processors.
	plan, err := Static([]int{300000, 100000}, 12)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Np[0] != 9 || plan.Np[1] != 3 {
		t.Errorf("Np = %v, want [9 3]", plan.Np)
	}
	if plan.Tau > 0.2 {
		t.Errorf("tau = %v, should be small for a divisible case", plan.Tau)
	}
}

func TestStaticMinOnePerGrid(t *testing.T) {
	// A tiny grid still gets one processor.
	plan, err := Static([]int{1000000, 50}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Np[1] != 1 || plan.Np[0] != 7 {
		t.Errorf("Np = %v, want [7 1]", plan.Np)
	}
}

func TestStaticErrors(t *testing.T) {
	if _, err := Static(nil, 4); err == nil {
		t.Error("no grids should error")
	}
	if _, err := Static([]int{10, 10, 10}, 2); err == nil {
		t.Error("NP < ngrids should error")
	}
	if _, err := Static([]int{10, 0}, 4); err == nil {
		t.Error("zero-size grid should error")
	}
}

func TestStaticExhaustive(t *testing.T) {
	// Many shapes and processor counts: Σnp == NP, np >= 1 always.
	sizeSets := [][]int{
		{64000},
		{21000, 21000, 22000},               // oscillating airfoil
		{400000, 300000, 200000, 100000},    // delta-wing-like
		{50, 50, 50, 50, 50, 50},            // six tiny equal grids
		{810000, 100, 100, 100},             // extreme skew
		{9000, 8000, 7000, 6000, 5000, 400}, // mixed
	}
	for _, sizes := range sizeSets {
		for np := len(sizes); np <= 64; np += 5 {
			plan, err := Static(sizes, np)
			if err != nil {
				t.Fatalf("sizes %v np %d: %v", sizes, np, err)
			}
			sum := 0
			for n, c := range plan.Np {
				if c < 1 {
					t.Fatalf("sizes %v np %d: grid %d got %d procs", sizes, np, n, c)
				}
				sum += c
			}
			if sum != np {
				t.Fatalf("sizes %v np %d: Σnp = %d", sizes, np, sum)
			}
			if len(plan.Parts) != np {
				t.Fatalf("parts %d != np %d", len(plan.Parts), np)
			}
		}
	}
}

func TestStaticBalanceQuality(t *testing.T) {
	// Paper Table 1 setup: three ~equal grids, 6..24 processors. After
	// subdivision, per-rank point counts should be within ~40% of the mean.
	sizes := []int{21000, 21200, 21400}
	dims := [][3]int{{150, 140, 1}, {151, 141, 1}, {153, 140, 1}}
	for _, np := range []int{6, 9, 12, 18, 24} {
		plan, err := Static(sizes, np)
		if err != nil {
			t.Fatal(err)
		}
		SubdividePlan(plan, dims)
		mean := float64(21000*3) / float64(np)
		for _, part := range plan.Parts {
			c := float64(part.Box.Count())
			if c > mean*1.6 {
				t.Errorf("np=%d rank %d holds %v points, mean %v", np, part.Rank, c, mean)
			}
		}
	}
}

func TestSubdivideCountAndCoverage(t *testing.T) {
	box := grid.FullBox(60, 40, 20)
	for _, np := range []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 37} {
		pieces := Subdivide(box, np)
		if len(pieces) != np {
			t.Fatalf("np=%d produced %d pieces", np, len(pieces))
		}
		total := 0
		for _, p := range pieces {
			total += p.Count()
		}
		if total != box.Count() {
			t.Fatalf("np=%d covers %d points, want %d", np, total, box.Count())
		}
		// Disjointness via sampling.
		owner := map[[3]int]int{}
		for pi, p := range pieces {
			for k := p.KLo; k <= p.KHi; k += 3 {
				for j := p.JLo; j <= p.JHi; j += 3 {
					for i := p.ILo; i <= p.IHi; i += 3 {
						key := [3]int{i, j, k}
						if prev, dup := owner[key]; dup {
							t.Fatalf("point %v owned by %d and %d", key, prev, pi)
						}
						owner[key] = pi
					}
				}
			}
		}
	}
}

func TestSubdivideMinimalSurfaceBeatsSlabs(t *testing.T) {
	// Prime-factor splitting should produce less total subdomain surface
	// than 1-D slab decomposition for a cube on 8 processors.
	box := grid.FullBox(64, 64, 64)
	pf := Subdivide(box, 8)
	slabs := box.SplitDim(0, 8)
	surf := func(bs []grid.IBox) int {
		s := 0
		for _, b := range bs {
			s += b.SurfacePoints()
		}
		return s
	}
	if surf(pf) >= surf(slabs) {
		t.Errorf("prime-factor surface %d should beat slab surface %d", surf(pf), surf(slabs))
	}
}

func TestSubdivide12MatchesPaperExample(t *testing.T) {
	// np=12 -> factors 3,2,2: the largest dimension gets cut 3 ways first.
	box := grid.FullBox(120, 60, 30)
	pieces := Subdivide(box, 12)
	if len(pieces) != 12 {
		t.Fatalf("got %d pieces", len(pieces))
	}
	// Factors applied largest first, always on the current largest dim:
	// i (120) split 3x -> 40x60x30; j (60) split 2x -> 40x30x30; then i
	// (40) is again largest, split 2x -> 20x30x30 near-cubic pieces.
	for _, p := range pieces {
		if p.NI() != 20 || p.NJ() != 30 || p.NK() != 30 {
			t.Fatalf("piece %v, want 20x30x30", p)
		}
	}
}

func TestSubdivideDegenerateBox(t *testing.T) {
	// 2-D slab (nk=1) split across more processors than the k dim allows.
	pieces := Subdivide(grid.FullBox(100, 80, 1), 6)
	if len(pieces) != 6 {
		t.Fatalf("got %d pieces", len(pieces))
	}
	total := 0
	for _, p := range pieces {
		total += p.Count()
	}
	if total != 8000 {
		t.Fatalf("coverage %d", total)
	}
}

func TestRanksOfGridContiguous(t *testing.T) {
	plan, err := Static([]int{100, 200, 300}, 6)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for n := 0; n < 3; n++ {
		ranks := plan.RanksOfGrid(n)
		if len(ranks) != plan.Np[n] {
			t.Fatalf("grid %d ranks %v, np %d", n, ranks, plan.Np[n])
		}
		for _, r := range ranks {
			if r != seen {
				t.Fatalf("ranks not contiguous: grid %d got %v", n, ranks)
			}
			seen++
		}
	}
}

func TestStaticWithMinimums(t *testing.T) {
	sizes := []int{100000, 100000, 100000, 100000}
	plan, err := StaticWithMinimums(sizes, 16, []int{8, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Np[0] < 8 {
		t.Errorf("minimum not honored: %v", plan.Np)
	}
	sum := 0
	for _, c := range plan.Np {
		sum += c
	}
	if sum != 16 {
		t.Errorf("Σnp = %d", sum)
	}
	// Infeasible minimums error.
	if _, err := StaticWithMinimums(sizes, 4, []int{3, 3, 3, 3}); err == nil {
		t.Error("infeasible minimums should error")
	}
}

func TestMaxPoints(t *testing.T) {
	plan, _ := Static([]int{4000, 4000}, 4)
	SubdividePlan(plan, [][3]int{{40, 100, 1}, {40, 100, 1}})
	if got := plan.MaxPoints(); got != 2000 {
		t.Errorf("MaxPoints = %d, want 2000", got)
	}
}

func TestStaticTauMeasuresImbalance(t *testing.T) {
	// A perfectly divisible case should have much lower tau than a
	// pathological one.
	easy, err := Static([]int{1000, 1000}, 4)
	if err != nil {
		t.Fatal(err)
	}
	hard, err := Static([]int{1000, 999, 3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !(easy.Tau <= hard.Tau) {
		t.Errorf("tau easy %v should be <= tau hard %v", easy.Tau, hard.Tau)
	}
	if math.IsNaN(easy.Tau) || easy.Tau < 0 {
		t.Errorf("tau = %v", easy.Tau)
	}
}
