package balance

import "sort"

// Group implements Algorithm 3, the grouping strategy of the §5 adaptive
// Cartesian scheme: gather many small grids into M groups so that
// computational work (gridpoints) is distributed evenly while keeping each
// group's members connected (overlapping), maximizing intra-group
// connectivity and so minimizing inter-node communication.
//
// sizes[n] is the gridpoint count of grid n; connected(a, b) reports whether
// grids a and b overlap. The return value maps each group to the grid
// indices assigned to it. Groups may come back empty if there are fewer
// grids than groups.
func Group(sizes []int, connected func(a, b int) bool, m int) [][]int {
	if m < 1 {
		m = 1
	}
	n := len(sizes)
	groups := make([][]int, m)
	load := make([]int, m)

	// Loop through N grids largest-to-smallest.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return sizes[order[a]] > sizes[order[b]] })

	groupOrder := make([]int, m)
	for i := range groupOrder {
		groupOrder[i] = i
	}

	for _, gi := range order {
		// Loop through M groups smallest-to-largest (by current load).
		sort.SliceStable(groupOrder, func(a, b int) bool {
			return load[groupOrder[a]] < load[groupOrder[b]]
		})
		assigned := -1
		for _, gm := range groupOrder {
			if len(groups[gm]) == 0 {
				assigned = gm
				break
			}
			conn := false
			for _, member := range groups[gm] {
				if connected(gi, member) {
					conn = true
					break
				}
			}
			if conn {
				assigned = gm
				break
			}
		}
		if assigned < 0 {
			// Not connected to any group as currently constituted:
			// assign to the smallest group.
			assigned = groupOrder[0]
		}
		groups[assigned] = append(groups[assigned], gi)
		load[assigned] += sizes[gi]
	}
	return groups
}

// GroupLoads returns the summed gridpoint count of each group.
func GroupLoads(groups [][]int, sizes []int) []int {
	loads := make([]int, len(groups))
	for m, g := range groups {
		for _, n := range g {
			loads[m] += sizes[n]
		}
	}
	return loads
}

// RoundRobin assigns grids to m groups cyclically in index order — the
// locality-blind baseline the grouping ablation compares against.
func RoundRobin(n, m int) [][]int {
	if m < 1 {
		m = 1
	}
	groups := make([][]int, m)
	for i := 0; i < n; i++ {
		groups[i%m] = append(groups[i%m], i)
	}
	return groups
}

// CutEdges counts connectivity pairs that cross group boundaries — the
// communication the grouping strategy tries to minimize.
func CutEdges(groups [][]int, nGrids int, connected func(a, b int) bool) int {
	owner := make([]int, nGrids)
	for m, g := range groups {
		for _, n := range g {
			owner[n] = m
		}
	}
	cut := 0
	for a := 0; a < nGrids; a++ {
		for b := a + 1; b < nGrids; b++ {
			if connected(a, b) && owner[a] != owner[b] {
				cut++
			}
		}
	}
	return cut
}
