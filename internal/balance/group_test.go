package balance

import (
	"testing"
)

// chainConn connects grid i with i-1 and i+1 (a 1-D chain of overlapping
// Cartesian boxes).
func chainConn(a, b int) bool {
	d := a - b
	return d == 1 || d == -1
}

// nearConn connects grids within index distance 3, a denser overlap pattern
// closer to the paper's Algorithm 3 sketch.
func nearConn(a, b int) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d >= 1 && d <= 3
}

func TestGroupPaperExample(t *testing.T) {
	// The paper's Algorithm 3 sketch: 8 grids, 2 groups; sizes descend with
	// index (grid 1 largest). Grids overlap their near neighbors.
	sizes := []int{80, 70, 60, 50, 40, 30, 20, 10}
	groups := Group(sizes, nearConn, 2)
	if len(groups) != 2 {
		t.Fatalf("got %d groups", len(groups))
	}
	// All grids assigned exactly once.
	seen := map[int]bool{}
	for _, g := range groups {
		for _, n := range g {
			if seen[n] {
				t.Fatalf("grid %d assigned twice", n)
			}
			seen[n] = true
		}
	}
	if len(seen) != 8 {
		t.Fatalf("assigned %d grids, want 8", len(seen))
	}
	// Loads balanced within the largest grid size.
	loads := GroupLoads(groups, sizes)
	diff := loads[0] - loads[1]
	if diff < 0 {
		diff = -diff
	}
	if diff > 80 {
		t.Errorf("group loads %v too uneven", loads)
	}
}

func TestGroupChainTopologyStillCoversAll(t *testing.T) {
	// Sparse chain connectivity can defeat the balancing (the connected
	// clause keeps feeding one group), but assignment must stay total.
	sizes := []int{80, 70, 60, 50, 40, 30, 20, 10}
	groups := Group(sizes, chainConn, 2)
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	if total != 8 {
		t.Errorf("assigned %d grids, want 8", total)
	}
}

func TestGroupEmptyGroupsFilledFirst(t *testing.T) {
	sizes := []int{100, 90, 80}
	groups := Group(sizes, func(a, b int) bool { return true }, 3)
	for m, g := range groups {
		if len(g) != 1 {
			t.Errorf("group %d has %d grids, want 1 each", m, len(g))
		}
	}
}

func TestGroupDisconnectedGoesToSmallest(t *testing.T) {
	// Grid 2 is connected to nothing; it must land in the smallest group.
	sizes := []int{100, 100, 10}
	none := func(a, b int) bool { return false }
	groups := Group(sizes, none, 2)
	loads := GroupLoads(groups, sizes)
	// 100/100 split first, then the 10 joins one of them.
	if loads[0]+loads[1] != 210 {
		t.Fatalf("loads %v", loads)
	}
	diff := loads[0] - loads[1]
	if diff < 0 {
		diff = -diff
	}
	if diff != 10 {
		t.Errorf("disconnected grid should join the smaller group: %v", loads)
	}
}

func TestGroupLocality(t *testing.T) {
	// 12 chain-connected grids in 3 groups: grouping should cut far fewer
	// edges than round-robin.
	n := 12
	sizes := make([]int, n)
	for i := range sizes {
		sizes[i] = 10
	}
	grouped := Group(sizes, chainConn, 3)
	rr := RoundRobin(n, 3)
	gc := CutEdges(grouped, n, chainConn)
	rc := CutEdges(rr, n, chainConn)
	if gc >= rc {
		t.Errorf("grouping cut %d edges, round-robin %d — locality lost", gc, rc)
	}
}

func TestGroupSingleGroup(t *testing.T) {
	sizes := []int{5, 4, 3}
	groups := Group(sizes, chainConn, 1)
	if len(groups) != 1 || len(groups[0]) != 3 {
		t.Errorf("single group should hold everything: %v", groups)
	}
	// m < 1 coerced to 1.
	groups = Group(sizes, chainConn, 0)
	if len(groups) != 1 {
		t.Errorf("m=0 should coerce to one group")
	}
}

func TestRoundRobin(t *testing.T) {
	groups := RoundRobin(7, 3)
	want := [][]int{{0, 3, 6}, {1, 4}, {2, 5}}
	for m := range want {
		if len(groups[m]) != len(want[m]) {
			t.Fatalf("group %d = %v", m, groups[m])
		}
		for i := range want[m] {
			if groups[m][i] != want[m][i] {
				t.Fatalf("group %d = %v, want %v", m, groups[m], want[m])
			}
		}
	}
}

func TestGroupMoreGroupsThanGrids(t *testing.T) {
	sizes := []int{10, 20}
	groups := Group(sizes, chainConn, 5)
	nonEmpty := 0
	total := 0
	for _, g := range groups {
		if len(g) > 0 {
			nonEmpty++
		}
		total += len(g)
	}
	if total != 2 || nonEmpty != 2 {
		t.Errorf("groups %v", groups)
	}
}
