package balance

import (
	"math/rand"
	"testing"
	"testing/quick"

	"overd/internal/grid"
)

// Static always assigns every processor, gives every grid at least one,
// and keeps counts weakly ordered with grid sizes.
func TestStaticInvariants_Property(t *testing.T) {
	f := func(seed int64, ngRaw, extraRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ng := int(ngRaw%8) + 1
		sizes := make([]int, ng)
		for i := range sizes {
			sizes[i] = 1000 + rng.Intn(500000)
		}
		np := ng + int(extraRaw%60)
		plan, err := Static(sizes, np)
		if err != nil {
			return false
		}
		sum := 0
		for _, c := range plan.Np {
			if c < 1 {
				return false
			}
			sum += c
		}
		if sum != np {
			return false
		}
		// Monotonicity within a tolerance of one processor: a grid twice
		// as large never gets fewer than half the processors minus one.
		for a := 0; a < ng; a++ {
			for b := 0; b < ng; b++ {
				if sizes[a] >= 2*sizes[b] && plan.Np[a] < plan.Np[b]/2-1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Subdivide covers the box exactly with disjoint pieces for any count.
func TestSubdivideCoverage_Property(t *testing.T) {
	f := func(niRaw, njRaw, nkRaw, npRaw uint8) bool {
		ni := int(niRaw%50) + 8
		nj := int(njRaw%50) + 8
		nk := int(nkRaw%20) + 1
		np := int(npRaw%16) + 1
		box := grid.FullBox(ni, nj, nk)
		pieces := Subdivide(box, np)
		if len(pieces) != np {
			return false
		}
		total := 0
		for _, p := range pieces {
			if !p.Valid() {
				return false
			}
			total += p.Count()
		}
		return total == box.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Group assigns every grid exactly once for any sizes/topology.
func TestGroupTotalAssignment_Property(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%40) + 1
		m := int(mRaw%8) + 1
		sizes := make([]int, n)
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(1000)
		}
		adj := make(map[[2]int]bool)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(4) == 0 {
					adj[[2]int{i, j}] = true
				}
			}
		}
		conn := func(a, b int) bool {
			if a > b {
				a, b = b, a
			}
			return adj[[2]int{a, b}]
		}
		groups := Group(sizes, conn, m)
		seen := make([]bool, n)
		for _, g := range groups {
			for _, gi := range g {
				if seen[gi] {
					return false
				}
				seen[gi] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// SubdividePlanSlabs also covers each grid exactly.
func TestSlabCoverage_Property(t *testing.T) {
	f := func(niRaw, npRaw uint8) bool {
		ni := int(niRaw%80) + 10
		np := int(npRaw%12) + 1
		sizes := []int{ni * 20 * 10}
		plan, err := Static(sizes, np)
		if err != nil {
			return false
		}
		SubdividePlanSlabs(plan, [][3]int{{ni, 20, 10}})
		total := 0
		for _, p := range plan.Parts {
			total += p.Box.Count()
		}
		return total == ni*20*10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
