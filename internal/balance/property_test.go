package balance

import (
	"math/rand"
	"testing"
	"testing/quick"

	"overd/internal/grid"
)

// Static always assigns every processor, gives every grid at least one,
// and keeps counts weakly ordered with grid sizes.
func TestStaticInvariants_Property(t *testing.T) {
	f := func(seed int64, ngRaw, extraRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ng := int(ngRaw%8) + 1
		sizes := make([]int, ng)
		for i := range sizes {
			sizes[i] = 1000 + rng.Intn(500000)
		}
		np := ng + int(extraRaw%60)
		plan, err := Static(sizes, np)
		if err != nil {
			return false
		}
		sum := 0
		for _, c := range plan.Np {
			if c < 1 {
				return false
			}
			sum += c
		}
		if sum != np {
			return false
		}
		// Monotonicity within a tolerance of one processor: a grid twice
		// as large never gets fewer than half the processors minus one.
		for a := 0; a < ng; a++ {
			for b := 0; b < ng; b++ {
				if sizes[a] >= 2*sizes[b] && plan.Np[a] < plan.Np[b]/2-1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Subdivide covers the box exactly with disjoint pieces for any count.
func TestSubdivideCoverage_Property(t *testing.T) {
	f := func(niRaw, njRaw, nkRaw, npRaw uint8) bool {
		ni := int(niRaw%50) + 8
		nj := int(njRaw%50) + 8
		nk := int(nkRaw%20) + 1
		np := int(npRaw%16) + 1
		box := grid.FullBox(ni, nj, nk)
		pieces := Subdivide(box, np)
		if len(pieces) != np {
			return false
		}
		total := 0
		for _, p := range pieces {
			if !p.Valid() {
				return false
			}
			total += p.Count()
		}
		return total == box.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Group assigns every grid exactly once for any sizes/topology.
func TestGroupTotalAssignment_Property(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw%40) + 1
		m := int(mRaw%8) + 1
		sizes := make([]int, n)
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(1000)
		}
		adj := make(map[[2]int]bool)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(4) == 0 {
					adj[[2]int{i, j}] = true
				}
			}
		}
		conn := func(a, b int) bool {
			if a > b {
				a, b = b, a
			}
			return adj[[2]int{a, b}]
		}
		groups := Group(sizes, conn, m)
		seen := make([]bool, n)
		for _, g := range groups {
			for _, gi := range g {
				if seen[gi] {
					return false
				}
				seen[gi] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Every registered balancer, fed the same random grid system, must produce
// a structurally sound Plan: every rank 0..NP-1 assigned exactly one part,
// every grid owning at least one part, per-grid box counts covering the
// grid exactly, and Np consistent with the parts. These are the invariants
// the runtime's block builder assumes regardless of which balancer ran.
func TestBalancerPlanInvariants_Property(t *testing.T) {
	f := func(seed int64, ngRaw, extraRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		ng := int(ngRaw%6) + 1
		sizes := make([]int, ng)
		dims := make([][3]int, ng)
		centers := make([][3]float64, ng)
		for i := range sizes {
			d := [3]int{4 + rng.Intn(30), 4 + rng.Intn(30), 1 + rng.Intn(10)}
			dims[i] = d
			sizes[i] = d[0] * d[1] * d[2]
			centers[i] = [3]float64{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 10}
		}
		np := ng + int(extraRaw%40)
		in := Input{Sizes: sizes, Dims: dims, Centers: centers, NP: np}
		for _, name := range Names() {
			b, err := New(name, Params{Fo: 5, CheckInterval: 2})
			if err != nil {
				t.Logf("%s: construct: %v", name, err)
				return false
			}
			plan, err := b.Plan(in)
			if err != nil {
				t.Logf("%s: plan: %v", name, err)
				return false
			}
			if len(plan.Parts) != np {
				t.Logf("%s: %d parts for %d ranks", name, len(plan.Parts), np)
				return false
			}
			rankSeen := make([]bool, np)
			gridCover := make([]int, ng)
			gridParts := make([]int, ng)
			for _, p := range plan.Parts {
				if p.Rank < 0 || p.Rank >= np || rankSeen[p.Rank] {
					t.Logf("%s: bad or duplicate rank %d", name, p.Rank)
					return false
				}
				rankSeen[p.Rank] = true
				if p.Grid < 0 || p.Grid >= ng {
					t.Logf("%s: part with grid %d out of range", name, p.Grid)
					return false
				}
				if !p.Box.Valid() {
					t.Logf("%s: rank %d has an invalid box", name, p.Rank)
					return false
				}
				gridCover[p.Grid] += p.Box.Count()
				gridParts[p.Grid]++
			}
			total := 0
			for n := range sizes {
				if gridParts[n] == 0 {
					t.Logf("%s: grid %d owns no part", name, n)
					return false
				}
				if gridParts[n] != plan.Np[n] {
					t.Logf("%s: grid %d has %d parts but Np %d", name, n, gridParts[n], plan.Np[n])
					return false
				}
				if gridCover[n] != sizes[n] {
					t.Logf("%s: grid %d boxes cover %d of %d points", name, n, gridCover[n], sizes[n])
					return false
				}
				total += gridCover[n]
			}
			sum := 0
			for _, s := range sizes {
				sum += s
			}
			if total != sum {
				t.Logf("%s: loads sum to %d, want %d", name, total, sum)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// SubdividePlanSlabs also covers each grid exactly.
func TestSlabCoverage_Property(t *testing.T) {
	f := func(niRaw, npRaw uint8) bool {
		ni := int(niRaw%80) + 10
		np := int(npRaw%12) + 1
		sizes := []int{ni * 20 * 10}
		plan, err := Static(sizes, np)
		if err != nil {
			return false
		}
		SubdividePlanSlabs(plan, [][3]int{{ni, 20, 10}})
		total := 0
		for _, p := range plan.Parts {
			total += p.Box.Count()
		}
		return total == ni*20*10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
