package balance

import "math"

// defaultDiffuseThreshold is the busy-ratio trigger when no explicit
// threshold is configured: rebalance once the busiest rank computed 15%
// longer than the idlest since the previous check.
const defaultDiffuseThreshold = 1.15

// diffusiveBalancer migrates capacity from measured-busy toward
// measured-idle ranks, in the spirit of diffusive re-balancing driven by
// per-process idle time: the virtual clock's busy/wait decomposition —
// gathered at each check interval — replaces Algorithm 2's connectivity
// proxy I(p) as the imbalance signal. Each firing check moves exactly one
// processor: the grid hosting the busiest rank gains one, the grid hosting
// the idlest rank (or, when that is the same grid or a single-processor
// grid, the largest other eligible donor) gives one up, and the static
// subdivision re-cuts both. One-processor-at-a-time is the diffusion: load
// flows down the measured gradient a step per check instead of jumping to
// a globally recomputed optimum.
type diffusiveBalancer struct {
	staticBalancer
	// thr is the busy-ratio trigger: rebalance when busiest/idlest > thr.
	thr float64
}

func (b *diffusiveBalancer) Name() string { return "diffusive" }

func (b *diffusiveBalancer) Active() bool { return true }

func (b *diffusiveBalancer) Needs() Needs { return Needs{Waits: true} }

func (b *diffusiveBalancer) Rebalance(cur *Plan, in Input, fb Feedback) (*Plan, StepResult, error) {
	np := cur.NP()
	res := StepResult{}
	if len(fb.Busy) != np {
		return cur, res, errLenMismatch(np, len(fb.Busy))
	}

	// Busiest and idlest ranks; ties break toward the lower rank so every
	// rank reaches the same decision from the gathered (identical) vector.
	hi, lo := 0, 0
	var sum float64
	for p, busy := range fb.Busy {
		sum += busy
		if busy > fb.Busy[hi] {
			hi = p
		}
		if busy < fb.Busy[lo] {
			lo = p
		}
	}
	if sum > 0 {
		res.MaxF = fb.Busy[hi] * float64(np) / sum
	}
	if fb.Busy[lo] <= 0 || fb.Busy[hi] <= b.thr*fb.Busy[lo] {
		return cur, res, nil
	}

	dst := cur.Parts[hi].Grid
	src := cur.Parts[lo].Grid
	if src == dst || cur.Np[src] <= 1 {
		// The idle rank's grid cannot donate; fall back to the largest
		// other donor (lowest grid index on ties).
		src = -1
		for n, c := range cur.Np {
			if n == dst || c <= 1 {
				continue
			}
			if src < 0 || c > cur.Np[src] {
				src = n
			}
		}
		if src < 0 {
			return cur, res, nil
		}
	}

	counts := append([]int(nil), cur.Np...)
	counts[src]--
	counts[dst]++
	newPlan := buildPlan(in.Sizes, counts, cur.Tau)
	fillBoxes(newPlan, in)
	res.Rebalanced = true
	return newPlan, res, nil
}

func init() {
	Register("diffusive", func(p Params) Balancer {
		thr := defaultDiffuseThreshold
		if p.Fo > 1 && !math.IsInf(p.Fo, 1) {
			thr = p.Fo
		}
		return &diffusiveBalancer{thr: thr}
	})
}
