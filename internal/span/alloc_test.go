package span

import (
	"runtime"
	"testing"
	"time"
)

// pinOneProc pins GOMAXPROCS to 1 for the duration of the test.
// testing.AllocsPerRun counts every allocation in the process during its
// runs, so at GOMAXPROCS>1 a concurrently scheduled goroutine can charge
// allocations to the measured hot path and flake the zero-alloc assertion
// — the measurement needs serial execution even though the measured code
// is parallel-safe.
func pinOneProc(t *testing.T) {
	t.Helper()
	old := runtime.GOMAXPROCS(1)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// TestDetachedSpanLayerZeroAlloc pins the package's zero-cost contract: a
// detached recorder (nil *Recorder, nil *Record) must not allocate on any
// recording operation. This is the same discipline internal/trace and
// internal/metrics follow — attaching observability is a choice, and NOT
// attaching it must be free — and it is what lets the server embed span
// calls unconditionally on its hot paths (admit, dequeue, finalize) without
// a configuration check at every site.
//
// The solver's own hot paths (the Table-4 bench) never see this package at
// all: spans live in internal/serve, above overd.Run. The companion test
// TestServeBitIdenticalWithSpans (internal/serve) proves the stronger
// property that an *attached* recorder leaves the artifacts byte-identical.
func TestDetachedSpanLayerZeroAlloc(t *testing.T) {
	pinOneProc(t)
	var rec *Recorder
	t0 := time.Now()
	if n := testing.AllocsPerRun(100, func() {
		j := rec.StartAt("j-000001", "tenant", "static", t0)
		j.AddStage(StageAdmit, t0, t0)
		j.AddStage(StageQueue, t0, t0)
		j.AddStage(StageExecute, t0, t0)
		j.SetCache("miss")
		j.Log("event=admit")
		j.AddStage(StagePublish, t0, t0)
		j.Finish("done")
		_ = j.View()
	}); n != 0 {
		t.Fatalf("detached span layer allocated %.1f allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if rec.Len() != 0 || rec.Cap() != 0 {
			t.Fatal("nil recorder not empty")
		}
		if _, ok := rec.Get("j-000001"); ok {
			t.Fatal("nil recorder returned a record")
		}
	}); n != 0 {
		t.Fatalf("detached recorder reads allocated %.1f allocs/op, want 0", n)
	}
}
