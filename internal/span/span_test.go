package span

import (
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

func TestStageNames(t *testing.T) {
	want := map[Stage]string{
		StageAdmit:   "admit",
		StageJournal: "journal-append",
		StageQueue:   "queue",
		StageCache:   "cache-lookup",
		StageExecute: "execute",
		StagePublish: "publish",
		StageStream:  "stream",
	}
	for st, name := range want {
		if got := st.String(); got != name {
			t.Errorf("Stage(%d).String() = %q, want %q", st, got, name)
		}
	}
	if got := Stage(200).String(); got != "stage(?)" {
		t.Errorf("unknown stage renders %q", got)
	}
}

func TestRecordLifecycleAndView(t *testing.T) {
	rec := NewRecorder(4)
	t0 := time.Now()
	j := rec.StartAt("j-000001", "acme", "static", t0)
	j.SetCache("miss")
	// Record out of start order on purpose: the view must sort by start.
	j.AddStage(StageQueue, t0.Add(2*time.Millisecond), t0.Add(5*time.Millisecond))
	j.AddStage(StageAdmit, t0, t0.Add(time.Millisecond), Attr{"queue_depth", "0"})
	j.AddStage(StageExecute, t0.Add(5*time.Millisecond), t0.Add(9*time.Millisecond),
		Attr{"attempt", "1"})
	j.Log("event=test msg=hello")
	if rec.Len() != 0 {
		t.Fatalf("record landed in ring before Finish: len=%d", rec.Len())
	}
	j.Finish("done")
	j.Finish("failed") // idempotent: first outcome wins
	if got := j.Outcome(); got != "done" {
		t.Errorf("outcome = %q, want done", got)
	}
	if rec.Len() != 1 {
		t.Fatalf("ring len = %d, want 1", rec.Len())
	}

	got, ok := rec.Get("j-000001")
	if !ok {
		t.Fatal("finished record not retrievable by id")
	}
	v := got.View()
	if v.ID != "j-000001" || v.Tenant != "acme" || v.Balancer != "static" {
		t.Errorf("view identity wrong: %+v", v)
	}
	if !v.Finished || v.Outcome != "done" || v.Cache != "miss" {
		t.Errorf("view outcome wrong: %+v", v)
	}
	stages := make([]string, 0, len(v.Spans))
	for _, sp := range v.Spans {
		stages = append(stages, sp.Stage)
		if sp.DurationSeconds < 0 {
			t.Errorf("stage %s has negative duration %g", sp.Stage, sp.DurationSeconds)
		}
	}
	want := []string{"admit", "queue", "execute"}
	if fmt.Sprint(stages) != fmt.Sprint(want) {
		t.Errorf("view stages = %v, want %v (sorted by start)", stages, want)
	}
	if v.Spans[2].Attrs["attempt"] != "1" {
		t.Errorf("execute attrs lost: %+v", v.Spans[2])
	}
	if len(v.Logs) != 1 || v.Logs[0].Text != "event=test msg=hello" {
		t.Errorf("correlated logs wrong: %+v", v.Logs)
	}

	// The view must be valid JSON with the documented field names.
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal view: %v", err)
	}
	var round map[string]any
	if err := json.Unmarshal(b, &round); err != nil {
		t.Fatalf("view JSON does not round-trip: %v", err)
	}
	for _, key := range []string{"id", "tenant", "outcome", "finished", "start", "duration_seconds", "spans"} {
		if _, ok := round[key]; !ok {
			t.Errorf("view JSON missing %q: %s", key, b)
		}
	}
}

func TestRingEvictsOldest(t *testing.T) {
	rec := NewRecorder(2)
	for i := 1; i <= 3; i++ {
		j := rec.StartAt(fmt.Sprintf("j-%06d", i), "t", "", time.Now())
		j.Finish("done")
	}
	if rec.Len() != 2 {
		t.Fatalf("ring len = %d, want capacity 2", rec.Len())
	}
	if _, ok := rec.Get("j-000001"); ok {
		t.Error("oldest record should have been evicted")
	}
	for _, id := range []string{"j-000002", "j-000003"} {
		if _, ok := rec.Get(id); !ok {
			t.Errorf("record %s missing from ring", id)
		}
	}
	views := rec.Recent(0)
	if len(views) != 2 || views[0].ID != "j-000003" || views[1].ID != "j-000002" {
		t.Errorf("Recent order wrong: %+v", views)
	}
	if one := rec.Recent(1); len(one) != 1 || one[0].ID != "j-000003" {
		t.Errorf("Recent(1) = %+v, want just the newest", one)
	}
}

func TestAppendPostMortem(t *testing.T) {
	rec := NewRecorder(2)
	j := rec.StartAt("j-000009", "t", "", time.Now())
	j.Finish("done")
	now := time.Now()
	if !rec.Append("j-000009", StageStream, now, now.Add(time.Millisecond), Attr{"events", "5"}) {
		t.Fatal("Append to resident record failed")
	}
	if rec.Append("j-nothere", StageStream, now, now) {
		t.Error("Append to unknown id reported success")
	}
	got, _ := rec.Get("j-000009")
	v := got.View()
	last := v.Spans[len(v.Spans)-1]
	if last.Stage != "stream" || last.Attrs["events"] != "5" {
		t.Errorf("post-mortem stream span missing: %+v", v.Spans)
	}
}

func TestOnFinishHookObservesSpans(t *testing.T) {
	rec := NewRecorder(4)
	var seen []string
	rec.OnFinish = func(r *Record) {
		for _, sp := range r.Spans() {
			seen = append(seen, fmt.Sprintf("%s/%s", sp.Stage, r.Outcome()))
		}
	}
	j := rec.StartAt("j-000042", "t", "", time.Now())
	now := time.Now()
	j.AddStage(StageExecute, now, now.Add(time.Millisecond))
	j.Finish("failed")
	if len(seen) != 1 || seen[0] != "execute/failed" {
		t.Errorf("OnFinish observations = %v", seen)
	}
}

func TestDetachedRecorderIsInert(t *testing.T) {
	var rec *Recorder
	j := rec.StartAt("j-000001", "t", "b", time.Now())
	if j != nil {
		t.Fatal("detached recorder must hand out nil records")
	}
	// Every operation on the nil record must be a safe no-op.
	now := time.Now()
	j.AddStage(StageExecute, now, now)
	j.SetCache("hit")
	j.Log("line")
	j.Finish("done")
	if j.ID() != "" || j.Outcome() != "" || j.Duration() != 0 || j.Spans() != nil {
		t.Error("nil record leaked state")
	}
	if v := j.View(); v.ID != "" || len(v.Spans) != 0 {
		t.Errorf("nil record view not zero: %+v", v)
	}
	if rec.Len() != 0 || rec.Cap() != 0 {
		t.Error("nil recorder reported contents")
	}
	if _, ok := rec.Get("x"); ok {
		t.Error("nil recorder returned a record")
	}
	if rec.Recent(5) != nil {
		t.Error("nil recorder returned views")
	}
	if rec.Append("x", StageStream, now, now) {
		t.Error("nil recorder accepted an append")
	}
}

func TestClampSeconds(t *testing.T) {
	if got := clampSeconds(-time.Second); got != 0 {
		t.Errorf("negative duration rendered as %g, want 0", got)
	}
	if got := clampSeconds(1500 * time.Millisecond); got != 1.5 {
		t.Errorf("1.5s rendered as %g", got)
	}
}
