// Package span is the wall-clock observability plane of the job service: a
// zero-cost-when-detached span layer plus a bounded per-job flight recorder.
//
// The repository already has two observability planes that explain the
// *simulated* machine — virtual-time traces (internal/trace) and
// virtual-time metrics (internal/metrics). Both are clock-exact and feed the
// paper tables. This package is the third plane: it explains where the
// *service's* wall-clock time went for each job (admission, journal fsync,
// queue wait, execution, publication, event streaming), which is an
// operational question the virtual planes cannot answer.
//
// Discipline (same contract as internal/trace and internal/metrics):
//
//   - spans observe the host wall clock only; nothing here reads or writes
//     virtual clocks, artifacts or result hashes, so runs are bit-identical
//     with the recorder attached or absent;
//   - a nil *Recorder is a valid "disabled" recorder: Start returns a nil
//     *Record, and every *Record method nil-checks and returns, so a
//     detached server pays one predictable branch per would-be span and
//     allocates nothing (AllocsPerRun-guarded in alloc_test.go).
//
// The flight recorder is a fixed-capacity ring of the most recently finished
// jobs' records — spans plus correlated structured log lines — so a
// post-mortem ("why was job j-000317 slow at 03:12?") can be answered from
// GET /jobs/{id}/spans without unbounded per-job retention.
package span

import (
	"sort"
	"sync"
	"time"
)

// Stage identifies one lifecycle stage of a job inside the service.
type Stage uint8

const (
	// StageAdmit covers Submit from entry to the admission decision
	// (validation, hashing, cache consult, journal append, queue insert).
	StageAdmit Stage = iota
	// StageJournal is the durable WAL append (fsync included) inside
	// admission.
	StageJournal
	// StageQueue is the time from admission to a worker dequeue.
	StageQueue
	// StageCache is the content-addressed result-cache lookup.
	StageCache
	// StageExecute is one runner invocation (one per attempt).
	StageExecute
	// StagePublish covers finalization: cache store, journal terminal
	// marker, metrics and event-log close.
	StagePublish
	// StageStream is one GET /events subscriber's attach-to-detach window.
	StageStream
	// NumStages is the count of defined stages (for label tables).
	NumStages
)

var stageNames = [NumStages]string{
	"admit", "journal-append", "queue", "cache-lookup",
	"execute", "publish", "stream",
}

// String implements fmt.Stringer; unknown values render as "stage(?)".
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "stage(?)"
}

// Attr is one small stage-specific annotation (cache disposition, attempt
// number, subscriber fate, ...).
type Attr struct {
	Key, Value string
}

// Span is one closed wall-clock interval of a job's lifecycle.
type Span struct {
	Stage Stage
	Start time.Time
	End   time.Time
	Attrs []Attr
}

// LogLine is one structured log line correlated with a job.
type LogLine struct {
	Time time.Time
	Text string
}

// Record is one job's span set: a root interval (Start→Finish) with child
// stage spans and correlated log lines. Safe for concurrent use; a nil
// *Record is a valid disabled record and every method no-ops on it.
type Record struct {
	rec *Recorder

	mu       sync.Mutex
	id       string
	tenant   string
	balancer string
	start    time.Time
	end      time.Time
	outcome  string
	cache    string
	spans    []Span
	logs     []LogLine
	finished bool
}

// Recorder is the bounded flight recorder: finished records land in a ring
// of fixed capacity, evicting the oldest. A nil *Recorder disables the whole
// layer at zero cost.
type Recorder struct {
	// OnFinish, when set, observes every finished record (the server feeds
	// its wall-clock latency histograms here). Set it before records
	// finish; it is called outside the recorder lock.
	OnFinish func(*Record)

	mu   sync.Mutex
	cap  int
	ring []*Record
	next int
	byID map[string]*Record
}

// DefaultCapacity is the flight-recorder ring size when none is configured.
const DefaultCapacity = 64

// NewRecorder returns a flight recorder retaining the last capacity finished
// jobs (<= 0 picks DefaultCapacity).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Recorder{
		cap:  capacity,
		ring: make([]*Record, 0, capacity),
		byID: make(map[string]*Record),
	}
}

// StartAt opens a record for one job with an explicit root start time (the
// wall instant the request entered the server). Returns nil — a free no-op
// record — when the recorder is detached.
func (r *Recorder) StartAt(id, tenant, balancer string, start time.Time) *Record {
	if r == nil {
		return nil
	}
	return &Record{rec: r, id: id, tenant: tenant, balancer: balancer, start: start}
}

// Get returns the finished record for a job id still resident in the ring.
func (r *Recorder) Get(id string) (*Record, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rec, ok := r.byID[id]
	return rec, ok
}

// Append attaches one more closed span (e.g. an event-stream window that
// outlived the job) to a finished record still in the ring. Reports whether
// the record was found.
func (r *Recorder) Append(id string, st Stage, start, end time.Time, attrs ...Attr) bool {
	rec, ok := r.Get(id)
	if !ok {
		return false
	}
	rec.mu.Lock()
	rec.spans = append(rec.spans, Span{Stage: st, Start: start, End: end, Attrs: attrs})
	rec.mu.Unlock()
	return true
}

// Recent returns views of the most recently finished records, newest first,
// capped at n (n <= 0 means all resident).
func (r *Recorder) Recent(n int) []View {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	recs := make([]*Record, 0, len(r.ring))
	// Ring order: r.next points at the oldest once full; walk backwards
	// from the newest.
	for i := 0; i < len(r.ring); i++ {
		idx := (r.next - 1 - i + len(r.ring)) % len(r.ring)
		recs = append(recs, r.ring[idx])
	}
	r.mu.Unlock()
	if n > 0 && len(recs) > n {
		recs = recs[:n]
	}
	out := make([]View, 0, len(recs))
	for _, rec := range recs {
		out = append(out, rec.View())
	}
	return out
}

// Len reports how many finished records are resident.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.ring)
}

// Cap reports the ring capacity (0 when detached).
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return r.cap
}

// admit lands a finished record in the ring, evicting the oldest.
func (r *Recorder) admit(rec *Record) {
	r.mu.Lock()
	if len(r.ring) < r.cap {
		r.ring = append(r.ring, rec)
		r.next = len(r.ring) % r.cap
	} else {
		old := r.ring[r.next]
		delete(r.byID, old.id)
		r.ring[r.next] = rec
		r.next = (r.next + 1) % r.cap
	}
	r.byID[rec.id] = rec
	r.mu.Unlock()
}

// AddStage records one closed stage span.
func (j *Record) AddStage(st Stage, start, end time.Time, attrs ...Attr) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.spans = append(j.spans, Span{Stage: st, Start: start, End: end, Attrs: attrs})
	j.mu.Unlock()
}

// SetCache records the content-address disposition (hit, miss, inflight).
func (j *Record) SetCache(disposition string) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.cache = disposition
	j.mu.Unlock()
}

// Log correlates one pre-formatted structured log line with the job.
func (j *Record) Log(text string) {
	if j == nil {
		return
	}
	j.mu.Lock()
	j.logs = append(j.logs, LogLine{Time: time.Now(), Text: text})
	j.mu.Unlock()
}

// Finish closes the root span with the job's terminal outcome and lands the
// record in the flight recorder's ring. Idempotent: a second Finish is
// ignored.
func (j *Record) Finish(outcome string) {
	if j == nil {
		return
	}
	j.mu.Lock()
	if j.finished {
		j.mu.Unlock()
		return
	}
	j.finished = true
	j.outcome = outcome
	j.end = time.Now()
	rec := j.rec
	j.mu.Unlock()
	if rec != nil {
		rec.admit(j)
		if rec.OnFinish != nil {
			rec.OnFinish(j)
		}
	}
}

// ID returns the job id the record belongs to.
func (j *Record) ID() string {
	if j == nil {
		return ""
	}
	return j.id
}

// Outcome returns the terminal outcome ("" while the job is live).
func (j *Record) Outcome() string {
	if j == nil {
		return ""
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.outcome
}

// Duration is the root span's wall-clock length (Finish−Start; time-to-now
// for a live record).
func (j *Record) Duration() time.Duration {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.finished {
		return j.end.Sub(j.start)
	}
	return time.Since(j.start)
}

// Spans returns a copy of the closed stage spans recorded so far.
func (j *Record) Spans() []Span {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]Span(nil), j.spans...)
}

// View is the JSON shape of one job's span record. The top-level fields are
// the root span; Spans are its children sorted by start time.
type View struct {
	ID              string     `json:"id"`
	Tenant          string     `json:"tenant"`
	Balancer        string     `json:"balancer,omitempty"`
	Outcome         string     `json:"outcome,omitempty"`
	Cache           string     `json:"cache,omitempty"`
	Finished        bool       `json:"finished"`
	Start           time.Time  `json:"start"`
	DurationSeconds float64    `json:"duration_seconds"`
	Spans           []SpanView `json:"spans"`
	Logs            []LogView  `json:"logs,omitempty"`
}

// SpanView is one child span in the JSON view.
type SpanView struct {
	Stage           string            `json:"stage"`
	Start           time.Time         `json:"start"`
	DurationSeconds float64           `json:"duration_seconds"`
	Attrs           map[string]string `json:"attrs,omitempty"`
}

// LogView is one correlated log line in the JSON view.
type LogView struct {
	Time time.Time `json:"time"`
	Text string    `json:"text"`
}

// View snapshots the record for JSON rendering: child spans sorted by start
// time (stable, so same-instant spans keep recording order), durations never
// negative. Returns a zero View on a nil record.
func (j *Record) View() View {
	if j == nil {
		return View{}
	}
	j.mu.Lock()
	v := View{
		ID: j.id, Tenant: j.tenant, Balancer: j.balancer,
		Outcome: j.outcome, Cache: j.cache, Finished: j.finished,
		Start: j.start,
	}
	end := j.end
	if !j.finished {
		end = time.Now()
	}
	v.DurationSeconds = clampSeconds(end.Sub(j.start))
	spans := append([]Span(nil), j.spans...)
	logs := append([]LogLine(nil), j.logs...)
	j.mu.Unlock()

	sort.SliceStable(spans, func(a, b int) bool { return spans[a].Start.Before(spans[b].Start) })
	v.Spans = make([]SpanView, 0, len(spans))
	for _, sp := range spans {
		sv := SpanView{
			Stage: sp.Stage.String(), Start: sp.Start,
			DurationSeconds: clampSeconds(sp.End.Sub(sp.Start)),
		}
		if len(sp.Attrs) > 0 {
			sv.Attrs = make(map[string]string, len(sp.Attrs))
			for _, a := range sp.Attrs {
				sv.Attrs[a.Key] = a.Value
			}
		}
		v.Spans = append(v.Spans, sv)
	}
	if len(logs) > 0 {
		v.Logs = make([]LogView, 0, len(logs))
		for _, l := range logs {
			v.Logs = append(v.Logs, LogView{Time: l.Time, Text: l.Text})
		}
	}
	return v
}

// clampSeconds renders a duration as non-negative seconds: the wall clock
// can step backwards (NTP), and a negative "latency" would only mislead.
func clampSeconds(d time.Duration) float64 {
	if d < 0 {
		return 0
	}
	return d.Seconds()
}
