// Package sixdof implements the grid-motion model of OVERFLOW-D1: rigid
// six-degree-of-freedom dynamics integrated from applied and aerodynamic
// loads (the SIXDOF analog), plus the prescribed motions used by the
// paper's test cases (sinusoidal pitch for the oscillating airfoil, uniform
// descent for the delta wing, and a specified store-separation trajectory).
package sixdof

import (
	"math"

	"overd/internal/geom"
)

// Motion produces the placement of a moving component at time t.
type Motion interface {
	// At returns the body-to-world transform at time t.
	At(t float64) geom.Transform
}

// StaticMotion keeps a component fixed.
type StaticMotion struct{}

// At implements Motion.
func (StaticMotion) At(float64) geom.Transform { return geom.IdentityTransform() }

// PitchMotion oscillates the angle of attack about a pivot point in the
// x-y plane: α(t) = Alpha0·sin(Omega·t), the paper's 2-D airfoil motion
// (α₀ = 5°, ω = π/2).
type PitchMotion struct {
	Alpha0 float64 // amplitude in radians
	Omega  float64 // angular frequency
	Pivot  geom.Vec3
}

// At implements Motion. A positive angle of attack pitches the nose up,
// which for a body at rest in a +x freestream is a rotation by -α of the
// geometry about z.
func (m PitchMotion) At(t float64) geom.Transform {
	a := m.Alpha0 * math.Sin(m.Omega*t)
	rot := geom.RotZ(-a)
	// x_w = R (x_b - pivot) + pivot
	return geom.Transform{R: rot, T: m.Pivot.Sub(rot.MulVec(m.Pivot))}
}

// TranslationMotion moves a component at constant velocity (the delta
// wing's slow descent, M = 0.064 relative to the background).
type TranslationMotion struct {
	Velocity geom.Vec3
}

// At implements Motion.
func (m TranslationMotion) At(t float64) geom.Transform {
	return geom.Transform{R: geom.Identity3(), T: m.Velocity.Scale(t)}
}

// StoreReleaseMotion prescribes a separation trajectory: gravitational drop
// with aerodynamic deceleration and a slow nose-down pitch, the specified
// motion of the paper's wing/pylon/finned-store case ("the motion of the
// store is specified in this case rather than computed").
type StoreReleaseMotion struct {
	// Drop is the downward acceleration (nondimensional).
	Drop float64
	// Decel is the streamwise deceleration.
	Decel float64
	// PitchRate is the nose-down pitch rate in radians per unit time.
	PitchRate float64
	// Pivot is the rotation reference (store CG) in the body frame.
	Pivot geom.Vec3
}

// At implements Motion.
func (m StoreReleaseMotion) At(t float64) geom.Transform {
	dz := -0.5 * m.Drop * t * t
	dx := -0.5 * m.Decel * t * t
	rot := geom.RotZ(-m.PitchRate * t)
	tr := geom.Vec3{X: dx, Y: dz}
	return geom.Transform{R: rot, T: m.Pivot.Sub(rot.MulVec(m.Pivot)).Add(tr)}
}

// State is the instantaneous rigid-body state.
type State struct {
	// Pos is the world position of the center of gravity.
	Pos geom.Vec3
	// Att is the body attitude quaternion.
	Att geom.Quat
	// Vel is the CG velocity in the world frame.
	Vel geom.Vec3
	// Omega is the angular velocity in the body frame.
	Omega geom.Vec3
}

// Body is a rigid body integrated under aerodynamic and applied loads.
type Body struct {
	// Mass is the body mass.
	Mass float64
	// Inertia holds the principal moments of inertia (body axes).
	Inertia geom.Vec3
	// CG is the center of gravity in the grid's body frame.
	CG geom.Vec3
	// Gravity is the world-frame gravitational acceleration.
	Gravity geom.Vec3
	// State is the current state.
	State State
}

// NewBody returns a body at rest with identity attitude.
func NewBody(mass float64, inertia geom.Vec3, cg geom.Vec3) *Body {
	return &Body{
		Mass:    mass,
		Inertia: inertia,
		CG:      cg,
		State:   State{Att: geom.IdentityQuat(), Pos: cg},
	}
}

type deriv struct {
	dPos   geom.Vec3
	dAtt   geom.Quat
	dVel   geom.Vec3
	dOmega geom.Vec3
}

// derivAt evaluates the equations of motion: Newton's law in the world
// frame and Euler's rotation equations in the body frame.
func (b *Body) derivAt(s State, force, moment geom.Vec3) deriv {
	// Moment about the CG in body axes.
	mBody := s.Att.Conj().Rotate(moment)
	ix, iy, iz := b.Inertia.X, b.Inertia.Y, b.Inertia.Z
	w := s.Omega
	var dw geom.Vec3
	if ix > 0 {
		dw.X = (mBody.X - (iz-iy)*w.Y*w.Z) / ix
	}
	if iy > 0 {
		dw.Y = (mBody.Y - (ix-iz)*w.Z*w.X) / iy
	}
	if iz > 0 {
		dw.Z = (mBody.Z - (iy-ix)*w.X*w.Y) / iz
	}
	return deriv{
		dPos:   s.Vel,
		dAtt:   s.Att.Deriv(w),
		dVel:   force.Scale(1 / b.Mass).Add(b.Gravity),
		dOmega: dw,
	}
}

func stepState(s State, d deriv, dt float64) State {
	return State{
		Pos:   s.Pos.Add(d.dPos.Scale(dt)),
		Att:   s.Att.AddScaled(d.dAtt, dt).Normalized(),
		Vel:   s.Vel.Add(d.dVel.Scale(dt)),
		Omega: s.Omega.Add(d.dOmega.Scale(dt)),
	}
}

// Step advances the body by dt under the given world-frame force and moment
// (about the CG) using fourth-order Runge-Kutta with loads frozen over the
// step (the standard loose aero-structure coupling).
func (b *Body) Step(force, moment geom.Vec3, dt float64) {
	s := b.State
	k1 := b.derivAt(s, force, moment)
	k2 := b.derivAt(stepState(s, k1, dt/2), force, moment)
	k3 := b.derivAt(stepState(s, k2, dt/2), force, moment)
	k4 := b.derivAt(stepState(s, k3, dt), force, moment)
	avg := deriv{
		dPos:   k1.dPos.Add(k2.dPos.Scale(2)).Add(k3.dPos.Scale(2)).Add(k4.dPos).Scale(1.0 / 6),
		dAtt:   k1.dAtt.AddScaled(k2.dAtt, 2).AddScaled(k3.dAtt, 2).AddScaled(k4.dAtt, 1),
		dVel:   k1.dVel.Add(k2.dVel.Scale(2)).Add(k3.dVel.Scale(2)).Add(k4.dVel).Scale(1.0 / 6),
		dOmega: k1.dOmega.Add(k2.dOmega.Scale(2)).Add(k3.dOmega.Scale(2)).Add(k4.dOmega).Scale(1.0 / 6),
	}
	avg.dAtt = geom.Quat{W: avg.dAtt.W / 6, X: avg.dAtt.X / 6, Y: avg.dAtt.Y / 6, Z: avg.dAtt.Z / 6}
	b.State = stepState(s, avg, dt)
}

// Transform returns the grid placement implied by the current state:
// body-frame points rotate about the CG and translate with it.
func (b *Body) Transform() geom.Transform {
	r := b.State.Att.Mat()
	// x_w = R (x_b - CG) + Pos
	return geom.Transform{R: r, T: b.State.Pos.Sub(r.MulVec(b.CG))}
}

// FreeMotion adapts a Body to the Motion interface for drivers that apply
// loads between At calls (At ignores t; the body advances via Step).
type FreeMotion struct{ Body *Body }

// At implements Motion.
func (m FreeMotion) At(float64) geom.Transform { return m.Body.Transform() }
