package sixdof

import (
	"math"
	"testing"

	"overd/internal/geom"
)

func TestPitchMotionAmplitude(t *testing.T) {
	m := PitchMotion{Alpha0: 5 * math.Pi / 180, Omega: math.Pi / 2, Pivot: geom.Vec3{X: 0.25}}
	// At t=1 (quarter period), deflection is the full amplitude.
	tr := m.At(1)
	// The pivot stays fixed.
	if tr.Apply(m.Pivot).Dist(m.Pivot) > 1e-12 {
		t.Error("pivot should not move")
	}
	// A point one chord ahead rotates by -alpha0 about the pivot.
	p := tr.Apply(geom.Vec3{X: 1.25})
	wantAngle := -5 * math.Pi / 180
	want := geom.Vec3{X: 0.25 + math.Cos(wantAngle), Y: math.Sin(wantAngle)}
	if p.Dist(want) > 1e-12 {
		t.Errorf("rotated point %v, want %v", p, want)
	}
	// At t=0 the transform is the identity.
	if m.At(0).Apply(geom.Vec3{X: 3}).Dist(geom.Vec3{X: 3}) > 1e-12 {
		t.Error("t=0 should be identity")
	}
}

func TestTranslationMotion(t *testing.T) {
	m := TranslationMotion{Velocity: geom.Vec3{Y: -0.064}}
	p := m.At(10).Apply(geom.Vec3{X: 1})
	if p.Dist(geom.Vec3{X: 1, Y: -0.64}) > 1e-12 {
		t.Errorf("translated point %v", p)
	}
}

func TestStoreReleaseDropsAndPitches(t *testing.T) {
	m := StoreReleaseMotion{Drop: 0.1, Decel: 0.02, PitchRate: 0.05, Pivot: geom.Vec3{X: 2}}
	tr := m.At(2)
	pivotNow := tr.Apply(geom.Vec3{X: 2})
	// Pivot follows the drop trajectory: dz = -0.5*0.1*4 = -0.2, dx = -0.04.
	want := geom.Vec3{X: 2 - 0.04, Y: -0.2}
	if pivotNow.Dist(want) > 1e-12 {
		t.Errorf("pivot at %v, want %v", pivotNow, want)
	}
	// Attitude rotates nose-down over time.
	nose := tr.Apply(geom.Vec3{X: 3}).Sub(pivotNow)
	if nose.Y >= 0 {
		t.Error("store should pitch nose-down")
	}
}

func TestBodyFreeFall(t *testing.T) {
	b := NewBody(2, geom.Vec3{X: 1, Y: 1, Z: 1}, geom.Vec3{})
	b.Gravity = geom.Vec3{Y: -10}
	dt := 0.001
	for i := 0; i < 1000; i++ { // t = 1
		b.Step(geom.Vec3{}, geom.Vec3{}, dt)
	}
	// y = -g t²/2 = -5, v = -10.
	if math.Abs(b.State.Pos.Y+5) > 1e-6 {
		t.Errorf("fall distance %v, want -5", b.State.Pos.Y)
	}
	if math.Abs(b.State.Vel.Y+10) > 1e-9 {
		t.Errorf("fall speed %v, want -10", b.State.Vel.Y)
	}
}

func TestBodyConstantForce(t *testing.T) {
	b := NewBody(4, geom.Vec3{X: 1, Y: 1, Z: 1}, geom.Vec3{})
	for i := 0; i < 100; i++ {
		b.Step(geom.Vec3{X: 8}, geom.Vec3{}, 0.01) // a = 2
	}
	// t=1: x = 1, v = 2.
	if math.Abs(b.State.Pos.X-1) > 1e-9 || math.Abs(b.State.Vel.X-2) > 1e-9 {
		t.Errorf("pos %v vel %v", b.State.Pos.X, b.State.Vel.X)
	}
}

func TestBodySpinConservesDirection(t *testing.T) {
	// Torque-free symmetric top: angular velocity stays constant.
	b := NewBody(1, geom.Vec3{X: 2, Y: 2, Z: 2}, geom.Vec3{})
	b.State.Omega = geom.Vec3{Z: 3}
	for i := 0; i < 500; i++ {
		b.Step(geom.Vec3{}, geom.Vec3{}, 0.002) // t = 1
	}
	if b.State.Omega.Sub(geom.Vec3{Z: 3}).Norm() > 1e-9 {
		t.Errorf("omega drifted: %v", b.State.Omega)
	}
	// Attitude: rotated by 3 rad about z.
	got := b.State.Att.Rotate(geom.Vec3{X: 1})
	want := geom.RotZ(3).MulVec(geom.Vec3{X: 1})
	if got.Dist(want) > 1e-5 {
		t.Errorf("attitude %v, want %v", got, want)
	}
}

func TestBodyTorqueSpinup(t *testing.T) {
	b := NewBody(1, geom.Vec3{X: 1, Y: 1, Z: 4}, geom.Vec3{})
	for i := 0; i < 100; i++ {
		b.Step(geom.Vec3{}, geom.Vec3{Z: 2}, 0.01) // alpha = 0.5 about z
	}
	// omega_z = 0.5 * t = 0.5.
	if math.Abs(b.State.Omega.Z-0.5) > 1e-9 {
		t.Errorf("omega %v, want 0.5", b.State.Omega.Z)
	}
}

func TestBodyTransformRotatesAboutCG(t *testing.T) {
	cg := geom.Vec3{X: 2, Y: 1}
	b := NewBody(1, geom.Vec3{X: 1, Y: 1, Z: 1}, cg)
	b.State.Att = geom.AxisAngle(geom.Vec3{Z: 1}, math.Pi/2)
	tr := b.Transform()
	// The CG maps to the current position (which started at the CG).
	if tr.Apply(cg).Dist(cg) > 1e-12 {
		t.Errorf("CG moved: %v", tr.Apply(cg))
	}
	// A point 1 ahead of the CG rotates 90° about it.
	p := tr.Apply(geom.Vec3{X: 3, Y: 1})
	want := geom.Vec3{X: 2, Y: 2}
	if p.Dist(want) > 1e-12 {
		t.Errorf("rotated point %v, want %v", p, want)
	}
}

func TestStaticMotion(t *testing.T) {
	tr := StaticMotion{}.At(99)
	if tr.Apply(geom.Vec3{X: 1, Y: 2, Z: 3}) != (geom.Vec3{X: 1, Y: 2, Z: 3}) {
		t.Error("static motion should be identity")
	}
}

func TestFreeMotionAdapter(t *testing.T) {
	b := NewBody(1, geom.Vec3{X: 1, Y: 1, Z: 1}, geom.Vec3{})
	b.Gravity = geom.Vec3{Y: -1}
	m := FreeMotion{Body: b}
	before := m.At(0).Apply(geom.Vec3{X: 1})
	for i := 0; i < 100; i++ {
		b.Step(geom.Vec3{}, geom.Vec3{}, 0.01)
	}
	after := m.At(0).Apply(geom.Vec3{X: 1})
	if after.Y >= before.Y {
		t.Error("free body should have fallen")
	}
}
