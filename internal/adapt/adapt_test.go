package adapt

import (
	"math"
	"testing"

	"overd/internal/flow"
	"overd/internal/geom"
	"overd/internal/machine"
)

func testDomain() geom.Box {
	return geom.Box{Min: geom.Vec3{X: -4, Y: -4, Z: -4}, Max: geom.Vec3{X: 4, Y: 4, Z: 4}}
}

func TestGenerateUniform(t *testing.T) {
	cfg := Config{Domain: testDomain(), H0: 0.5, BrickCells: 4, MaxLevel: 2}
	sys := Generate(cfg, func(geom.Vec3) int { return 0 })
	// 8/2 = 4 bricks per side at level 0.
	if len(sys.Bricks) != 4*4*4 {
		t.Fatalf("got %d bricks, want 64", len(sys.Bricks))
	}
	counts := sys.LevelCounts()
	if len(counts) != 1 || counts[0] != 64 {
		t.Errorf("level counts = %v", counts)
	}
	// Bricks tile the domain disjointly: every probe lands in exactly one.
	for _, p := range []geom.Vec3{{X: 0.1, Y: 0.1, Z: 0.1}, {X: -3.9, Y: 3.9, Z: 0.1}} {
		n := 0
		for _, b := range sys.Bricks {
			if b.Contains(p) {
				n++
			}
		}
		if n != 1 {
			t.Errorf("point %v inside %d bricks", p, n)
		}
	}
}

func TestGenerateProximityRefinement(t *testing.T) {
	cfg := Config{Domain: testDomain(), H0: 0.5, BrickCells: 4, MaxLevel: 2}
	near := geom.Box{Min: geom.Vec3{X: -0.5, Y: -0.5, Z: -0.5}, Max: geom.Vec3{X: 0.5, Y: 0.5, Z: 0.5}}
	sys := Generate(cfg, ProximityIndicator(near, 2))
	counts := sys.LevelCounts()
	if len(counts) != 3 {
		t.Fatalf("levels = %v, want 3 levels", counts)
	}
	for l, c := range counts {
		if c == 0 {
			t.Errorf("level %d has no bricks: %v", l, counts)
		}
	}
	// The finest brick containing the body center is level 2.
	bi := sys.Locate(geom.Vec3{})
	if bi < 0 || sys.Bricks[bi].Level != 2 {
		t.Errorf("center brick level = %d", sys.Bricks[bi].Level)
	}
	// Far corner stays coarse.
	bi = sys.Locate(geom.Vec3{X: 3.9, Y: 3.9, Z: 3.9})
	if bi < 0 || sys.Bricks[bi].Level != 0 {
		t.Errorf("corner brick level = %d", sys.Bricks[bi].Level)
	}
	// Spacing halves per level.
	for _, b := range sys.Bricks {
		want := cfg.H0 / math.Pow(2, float64(b.Level))
		if math.Abs(b.H-want) > 1e-12 {
			t.Fatalf("brick level %d spacing %v, want %v", b.Level, b.H, want)
		}
	}
}

func TestAdaptRefinesAndCoarsens(t *testing.T) {
	cfg := Config{Domain: testDomain(), H0: 0.5, BrickCells: 4, MaxLevel: 2}
	near1 := geom.Box{Min: geom.Vec3{X: -0.5, Y: -0.5, Z: -0.5}, Max: geom.Vec3{X: 0.5, Y: 0.5, Z: 0.5}}
	sys := Generate(cfg, ProximityIndicator(near1, 2))
	// The body moves: refinement follows, old region coarsens.
	near2 := geom.Box{Min: geom.Vec3{X: 2, Y: 2, Z: 2}, Max: geom.Vec3{X: 3, Y: 3, Z: 3}}
	sys2 := sys.Adapt(ProximityIndicator(near2, 2))
	// Finest region moved.
	if bi := sys2.Locate(geom.Vec3{X: 2.5, Y: 2.5, Z: 2.5}); sys2.Bricks[bi].Level != 2 {
		t.Error("refinement did not follow the body")
	}
	if bi := sys2.Locate(geom.Vec3{X: -3, Y: -3, Z: -3}); sys2.Bricks[bi].Level != 0 {
		t.Error("far field should have coarsened")
	}
}

func TestBrickPoints(t *testing.T) {
	b := Brick{Box: geom.Box{Max: geom.Vec3{X: 2, Y: 2, Z: 2}}, H: 0.5}
	// 4 cells per side -> 7^3 points with fringe.
	if got := b.Points(); got != 343 {
		t.Errorf("Points = %d, want 343", got)
	}
}

func TestRunnerGroupingLocality(t *testing.T) {
	cfg := Config{Domain: testDomain(), H0: 1, BrickCells: 4, MaxLevel: 1}
	near := geom.Box{Min: geom.Vec3{X: -1, Y: -1, Z: -1}, Max: geom.Vec3{X: 1, Y: 1, Z: 1}}
	sys := Generate(cfg, ProximityIndicator(near, 1))
	fs := flow.Freestream{Mach: 0.5}
	grouped, err := NewRunner(sys, 4, fs, true)
	if err != nil {
		t.Fatal(err)
	}
	rr, err := NewRunner(sys, 4, fs, false)
	if err != nil {
		t.Fatal(err)
	}
	if grouped.CutEdges >= rr.CutEdges {
		t.Errorf("grouping cut %d edges, round-robin %d: locality lost",
			grouped.CutEdges, rr.CutEdges)
	}
	// Every brick assigned exactly once.
	seen := map[int]bool{}
	for _, g := range grouped.Groups {
		for _, b := range g {
			if seen[b] {
				t.Fatalf("brick %d in two groups", b)
			}
			seen[b] = true
		}
	}
	if len(seen) != len(sys.Bricks) {
		t.Fatalf("assigned %d of %d bricks", len(seen), len(sys.Bricks))
	}
}

func TestRunnerFreestreamPreserved(t *testing.T) {
	cfg := Config{Domain: testDomain(), H0: 1, BrickCells: 4, MaxLevel: 1}
	near := geom.Box{Min: geom.Vec3{X: -1, Y: -1, Z: -1}, Max: geom.Vec3{X: 1, Y: 1, Z: 1}}
	sys := Generate(cfg, ProximityIndicator(near, 1))
	fs := flow.Freestream{Mach: 0.5}
	ru, err := NewRunner(sys, 3, fs, true)
	if err != nil {
		t.Fatal(err)
	}
	stats, err := ru.Run(machine.SP2(), 2, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("stats len %d", len(stats))
	}
	for i, s := range stats {
		if s.Time <= 0 {
			t.Errorf("step %d time %v", i, s.Time)
		}
	}
	// Uniform freestream stays uniform through inter-brick coupling.
	qf := fs.Conserved()
	worst := 0.0
	for _, blk := range ru.blocks {
		g := blk.G
		for k := 1; k < g.NK-1; k++ {
			for j := 1; j < g.NJ-1; j++ {
				for i := 1; i < g.NI-1; i++ {
					q, _ := blk.QAtGlobal(i, j, k)
					for c := 0; c < 5; c++ {
						if d := math.Abs(q[c] - qf[c]); d > worst {
							worst = d
						}
					}
				}
			}
		}
	}
	if worst > 1e-10 {
		t.Errorf("freestream drift %v across adaptive bricks", worst)
	}
}

func TestRunnerGroupingBeatsRoundRobinTraffic(t *testing.T) {
	cfg := Config{Domain: testDomain(), H0: 1, BrickCells: 4, MaxLevel: 1}
	near := geom.Box{Min: geom.Vec3{X: -1, Y: -1, Z: -1}, Max: geom.Vec3{X: 1, Y: 1, Z: 1}}
	sys := Generate(cfg, ProximityIndicator(near, 1))
	fs := flow.Freestream{Mach: 0.5}
	run := func(grouping bool) int {
		ru, err := NewRunner(sys, 4, fs, grouping)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := ru.Run(machine.SP2(), 1, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		return stats[0].BytesCross
	}
	grouped := run(true)
	rr := run(false)
	if grouped >= rr {
		t.Errorf("grouping cross-traffic %d should beat round-robin %d", grouped, rr)
	}
}

func TestRegridTransfersSolution(t *testing.T) {
	cfg := Config{Domain: testDomain(), H0: 1, BrickCells: 4, MaxLevel: 1}
	near := geom.Box{Min: geom.Vec3{X: -1, Y: -1, Z: -1}, Max: geom.Vec3{X: 1, Y: 1, Z: 1}}
	sys := Generate(cfg, ProximityIndicator(near, 1))
	fs := flow.Freestream{Mach: 0.5}
	ru, err := NewRunner(sys, 2, fs, true)
	if err != nil {
		t.Fatal(err)
	}
	// Tag the solution with a recognizable non-freestream density bump.
	for _, blk := range ru.blocks {
		for n := 0; n < blk.NPointsLocal(); n++ {
			q := blk.QAt(n)
			q[0] = 2.0
			blk.SetQ(n, q)
		}
	}
	near2 := geom.Box{Min: geom.Vec3{X: 0, Y: 0, Z: 0}, Max: geom.Vec3{X: 2, Y: 2, Z: 2}}
	sys2 := sys.Adapt(ProximityIndicator(near2, 1))
	nr, err := ru.Regrid(sys2, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	// Transferred density survives.
	bi := nr.Sys.Locate(geom.Vec3{X: 1, Y: 1, Z: 1})
	blk := nr.blocks[bi]
	q := blk.QAt(blk.LIdx(2, 2, 2))
	if math.Abs(q[0]-2.0) > 1e-9 {
		t.Errorf("regridded density %v, want 2.0", q[0])
	}
}

func TestErrorIndicatorRaisesLevel(t *testing.T) {
	cfg := Config{Domain: testDomain(), H0: 1, BrickCells: 4, MaxLevel: 2}
	near := geom.Box{Min: geom.Vec3{X: -1, Y: -1, Z: -1}, Max: geom.Vec3{X: 1, Y: 1, Z: 1}}
	base := ProximityIndicator(near, 1)
	sys := Generate(cfg, base)
	ru, err := NewRunner(sys, 2, flow.Freestream{Mach: 0.5}, true)
	if err != nil {
		t.Fatal(err)
	}
	// Impose a sharp density gradient in one brick.
	target := sys.Locate(geom.Vec3{X: 3, Y: 3, Z: 3})
	blk := ru.blocks[target]
	for n := 0; n < blk.NPointsLocal(); n++ {
		q := blk.QAt(n)
		q[0] = 1 + 5*blk.XL[n]
		blk.SetQ(n, q)
	}
	ind := ru.ErrorIndicator(base, 1.0)
	p := geom.Vec3{X: 3, Y: 3, Z: 3}
	if ind(p) <= base(p) {
		t.Error("error indicator should request refinement where gradients are strong")
	}
	// Quiet regions keep the base level.
	quiet := geom.Vec3{X: -3, Y: -3, Z: -3}
	if ind(quiet) != base(quiet) {
		t.Error("quiet region should keep base level")
	}
}

func TestSystemString(t *testing.T) {
	cfg := Config{Domain: testDomain(), H0: 1, BrickCells: 4, MaxLevel: 0}
	sys := Generate(cfg, func(geom.Vec3) int { return 0 })
	if sys.String() == "" {
		t.Error("empty String()")
	}
}

func TestImposeDisturbance(t *testing.T) {
	cfg := Config{Domain: testDomain(), H0: 1, BrickCells: 4, MaxLevel: 1}
	base := func(geom.Vec3) int { return 0 }
	sys := Generate(cfg, base)
	fs := flow.Freestream{Mach: 0.5}
	ru, err := NewRunner(sys, 2, fs, true)
	if err != nil {
		t.Fatal(err)
	}
	// Asymmetric wake-like region (off lattice centers, as in Fig. 12).
	region := geom.Box{Min: geom.Vec3{X: 0.3, Y: -0.9, Z: -0.9}, Max: geom.Vec3{X: 3.1, Y: 1.1, Z: 0.9}}
	ru.ImposeDisturbance(region, 0.5)
	// Points outside the region (with margin) stay at freestream density.
	for _, blk := range ru.blocks {
		for n := 0; n < blk.NPointsLocal(); n++ {
			p := geom.Vec3{X: blk.XL[n], Y: blk.YL[n], Z: blk.ZL[n]}
			if region.Inflate(1e-9).Contains(p) {
				continue
			}
			if d := blk.QAt(n)[0] - 1; d > 1e-12 {
				t.Fatalf("disturbance leaked to %v: %v", p, d)
			}
		}
	}
	// The error indicator asks for refinement somewhere in the region.
	ind := ru.ErrorIndicator(base, 0.02)
	raised := false
	for _, p := range []geom.Vec3{
		{X: 0.7, Y: 0.1, Z: 0.1}, {X: 1.3, Y: -0.3, Z: 0.3},
		{X: 2.1, Y: 0.5, Z: -0.5}, {X: 2.9, Y: 0.1, Z: 0.1},
	} {
		if ind(p) > base(p) {
			raised = true
		}
	}
	if !raised {
		t.Error("error indicator should request refinement inside the disturbance")
	}
	// Quiet regions keep the base level.
	if q := (geom.Vec3{X: -3, Y: -3, Z: -3}); ind(q) != base(q) {
		t.Error("quiet region level changed")
	}
}
