// Package adapt implements the solution-adaption scheme of the paper's §5:
// the off-body portion of the domain is automatically partitioned into a
// system of uniformly spaced Cartesian grids ("bricks") at nested
// refinement levels. Each brick is fully described by seven parameters
// (bounding box plus spacing); initial refinement follows proximity to the
// near-body curvilinear grids, and the system is re-partitioned during the
// run in response to body motion and solution-error estimates. Connectivity
// among Cartesian components needs no donor searches, and the large number
// of small grids exposes the coarse-grain parallelism exploited by the
// grouping strategy (Algorithm 3, package balance).
package adapt

import (
	"fmt"
	"math"

	"overd/internal/geom"
)

// Brick is one off-body Cartesian component: an axis-aligned box with
// uniform spacing — the "seven parameters per grid" of §5.
type Brick struct {
	// Box is the world-frame extent.
	Box geom.Box
	// H is the grid spacing (equal in all directions).
	H float64
	// Level is the refinement level (0 coarsest; level L has spacing
	// H0/2^L).
	Level int
	// Index locates the brick in its level's lattice.
	Index [3]int
}

// Points returns the number of grid points the brick carries (cells + 1 in
// each direction, plus one fringe layer on every side for intergrid
// coupling).
func (b Brick) Points() int {
	n := b.cellsPerSide() + 3 // +1 point, +2 fringe layers
	return n * n * n
}

func (b Brick) cellsPerSide() int {
	s := b.Box.Size()
	return int(math.Round(s.X / b.H))
}

// Contains reports whether the world point lies in the brick.
func (b Brick) Contains(p geom.Vec3) bool { return b.Box.Contains(p) }

// Config controls off-body system generation.
type Config struct {
	// Domain is the full off-body extent to cover.
	Domain geom.Box
	// H0 is the level-0 (coarsest) spacing.
	H0 float64
	// BrickCells is the number of cells per brick side at every level
	// (bricks at level L+1 are half the size of level-L bricks).
	BrickCells int
	// MaxLevel bounds refinement.
	MaxLevel int
}

func (c Config) withDefaults() Config {
	if c.BrickCells <= 0 {
		c.BrickCells = 8
	}
	if c.MaxLevel < 0 {
		c.MaxLevel = 0
	}
	if c.H0 <= 0 {
		c.H0 = 1
	}
	return c
}

// brickSide returns the world-space side length of a brick at the level.
func (c Config) brickSide(level int) float64 {
	return float64(c.BrickCells) * c.H0 / math.Pow(2, float64(level))
}

// System is a generated off-body Cartesian grid system.
type System struct {
	Cfg    Config
	Bricks []Brick
}

// Generate builds the off-body system: the domain is tiled with level-0
// bricks, and every brick whose refinement indicator demands a deeper level
// is recursively replaced by its eight children. The indicator returns the
// desired level at a world position — proximity to near-body grids
// initially, solution-error estimates during adaption (§5: "the level of
// refinement is based on proximity to the near-body curvilinear grids",
// then "automatically repartitioned during adaption in response to body
// motion and estimates of solution error").
func Generate(cfg Config, want func(p geom.Vec3) int) *System {
	cfg = cfg.withDefaults()
	s := &System{Cfg: cfg}
	side := cfg.brickSide(0)
	size := cfg.Domain.Size()
	nx := int(math.Ceil(size.X / side))
	ny := int(math.Ceil(size.Y / side))
	nz := int(math.Ceil(size.Z / side))
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	if nz < 1 {
		nz = 1
	}
	for k := 0; k < nz; k++ {
		for j := 0; j < ny; j++ {
			for i := 0; i < nx; i++ {
				min := geom.Vec3{
					X: cfg.Domain.Min.X + float64(i)*side,
					Y: cfg.Domain.Min.Y + float64(j)*side,
					Z: cfg.Domain.Min.Z + float64(k)*side,
				}
				b := Brick{
					Box:   geom.Box{Min: min, Max: min.Add(geom.Vec3{X: side, Y: side, Z: side})},
					H:     cfg.H0,
					Level: 0,
					Index: [3]int{i, j, k},
				}
				s.refineInto(b, want)
			}
		}
	}
	return s
}

// refineInto appends b or, if the indicator wants a finer level anywhere in
// it, its eight children recursively.
func (s *System) refineInto(b Brick, want func(p geom.Vec3) int) {
	if b.Level < s.Cfg.MaxLevel && s.needsRefinement(b, want) {
		half := b.Box.Size().Scale(0.5)
		for c := 0; c < 8; c++ {
			min := b.Box.Min
			idx := [3]int{b.Index[0] * 2, b.Index[1] * 2, b.Index[2] * 2}
			if c&1 != 0 {
				min.X += half.X
				idx[0]++
			}
			if c&2 != 0 {
				min.Y += half.Y
				idx[1]++
			}
			if c&4 != 0 {
				min.Z += half.Z
				idx[2]++
			}
			child := Brick{
				Box:   geom.Box{Min: min, Max: min.Add(half)},
				H:     b.H / 2,
				Level: b.Level + 1,
				Index: idx,
			}
			s.refineInto(child, want)
		}
		return
	}
	s.Bricks = append(s.Bricks, b)
}

// needsRefinement samples the indicator over the brick.
func (s *System) needsRefinement(b Brick, want func(p geom.Vec3) int) bool {
	const n = 2
	for k := 0; k <= n; k++ {
		for j := 0; j <= n; j++ {
			for i := 0; i <= n; i++ {
				p := geom.Vec3{
					X: b.Box.Min.X + b.Box.Size().X*float64(i)/n,
					Y: b.Box.Min.Y + b.Box.Size().Y*float64(j)/n,
					Z: b.Box.Min.Z + b.Box.Size().Z*float64(k)/n,
				}
				if want(p) > b.Level {
					return true
				}
			}
		}
	}
	return false
}

// ProximityIndicator returns an indicator assigning the finest level inside
// `near` (inflated near-body bounds) and decaying one level per doubling of
// distance — the §5 initial refinement rule.
func ProximityIndicator(near geom.Box, maxLevel int) func(geom.Vec3) int {
	scale := near.Size().Norm() / 2
	if scale <= 0 {
		scale = 1
	}
	return func(p geom.Vec3) int {
		if near.Contains(p) {
			return maxLevel
		}
		d := distToBox(near, p)
		lvl := maxLevel - int(math.Floor(math.Log2(1+d/scale)*2))
		if lvl < 0 {
			return 0
		}
		return lvl
	}
}

func distToBox(b geom.Box, p geom.Vec3) float64 {
	dx := math.Max(math.Max(b.Min.X-p.X, 0), p.X-b.Max.X)
	dy := math.Max(math.Max(b.Min.Y-p.Y, 0), p.Y-b.Max.Y)
	dz := math.Max(math.Max(b.Min.Z-p.Z, 0), p.Z-b.Max.Z)
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// LevelCounts returns the number of bricks at each level.
func (s *System) LevelCounts() []int {
	maxL := 0
	for _, b := range s.Bricks {
		if b.Level > maxL {
			maxL = b.Level
		}
	}
	out := make([]int, maxL+1)
	for _, b := range s.Bricks {
		out[b.Level]++
	}
	return out
}

// TotalPoints returns the composite gridpoint count of the system.
func (s *System) TotalPoints() int {
	t := 0
	for _, b := range s.Bricks {
		t += b.Points()
	}
	return t
}

// Locate returns the index of the finest brick containing p, or -1. The
// lookup is search-free: "the connectivity solution with Cartesian grids
// can be determined very quickly because costly donor searches are
// avoided."
func (s *System) Locate(p geom.Vec3) int {
	best := -1
	for i, b := range s.Bricks {
		if b.Contains(p) && (best < 0 || b.Level > s.Bricks[best].Level) {
			best = i
		}
	}
	return best
}

// Connected reports whether bricks a and b overlap or touch (the
// connectivity array of Algorithm 3).
func (s *System) Connected(a, b int) bool {
	if a == b {
		return false
	}
	eps := math.Min(s.Bricks[a].H, s.Bricks[b].H) * 0.5
	return s.Bricks[a].Box.Inflate(eps).Overlaps(s.Bricks[b].Box)
}

// Sizes returns per-brick gridpoint counts (the grouping loads).
func (s *System) Sizes() []int {
	out := make([]int, len(s.Bricks))
	for i, b := range s.Bricks {
		out[i] = b.Points()
	}
	return out
}

// Adapt regenerates the system for a new indicator (body moved, error
// estimate changed): both refinement and coarsening fall out of the
// regeneration ("facilitating both refinement and coarsening").
func (s *System) Adapt(want func(p geom.Vec3) int) *System {
	return Generate(s.Cfg, want)
}

// String summarizes the system.
func (s *System) String() string {
	return fmt.Sprintf("adapt.System{%d bricks, %d points, levels %v}",
		len(s.Bricks), s.TotalPoints(), s.LevelCounts())
}
