package adapt

import (
	"fmt"
	"math"
	"sort"

	"overd/internal/balance"
	"overd/internal/flow"
	"overd/internal/geom"
	"overd/internal/gridgen"
	"overd/internal/machine"
	"overd/internal/par"
)

// Runner executes a real flow solution over an off-body Cartesian system
// with the entirely coarse-grained strategy of §5: bricks are gathered into
// groups by Algorithm 3, each group is assigned to one node, intergrid data
// inside a group moves by memory copy, and only group-boundary overlaps
// cross the network.
type Runner struct {
	Sys *System
	FS  flow.Freestream
	// Groups maps each node to its brick indices (Algorithm 3 output).
	Groups [][]int
	// GroupOf maps brick index to owning node.
	GroupOf []int

	// blocks holds one solver block per brick.
	blocks []*flow.Block
	// fringe exchange plan: per brick, its fringe points with donors.
	recv [][]fringePt

	// CutEdges counts brick connectivity pairs crossing groups.
	CutEdges int
}

type fringePt struct {
	i, j, k  int // receiver point in its brick grid
	donor    int // donor brick
	ci, cj   int // donor cell
	ck       int
	a, b, c  float64   // interpolation coordinates
	donorPos geom.Vec3 // receiver position (diagnostics)
}

// NewRunner groups the system's bricks over `nodes` nodes (Algorithm 3 by
// default; round-robin when grouping is false, the locality-blind baseline
// for the ablation study), builds per-brick solver state, and precomputes
// the search-free intergrid connectivity.
func NewRunner(sys *System, nodes int, fs flow.Freestream, grouping bool) (*Runner, error) {
	if nodes < 1 {
		return nil, fmt.Errorf("adapt: need at least one node")
	}
	ru := &Runner{Sys: sys, FS: fs}
	name := "group"
	if !grouping {
		name = "roundrobin"
	}
	gr, err := balance.NewGrouper(name)
	if err != nil {
		return nil, err
	}
	ru.Groups = gr.Group(sys.Sizes(), sys.Connected, nodes)
	ru.GroupOf = make([]int, len(sys.Bricks))
	for g, members := range ru.Groups {
		for _, b := range members {
			ru.GroupOf[b] = g
		}
	}
	ru.CutEdges = balance.CutEdges(ru.Groups, len(sys.Bricks), sys.Connected)

	// Build one block per brick. Each brick grid includes one fringe layer
	// outside the owned box on every side; all faces are overset.
	ru.blocks = make([]*flow.Block, len(sys.Bricks))
	for i, b := range sys.Bricks {
		n := b.cellsPerSide() + 3
		gb := b.Box.Inflate(b.H) // one-cell fringe margin
		g := gridgen.CartesianBox(i, fmt.Sprintf("brick-%d-L%d", i, b.Level), n, n, n, gb)
		ru.blocks[i] = flow.NewBlock(g, g.Full(), fs)
	}

	ru.buildConnectivity()
	return ru, nil
}

// buildConnectivity fills the fringe receive plans: every boundary-layer
// point of a brick interpolates from the finest other brick containing it.
// No stencil walking is needed; donors resolve by integer arithmetic.
func (ru *Runner) buildConnectivity() {
	sys := ru.Sys
	ru.recv = make([][]fringePt, len(sys.Bricks))
	for bi := range sys.Bricks {
		blk := ru.blocks[bi]
		g := blk.G
		n := g.NI
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				for i := 0; i < n; i++ {
					// Fringe = outermost layer of the (inflated) brick grid.
					if i != 0 && i != n-1 && j != 0 && j != n-1 && k != 0 && k != n-1 {
						continue
					}
					p := g.At(i, j, k)
					di := ru.locateDonor(bi, p)
					if di < 0 {
						continue // domain boundary: farfield handled by BCs
					}
					d := sys.Bricks[di]
					dg := ru.blocks[di].G
					o := dg.At(0, 0, 0)
					fx := (p.X - o.X) / d.H
					fy := (p.Y - o.Y) / d.H
					fz := (p.Z - o.Z) / d.H
					ci, a := splitCellF(fx, dg.NI)
					cj, bb := splitCellF(fy, dg.NJ)
					ck, c := splitCellF(fz, dg.NK)
					ru.recv[bi] = append(ru.recv[bi], fringePt{
						i: i, j: j, k: k, donor: di,
						ci: ci, cj: cj, ck: ck, a: a, b: bb, c: c,
						donorPos: p,
					})
				}
			}
		}
	}
}

func splitCellF(f float64, n int) (int, float64) {
	i := int(math.Floor(f))
	if i < 0 {
		i = 0
	}
	if i > n-2 {
		i = n - 2
	}
	return i, f - float64(i)
}

// locateDonor finds the finest brick other than self whose interior (not
// fringe margin) contains p.
func (ru *Runner) locateDonor(self int, p geom.Vec3) int {
	best := -1
	for i, b := range ru.Sys.Bricks {
		if i == self || !b.Contains(p) {
			continue
		}
		if best < 0 || b.Level > ru.Sys.Bricks[best].Level {
			best = i
		}
	}
	return best
}

// StepStats reports one adaptive step's coarse-grain behavior.
type StepStats struct {
	// Time is the virtual step duration (max over nodes).
	Time float64
	// BytesCross is the intergrid traffic that crossed group boundaries.
	BytesCross int
	// BytesLocal is the intergrid traffic satisfied inside groups.
	BytesLocal int
}

// Run advances the system `steps` timesteps on the simulated machine,
// returning per-step stats. Intra-group fringe updates are memory copies;
// cross-group updates are messages.
func (ru *Runner) Run(m machine.Model, steps int, dt float64) ([]StepStats, error) {
	nodes := len(ru.Groups)
	world := par.NewWorld(nodes, m)
	stats := make([]StepStats, steps)

	type fringeVal struct {
		Vals    []float64
		Indices []int
	}

	world.Run(func(r *par.Rank) {
		r.SetPhase(par.PhaseFlow)
		myBricks := ru.Groups[r.ID]
		ws := 0.0
		for _, bi := range myBricks {
			ws += ru.blocks[bi].WorkingSetBytes()
		}
		r.SetWorkingSet(ws)

		for step := 0; step < steps; step++ {
			cross, local := 0, 0
			// 1. Serve the fringe interpolation for every receiver whose
			//    donor brick I own, grouped by receiving node.
			perDst := map[int][]float64{}
			perDstIdx := map[int][]int{}
			interp := 0
			for rb := range ru.recv {
				for fi, fp := range ru.recv[rb] {
					if ru.GroupOf[fp.donor] != r.ID {
						continue
					}
					q, ok := ru.blocks[fp.donor].InterpolateCell(fp.ci, fp.cj, fp.ck, fp.a, fp.b, fp.c)
					if !ok {
						continue
					}
					interp++
					dst := ru.GroupOf[rb]
					perDst[dst] = append(perDst[dst], q[:]...)
					perDstIdx[dst] = append(perDstIdx[dst], rb, fi)
				}
			}
			r.Compute(float64(interp) * 40)
			var dsts []int
			for d := range perDst {
				dsts = append(dsts, d)
			}
			sort.Ints(dsts)
			for _, dst := range dsts {
				bytes := len(perDst[dst]) * 8
				if dst == r.ID {
					local += bytes
					ru.applyFringe(perDstIdx[dst], perDst[dst])
					continue
				}
				cross += bytes
				r.Send(dst, par.TagUser+2, fringeVal{Vals: perDst[dst], Indices: perDstIdx[dst]}, bytes)
			}
			// Receive from every group that owns donors of my bricks.
			expect := map[int]bool{}
			for _, bi := range myBricks {
				for _, fp := range ru.recv[bi] {
					if g := ru.GroupOf[fp.donor]; g != r.ID {
						expect[g] = true
					}
				}
			}
			var froms []int
			for f := range expect {
				froms = append(froms, f)
			}
			sort.Ints(froms)
			for _, from := range froms {
				msg := r.Recv(from, par.TagUser+2)
				fv := msg.Data.(fringeVal)
				ru.applyFringe(fv.Indices, fv.Vals)
			}
			r.Barrier()

			// 2. Advance every brick I own (latency hiding is possible by
			//    starting interior bricks first; the coarse model charges
			//    pure compute here).
			for _, bi := range myBricks {
				ru.blocks[bi].FlowStep(r, dt)
			}
			r.Barrier()
			if r.ID == 0 {
				stats[step] = StepStats{
					Time:       r.Clock,
					BytesCross: cross,
					BytesLocal: local,
				}
			}
			r.Barrier()
		}
	})

	// Convert cumulative clocks into per-step durations.
	prev := 0.0
	for i := range stats {
		d := stats[i].Time - prev
		prev = stats[i].Time
		stats[i].Time = d
	}
	return stats, nil
}

// applyFringe writes interpolated values into receiver bricks.
// indices holds (brick, fringe index) pairs; vals holds 5 floats each.
func (ru *Runner) applyFringe(indices []int, vals []float64) {
	for n := 0; n*2 < len(indices); n++ {
		rb, fi := indices[2*n], indices[2*n+1]
		fp := ru.recv[rb][fi]
		blk := ru.blocks[rb]
		var q [5]float64
		copy(q[:], vals[5*n:5*n+5])
		blk.SetQ(blk.LIdx(fp.i, fp.j, fp.k), q)
	}
}

// ImposeDisturbance adds a density perturbation of the given amplitude
// inside a world-frame region, tapering to zero at its edges — a stand-in
// for the near-body solution footprint when the runner is used without
// curvilinear near-body grids.
func (ru *Runner) ImposeDisturbance(region geom.Box, amplitude float64) {
	c := region.Center()
	half := region.Size().Scale(0.5)
	for _, blk := range ru.blocks {
		for n := 0; n < blk.NPointsLocal(); n++ {
			p := geom.Vec3{X: blk.XL[n], Y: blk.YL[n], Z: blk.ZL[n]}
			if !region.Contains(p) {
				continue
			}
			fx := 1 - math.Abs(p.X-c.X)/half.X
			fy := 1 - math.Abs(p.Y-c.Y)/half.Y
			fz := 1 - math.Abs(p.Z-c.Z)/half.Z
			q := blk.QAt(n)
			q[0] += amplitude * fx * fy * fz
			blk.SetQ(n, q)
		}
	}
}

// ErrorIndicator builds an adaption indicator from the current solution:
// the desired level rises where the density gradient is strong. base is
// the proximity indicator that sets the floor.
func (ru *Runner) ErrorIndicator(base func(geom.Vec3) int, threshold float64) func(geom.Vec3) int {
	return func(p geom.Vec3) int {
		lvl := base(p)
		bi := ru.Sys.Locate(p)
		if bi < 0 {
			return lvl
		}
		if ru.gradientAt(bi, p) > threshold && lvl < ru.Sys.Cfg.MaxLevel {
			lvl++
		}
		return lvl
	}
}

// gradientAt estimates |∇ρ| near p in brick bi.
func (ru *Runner) gradientAt(bi int, p geom.Vec3) float64 {
	blk := ru.blocks[bi]
	g := blk.G
	b := ru.Sys.Bricks[bi]
	o := g.At(0, 0, 0)
	i := clampI(int((p.X-o.X)/b.H), 1, g.NI-2)
	j := clampI(int((p.Y-o.Y)/b.H), 1, g.NJ-2)
	k := clampI(int((p.Z-o.Z)/b.H), 1, g.NK-2)
	at := func(i, j, k int) float64 {
		q, _ := blk.QAtGlobal(i, j, k)
		return q[0]
	}
	gx := (at(i+1, j, k) - at(i-1, j, k)) / (2 * b.H)
	gy := (at(i, j+1, k) - at(i, j-1, k)) / (2 * b.H)
	gz := (at(i, j, k+1) - at(i, j, k-1)) / (2 * b.H)
	return math.Sqrt(gx*gx + gy*gy + gz*gz)
}

// Regrid transfers the solution onto a newly adapted system: every new
// brick point interpolates from the old system (§5's "interpolation of
// information on the coarse systems to the refined grids as well as
// re-distribution of data after the adapt cycle").
func (ru *Runner) Regrid(newSys *System, nodes int, grouping bool) (*Runner, error) {
	nr, err := NewRunner(newSys, nodes, ru.FS, grouping)
	if err != nil {
		return nil, err
	}
	for bi := range nr.Sys.Bricks {
		blk := nr.blocks[bi]
		g := blk.G
		for k := 0; k < g.NK; k++ {
			for j := 0; j < g.NJ; j++ {
				for i := 0; i < g.NI; i++ {
					p := g.At(i, j, k)
					oi := ru.Sys.Locate(p)
					if oi < 0 {
						continue // keep freestream
					}
					ob := ru.Sys.Bricks[oi]
					og := ru.blocks[oi].G
					oo := og.At(0, 0, 0)
					ci, a := splitCellF((p.X-oo.X)/ob.H, og.NI)
					cj, b := splitCellF((p.Y-oo.Y)/ob.H, og.NJ)
					ck, c := splitCellF((p.Z-oo.Z)/ob.H, og.NK)
					if q, ok := ru.blocks[oi].InterpolateCell(ci, cj, ck, a, b, c); ok {
						blk.SetQ(blk.LIdx(i, j, k), q)
					}
				}
			}
		}
	}
	return nr, nil
}

func clampI(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
