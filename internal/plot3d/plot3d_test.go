package plot3d

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"overd/internal/geom"
	"overd/internal/grid"
	"overd/internal/gridgen"
)

func testGrids() []*grid.Grid {
	a := gridgen.AirfoilOGrid(0, "airfoil", 16, 6, 2)
	a.IBlank[5] = grid.IBHole
	a.IBlank[6] = grid.IBFringe
	b := gridgen.CartesianBox(1, "bg", 4, 5, 3,
		geom.Box{Min: geom.Vec3{X: -1, Y: -1, Z: -1}, Max: geom.Vec3{X: 1, Y: 1, Z: 1}})
	return []*grid.Grid{a, b}
}

func roundTripXYZ(t *testing.T, f Format) {
	t.Helper()
	grids := testGrids()
	var buf bytes.Buffer
	if err := WriteXYZ(&buf, grids, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadXYZ(&buf, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(grids) {
		t.Fatalf("blocks: %d vs %d", len(got), len(grids))
	}
	for b, g := range grids {
		r := got[b]
		if r.NI != g.NI || r.NJ != g.NJ || r.NK != g.NK {
			t.Fatalf("block %d dims %dx%dx%d vs %dx%dx%d",
				b, r.NI, r.NJ, r.NK, g.NI, g.NJ, g.NK)
		}
		for i := range g.X {
			tol := 1e-8
			if f == Binary {
				tol = 0 // binary is exact
			}
			if math.Abs(r.X[i]-g.X[i]) > tol || math.Abs(r.Y[i]-g.Y[i]) > tol ||
				math.Abs(r.Z[i]-g.Z[i]) > tol {
				t.Fatalf("block %d point %d coordinates differ", b, i)
			}
			if r.IBlank[i] != g.IBlank[i] {
				t.Fatalf("block %d point %d iblank %d vs %d", b, i, r.IBlank[i], g.IBlank[i])
			}
		}
	}
}

func TestXYZRoundTripASCII(t *testing.T)  { roundTripXYZ(t, ASCII) }
func TestXYZRoundTripBinary(t *testing.T) { roundTripXYZ(t, Binary) }

func roundTripQ(t *testing.T, f Format) {
	t.Helper()
	qb := NewQBlock(4, 3, 2)
	qb.Mach, qb.Alpha, qb.Re, qb.Time = 0.8, 0.05, 1e6, 12.5
	for c := 0; c < 5; c++ {
		for i := range qb.Q[c] {
			qb.Q[c][i] = float64(c*100+i) / 7
		}
	}
	var buf bytes.Buffer
	if err := WriteQ(&buf, []*QBlock{qb}, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadQ(&buf, f)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("blocks %d", len(got))
	}
	r := got[0]
	if r.Mach != qb.Mach && math.Abs(r.Mach-qb.Mach) > 1e-8 {
		t.Errorf("Mach %v", r.Mach)
	}
	if math.Abs(r.Time-12.5) > 1e-8 {
		t.Errorf("Time %v", r.Time)
	}
	for c := 0; c < 5; c++ {
		for i := range qb.Q[c] {
			tol := 1e-8
			if f == Binary {
				tol = 0
			}
			if math.Abs(r.Q[c][i]-qb.Q[c][i]) > tol {
				t.Fatalf("Q[%d][%d] = %v, want %v", c, i, r.Q[c][i], qb.Q[c][i])
			}
		}
	}
}

func TestQRoundTripASCII(t *testing.T)  { roundTripQ(t, ASCII) }
func TestQRoundTripBinary(t *testing.T) { roundTripQ(t, Binary) }

func TestReadXYZRejectsGarbage(t *testing.T) {
	if _, err := ReadXYZ(strings.NewReader("not a grid"), ASCII); err == nil {
		t.Error("garbage ASCII should fail")
	}
	if _, err := ReadXYZ(bytes.NewReader([]byte{1, 2, 3}), Binary); err == nil {
		t.Error("garbage binary should fail")
	}
	// Implausible block count.
	if _, err := ReadXYZ(strings.NewReader("99999999\n"), ASCII); err == nil {
		t.Error("huge block count should fail")
	}
}

func TestBinaryRecordMarkMismatch(t *testing.T) {
	var buf bytes.Buffer
	grids := testGrids()[:1]
	if err := WriteXYZ(&buf, grids, Binary); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Corrupt the trailing record mark of the first record.
	b[7] ^= 0xFF
	if _, err := ReadXYZ(bytes.NewReader(b), Binary); err == nil {
		t.Error("corrupted record marks should fail")
	}
}

func TestUnknownFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteXYZ(&buf, testGrids(), Format(9)); err == nil {
		t.Error("unknown write format should fail")
	}
	if _, err := ReadXYZ(&buf, Format(9)); err == nil {
		t.Error("unknown read format should fail")
	}
	if err := WriteQ(&buf, nil, Format(9)); err == nil {
		t.Error("unknown Q write format should fail")
	}
	if _, err := ReadQ(&buf, Format(9)); err == nil {
		t.Error("unknown Q read format should fail")
	}
}
