// Package plot3d reads and writes PLOT3D-format multi-block grid (XYZ) and
// solution (Q) files, the interchange format of the paper's toolchain
// (OVERFLOW, DCF3D and the NASA postprocessors all speak PLOT3D). Both the
// whitespace-separated ASCII variant and the Fortran-unformatted binary
// variant (big-endian, record-length-delimited, as written on the IBM and
// Cray machines of the era) are supported, with multi-block headers and
// optional iblank.
package plot3d

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"overd/internal/grid"
)

// Format selects the file encoding.
type Format int

// Supported encodings.
const (
	// ASCII is whitespace-separated text.
	ASCII Format = iota
	// Binary is Fortran unformatted big-endian with 4-byte record marks.
	Binary
)

// WriteXYZ writes a multi-block PLOT3D grid file with iblank from the
// world-frame coordinates of the given grids.
func WriteXYZ(w io.Writer, grids []*grid.Grid, f Format) error {
	switch f {
	case ASCII:
		return writeXYZASCII(w, grids)
	case Binary:
		return writeXYZBinary(w, grids)
	}
	return fmt.Errorf("plot3d: unknown format %d", f)
}

func writeXYZASCII(w io.Writer, grids []*grid.Grid) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d\n", len(grids))
	for _, g := range grids {
		fmt.Fprintf(bw, "%d %d %d\n", g.NI, g.NJ, g.NK)
	}
	for _, g := range grids {
		for _, arr := range [][]float64{g.X, g.Y, g.Z} {
			for i, v := range arr {
				sep := " "
				if (i+1)%6 == 0 {
					sep = "\n"
				}
				fmt.Fprintf(bw, "%.9e%s", v, sep)
			}
			fmt.Fprintln(bw)
		}
		for i, v := range g.IBlank {
			sep := " "
			if (i+1)%20 == 0 {
				sep = "\n"
			}
			fmt.Fprintf(bw, "%d%s", v, sep)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// record writes one Fortran unformatted record.
func record(w io.Writer, payload func(io.Writer) error, size int) error {
	if err := binary.Write(w, binary.BigEndian, uint32(size)); err != nil {
		return err
	}
	if err := payload(w); err != nil {
		return err
	}
	return binary.Write(w, binary.BigEndian, uint32(size))
}

func writeXYZBinary(w io.Writer, grids []*grid.Grid) error {
	bw := bufio.NewWriter(w)
	if err := record(bw, func(w io.Writer) error {
		return binary.Write(w, binary.BigEndian, int32(len(grids)))
	}, 4); err != nil {
		return err
	}
	if err := record(bw, func(w io.Writer) error {
		for _, g := range grids {
			if err := binary.Write(w, binary.BigEndian,
				[3]int32{int32(g.NI), int32(g.NJ), int32(g.NK)}); err != nil {
				return err
			}
		}
		return nil
	}, 12*len(grids)); err != nil {
		return err
	}
	for _, g := range grids {
		n := g.NPoints()
		size := 3*8*n + 4*n
		if err := record(bw, func(w io.Writer) error {
			for _, arr := range [][]float64{g.X, g.Y, g.Z} {
				if err := binary.Write(w, binary.BigEndian, arr); err != nil {
					return err
				}
			}
			ib := make([]int32, n)
			for i, v := range g.IBlank {
				ib[i] = int32(v)
			}
			return binary.Write(w, binary.BigEndian, ib)
		}, size); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadXYZ reads a multi-block grid file previously written by WriteXYZ,
// returning fresh grids (body frame set to the stored world coordinates).
func ReadXYZ(r io.Reader, f Format) ([]*grid.Grid, error) {
	switch f {
	case ASCII:
		return readXYZASCII(r)
	case Binary:
		return readXYZBinary(r)
	}
	return nil, fmt.Errorf("plot3d: unknown format %d", f)
}

func readXYZASCII(r io.Reader) ([]*grid.Grid, error) {
	br := bufio.NewReader(r)
	var ng int
	if _, err := fmt.Fscan(br, &ng); err != nil {
		return nil, fmt.Errorf("plot3d: block count: %w", err)
	}
	if ng <= 0 || ng > 1<<20 {
		return nil, fmt.Errorf("plot3d: implausible block count %d", ng)
	}
	dims := make([][3]int, ng)
	for b := range dims {
		if _, err := fmt.Fscan(br, &dims[b][0], &dims[b][1], &dims[b][2]); err != nil {
			return nil, fmt.Errorf("plot3d: dims of block %d: %w", b, err)
		}
	}
	grids := make([]*grid.Grid, ng)
	for b := range grids {
		g := grid.New(b, fmt.Sprintf("block-%d", b), dims[b][0], dims[b][1], dims[b][2])
		for _, arr := range [][]float64{g.X, g.Y, g.Z} {
			for i := range arr {
				if _, err := fmt.Fscan(br, &arr[i]); err != nil {
					return nil, fmt.Errorf("plot3d: coordinates of block %d: %w", b, err)
				}
			}
		}
		copy(g.X0, g.X)
		copy(g.Y0, g.Y)
		copy(g.Z0, g.Z)
		for i := range g.IBlank {
			var v int
			if _, err := fmt.Fscan(br, &v); err != nil {
				return nil, fmt.Errorf("plot3d: iblank of block %d: %w", b, err)
			}
			g.IBlank[i] = int8(v)
		}
		grids[b] = g
	}
	return grids, nil
}

func readRecord(r io.Reader, payload func(io.Reader) error) error {
	var lead uint32
	if err := binary.Read(r, binary.BigEndian, &lead); err != nil {
		return err
	}
	if err := payload(io.LimitReader(r, int64(lead))); err != nil {
		return err
	}
	var trail uint32
	if err := binary.Read(r, binary.BigEndian, &trail); err != nil {
		return err
	}
	if trail != lead {
		return fmt.Errorf("plot3d: record marks disagree (%d vs %d)", lead, trail)
	}
	return nil
}

func readXYZBinary(r io.Reader) ([]*grid.Grid, error) {
	br := bufio.NewReader(r)
	var ng int32
	if err := readRecord(br, func(r io.Reader) error {
		return binary.Read(r, binary.BigEndian, &ng)
	}); err != nil {
		return nil, err
	}
	if ng <= 0 || ng > 1<<20 {
		return nil, fmt.Errorf("plot3d: implausible block count %d", ng)
	}
	dims := make([][3]int32, ng)
	if err := readRecord(br, func(r io.Reader) error {
		return binary.Read(r, binary.BigEndian, &dims)
	}); err != nil {
		return nil, err
	}
	grids := make([]*grid.Grid, ng)
	for b := range grids {
		g := grid.New(b, fmt.Sprintf("block-%d", b),
			int(dims[b][0]), int(dims[b][1]), int(dims[b][2]))
		if err := readRecord(br, func(r io.Reader) error {
			for _, arr := range [][]float64{g.X, g.Y, g.Z} {
				if err := binary.Read(r, binary.BigEndian, arr); err != nil {
					return err
				}
			}
			ib := make([]int32, g.NPoints())
			if err := binary.Read(r, binary.BigEndian, ib); err != nil {
				return err
			}
			for i, v := range ib {
				g.IBlank[i] = int8(v)
			}
			return nil
		}); err != nil {
			return nil, fmt.Errorf("plot3d: block %d: %w", b, err)
		}
		copy(g.X0, g.X)
		copy(g.Y0, g.Y)
		copy(g.Z0, g.Z)
		grids[b] = g
	}
	return grids, nil
}

// QBlock is one block of conserved-variable solution data: 5 components,
// point-major, matching the paired grid block's dimensions.
type QBlock struct {
	NI, NJ, NK int
	// Mach, Alpha, Re, Time are the PLOT3D Q-file header words.
	Mach, Alpha, Re, Time float64
	// Q holds [rho, rho·u, rho·v, rho·w, e] per point, component-major:
	// Q[c][idx].
	Q [5][]float64
}

// NewQBlock allocates a Q block of the given dimensions.
func NewQBlock(ni, nj, nk int) *QBlock {
	qb := &QBlock{NI: ni, NJ: nj, NK: nk}
	for c := range qb.Q {
		qb.Q[c] = make([]float64, ni*nj*nk)
	}
	return qb
}

// WriteQ writes a multi-block PLOT3D solution file.
func WriteQ(w io.Writer, blocks []*QBlock, f Format) error {
	switch f {
	case ASCII:
		return writeQASCII(w, blocks)
	case Binary:
		return writeQBinary(w, blocks)
	}
	return fmt.Errorf("plot3d: unknown format %d", f)
}

func writeQASCII(w io.Writer, blocks []*QBlock) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%d\n", len(blocks))
	for _, qb := range blocks {
		fmt.Fprintf(bw, "%d %d %d\n", qb.NI, qb.NJ, qb.NK)
	}
	for _, qb := range blocks {
		fmt.Fprintf(bw, "%.9e %.9e %.9e %.9e\n", qb.Mach, qb.Alpha, qb.Re, qb.Time)
		for c := 0; c < 5; c++ {
			for i, v := range qb.Q[c] {
				sep := " "
				if (i+1)%6 == 0 {
					sep = "\n"
				}
				fmt.Fprintf(bw, "%.9e%s", v, sep)
			}
			fmt.Fprintln(bw)
		}
	}
	return bw.Flush()
}

func writeQBinary(w io.Writer, blocks []*QBlock) error {
	bw := bufio.NewWriter(w)
	if err := record(bw, func(w io.Writer) error {
		return binary.Write(w, binary.BigEndian, int32(len(blocks)))
	}, 4); err != nil {
		return err
	}
	if err := record(bw, func(w io.Writer) error {
		for _, qb := range blocks {
			if err := binary.Write(w, binary.BigEndian,
				[3]int32{int32(qb.NI), int32(qb.NJ), int32(qb.NK)}); err != nil {
				return err
			}
		}
		return nil
	}, 12*len(blocks)); err != nil {
		return err
	}
	for _, qb := range blocks {
		if err := record(bw, func(w io.Writer) error {
			return binary.Write(w, binary.BigEndian,
				[4]float64{qb.Mach, qb.Alpha, qb.Re, qb.Time})
		}, 32); err != nil {
			return err
		}
		n := len(qb.Q[0])
		if err := record(bw, func(w io.Writer) error {
			for c := 0; c < 5; c++ {
				if err := binary.Write(w, binary.BigEndian, qb.Q[c]); err != nil {
					return err
				}
			}
			return nil
		}, 5*8*n); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadQ reads a multi-block PLOT3D solution file.
func ReadQ(r io.Reader, f Format) ([]*QBlock, error) {
	switch f {
	case ASCII:
		return readQASCII(r)
	case Binary:
		return readQBinary(r)
	}
	return nil, fmt.Errorf("plot3d: unknown format %d", f)
}

func readQASCII(r io.Reader) ([]*QBlock, error) {
	br := bufio.NewReader(r)
	var nb int
	if _, err := fmt.Fscan(br, &nb); err != nil {
		return nil, err
	}
	if nb <= 0 || nb > 1<<20 {
		return nil, fmt.Errorf("plot3d: implausible block count %d", nb)
	}
	dims := make([][3]int, nb)
	for b := range dims {
		if _, err := fmt.Fscan(br, &dims[b][0], &dims[b][1], &dims[b][2]); err != nil {
			return nil, err
		}
	}
	out := make([]*QBlock, nb)
	for b := range out {
		qb := NewQBlock(dims[b][0], dims[b][1], dims[b][2])
		if _, err := fmt.Fscan(br, &qb.Mach, &qb.Alpha, &qb.Re, &qb.Time); err != nil {
			return nil, err
		}
		for c := 0; c < 5; c++ {
			for i := range qb.Q[c] {
				if _, err := fmt.Fscan(br, &qb.Q[c][i]); err != nil {
					return nil, err
				}
			}
		}
		out[b] = qb
	}
	return out, nil
}

func readQBinary(r io.Reader) ([]*QBlock, error) {
	br := bufio.NewReader(r)
	var nb int32
	if err := readRecord(br, func(r io.Reader) error {
		return binary.Read(r, binary.BigEndian, &nb)
	}); err != nil {
		return nil, err
	}
	if nb <= 0 || nb > 1<<20 {
		return nil, fmt.Errorf("plot3d: implausible block count %d", nb)
	}
	dims := make([][3]int32, nb)
	if err := readRecord(br, func(r io.Reader) error {
		return binary.Read(r, binary.BigEndian, &dims)
	}); err != nil {
		return nil, err
	}
	out := make([]*QBlock, nb)
	for b := range out {
		qb := NewQBlock(int(dims[b][0]), int(dims[b][1]), int(dims[b][2]))
		if err := readRecord(br, func(r io.Reader) error {
			var hdr [4]float64
			if err := binary.Read(r, binary.BigEndian, &hdr); err != nil {
				return err
			}
			qb.Mach, qb.Alpha, qb.Re, qb.Time = hdr[0], hdr[1], hdr[2], hdr[3]
			return nil
		}); err != nil {
			return nil, err
		}
		if err := readRecord(br, func(r io.Reader) error {
			for c := 0; c < 5; c++ {
				if err := binary.Read(r, binary.BigEndian, qb.Q[c]); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			return nil, err
		}
		out[b] = qb
	}
	return out, nil
}
