package dcf

import (
	"reflect"
	"testing"
)

// TestSortedKeysGeneric pins the one generic sorted-keys helper that
// replaced the old per-type sortedKeys/sortedRepKeys pair. Any future
// map-driven send loop must iterate through it (or a dense rank-indexed
// bucket array): Go map iteration order is randomized and would otherwise
// leak nondeterminism into sends and trace event order.
func TestSortedKeysGeneric(t *testing.T) {
	reqs := map[int][]ptReq{7: nil, 0: nil, 3: nil}
	if got, want := sortedKeys(reqs), []int{0, 3, 7}; !reflect.DeepEqual(got, want) {
		t.Errorf("sortedKeys over reqs = %v, want %v", got, want)
	}
	reps := map[int][]ptRep{12: nil, 2: nil}
	if got, want := sortedKeys(reps), []int{2, 12}; !reflect.DeepEqual(got, want) {
		t.Errorf("sortedKeys over reps = %v, want %v", got, want)
	}
	if got := sortedKeys(map[int]bool{}); len(got) != 0 {
		t.Errorf("sortedKeys over empty map = %v, want empty", got)
	}
}

// TestDenseBucketOrderMatchesSortedKeys documents the equivalence the
// dense per-rank buckets rely on: iterating a rank-indexed slice in index
// order visits destinations exactly as sortedKeys over the equivalent map
// would.
func TestDenseBucketOrderMatchesSortedKeys(t *testing.T) {
	buckets := make([][]ptReq, 8)
	m := map[int][]ptReq{}
	for _, dst := range []int{5, 1, 6} {
		buckets[dst] = append(buckets[dst], ptReq{Origin: dst})
		m[dst] = append(m[dst], ptReq{Origin: dst})
	}
	var dense []int
	for dst, pts := range buckets {
		if len(pts) > 0 {
			dense = append(dense, dst)
		}
	}
	if !reflect.DeepEqual(dense, sortedKeys(m)) {
		t.Errorf("dense iteration order %v != sortedKeys order %v", dense, sortedKeys(m))
	}
}
