package dcf

import (
	"overd/internal/metrics"
	"overd/internal/par"
)

// solverMetrics caches this solver's metric handles so the per-solve and
// per-step publish paths skip the registry lookup after the first use. The
// counters are windowed: core's measurement window zeroes them at the first
// measured step, so preprocessing connectivity solves are excluded exactly
// like the paper's tables exclude preprocessing.
type solverMetrics struct {
	reg *metrics.Registry

	searches   metrics.Counter // {grid} donor searches issued (hinted + scratch)
	hinted     metrics.Counter // {grid} searches restarted from a hint
	hintMisses metrics.Counter // {grid} hinted searches that came back unresolved
	steps      metrics.Counter // {grid} stencil-walk steps (candidates scanned)
	received   metrics.Counter // {grid} non-local search requests serviced: I(p)
	forwards   metrics.Counter // {grid} requests forwarded across rank boundaries
	fringeVals metrics.Counter // {grid} interpolated fringe values shipped
	fringeMsgs metrics.Counter // {grid} fringe-value batches shipped

	orphans    metrics.Gauge // {grid} local IGBPs with no donor
	fringeSize metrics.Gauge // {grid} local fringe size after the solve
	lostSends  metrics.Gauge // {grid} cumulative lost request batches
	lostReps   metrics.Gauge // {grid} cumulative lost reply batches
	lostFringe metrics.Gauge // {grid} cumulative lost fringe batches
}

func (s *Solver) metrics(r *par.Rank) *solverMetrics {
	reg := r.MetricsRegistry()
	if reg == nil {
		return nil
	}
	if s.met != nil && s.met.reg == reg {
		return s.met
	}
	grid := []metrics.Label{{Name: "grid"}}
	wc := func(name, help string) metrics.Counter {
		return reg.Counter(name, metrics.Opts{Help: help, Windowed: true, Labels: grid})
	}
	gg := func(name, help string) metrics.Gauge {
		return reg.Gauge(name, metrics.Opts{Help: help, Labels: grid})
	}
	s.met = &solverMetrics{
		reg:        reg,
		searches:   wc("overd_dcf_donor_searches_total", "donor searches issued for owned IGBPs"),
		hinted:     wc("overd_dcf_hinted_searches_total", "donor searches restarted from an nth-level hint"),
		hintMisses: wc("overd_dcf_hint_misses_total", "hinted searches that came back unresolved"),
		steps:      wc("overd_dcf_search_steps_total", "stencil-walk steps performed serving searches"),
		received:   wc("overd_dcf_requests_serviced_total", "non-local IGBP search requests serviced (the paper's I(p))"),
		forwards:   wc("overd_dcf_forwards_total", "search requests forwarded across rank boundaries"),
		fringeVals: wc("overd_dcf_fringe_values_sent_total", "interpolated fringe values shipped to other ranks"),
		fringeMsgs: wc("overd_dcf_fringe_batches_sent_total", "fringe-value batches shipped to other ranks"),
		orphans:    gg("overd_dcf_orphans", "local IGBPs with no donor after the latest solve"),
		fringeSize: gg("overd_dcf_fringe_points", "local fringe (IGBP) count after the latest solve"),
		lostSends:  gg("overd_dcf_lost_request_batches", "search-request batches lost beyond the retry budget (cumulative)"),
		lostReps:   gg("overd_dcf_lost_reply_batches", "search-reply batches lost beyond the retry budget (cumulative)"),
		lostFringe: gg("overd_dcf_lost_fringe_batches", "fringe-value batches lost beyond the retry budget (cumulative)"),
	}
	return s.met
}

// publishSolveMetrics records one connectivity solve's work counters (reset
// per solve in Solve) and the resulting fringe/orphan state.
func (s *Solver) publishSolveMetrics(r *par.Rank) {
	m := s.metrics(r)
	if m == nil {
		return
	}
	id, grid := r.ID, s.Parts[s.Rank].Grid
	m.searches.Add1(id, grid, float64(s.Hinted+s.Scratch))
	m.hinted.Add1(id, grid, float64(s.Hinted))
	m.hintMisses.Add1(id, grid, float64(s.HintMisses))
	m.steps.Add1(id, grid, float64(s.SearchSteps))
	m.received.Add1(id, grid, float64(s.ReceivedIGBPs))
	m.forwards.Add1(id, grid, float64(s.Forwards))
	m.orphans.Set1(id, grid, float64(s.Orphans), r.Clock)
	m.fringeSize.Set1(id, grid, float64(len(s.igbps)), r.Clock)
	if s.LostSends+s.LostReplies > 0 {
		m.lostSends.Set1(id, grid, float64(s.LostSends), r.Clock)
		m.lostReps.Set1(id, grid, float64(s.LostReplies), r.Clock)
	}
}

// publishFringeMetrics records one intergrid boundary update's shipped
// volume (values interpolated and batches sent to other ranks).
func (s *Solver) publishFringeMetrics(r *par.Rank, values, batches int) {
	m := s.metrics(r)
	if m == nil {
		return
	}
	id, grid := r.ID, s.Parts[s.Rank].Grid
	m.fringeVals.Add1(id, grid, float64(values))
	m.fringeMsgs.Add1(id, grid, float64(batches))
	if s.LostFringe > 0 {
		m.lostFringe.Set1(id, grid, float64(s.LostFringe), r.Clock)
	}
}
