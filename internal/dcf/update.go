package dcf

import (
	"overd/internal/flow"
	"overd/internal/par"
)

// UpdateFringes performs the per-timestep intergrid boundary update: every
// rank interpolates the conserved state at the donor cells it owes other
// ranks (its send list from the last connectivity solve), ships the values,
// and applies what it receives to its own fringe points. Orphan points keep
// their previous data. Call after the halo exchange so donor-cell corners in
// ghost layers are current. Time is charged to the flow phase, where the
// paper accounts intergrid boundary-condition updates.
func (s *Solver) UpdateFringes(r *par.Rank, b *flow.Block) {
	// Serve my send list: the dense per-rank buckets iterate destinations
	// in ascending rank order, the deterministic order the old map-keyed
	// list had to sort into.
	interp, batches := 0, 0
	for dst, entries := range s.sendList {
		if len(entries) == 0 {
			continue
		}
		batches++
		env := s.getVal()
		ids := env.IDs[:0]
		vals := env.Vals[:0]
		for _, e := range entries {
			d := e.donor
			q, ok := b.InterpolateCell(d.I, d.J, d.K, d.A, d.B, d.C)
			if !ok {
				continue
			}
			interp++
			ids = append(ids, e.id)
			vals = append(vals, q[:]...)
		}
		env.IDs, env.Vals = ids, vals
		// Reliable under fault injection (plain Send otherwise); a batch
		// lost beyond the retry budget arrives as a tombstone, which the
		// receiver's RecvTimeout below turns into "keep previous data".
		r.SendReliable(dst, par.TagUser+1, env, bytesPerValue*len(ids))
	}
	r.Compute(float64(interp) * flopsPerInterp)

	// Receive from every distinct donor rank, in ascending rank order for
	// determinism (dense membership array instead of a per-step map).
	expect := s.expect
	if len(expect) < r.Size() {
		expect = make([]bool, r.Size())
		s.expect = expect
	}
	clear(expect)
	for id := range s.igbps {
		if s.donors[id].Grid >= 0 && s.donorRank[id] >= 0 {
			expect[s.donorRank[id]] = true
		}
	}
	faulty := r.Faulty()
	for from, want := range expect {
		if !want {
			continue
		}
		var m par.Msg
		if faulty {
			var ok bool
			// Graceful degradation: a fringe-value batch lost beyond the
			// transport's retry budget leaves these fringe points holding
			// their previous data for this step (the orphan treatment),
			// instead of deadlocking the receive.
			m, ok = r.RecvTimeout(from, par.TagUser+1, 2*r.Model().LatencySec)
			if !ok {
				s.LostFringe++
				continue
			}
		} else {
			m = r.Recv(from, par.TagUser+1)
		}
		vm := m.Data.(*valMsg)
		for n, id := range vm.IDs {
			pt := s.igbps[id]
			var q [5]float64
			copy(q[:], vm.Vals[5*n:5*n+5])
			b.SetFringe(pt.I, pt.J, pt.K, q)
		}
		s.putVal(vm)
	}
	s.publishFringeMetrics(r, interp, batches)
}

// DonorCounts returns (resolved, orphaned) counts for this rank's IGBPs.
func (s *Solver) DonorCounts() (resolved, orphaned int) {
	for _, d := range s.donors {
		if d.Grid >= 0 {
			resolved++
		} else {
			orphaned++
		}
	}
	return
}

// IGBPCount returns the number of fringe points owned by this rank.
func (s *Solver) IGBPCount() int { return len(s.igbps) }
