package dcf

// SetDebugFwd installs a diagnostic hook observing every forwarded
// request (grid, hop count, scratch flag). Pass nil to remove. Not for
// concurrent installation during a running solve.
func SetDebugFwd(fn func(grid, hops int, scratch bool)) {
	if fn == nil {
		debugFwd = nil
		return
	}
	debugFwd = func(p ptReq) { fn(p.Grid, p.Hops, p.Scratch) }
}
