// Package dcf implements the distributed domain-connectivity solution of
// DCF3D as parallelized by Barszcz (paper §2.2): per-processor bounding
// boxes broadcast globally, hierarchical donor-search requests routed by
// bounding box, request servicing on the processor owning the candidate
// donor region, forwarding across processor boundaries when a stencil walk
// exits a subdomain, nth-level restart from the previous timestep's donors,
// and per-processor received-IGBP counters I(p) that feed the dynamic load
// balancer (Algorithm 2).
package dcf

import (
	"overd/internal/geom"
	"overd/internal/grid"
	"overd/internal/overset"
)

// Approximate flop costs of connectivity work, for virtual-time accounting.
// The constants are calibrated so the connectivity share of total time
// lands in the paper's ranges (10-15%% for the airfoil, ~10%% for the delta
// wing, 17-34%% for the store case): DCF3D's per-IGBP cost on the real
// machines — hole cutting against real surfaces, list formation, stretched-
// cell Newton inversions and failed hierarchy searches — was substantially
// heavier than this reproduction's analytic-geometry equivalents, so each
// unit of connectivity work carries a calibrated flop weight.
const (
	flopsPerSearchStep = 150.0 // one Newton iteration / walk move
	flopsPerHoleTest   = 50.0  // one hole-map / cutter query
	flopsPerFringeMark = 16.0
	flopsPerInterp     = 60.0 // trilinear donor interpolation, 5 components
	bytesPerRequest    = 56
	bytesPerReply      = 64
	bytesPerValue      = 48
)

// maxForwardHops bounds request forwarding chains. Genuine cross-boundary
// forwards resolve in one or two hops and topological restarts consume at
// most chainRestartBudget, so a short cap stops walks for points that are
// not in the grid at all from crawling across every subdomain.
const maxForwardHops = 5

// Part mirrors balance.Part without importing it (grid, rank, box).
type Part struct {
	Grid int
	Rank int
	Box  grid.IBox
}

// Solver carries one rank's connectivity state across timesteps.
type Solver struct {
	Cfg   *overset.Config
	Parts []Part // indexed by rank
	Rank  int    // my rank

	// igbps are my owned fringe points from the latest solve.
	igbps []overset.IGBP
	// donors are parallel to igbps (Grid < 0 = orphan).
	donors []overset.Donor
	// donorRank is the rank that serves each donor.
	donorRank []int

	// restart: previous donors per IGBP key for nth-level restart.
	restart map[restartKey]restartHint

	// sendList: interpolation duties this rank owes others, rebuilt each
	// connectivity solve: receiver rank -> entries.
	sendList map[int][]sendEntry

	// ReceivedIGBPs is I(p): the number of non-local IGBP search requests
	// this rank serviced in the latest solve.
	ReceivedIGBPs int
	// Forwards counts requests forwarded across processor boundaries.
	Forwards int
	// Orphans counts local IGBPs with no donor.
	Orphans int
	// SearchSteps accumulates walk work performed by this rank.
	SearchSteps int
	// Hinted and Scratch count how many of this rank's own IGBPs used a
	// restart hint versus a from-scratch search in the latest solve.
	Hinted, Scratch int
	// HintMisses counts hinted requests that came back unresolved.
	HintMisses int

	// Fault-degradation counters, cumulative across solves and fringe
	// updates (zero on fault-free runs). LostSends counts search-request
	// batches lost beyond the retry budget, LostReplies reply batches
	// likewise (their points degrade to orphans), LostFringe fringe-value
	// batches whose receivers kept previous data.
	LostSends, LostReplies, LostFringe int
}

type restartKey struct{ g, i, j, k int }

type restartHint struct {
	donor overset.Donor
	rank  int
}

type sendEntry struct {
	origin int // requesting rank
	id     int // IGBP index on the origin rank
	donor  overset.Donor
}

// message payload types
type ptReq struct {
	Origin int
	ID     int
	Pos    geom.Vec3
	Grid   int    // donor grid to search
	Start  [3]int // walk start hint
	Hops   int
	// Restarts counts stuck-walk restarts consumed across the chain.
	Restarts int
	// Scratch marks a from-scratch request whose start hint is generic;
	// the server picks a better start by sampling its own subdomain.
	Scratch bool
}

// chainRestartBudget bounds stuck-walk restarts per request chain.
const chainRestartBudget = 3

type reqMsg struct{ Pts []ptReq }

type ptRep struct {
	ID    int
	OK    bool
	Donor overset.Donor
	Rank  int // serving rank (for restart routing and fringe updates)
}

type repMsg struct{ Results []ptRep }

type valMsg struct {
	IDs  []int
	Vals []float64 // 5 per id
}

// NewSolver builds a rank-local connectivity solver.
func NewSolver(cfg *overset.Config, parts []Part, rank int) *Solver {
	return &Solver{
		Cfg:     cfg,
		Parts:   parts,
		Rank:    rank,
		restart: make(map[restartKey]restartHint),
	}
}

// InvalidateRestart drops the nth-level restart hints (after repartition).
func (s *Solver) InvalidateRestart() {
	s.restart = make(map[restartKey]restartHint)
}

// dropSendEntry removes the interpolation duty owed to origin for the given
// IGBP id — called when the reply that would have told the origin about the
// donor was lost, so both sides forget the pairing consistently.
func (s *Solver) dropSendEntry(origin, id int) {
	entries := s.sendList[origin]
	for i := len(entries) - 1; i >= 0; i-- {
		if entries[i].id == id {
			entries = append(entries[:i], entries[i+1:]...)
			break
		}
	}
	if len(entries) == 0 {
		delete(s.sendList, origin)
	} else {
		s.sendList[origin] = entries
	}
}

// myBox returns this rank's owned box and grid.
func (s *Solver) myBox() (int, grid.IBox) {
	p := s.Parts[s.Rank]
	return p.Grid, p.Box
}

// rankOfCell returns the rank owning the given cell (by its base point) of
// the given grid, or -1.
func (s *Solver) rankOfCell(gi int, cell [3]int) int {
	for _, p := range s.Parts {
		if p.Grid == gi && p.Box.Contains(cell[0], cell[1], cell[2]) {
			return p.Rank
		}
	}
	return -1
}
