// Package dcf implements the distributed domain-connectivity solution of
// DCF3D as parallelized by Barszcz (paper §2.2): per-processor bounding
// boxes broadcast globally, hierarchical donor-search requests routed by
// bounding box, request servicing on the processor owning the candidate
// donor region, forwarding across processor boundaries when a stencil walk
// exits a subdomain, nth-level restart from the previous timestep's donors,
// and per-processor received-IGBP counters I(p) that feed the dynamic load
// balancer (Algorithm 2).
package dcf

import (
	"overd/internal/geom"
	"overd/internal/grid"
	"overd/internal/overset"
	"overd/internal/par"
)

// Approximate flop costs of connectivity work, for virtual-time accounting.
// The constants are calibrated so the connectivity share of total time
// lands in the paper's ranges (10-15%% for the airfoil, ~10%% for the delta
// wing, 17-34%% for the store case): DCF3D's per-IGBP cost on the real
// machines — hole cutting against real surfaces, list formation, stretched-
// cell Newton inversions and failed hierarchy searches — was substantially
// heavier than this reproduction's analytic-geometry equivalents, so each
// unit of connectivity work carries a calibrated flop weight.
const (
	flopsPerSearchStep = 150.0 // one Newton iteration / walk move
	flopsPerHoleTest   = 50.0  // one hole-map / cutter query
	flopsPerFringeMark = 16.0
	flopsPerInterp     = 60.0 // trilinear donor interpolation, 5 components
	bytesPerRequest    = 56
	bytesPerReply      = 64
	bytesPerValue      = 48
)

// maxForwardHops bounds request forwarding chains. Genuine cross-boundary
// forwards resolve in one or two hops and topological restarts consume at
// most chainRestartBudget, so a short cap stops walks for points that are
// not in the grid at all from crawling across every subdomain.
const maxForwardHops = 5

// Part mirrors balance.Part without importing it (grid, rank, box).
type Part struct {
	Grid int
	Rank int
	Box  grid.IBox
}

// Solver carries one rank's connectivity state across timesteps.
type Solver struct {
	Cfg   *overset.Config
	Parts []Part // indexed by rank
	Rank  int    // my rank

	// igbps are my owned fringe points from the latest solve.
	igbps []overset.IGBP
	// donors are parallel to igbps (Grid < 0 = orphan).
	donors []overset.Donor
	// donorRank is the rank that serves each donor.
	donorRank []int

	// restart: previous donors per packed IGBP key for nth-level restart.
	restart map[restartKey]restartHint

	// sendList: interpolation duties this rank owes others, rebuilt each
	// connectivity solve. Indexed by receiver rank; an empty slice means no
	// duties (dense per-rank buckets, reused across solves).
	sendList [][]sendEntry

	// ReceivedIGBPs is I(p): the number of non-local IGBP search requests
	// this rank serviced in the latest solve.
	ReceivedIGBPs int
	// Forwards counts requests forwarded across processor boundaries.
	Forwards int
	// Orphans counts local IGBPs with no donor.
	Orphans int
	// SearchSteps accumulates walk work performed by this rank.
	SearchSteps int
	// Hinted and Scratch count how many of this rank's own IGBPs used a
	// restart hint versus a from-scratch search in the latest solve.
	Hinted, Scratch int
	// HintMisses counts hinted requests that came back unresolved.
	HintMisses int

	// Fault-degradation counters, cumulative across solves and fringe
	// updates (zero on fault-free runs). LostSends counts search-request
	// batches lost beyond the retry budget, LostReplies reply batches
	// likewise (their points degrade to orphans), LostFringe fringe-value
	// batches whose receivers kept previous data.
	LostSends, LostReplies, LostFringe int

	// met caches metric handles when a registry is attached to the world
	// (nil otherwise; see metrics.go).
	met *solverMetrics

	// ar, when non-nil, holds the world-shared per-rank envelope arenas
	// (see UseArenas). Nil falls back to the process-global pools.
	ar *Arenas

	// Reusable per-solve scratch. Everything below changes host allocation
	// behavior only, never modeled time (see DESIGN.md, "Wall-clock vs
	// virtual time"). The per-destination request/reply buckets are dense
	// rank-indexed slices: iterating them in index order IS the sorted-key
	// order the old map-based buckets had to sort into, so sends stay
	// deterministic by construction.
	pend        []pendingPt // dense, indexed by IGBP id
	outbox      [][]ptReq   // destination rank -> queued requests
	outboxNext  [][]ptReq   // double buffer for lost-send requeues
	fwdbox      [][]ptReq   // destination rank -> forwards
	replies     [][]ptRep   // origin rank -> computed replies
	lostFwds    [][]ptRep   // origin rank -> broken-chain failure replies
	anyLostFwds bool
	rankBounds  []geom.Box
	inbound     []par.Msg
	cands       []int     // candidate-rank scratch for advance
	candD       []float64 // distances parallel to cands
	gridIx      overset.GridRankIndex
	gridOf      []int  // scratch for rebuilding gridIx: grid per rank
	expect      []bool // fringe-update receive set, indexed by rank
	marks       []int  // fringe-mark scratch, reused per layer
}

// restartKey is an IGBP identity (grid, i, j, k) packed into one word: map
// lookups hash 8 bytes instead of a 4-word struct. 16 bits per field is
// far beyond any component grid dimension here.
type restartKey uint64

func packRestartKey(g, i, j, k int) restartKey {
	return restartKey(uint64(g)<<48 | uint64(i)<<32 | uint64(j)<<16 | uint64(k))
}

type restartHint struct {
	donor overset.Donor
	rank  int
}

type sendEntry struct {
	origin int // requesting rank
	id     int // IGBP index on the origin rank
	donor  overset.Donor
}

// message payload types
type ptReq struct {
	Origin int
	ID     int
	Pos    geom.Vec3
	Grid   int    // donor grid to search
	Start  [3]int // walk start hint
	Hops   int
	// Restarts counts stuck-walk restarts consumed across the chain.
	Restarts int
	// Scratch marks a from-scratch request whose start hint is generic;
	// the server picks a better start by sampling its own subdomain.
	Scratch bool
}

// chainRestartBudget bounds stuck-walk restarts per request chain.
const chainRestartBudget = 3

type reqMsg struct{ Pts []ptReq }

// Message envelope pools (see par.Pool): senders copy their batch into a
// recycled envelope; receivers copy the contents out and return it. The
// solver's own per-destination buckets never leave the rank, so their reuse
// needs no cross-rank lifetime reasoning. These process-global sync.Pools
// are the fallback for solvers without an attached Arenas (tests, ad-hoc
// worlds); a run that wants contention-free zero-alloc reuse at
// GOMAXPROCS > 1 attaches per-world arenas via UseArenas.
var (
	reqPool par.Pool[reqMsg]
	repPool par.Pool[repMsg]
	valPool par.Pool[valMsg]
)

// Arenas holds one world's per-rank sharded envelope arenas (see par.Arena):
// every rank's solver Gets from and Puts to its own shard, so steady-state
// envelope reuse never contends across ranks. One Arenas is shared by all of
// a world's solvers and survives repartitions (rank count is stable).
type Arenas struct {
	req par.Arena[reqMsg]
	rep par.Arena[repMsg]
	val par.Arena[valMsg]
}

// NewArenas sizes envelope arenas for an n-rank world.
func NewArenas(n int) *Arenas {
	a := &Arenas{}
	a.req.Init(n)
	a.rep.Init(n)
	a.val.Init(n)
	return a
}

// UseArenas attaches shared per-rank envelope arenas; pass nil to fall back
// to the process-global pools. Affects host allocation behavior only.
func (s *Solver) UseArenas(a *Arenas) { s.ar = a }

// Envelope get/put helpers: arena shard for this rank when attached, global
// pool otherwise. A received envelope is Put into the RECEIVER's shard —
// envelope migration across ranks is the arena's designed-for case.
func (s *Solver) getReq() *reqMsg {
	if s.ar != nil {
		return s.ar.req.Get(s.Rank)
	}
	return reqPool.Get()
}

func (s *Solver) putReq(x *reqMsg) {
	if s.ar != nil {
		s.ar.req.Put(s.Rank, x)
		return
	}
	reqPool.Put(x)
}

func (s *Solver) getRep() *repMsg {
	if s.ar != nil {
		return s.ar.rep.Get(s.Rank)
	}
	return repPool.Get()
}

func (s *Solver) putRep(x *repMsg) {
	if s.ar != nil {
		s.ar.rep.Put(s.Rank, x)
		return
	}
	repPool.Put(x)
}

func (s *Solver) getVal() *valMsg {
	if s.ar != nil {
		return s.ar.val.Get(s.Rank)
	}
	return valPool.Get()
}

func (s *Solver) putVal(x *valMsg) {
	if s.ar != nil {
		s.ar.val.Put(s.Rank, x)
		return
	}
	valPool.Put(x)
}

type ptRep struct {
	ID    int
	OK    bool
	Donor overset.Donor
	Rank  int // serving rank (for restart routing and fringe updates)
}

type repMsg struct{ Results []ptRep }

type valMsg struct {
	IDs  []int
	Vals []float64 // 5 per id
}

// NewSolver builds a rank-local connectivity solver.
func NewSolver(cfg *overset.Config, parts []Part, rank int) *Solver {
	return &Solver{
		Cfg:     cfg,
		Parts:   parts,
		Rank:    rank,
		restart: make(map[restartKey]restartHint),
	}
}

// InvalidateRestart drops the nth-level restart hints (after repartition).
func (s *Solver) InvalidateRestart() {
	clear(s.restart)
}

// ensureWorld sizes the per-rank scratch buckets and builds the per-grid
// rank index (the donor-grid candidate lookup accelerator: advance and
// rankOfCell scan only the ranks owning the donor grid instead of every
// part). Idempotent while the world size is stable.
func (s *Solver) ensureWorld() {
	n := len(s.Parts)
	if len(s.outbox) != n {
		s.outbox = make([][]ptReq, n)
		s.outboxNext = make([][]ptReq, n)
		s.fwdbox = make([][]ptReq, n)
		s.replies = make([][]ptRep, n)
		s.lostFwds = make([][]ptRep, n)
		s.sendList = make([][]sendEntry, n)
		s.expect = make([]bool, n)
	}
	s.gridOf = s.gridOf[:0]
	for _, p := range s.Parts { // Parts is rank-indexed: ascending ranks
		s.gridOf = append(s.gridOf, p.Grid)
	}
	s.gridIx = overset.BuildGridRankIndex(len(s.Cfg.Sys.Grids), s.gridOf, s.gridIx)
}

// dropSendEntry removes the interpolation duty owed to origin for the given
// IGBP id — called when the reply that would have told the origin about the
// donor was lost, so both sides forget the pairing consistently.
func (s *Solver) dropSendEntry(origin, id int) {
	entries := s.sendList[origin]
	for i := len(entries) - 1; i >= 0; i-- {
		if entries[i].id == id {
			entries = append(entries[:i], entries[i+1:]...)
			break
		}
	}
	s.sendList[origin] = entries
}

// myBox returns this rank's owned box and grid.
func (s *Solver) myBox() (int, grid.IBox) {
	p := s.Parts[s.Rank]
	return p.Grid, p.Box
}

// rankOfCell returns the rank owning the given cell (by its base point) of
// the given grid, or -1. With the per-grid rank index built it scans only
// that grid's ranks, in the same ascending order as the full-part scan.
func (s *Solver) rankOfCell(gi int, cell [3]int) int {
	if s.gridIx.Built() {
		for _, rk := range s.gridIx.Of(gi) {
			if s.Parts[rk].Box.Contains(cell[0], cell[1], cell[2]) {
				return rk
			}
		}
		return -1
	}
	for _, p := range s.Parts {
		if p.Grid == gi && p.Box.Contains(cell[0], cell[1], cell[2]) {
			return p.Rank
		}
	}
	return -1
}
