package dcf

import (
	"math"
	"testing"

	"overd/internal/balance"
	"overd/internal/flow"
	"overd/internal/geom"
	"overd/internal/grid"
	"overd/internal/gridgen"
	"overd/internal/machine"
	"overd/internal/overset"
	"overd/internal/par"
)

// testSystem builds a small airfoil-style three-grid system with a static
// plan over the given node count, returning the parts and per-rank blocks.
func testSystem(t *testing.T, nodes int) (*overset.Config, []Part, []*flow.Block) {
	t.Helper()
	af := gridgen.AirfoilOGrid(0, "airfoil", 48, 16, 1.2)
	af.Moving = true
	ring := gridgen.Annulus(1, "ring", 48, 16, 0.5, 0, 0.35, 3.0)
	bg := gridgen.CartesianBox(2, "bg", 24, 24, 1,
		geom.Box{Min: geom.Vec3{X: -6, Y: -6}, Max: geom.Vec3{X: 7, Y: 6}})
	sys := &grid.System{Grids: []*grid.Grid{af, ring, bg}}
	cfg := &overset.Config{
		Sys: sys,
		Cutters: []*overset.BodyCutter{{
			Cutter:     overset.NewAirfoilCutter(0.02),
			OwnGrids:   []int{0},
			FollowGrid: 0,
		}},
		Search:      map[int][]int{0: {1, 2}, 1: {0, 2}, 2: {1, 0}},
		FringeDepth: 2,
		HoleMapRes:  24,
	}
	sizes := []int{af.NPoints(), ring.NPoints(), bg.NPoints()}
	plan, err := balance.Static(sizes, nodes)
	if err != nil {
		t.Fatal(err)
	}
	balance.SubdividePlan(plan, [][3]int{
		{af.NI, af.NJ, 1}, {ring.NI, ring.NJ, 1}, {bg.NI, bg.NJ, 1}})
	parts := make([]Part, nodes)
	blocks := make([]*flow.Block, nodes)
	fs := flow.Freestream{Mach: 0.5}
	for gi := range sys.Grids {
		var boxes []grid.IBox
		var ranks []int
		for r, p := range plan.Parts {
			if p.Grid == gi {
				boxes = append(boxes, p.Box)
				ranks = append(ranks, r)
			}
		}
		blks := flow.BuildBlocks(sys.Grids[gi], boxes, ranks, fs)
		for i, r := range ranks {
			blocks[r] = blks[i]
			parts[r] = Part{Grid: gi, Rank: r, Box: boxes[i]}
		}
	}
	return cfg, parts, blocks
}

func TestDistributedSolveMatchesSerialCoverage(t *testing.T) {
	for _, nodes := range []int{3, 6} {
		cfg, parts, _ := testSystem(t, nodes)
		solvers := make([]*Solver, nodes)
		statsAll := make([]Stats, nodes)
		w := par.NewWorld(nodes, machine.SP2())
		w.Run(func(r *par.Rank) {
			solvers[r.ID] = NewSolver(cfg, parts, r.ID)
			statsAll[r.ID] = solvers[r.ID].Solve(r)
		})
		totalIGBPs, totalOrphans, totalRecv := 0, 0, 0
		for _, s := range statsAll {
			totalIGBPs += s.LocalIGBPs
			totalOrphans += s.Orphans
			totalRecv += s.Received
		}
		// Serial reference on identical geometry.
		cfgS, _, _ := testSystem(t, 3)
		conn := cfgS.Assemble()
		if totalIGBPs != len(conn.IGBPs) {
			t.Errorf("nodes=%d: distributed found %d IGBPs, serial %d",
				nodes, totalIGBPs, len(conn.IGBPs))
		}
		if totalOrphans > len(conn.IGBPs)/20+conn.Orphans {
			t.Errorf("nodes=%d: distributed orphans %d vs serial %d",
				nodes, totalOrphans, conn.Orphans)
		}
		if totalRecv < totalIGBPs-totalOrphans {
			t.Errorf("nodes=%d: served %d requests for %d IGBPs", nodes, totalRecv, totalIGBPs)
		}
	}
}

func TestDistributedDonorsReconstructPositions(t *testing.T) {
	nodes := 6
	cfg, parts, _ := testSystem(t, nodes)
	solvers := make([]*Solver, nodes)
	w := par.NewWorld(nodes, machine.SP2())
	w.Run(func(r *par.Rank) {
		solvers[r.ID] = NewSolver(cfg, parts, r.ID)
		solvers[r.ID].Solve(r)
	})
	checked := 0
	for _, s := range solvers {
		for id, d := range s.donors {
			if d.Grid < 0 {
				continue
			}
			pt := s.igbps[id]
			g := cfg.Sys.Grids[d.Grid]
			pos := overset.Interpolate(g, d, func(i, j, k int) [5]float64 {
				n := g.Idx(i, j, k)
				return [5]float64{g.X[n], g.Y[n], g.Z[n], 0, 0}
			})
			rec := geom.Vec3{X: pos[0], Y: pos[1], Z: pos[2]}
			if rec.Dist(pt.Pos) > 1e-6 {
				t.Fatalf("rank %d IGBP %d: donor reconstructs %v, want %v",
					s.Rank, id, rec, pt.Pos)
			}
			// The recorded donor rank really owns the donor cell.
			if dr := s.donorRank[id]; dr >= 0 {
				if parts[dr].Grid != d.Grid || !parts[dr].Box.Contains(d.I, d.J, d.K) {
					t.Fatalf("donor rank %d does not own cell %v of grid %d", dr, [3]int{d.I, d.J, d.K}, d.Grid)
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no donors checked")
	}
}

func TestRestartReducesRounds(t *testing.T) {
	nodes := 6
	cfg, parts, _ := testSystem(t, nodes)
	solvers := make([]*Solver, nodes)
	steps1 := make([]int, nodes)
	steps2 := make([]int, nodes)
	w := par.NewWorld(nodes, machine.SP2())
	w.Run(func(r *par.Rank) {
		solvers[r.ID] = NewSolver(cfg, parts, r.ID)
		solvers[r.ID].Solve(r)
		steps1[r.ID] = solvers[r.ID].SearchSteps
	})
	// Move the airfoil slightly and resolve: restart should cut work.
	cfg.Sys.Grids[0].ApplyTransform(geom.Transform{R: geom.RotZ(0.01), T: geom.Vec3{}})
	w2 := par.NewWorld(nodes, machine.SP2())
	w2.Run(func(r *par.Rank) {
		solvers[r.ID].Solve(r)
		steps2[r.ID] = solvers[r.ID].SearchSteps
	})
	t1, t2 := 0, 0
	for i := range steps1 {
		t1 += steps1[i]
		t2 += steps2[i]
	}
	if t2 >= t1 {
		t.Errorf("restart should reduce search work: first %d, second %d", t1, t2)
	}
}

func TestUpdateFringesDeliversInterpolatedData(t *testing.T) {
	nodes := 3
	cfg, parts, blocks := testSystem(t, nodes)
	solvers := make([]*Solver, nodes)
	w := par.NewWorld(nodes, machine.SP2())
	w.Run(func(r *par.Rank) {
		solvers[r.ID] = NewSolver(cfg, parts, r.ID)
		solvers[r.ID].Solve(r)
		blocks[r.ID].RefreshMasks()
		r.Barrier()
		// Tag every block's state with its grid id in the density slot.
		b := blocks[r.ID]
		for n := 0; n < b.NPointsLocal(); n++ {
			b.SetQ(n, [5]float64{float64(parts[r.ID].Grid + 2), 0, 0, 0, 1})
		}
		r.Barrier()
		b.ExchangeHalo(r)
		solvers[r.ID].UpdateFringes(r, b)
	})
	// Fringe points now hold their donor grid's tag, not their own.
	verified := 0
	for rank, s := range solvers {
		b := blocks[rank]
		for id, d := range s.donors {
			if d.Grid < 0 {
				continue
			}
			pt := s.igbps[id]
			q, ok := b.QAtGlobal(pt.I, pt.J, pt.K)
			if !ok {
				continue
			}
			want := float64(d.Grid + 2)
			if math.Abs(q[0]-want) > 1e-12 {
				t.Fatalf("rank %d fringe (%d,%d,%d): rho %v, want donor tag %v",
					rank, pt.I, pt.J, pt.K, q[0], want)
			}
			verified++
		}
	}
	if verified == 0 {
		t.Fatal("no fringe deliveries verified")
	}
}

func TestInvalidateRestart(t *testing.T) {
	cfg, parts, _ := testSystem(t, 3)
	s := NewSolver(cfg, parts, 0)
	s.restart[packRestartKey(0, 1, 2, 0)] = restartHint{}
	s.InvalidateRestart()
	if len(s.restart) != 0 {
		t.Error("restart map should be empty")
	}
}

func TestRankOfCell(t *testing.T) {
	_, parts, _ := testSystem(t, 6)
	s := &Solver{Parts: parts}
	for _, p := range parts {
		if got := s.rankOfCell(p.Grid, [3]int{p.Box.ILo, p.Box.JLo, p.Box.KLo}); got != p.Rank {
			t.Errorf("rankOfCell(%d, corner of rank %d) = %d", p.Grid, p.Rank, got)
		}
	}
	if s.rankOfCell(99, [3]int{0, 0, 0}) != -1 {
		t.Error("unknown grid should yield -1")
	}
}

func TestSolveChargesConnectPhase(t *testing.T) {
	nodes := 3
	cfg, parts, _ := testSystem(t, nodes)
	w := par.NewWorld(nodes, machine.SP2())
	ranks := w.Run(func(r *par.Rank) {
		s := NewSolver(cfg, parts, r.ID)
		s.Solve(r)
	})
	for _, r := range ranks {
		if r.PhaseTime(par.PhaseConnect) <= 0 {
			t.Errorf("rank %d: no connect-phase time", r.ID)
		}
	}
}
