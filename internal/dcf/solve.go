package dcf

import (
	"sort"

	"overd/internal/geom"
	"overd/internal/grid"
	"overd/internal/overset"
	"overd/internal/par"
)

// debugFwd, when set, observes every forwarded request (test hook).
var debugFwd func(ptReq)

// Stats summarizes one rank's view of a connectivity solve.
type Stats struct {
	// LocalIGBPs is the number of fringe points owned by this rank.
	LocalIGBPs int
	// Received is I(p): search requests serviced by this rank.
	Received int
	// Forwards counts cross-boundary forwarded requests.
	Forwards int
	// Orphans counts local IGBPs left without donors.
	Orphans int
	// Rounds is the number of request/serve/reply rounds taken.
	Rounds int
}

// pendingPt tracks an unresolved local IGBP's search progression. The
// candidate ranks for the current donor grid live in a fixed-size array
// (advance keeps at most 3), so the dense pending table allocates nothing
// per point.
type pendingPt struct {
	id           int // index into s.igbps
	hier         int // position in the receiver grid's search order
	cand         [3]int
	chead, ncand int8
	// lostSends counts request batches for this point lost beyond the
	// transport's retry budget; maxLostSends of them orphan the point.
	lostSends int
}

// popCand removes and returns the next candidate rank to try.
func (p *pendingPt) popCand() int {
	dst := p.cand[p.chead]
	p.chead++
	return dst
}

// candsLeft reports whether any candidate ranks remain.
func (p *pendingPt) candsLeft() bool { return p.chead < p.ncand }

// maxLostSends bounds per-point request retransmission rounds after
// transport-level loss before the point degrades to an orphan.
const maxLostSends = 2

// Solve re-establishes domain connectivity after grid motion: distributed
// hole cutting, fringe marking, global bounding-box exchange, and the
// asynchronous hierarchical donor search with request forwarding and
// nth-level restart. All ranks must call it collectively; virtual time is
// attributed to the connectivity phase.
func (s *Solver) Solve(r *par.Rank) Stats {
	prevPhase := r.CurrentPhase()
	// A solve forced by a repartition is rebalancing overhead, not the
	// steady-state connectivity cost the paper's %DCF3D measures.
	if prevPhase != par.PhaseBalance {
		r.SetPhase(par.PhaseConnect)
	}
	defer r.SetPhase(prevPhase)

	gi, box := s.myBox()
	g := s.Cfg.Sys.Grids[gi]

	s.cutHolesLocal(r, gi, box)
	s.markFringesLocal(r, g, gi, box)

	// Collect my IGBPs. The row base i + NI*(j + NJ*k) is hoisted out of
	// the contiguous i-run, and the coordinate slices are loaded once, so
	// the scan is a single strided pass over IBlank.
	s.igbps = s.igbps[:0]
	ib, gx, gy, gz := g.IBlank, g.X, g.Y, g.Z
	for k := box.KLo; k <= box.KHi; k++ {
		for j := box.JLo; j <= box.JHi; j++ {
			row := g.NI * (j + g.NJ*k)
			for i := box.ILo; i <= box.IHi; i++ {
				n := row + i
				if ib[n] == grid.IBFringe {
					s.igbps = append(s.igbps, overset.IGBP{
						Grid: gi, I: i, J: j, K: k,
						Pos: geom.Vec3{X: gx[n], Y: gy[n], Z: gz[n]},
					})
				}
			}
		}
	}
	n := len(s.igbps)
	if cap(s.donors) < n {
		s.donors = make([]overset.Donor, n)
		s.donorRank = make([]int, n)
	}
	s.donors = s.donors[:n]
	s.donorRank = s.donorRank[:n]
	for i := range s.donors {
		s.donors[i] = overset.Donor{Grid: -1}
		s.donorRank[i] = -1
	}

	// Global bounding-box exchange ("broadcast globally at the beginning").
	myBounds := g.BoundsOf(box)
	r.Compute(float64(box.Count()) * 2)
	raw := r.AllGather(myBounds, 48)
	if cap(s.rankBounds) < len(raw) {
		s.rankBounds = make([]geom.Box, len(raw))
	}
	rankBounds := s.rankBounds[:len(raw)]
	for i, v := range raw {
		// Inflate so near-boundary donors are still routed to this rank.
		rb := v.(geom.Box)
		rankBounds[i] = rb.Inflate(0.02 * (1 + rb.Size().Norm()))
	}

	// Initial pending set, honoring restart hints.
	s.ensureWorld()
	for i := range s.sendList {
		s.sendList[i] = s.sendList[i][:0]
	}
	s.ReceivedIGBPs = 0
	s.Forwards = 0
	s.SearchSteps = 0
	s.Hinted, s.Scratch, s.HintMisses = 0, 0, 0
	outbox := s.outbox // destination rank -> requests
	for dst := range outbox {
		outbox[dst] = outbox[dst][:0]
	}
	if cap(s.pend) < n {
		s.pend = make([]pendingPt, n)
	}
	s.pend = s.pend[:n]
	for id, pt := range s.igbps {
		s.pend[id] = pendingPt{id: id, hier: -1}
		p := &s.pend[id]
		if hint, ok := s.hintFor(pt); ok {
			s.Hinted++
			outbox[hint.rank] = append(outbox[hint.rank], ptReq{
				Origin: s.Rank, ID: id, Pos: pt.Pos,
				Grid:  hint.donor.Grid,
				Start: [3]int{hint.donor.I, hint.donor.J, hint.donor.K},
			})
			continue
		}
		if !s.advance(p, pt, rankBounds) {
			s.donors[id] = overset.Donor{Grid: -1}
			continue
		}
		s.Scratch++
		dst := p.popCand()
		outbox[dst] = append(outbox[dst], s.scratchReq(id, pt, p))
	}

	stats := Stats{LocalIGBPs: len(s.igbps)}

	// Request/serve/reply rounds until no work remains anywhere. All sends
	// use the reliable (ack + bounded-retry) transport, which is plain Send
	// on fault-free runs; because a loss beyond the retry budget is reported
	// to the SENDER, every loss has a deterministic local compensation and
	// the protocol degrades to bounded orphans instead of hanging.
	fwdbox := s.fwdbox
	for dst := range fwdbox {
		fwdbox[dst] = fwdbox[dst][:0]
	}
	// s.lostFwds carries failure replies for forwards whose retransmission
	// budget ran out, merged with this round's computed replies.
	for round := 0; round < 64; round++ {
		stats.Rounds = round + 1
		// Phase A: send queued requests and forwards, in ascending rank
		// order (dense bucket iteration) so the virtual-time trace is
		// deterministic. A request batch lost beyond the retry budget is
		// re-queued for the next round (bounded per point); its points
		// orphan when the budget runs out.
		next := s.outboxNext
		for dst := range next {
			next[dst] = next[dst][:0]
		}
		for dst, pts := range outbox {
			if len(pts) == 0 {
				continue
			}
			if s.sendReqBatch(r, dst, pts) {
				continue
			}
			s.LostSends++
			for _, pt := range pts {
				p := &s.pend[pt.ID]
				if p.lostSends < maxLostSends {
					p.lostSends++
					next[dst] = append(next[dst], pt)
				} else {
					s.donors[pt.ID] = overset.Donor{Grid: -1}
				}
			}
		}
		outbox, s.outbox, s.outboxNext = next, next, outbox
		s.anyLostFwds = false
		for dst, pts := range fwdbox {
			if len(pts) == 0 {
				continue
			}
			if s.sendReqBatch(r, dst, pts) {
				continue
			}
			s.LostSends++
			// The chain broke between servers: tell each origin its search
			// failed so it advances the hierarchy instead of waiting forever.
			if !s.anyLostFwds {
				s.anyLostFwds = true
				for origin := range s.lostFwds {
					s.lostFwds[origin] = s.lostFwds[origin][:0]
				}
			}
			for _, pt := range pts {
				s.lostFwds[pt.Origin] = append(s.lostFwds[pt.Origin], ptRep{ID: pt.ID, OK: false, Rank: s.Rank})
			}
		}
		for dst := range fwdbox {
			fwdbox[dst] = fwdbox[dst][:0]
		}
		r.Barrier()

		// Phase B: service everything that arrived this round. Drain every
		// message before doing any work so the clock's max-over-arrivals is
		// independent of delivery order, then sort by sender.
		inbound := s.inbound[:0]
		for {
			m, ok := r.TryRecv(par.AnyRank, par.TagSearchReq)
			if !ok {
				break
			}
			inbound = append(inbound, m)
		}
		s.inbound = inbound
		sort.Slice(inbound, func(a, b int) bool { return inbound[a].From < inbound[b].From })
		replies := s.replies
		for origin := range replies {
			replies[origin] = replies[origin][:0]
		}
		if s.anyLostFwds {
			// Ascending-origin merge of broken-chain failures; each origin's
			// bucket keeps lost-forward entries ahead of served replies,
			// exactly as the map-based merge ordered them.
			for origin, reps := range s.lostFwds {
				replies[origin] = append(replies[origin], reps...)
			}
		}
		for _, m := range inbound {
			req := m.Data.(*reqMsg)
			s.ReceivedIGBPs += len(req.Pts)
			for _, pt := range req.Pts {
				rep, fwd, fwdTo := s.serve(r, gi, box, pt)
				if fwdTo >= 0 {
					if debugFwd != nil {
						debugFwd(pt)
					}
					fwdbox[fwdTo] = append(fwdbox[fwdTo], fwd)
					continue
				}
				replies[pt.Origin] = append(replies[pt.Origin], rep)
			}
			s.putReq(req)
		}
		for dst, reps := range replies {
			if len(reps) == 0 {
				continue
			}
			env := s.getRep()
			env.Results = append(env.Results[:0], reps...)
			if r.SendReliable(dst, par.TagSearchRep, env, bytesPerReply*len(reps)) {
				continue
			}
			// Reply batch lost beyond the retry budget: the origin will see
			// its points finish as orphans (it never re-queues them), so
			// forget the matching interpolation duties to keep the fringe
			// exchange lists consistent on both sides.
			s.LostReplies++
			for _, rep := range reps {
				if rep.OK {
					s.dropSendEntry(dst, rep.ID)
				}
			}
		}
		r.Barrier()

		// Phase C: absorb replies; failed points advance their hierarchy.
		inRep := s.inbound[:0]
		for {
			m, ok := r.TryRecv(par.AnyRank, par.TagSearchRep)
			if !ok {
				break
			}
			inRep = append(inRep, m)
		}
		s.inbound = inRep
		sort.Slice(inRep, func(a, b int) bool { return inRep[a].From < inRep[b].From })
		for _, m := range inRep {
			rep := m.Data.(*repMsg)
			for _, res := range rep.Results {
				pt := s.igbps[res.ID]
				if res.OK {
					s.donors[res.ID] = res.Donor
					s.donorRank[res.ID] = res.Rank
					s.restart[packRestartKey(pt.Grid, pt.I, pt.J, pt.K)] =
						restartHint{donor: res.Donor, rank: res.Rank}
					continue
				}
				p := &s.pend[res.ID]
				if p.hier < 0 {
					s.HintMisses++
				}
				if !p.candsLeft() && !s.advance(p, pt, rankBounds) {
					s.donors[res.ID] = overset.Donor{Grid: -1}
					continue
				}
				dst := p.popCand()
				outbox[dst] = append(outbox[dst], s.scratchReq(res.ID, pt, p))
			}
			s.putRep(rep)
		}

		work := 0
		for _, v := range outbox {
			work += len(v)
		}
		for _, v := range fwdbox {
			work += len(v)
		}
		if r.AllReduceSum(float64(work)) == 0 {
			break
		}
	}

	s.Orphans = 0
	for _, d := range s.donors {
		if d.Grid < 0 {
			s.Orphans++
		}
	}
	stats.Received = s.ReceivedIGBPs
	stats.Forwards = s.Forwards
	stats.Orphans = s.Orphans
	s.publishSolveMetrics(r)
	return stats
}

// sendReqBatch copies a request batch into a recycled envelope (this rank's
// arena shard, or the global pool) and ships it on the reliable transport.
func (s *Solver) sendReqBatch(r *par.Rank, dst int, pts []ptReq) bool {
	env := s.getReq()
	env.Pts = append(env.Pts[:0], pts...)
	return r.SendReliable(dst, par.TagSearchReq, env, bytesPerRequest*len(pts))
}

// sortedKeys returns the keys of any int-keyed map in ascending order.
// Every send loop driven by a map MUST iterate via this helper (or an
// equivalently ordered dense structure): Go map iteration order is
// randomized, and an unsorted send loop would leak that randomness into
// message timing, trace event order, and ultimately the virtual clocks.
func sortedKeys[V any](m map[int]V) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

// hintFor returns the restart hint for an IGBP if available.
func (s *Solver) hintFor(pt overset.IGBP) (restartHint, bool) {
	if s.Cfg.DisableRestart {
		return restartHint{}, false
	}
	h, ok := s.restart[packRestartKey(pt.Grid, pt.I, pt.J, pt.K)]
	return h, ok
}

// scratchReq builds a from-scratch request for the current hierarchy grid.
func (s *Solver) scratchReq(id int, pt overset.IGBP, p *pendingPt) ptReq {
	order := s.Cfg.Search[pt.Grid]
	dg := order[p.hier]
	g := s.Cfg.Sys.Grids[dg]
	return ptReq{
		Origin: s.Rank, ID: id, Pos: pt.Pos, Grid: dg,
		Start:   [3]int{g.NI / 2, g.NJ / 2, g.NK / 2},
		Scratch: true,
	}
}

// advance moves a pending point to its next donor-grid candidate set.
// Returns false when the hierarchy is exhausted (orphan).
func (s *Solver) advance(p *pendingPt, pt overset.IGBP, rankBounds []geom.Box) bool {
	order := s.Cfg.Search[pt.Grid]
	for {
		p.hier++
		if p.hier >= len(order) {
			return false
		}
		dg := order[p.hier]
		if dg == pt.Grid {
			continue
		}
		// Candidate ranks: those of grid dg whose bounding box contains
		// the point, nearest box center first. The per-grid rank index
		// restricts the scan to ranks owning parts of dg, in the same
		// ascending-rank order a full part scan would visit them.
		cands := s.cands[:0]
		candD := s.candD[:0]
		for _, rk := range s.gridIx.Of(dg) {
			if rankBounds[rk].Contains(pt.Pos) {
				cands = append(cands, rk)
				candD = append(candD, rankBounds[rk].Center().Sub(pt.Pos).Norm2())
			}
		}
		s.cands, s.candD = cands, candD
		if len(cands) == 0 {
			continue
		}
		sortCandsByDist(cands, candD)
		// Forwarding reaches the rest of the grid from any entry rank, so
		// only the nearest few candidates are worth separate requests.
		nc := len(cands)
		if nc > 3 {
			nc = 3
		}
		for i := 0; i < nc; i++ {
			p.cand[i] = cands[i]
		}
		p.chead, p.ncand = 0, int8(nc)
		return true
	}
}

// sortCandsByDist orders candidate ranks by ascending distance. For short
// lists it runs the same insertion sort sort.Slice uses below its pdqsort
// cutoff (n <= 12), so the permutation of equal-distance candidates — and
// therefore the request routing — is bit-compatible with the historical
// sort.Slice call; longer lists (rare) go through sort.Slice itself.
func sortCandsByDist(cands []int, d []float64) {
	if len(cands) <= 12 {
		for i := 1; i < len(cands); i++ {
			for j := i; j > 0 && d[j] < d[j-1]; j-- {
				d[j], d[j-1] = d[j-1], d[j]
				cands[j], cands[j-1] = cands[j-1], cands[j]
			}
		}
		return
	}
	sort.Sort(&candSorter{cands, d})
}

type candSorter struct {
	cands []int
	d     []float64
}

func (c *candSorter) Len() int           { return len(c.cands) }
func (c *candSorter) Less(a, b int) bool { return c.d[a] < c.d[b] }
func (c *candSorter) Swap(a, b int) {
	c.cands[a], c.cands[b] = c.cands[b], c.cands[a]
	c.d[a], c.d[b] = c.d[b], c.d[a]
}

// serve performs one donor search on behalf of a requester. It returns a
// reply, or a forwarded request with the destination rank (fwdTo >= 0).
func (s *Solver) serve(r *par.Rank, myGrid int, myBox grid.IBox, pt ptReq) (rep ptRep, fwd ptReq, fwdTo int) {
	fwdTo = -1
	dg := s.Cfg.Sys.Grids[pt.Grid]
	var res overset.LimitedResult
	if pt.Grid == myGrid {
		start := pt.Start
		if pt.Scratch {
			// From-scratch request: sample this subdomain for the nearest
			// starting cell ("nothing is known about the possible donor
			// location and the solution must be performed from scratch").
			start = nearestStartInBox(dg, myBox, pt.Pos)
			r.Compute(125 * 4) // sampling cost
		}
		res = overset.FindDonorLimited(dg, pt.Grid, pt.Pos, start, myBox,
			chainRestartBudget-pt.Restarts)
	} else {
		// Request routed to the wrong grid's rank (stale hint after
		// repartition): fail fast, the origin advances its hierarchy.
		res.OK = false
	}
	s.SearchSteps += res.Steps
	r.Compute(float64(res.Steps) * flopsPerSearchStep)

	if res.Exited && pt.Hops < maxForwardHops {
		to := s.rankOfCell(pt.Grid, res.ExitCell)
		if to >= 0 && to != s.Rank {
			s.Forwards++
			f := pt
			f.Start = res.ExitCell
			f.Hops++
			f.Restarts += res.Restarts
			return ptRep{}, f, to
		}
	}
	if res.OK {
		// This rank now owes the origin interpolated data at every
		// timestep until the next connectivity solve.
		s.sendList[pt.Origin] = append(s.sendList[pt.Origin],
			sendEntry{origin: pt.Origin, id: pt.ID, donor: res.Donor})
	}
	return ptRep{ID: pt.ID, OK: res.OK, Donor: res.Donor, Rank: s.Rank}, ptReq{}, -1
}

// nearestStartInBox samples a coarse lattice of the subdomain and returns
// the cell nearest the target position.
func nearestStartInBox(g *grid.Grid, box grid.IBox, pos geom.Vec3) [3]int {
	const samples = 4
	best := [3]int{box.ILo, box.JLo, box.KLo}
	bestD := pos.Sub(g.At(box.ILo, box.JLo, box.KLo)).Norm2()
	for sk := 0; sk <= samples; sk++ {
		k := box.KLo + (box.KHi-box.KLo)*sk/samples
		for sj := 0; sj <= samples; sj++ {
			j := box.JLo + (box.JHi-box.JLo)*sj/samples
			for si := 0; si <= samples; si++ {
				i := box.ILo + (box.IHi-box.ILo)*si/samples
				d := pos.Sub(g.At(i, j, k)).Norm2()
				if d < bestD {
					bestD = d
					best = [3]int{i, j, k}
				}
			}
		}
	}
	return best
}

// cutHolesLocal performs distributed hole cutting over this rank's points.
func (s *Solver) cutHolesLocal(r *par.Rank, gi int, box grid.IBox) {
	g := s.Cfg.Sys.Grids[gi]
	// Rank 0 updates cutter transforms and hole maps once (every processor
	// holds a copy in the MPI original; the cost is charged to all).
	if r.ID == 0 {
		for _, bc := range s.Cfg.Cutters {
			if bc.FollowGrid >= 0 {
				bc.Cutter.SetTransform(s.Cfg.Sys.Grids[bc.FollowGrid].Xform)
			}
		}
		s.Cfg.RebuildHoleMaps()
	}
	if s.Cfg.HoleMapRes > 0 {
		r.Compute(float64(s.Cfg.HoleMapRes*s.Cfg.HoleMapRes*s.Cfg.HoleMapRes) * 9 * float64(len(s.Cfg.Cutters)))
	}
	r.Barrier()

	// Reset my points, then cut. Row bases and the IBlank/coordinate
	// slices are hoisted out of the contiguous i-runs.
	tested := 0
	ib, gx, gy, gz := g.IBlank, g.X, g.Y, g.Z
	for k := box.KLo; k <= box.KHi; k++ {
		for j := box.JLo; j <= box.JHi; j++ {
			row := g.NI * (j + g.NJ*k)
			for i := box.ILo; i <= box.IHi; i++ {
				ib[row+i] = grid.IBField
			}
		}
	}
	directTests := 0
	for _, bc := range s.Cfg.Cutters {
		if bc.Owns(gi) {
			continue
		}
		cb := bc.Cutter.Bounds()
		inside := bc.Cutter.Inside
		direct := true
		if hm := bc.HoleMap(); hm != nil {
			inside = hm.InsideQuiet
			direct = false
		}
		for k := box.KLo; k <= box.KHi; k++ {
			for j := box.JLo; j <= box.JHi; j++ {
				row := g.NI * (j + g.NJ*k)
				for i := box.ILo; i <= box.IHi; i++ {
					n := row + i
					if ib[n] == grid.IBHole {
						continue
					}
					p := geom.Vec3{X: gx[n], Y: gy[n], Z: gz[n]}
					if !cb.Contains(p) {
						continue
					}
					tested++
					if direct {
						directTests++
					}
					if inside(p) {
						ib[n] = grid.IBHole
					}
				}
			}
		}
	}
	// Analytic cutter queries cost several times a hole-map lattice lookup
	// (the optimization DCF3D's hole maps exist for).
	r.Compute(float64(tested)*flopsPerHoleTest + float64(directTests)*3*flopsPerHoleTest)
	r.Barrier()
}

// markFringesLocal marks fringe layers over this rank's points, with a
// barrier between layers (each layer reads the previous layer's marks,
// possibly across subdomain boundaries).
func (s *Solver) markFringesLocal(r *par.Rank, g *grid.Grid, gi int, box grid.IBox) {
	depth := s.Cfg.FringeDepth
	if depth < 1 {
		depth = 2
	}
	marked := 0
	ib := g.IBlank
	for layer := 0; layer < depth; layer++ {
		marks := s.marks[:0]
		for k := box.KLo; k <= box.KHi; k++ {
			for j := box.JLo; j <= box.JHi; j++ {
				row := g.NI * (j + g.NJ*k)
				for i := box.ILo; i <= box.IHi; i++ {
					if ib[row+i] != grid.IBField {
						continue
					}
					if overset.AdjacentToNonField(g, i, j, k, layer) {
						marks = append(marks, row+i)
					}
				}
			}
		}
		s.marks = marks
		r.Barrier() // reads done everywhere before writes land
		for _, n := range marks {
			ib[n] = grid.IBFringe
		}
		marked += len(marks)
		r.Barrier()
	}
	for f := grid.IMin; f <= grid.KMax; f++ {
		if g.BCs[f] != grid.BCOverset {
			continue
		}
		overset.MarkFaceFringeBox(g, f, depth, box)
	}
	r.Compute(float64(box.Count()*depth) * flopsPerFringeMark)
	r.Barrier()
}
