package par

import (
	"testing"

	"overd/internal/machine"
)

func TestSendInvalidRankPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	w := testWorld(2)
	w.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Send(7, TagUser, nil, 0)
		}
	})
}

func TestTryRecvSpecificSource(t *testing.T) {
	w := testWorld(3)
	var fromRight, fromWrong bool
	w.Run(func(r *Rank) {
		switch r.ID {
		case 1, 2:
			r.Send(0, TagUser, r.ID, 8)
			r.Barrier()
		case 0:
			r.Barrier()
			// Only accept from rank 2; rank 1's message stays pending.
			if m, ok := r.TryRecv(2, TagUser); ok {
				fromRight = m.From == 2
			}
			if m, ok := r.TryRecv(1, TagUser); ok {
				fromWrong = m.From != 1
			}
		}
	})
	if !fromRight {
		t.Error("should receive from rank 2")
	}
	if fromWrong {
		t.Error("source filtering broken")
	}
}

func TestClockMonotonicUnderTraffic(t *testing.T) {
	// Clocks never run backwards regardless of message interleaving.
	w := NewWorld(4, machine.SP())
	ranks := w.Run(func(r *Rank) {
		prev := r.Clock
		check := func() {
			if r.Clock < prev {
				t.Errorf("rank %d clock went backwards", r.ID)
			}
			prev = r.Clock
		}
		for i := 0; i < 20; i++ {
			r.Compute(1e5)
			check()
			r.Send((r.ID+1)%4, TagUser, i, 64)
			check()
			r.Recv((r.ID+3)%4, TagUser)
			check()
			if i%5 == 0 {
				r.Barrier()
				check()
			}
		}
	})
	for _, r := range ranks {
		if r.Clock <= 0 {
			t.Errorf("rank %d clock %v", r.ID, r.Clock)
		}
	}
}

func TestMessageOrderPreservedPerSender(t *testing.T) {
	w := testWorld(2)
	var got []int
	w.Run(func(r *Rank) {
		if r.ID == 0 {
			for i := 0; i < 10; i++ {
				r.Send(1, TagUser, i, 8)
			}
		} else {
			for i := 0; i < 10; i++ {
				got = append(got, r.Recv(0, TagUser).Data.(int))
			}
		}
	})
	for i, v := range got {
		if v != i {
			t.Fatalf("message order broken: %v", got)
		}
	}
}

func TestElapseAttributesPhase(t *testing.T) {
	w := testWorld(1)
	ranks := w.Run(func(r *Rank) {
		r.SetPhase(PhaseBalance)
		r.Elapse(0.25)
		r.SetPhase(PhaseMotion)
		r.Elapse(0.5)
	})
	r := ranks[0]
	if r.PhaseTime(PhaseBalance) != 0.25 || r.PhaseTime(PhaseMotion) != 0.5 {
		t.Errorf("phase times: balance %v motion %v",
			r.PhaseTime(PhaseBalance), r.PhaseTime(PhaseMotion))
	}
	if r.Clock != 0.75 {
		t.Errorf("clock %v", r.Clock)
	}
}

func TestBarrierCostGrowsWithWorldSize(t *testing.T) {
	cost := func(n int) float64 {
		w := NewWorld(n, machine.SP2())
		ranks := w.Run(func(r *Rank) { r.Barrier() })
		return ranks[0].Clock
	}
	if n1, n16 := cost(2), cost(16); n16 <= n1 {
		t.Errorf("barrier on 16 ranks (%v) should cost more than on 2 (%v)", n16, n1)
	}
	// A single-rank barrier is free.
	if c := cost(1); c != 0 {
		t.Errorf("1-rank barrier cost %v", c)
	}
}

func TestCommTimeScalesWithBytes(t *testing.T) {
	w := testWorld(2)
	var small, large float64
	w.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Send(1, TagUser, nil, 100)
			r.Send(1, TagUser, nil, 1<<20)
		} else {
			m1 := r.Recv(0, TagUser)
			m2 := r.Recv(0, TagUser)
			small = m1.Arrive
			large = m2.Arrive
		}
	})
	if large-small < 0.9*float64(1<<20)/40e6 {
		t.Errorf("1MB message should arrive much later: %v vs %v", small, large)
	}
}
