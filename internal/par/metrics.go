package par

import (
	"overd/internal/metrics"
)

// worldMetrics caches the runtime's metric handles so the hot paths pay one
// nil test plus a direct shard write, never a registry lookup. All series
// are windowed: core's step loop marks the measurement window so exported
// values reconcile exactly with trace.Summarize over the same window.
type worldMetrics struct {
	reg *metrics.Registry

	msgs    metrics.Counter // {phase, tag} messages handed to the wire
	bytes   metrics.Counter // {phase, tag} modeled payload bytes
	dropped metrics.Counter // {tag} fault-injected losses
	retries metrics.Counter // {tag} SendReliable retransmissions
	barrier metrics.Counter // {phase} barrier entries

	recvWait  metrics.Histogram // {phase} per-blocking-receive wait
	barWait   metrics.Histogram // {phase} per-barrier wait
	faultWait metrics.Histogram // {phase} per-backoff fault wait
}

// SetMetrics attaches a metrics registry before Run: the registry is reset
// for this world's rank count (crash-restart attempts therefore cover the
// final attempt only, like tracing) and every rank records message, barrier
// and wait statistics into its own shards. Pass nil to detach. Purely
// observational: virtual clocks are bit-identical with or without it.
func (w *World) SetMetrics(reg *metrics.Registry) {
	if reg == nil {
		w.met = nil
		return
	}
	reg.Reset(w.n)
	phase := metrics.Label{Name: "phase", Namer: func(p int) string { return Phase(p).String() }}
	tag := metrics.Label{Name: "tag", Namer: tagLabel}
	w.met = &worldMetrics{
		reg: reg,
		msgs: reg.Counter("overd_par_msgs_sent_total", metrics.Opts{
			Help:     "messages handed to the wire (including fault-dropped ones)",
			Windowed: true, Labels: []metrics.Label{phase, tag},
		}),
		bytes: reg.Counter("overd_par_bytes_sent_total", metrics.Opts{
			Help:     "modeled payload bytes handed to the wire",
			Windowed: true, Labels: []metrics.Label{phase, tag},
		}),
		dropped: reg.Counter("overd_par_msgs_dropped_total", metrics.Opts{
			Help:     "fault-injected message losses observed by the sender",
			Windowed: true, Labels: []metrics.Label{tag},
		}),
		retries: reg.Counter("overd_par_send_retries_total", metrics.Opts{
			Help:     "SendReliable retransmissions after a dropped attempt",
			Windowed: true, Labels: []metrics.Label{tag},
		}),
		barrier: reg.Counter("overd_par_barrier_entries_total", metrics.Opts{
			Help:     "barrier/collective rendezvous entries per rank",
			Windowed: true, Labels: []metrics.Label{phase},
		}),
		recvWait: reg.Histogram("overd_par_recv_wait_seconds", metrics.Opts{
			Help:     "virtual seconds blocked per receive on in-flight messages",
			Windowed: true, Labels: []metrics.Label{phase},
		}),
		barWait: reg.Histogram("overd_par_barrier_wait_seconds", metrics.Opts{
			Help:     "virtual seconds blocked per barrier on slower ranks",
			Windowed: true, Labels: []metrics.Label{phase},
		}),
		faultWait: reg.Histogram("overd_par_fault_wait_seconds", metrics.Opts{
			Help:     "virtual seconds spent per retry backoff / loss discovery",
			Windowed: true, Labels: []metrics.Label{phase},
		}),
	}
}

// MetricsRegistry returns the attached registry (nil when disabled) so the
// numerical layers can register their own domain metrics.
func (r *Rank) MetricsRegistry() *metrics.Registry {
	if r.w.met == nil {
		return nil
	}
	return r.w.met.reg
}

// MetricsWindowStart zeroes this rank's windowed metrics; core calls it at
// the instant the measured-step window opens (trace window start).
func (r *Rank) MetricsWindowStart() {
	if r.w.met != nil {
		r.w.met.reg.MarkWindowStart(r.ID)
	}
}

// MetricsWindowEnd freezes this rank's windowed metrics; core calls it at
// the instant the measured-step window closes (trace window end).
func (r *Rank) MetricsWindowEnd() {
	if r.w.met != nil {
		r.w.met.reg.MarkWindowEnd(r.ID)
	}
}
