package par

import (
	"strings"
	"testing"

	"overd/internal/machine"
)

func testWorld(n int) *World { return NewWorld(n, machine.SP2()) }

func TestSendRecvDelivers(t *testing.T) {
	w := testWorld(2)
	var got string
	w.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Send(1, TagUser, "hello", 5)
		} else {
			m := r.Recv(0, TagUser)
			got = m.Data.(string)
		}
	})
	if got != "hello" {
		t.Errorf("received %q", got)
	}
}

func TestRecvAdvancesClockToArrival(t *testing.T) {
	w := testWorld(2)
	var recvClock, sendArrive float64
	w.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Elapse(1.0) // sender is ahead
			r.Send(1, TagUser, nil, 4000)
		} else {
			m := r.Recv(0, TagUser)
			recvClock = r.Clock
			sendArrive = m.Arrive
		}
	})
	if recvClock < 1.0 {
		t.Errorf("receiver clock %v should include sender's head start", recvClock)
	}
	if recvClock != sendArrive {
		t.Errorf("receiver clock %v != message arrival %v", recvClock, sendArrive)
	}
	want := 1.0 + machine.SP2().CommTime(4000)
	if diff := sendArrive - want; diff < -1e-12 || diff > 1e-12 {
		t.Errorf("arrival %v, want %v", sendArrive, want)
	}
}

func TestRecvDoesNotRewindClock(t *testing.T) {
	w := testWorld(2)
	var recvClock float64
	w.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Send(1, TagUser, nil, 8)
		} else {
			r.Elapse(5.0) // receiver is far ahead
			m := r.Recv(0, TagUser)
			_ = m
			recvClock = r.Clock
		}
	})
	if recvClock != 5.0 {
		t.Errorf("receiver clock %v, want 5.0 (no rewind, arrival already past)", recvClock)
	}
}

func TestTagMatching(t *testing.T) {
	w := testWorld(2)
	var first, second string
	w.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Send(1, TagUser, "a", 1)
			r.Send(1, TagUser+1, "b", 1)
		} else {
			// Receive out of order: tag-based matching must buffer "a".
			second = r.Recv(0, TagUser+1).Data.(string)
			first = r.Recv(0, TagUser).Data.(string)
		}
	})
	if first != "a" || second != "b" {
		t.Errorf("got %q/%q", first, second)
	}
}

func TestSelfSend(t *testing.T) {
	w := testWorld(1)
	var got string
	w.Run(func(r *Rank) {
		r.Send(0, TagUser, "self", 4)
		got = r.Recv(0, TagUser).Data.(string)
	})
	if got != "self" {
		t.Errorf("self-send got %q", got)
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	w := testWorld(4)
	ranks := w.Run(func(r *Rank) {
		r.Elapse(float64(r.ID)) // rank i at time i
		r.Barrier()
	})
	for _, r := range ranks {
		if r.Clock < 3.0 {
			t.Errorf("rank %d clock %v < 3.0 after barrier", r.ID, r.Clock)
		}
	}
	// All equal.
	for _, r := range ranks[1:] {
		if r.Clock != ranks[0].Clock {
			t.Errorf("clocks differ after barrier: %v vs %v", r.Clock, ranks[0].Clock)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	w := testWorld(3)
	ranks := w.Run(func(r *Rank) {
		for i := 0; i < 10; i++ {
			r.Elapse(float64(r.ID) * 0.1)
			r.Barrier()
		}
	})
	for _, r := range ranks[1:] {
		if r.Clock != ranks[0].Clock {
			t.Fatalf("clocks diverged over repeated barriers")
		}
	}
}

func TestAllReduce(t *testing.T) {
	w := testWorld(5)
	sums := make([]float64, 5)
	maxs := make([]float64, 5)
	w.Run(func(r *Rank) {
		sums[r.ID] = r.AllReduceSum(float64(r.ID + 1))
		maxs[r.ID] = r.AllReduceMax(float64(r.ID))
	})
	for i := 0; i < 5; i++ {
		if sums[i] != 15 {
			t.Errorf("rank %d sum = %v, want 15", i, sums[i])
		}
		if maxs[i] != 4 {
			t.Errorf("rank %d max = %v, want 4", i, maxs[i])
		}
	}
}

func TestAllGatherOrdered(t *testing.T) {
	w := testWorld(4)
	var got [4][]any
	w.Run(func(r *Rank) {
		got[r.ID] = r.AllGather(r.ID*10, 8)
	})
	for rank := 0; rank < 4; rank++ {
		for i := 0; i < 4; i++ {
			if got[rank][i].(int) != i*10 {
				t.Errorf("rank %d slot %d = %v", rank, i, got[rank][i])
			}
		}
	}
}

func TestAllGatherBackToBack(t *testing.T) {
	// Two immediate collectives must not interfere.
	w := testWorld(3)
	var a, b []any
	w.Run(func(r *Rank) {
		x := r.AllGather(r.ID, 8)
		y := r.AllGather(r.ID+100, 8)
		if r.ID == 0 {
			a, b = x, y
		}
	})
	for i := 0; i < 3; i++ {
		if a[i].(int) != i || b[i].(int) != i+100 {
			t.Fatalf("collectives interfered: %v %v", a, b)
		}
	}
}

func TestPhaseAccounting(t *testing.T) {
	w := testWorld(1)
	ranks := w.Run(func(r *Rank) {
		r.SetPhase(PhaseFlow)
		r.SetWorkingSet(1e9) // big: base rate
		r.Compute(29e6)      // 1 second at SP2 base rate
		r.SetPhase(PhaseConnect)
		r.Compute(29e6 / 2)
	})
	r := ranks[0]
	ft := r.PhaseTime(PhaseFlow)
	ct := r.PhaseTime(PhaseConnect)
	if ft < 0.9 || ft > 1.1 {
		t.Errorf("flow time = %v, want ~1", ft)
	}
	if ct < 0.4 || ct > 0.6 {
		t.Errorf("connect time = %v, want ~0.5", ct)
	}
	if r.PhaseFlops(PhaseFlow) != 29e6 {
		t.Errorf("flow flops = %v", r.PhaseFlops(PhaseFlow))
	}
	if r.TotalFlops() != 29e6*1.5 {
		t.Errorf("total flops = %v", r.TotalFlops())
	}
}

func TestTryRecv(t *testing.T) {
	w := testWorld(2)
	var gotEmpty, gotMsg bool
	w.Run(func(r *Rank) {
		if r.ID == 0 {
			_, ok := r.TryRecv(AnyRank, TagUser)
			gotEmpty = !ok
			r.Barrier()
			r.Barrier()
			// After peer's send + barriers, message is physically present.
			_, ok = r.TryRecv(AnyRank, TagUser)
			gotMsg = ok
		} else {
			r.Barrier()
			r.Send(0, TagUser, 42, 8)
			r.Barrier()
		}
	})
	if !gotEmpty {
		t.Error("TryRecv should report no message before send")
	}
	if !gotMsg {
		t.Error("TryRecv should find message after send")
	}
}

func TestRankPanicPropagates(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("expected panic to propagate")
		}
		if !strings.Contains(p.(string), "boom") {
			t.Errorf("panic %v should mention cause", p)
		}
	}()
	w := testWorld(3)
	w.Run(func(r *Rank) {
		if r.ID == 1 {
			panic("boom")
		}
		r.Barrier() // would deadlock without poisoning
	})
}

func TestPanicUnblocksRecv(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic to propagate")
		}
	}()
	w := testWorld(2)
	w.Run(func(r *Rank) {
		if r.ID == 1 {
			panic("boom")
		}
		r.Recv(1, TagUser) // would block forever without inbox close
	})
}

func TestPhaseString(t *testing.T) {
	for p, want := range map[Phase]string{
		PhaseFlow: "flow", PhaseMotion: "motion", PhaseConnect: "connect",
		PhaseBalance: "balance", PhaseOther: "other",
	} {
		if p.String() != want {
			t.Errorf("Phase(%d).String() = %q, want %q", int(p), p.String(), want)
		}
	}
}

func TestComputeZeroAndNegative(t *testing.T) {
	w := testWorld(1)
	ranks := w.Run(func(r *Rank) {
		r.Compute(0)
		r.Compute(-10)
		r.Elapse(-1)
	})
	if ranks[0].Clock != 0 {
		t.Errorf("clock = %v, want 0", ranks[0].Clock)
	}
}

func TestNewWorldValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWorld(0) should panic")
		}
	}()
	NewWorld(0, machine.SP2())
}
