package par

import (
	"math"
	"testing"

	"overd/internal/machine"
	"overd/internal/trace"
)

// traceModel has round numbers so clock assertions are exact: 1e8 flop/s,
// 1 ms latency, 1 MB/s bandwidth, no cache or short-loop effects.
func traceModel() machine.Model {
	return machine.Model{
		Name: "T", BaseMflops: 100, CacheBoost: 0, CacheBytes: 1,
		LatencySec: 1e-3, BandwidthBps: 1e6,
	}
}

func tracedWorld(t *testing.T, n int) (*World, *trace.Recorder) {
	t.Helper()
	w := NewWorld(n, traceModel())
	rec := trace.NewRecorder()
	w.SetTrace(rec)
	return w, rec
}

func kindsOf(evs []trace.Event) []trace.Kind {
	ks := make([]trace.Kind, len(evs))
	for i, e := range evs {
		ks[i] = e.Kind
	}
	return ks
}

func approx(t *testing.T, got, want float64, what string) {
	t.Helper()
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("%s = %.15g, want %.15g", what, got, want)
	}
}

// TestTraceSendRecvEvents checks the exact event sequence and clocks of a
// one-message exchange: the sender emits a send with overhead, the receiver
// emits a wait bounded by the modeled wire time and a recv marker, and the
// two sides share a flow id.
func TestTraceSendRecvEvents(t *testing.T) {
	w, rec := tracedWorld(t, 2)
	const bytes = 1000 // wire time = 1e-3 + 1000/1e6 = 2e-3
	w.Run(func(r *Rank) {
		if r.ID == 0 {
			r.Send(1, TagHalo, nil, bytes)
		} else {
			r.Recv(0, TagHalo)
		}
	})

	e0 := rec.Events(0)
	if len(e0) != 1 || e0[0].Kind != trace.KindSend {
		t.Fatalf("rank 0 events = %v, want [send]", kindsOf(e0))
	}
	approx(t, e0[0].Start, 0, "send start")
	approx(t, e0[0].Dur, 0.25e-3, "send overhead")
	if e0[0].Peer != 1 || e0[0].Bytes != bytes || e0[0].Flow == 0 {
		t.Errorf("send event fields = %+v", e0[0])
	}

	e1 := rec.Events(1)
	if len(e1) != 2 || e1[0].Kind != trace.KindWait || e1[1].Kind != trace.KindRecv {
		t.Fatalf("rank 1 events = %v, want [recv-wait recv]", kindsOf(e1))
	}
	approx(t, e1[0].Start, 0, "wait start")
	approx(t, e1[0].Dur, 2e-3, "wait duration (latency + bytes/bw)")
	approx(t, e1[1].Start, 2e-3, "recv marker time")
	if e1[0].Peer != 0 || e1[0].Flow != e0[0].Flow || e1[1].Flow != e0[0].Flow {
		t.Errorf("flow linkage broken: send %+v wait %+v recv %+v", e0[0], e1[0], e1[1])
	}
	if got := rec.FinalClock(1); math.Abs(got-2e-3) > 1e-12 {
		t.Errorf("rank 1 final clock %v, want 2e-3", got)
	}
}

// TestTraceBarrierEvents: with staggered clocks, slower ranks emit a
// barrier-wait attributing the release to the slowest rank, every rank emits
// the same log-tree sync cost, and all clocks agree afterward.
func TestTraceBarrierEvents(t *testing.T) {
	const n = 4
	w, rec := tracedWorld(t, n)
	ranks := w.Run(func(r *Rank) {
		r.Elapse(float64(r.ID)) // rank i at clock i; rank 3 is slowest
		r.Barrier()
	})

	syncCost := 1e-3 * 2 // log2ceil(4) = 2 latencies
	for i, r := range ranks {
		approx(t, r.Clock, 3+syncCost, "final clock")
		evs := rec.Events(i)
		var wait, sync *trace.Event
		for k := range evs {
			switch evs[k].Kind {
			case trace.KindBarrier:
				wait = &evs[k]
			case trace.KindSync:
				sync = &evs[k]
			}
		}
		if sync == nil {
			t.Fatalf("rank %d missing barrier-sync event", i)
		}
		approx(t, sync.Dur, syncCost, "sync cost")
		if i == n-1 {
			if wait != nil {
				t.Errorf("slowest rank %d should not wait, got %+v", i, *wait)
			}
			continue
		}
		if wait == nil {
			t.Fatalf("rank %d missing barrier-wait event", i)
		}
		approx(t, wait.Start, float64(i), "wait start")
		approx(t, wait.Dur, float64(n-1-i), "wait duration")
		if wait.Peer != n-1 {
			t.Errorf("rank %d barrier released by %d, want %d", i, wait.Peer, n-1)
		}
		approx(t, r.BarrierWaitTime(PhaseOther), float64(n-1-i), "BarrierWaitTime")
	}
}

// TestTraceAllGatherDeterministic: AllGather on 3 ranks produces identical,
// reproducible event streams and clocks across two runs, and the collective
// emits its rendezvous waits and data-movement event.
func TestTraceAllGatherDeterministic(t *testing.T) {
	run := func() (*trace.Recorder, []float64) {
		w := NewWorld(3, traceModel())
		rec := trace.NewRecorder()
		w.SetTrace(rec)
		var sums [3]float64
		ranks := w.Run(func(r *Rank) {
			r.Elapse(float64(r.ID) * 0.5)
			sums[r.ID] = r.AllReduceSum(float64(r.ID + 1))
		})
		clocks := make([]float64, 3)
		for i, rk := range ranks {
			clocks[i] = rk.Clock
			if sums[i] != 6 {
				t.Fatalf("rank %d AllReduceSum = %v, want 6", i, sums[i])
			}
		}
		return rec, clocks
	}
	recA, clocksA := run()
	recB, clocksB := run()
	for i := range clocksA {
		if clocksA[i] != clocksB[i] {
			t.Errorf("rank %d clock differs across runs: %v vs %v", i, clocksA[i], clocksB[i])
		}
		ea, eb := recA.Events(i), recB.Events(i)
		if len(ea) != len(eb) {
			t.Fatalf("rank %d event count differs: %d vs %d", i, len(ea), len(eb))
		}
		for k := range ea {
			if ea[k] != eb[k] {
				t.Errorf("rank %d event %d differs: %+v vs %+v", i, k, ea[k], eb[k])
			}
		}
		var gathers, waits int
		for _, e := range ea {
			switch e.Kind {
			case trace.KindGather:
				gathers++
			case trace.KindBarrier:
				waits++
			}
		}
		if gathers != 1 {
			t.Errorf("rank %d: %d gather events, want 1", i, gathers)
		}
		// Rank 2 (slowest into the first rendezvous) never waits there;
		// everyone is synchronized by the second rendezvous.
		if i != 2 && waits == 0 {
			t.Errorf("rank %d: expected at least one rendezvous wait", i)
		}
	}
	// All clocks equal after the collective.
	if clocksA[0] != clocksA[1] || clocksA[1] != clocksA[2] {
		t.Errorf("clocks diverge after AllGather: %v", clocksA)
	}
}

// TestSelfSendIsFree pins the self-send semantics the Send comment
// documents: no clock charge and immediate availability, because a local
// hand-off crosses no wire and no messaging stack.
func TestSelfSendIsFree(t *testing.T) {
	w := testWorld(1)
	w.Run(func(r *Rank) {
		r.Elapse(1.0)
		before := r.Clock
		r.Send(0, TagUser, "x", 1<<20) // size must not matter
		if r.Clock != before {
			t.Errorf("self-send advanced clock by %v, want 0", r.Clock-before)
		}
		m := r.Recv(0, TagUser)
		if r.Clock != before {
			t.Errorf("self-recv advanced clock by %v, want 0", r.Clock-before)
		}
		if m.Arrive != before {
			t.Errorf("self-send arrival %v, want %v (immediate)", m.Arrive, before)
		}
		if r.WaitTime(PhaseOther) != 0 {
			t.Errorf("self-send recorded wait time %v", r.WaitTime(PhaseOther))
		}
	})
}

// TestWaitTimeAccounting checks Rank.WaitTime splits receive wait from
// barrier wait and that both are subsets of the active phase's time.
func TestWaitTimeAccounting(t *testing.T) {
	w := testWorld(2)
	var recvWait, barWait, phaseTime float64
	w.Run(func(r *Rank) {
		r.SetPhase(PhaseConnect)
		if r.ID == 0 {
			r.Elapse(1.0)
			r.Send(1, TagUser, nil, 4000)
			r.Barrier()
		} else {
			r.Recv(0, TagUser) // waits ~1s for the slow sender
			r.Barrier()
			recvWait = r.RecvWaitTime(PhaseConnect)
			barWait = r.BarrierWaitTime(PhaseConnect)
			phaseTime = r.PhaseTime(PhaseConnect)
		}
	})
	if recvWait <= 0.9 {
		t.Errorf("recv wait %v, want ~1s", recvWait)
	}
	if recvWait+barWait > phaseTime {
		t.Errorf("wait %v exceeds phase time %v", recvWait+barWait, phaseTime)
	}
	if recvWait != recvWait+barWait-barWait { // NaN guard
		t.Errorf("wait accounting produced NaN")
	}
}

// TestUntracedHotPathNoAllocs asserts the zero-cost-when-disabled claim:
// with no recorder attached, Compute, Elapse and a cross-rank Send/Recv pair
// allocate nothing on the steady-state hot path.
func TestUntracedHotPathNoAllocs(t *testing.T) {
	pinOneProc(t)
	w := NewWorld(2, traceModel())
	w.Run(func(r *Rank) {
		if r.ID == 0 {
			// Warm the inbox/pending paths before measuring.
			r.Send(1, TagUser, nil, 8)
			if n := testing.AllocsPerRun(100, func() {
				r.Compute(1000)
				r.Elapse(1e-6)
			}); n != 0 {
				t.Errorf("untraced Compute/Elapse allocate %.1f objects/op", n)
			}
			if n := testing.AllocsPerRun(100, func() {
				r.Send(1, TagUser, nil, 8)
			}); n != 0 {
				t.Errorf("untraced Send allocates %.1f objects/op", n)
			}
			r.Send(1, TagUser+1, nil, 0) // stop marker
		} else {
			r.Recv(0, TagUser)
			for {
				if _, ok := r.TryRecv(0, TagUser+1); ok {
					break
				}
				if _, ok := r.TryRecv(0, TagUser); !ok {
					continue
				}
			}
			// Drain the measured sends.
			for {
				if _, ok := r.TryRecv(0, TagUser); !ok {
					break
				}
			}
		}
	})
}

// BenchmarkUntracedCompute reports the untraced hot-path cost; the 0
// allocs/op figure is the benchmark form of the zero-cost assertion.
func BenchmarkUntracedCompute(b *testing.B) {
	w := NewWorld(1, traceModel())
	w.Run(func(r *Rank) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Compute(100)
		}
	})
}

// BenchmarkTracedCompute reports the per-event tracing overhead for
// comparison (one append into the rank-owned buffer).
func BenchmarkTracedCompute(b *testing.B) {
	w := NewWorld(1, traceModel())
	rec := trace.NewRecorder()
	w.SetTrace(rec)
	w.Run(func(r *Rank) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Compute(100)
		}
	})
}
