package par

import (
	"errors"
	"runtime"
	"testing"
)

// These tests stress the cross-rank shared structures — mailboxes, the
// envelope arena, the run-slot gate — under real goroutine concurrency.
// They are most valuable under `go test -race` at GOMAXPROCS > 1, which is
// how CI runs them; at GOMAXPROCS=1 they still exercise every interleaving
// point the Go scheduler can produce on one core.

// pinOneProc pins GOMAXPROCS to 1 for the duration of the test.
// testing.AllocsPerRun counts every allocation in the process during its
// runs, so at GOMAXPROCS>1 a concurrently scheduled goroutine (GC worker,
// a peer rank) can charge allocations to the measured hot path and flake
// the zero-alloc assertion — the measurement needs serial execution even
// though the measured code is parallel-safe.
func pinOneProc(t *testing.T) {
	t.Helper()
	old := runtime.GOMAXPROCS(1)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// TestMailboxManyConcurrentSenders funnels a fan-in storm into one mailbox:
// every other rank fires a burst of sends at rank 0, which drains them with
// wildcard receives. The sum check catches lost or duplicated deliveries;
// running the identical world twice pins the (arrival, flow id) wildcard
// tie-break — rank 0's clock must not depend on the host interleaving of
// the senders.
func TestMailboxManyConcurrentSenders(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	const nSenders = 16
	const perSender = 200
	run := func() (sum int, clock float64) {
		w := testWorld(nSenders + 1)
		w.Run(func(r *Rank) {
			if r.ID == 0 {
				for i := 0; i < nSenders*perSender; i++ {
					m := r.Recv(AnyRank, TagUser)
					sum += m.Data.(int)
				}
				clock = r.Clock
				return
			}
			for i := 0; i < perSender; i++ {
				r.Send(0, TagUser, r.ID*perSender+i, 8)
			}
		})
		return sum, clock
	}
	want := 0
	for id := 1; id <= nSenders; id++ {
		for i := 0; i < perSender; i++ {
			want += id*perSender + i
		}
	}
	sum1, clock1 := run()
	if sum1 != want {
		t.Errorf("first run delivered sum %d, want %d (lost or duplicated messages)", sum1, want)
	}
	sum2, clock2 := run()
	if sum2 != want {
		t.Errorf("second run delivered sum %d, want %d", sum2, want)
	}
	if clock1 != clock2 {
		t.Errorf("receiver clock depends on host schedule: %v vs %v", clock1, clock2)
	}
}

// TestArenaConcurrentMigration drives the arena's migration path under
// concurrency: every goroutine Gets envelopes from its own shard and hands
// them to its neighbor, which Puts them into its own shard — the
// requester/server imbalance pattern from the DCF solver, where envelopes
// allocated on one rank retire on another. The race detector owns the
// correctness claim; the test just keeps the pointers moving.
func TestArenaConcurrentMigration(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	const nRanks = 8
	const rounds = 500
	var a Arena[int]
	a.Init(nRanks)
	chans := make([]chan *int, nRanks)
	for i := range chans {
		chans[i] = make(chan *int, rounds)
	}
	done := make(chan bool, nRanks)
	for i := 0; i < nRanks; i++ {
		go func(rank int) {
			ok := true
			for j := 0; j < rounds; j++ {
				x := a.Get(rank)
				if x == nil {
					ok = false
					break
				}
				*x = rank
				chans[(rank+1)%nRanks] <- x
				y := <-chans[rank]
				if *y != (rank+nRanks-1)%nRanks {
					ok = false
				}
				a.Put(rank, y)
			}
			done <- ok
		}(i)
	}
	for i := 0; i < nRanks; i++ {
		if !<-done {
			t.Fatal("arena returned nil or a clobbered envelope under migration")
		}
	}
}

// TestArenaOverflowRecycles pins the overflow list's purpose: envelopes
// retired past one rank's shard cap must come back out of Get on a
// different rank instead of being dropped for the allocator to replace.
func TestArenaOverflowRecycles(t *testing.T) {
	var a Arena[int]
	a.Init(2)
	const n = arenaShardCap + 36
	put := make(map[*int]bool, n)
	live := make([]*int, n)
	for i := range live {
		live[i] = a.Get(0)
		put[live[i]] = true
	}
	for _, x := range live {
		a.Put(0, x)
	}
	// Rank 0's shard holds arenaShardCap of them; the rest spilled to the
	// shared overflow list, which rank 1's empty shard must drain first.
	for i := 0; i < n-arenaShardCap; i++ {
		if x := a.Get(1); !put[x] {
			t.Fatalf("Get(1) #%d returned a fresh allocation while %d envelopes sat in overflow",
				i, n-arenaShardCap-i)
		}
	}
}

// TestSetParallelismClockInvariance is the gate's core contract: any worker
// bound produces bit-identical virtual clocks. The workload mixes the three
// blocking primitives the gate instruments — point-to-point receive,
// wildcard receive, barrier — across enough rounds that a slot leak or a
// reordered wakeup would shift an arrival somewhere.
func TestSetParallelismClockInvariance(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)

	const n = 8
	run := func(workers int) []float64 {
		w := testWorld(n)
		w.SetParallelism(workers)
		clocks := make([]float64, n)
		w.Run(func(r *Rank) {
			for round := 0; round < 5; round++ {
				r.Compute(float64(1000 * (r.ID + 1) * (round + 1)))
				r.Send((r.ID+1)%n, TagUser, r.ID, 64)
				r.Recv((r.ID+n-1)%n, TagUser)
				r.Send((r.ID+2)%n, TagUser+1, r.ID, 32)
				r.Recv(AnyRank, TagUser+1)
				r.Barrier()
			}
			clocks[r.ID] = r.Clock
		})
		return clocks
	}
	base := run(0) // unbounded
	for _, workers := range []int{1, 2, 3, n} {
		got := run(workers)
		for i := range got {
			if got[i] != base[i] {
				t.Fatalf("workers=%d: rank %d clock %v != unbounded %v",
					workers, i, got[i], base[i])
			}
		}
	}
}

// TestSetParallelismPoisonNoDeadlock kills a rank while the gate is at its
// tightest (one slot for four ranks): the survivors are parked either
// waiting for the slot or blocked in Recv holding it, and the poison path
// must unwind all of them instead of deadlocking on the unreturned slot.
func TestSetParallelismPoisonNoDeadlock(t *testing.T) {
	w := testWorld(4)
	w.SetParallelism(1)
	_, err := w.RunErr(func(r *Rank) {
		if r.ID == 2 {
			panic("modeled failure")
		}
		r.Recv(3, TagUser) // never sent: parks every survivor
	})
	var rf *RankFailure
	if !errors.As(err, &rf) {
		t.Fatalf("want *RankFailure, got %v", err)
	}
	if rf.Rank != 2 {
		t.Errorf("root cause attributed to rank %d, want 2", rf.Rank)
	}
}
