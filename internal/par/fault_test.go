package par

import (
	"strings"
	"testing"
)

// scriptInjector drops the first dropFirst physical attempts it sees.
// Single-sender tests only (Drop is called from sender goroutines).
type scriptInjector struct {
	dropFirst int
	calls     int
}

func (s *scriptInjector) Drop(from, to, tag int, seq uint64) bool {
	s.calls++
	return s.calls <= s.dropFirst
}

// dropAll drops every message between distinct ranks.
type dropAll struct{}

func (dropAll) Drop(from, to, tag int, seq uint64) bool { return true }

func TestSendReliableRetriesThenDelivers(t *testing.T) {
	w := testWorld(2)
	w.SetFaults(&scriptInjector{dropFirst: 2})
	var gotData string
	var retries, dropped int
	var faultWait float64
	w.Run(func(r *Rank) {
		if r.ID == 0 {
			if !r.SendReliable(1, TagUser, "payload", 64) {
				t.Error("SendReliable reported loss despite a successful retry")
			}
			retries, dropped = r.Retries, r.Dropped
			faultWait = r.TotalFaultWaitTime()
		} else {
			gotData = r.Recv(0, TagUser).Data.(string)
		}
	})
	if gotData != "payload" {
		t.Errorf("received %q", gotData)
	}
	if retries != 2 || dropped != 2 {
		t.Errorf("retries %d dropped %d, want 2 and 2", retries, dropped)
	}
	if faultWait <= 0 {
		t.Errorf("retransmission charged no fault wait")
	}
}

func TestSendReliableExhaustedBudgetReportsLossToSender(t *testing.T) {
	w := testWorld(2)
	w.SetFaults(dropAll{})
	var tombFrom int
	var recvOK bool
	var senderWait float64
	var receiverWait float64
	w.Run(func(r *Rank) {
		if r.ID == 0 {
			if r.SendReliable(1, TagUser, "payload", 64) {
				t.Error("SendReliable reported success with every attempt dropped")
			}
			senderWait = r.TotalFaultWaitTime()
		} else {
			var m Msg
			m, recvOK = r.RecvTimeout(0, TagUser, 1e-6)
			tombFrom = m.From
			receiverWait = r.TotalFaultWaitTime()
		}
	})
	if recvOK {
		t.Error("RecvTimeout matched a tombstone as a real message")
	}
	if tombFrom != 0 {
		t.Errorf("tombstone Msg should be zero-valued, got From=%d", tombFrom)
	}
	if senderWait <= 0 || receiverWait <= 0 {
		t.Errorf("loss charged no fault wait: sender %v receiver %v", senderWait, receiverWait)
	}
}

// Awaiting a lost message with plain Recv is a protocol bug; the runtime
// reports it instead of hanging.
func TestRecvOnTombstonePanicsWithDiagnostic(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("expected panic")
		}
		msg := p.(string)
		if !strings.Contains(msg, "dropped by fault injection") ||
			!strings.Contains(msg, "RecvTimeout") {
			t.Errorf("diagnostic %q should explain the loss and the remedy", msg)
		}
	}()
	w := testWorld(2)
	w.SetFaults(dropAll{})
	w.Run(func(r *Rank) {
		if r.ID == 0 {
			r.SendReliable(1, TagUser, "payload", 64)
		} else {
			r.Recv(0, TagUser)
		}
	})
}

// Tombstones do not survive a barrier: lossy exchanges complete between
// barriers, so leftovers would only leak memory in polling protocols.
func TestTombstonesClearedAtBarrier(t *testing.T) {
	w := testWorld(2)
	w.SetFaults(dropAll{})
	w.Run(func(r *Rank) {
		if r.ID == 0 {
			r.SendReliable(1, TagUser, "payload", 64)
		}
		r.Barrier()
		if n := len(r.tombs); n != 0 {
			t.Errorf("rank %d holds %d tombstones after a barrier", r.ID, n)
		}
		if _, ok := r.TryRecv(AnyRank, TagUser); ok {
			t.Errorf("rank %d matched a cleared tombstone", r.ID)
		}
	})
}

// Self-sends bypass the wire and are never dropped, even by a drop-all plan.
func TestSelfSendNeverDropped(t *testing.T) {
	w := testWorld(2)
	w.SetFaults(dropAll{})
	w.Run(func(r *Rank) {
		if r.ID == 0 {
			if !r.SendReliable(0, TagUser, "self", 8) {
				t.Error("self SendReliable reported loss")
			}
			if m := r.Recv(0, TagUser); m.Data.(string) != "self" {
				t.Errorf("self-recv got %v", m.Data)
			}
		}
		r.Barrier()
	})
}

// A rank that panics with a Crash value surfaces as a typed RankFailure
// whose Crashed() exposes the scheduled step, and unblocks every peer.
func TestRunErrTypedCrash(t *testing.T) {
	w := testWorld(3)
	w.SetFaults(&scriptInjector{}) // fault layer on, nothing dropped
	_, err := w.RunErr(func(r *Rank) {
		if r.ID == 2 {
			r.Compute(1e6)
			panic(Crash{Step: 7, Clock: r.Clock})
		}
		r.Barrier() // would deadlock without poisoning
	})
	if err == nil {
		t.Fatal("expected a RankFailure")
	}
	rf, ok := err.(*RankFailure)
	if !ok {
		t.Fatalf("error is %T, want *RankFailure", err)
	}
	if rf.Rank != 2 {
		t.Errorf("failed rank %d, want 2", rf.Rank)
	}
	crash, ok := rf.Crashed()
	if !ok || crash.Step != 7 || crash.Clock <= 0 {
		t.Errorf("Crashed() = %+v, %v", crash, ok)
	}
}

// Satellite: a rank panicking mid-AllGather must unblock the peers stuck in
// the collective and report the root cause, not a peer's induced panic.
func TestPanicMidAllGatherReportsRootCause(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("expected panic to propagate")
		}
		msg := p.(string)
		if !strings.Contains(msg, "gather-boom") || !strings.Contains(msg, "rank 1") {
			t.Errorf("panic %q should name rank 1 and the cause", msg)
		}
	}()
	w := testWorld(4)
	w.Run(func(r *Rank) {
		if r.ID == 1 {
			panic("gather-boom")
		}
		r.AllGather(r.ID, 8) // peers block in the collective
	})
}

// Satellite: same for a peer blocked in a point-to-point Recv; the reported
// cause is the panicking rank's, and the blocked rank's own induced
// "poisoned" panic is filtered out of root-cause selection.
func TestPanicMidRecvReportsRootCause(t *testing.T) {
	w := testWorld(3)
	_, err := w.RunErr(func(r *Rank) {
		if r.ID == 2 {
			panic("recv-boom")
		}
		if r.ID == 0 {
			r.Recv(2, TagHalo) // blocks until poisoned
		}
		if r.ID == 1 {
			r.Barrier()
		}
	})
	if err == nil {
		t.Fatal("expected a RankFailure")
	}
	rf := err.(*RankFailure)
	if rf.Rank != 2 {
		t.Errorf("root cause attributed to rank %d, want 2", rf.Rank)
	}
	if !strings.Contains(err.Error(), "recv-boom") {
		t.Errorf("error %q should carry the original cause", err.Error())
	}
}

// Satellite: the closed-inbox diagnostic names the receiving rank, the tag
// and the awaited sender. Reachable as the reported cause only when every
// panic is induced, so induce one deliberately.
func TestClosedInboxDiagnosticNamesRankTagSender(t *testing.T) {
	w := testWorld(2)
	_, err := w.RunErr(func(r *Rank) {
		if r.ID == 1 {
			// The word "poisoned" marks this as induced, so root-cause
			// selection falls through to rank 0's diagnostic.
			panic("poisoned on purpose")
		}
		r.Recv(1, TagHalo)
	})
	if err == nil {
		t.Fatal("expected a RankFailure")
	}
	msg := err.Error()
	if !strings.Contains(msg, "rank 0") || !strings.Contains(msg, "inbox closed") ||
		!strings.Contains(msg, "halo") || !strings.Contains(msg, "rank 1") {
		t.Errorf("diagnostic %q should name receiver, tag and sender", msg)
	}
}

// Satellite: same-tag messages from distinct senders are matchable in any
// order — wildcard or out-of-arrival-order by sender — without losing
// pending entries.
func TestTryRecvAnyOrderAcrossSenders(t *testing.T) {
	w := testWorld(3)
	w.Run(func(r *Rank) {
		if r.ID != 0 {
			r.Send(0, TagUser, r.ID, 8)
			r.Barrier()
			return
		}
		r.Barrier() // both messages are physically delivered now

		// Out-of-arrival-order by explicit sender: ask for rank 2 first.
		m2, ok := r.TryRecv(2, TagUser)
		if !ok || m2.From != 2 {
			t.Fatalf("TryRecv(2) = %+v, %v", m2, ok)
		}
		m1, ok := r.TryRecv(1, TagUser)
		if !ok || m1.From != 1 {
			t.Fatalf("TryRecv(1) after TryRecv(2) lost the pending entry: %+v, %v", m1, ok)
		}
		if _, ok := r.TryRecv(AnyRank, TagUser); ok {
			t.Error("phantom pending entry after both matches")
		}
	})

	// Wildcard matching drains both deterministically.
	w2 := testWorld(3)
	w2.Run(func(r *Rank) {
		if r.ID != 0 {
			r.Send(0, TagUser, r.ID, 8)
			r.Barrier()
			return
		}
		r.Barrier()
		seen := map[int]bool{}
		for i := 0; i < 2; i++ {
			m, ok := r.TryRecv(AnyRank, TagUser)
			if !ok {
				t.Fatalf("wildcard match %d missing", i)
			}
			if seen[m.From] {
				t.Fatalf("sender %d matched twice", m.From)
			}
			seen[m.From] = true
		}
	})
}

// The reliable path with no injector is the plain send: zero allocations on
// the unfaulted hot path.
func TestSendReliableUnfaultedNoAllocs(t *testing.T) {
	pinOneProc(t)
	w := testWorld(2)
	w.Run(func(r *Rank) {
		if r.ID == 0 {
			r.SendReliable(1, TagUser, nil, 8)
			if n := testing.AllocsPerRun(100, func() {
				r.SendReliable(1, TagUser, nil, 8)
			}); n != 0 {
				t.Errorf("unfaulted SendReliable allocates %.1f objects/op", n)
			}
			r.Send(1, TagUser+1, nil, 0) // stop marker
		} else {
			for {
				if _, ok := r.TryRecv(0, TagUser+1); ok {
					break
				}
				r.TryRecv(0, TagUser)
			}
			for {
				if _, ok := r.TryRecv(0, TagUser); !ok {
					break
				}
			}
		}
	})
}
