// Package par is a message-passing runtime modeled on the MPI usage of the
// paper's codes. Each rank ("processor") runs as a goroutine; messages are
// delivered over channels. Alongside the real data movement, every rank
// carries a virtual clock advanced by a machine model (see package machine):
// computation advances the local clock by flops/rate, and a receive completes
// at max(local clock, sender clock at send + latency + bytes/bandwidth) — the
// standard LogP-style logical-time rule. Barriers synchronize all clocks to
// the maximum. This lets the repository execute the paper's real algorithms
// at full fidelity while measuring them on machines (IBM SP2, IBM SP, Cray
// YMP) that are simulated rather than physically present.
package par

import (
	"fmt"
	"strings"
	"sync"
	"unsafe"

	"overd/internal/machine"
	"overd/internal/trace"
)

// Phase labels the solution module that virtual time is attributed to,
// mirroring the paper's breakdown of each timestep into flow solution,
// grid motion, and domain-connectivity modules.
type Phase int

// Phases of an OVERFLOW-D1 timestep plus bookkeeping categories.
const (
	PhaseFlow    Phase = iota // flow solution (OVERFLOW analog)
	PhaseMotion               // grid motion (SIXDOF analog)
	PhaseConnect              // domain connectivity (DCF3D analog)
	PhaseBalance              // load-balancer work and repartition traffic
	PhaseOther                // setup and uncategorized
	numPhases
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseFlow:
		return "flow"
	case PhaseMotion:
		return "motion"
	case PhaseConnect:
		return "connect"
	case PhaseBalance:
		return "balance"
	case PhaseOther:
		return "other"
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// Tag distinguishes message streams, like an MPI tag.
type Tag int

// Message tags used across the repository. User code may define more
// starting at TagUser.
const (
	TagHalo       Tag = iota + 1 // flow-solver halo exchange
	TagPipeline                  // pipelined implicit line solves
	TagBBox                      // connectivity bounding-box exchange
	TagSearchReq                 // donor search request
	TagSearchRep                 // donor search reply
	TagForward                   // forwarded search request
	TagCollective                // internal: broadcasts and reductions
	TagRepart                    // load-balancer data redistribution
	TagUser       Tag = 100
)

// Msg is a delivered message. Data crosses ranks by reference — as in a real
// distributed code the receiver must not assume it may mutate shared backing
// arrays; payloads are treated as read-only by convention.
type Msg struct {
	From, To int
	Tag      Tag
	Data     any
	// Bytes is the modeled wire size used for timing.
	Bytes int
	// Arrive is the virtual time at which the message is available at the
	// receiver (sender clock at send + modeled transfer time).
	Arrive float64
	// Lost marks a fault-injected tombstone: the payload was dropped on the
	// wire (Data is nil) but the loss itself is deterministically observable
	// at the receiver, which is what lets RecvTimeout detect a drop in
	// virtual time without a wall-clock timeout.
	Lost bool
	// flow uniquely identifies the message for send→recv tracing edges.
	flow uint64
}

// Injector decides, per physical message attempt, whether the fault layer
// drops it. Implementations must be deterministic functions of their
// arguments (see internal/fault). Drop is called from the sender's
// goroutine only.
type Injector interface {
	Drop(from, to, tag int, seq uint64) bool
}

// Crash is the panic value a rank raises to model its own failure (an
// injected crash). World.RunErr converts it into a typed *RankFailure so
// callers can checkpoint/restart instead of dying.
type Crash struct {
	// Step is the timestep at which the rank died.
	Step int
	// Clock is the rank's virtual time at death.
	Clock float64
}

// RankFailure is the typed error RunErr returns when a rank panicked: the
// root-cause rank and its panic value, with poison-induced secondary
// failures on peer ranks filtered out.
type RankFailure struct {
	Rank  int
	Cause any
}

// Error formats exactly like the historic World.Run panic string.
func (e *RankFailure) Error() string {
	return fmt.Sprintf("par: rank %d panicked: %v", e.Rank, e.Cause)
}

// Crashed reports whether the failure was a modeled crash (a Crash panic)
// and returns it.
func (e *RankFailure) Crashed() (Crash, bool) {
	c, ok := e.Cause.(Crash)
	return c, ok
}

// mailboxState is the mutable state of one rank's inbox, split out so
// mailbox can pad it to a cache-line multiple: the inbox array is
// contiguous, and without padding a sender appending to rank r's buf would
// false-share with rank r+1's receiver scanning its own head under true
// parallelism.
type mailboxState struct {
	mu   sync.Mutex
	cond sync.Cond
	buf  []Msg // FIFO: buf[head:] are the queued messages
	head int
	// waiting is set (under mu) while the receiver is blocked in cond.Wait,
	// so put can skip the cond-var signal — a futex wake syscall on Linux —
	// for the common case of a receiver that is running, not parked.
	waiting  bool
	poisoned bool
}

// mailbox is one rank's unbounded physical-delivery queue: many senders,
// one receiver. Unlike a fixed-capacity channel it never blocks a sender
// and costs only its high-water mark in memory — a world of n ranks starts
// at a few empty slices instead of n pre-sized channel buffers. The
// receiver's blocking wait observes poison (a peer panic) through the same
// condition variable, so a failure still unblocks the whole world.
type mailbox struct {
	mailboxState
	_ [(cacheLine - unsafe.Sizeof(mailboxState{})%cacheLine) % cacheLine]byte
}

// cacheLine is the false-sharing granularity the padded structures round to.
const cacheLine = 64

// put enqueues m. Never blocks. The cond-var signal is issued only when the
// receiver is actually parked in wait: a missed signal is impossible because
// waiting is set under mu before cond.Wait atomically releases it.
func (mb *mailbox) put(m Msg) {
	mb.mu.Lock()
	mb.buf = append(mb.buf, m)
	wake := mb.waiting
	mb.mu.Unlock()
	if wake {
		mb.cond.Signal()
	}
}

func (mb *mailbox) takeLocked() (Msg, bool) {
	if mb.head == len(mb.buf) {
		if mb.head != 0 {
			mb.head = 0
			mb.buf = mb.buf[:0]
		}
		return Msg{}, false
	}
	m := mb.buf[mb.head]
	mb.buf[mb.head] = Msg{} // drop the payload reference for the GC
	mb.head++
	return m, true
}

// take removes the oldest queued message, if any, without blocking.
func (mb *mailbox) take() (Msg, bool) {
	mb.mu.Lock()
	m, ok := mb.takeLocked()
	mb.mu.Unlock()
	return m, ok
}

// wait blocks until a message is available or the world is poisoned;
// ok == false means poison. When the world has a parallelism gate, the
// receiver hands its run slot back before parking and re-acquires it after
// waking — strictly outside mb.mu, so a sender holding a slot can never
// deadlock against a receiver holding the mailbox lock.
func (mb *mailbox) wait(w *World) (Msg, bool) {
	mb.mu.Lock()
	for {
		if m, ok := mb.takeLocked(); ok {
			mb.mu.Unlock()
			return m, true
		}
		if mb.poisoned {
			mb.mu.Unlock()
			return Msg{}, false
		}
		mb.waiting = true
		if w.gate == nil {
			mb.cond.Wait()
			mb.waiting = false
			continue
		}
		w.gateRelease()
		mb.cond.Wait()
		mb.waiting = false
		mb.mu.Unlock()
		if !w.gateAcquire() {
			// done closed: the world is being poisoned (this mailbox's own
			// flag may lag by a few instructions). Report poison directly.
			return Msg{}, false
		}
		mb.mu.Lock()
	}
}

func (mb *mailbox) isPoisoned() bool {
	mb.mu.Lock()
	p := mb.poisoned
	mb.mu.Unlock()
	return p
}

func (mb *mailbox) poison() {
	mb.mu.Lock()
	mb.poisoned = true
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// World owns a set of ranks and the shared synchronization state.
type World struct {
	n     int
	model machine.Model

	inbox []mailbox

	bar barrier

	// done is closed by poisonAll after a rank panic; senders and
	// receivers select on it so a failure unblocks the whole world
	// without closing inboxes out from under in-flight sends.
	done      chan struct{}
	closeOnce sync.Once

	// collective scratch, guarded by the barrier's phases. collectF is the
	// alloc-free fast path for float64 reductions (the common case); collect
	// carries arbitrary boxed payloads for AllGather.
	collectMu sync.Mutex
	collect   []any
	collectF  []float64

	// rec, when non-nil, receives one trace event per clock advance on
	// every rank (see package trace). Nil tracing costs one pointer test
	// per operation and no allocations.
	rec *trace.Recorder

	// inj, when non-nil, is the fault layer's message-loss decider. Nil
	// costs one pointer test per send and no allocations.
	inj Injector

	// met, when non-nil, holds the attached metrics registry's prefetched
	// handles (see SetMetrics). Nil costs one pointer test per operation.
	met *worldMetrics

	// gate, when non-nil, is a counting semaphore bounding how many rank
	// goroutines run simultaneously (see SetParallelism). Nil — the default
	// — costs one pointer test per blocking operation and nothing on the
	// non-blocking hot paths.
	gate chan struct{}
}

// SetParallelism bounds the number of rank goroutines running host code
// simultaneously to k. It must be called before Run. k <= 0 or k >= Size()
// removes the bound (every rank runnable at once, the default); the Go
// scheduler still multiplexes runnable ranks over GOMAXPROCS.
//
// The gate is a host-side resource control — the workers_per_job hint the
// job service threads down so one tenant's wide world cannot monopolize the
// machine's cores. It never touches a virtual clock: ranks hand their run
// slot back whenever they park (mailbox wait, barrier wait) and re-acquire
// it on wake, so any k produces bit-identical clocks, traces and metrics.
func (w *World) SetParallelism(k int) {
	if k <= 0 || k >= w.n {
		w.gate = nil
		return
	}
	w.gate = make(chan struct{}, k)
}

// gateAcquire claims a run slot, or reports false if the world died (done
// closed by poisonAll) — the only way the gate can ever be unsatisfiable.
func (w *World) gateAcquire() bool {
	select {
	case w.gate <- struct{}{}:
		return true
	case <-w.done:
		return false
	}
}

// gateRelease returns the caller's run slot. The default arm tolerates the
// teardown path where a rank that already gave up its slot panics through a
// deferred release: over-freeing into a dying world is harmless because
// every acquire fails fast once done is closed.
func (w *World) gateRelease() {
	select {
	case <-w.gate:
	default:
	}
}

// SetFaults attaches a message-loss injector before Run. Pass a non-nil
// Injector only; a nil fault layer should simply not call SetFaults.
func (w *World) SetFaults(inj Injector) { w.inj = inj }

// SetTrace attaches an event recorder before Run: the recorder is reset for
// this world's rank count and every rank emits its virtual-time events into
// its own lock-free buffer. Pass nil to detach.
func (w *World) SetTrace(rec *trace.Recorder) {
	w.rec = rec
	if rec != nil {
		rec.Reset(w.n)
		rec.SetPhaseLabel(func(p int) string { return Phase(p).String() })
		rec.SetTagLabel(tagLabel)
	}
}

// tagLabel names the repository's well-known message tags for trace export.
func tagLabel(t int) string {
	switch Tag(t) {
	case TagHalo:
		return "halo"
	case TagPipeline:
		return "pipeline"
	case TagBBox:
		return "bbox"
	case TagSearchReq:
		return "search-req"
	case TagSearchRep:
		return "search-rep"
	case TagForward:
		return "forward"
	case TagCollective:
		return "collective"
	case TagRepart:
		return "repart"
	}
	return fmt.Sprintf("tag%d", t)
}

// poisonAll unblocks every rank after a peer panic: barrier waiters via the
// poison flag, collective waiters via the done channel, and receivers via
// each mailbox's poison flag. Mailboxes are never torn down — senders keep
// enqueueing harmlessly while the world dies.
func (w *World) poisonAll() {
	w.bar.poison()
	w.closeOnce.Do(func() { close(w.done) })
	for i := range w.inbox {
		w.inbox[i].poison()
	}
}

// NewWorld creates a world of n ranks measured against the given machine.
func NewWorld(n int, m machine.Model) *World {
	if n <= 0 {
		panic("par: world size must be positive")
	}
	w := &World{n: n, model: m}
	w.done = make(chan struct{})
	w.inbox = make([]mailbox, n)
	for i := range w.inbox {
		w.inbox[i].cond.L = &w.inbox[i].mu
	}
	w.bar.init(n)
	w.collect = make([]any, n)
	w.collectF = make([]float64, n)
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// Model returns the machine model the world is timed against.
func (w *World) Model() machine.Model { return w.model }

// Run executes body on every rank concurrently and returns the per-rank
// states once all ranks have finished. Panics in any rank are propagated.
func (w *World) Run(body func(r *Rank)) []*Rank {
	ranks, err := w.RunErr(body)
	if err != nil {
		panic(err.Error())
	}
	return ranks
}

// RunErr is Run with a typed failure path: when a rank panics, the
// root-cause rank and panic value come back as a *RankFailure instead of a
// process panic, so callers can recover from modeled crashes (Crash panic
// values) with checkpoint/restart. The returned ranks are the per-rank
// states as of the failure (clocks and counters are valid; the run is
// incomplete).
func (w *World) RunErr(body func(r *Rank)) ([]*Rank, error) {
	ranks := make([]*Rank, w.n)
	for i := range ranks {
		ranks[i] = &Rank{
			ID:    i,
			w:     w,
			phase: PhaseOther,
		}
	}
	if w.rec != nil {
		for i := range ranks {
			ranks[i].tr = w.rec.Buf(i)
		}
	}
	var wg sync.WaitGroup
	panics := make([]any, w.n)
	for i := range ranks {
		wg.Add(1)
		go func(r *Rank) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[r.ID] = p
					// Unblock peers stuck in a barrier or Recv so
					// the process fails loudly instead of deadlocking.
					w.poisonAll()
				}
			}()
			if w.gate != nil {
				// Claim a run slot before executing any rank code. The
				// deferred release runs first on unwind (LIFO), so a
				// panicking rank frees its slot before the recover above
				// poisons the world.
				if !w.gateAcquire() {
					panic("par: world poisoned before rank start")
				}
				defer w.gateRelease()
			}
			body(r)
		}(ranks[i])
	}
	wg.Wait()
	// Report the root-cause panic, not the poison panics it induced in
	// peers blocked on barriers, receives, or sends to closed inboxes. A
	// modeled Crash outranks everything: peers may hit real-looking
	// secondary failures (closed channels) after the poison, and a crash
	// must stay recoverable.
	pick := -1
	for id, p := range panics {
		if p == nil {
			continue
		}
		if _, ok := p.(Crash); ok {
			pick = id
			break
		}
	}
	if pick == -1 {
		for id, p := range panics {
			if p != nil && !inducedPanic(p) {
				pick = id
				break
			}
		}
	}
	if pick == -1 {
		for id, p := range panics {
			if p != nil {
				pick = id
				break
			}
		}
	}
	if pick >= 0 {
		return ranks, &RankFailure{Rank: pick, Cause: panics[pick]}
	}
	if w.rec != nil {
		for i, r := range ranks {
			w.rec.SetFinalClock(i, r.Clock)
		}
	}
	return ranks, nil
}

// inducedPanic reports whether a rank's panic is a secondary effect of the
// world being poisoned by another rank's failure: our own poison
// diagnostics (which all contain "poisoned"), or the runtime's
// send-on-closed-channel error raised by a Send racing poisonAll.
func inducedPanic(p any) bool {
	if s, ok := p.(string); ok {
		return strings.Contains(s, "poisoned")
	}
	if err, ok := p.(error); ok {
		return strings.Contains(err.Error(), "closed channel")
	}
	return false
}

// Rank is the per-processor handle passed to the Run body. All methods are
// for use only by that rank's goroutine.
type Rank struct {
	ID int
	w  *World

	// Clock is the rank's virtual time in seconds.
	Clock float64

	phase      Phase
	phaseTime  [numPhases]float64
	phaseFlops [numPhases]float64

	// waitRecv, waitBar and waitFault decompose each phase's time into
	// blocked categories the aggregate phaseTime cannot express: virtual
	// seconds spent waiting for in-flight messages, for slower ranks at
	// barriers/collectives, and lost to the fault layer (retry backoff,
	// loss-discovery grace). Always maintained, tracer or not.
	waitRecv  [numPhases]float64
	waitBar   [numPhases]float64
	waitFault [numPhases]float64

	// Dropped counts fault-injected message drops charged to this rank as
	// sender (every failed physical attempt, including retries). Retries
	// counts the reliable-send retransmissions among them.
	Dropped int
	Retries int

	// workingSet is the current working-set size in bytes used by the
	// cache model; set by the solver per kernel.
	workingSet float64

	pending []Msg // received from inbox but not yet matched
	// tombs holds fault-injected loss tombstones awaiting discovery by
	// RecvTimeout. Cleared at every barrier rendezvous: lossy exchanges
	// must complete between barriers (true of all protocols here), which
	// bounds tombstone memory in polling protocols that never consume them.
	tombs []Msg

	// tr is this rank's private trace buffer (nil when tracing is off).
	tr *trace.RankBuf
	// sendSeq numbers this rank's sends for trace flow edges.
	sendSeq uint64
}

// emit records one trace event; callers must check r.tr != nil first so the
// untraced hot path pays only that branch.
func (r *Rank) emit(k trace.Kind, start, dur float64, tag Tag, peer int, bytes int, flow uint64) {
	r.tr.Emit(trace.Event{
		Kind: k, Rank: int32(r.ID), Phase: int32(r.phase), Tag: int32(tag),
		Peer: int32(peer), Bytes: int64(bytes), Flow: flow, Start: start, Dur: dur,
	})
}

// Size returns the number of ranks in the world.
func (r *Rank) Size() int { return r.w.n }

// Model returns the machine model.
func (r *Rank) Model() machine.Model { return r.w.model }

// SetPhase attributes subsequent virtual time to the given phase.
func (r *Rank) SetPhase(p Phase) {
	r.phase = p
	if r.tr != nil {
		r.emit(trace.KindPhase, r.Clock, 0, 0, trace.NoPeer, 0, 0)
	}
}

// CurrentPhase returns the phase virtual time is being attributed to.
func (r *Rank) CurrentPhase() Phase { return r.phase }

// SetWorkingSet declares the working-set size (bytes) of subsequent compute
// calls, feeding the machine's cache model.
func (r *Rank) SetWorkingSet(bytes float64) { r.workingSet = bytes }

// advance moves the clock forward by dt seconds in the current phase.
func (r *Rank) advance(dt float64) {
	if dt <= 0 {
		return
	}
	r.Clock += dt
	r.phaseTime[r.phase] += dt
}

// recvAdvance moves the clock to a message's arrival time, attributing any
// jump to receive wait (the time this rank was blocked on the wire).
func (r *Rank) recvAdvance(m Msg) {
	if wait := m.Arrive - r.Clock; wait > 0 {
		if r.tr != nil {
			r.emit(trace.KindWait, r.Clock, wait, m.Tag, m.From, m.Bytes, m.flow)
		}
		if r.w.met != nil {
			r.w.met.recvWait.Observe1(r.ID, int(r.phase), wait)
		}
		r.waitRecv[r.phase] += wait
		r.advance(wait)
	}
	if r.tr != nil {
		r.emit(trace.KindRecv, r.Clock, 0, m.Tag, m.From, m.Bytes, m.flow)
	}
}

// Compute charges the rank for the given floating-point work.
func (r *Rank) Compute(flops float64) {
	if flops <= 0 {
		return
	}
	r.phaseFlops[r.phase] += flops
	dt := r.w.model.ComputeTimeFor(r.ID, r.Clock, flops, r.workingSet)
	if r.tr != nil && dt > 0 {
		r.emit(trace.KindCompute, r.Clock, dt, 0, trace.NoPeer, 0, 0)
	}
	r.advance(dt)
}

// Elapse charges the rank a fixed amount of virtual time without flops
// (memory traffic, search bookkeeping measured in seconds directly).
func (r *Rank) Elapse(seconds float64) {
	if r.tr != nil && seconds > 0 {
		r.emit(trace.KindElapse, r.Clock, seconds, 0, trace.NoPeer, 0, 0)
	}
	r.advance(seconds)
}

// PhaseTime returns the virtual seconds accumulated in phase p so far.
func (r *Rank) PhaseTime(p Phase) float64 { return r.phaseTime[p] }

// WaitTime returns the cumulative virtual seconds this rank has spent
// blocked while phase p was active — waiting for in-flight messages,
// waiting at barriers/collectives for slower ranks, and lost to the fault
// layer. It is a subset of PhaseTime(p): the remainder is busy (compute,
// memory, send-overhead) time.
func (r *Rank) WaitTime(p Phase) float64 {
	return r.waitRecv[p] + r.waitBar[p] + r.waitFault[p]
}

// RecvWaitTime returns the blocked-on-message component of WaitTime(p).
func (r *Rank) RecvWaitTime(p Phase) float64 { return r.waitRecv[p] }

// BarrierWaitTime returns the blocked-at-barrier component of WaitTime(p).
func (r *Rank) BarrierWaitTime(p Phase) float64 { return r.waitBar[p] }

// FaultWaitTime returns the fault-layer component of WaitTime(p): reliable
// send retry backoff and RecvTimeout loss-discovery grace.
func (r *Rank) FaultWaitTime(p Phase) float64 { return r.waitFault[p] }

// TotalWaitTime returns the rank's cumulative blocked time over all phases.
func (r *Rank) TotalWaitTime() float64 {
	var s float64
	for p := Phase(0); p < numPhases; p++ {
		s += r.waitRecv[p] + r.waitBar[p] + r.waitFault[p]
	}
	return s
}

// TotalFaultWaitTime returns the rank's cumulative fault-layer wait over
// all phases.
func (r *Rank) TotalFaultWaitTime() float64 {
	var s float64
	for p := Phase(0); p < numPhases; p++ {
		s += r.waitFault[p]
	}
	return s
}

// Faulty reports whether a fault injector is attached to the world, i.e.
// whether messages on this run can be lost. Protocols consult it to decide
// between the plain blocking receive and the loss-tolerant path.
func (r *Rank) Faulty() bool { return r.w.inj != nil }

// chargeFaultWait advances the clock by dt in the current phase,
// attributing it to the fault-wait category.
func (r *Rank) chargeFaultWait(dt float64, tag Tag, peer int) {
	if dt <= 0 {
		return
	}
	if r.tr != nil {
		r.emit(trace.KindFaultWait, r.Clock, dt, tag, peer, 0, 0)
	}
	if r.w.met != nil {
		r.w.met.faultWait.Observe1(r.ID, int(r.phase), dt)
	}
	r.waitFault[r.phase] += dt
	r.advance(dt)
}

// PhaseFlops returns the floating-point operations accumulated in phase p.
func (r *Rank) PhaseFlops(p Phase) float64 { return r.phaseFlops[p] }

// TotalFlops returns all floating-point operations charged to this rank.
func (r *Rank) TotalFlops() float64 {
	var s float64
	for p := Phase(0); p < numPhases; p++ {
		s += r.phaseFlops[p]
	}
	return s
}

// Send transmits data to rank `to` with the given tag. bytes is the modeled
// wire size. Send is asynchronous: the sender is charged only a startup
// overhead, and the message becomes available at the receiver at
// sender-clock + latency + bytes/bandwidth.
func (r *Rank) Send(to int, tag Tag, data any, bytes int) {
	if to < 0 || to >= r.w.n {
		panic(fmt.Sprintf("par: send to invalid rank %d", to))
	}
	r.sendSeq++
	m := Msg{
		From:   r.ID,
		To:     to,
		Tag:    tag,
		Data:   data,
		Bytes:  bytes,
		Arrive: r.Clock + r.w.model.CommTimeFor(r.ID, to, r.Clock, bytes),
		flow:   uint64(r.ID+1)<<40 | r.sendSeq,
	}
	if to == r.ID {
		// Self-sends are free by design: a rank handing data to itself is
		// a local buffer hand-off with no wire and no messaging-stack
		// traversal — its (tiny) memory cost is already inside the compute
		// model — so no latency share is charged and the message is
		// available immediately (asserted by TestSelfSendIsFree). They are
		// also never dropped: there is no wire to lose them on.
		m.Arrive = r.Clock
		if r.tr != nil {
			r.emit(trace.KindSend, r.Clock, 0, tag, to, bytes, m.flow)
		}
		r.countSend(tag, bytes)
		r.pending = append(r.pending, m)
		return
	}
	if r.w.inj != nil && r.w.inj.Drop(r.ID, to, int(tag), r.sendSeq) {
		// The payload is lost on the wire; a tombstone still arrives so the
		// receiver can discover the loss in virtual time (RecvTimeout). A
		// plain Recv on a tombstone panics: unguarded protocols must fail
		// loudly, not silently read nil data.
		m.Data, m.Lost = nil, true
		r.Dropped++
		if r.w.met != nil {
			r.w.met.dropped.Add1(r.ID, int(tag), 1)
		}
	}
	// Sender-side software overhead: a fraction of latency.
	ov := r.w.model.LatencySec * 0.25
	if r.tr != nil {
		r.emit(trace.KindSend, r.Clock, ov, tag, to, bytes, m.flow)
	}
	r.countSend(tag, bytes)
	r.advance(ov)
	r.deliver(to, tag, m)
}

// countSend records one wire hand-off in the metrics plane. It sits at
// exactly the sites that emit trace.KindSend, so windowed totals match the
// summary's MsgsSent/BytesSent columns.
func (r *Rank) countSend(tag Tag, bytes int) {
	if m := r.w.met; m != nil {
		m.msgs.Add2(r.ID, int(r.phase), int(tag), 1)
		m.bytes.Add2(r.ID, int(r.phase), int(tag), float64(bytes))
	}
}

// deliver enqueues a message on the destination inbox. The mailbox is
// unbounded, so a sender never blocks — and never deadlocks against a dead
// world; a poisoned run fails at the next receive or barrier instead.
func (r *Rank) deliver(to int, tag Tag, m Msg) {
	r.w.inbox[to].put(m)
}

// maxSendRetries bounds SendReliable's retransmissions after the first
// dropped attempt.
const maxSendRetries = 3

// SendReliable is Send with a modeled acknowledgment protocol for lossy
// runs: each dropped attempt costs the sender an exponentially backed-off
// ack-timeout (charged to the fault-wait category) before retransmitting,
// up to maxSendRetries retries. It reports whether the payload was
// delivered; on final failure a loss tombstone is delivered instead so the
// receiver side can also discover the loss. With no injector attached (or
// for self-sends, which cannot be lost) it is exactly Send and returns
// true, so loss-tolerant protocols can use it unconditionally without
// perturbing fault-free runs.
func (r *Rank) SendReliable(to int, tag Tag, data any, bytes int) bool {
	if r.w.inj == nil || to == r.ID {
		r.Send(to, tag, data, bytes)
		return true
	}
	if to < 0 || to >= r.w.n {
		panic(fmt.Sprintf("par: send to invalid rank %d", to))
	}
	for attempt := 0; ; attempt++ {
		r.sendSeq++
		m := Msg{
			From:   r.ID,
			To:     to,
			Tag:    tag,
			Data:   data,
			Bytes:  bytes,
			Arrive: r.Clock + r.w.model.CommTimeFor(r.ID, to, r.Clock, bytes),
			flow:   uint64(r.ID+1)<<40 | r.sendSeq,
		}
		dropped := r.w.inj.Drop(r.ID, to, int(tag), r.sendSeq)
		if !dropped || attempt == maxSendRetries {
			if dropped {
				m.Data, m.Lost = nil, true
				r.Dropped++
				if r.w.met != nil {
					r.w.met.dropped.Add1(r.ID, int(tag), 1)
				}
			}
			ov := r.w.model.LatencySec * 0.25
			if r.tr != nil {
				r.emit(trace.KindSend, r.Clock, ov, tag, to, bytes, m.flow)
			}
			r.countSend(tag, bytes)
			r.advance(ov)
			r.deliver(to, tag, m)
			return !dropped
		}
		r.Dropped++
		r.Retries++
		if r.w.met != nil {
			r.w.met.dropped.Add1(r.ID, int(tag), 1)
			r.w.met.retries.Add1(r.ID, int(tag), 1)
		}
		// Ack timeout: one modeled round trip, doubled per attempt.
		rtt := 2 * r.w.model.CommTimeFor(r.ID, to, r.Clock, bytes)
		r.chargeFaultWait(rtt*float64(uint(1)<<uint(attempt)), tag, to)
	}
}

// Recv blocks until a message with the given tag arrives from rank `from`
// (any rank if from == AnyRank). The local clock advances to the message's
// arrival time if that is later. Receiving a fault-injected loss tombstone
// with plain Recv panics — a protocol that may lose messages must use
// RecvTimeout to handle the loss.
func (r *Rank) Recv(from int, tag Tag) Msg {
	for {
		if m, ok := r.takePending(from, tag); ok {
			r.recvAdvance(m)
			return m
		}
		if t, ok := r.takeTomb(from, tag); ok {
			panic(fmt.Sprintf(
				"par: rank %d: message %s from rank %d was dropped by fault injection but awaited with Recv; lossy streams must use RecvTimeout",
				r.ID, tagLabel(int(tag)), t.From))
		}
		r.blockingRecv(from, tag)
	}
}

// blockingRecv waits for the next physical delivery, panicking with a
// who-was-waiting-on-what diagnostic if the world is poisoned first.
func (r *Rank) blockingRecv(from int, tag Tag) {
	m, ok := r.w.inbox[r.ID].wait(r.w)
	if !ok {
		panic(fmt.Sprintf(
			"par: rank %d: inbox closed (world poisoned by a peer panic) while receiving %s from %s",
			r.ID, tagLabel(int(tag)), rankLabel(from)))
	}
	r.stash(m)
}

// RecvTimeout is Recv with loss tolerance: if the awaited message was
// dropped by fault injection, the receiver blocks (in virtual time) until
// the message's modeled arrival plus the given grace period, charged to
// the fault-wait category, and returns ok == false. Determinism note:
// "timeout" here is not a wall-clock race — the transport delivers a
// tombstone for every loss, so the outcome is a pure function of the fault
// plan. With no injector attached RecvTimeout never times out and is
// exactly Recv.
func (r *Rank) RecvTimeout(from int, tag Tag, grace float64) (Msg, bool) {
	for {
		if m, ok := r.takePending(from, tag); ok {
			r.recvAdvance(m)
			return m, true
		}
		if t, ok := r.takeTomb(from, tag); ok {
			r.chargeFaultWait(t.Arrive+grace-r.Clock, tag, t.From)
			return Msg{}, false
		}
		r.blockingRecv(from, tag)
	}
}

// AnyRank matches any source rank in Recv and TryRecv.
const AnyRank = -1

// rankLabel names a source-rank matcher for diagnostics.
func rankLabel(from int) string {
	if from == AnyRank {
		return "any rank"
	}
	return fmt.Sprintf("rank %d", from)
}

// TryRecv returns a matching message if one has already been physically
// delivered, without blocking. The clock advances to the arrival time on
// success. Used by polling service loops (the paper's asynchronous donor
// search servicing). Loss tombstones are never matched: to a polling
// protocol a dropped message is simply one that never shows up.
func (r *Rank) TryRecv(from int, tag Tag) (Msg, bool) {
	// Drain everything physically available first. The poison check keeps
	// a polling service loop from spinning forever against a dead world.
	for {
		m, ok := r.w.inbox[r.ID].take()
		if !ok {
			break
		}
		r.stash(m)
	}
	if m, ok := r.takePending(from, tag); ok {
		r.recvAdvance(m)
		return m, true
	}
	if r.w.inbox[r.ID].isPoisoned() {
		panic(fmt.Sprintf(
			"par: rank %d: inbox closed (world poisoned by a peer panic) while polling %s from %s",
			r.ID, tagLabel(int(tag)), rankLabel(from)))
	}
	return Msg{}, false
}

// stash routes a physically delivered message to the matchable pending
// list, or to the tombstone list if it is a fault-injected loss marker.
func (r *Rank) stash(m Msg) {
	if m.Lost {
		r.tombs = append(r.tombs, m)
		return
	}
	r.pending = append(r.pending, m)
}

func (r *Rank) takePending(from int, tag Tag) (Msg, bool) {
	if from == AnyRank {
		// The pending list is in physical-arrival order, which races between
		// senders; match the deterministic minimum (Arrive, sender, sequence)
		// instead so wildcard receives — and the trace event streams they
		// emit — are reproducible run to run. Per-sender FIFO is preserved
		// (the flow id is monotone per sender).
		best := -1
		for i, m := range r.pending {
			if m.Tag != tag {
				continue
			}
			if best < 0 || m.Arrive < r.pending[best].Arrive ||
				(m.Arrive == r.pending[best].Arrive && m.flow < r.pending[best].flow) {
				best = i
			}
		}
		if best < 0 {
			return Msg{}, false
		}
		m := r.pending[best]
		r.pending = append(r.pending[:best], r.pending[best+1:]...)
		return m, true
	}
	for i, m := range r.pending {
		if m.Tag == tag && m.From == from {
			r.pending = append(r.pending[:i], r.pending[i+1:]...)
			return m, true
		}
	}
	return Msg{}, false
}

// takeTomb matches and removes a loss tombstone, same matching rule as
// takePending.
func (r *Rank) takeTomb(from int, tag Tag) (Msg, bool) {
	for i, m := range r.tombs {
		if m.Tag == tag && (from == AnyRank || m.From == from) {
			r.tombs = append(r.tombs[:i], r.tombs[i+1:]...)
			return m, true
		}
	}
	return Msg{}, false
}

// barrierSync rendezvouses with all ranks and advances the clock to the
// global max, attributing the jump to barrier wait and tracing the rank
// whose clock set the release time.
func (r *Rank) barrierSync() {
	if len(r.tombs) > 0 {
		// Loss tombstones do not survive a rendezvous: every lossy exchange
		// here completes between barriers, so anything left is from a
		// polling protocol that will never consume it.
		r.tombs = r.tombs[:0]
	}
	if r.w.met != nil {
		r.w.met.barrier.Add1(r.ID, int(r.phase), 1)
	}
	maxClock, maxRank := r.w.bar.sync(r.Clock, r.ID, r.w)
	if wait := maxClock - r.Clock; wait > 0 {
		if r.tr != nil {
			r.emit(trace.KindBarrier, r.Clock, wait, TagCollective, maxRank, 0, 0)
		}
		if r.w.met != nil {
			r.w.met.barWait.Observe1(r.ID, int(r.phase), wait)
		}
		r.waitBar[r.phase] += wait
		r.advance(wait)
	}
}

// Barrier synchronizes all ranks; every clock advances to the global max
// plus a small synchronization cost (a log2(n) latency tree).
func (r *Rank) Barrier() {
	r.barrierSync()
	if r.w.n > 1 {
		dt := r.w.model.LatencySec * log2ceil(r.w.n)
		if r.tr != nil {
			r.emit(trace.KindSync, r.Clock, dt, TagCollective, trace.NoPeer, 0, 0)
		}
		r.advance(dt)
	}
}

// AllGather collects one value from every rank and returns the slice indexed
// by rank; the cost is modeled as a log-depth tree of messages of the given
// per-item byte size.
func (r *Rank) AllGather(x any, bytesPerItem int) []any {
	w := r.w
	w.collectMu.Lock()
	w.collect[r.ID] = x
	w.collectMu.Unlock()
	r.barrierSync()
	out := make([]any, w.n)
	w.collectMu.Lock()
	copy(out, w.collect)
	w.collectMu.Unlock()
	// Second rendezvous so no rank overwrites w.collect for a subsequent
	// collective before everyone has copied.
	r.barrierSync()
	r.gatherCost(bytesPerItem)
	return out
}

// gatherCost charges the modeled log-depth tree cost of one gather-style
// collective. Shared by AllGather and the typed reductions so both advance
// virtual time and emit trace events identically.
func (r *Rank) gatherCost(bytesPerItem int) {
	w := r.w
	if w.n > 1 {
		depth := log2ceil(w.n)
		dt := depth * (w.model.LatencySec + float64(bytesPerItem*w.n)/w.model.BandwidthBps)
		if r.tr != nil {
			r.emit(trace.KindGather, r.Clock, dt, TagCollective, trace.NoPeer, bytesPerItem*w.n, 0)
		}
		r.advance(dt)
	}
}

// gatherF runs the AllGather rendezvous protocol on the world's float64
// scratch (no boxing, no per-call slice) and invokes fold on the collected
// rank-indexed values while they are stable between the two rendezvous.
// The modeled cost is identical to AllGather(x, 8).
func (r *Rank) gatherF(x float64, fold func(vals []float64)) {
	w := r.w
	w.collectMu.Lock()
	w.collectF[r.ID] = x
	w.collectMu.Unlock()
	r.barrierSync()
	w.collectMu.Lock()
	fold(w.collectF)
	w.collectMu.Unlock()
	// Second rendezvous so no rank overwrites w.collectF for a subsequent
	// collective before everyone has folded.
	r.barrierSync()
	r.gatherCost(8)
}

// AllReduceSum sums a float64 across ranks without allocating.
func (r *Rank) AllReduceSum(x float64) float64 {
	var s float64
	r.gatherF(x, func(vals []float64) {
		// Rank-index order, matching the historical AllGather-based
		// reduction bit for bit.
		for _, v := range vals {
			s += v
		}
	})
	return s
}

// AllReduceMax maximizes a float64 across ranks without allocating.
func (r *Rank) AllReduceMax(x float64) float64 {
	m := x
	r.gatherF(x, func(vals []float64) {
		for _, v := range vals {
			if v > m {
				m = v
			}
		}
	})
	return m
}

func log2ceil(n int) float64 {
	d := 0.0
	for v := 1; v < n; v <<= 1 {
		d++
	}
	return d
}

// barrier is a reusable n-party rendezvous that also computes the max clock
// and which rank held it (the rank that releases the others).
type barrier struct {
	mu         sync.Mutex
	cond       *sync.Cond
	n          int
	waiting    int
	gen        int
	maxClock   float64
	maxRank    int
	result     float64
	resultRank int
	poisoned   bool
}

func (b *barrier) init(n int) {
	b.n = n
	b.cond = sync.NewCond(&b.mu)
}

// sync blocks until all n ranks have called it, then returns the maximum
// clock passed by any rank in this generation and the rank that passed it.
// Equal clocks tie-break to the lowest rank id — never to physical call
// order, which would make wait attribution (and traced event streams)
// scheduler-dependent. When the world has a parallelism gate, each waiter
// hands its run slot back before parking — otherwise k-1 parked waiters
// could starve the one rank still computing toward the rendezvous — and
// re-acquires it after release, strictly outside b.mu.
func (b *barrier) sync(clock float64, rank int, w *World) (float64, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.poisoned {
		panic("par: barrier poisoned by peer rank panic")
	}
	if b.waiting == 0 || clock > b.maxClock ||
		(clock == b.maxClock && rank < b.maxRank) {
		b.maxClock = clock
		b.maxRank = rank
	}
	b.waiting++
	if b.waiting == b.n {
		b.result, b.resultRank = b.maxClock, b.maxRank
		b.maxClock = 0
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
		return b.result, b.resultRank
	}
	gen := b.gen
	for gen == b.gen && !b.poisoned {
		if w.gate == nil {
			b.cond.Wait()
			continue
		}
		w.gateRelease()
		b.cond.Wait()
		b.mu.Unlock()
		ok := w.gateAcquire()
		b.mu.Lock()
		if !ok {
			// done closed: the world is being poisoned (this barrier's own
			// flag may lag by a few instructions).
			panic("par: barrier poisoned by peer rank panic")
		}
	}
	if b.poisoned {
		panic("par: barrier poisoned by peer rank panic")
	}
	return b.result, b.resultRank
}

func (b *barrier) poison() {
	b.mu.Lock()
	b.poisoned = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
