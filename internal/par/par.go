// Package par is a message-passing runtime modeled on the MPI usage of the
// paper's codes. Each rank ("processor") runs as a goroutine; messages are
// delivered over channels. Alongside the real data movement, every rank
// carries a virtual clock advanced by a machine model (see package machine):
// computation advances the local clock by flops/rate, and a receive completes
// at max(local clock, sender clock at send + latency + bytes/bandwidth) — the
// standard LogP-style logical-time rule. Barriers synchronize all clocks to
// the maximum. This lets the repository execute the paper's real algorithms
// at full fidelity while measuring them on machines (IBM SP2, IBM SP, Cray
// YMP) that are simulated rather than physically present.
package par

import (
	"fmt"
	"strings"
	"sync"

	"overd/internal/machine"
	"overd/internal/trace"
)

// Phase labels the solution module that virtual time is attributed to,
// mirroring the paper's breakdown of each timestep into flow solution,
// grid motion, and domain-connectivity modules.
type Phase int

// Phases of an OVERFLOW-D1 timestep plus bookkeeping categories.
const (
	PhaseFlow    Phase = iota // flow solution (OVERFLOW analog)
	PhaseMotion               // grid motion (SIXDOF analog)
	PhaseConnect              // domain connectivity (DCF3D analog)
	PhaseBalance              // load-balancer work and repartition traffic
	PhaseOther                // setup and uncategorized
	numPhases
)

// String implements fmt.Stringer.
func (p Phase) String() string {
	switch p {
	case PhaseFlow:
		return "flow"
	case PhaseMotion:
		return "motion"
	case PhaseConnect:
		return "connect"
	case PhaseBalance:
		return "balance"
	case PhaseOther:
		return "other"
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// Tag distinguishes message streams, like an MPI tag.
type Tag int

// Message tags used across the repository. User code may define more
// starting at TagUser.
const (
	TagHalo       Tag = iota + 1 // flow-solver halo exchange
	TagPipeline                  // pipelined implicit line solves
	TagBBox                      // connectivity bounding-box exchange
	TagSearchReq                 // donor search request
	TagSearchRep                 // donor search reply
	TagForward                   // forwarded search request
	TagCollective                // internal: broadcasts and reductions
	TagRepart                    // load-balancer data redistribution
	TagUser       Tag = 100
)

// Msg is a delivered message. Data crosses ranks by reference — as in a real
// distributed code the receiver must not assume it may mutate shared backing
// arrays; payloads are treated as read-only by convention.
type Msg struct {
	From, To int
	Tag      Tag
	Data     any
	// Bytes is the modeled wire size used for timing.
	Bytes int
	// Arrive is the virtual time at which the message is available at the
	// receiver (sender clock at send + modeled transfer time).
	Arrive float64
	// flow uniquely identifies the message for send→recv tracing edges.
	flow uint64
}

// World owns a set of ranks and the shared synchronization state.
type World struct {
	n     int
	model machine.Model

	inbox []chan Msg

	bar barrier

	closeOnce sync.Once

	// collective scratch, guarded by the barrier's phases
	collectMu sync.Mutex
	collect   []any

	// rec, when non-nil, receives one trace event per clock advance on
	// every rank (see package trace). Nil tracing costs one pointer test
	// per operation and no allocations.
	rec *trace.Recorder
}

// SetTrace attaches an event recorder before Run: the recorder is reset for
// this world's rank count and every rank emits its virtual-time events into
// its own lock-free buffer. Pass nil to detach.
func (w *World) SetTrace(rec *trace.Recorder) {
	w.rec = rec
	if rec != nil {
		rec.Reset(w.n)
		rec.SetPhaseLabel(func(p int) string { return Phase(p).String() })
		rec.SetTagLabel(tagLabel)
	}
}

// tagLabel names the repository's well-known message tags for trace export.
func tagLabel(t int) string {
	switch Tag(t) {
	case TagHalo:
		return "halo"
	case TagPipeline:
		return "pipeline"
	case TagBBox:
		return "bbox"
	case TagSearchReq:
		return "search-req"
	case TagSearchRep:
		return "search-rep"
	case TagForward:
		return "forward"
	case TagCollective:
		return "collective"
	case TagRepart:
		return "repart"
	}
	return fmt.Sprintf("tag%d", t)
}

// poisonAll unblocks every rank after a peer panic: barrier waiters via the
// poison flag, Recv waiters by closing inboxes.
func (w *World) poisonAll() {
	w.bar.poison()
	w.closeOnce.Do(func() {
		for _, ch := range w.inbox {
			close(ch)
		}
	})
}

// queueCap bounds per-rank inbox buffering. Sends block (physically, not in
// virtual time) only if a receiver falls this far behind, which would
// indicate a protocol bug.
const queueCap = 1 << 16

// NewWorld creates a world of n ranks measured against the given machine.
func NewWorld(n int, m machine.Model) *World {
	if n <= 0 {
		panic("par: world size must be positive")
	}
	w := &World{n: n, model: m}
	w.inbox = make([]chan Msg, n)
	for i := range w.inbox {
		w.inbox[i] = make(chan Msg, queueCap)
	}
	w.bar.init(n)
	w.collect = make([]any, n)
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// Model returns the machine model the world is timed against.
func (w *World) Model() machine.Model { return w.model }

// Run executes body on every rank concurrently and returns the per-rank
// states once all ranks have finished. Panics in any rank are propagated.
func (w *World) Run(body func(r *Rank)) []*Rank {
	ranks := make([]*Rank, w.n)
	for i := range ranks {
		ranks[i] = &Rank{
			ID:    i,
			w:     w,
			phase: PhaseOther,
		}
	}
	if w.rec != nil {
		for i := range ranks {
			ranks[i].tr = w.rec.Buf(i)
		}
	}
	var wg sync.WaitGroup
	panics := make([]any, w.n)
	for i := range ranks {
		wg.Add(1)
		go func(r *Rank) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[r.ID] = p
					// Unblock peers stuck in a barrier or Recv so
					// the process fails loudly instead of deadlocking.
					w.poisonAll()
				}
			}()
			body(r)
		}(ranks[i])
	}
	wg.Wait()
	// Report the root-cause panic, not the poison panics it induced in
	// peers blocked on barriers or receives.
	rootID, root := -1, any(nil)
	for id, p := range panics {
		if p == nil {
			continue
		}
		if rootID == -1 {
			rootID, root = id, p
		}
		if s, ok := p.(string); !ok || !strings.Contains(s, "poisoned") {
			rootID, root = id, p
			break
		}
	}
	if root != nil {
		panic(fmt.Sprintf("par: rank %d panicked: %v", rootID, root))
	}
	if w.rec != nil {
		for i, r := range ranks {
			w.rec.SetFinalClock(i, r.Clock)
		}
	}
	return ranks
}

// Rank is the per-processor handle passed to the Run body. All methods are
// for use only by that rank's goroutine.
type Rank struct {
	ID int
	w  *World

	// Clock is the rank's virtual time in seconds.
	Clock float64

	phase      Phase
	phaseTime  [numPhases]float64
	phaseFlops [numPhases]float64

	// waitRecv and waitBar decompose each phase's time into blocked
	// categories the aggregate phaseTime cannot express: virtual seconds
	// spent waiting for in-flight messages and for slower ranks at
	// barriers/collectives. Always maintained, tracer or not.
	waitRecv [numPhases]float64
	waitBar  [numPhases]float64

	// workingSet is the current working-set size in bytes used by the
	// cache model; set by the solver per kernel.
	workingSet float64

	pending []Msg // received from inbox but not yet matched

	// tr is this rank's private trace buffer (nil when tracing is off).
	tr *trace.RankBuf
	// sendSeq numbers this rank's sends for trace flow edges.
	sendSeq uint64
}

// emit records one trace event; callers must check r.tr != nil first so the
// untraced hot path pays only that branch.
func (r *Rank) emit(k trace.Kind, start, dur float64, tag Tag, peer int, bytes int, flow uint64) {
	r.tr.Emit(trace.Event{
		Kind: k, Rank: int32(r.ID), Phase: int32(r.phase), Tag: int32(tag),
		Peer: int32(peer), Bytes: int64(bytes), Flow: flow, Start: start, Dur: dur,
	})
}

// Size returns the number of ranks in the world.
func (r *Rank) Size() int { return r.w.n }

// Model returns the machine model.
func (r *Rank) Model() machine.Model { return r.w.model }

// SetPhase attributes subsequent virtual time to the given phase.
func (r *Rank) SetPhase(p Phase) {
	r.phase = p
	if r.tr != nil {
		r.emit(trace.KindPhase, r.Clock, 0, 0, trace.NoPeer, 0, 0)
	}
}

// CurrentPhase returns the phase virtual time is being attributed to.
func (r *Rank) CurrentPhase() Phase { return r.phase }

// SetWorkingSet declares the working-set size (bytes) of subsequent compute
// calls, feeding the machine's cache model.
func (r *Rank) SetWorkingSet(bytes float64) { r.workingSet = bytes }

// advance moves the clock forward by dt seconds in the current phase.
func (r *Rank) advance(dt float64) {
	if dt <= 0 {
		return
	}
	r.Clock += dt
	r.phaseTime[r.phase] += dt
}

// recvAdvance moves the clock to a message's arrival time, attributing any
// jump to receive wait (the time this rank was blocked on the wire).
func (r *Rank) recvAdvance(m Msg) {
	if wait := m.Arrive - r.Clock; wait > 0 {
		if r.tr != nil {
			r.emit(trace.KindWait, r.Clock, wait, m.Tag, m.From, m.Bytes, m.flow)
		}
		r.waitRecv[r.phase] += wait
		r.advance(wait)
	}
	if r.tr != nil {
		r.emit(trace.KindRecv, r.Clock, 0, m.Tag, m.From, m.Bytes, m.flow)
	}
}

// Compute charges the rank for the given floating-point work.
func (r *Rank) Compute(flops float64) {
	if flops <= 0 {
		return
	}
	r.phaseFlops[r.phase] += flops
	dt := r.w.model.ComputeTime(flops, r.workingSet)
	if r.tr != nil && dt > 0 {
		r.emit(trace.KindCompute, r.Clock, dt, 0, trace.NoPeer, 0, 0)
	}
	r.advance(dt)
}

// Elapse charges the rank a fixed amount of virtual time without flops
// (memory traffic, search bookkeeping measured in seconds directly).
func (r *Rank) Elapse(seconds float64) {
	if r.tr != nil && seconds > 0 {
		r.emit(trace.KindElapse, r.Clock, seconds, 0, trace.NoPeer, 0, 0)
	}
	r.advance(seconds)
}

// PhaseTime returns the virtual seconds accumulated in phase p so far.
func (r *Rank) PhaseTime(p Phase) float64 { return r.phaseTime[p] }

// WaitTime returns the cumulative virtual seconds this rank has spent
// blocked while phase p was active — waiting for in-flight messages plus
// waiting at barriers/collectives for slower ranks. It is a subset of
// PhaseTime(p): the remainder is busy (compute, memory, send-overhead) time.
func (r *Rank) WaitTime(p Phase) float64 { return r.waitRecv[p] + r.waitBar[p] }

// RecvWaitTime returns the blocked-on-message component of WaitTime(p).
func (r *Rank) RecvWaitTime(p Phase) float64 { return r.waitRecv[p] }

// BarrierWaitTime returns the blocked-at-barrier component of WaitTime(p).
func (r *Rank) BarrierWaitTime(p Phase) float64 { return r.waitBar[p] }

// TotalWaitTime returns the rank's cumulative blocked time over all phases.
func (r *Rank) TotalWaitTime() float64 {
	var s float64
	for p := Phase(0); p < numPhases; p++ {
		s += r.waitRecv[p] + r.waitBar[p]
	}
	return s
}

// PhaseFlops returns the floating-point operations accumulated in phase p.
func (r *Rank) PhaseFlops(p Phase) float64 { return r.phaseFlops[p] }

// TotalFlops returns all floating-point operations charged to this rank.
func (r *Rank) TotalFlops() float64 {
	var s float64
	for p := Phase(0); p < numPhases; p++ {
		s += r.phaseFlops[p]
	}
	return s
}

// Send transmits data to rank `to` with the given tag. bytes is the modeled
// wire size. Send is asynchronous: the sender is charged only a startup
// overhead, and the message becomes available at the receiver at
// sender-clock + latency + bytes/bandwidth.
func (r *Rank) Send(to int, tag Tag, data any, bytes int) {
	if to < 0 || to >= r.w.n {
		panic(fmt.Sprintf("par: send to invalid rank %d", to))
	}
	r.sendSeq++
	m := Msg{
		From:   r.ID,
		To:     to,
		Tag:    tag,
		Data:   data,
		Bytes:  bytes,
		Arrive: r.Clock + r.w.model.CommTime(bytes),
		flow:   uint64(r.ID+1)<<40 | r.sendSeq,
	}
	if to == r.ID {
		// Self-sends are free by design: a rank handing data to itself is
		// a local buffer hand-off with no wire and no messaging-stack
		// traversal — its (tiny) memory cost is already inside the compute
		// model — so no latency share is charged and the message is
		// available immediately (asserted by TestSelfSendIsFree).
		m.Arrive = r.Clock
		if r.tr != nil {
			r.emit(trace.KindSend, r.Clock, 0, tag, to, bytes, m.flow)
		}
		r.pending = append(r.pending, m)
		return
	}
	// Sender-side software overhead: a fraction of latency.
	ov := r.w.model.LatencySec * 0.25
	if r.tr != nil {
		r.emit(trace.KindSend, r.Clock, ov, tag, to, bytes, m.flow)
	}
	r.advance(ov)
	r.w.inbox[to] <- m
}

// Recv blocks until a message with the given tag arrives from rank `from`
// (any rank if from == AnyRank). The local clock advances to the message's
// arrival time if that is later.
func (r *Rank) Recv(from int, tag Tag) Msg {
	for {
		if m, ok := r.takePending(from, tag); ok {
			r.recvAdvance(m)
			return m
		}
		m, ok := <-r.w.inbox[r.ID]
		if !ok {
			panic("par: inbox closed")
		}
		r.pending = append(r.pending, m)
	}
}

// AnyRank matches any source rank in Recv and TryRecv.
const AnyRank = -1

// TryRecv returns a matching message if one has already been physically
// delivered, without blocking. The clock advances to the arrival time on
// success. Used by polling service loops (the paper's asynchronous donor
// search servicing).
func (r *Rank) TryRecv(from int, tag Tag) (Msg, bool) {
	// Drain everything physically available first.
	for {
		select {
		case m := <-r.w.inbox[r.ID]:
			r.pending = append(r.pending, m)
			continue
		default:
		}
		break
	}
	if m, ok := r.takePending(from, tag); ok {
		r.recvAdvance(m)
		return m, true
	}
	return Msg{}, false
}

func (r *Rank) takePending(from int, tag Tag) (Msg, bool) {
	for i, m := range r.pending {
		if m.Tag == tag && (from == AnyRank || m.From == from) {
			r.pending = append(r.pending[:i], r.pending[i+1:]...)
			return m, true
		}
	}
	return Msg{}, false
}

// barrierSync rendezvouses with all ranks and advances the clock to the
// global max, attributing the jump to barrier wait and tracing the rank
// whose clock set the release time.
func (r *Rank) barrierSync() {
	maxClock, maxRank := r.w.bar.sync(r.Clock, r.ID)
	if wait := maxClock - r.Clock; wait > 0 {
		if r.tr != nil {
			r.emit(trace.KindBarrier, r.Clock, wait, TagCollective, maxRank, 0, 0)
		}
		r.waitBar[r.phase] += wait
		r.advance(wait)
	}
}

// Barrier synchronizes all ranks; every clock advances to the global max
// plus a small synchronization cost (a log2(n) latency tree).
func (r *Rank) Barrier() {
	r.barrierSync()
	if r.w.n > 1 {
		dt := r.w.model.LatencySec * log2ceil(r.w.n)
		if r.tr != nil {
			r.emit(trace.KindSync, r.Clock, dt, TagCollective, trace.NoPeer, 0, 0)
		}
		r.advance(dt)
	}
}

// AllGather collects one value from every rank and returns the slice indexed
// by rank; the cost is modeled as a log-depth tree of messages of the given
// per-item byte size.
func (r *Rank) AllGather(x any, bytesPerItem int) []any {
	w := r.w
	w.collectMu.Lock()
	w.collect[r.ID] = x
	w.collectMu.Unlock()
	r.barrierSync()
	out := make([]any, w.n)
	w.collectMu.Lock()
	copy(out, w.collect)
	w.collectMu.Unlock()
	// Second rendezvous so no rank overwrites w.collect for a subsequent
	// collective before everyone has copied.
	r.barrierSync()
	if w.n > 1 {
		depth := log2ceil(w.n)
		dt := depth * (w.model.LatencySec + float64(bytesPerItem*w.n)/w.model.BandwidthBps)
		if r.tr != nil {
			r.emit(trace.KindGather, r.Clock, dt, TagCollective, trace.NoPeer, bytesPerItem*w.n, 0)
		}
		r.advance(dt)
	}
	return out
}

// AllReduceSum sums a float64 across ranks.
func (r *Rank) AllReduceSum(x float64) float64 {
	vals := r.AllGather(x, 8)
	var s float64
	for _, v := range vals {
		s += v.(float64)
	}
	return s
}

// AllReduceMax maximizes a float64 across ranks.
func (r *Rank) AllReduceMax(x float64) float64 {
	vals := r.AllGather(x, 8)
	m := x
	for _, v := range vals {
		if f := v.(float64); f > m {
			m = f
		}
	}
	return m
}

func log2ceil(n int) float64 {
	d := 0.0
	for v := 1; v < n; v <<= 1 {
		d++
	}
	return d
}

// barrier is a reusable n-party rendezvous that also computes the max clock
// and which rank held it (the rank that releases the others).
type barrier struct {
	mu         sync.Mutex
	cond       *sync.Cond
	n          int
	waiting    int
	gen        int
	maxClock   float64
	maxRank    int
	result     float64
	resultRank int
	poisoned   bool
}

func (b *barrier) init(n int) {
	b.n = n
	b.cond = sync.NewCond(&b.mu)
}

// sync blocks until all n ranks have called it, then returns the maximum
// clock passed by any rank in this generation and the rank that passed it
// (ties go to the earliest caller).
func (b *barrier) sync(clock float64, rank int) (float64, int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.poisoned {
		panic("par: barrier poisoned by peer rank panic")
	}
	if b.waiting == 0 || clock > b.maxClock {
		b.maxClock = clock
		b.maxRank = rank
	}
	b.waiting++
	if b.waiting == b.n {
		b.result, b.resultRank = b.maxClock, b.maxRank
		b.maxClock = 0
		b.waiting = 0
		b.gen++
		b.cond.Broadcast()
		return b.result, b.resultRank
	}
	gen := b.gen
	for gen == b.gen && !b.poisoned {
		b.cond.Wait()
	}
	if b.poisoned {
		panic("par: barrier poisoned by peer rank panic")
	}
	return b.result, b.resultRank
}

func (b *barrier) poison() {
	b.mu.Lock()
	b.poisoned = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
