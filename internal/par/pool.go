package par

import "sync"

// Pool recycles pointer message envelopes across ranks. Payloads cross ranks
// by reference, so an envelope can only be recycled by the side that has
// finished reading it: senders Get an envelope, fill it, and hand it to Send;
// the receiver copies the contents out and Puts it back. Pointer envelopes
// box into the `any` message slot without allocating, so a protocol whose
// envelope types own their internal buffers (slices reused via append(x[:0]))
// runs alloc-free at steady state.
//
// Envelopes that are never received — dropped by fault injection or stranded
// by a crash-recovery teardown — are simply collected by the GC; the pool
// does not require every Get to be matched by a Put.
//
// Pooling changes host allocation behavior only: message bytes, arrival
// times, and virtual clocks are computed from the declared wire size, never
// from the envelope. The zero value is ready to use and safe for concurrent
// use by all ranks.
type Pool[T any] struct {
	p sync.Pool
}

// Get returns a recycled envelope, or a zero-valued one if the pool is
// empty. Internal buffers keep their capacity; callers must reset lengths
// (append to x[:0]) before filling.
func (p *Pool[T]) Get() *T {
	if v, ok := p.p.Get().(*T); ok {
		return v
	}
	return new(T)
}

// Put returns an envelope for reuse. The caller must not touch it afterwards.
func (p *Pool[T]) Put(x *T) {
	if x != nil {
		p.p.Put(x)
	}
}
