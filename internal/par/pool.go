package par

import "sync"

// Pool recycles pointer message envelopes across ranks. Payloads cross ranks
// by reference, so an envelope can only be recycled by the side that has
// finished reading it: senders Get an envelope, fill it, and hand it to Send;
// the receiver copies the contents out and Puts it back. Pointer envelopes
// box into the `any` message slot without allocating, so a protocol whose
// envelope types own their internal buffers (slices reused via append(x[:0]))
// runs alloc-free at steady state.
//
// Pool is backed by sync.Pool, which is safe for concurrent use by all ranks
// at any GOMAXPROCS — but its per-P caches mean a Get on one scheduler
// processor does not reliably see a Put made on another, so the zero-alloc
// guarantee only holds pinned to one proc. Hot paths that need contention-free
// reuse under true parallelism use Arena instead; Pool remains the fallback
// for envelopes exchanged outside a world context (tests, the adaptive
// scheme) where no per-rank shard index exists.
//
// Envelopes that are never received — dropped by fault injection or stranded
// by a crash-recovery teardown — are simply collected by the GC; the pool
// does not require every Get to be matched by a Put.
//
// Pooling changes host allocation behavior only: message bytes, arrival
// times, and virtual clocks are computed from the declared wire size, never
// from the envelope. The zero value is ready to use and safe for concurrent
// use by all ranks.
type Pool[T any] struct {
	p sync.Pool
}

// Get returns a recycled envelope, or a zero-valued one if the pool is
// empty. Internal buffers keep their capacity; callers must reset lengths
// (append to x[:0]) before filling.
func (p *Pool[T]) Get() *T {
	if v, ok := p.p.Get().(*T); ok {
		return v
	}
	return new(T)
}

// Put returns an envelope for reuse. The caller must not touch it afterwards.
func (p *Pool[T]) Put(x *T) {
	if x != nil {
		p.p.Put(x)
	}
}

// arenaShardCap bounds each rank's private free list. Protocols with
// balanced envelope flows (halo exchange, pipelined sweeps on interior
// ranks) never come near it; unbalanced flows (request/reply protocols,
// where requesters' envelopes pile up on servers) spill the excess to the
// shared overflow list, where the starved side reclaims them.
const arenaShardCap = 64

// arenaShard is one rank's private free list, padded so adjacent shards in
// the contiguous shard array never share a cache line (a Put on rank r must
// not invalidate rank r+1's list head).
type arenaShard[T any] struct {
	free []*T
	_    [64 - 24%64]byte
}

// Arena is a per-rank sharded envelope free list for hot-path reuse under
// true parallelism (GOMAXPROCS > 1). Each rank owns one shard, touched only
// by that rank's goroutine, so the fast path — Get from and Put to your own
// shard — is lock-free, allocation-free at steady state, and immune to the
// per-P cache misses that make sync.Pool's reuse probabilistic on multicore
// hosts. Envelopes migrate between ranks by design (the sender Gets, the
// receiver Puts into its OWN shard); when a flow is unbalanced, full shards
// spill to a mutex-guarded overflow list that empty shards refill from, so
// steady-state reuse survives arbitrarily lopsided traffic at the cost of
// occasional (never per-message) lock operations.
//
// Like Pool, an Arena changes host allocation behavior only: virtual clocks,
// message bytes and arrival times never depend on where an envelope came
// from. Get and Put for rank i must be called only from rank i's goroutine.
type Arena[T any] struct {
	shards []arenaShard[T]

	ovMu sync.Mutex
	ov   []*T
}

// Init sizes the arena for an n-rank world. It must be called before the
// world runs; calling it again resets the arena (dropping cached envelopes
// to the GC, which is safe at any point between runs).
func (a *Arena[T]) Init(n int) {
	a.shards = make([]arenaShard[T], n)
	a.ovMu.Lock()
	a.ov = nil
	a.ovMu.Unlock()
}

// Get returns a recycled envelope for the given rank, refilling from the
// shared overflow list (one lock op) before allocating a fresh one. Internal
// buffers keep their capacity; callers must reset lengths before filling.
func (a *Arena[T]) Get(rank int) *T {
	sh := &a.shards[rank]
	if n := len(sh.free); n > 0 {
		x := sh.free[n-1]
		sh.free[n-1] = nil
		sh.free = sh.free[:n-1]
		return x
	}
	if x := a.getOverflow(); x != nil {
		return x
	}
	return new(T)
}

// getOverflow pops one envelope from the shared overflow list. Kept out of
// Get's inlinable fast path.
func (a *Arena[T]) getOverflow() *T {
	a.ovMu.Lock()
	defer a.ovMu.Unlock()
	n := len(a.ov)
	if n == 0 {
		return nil
	}
	x := a.ov[n-1]
	a.ov[n-1] = nil
	a.ov = a.ov[:n-1]
	return x
}

// Put returns an envelope for reuse by the given rank (the caller's own rank
// — for a received envelope, the receiver's, not the sender's). The caller
// must not touch it afterwards.
func (a *Arena[T]) Put(rank int, x *T) {
	if x == nil {
		return
	}
	sh := &a.shards[rank]
	if len(sh.free) < arenaShardCap {
		sh.free = append(sh.free, x)
		return
	}
	a.ovMu.Lock()
	a.ov = append(a.ov, x)
	a.ovMu.Unlock()
}
