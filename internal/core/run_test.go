package core

import (
	"math"
	"testing"

	"overd/internal/cases"
	"overd/internal/machine"
)

// smallAirfoil returns a fast test configuration of the paper's first case.
func smallAirfoil(nodes int, fo float64, steps int) Config {
	return Config{
		Case:          cases.OscAirfoil(0.05),
		Nodes:         nodes,
		Machine:       machine.SP2(),
		Steps:         steps,
		Fo:            fo,
		CheckInterval: 2,
	}
}

func checkResult(t *testing.T, res *Result) {
	t.Helper()
	if res.TotalTime <= 0 {
		t.Fatalf("TotalTime = %v", res.TotalTime)
	}
	if res.Flops <= 0 {
		t.Fatalf("Flops = %v", res.Flops)
	}
	if res.FlowTime <= 0 || res.ConnectTime <= 0 {
		t.Fatalf("phase times: flow %v connect %v", res.FlowTime, res.ConnectTime)
	}
	if math.IsNaN(res.MflopsPerNode()) || res.MflopsPerNode() <= 0 {
		t.Fatalf("Mflops/node = %v", res.MflopsPerNode())
	}
	if res.PctConnect() <= 0 || res.PctConnect() >= 100 {
		t.Fatalf("%%DCF = %v", res.PctConnect())
	}
	if res.IGBPs <= 0 {
		t.Fatalf("IGBPs = %d", res.IGBPs)
	}
}

func TestRunSmallAirfoilStatic(t *testing.T) {
	res, err := Run(smallAirfoil(3, math.Inf(1), 3))
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res)
	if len(res.Steps) != 3 {
		t.Errorf("recorded %d steps", len(res.Steps))
	}
	if res.Rebalances != 0 {
		t.Errorf("static run rebalanced %d times", res.Rebalances)
	}
	// Orphan fraction should be small.
	if res.Orphans > res.IGBPs/10 {
		t.Errorf("orphans %d of %d IGBPs", res.Orphans, res.IGBPs)
	}
}

func TestRunMoreNodesIsFaster(t *testing.T) {
	res3, err := Run(smallAirfoil(3, math.Inf(1), 2))
	if err != nil {
		t.Fatal(err)
	}
	res6, err := Run(smallAirfoil(6, math.Inf(1), 2))
	if err != nil {
		t.Fatal(err)
	}
	if res6.TotalTime >= res3.TotalTime {
		t.Errorf("6 nodes (%v s) should beat 3 nodes (%v s)", res6.TotalTime, res3.TotalTime)
	}
	speedup := res3.TotalTime / res6.TotalTime
	if speedup < 1.1 || speedup > 2.5 {
		t.Errorf("speedup %v outside plausible range", speedup)
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(smallAirfoil(4, math.Inf(1), 2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallAirfoil(4, math.Inf(1), 2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.TotalTime-b.TotalTime) > 1e-12*a.TotalTime {
		t.Errorf("nondeterministic timing: %v vs %v", a.TotalTime, b.TotalTime)
	}
	if a.Flops != b.Flops {
		t.Errorf("nondeterministic flops: %v vs %v", a.Flops, b.Flops)
	}
}

func TestRunDynamicRebalance(t *testing.T) {
	// A low fo forces the dynamic scheme to fire on the airfoil system.
	res, err := Run(smallAirfoil(6, 1.2, 6))
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res)
	// With fo=1.2 and an imbalanced connectivity load the scheme should
	// repartition at least once (f(p) max is typically >> 1.2).
	if res.Rebalances == 0 {
		t.Skip("no imbalance above fo observed at this size")
	}
	sum := 0
	for _, np := range res.Np {
		sum += np
	}
	if sum != 6 {
		t.Errorf("processor count changed: %v", res.Np)
	}
}

func TestRunErrors(t *testing.T) {
	cfg := smallAirfoil(3, math.Inf(1), 0)
	if _, err := Run(cfg); err == nil {
		t.Error("zero steps should error")
	}
	cfg = smallAirfoil(2, math.Inf(1), 1) // fewer nodes than grids
	if _, err := Run(cfg); err == nil {
		t.Error("nodes < grids should error")
	}
}

func TestSPFasterThanSP2EndToEnd(t *testing.T) {
	cfgSP2 := smallAirfoil(3, math.Inf(1), 2)
	cfgSP := cfgSP2
	cfgSP.Machine = machine.SP()
	r2, err := Run(cfgSP2)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Run(cfgSP)
	if err != nil {
		t.Fatal(err)
	}
	if rs.TotalTime >= r2.TotalTime {
		t.Errorf("SP (%v) should be faster than SP2 (%v)", rs.TotalTime, r2.TotalTime)
	}
}

func TestEstimateSerialTime(t *testing.T) {
	m := machine.YMP864()
	tYMP := EstimateSerialTime(m.BaseMflops*1e6, m)
	if math.Abs(tYMP-1) > 0.01 {
		t.Errorf("YMP serial time = %v, want ~1s for one sustained-second of work", tYMP)
	}
}

func TestRunFreeMotionStore(t *testing.T) {
	// The 6-DOF coupled variant: aerodynamic loads drive the store, and
	// "the free motion can be computed with negligible change in the
	// parallel performance" (paper §4.3).
	c := cases.StoreSepFree(0.03)
	res, err := Run(Config{Case: c, Nodes: 16, Machine: machine.SP2(), Steps: 4, Fo: math.Inf(1)})
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res)
	// The body must have moved under gravity + aero loads.
	pos := c.FreeBody.State.Pos
	if pos.Y >= 2.0 { // started at CG y=0... gravity pulls -y
		t.Errorf("store CG did not drop: %v", pos)
	}
	if math.IsNaN(pos.Y) || math.IsNaN(c.FreeBody.State.Vel.Norm()) {
		t.Fatalf("6-DOF state NaN: %+v", c.FreeBody.State)
	}
	// Aerodynamic force was integrated and finite.
	if math.IsNaN(res.Force.Norm()) {
		t.Errorf("force = %v", res.Force)
	}
	// Performance statistics remain comparable to the prescribed case.
	pres, err := Run(Config{Case: cases.StoreSep(0.03), Nodes: 16,
		Machine: machine.SP2(), Steps: 4, Fo: math.Inf(1)})
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.TotalTime / pres.TotalTime
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("free-motion run time ratio %.2f, want ~1 (negligible change)", ratio)
	}
}

func TestRunSlabDecomposition(t *testing.T) {
	// The slab-baseline decomposition must produce a correct (if slower)
	// run: same physics path, different subdomain shapes.
	cfg := smallAirfoil(6, math.Inf(1), 2)
	cfg.SlabDecomp = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res)
	// Slabs carry more halo surface; the flow phase should not be faster
	// than the minimal-surface decomposition.
	cfg2 := smallAirfoil(6, math.Inf(1), 2)
	res2, err := Run(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res.FlowTime < res2.FlowTime*0.98 {
		t.Errorf("slabs (%v) should not beat prime-factor (%v)", res.FlowTime, res2.FlowTime)
	}
}

func TestRunSamplingDisabledByNegativeIDs(t *testing.T) {
	cfg := smallAirfoil(3, math.Inf(1), 1)
	cfg.Sample = &SampleSpec{FieldGrid: -1, FieldK: -1, SurfaceGrid: -1}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Field) != 0 || len(res.Surface) != 0 {
		t.Error("negative sample ids should disable extraction")
	}
}

func TestStepStatsTotalsMatchPhases(t *testing.T) {
	res, err := Run(smallAirfoil(3, math.Inf(1), 3))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, s := range res.Steps {
		sum += s.Total()
	}
	if math.Abs(sum-res.TotalTime) > 1e-9*res.TotalTime {
		t.Errorf("step totals %v != run total %v", sum, res.TotalTime)
	}
	phases := res.FlowTime + res.MotionTime + res.ConnectTime + res.BalanceTime
	if math.Abs(phases-res.TotalTime) > 1e-9*res.TotalTime {
		t.Errorf("phase sum %v != run total %v", phases, res.TotalTime)
	}
}

func TestMaxFReported(t *testing.T) {
	res, err := Run(smallAirfoil(6, math.Inf(1), 2))
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.Steps {
		if s.MaxF < 1 {
			t.Errorf("step %d: max f(p) = %v, must be >= 1 by definition", i, s.MaxF)
		}
		if s.IGBPs <= 0 {
			t.Errorf("step %d: IGBPs = %d", i, s.IGBPs)
		}
	}
}
