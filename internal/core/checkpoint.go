package core

import (
	"overd/internal/geom"
	"overd/internal/metrics"
	"overd/internal/par"
	"overd/internal/sixdof"
)

// checkpoint is an in-memory snapshot of everything a restart needs to
// resume the timestep loop mid-run after an injected rank crash: the step
// index, the (frozen) timestep, every grid's absolute placement, the
// force-coupled body state, the global conserved field per grid, and the
// per-step statistics accumulated so far. The flow field is stored in
// global index space so a restart can re-partition it over a different
// processor count — the dead rank's work is re-spread by the static
// balancer, exactly as the run's initial decomposition was built.
type checkpoint struct {
	step  int     // timesteps completed
	dt    float64 // frozen timestep of the run
	clock float64 // global virtual clock at capture (all ranks equal here)

	xforms []geom.Transform // per-grid absolute placements
	body   *sixdof.State    // force-coupled body state, nil if none
	// q holds each grid's conserved variables in global index space,
	// 5 values per point (freestream where no rank owned the point).
	q [][]float64

	stats []StepStats // per-step statistics for steps [0, step)
}

// bytesPerCheckpointPoint models the serialized size of one gridpoint's
// conserved state in the checkpoint write (5 float64 + indexing overhead).
const bytesPerCheckpointPoint = 48

// writeCheckpoint snapshots the run on rank 0 and charges every rank the
// modeled cost of writing its owned points to stable storage. Called with
// every rank between the post-balance barrier and the trailing step
// barrier, where peers are quiescent (no block mutation), so rank 0 may
// read all blocks race-free.
func (st *runState) writeCheckpoint(r *par.Rank, stepDone int) {
	r.SetPhase(par.PhaseOther)
	t0 := r.Clock
	own := st.plan.Parts[r.ID].Box.Count()
	r.Elapse(r.Model().CommTime(own * bytesPerCheckpointPoint))
	if r.ID != 0 {
		return
	}
	st.ck = st.capture(r, stepDone)
	st.result.Checkpoints++
	st.result.CheckpointTime += r.Clock - t0
	if reg := r.MetricsRegistry(); reg != nil {
		// Live view for -serve scrapes; the authoritative cross-attempt
		// totals are the Result-derived overd_fault_checkpoints_total.
		reg.Gauge("overd_checkpoint_writes", metrics.Opts{
			Help: "checkpoint snapshots taken in the current attempt", Global: true,
		}).Set(0, float64(st.result.Checkpoints), r.Clock)
	}
}

// capture builds the snapshot (rank 0 only; peers quiescent).
func (st *runState) capture(r *par.Rank, stepDone int) *checkpoint {
	c := st.cfg.Case
	ck := &checkpoint{step: stepDone, dt: st.dt, clock: r.Clock}
	ck.xforms = make([]geom.Transform, len(c.Sys.Grids))
	for gi, g := range c.Sys.Grids {
		ck.xforms[gi] = g.Xform
	}
	if c.FreeBody != nil {
		s := c.FreeBody.State
		ck.body = &s
	}
	ck.q = make([][]float64, len(c.Sys.Grids))
	for gi, g := range c.Sys.Grids {
		ck.q[gi] = make([]float64, 5*g.NPoints())
	}
	for rank, part := range st.plan.Parts {
		b := st.blocks[rank]
		g := c.Sys.Grids[part.Grid]
		dst := ck.q[part.Grid]
		for k := part.Box.KLo; k <= part.Box.KHi; k++ {
			for j := part.Box.JLo; j <= part.Box.JHi; j++ {
				for i := part.Box.ILo; i <= part.Box.IHi; i++ {
					q, ok := b.QAtGlobal(i, j, k)
					if !ok {
						continue
					}
					copy(dst[5*g.Idx(i, j, k):], q[:])
				}
			}
		}
	}
	ck.stats = append([]StepStats(nil), st.stats...)
	return ck
}

// restoreFrom primes a fresh attempt's state from a snapshot before its
// world starts: grid placements and body state roll back to the
// checkpointed time level, the timestep loop resumes at ck.step with the
// original frozen dt, and the conserved field is reloaded into the new
// partition's blocks once they are built (see loadQ).
func (st *runState) restoreFrom(ck *checkpoint) {
	c := st.cfg.Case
	for gi, g := range c.Sys.Grids {
		g.ApplyTransform(ck.xforms[gi])
	}
	if c.FreeBody != nil && ck.body != nil {
		c.FreeBody.State = *ck.body
	}
	st.startStep = ck.step
	st.dt = ck.dt
	st.restored = true
	st.restoreQ = ck.q
	st.stats = append([]StepStats(nil), ck.stats...)
	st.ck = ck
}

// loadQ reloads the checkpointed conserved field into the current plan's
// freshly built blocks (rank 0, during preprocessing while peers wait at a
// barrier). Halo and fringe values are refreshed by the preprocessing
// exchange that follows; hole interiors stay at freestream and are recut.
func (st *runState) loadQ() {
	c := st.cfg.Case
	for rank, part := range st.plan.Parts {
		b := st.blocks[rank]
		g := c.Sys.Grids[part.Grid]
		src := st.restoreQ[part.Grid]
		for k := part.Box.KLo; k <= part.Box.KHi; k++ {
			for j := part.Box.JLo; j <= part.Box.JHi; j++ {
				for i := part.Box.ILo; i <= part.Box.IHi; i++ {
					li, lj, lk := b.Local(i, j, k)
					var q [5]float64
					copy(q[:], src[5*g.Idx(i, j, k):])
					b.SetQ(b.LIdx(li, lj, lk), q)
				}
			}
		}
	}
}
