package core

import (
	"errors"
	"math"
	"reflect"
	"testing"
)

// TestInterruptStopsRun: the hook's error surfaces as an InterruptError
// naming the boundary step, and the collective loop exits on every rank
// (the run returns instead of deadlocking on a barrier).
func TestInterruptStopsRun(t *testing.T) {
	sentinel := errors.New("caller went away")
	var polled []int
	cfg := smallAirfoil(3, math.Inf(1), 6)
	cfg.Interrupt = func(step int) error {
		polled = append(polled, step)
		if step >= 1 {
			return sentinel
		}
		return nil
	}
	res, err := Run(cfg)
	if res != nil {
		t.Errorf("interrupted run returned a result: %+v", res)
	}
	var ie *InterruptError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want an InterruptError", err)
	}
	if ie.Step != 1 {
		t.Errorf("interrupted at step %d, want 1", ie.Step)
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("InterruptError does not unwrap to the hook's error: %v", err)
	}
	// Rank 0 polls each completed step until the stop: steps 0 and 1.
	if want := []int{0, 1}; !reflect.DeepEqual(polled, want) {
		t.Errorf("polled steps %v, want %v", polled, want)
	}
}

// TestInterruptNilReturnIsFree pins the clock contract: a hook that never
// stops the run must leave every measured number bit-identical to a run
// with no hook at all — the poll is host-side and charges nothing to the
// virtual clocks.
func TestInterruptNilReturnIsFree(t *testing.T) {
	plain, err := Run(smallAirfoil(3, 2.0, 5))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallAirfoil(3, 2.0, 5)
	polls := 0
	cfg.Interrupt = func(step int) error {
		polls++
		return nil
	}
	hooked, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if polls != 4 {
		// Every step boundary except the final step's.
		t.Errorf("hook polled %d times, want 4", polls)
	}
	// The embedded Config legitimately differs (case pointer, hook pointer);
	// every measured number must not.
	plain.Config = Config{}
	hooked.Config = Config{}
	if !reflect.DeepEqual(plain, hooked) {
		t.Errorf("a never-stopping Interrupt hook changed the result:\nplain:  %+v\nhooked: %+v",
			plain, hooked)
	}
}
