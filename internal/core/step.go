package core

import (
	"overd/internal/balance"
	"overd/internal/dcf"
	"overd/internal/flow"
	"overd/internal/geom"
	"overd/internal/par"
	"overd/internal/sixdof"
)

// rankMain is one rank's whole-run body: setup (excluded from statistics),
// then the paper's three-module timestep loop with barriers between
// modules, plus the periodic dynamic-balance check.
func (st *runState) rankMain(r *par.Rank) {
	c := st.cfg.Case

	// ---- Preprocessing (excluded from statistics, like the paper's). ----
	r.SetPhase(par.PhaseOther)
	if r.ID == 0 {
		st.buildBlocks()
		if st.restoreQ != nil {
			// Restarting after an injected crash: reload the checkpointed
			// conserved field into the new partition's blocks.
			st.loadQ()
		}
	}
	r.Barrier()
	st.solvers[r.ID] = dcf.NewSolver(c.Overset, dcfParts(st.plan), r.ID)
	st.solvers[r.ID].UseArenas(st.dcfAr)
	r.Barrier()
	// Initial connectivity (from scratch) and fringe data.
	st.solvers[r.ID].Solve(r)
	st.blocks[r.ID].RefreshMasks()
	r.Barrier()
	st.blocks[r.ID].ExchangeHalo(r)
	st.solvers[r.ID].UpdateFringes(r, st.blocks[r.ID])
	r.Barrier()
	// Timestep: stability-limited global minimum, held fixed. A restarted
	// attempt keeps the checkpointed dt (the run's frozen timestep) so the
	// resumed trajectory matches the original.
	if !st.restored {
		if r.ID == 0 {
			st.dt = c.DT
		}
		if c.DT <= 0 {
			local := st.blocks[r.ID].MaxDTLocal(st.cfg.CFL)
			global := -r.AllReduceMax(-local)
			if r.ID == 0 {
				st.dt = global
			}
		}
	}
	r.Barrier()

	// Statistics measure the timestep loop only; record the preprocessing
	// baselines to subtract (the paper's tables exclude preprocessing).
	startClock := r.Clock
	// Open the metrics window at the same instant: windowed metrics zero
	// here so their totals reconcile exactly with the trace summary, whose
	// window is [startClock, last-step capture] (all clocks equal after
	// the preprocessing barrier above).
	r.MetricsWindowStart()
	if reg := r.MetricsRegistry(); reg != nil {
		publishRankGridpoints(reg, r, st.plan.Parts[r.ID].Grid,
			st.blocks[r.ID].NPointsLocal())
	}
	s0Flow := r.PhaseTime(par.PhaseFlow)
	s0Motion := r.PhaseTime(par.PhaseMotion)
	s0Connect := r.PhaseTime(par.PhaseConnect)
	s0Balance := r.PhaseTime(par.PhaseBalance)
	s0Flops := r.TotalFlops()
	s0FlowW := r.WaitTime(par.PhaseFlow)
	s0MotionW := r.WaitTime(par.PhaseMotion)
	s0ConnectW := r.WaitTime(par.PhaseConnect)
	s0BalanceW := r.WaitTime(par.PhaseBalance)
	prevFlow, prevMotion, prevConnect, prevBalance := s0Flow, s0Motion, s0Connect, s0Balance
	prevFlowW, prevMotionW, prevConnectW, prevBalanceW := s0FlowW, s0MotionW, s0ConnectW, s0BalanceW
	// Baselines for crash accounting: if this attempt dies, Run reads these
	// (after the goroutines join) to recover the work it burned. Written in
	// straight-line code right after the preprocessing barrier, before any
	// blocking call could observe a peer's crash.
	st.preFlops[r.ID] = s0Flops
	// Busy/wait baselines for wait-fed step balancers: deltas start at the
	// measurement window, not at rank launch, so preprocessing cost never
	// reads as timestep-loop imbalance.
	st.prevClock[r.ID] = r.Clock
	st.prevWait[r.ID] = r.TotalWaitTime()
	if r.ID == 0 {
		st.measStart = startClock
		st.preMod = [8]float64{s0Flow, s0Motion, s0Connect, s0Balance,
			s0FlowW, s0MotionW, s0ConnectW, s0BalanceW}
	}

	// ---- Timestep loop. ----
	for step := st.startStep; step < st.cfg.Steps; step++ {
		if st.stopErr != nil {
			// Interrupted: rank 0 set stopErr during the previous step and
			// the trailing barrier every rank just crossed published it, so
			// all ranks break at the same boundary and fall through to the
			// joint post-loop collectives.
			break
		}
		if st.eng != nil {
			// Scheduled rank crashes fire at the top of the step, where the
			// module barriers have just equalized every clock; the panic is
			// typed so Run can tell a modeled crash from a genuine bug.
			if st.eng.CrashNow(r.ID, step) {
				panic(par.Crash{Step: step, Clock: r.Clock})
			}
			st.eng.BeginStep(r.ID, step)
		}

		// Module 1: flow solution (includes intergrid BC data exchange).
		r.SetPhase(par.PhaseFlow)
		b := st.blocks[r.ID]
		b.ExchangeHalo(r)
		st.solvers[r.ID].UpdateFringes(r, b)
		b.FlowStep(r, st.dt)
		r.Barrier()

		// Module 2: grid motion.
		r.SetPhase(par.PhaseMotion)
		st.moveGrids(r, step)
		r.Barrier()

		// Module 3: re-establish domain connectivity.
		st.solvers[r.ID].Solve(r)
		r.SetPhase(par.PhaseConnect)
		st.blocks[r.ID].RefreshMasks()
		r.Barrier()

		// Step-boundary load balance check (Algorithm 2 or a registered
		// competitor). stepBal is nil unless the resolved balancer has an
		// active step hook, so static-style runs cross this phase without
		// a single collective.
		r.SetPhase(par.PhaseBalance)
		if st.stepBal != nil && (step+1)%st.cfg.CheckInterval == 0 {
			st.balanceStep(r, step)
		}
		r.Barrier()
		if step == st.cfg.Steps-1 {
			// Close the metrics window where the trace window closes: the
			// barrier above equalized every clock at what will be recorded
			// as TotalTime; the trailing synchronization and the post-loop
			// flops reduction are bookkeeping outside the measured window.
			r.MetricsWindowEnd()
		}

		// Record the step's phase deltas (equal across ranks after the
		// barriers; rank 0 writes).
		if r.ID == 0 {
			ft, mt, ct, bt := r.PhaseTime(par.PhaseFlow), r.PhaseTime(par.PhaseMotion),
				r.PhaseTime(par.PhaseConnect), r.PhaseTime(par.PhaseBalance)
			fw, mw, cw, bw := r.WaitTime(par.PhaseFlow), r.WaitTime(par.PhaseMotion),
				r.WaitTime(par.PhaseConnect), r.WaitTime(par.PhaseBalance)
			igbps := 0
			maxI, sumI := 0, 0
			for _, s := range st.solvers {
				igbps += s.IGBPCount()
				if s.ReceivedIGBPs > maxI {
					maxI = s.ReceivedIGBPs
				}
				sumI += s.ReceivedIGBPs
			}
			maxF := 0.0
			if sumI > 0 {
				maxF = float64(maxI) * float64(len(st.solvers)) / float64(sumI)
			}
			st.stats = append(st.stats, StepStats{
				Flow:        ft - prevFlow,
				Motion:      mt - prevMotion,
				Connect:     ct - prevConnect,
				Balance:     bt - prevBalance,
				FlowWait:    fw - prevFlowW,
				MotionWait:  mw - prevMotionW,
				ConnectWait: cw - prevConnectW,
				BalanceWait: bw - prevBalanceW,
				IGBPs:       igbps,
				MaxF:        maxF,
			})
			prevFlow, prevMotion, prevConnect, prevBalance = ft, mt, ct, bt
			prevFlowW, prevMotionW, prevConnectW, prevBalanceW = fw, mw, cw, bw
			publishStepMetrics(r.MetricsRegistry(), maxF, igbps, r.Clock)
			if st.cfg.OnStep != nil {
				st.cfg.OnStep(step, st.stats[len(st.stats)-1], r.Clock)
			}
			if st.cfg.Interrupt != nil && step+1 < st.cfg.Steps {
				// Cancellation poll: host-side only, never charged to a
				// virtual clock. Skipped on the final step — the run is
				// about to complete anyway.
				if err := st.cfg.Interrupt(step); err != nil {
					st.stopErr = err
					st.stopStep = step
				}
			}
			if step == st.cfg.Steps-1 {
				// End-of-run capture from the same snapshot, so phase
				// sums, step totals and TotalTime agree exactly; the
				// trailing synchronization below is bookkeeping.
				st.result.TotalTime = r.Clock - startClock
				st.result.FlowTime = ft - s0Flow
				st.result.MotionTime = mt - s0Motion
				st.result.ConnectTime = ct - s0Connect
				st.result.BalanceTime = bt - s0Balance
				st.result.FlowWaitTime = fw - s0FlowW
				st.result.MotionWaitTime = mw - s0MotionW
				st.result.ConnectWaitTime = cw - s0ConnectW
				st.result.BalanceWaitTime = bw - s0BalanceW
				// Mark the measured interval so trace analyses (summary,
				// critical path) reconcile with TotalTime, which excludes
				// preprocessing; all clocks are equal here because the
				// module barriers just synchronized them.
				if st.cfg.Trace != nil {
					st.cfg.Trace.SetWindow(startClock, r.Clock)
				}
			}
		}
		if st.ckEvery > 0 && (step+1)%st.ckEvery == 0 && step+1 < st.cfg.Steps {
			// Peers are quiescent between the stats capture above and the
			// trailing barrier, so rank 0 may snapshot every block race-free.
			st.writeCheckpoint(r, step+1)
		}
		r.Barrier()
	}

	// Final diagnostics (times were captured with the last step's stats).
	if r.ID == 0 {
		st.result.Orphans = 0
		for _, s := range st.solvers {
			_, orph := s.DonorCounts()
			st.result.Orphans += orph
		}
	}
	// Flops over the measured window only (preprocessing subtracted).
	total := r.AllReduceSum(r.TotalFlops() - s0Flops)
	if r.ID == 0 {
		st.result.Flops = total
	}
}

// moveGrids advances every moving component to the next time level and
// refreshes rank-local geometry. The shared world-frame coordinates are
// written by the first rank of each grid; every rank then recomputes its
// own local copies and metrics (replicated work, as in the MPI original
// where each processor transforms its own subdomain).
func (st *runState) moveGrids(r *par.Rank, step int) {
	c := st.cfg.Case
	t := float64(step+1) * st.dt

	// Aerodynamic loads for force-coupled bodies: only wall faces of the
	// body's own grids contribute.
	if c.FreeBody != nil {
		var f, m geom.Vec3
		myGrid := st.plan.Parts[r.ID].Grid
		for _, bg := range c.BodyGrids {
			if bg != myGrid {
				continue
			}
			var flops float64
			f, m, flops = st.blocks[r.ID].Forces(c.ForceRef)
			r.Compute(flops)
			break
		}
		fx := r.AllReduceSum(f.X)
		fy := r.AllReduceSum(f.Y)
		fz := r.AllReduceSum(f.Z)
		mx := r.AllReduceSum(m.X)
		my := r.AllReduceSum(m.Y)
		mz := r.AllReduceSum(m.Z)
		if r.ID == 0 {
			st.result.Force = geom.Vec3{X: fx, Y: fy, Z: fz}
			c.FreeBody.Step(geom.Vec3{X: fx, Y: fy, Z: fz}, geom.Vec3{X: mx, Y: my, Z: mz}, st.dt)
		}
		r.Barrier()
	}

	myGrid := st.plan.Parts[r.ID].Grid
	// First rank of each grid applies the new placement to the shared
	// world-frame coordinates.
	for gi, g := range c.Sys.Grids {
		if !isFirstRankOfGrid(st.plan, r.ID, gi) {
			continue
		}
		xf, moving := st.transformAt(gi, t)
		if !moving {
			continue
		}
		g.ApplyTransform(xf)
		r.Compute(float64(g.NPoints()) * 12)
	}
	r.Barrier()

	// Every rank refreshes its local geometry (moving grids only).
	g := c.Sys.Grids[myGrid]
	if g.Moving {
		b := st.blocks[r.ID]
		b.RefreshGeometry(st.dt)
		b.RefreshFreestreamResidual()
		r.Compute(float64(b.NPointsLocal()) * 180)
	}
}

// transformAt returns grid gi's placement at time t.
func (st *runState) transformAt(gi int, t float64) (geom.Transform, bool) {
	c := st.cfg.Case
	if c.FreeBody != nil {
		for _, bg := range c.BodyGrids {
			if bg == gi {
				return c.FreeBody.Transform(), true
			}
		}
	}
	if gi < len(c.Motions) && c.Motions[gi] != nil {
		if _, isStatic := c.Motions[gi].(sixdof.StaticMotion); !isStatic {
			return c.Motions[gi].At(t), true
		}
	}
	return geom.IdentityTransform(), false
}

func isFirstRankOfGrid(plan *balance.Plan, rank, gi int) bool {
	for r, p := range plan.Parts {
		if p.Grid == gi {
			return r == rank
		}
	}
	return false
}

// balanceStep runs the active step balancer's check collectively: gather
// exactly the measurements it declared (each gather is a modeled
// collective, identical on every rank), decide deterministically
// everywhere, and repartition if a new plan came back.
func (st *runState) balanceStep(r *par.Rank, step int) {
	needs := st.stepBal.Needs()
	fb := balance.Feedback{Step: step}
	if needs.IGBPs {
		recvAny := r.AllGather(st.solvers[r.ID].ReceivedIGBPs, 8)
		recv := make([]int, len(recvAny))
		for i, v := range recvAny {
			recv[i] = v.(int)
		}
		fb.ReceivedIGBPs = recv
	}
	if needs.Waits {
		// Busy/wait deltas since the previous check: clock advance minus
		// blocked time is compute+send-overhead time, the diffusive
		// scheme's load signal. One 16-byte gather ships both.
		wait := r.TotalWaitTime() - st.prevWait[r.ID]
		busy := (r.Clock - st.prevClock[r.ID]) - wait
		bwAny := r.AllGather([2]float64{busy, wait}, 16)
		fb.Busy = make([]float64, len(bwAny))
		fb.Wait = make([]float64, len(bwAny))
		for i, v := range bwAny {
			bw := v.([2]float64)
			fb.Busy[i], fb.Wait[i] = bw[0], bw[1]
		}
		st.prevClock[r.ID] = r.Clock
		st.prevWait[r.ID] = r.TotalWaitTime()
	}
	newPlan, _, err := st.stepBal.Rebalance(st.plan, st.balInput, fb)
	if err != nil || newPlan == st.plan {
		return
	}
	st.repartition(r, newPlan)
}

// repartition rebuilds blocks and connectivity state for a new plan,
// modeling the data redistribution cost: every conserved value whose owner
// changed crosses the network once.
func (st *runState) repartition(r *par.Rank, newPlan *balance.Plan) {
	oldBlocks := make([]*flow.Block, len(st.blocks))
	copy(oldBlocks, st.blocks)
	oldPlan := st.plan
	r.Barrier()
	if r.ID == 0 {
		st.plan = newPlan
		st.rebalances++
		// The shipped volume, from box intersections: host-side, so the
		// accounting itself costs no collective.
		st.movedPoints += balance.MovedPoints(oldPlan, newPlan)
		st.buildBlocks()
	}
	r.Barrier()

	// Copy conserved data into my new block from the old owners, and
	// charge the modeled redistribution traffic.
	b := st.blocks[r.ID]
	part := st.plan.Parts[r.ID]
	moved := 0
	for k := part.Box.KLo; k <= part.Box.KHi; k++ {
		for j := part.Box.JLo; j <= part.Box.JHi; j++ {
			for i := part.Box.ILo; i <= part.Box.IHi; i++ {
				oldRank := ownerOf(oldPlan, part.Grid, i, j, k)
				q, ok := oldBlocks[oldRank].QAtGlobal(i, j, k)
				if !ok {
					continue
				}
				if oldRank != r.ID {
					moved++
				}
				li, lj, lk := b.Local(i, j, k)
				b.SetQ(b.LIdx(li, lj, lk), q)
			}
		}
	}
	r.Elapse(r.Model().CommTime(moved * 40))
	r.Compute(float64(part.Box.Count()) * 10)

	st.solvers[r.ID] = dcf.NewSolver(st.cfg.Case.Overset, dcfParts(st.plan), r.ID)
	st.solvers[r.ID].UseArenas(st.dcfAr)
	r.Barrier()
	// Re-establish connectivity under the new partition so the next flow
	// step has valid fringe exchange lists.
	st.solvers[r.ID].Solve(r)
	st.blocks[r.ID].RefreshMasks()
	r.Barrier()
	st.blocks[r.ID].ExchangeHalo(r)
	st.solvers[r.ID].UpdateFringes(r, st.blocks[r.ID])
	r.Barrier()
}

func ownerOf(plan *balance.Plan, gi, i, j, k int) int {
	for rank, p := range plan.Parts {
		if p.Grid == gi && p.Box.Contains(i, j, k) {
			return rank
		}
	}
	return -1
}
