package core

import (
	"math"
	"reflect"
	"testing"

	"overd/internal/fault"
	"overd/internal/par"
	"overd/internal/trace"
)

// TestNilAndEmptyFaultPlansBitIdentical is the acceptance regression: a nil
// plan and an empty plan must leave every virtual clock and Result number
// bit-identical — the fault layer's hooks delegate to the exact unhooked
// arithmetic when no fault matches.
func TestNilAndEmptyFaultPlansBitIdentical(t *testing.T) {
	base, err := Run(smallAirfoil(4, math.Inf(1), 3))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallAirfoil(4, math.Inf(1), 3)
	cfg.Faults = &fault.Plan{Seed: 99}
	faulted, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.TotalTime != faulted.TotalTime {
		t.Errorf("TotalTime differs: %v vs %v", base.TotalTime, faulted.TotalTime)
	}
	if base.Flops != faulted.Flops {
		t.Errorf("Flops differs: %v vs %v", base.Flops, faulted.Flops)
	}
	if base.Orphans != faulted.Orphans || base.IGBPs != faulted.IGBPs {
		t.Errorf("connectivity differs: orphans %d/%d igbps %d/%d",
			base.Orphans, faulted.Orphans, base.IGBPs, faulted.IGBPs)
	}
	if !reflect.DeepEqual(base.Steps, faulted.Steps) {
		t.Errorf("per-step stats differ under empty fault plan")
	}
	if faulted.Recoveries != 0 || faulted.Checkpoints != 0 ||
		faulted.DroppedMsgs != 0 || faulted.FaultWaitTime != 0 {
		t.Errorf("empty plan reported fault activity: %+v", faulted)
	}
}

// TestCrashRestartIntegration is the headline robustness scenario: a rank
// crash mid-run recovers via checkpoint/restart — the run completes with a
// typed-error-free Result that reports the recovery cost, on one fewer node.
func TestCrashRestartIntegration(t *testing.T) {
	cfg := smallAirfoil(5, math.Inf(1), 8)
	cfg.Faults = &fault.Plan{Crashes: []fault.Crash{{Rank: 2, Step: 5}}}
	cfg.CheckpointEvery = 3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, res)
	if len(res.Steps) != 8 {
		t.Errorf("recorded %d steps, want 8", len(res.Steps))
	}
	if res.Recoveries != 1 {
		t.Errorf("Recoveries = %d, want 1", res.Recoveries)
	}
	// Checkpoint fired after step 3; the crash at step 5 re-executes 3, 4.
	if res.RecoverySteps != 2 {
		t.Errorf("RecoverySteps = %d, want 2", res.RecoverySteps)
	}
	if res.RecoveryTime <= 0 {
		t.Errorf("RecoveryTime = %v, want > 0", res.RecoveryTime)
	}
	if res.Checkpoints < 1 || res.CheckpointTime <= 0 {
		t.Errorf("checkpoints %d time %v", res.Checkpoints, res.CheckpointTime)
	}
	if res.FinalNodes != 4 {
		t.Errorf("FinalNodes = %d, want 4 (one crash on 5 nodes)", res.FinalNodes)
	}

	base, err := Run(smallAirfoil(5, math.Inf(1), 8))
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= base.TotalTime {
		t.Errorf("crashed run (%v s) should cost more than clean run (%v s)",
			res.TotalTime, base.TotalTime)
	}
}

// Without checkpointing the restart re-executes from step 0.
func TestCrashWithoutCheckpointRestartsFromZero(t *testing.T) {
	cfg := smallAirfoil(4, math.Inf(1), 4)
	cfg.Faults = &fault.Plan{Crashes: []fault.Crash{{Rank: 1, Step: 2}}}
	cfg.CheckpointEvery = -1
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Checkpoints != 0 {
		t.Errorf("Checkpoints = %d with checkpointing disabled", res.Checkpoints)
	}
	if res.Recoveries != 1 || res.RecoverySteps != 2 {
		t.Errorf("recoveries %d steps %d, want 1 and 2", res.Recoveries, res.RecoverySteps)
	}
	if len(res.Steps) != 4 {
		t.Errorf("recorded %d steps, want 4", len(res.Steps))
	}
	if res.FinalNodes != 3 {
		t.Errorf("FinalNodes = %d, want 3", res.FinalNodes)
	}
}

// A crash that leaves too few nodes to hold the grid system is a hard error.
func TestCrashCascadeRunsOutOfNodes(t *testing.T) {
	cfg := smallAirfoil(2, math.Inf(1), 3)
	cfg.Faults = &fault.Plan{Crashes: []fault.Crash{{Rank: 1, Step: 1}}}
	if _, err := Run(cfg); err == nil {
		t.Fatal("expected an error when a crash leaves fewer nodes than grids")
	}
}

// TestLostSearchRepliesDegradeToOrphans is the graceful-degradation
// acceptance test: donor-search replies lost beyond the retry budget must
// turn into a bounded orphan count, not a deadlock.
func TestLostSearchRepliesDegradeToOrphans(t *testing.T) {
	cfg := smallAirfoil(4, math.Inf(1), 3)
	cfg.Faults = &fault.Plan{
		Seed: 7,
		Losses: []fault.Loss{
			{Tag: int(par.TagSearchRep), From: -1, To: -1, Prob: 0.35},
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedMsgs == 0 {
		t.Error("loss plan dropped no messages")
	}
	if len(res.Steps) != 3 {
		t.Errorf("recorded %d steps, want 3", len(res.Steps))
	}
	base, err := Run(smallAirfoil(4, math.Inf(1), 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Orphans < base.Orphans {
		t.Errorf("lossy run has fewer orphans (%d) than clean run (%d)",
			res.Orphans, base.Orphans)
	}
	// Bounded: most fringe points still resolve (retries absorb most loss).
	if res.Orphans > res.IGBPs/2 {
		t.Errorf("degradation unbounded: %d orphans of %d IGBPs", res.Orphans, res.IGBPs)
	}
}

// A straggler makes the run strictly slower and shows up as wait time on
// the healthy ranks (they idle at barriers for the slow one).
func TestStragglerSlowsRun(t *testing.T) {
	base, err := Run(smallAirfoil(4, math.Inf(1), 3))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallAirfoil(4, math.Inf(1), 3)
	cfg.Faults = &fault.Plan{
		Stragglers: []fault.Straggler{{Rank: 1, Factor: 4, FromStep: 0}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= base.TotalTime {
		t.Errorf("straggler run (%v s) not slower than clean run (%v s)",
			res.TotalTime, base.TotalTime)
	}
}

// A degraded link slows the run without changing the answer.
func TestDegradedLinkSlowsRun(t *testing.T) {
	base, err := Run(smallAirfoil(4, math.Inf(1), 2))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallAirfoil(4, math.Inf(1), 2)
	cfg.Faults = &fault.Plan{
		Links: []fault.LinkFault{{From: -1, To: -1, LatencyFactor: 20, BandwidthFactor: 20}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= base.TotalTime {
		t.Errorf("degraded-link run (%v s) not slower than clean run (%v s)",
			res.TotalTime, base.TotalTime)
	}
	if res.Orphans != base.Orphans || res.IGBPs != base.IGBPs {
		t.Errorf("link degradation changed connectivity: orphans %d/%d igbps %d/%d",
			res.Orphans, base.Orphans, res.IGBPs, base.IGBPs)
	}
}

// TestFaultedRunDeterministic: same seed + same plan must reproduce the
// identical trace event stream and Result, per the acceptance criteria.
func TestFaultedRunDeterministic(t *testing.T) {
	plan := &fault.Plan{
		Seed: 42,
		Stragglers: []fault.Straggler{
			{Rank: 1, Factor: 2, FromStep: 1, ToStep: 3},
		},
		Losses: []fault.Loss{
			{Tag: int(par.TagSearchRep), From: -1, To: -1, Prob: 0.3},
			{Tag: int(par.TagSearchReq), From: -1, To: -1, Prob: 0.15},
		},
	}
	run := func() (*Result, *trace.Recorder) {
		cfg := smallAirfoil(4, math.Inf(1), 3)
		cfg.Faults = plan
		cfg.Trace = trace.NewRecorder()
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res, cfg.Trace
	}
	resA, trA := run()
	resB, trB := run()
	if resA.TotalTime != resB.TotalTime || resA.Flops != resB.Flops {
		t.Errorf("nondeterministic result: %v/%v vs %v/%v",
			resA.TotalTime, resA.Flops, resB.TotalTime, resB.Flops)
	}
	if resA.DroppedMsgs != resB.DroppedMsgs || resA.SendRetries != resB.SendRetries {
		t.Errorf("nondeterministic loss: %d/%d vs %d/%d",
			resA.DroppedMsgs, resA.SendRetries, resB.DroppedMsgs, resB.SendRetries)
	}
	if trA.NRanks() != trB.NRanks() {
		t.Fatalf("rank counts differ: %d vs %d", trA.NRanks(), trB.NRanks())
	}
	for rank := 0; rank < trA.NRanks(); rank++ {
		if !reflect.DeepEqual(trA.Events(rank), trB.Events(rank)) {
			t.Errorf("rank %d: trace event streams differ", rank)
		}
	}
}

// The crash recovery path composes with everything else: dynamic balancing
// on, loss on, straggler on — the run still completes and reports.
func TestCrashUnderCombinedFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("combined fault sweep skipped in -short")
	}
	cfg := smallAirfoil(6, 1.2, 8)
	cfg.Faults = &fault.Plan{
		Seed:       3,
		Stragglers: []fault.Straggler{{Rank: 0, Factor: 2, FromStep: 2, ToStep: 6}},
		Losses: []fault.Loss{
			{Tag: int(par.TagSearchRep), From: -1, To: -1, Prob: 0.2},
		},
		Crashes: []fault.Crash{{Rank: 3, Step: 4}},
	}
	cfg.CheckpointEvery = 2
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Recoveries != 1 || res.FinalNodes != 5 {
		t.Errorf("recoveries %d final nodes %d", res.Recoveries, res.FinalNodes)
	}
	if len(res.Steps) != 8 {
		t.Errorf("recorded %d steps, want 8", len(res.Steps))
	}
	checkResult(t, res)
}
