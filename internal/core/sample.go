package core

import (
	"math"

	"overd/internal/flow"
	"overd/internal/grid"
)

// FieldSample is one sampled flow state at a grid point.
type FieldSample struct {
	X, Y, Z float64
	Rho     float64
	P       float64
	Mach    float64
	// IBlank is the Chimera state of the point (hole/field/fringe).
	IBlank int8
}

// SampleSpec selects what to extract from the final solution.
type SampleSpec struct {
	// FieldGrid samples every owned point of this component grid
	// (-1 disables).
	FieldGrid int
	// FieldK restricts 3-D field sampling to one k plane (-1 = all).
	FieldK int
	// SurfaceGrid samples the j=0 wall of this component grid
	// (-1 disables).
	SurfaceGrid int
}

// SurfaceSample is one wall point with its pressure coefficient.
type SurfaceSample struct {
	X, Y, Z float64
	Cp      float64
}

// sampleResults extracts the requested fields from the final blocks.
func (st *runState) sampleResults() {
	spec := st.cfg.Sample
	if spec == nil {
		return
	}
	if spec.FieldGrid >= 0 {
		for rank, part := range st.plan.Parts {
			if part.Grid != spec.FieldGrid {
				continue
			}
			b := st.blocks[rank]
			for k := part.Box.KLo; k <= part.Box.KHi; k++ {
				if spec.FieldK >= 0 && k != spec.FieldK {
					continue
				}
				for j := part.Box.JLo; j <= part.Box.JHi; j++ {
					for i := part.Box.ILo; i <= part.Box.IHi; i++ {
						q, ok := b.QAtGlobal(i, j, k)
						if !ok {
							continue
						}
						rho, u, v, w, p := flow.Primitive(q)
						a := flow.SoundSpeed(rho, p)
						g := st.cfg.Case.Sys.Grids[part.Grid]
						n := g.Idx(i, j, k)
						st.result.Field = append(st.result.Field, FieldSample{
							X: g.X[n], Y: g.Y[n], Z: g.Z[n],
							Rho: rho, P: p,
							Mach:   math.Sqrt(u*u+v*v+w*w) / a,
							IBlank: g.IBlank[n],
						})
					}
				}
			}
		}
	}
	if spec.SurfaceGrid >= 0 {
		g := st.cfg.Case.Sys.Grids[spec.SurfaceGrid]
		if g.BCs[grid.JMin] == grid.BCWall {
			fs := st.cfg.Case.FS
			qDyn := 0.5 * fs.Mach * fs.Mach // ρ∞ |u∞|²/2 with ρ∞ = 1
			if qDyn == 0 {
				qDyn = 1
			}
			for rank, part := range st.plan.Parts {
				if part.Grid != spec.SurfaceGrid || part.Box.JLo != 0 {
					continue
				}
				b := st.blocks[rank]
				for k := part.Box.KLo; k <= part.Box.KHi; k++ {
					for i := part.Box.ILo; i <= part.Box.IHi; i++ {
						q, ok := b.QAtGlobal(i, 0, k)
						if !ok {
							continue
						}
						rho, _, _, _, p := flow.Primitive(q)
						_ = rho
						n := g.Idx(i, 0, k)
						st.result.Surface = append(st.result.Surface, SurfaceSample{
							X: g.X[n], Y: g.Y[n], Z: g.Z[n],
							Cp: (p - fs.Pressure()) / qDyn,
						})
					}
				}
			}
		}
	}
}
