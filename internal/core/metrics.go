package core

import (
	"overd/internal/metrics"
	"overd/internal/par"
)

// moduleName labels the paper's timestep modules for Result-derived gauges.
func moduleName(i int) string {
	switch i {
	case 0:
		return "flow"
	case 1:
		return "motion"
	case 2:
		return "connect"
	case 3:
		return "balance"
	}
	return "other"
}

// publishRunMetrics writes the Result-derived roll-up into the registry
// after a run completes. These are global (rank-less), non-windowed series:
// unlike the live per-rank counters — which cover the final attempt's
// measured window — they include cross-attempt fault accounting, because
// Result is the layer that survives crash-restarts.
func publishRunMetrics(reg *metrics.Registry, res *Result) {
	if reg == nil {
		return
	}
	ts := res.TotalTime
	g := func(name, help string, v float64) {
		reg.Gauge(name, metrics.Opts{Help: help, Global: true}).Set(0, v, ts)
	}
	c := func(name, help string, v float64) {
		reg.Counter(name, metrics.Opts{Help: help, Global: true}).Add(0, v)
	}
	g("overd_run_virtual_seconds", "measured-step virtual seconds (includes re-executed crashed work)", res.TotalTime)
	g("overd_run_flops", "floating-point work over the measured steps", res.Flops)
	g("overd_run_steps", "measured timesteps", float64(len(res.Steps)))
	g("overd_run_final_nodes", "processor count of the successful attempt", float64(res.FinalNodes))
	g("overd_run_igbps", "steady-state composite fringe (intergrid boundary point) count", float64(res.IGBPs))
	g("overd_run_orphans", "final orphan count", float64(res.Orphans))
	g("overd_run_static_tau", "static balancer converged tolerance factor", res.Tau)
	c("overd_run_rebalances_total", "dynamic-scheme repartitions", float64(res.Rebalances))
	c("overd_run_moved_points_total", "gridpoints shipped by step-boundary repartitions", float64(res.MovedPoints))

	mod := reg.Gauge("overd_run_module_seconds", metrics.Opts{
		Help: "virtual seconds per timestep module (rank 0)", Global: true,
		Labels: []metrics.Label{{Name: "module", Namer: moduleName}},
	})
	modWait := reg.Gauge("overd_run_module_wait_seconds", metrics.Opts{
		Help: "blocked virtual seconds per timestep module (rank 0)", Global: true,
		Labels: []metrics.Label{{Name: "module", Namer: moduleName}},
	})
	times := [4]float64{res.FlowTime, res.MotionTime, res.ConnectTime, res.BalanceTime}
	waits := [4]float64{res.FlowWaitTime, res.MotionWaitTime, res.ConnectWaitTime, res.BalanceWaitTime}
	for i := 0; i < 4; i++ {
		mod.Set1(0, i, times[i], ts)
		modWait.Set1(0, i, waits[i], ts)
	}

	c("overd_fault_recoveries_total", "crash-triggered restarts", float64(res.Recoveries))
	c("overd_fault_recovery_steps_total", "timesteps re-executed after crashes", float64(res.RecoverySteps))
	c("overd_fault_recovery_seconds_total", "virtual seconds of lost (re-executed) work", res.RecoveryTime)
	c("overd_fault_checkpoints_total", "checkpoint snapshots taken", float64(res.Checkpoints))
	c("overd_fault_checkpoint_seconds_total", "modeled checkpoint cost in virtual seconds", res.CheckpointTime)
	c("overd_fault_dropped_msgs_total", "fault-injected message drops across all ranks and attempts", float64(res.DroppedMsgs))
	c("overd_fault_send_retries_total", "reliable-send retransmissions across all ranks and attempts", float64(res.SendRetries))
	c("overd_fault_wait_seconds_total", "virtual seconds lost to retry backoff and loss discovery", res.FaultWaitTime)
}

// publishStepMetrics records rank 0's per-step live gauges (imbalance ratio
// and composite fringe size), stamped with the shared post-barrier clock.
func publishStepMetrics(reg *metrics.Registry, maxF float64, igbps int, vclock float64) {
	if reg == nil {
		return
	}
	reg.Gauge("overd_step_imbalance_ratio", metrics.Opts{
		Help: "per-step donor-search load imbalance MAXF (max/avg received IGBPs)", Global: true,
	}).Set(0, maxF, vclock)
	reg.Gauge("overd_step_igbps", metrics.Opts{
		Help: "per-step composite fringe (intergrid boundary point) count", Global: true,
	}).Set(0, float64(igbps), vclock)
}

// publishRankGridpoints records each rank's local gridpoint load, labeled by
// component grid — the distribution quantity behind the paper's imbalance
// ratios.
func publishRankGridpoints(reg *metrics.Registry, r *par.Rank, grid, npts int) {
	if reg == nil {
		return
	}
	reg.Gauge("overd_rank_gridpoints", metrics.Opts{
		Help:   "local gridpoints (including ghosts) per rank",
		Labels: []metrics.Label{{Name: "grid"}},
	}).Set1(r.ID, grid, float64(npts), r.Clock)
}

// rollupMetrics reconciles the metrics plane with the trace plane after a
// successful run: Result-derived globals plus gauges copied from the trace
// summary (see metrics.RollupTrace).
func rollupMetrics(cfg Config, res *Result) {
	if cfg.Metrics == nil {
		return
	}
	publishRunMetrics(cfg.Metrics, res)
	if cfg.Trace != nil {
		metrics.RollupTrace(cfg.Metrics, cfg.Trace.Summarize(),
			func(p int) string { return par.Phase(p).String() })
	}
}
