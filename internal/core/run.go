// Package core is the OVERFLOW-D1 analog: it bundles the parallel flow
// solver (package flow), the distributed domain-connectivity solution
// (package dcf), grid motion (package sixdof), and the static/dynamic load
// balancers (package balance) into the three-step unsteady solution loop of
// the paper — 1) solve the flow equations, 2) move grid components,
// 3) re-establish domain connectivity — with barriers between modules and
// per-module virtual-time accounting on a simulated machine.
package core

import (
	"errors"
	"fmt"
	"math"

	"overd/internal/balance"
	"overd/internal/cases"
	"overd/internal/dcf"
	"overd/internal/fault"
	"overd/internal/flow"
	"overd/internal/geom"
	"overd/internal/grid"
	"overd/internal/machine"
	"overd/internal/metrics"
	"overd/internal/par"
	"overd/internal/trace"
)

// Config describes one run.
type Config struct {
	Case    *cases.Case
	Nodes   int
	Machine machine.Model
	Steps   int
	// Fo is the dynamic load-balance factor (Algorithm 2); +Inf or 0
	// disables the dynamic scheme (pure static balancing).
	Fo float64
	// CheckInterval is the number of steps between dynamic-balance checks.
	CheckInterval int
	// Balancer selects the load-balancing scheme by registry name
	// ("static", "dynamic", "sfc", "diffusive"; see package balance).
	// Empty resolves from Fo for compatibility: a finite positive Fo means
	// "dynamic", anything else "static" — exactly the pre-interface
	// behavior, bit for bit. Run stores the resolved name back into
	// Result.Config.Balancer.
	Balancer string
	// CFL scales the stability-limited timestep when the case's DT is 0.
	CFL float64
	// Sample optionally extracts field and surface data from the final
	// solution (see SampleSpec).
	Sample *SampleSpec
	// SlabDecomp uses 1-D slab subdomains instead of the prime-factor
	// minimal-surface subdivision (the Fig. 4 ablation baseline).
	SlabDecomp bool
	// Workers bounds how many rank goroutines run host code simultaneously
	// (see par.World.SetParallelism). 0 or >= Nodes means unbounded — every
	// rank runnable at once, multiplexed over GOMAXPROCS by the Go
	// scheduler. It is a host-side resource control only: any value yields
	// bit-identical virtual clocks, traces, metrics and tables, which is why
	// the job service may vary it per job without perturbing the
	// content-addressed result cache.
	Workers int
	// Trace, when non-nil, records every rank's virtual-time events for
	// wait/idle attribution, critical-path analysis, and Chrome trace
	// export (see package trace). Nil adds no cost and changes no times.
	// On a run that restarts after an injected crash, the trace covers the
	// final (successful) attempt only.
	Trace *trace.Recorder
	// Metrics, when non-nil, receives typed counters/gauges/histograms
	// from the runtime and numerical layers (see package metrics), plus a
	// post-run roll-up derived from Result and — when Trace is also set —
	// from the trace summary. Nil adds no cost and changes no times; like
	// Trace, live per-rank series cover the final attempt only.
	Metrics *metrics.Registry
	// Faults, when non-nil, is the deterministic fault plan perturbing the
	// run (see package fault). Nil — or an empty plan — leaves every
	// virtual clock and Result number bit-identical to an unfaulted run.
	Faults *fault.Plan
	// CheckpointEvery is the number of steps between checkpoint snapshots
	// used to recover from injected rank crashes. 0 picks a default (5)
	// when the fault plan schedules crashes and disables checkpointing
	// otherwise; negative disables it entirely (a crash then restarts the
	// run from step 0 on the surviving nodes).
	CheckpointEvery int
	// OnStep, when non-nil, is invoked by rank 0 after each timestep's
	// statistics capture with the 0-based step index, that step's stats,
	// and rank 0's virtual clock. It is a host-side observer: it runs on
	// the rank-0 goroutine between module barriers, reads nothing but its
	// arguments, and must not block for long (every simulated rank is
	// waiting on the trailing barrier). Like Trace and Metrics it never
	// advances a virtual clock, so attaching it leaves runs bit-identical;
	// on a crash-restart attempt, re-executed steps fire it again.
	OnStep func(step int, stats StepStats, vclock float64)
	// Interrupt, when non-nil, is the run's cancellation hook: rank 0
	// polls it at each step boundary (after that step's OnStep) with the
	// 0-based step index. Returning a non-nil error stops the run cleanly
	// — every rank exits the timestep loop at the same boundary, the
	// world's goroutines join, and Run returns an *InterruptError wrapping
	// the hook's error instead of a Result. The hook runs on the host wall
	// clock and is never charged to a virtual clock, so a hook that keeps
	// returning nil (or a nil hook) leaves the run bit-identical; it is
	// how the job service threads a context.Context's deadline or a
	// DELETE /jobs cancellation into a running solve without perturbing
	// uncancelled runs. The final step is never polled — a run that
	// reaches it completes.
	Interrupt func(step int) error
}

// InterruptError reports a run stopped by Config.Interrupt. Unwrap exposes
// the hook's error so callers can classify the cause with errors.Is (e.g.
// context.Canceled vs context.DeadlineExceeded).
type InterruptError struct {
	// Step is the 0-based step boundary at which the hook fired.
	Step int
	// Err is the hook's error.
	Err error
}

func (e *InterruptError) Error() string {
	return fmt.Sprintf("core: run interrupted at step %d: %v", e.Step, e.Err)
}

func (e *InterruptError) Unwrap() error { return e.Err }

// StepStats records one timestep's virtual-time breakdown (seconds, equal
// across ranks because modules are barrier-separated).
type StepStats struct {
	Flow    float64
	Motion  float64
	Connect float64
	Balance float64
	// FlowWait..BalanceWait are rank 0's blocked seconds inside each
	// module this step (receive wait plus barrier wait) — the
	// communication-overhead share the aggregate module times hide. Wait
	// time varies by rank; rank 0's is recorded as the representative
	// because it costs nothing to read (no extra collectives that would
	// perturb the virtual clocks).
	FlowWait    float64
	MotionWait  float64
	ConnectWait float64
	BalanceWait float64
	// IGBPs is the composite fringe count this step.
	IGBPs int
	// MaxF is the connectivity load-imbalance factor max_p I(p)/Ī.
	MaxF float64
}

// TotalWait returns the step's blocked time across all modules (rank 0).
func (s StepStats) TotalWait() float64 {
	return s.FlowWait + s.MotionWait + s.ConnectWait + s.BalanceWait
}

// Total returns the step's wall time across all modules.
func (s StepStats) Total() float64 { return s.Flow + s.Motion + s.Connect + s.Balance }

// Result summarizes a run.
type Result struct {
	Config    Config
	Steps     []StepStats
	TotalTime float64 // virtual seconds over the measured steps
	Flops     float64 // total floating-point work over measured steps
	// Phase totals (virtual seconds).
	FlowTime, MotionTime, ConnectTime, BalanceTime float64
	// Per-module blocked time (rank 0's receive + barrier wait seconds)
	// over the measured steps; subsets of the matching phase totals.
	FlowWaitTime, MotionWaitTime, ConnectWaitTime, BalanceWaitTime float64
	// Rebalances counts step-boundary repartitions (dynamic or diffusive
	// scheme).
	Rebalances int
	// MovedPoints is the total gridpoint volume those repartitions
	// shipped between ranks (owner changed), summed over all rebalances.
	MovedPoints int
	// IGBPs is the steady-state composite fringe count.
	IGBPs int
	// Orphans is the final orphan count.
	Orphans int
	// Force is the latest aerodynamic force on the case's moving body.
	Force geom.Vec3
	// Np is the final per-grid processor distribution.
	Np []int
	// Tau is the static balancer's converged tolerance factor.
	Tau float64
	// Field and Surface hold sampled output when Config.Sample is set.
	Field   []FieldSample
	Surface []SurfaceSample

	// Fault and recovery reporting (zero on fault-free runs). TotalTime,
	// Flops and the phase totals above include the work of crashed
	// attempts that was later redone — they measure the cost to solution
	// under the fault plan, not just the final attempt.
	//
	// Recoveries counts crash-triggered restarts; RecoverySteps the
	// timesteps re-executed because they post-dated the last checkpoint;
	// RecoveryTime the virtual seconds of lost (re-executed) work.
	Recoveries    int
	RecoverySteps int
	RecoveryTime  float64
	// Checkpoints counts snapshots taken; CheckpointTime is their modeled
	// virtual cost (rank 0).
	Checkpoints    int
	CheckpointTime float64
	// FinalNodes is the processor count of the successful attempt (smaller
	// than Config.Nodes after crashes).
	FinalNodes int
	// DroppedMsgs counts fault-injected message drops across all ranks and
	// attempts; SendRetries the reliable-send retransmissions among them;
	// FaultWaitTime the total virtual seconds (summed over ranks and
	// attempts) lost to retry backoff and loss discovery.
	DroppedMsgs   int
	SendRetries   int
	FaultWaitTime float64
}

// MflopsPerNode returns the average per-node Megaflop rate, the paper's
// Table 1/3/4 statistic: total flops over (wall time x nodes).
func (r *Result) MflopsPerNode() float64 {
	if r.TotalTime <= 0 {
		return 0
	}
	return r.Flops / (r.TotalTime * float64(r.Config.Nodes)) / 1e6
}

// PctConnect returns the percentage of time spent in the connectivity
// solution (the paper's "% time in DCF3D").
func (r *Result) PctConnect() float64 {
	t := r.TotalTime
	if t <= 0 {
		return 0
	}
	return 100 * r.ConnectTime / t
}

// TotalWaitTime returns rank 0's blocked seconds over the measured steps,
// summed across modules.
func (r *Result) TotalWaitTime() float64 {
	return r.FlowWaitTime + r.MotionWaitTime + r.ConnectWaitTime + r.BalanceWaitTime
}

// PctWait returns the percentage of the measured time rank 0 spent blocked
// (receive wait plus barrier wait) rather than computing.
func (r *Result) PctWait() float64 {
	if r.TotalTime <= 0 {
		return 0
	}
	return 100 * r.TotalWaitTime() / r.TotalTime
}

// TimePerStep returns virtual seconds per timestep.
func (r *Result) TimePerStep() float64 {
	if len(r.Steps) == 0 {
		return 0
	}
	return r.TotalTime / float64(len(r.Steps))
}

// Run executes the case on the simulated machine and returns the measured
// statistics. The initial connectivity solution and solver setup are
// treated as preprocessing and excluded, as in the paper's tables.
//
// Under a fault plan with scheduled rank crashes, Run recovers: a crashed
// rank surfaces as a typed failure, the run rolls back to the last
// checkpoint (or step 0 without one), the dead rank's work is re-spread
// over the survivors by the static balancer, and the loop resumes — with
// the recovery cost recorded in the Result rather than returned as an
// error. Non-crash rank panics still propagate as panics (they are bugs).
func Run(cfg Config) (*Result, error) {
	if cfg.Steps < 1 {
		return nil, fmt.Errorf("core: need at least 1 step")
	}
	if cfg.CheckInterval <= 0 {
		cfg.CheckInterval = 5
	}
	if cfg.CFL <= 0 {
		cfg.CFL = flow.DefaultCFL
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return nil, err
		}
	}
	c := cfg.Case
	sizes := c.GridSizes()
	dims := c.GridDims()

	// Resolve the balancer. The empty name reproduces the historical
	// behavior exactly: a finite positive Fo selects the dynamic scheme,
	// anything else pure static balancing.
	if cfg.Balancer == "" {
		if cfg.Fo > 0 && !math.IsInf(cfg.Fo, 1) {
			cfg.Balancer = "dynamic"
		} else {
			cfg.Balancer = "static"
		}
	}
	bal, err := balance.New(cfg.Balancer, balance.Params{
		Fo: cfg.Fo, CheckInterval: cfg.CheckInterval,
	})
	if err != nil {
		return nil, err
	}
	// Grid centers feed geometry-aware balancers (SFC placement); computed
	// host-side, they cost no virtual time and are ignored by the others.
	centers := make([][3]float64, len(c.Sys.Grids))
	for i, g := range c.Sys.Grids {
		b := g.Bounds()
		centers[i] = [3]float64{
			(b.Min.X + b.Max.X) / 2,
			(b.Min.Y + b.Max.Y) / 2,
			(b.Min.Z + b.Max.Z) / 2,
		}
	}

	eng := fault.NewEngine(cfg.Faults)
	ckEvery := cfg.CheckpointEvery
	if ckEvery == 0 && cfg.Faults.HasCrashes() {
		ckEvery = 5
	}
	if ckEvery < 0 {
		ckEvery = 0
	}

	nodes := cfg.Nodes
	var rec recovery
	var ck *checkpoint
	for {
		input := balance.Input{
			Sizes: sizes, Dims: dims, Centers: centers,
			NP: nodes, Slabs: cfg.SlabDecomp,
		}
		plan, err := bal.Plan(input)
		if err != nil {
			return nil, err
		}

		// The world's machine copy carries the fault hooks; cfg.Machine
		// stays clean (nil hooks delegate to the exact unhooked arithmetic,
		// so a nil or empty plan is bit-identical to no fault layer).
		mach := cfg.Machine
		if eng != nil {
			mach.RateHook = eng.RateScale
			mach.LinkHook = eng.LinkScale
			eng.Attach(nodes)
		}
		world := par.NewWorld(nodes, mach)
		world.SetParallelism(cfg.Workers)
		world.SetTrace(cfg.Trace)
		world.SetMetrics(cfg.Metrics)
		if eng != nil {
			world.SetFaults(eng)
		}
		st := newRunState(cfg, plan)
		st.eng, st.ckEvery = eng, ckEvery
		st.balInput = input
		if sb, ok := bal.(balance.StepBalancer); ok && sb.Active() {
			// Only an active step balancer gathers measurements at check
			// boundaries; anything else leaves the balance phase exactly
			// as a pure static run (bit-identical clocks).
			st.stepBal = sb
		}
		if ck != nil {
			st.restoreFrom(ck)
		}

		ranks, err := world.RunErr(func(r *par.Rank) { st.rankMain(r) })
		for _, rk := range ranks {
			rec.dropped += rk.Dropped
			rec.retries += rk.Retries
			rec.faultWait += rk.TotalFaultWaitTime()
		}
		if err == nil {
			if st.stopErr != nil {
				return nil, &InterruptError{Step: st.stopStep, Err: st.stopErr}
			}
			res := rec.merge(st.finish())
			rollupMetrics(cfg, res)
			return res, nil
		}
		var rf *par.RankFailure
		if !errors.As(err, &rf) {
			panic(err.Error())
		}
		crash, isCrash := rf.Crashed()
		if !isCrash || eng == nil {
			// A real bug, not a modeled crash: fail as loudly as Run
			// always has.
			panic(err.Error())
		}

		// Account the failed attempt: which step and clock the next attempt
		// resumes from, how much measured work was lost, and the raw flops
		// and module times it burned (they are part of the cost to
		// solution under the fault plan).
		rec.count++
		resumeStep, resumeClock := 0, st.measStart
		if st.ck != nil {
			resumeStep = st.ck.step
			if st.ck != ck {
				// Captured during this attempt: the loss is only the work
				// since the snapshot, on this attempt's own timeline.
				resumeClock = st.ck.clock
			}
		}
		rec.steps += crash.Step - resumeStep
		rec.time += crash.Clock - resumeClock
		rec.prevTime += crash.Clock - st.measStart
		for i, rk := range ranks {
			rec.flops += rk.TotalFlops() - st.preFlops[i]
		}
		r0 := ranks[0]
		for i, p := range [4]par.Phase{par.PhaseFlow, par.PhaseMotion, par.PhaseConnect, par.PhaseBalance} {
			rec.mod[i] += r0.PhaseTime(p) - st.preMod[i]
			rec.mod[4+i] += r0.WaitTime(p) - st.preMod[4+i]
		}
		rec.checkpoints += st.result.Checkpoints
		rec.checkpointTime += st.result.CheckpointTime
		ck = st.ck

		nodes--
		if nodes < 1 {
			return nil, fmt.Errorf("core: rank %d crashed at step %d and no nodes remain to restart on", rf.Rank, crash.Step)
		}
	}
}

// recovery accumulates fault bookkeeping across crashed attempts.
type recovery struct {
	count, steps     int
	time, prevTime   float64
	flops            float64
	mod              [8]float64 // flow/motion/connect/balance times, then waits
	checkpoints      int
	checkpointTime   float64
	dropped, retries int
	faultWait        float64
}

// merge folds the accumulated recovery cost of crashed attempts into the
// successful attempt's Result.
func (rec *recovery) merge(res *Result) *Result {
	res.TotalTime += rec.prevTime
	res.Flops += rec.flops
	res.FlowTime += rec.mod[0]
	res.MotionTime += rec.mod[1]
	res.ConnectTime += rec.mod[2]
	res.BalanceTime += rec.mod[3]
	res.FlowWaitTime += rec.mod[4]
	res.MotionWaitTime += rec.mod[5]
	res.ConnectWaitTime += rec.mod[6]
	res.BalanceWaitTime += rec.mod[7]
	res.Recoveries = rec.count
	res.RecoverySteps = rec.steps
	res.RecoveryTime = rec.time
	res.Checkpoints += rec.checkpoints
	res.CheckpointTime += rec.checkpointTime
	res.DroppedMsgs = rec.dropped
	res.SendRetries = rec.retries
	res.FaultWaitTime = rec.faultWait
	return res
}

// finish assembles the Result after all ranks have returned.
func (st *runState) finish() *Result {
	st.sampleResults()
	res := st.result
	res.Config = st.cfg
	res.Steps = st.stats
	res.Rebalances = st.rebalances
	res.MovedPoints = st.movedPoints
	res.Np = append([]int(nil), st.plan.Np...)
	res.Tau = st.plan.Tau
	res.FinalNodes = st.plan.NP()
	if n := len(st.stats); n > 0 {
		res.IGBPs = st.stats[n-1].IGBPs
	}
	return &res
}

// EstimateSerialTime models the single-processor Cray reference of Table 6:
// the same floating-point work executed at the serial machine's sustained
// rate with no communication ("1 YMP unit = 1 unit of time on [a] single
// processor Cray YMP/864").
func EstimateSerialTime(flops float64, m machine.Model) float64 {
	return m.ComputeTime(flops, 64<<20)
}

// planFor builds the initial static plan for a config (test helper).
func planFor(cfg Config) (*balance.Plan, error) {
	plan, err := balance.Static(cfg.Case.GridSizes(), cfg.Nodes)
	if err != nil {
		return nil, err
	}
	balance.SubdividePlan(plan, cfg.Case.GridDims())
	return plan, nil
}

// runState is the shared coordination state of one run; per-rank slices are
// indexed by rank and touched only at barrier-separated points.
type runState struct {
	cfg  Config
	plan *balance.Plan

	blocks  []*flow.Block
	solvers []*dcf.Solver

	// World-shared per-rank envelope arenas, attached to every block and
	// solver (including post-repartition rebuilds) so hot-path envelope
	// reuse never contends across ranks at GOMAXPROCS > 1.
	flowAr *flow.Arenas
	dcfAr  *dcf.Arenas

	dt float64

	stats       []StepStats
	rebalances  int
	movedPoints int
	result      Result

	// Step-boundary balancer state: stepBal is non-nil only when the
	// resolved balancer has an active step hook; balInput is the planning
	// input re-presented at each check; prevClock/prevWait are per-rank
	// snapshots from the previous check, used to compute busy/wait deltas
	// for balancers that need them.
	stepBal   balance.StepBalancer
	balInput  balance.Input
	prevClock []float64
	prevWait  []float64

	// Fault layer (nil/zero on unfaulted runs).
	eng     *fault.Engine
	ckEvery int
	// Restart state primed by restoreFrom before the world starts.
	startStep int
	restored  bool
	restoreQ  [][]float64
	ck        *checkpoint
	// Measurement baselines recorded at the top of the timestep loop, read
	// by Run after the world's goroutines have joined to account the flops
	// and module times a crashed attempt burned.
	measStart float64
	preFlops  []float64
	preMod    [8]float64
	// Interrupt outcome: rank 0 writes these between the post-balance
	// barrier and the trailing step barrier (peers quiescent); every rank
	// reads them at the next step boundary, after that barrier's
	// happens-before edge, so all ranks leave the loop together.
	stopErr  error
	stopStep int
}

func newRunState(cfg Config, plan *balance.Plan) *runState {
	n := plan.NP()
	st := &runState{
		cfg:       cfg,
		plan:      plan,
		blocks:    make([]*flow.Block, n),
		solvers:   make([]*dcf.Solver, n),
		flowAr:    flow.NewArenas(n),
		dcfAr:     dcf.NewArenas(n),
		preFlops:  make([]float64, n),
		prevClock: make([]float64, n),
		prevWait:  make([]float64, n),
	}
	return st
}

func dcfParts(plan *balance.Plan) []dcf.Part {
	parts := make([]dcf.Part, plan.NP())
	for i, p := range plan.Parts {
		parts[i] = dcf.Part{Grid: p.Grid, Rank: p.Rank, Box: p.Box}
	}
	return parts
}

// buildBlocks constructs every rank's block for the current plan; called by
// rank 0 between barriers (block construction reads shared grid geometry).
func (st *runState) buildBlocks() {
	c := st.cfg.Case
	for gi := range c.Sys.Grids {
		var boxes []grid.IBox
		var ranks []int
		for rank, part := range st.plan.Parts {
			if part.Grid == gi {
				boxes = append(boxes, part.Box)
				ranks = append(ranks, rank)
			}
		}
		blks := flow.BuildBlocks(c.Sys.Grids[gi], boxes, ranks, c.FS)
		for i, rk := range ranks {
			if c.ViscousAll {
				blks[i].SetViscousDirs([3]bool{true, true, true})
			}
			blks[i].UseArenas(st.flowAr)
			st.blocks[rk] = blks[i]
		}
	}
}
