package core

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"overd/internal/metrics"
	"overd/internal/trace"
)

// TestTracedRunIsBitIdentical: attaching a recorder must not perturb the
// virtual clocks — tracing observes the run, it does not participate in it.
func TestTracedRunIsBitIdentical(t *testing.T) {
	plain, err := Run(smallAirfoil(3, math.Inf(1), 3))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallAirfoil(3, math.Inf(1), 3)
	cfg.Trace = trace.NewRecorder()
	traced, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.TotalTime != traced.TotalTime ||
		plain.FlowTime != traced.FlowTime ||
		plain.ConnectTime != traced.ConnectTime ||
		plain.Flops != traced.Flops {
		t.Errorf("traced run diverged: total %.17g vs %.17g, flow %.17g vs %.17g",
			plain.TotalTime, traced.TotalTime, plain.FlowTime, traced.FlowTime)
	}
}

// TestTraceSummaryReconcilesWithResult: each rank's busy+wait over the
// measured window must equal Result.TotalTime (the barriers separating
// modules keep all rank clocks equal at the window bounds), and the wait
// columns in Result must match rank 0's trace decomposition.
func TestTraceSummaryReconcilesWithResult(t *testing.T) {
	cfg := smallAirfoil(3, math.Inf(1), 3)
	rec := trace.NewRecorder()
	cfg.Trace = rec
	reg := metrics.New()
	cfg.Metrics = reg
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := rec.Summarize()
	if len(s.Ranks) != cfg.Nodes {
		t.Fatalf("summary has %d ranks, want %d", len(s.Ranks), cfg.Nodes)
	}
	tol := 1e-9 * res.TotalTime
	if win := s.WindowEnd - s.WindowStart; math.Abs(win-res.TotalTime) > tol {
		t.Errorf("trace window %.12g != TotalTime %.12g", win, res.TotalTime)
	}
	for _, rs := range s.Ranks {
		if got := rs.Total(); math.Abs(got-res.TotalTime) > tol {
			t.Errorf("rank %d busy+wait %.12g != TotalTime %.12g (busy %.4g recv %.4g barrier %.4g)",
				rs.Rank, got, res.TotalTime, rs.Busy, rs.RecvWait, rs.BarrierWait)
		}
	}
	// Rank 0's trace decomposition matches the always-on Result wait columns.
	r0 := s.Ranks[0]
	wait0 := r0.RecvWait + r0.BarrierWait
	if math.Abs(wait0-res.TotalWaitTime()) > tol {
		t.Errorf("rank 0 trace wait %.12g != Result wait %.12g", wait0, res.TotalWaitTime())
	}
	// Per-step wait columns sum to the run totals.
	var fw, mw, cw, bw float64
	for _, st := range res.Steps {
		fw += st.FlowWait
		mw += st.MotionWait
		cw += st.ConnectWait
		bw += st.BalanceWait
	}
	for _, chk := range []struct {
		name       string
		sum, total float64
	}{
		{"flow", fw, res.FlowWaitTime}, {"motion", mw, res.MotionWaitTime},
		{"connect", cw, res.ConnectWaitTime}, {"balance", bw, res.BalanceWaitTime},
	} {
		if math.Abs(chk.sum-chk.total) > tol {
			t.Errorf("%s step waits sum %.12g != total %.12g", chk.name, chk.sum, chk.total)
		}
	}
	// Wait is a subset of the phase totals.
	if res.FlowWaitTime > res.FlowTime || res.ConnectWaitTime > res.ConnectTime {
		t.Errorf("wait exceeds phase time: flow %.4g/%.4g connect %.4g/%.4g",
			res.FlowWaitTime, res.FlowTime, res.ConnectWaitTime, res.ConnectTime)
	}

	// ---- Metrics plane reconciles with both layers. ----
	//
	// The live windowed histograms observe the same wait values at the same
	// emit sites, in the same per-(rank,phase) order the analyzer clips and
	// accumulates events, so their sums are EXACTLY equal (==, no
	// tolerance). Likewise the message/byte counters mirror the KindSend
	// emit sites inside the window.
	for _, rs := range s.Ranks {
		for p := range rs.ByPhase {
			pb := rs.ByPhase[p]
			if _, sum := reg.HistogramStats("overd_par_recv_wait_seconds", rs.Rank, p); sum != pb.RecvWait {
				t.Errorf("rank %d phase %d: metrics recv wait %.17g != trace %.17g", rs.Rank, p, sum, pb.RecvWait)
			}
			if _, sum := reg.HistogramStats("overd_par_barrier_wait_seconds", rs.Rank, p); sum != pb.BarrierWait {
				t.Errorf("rank %d phase %d: metrics barrier wait %.17g != trace %.17g", rs.Rank, p, sum, pb.BarrierWait)
			}
			if _, sum := reg.HistogramStats("overd_par_fault_wait_seconds", rs.Rank, p); sum != pb.FaultWait {
				t.Errorf("rank %d phase %d: metrics fault wait %.17g != trace %.17g", rs.Rank, p, sum, pb.FaultWait)
			}
		}
		if got := reg.SumSeries("overd_par_msgs_sent_total", rs.Rank); got != float64(rs.MsgsSent) {
			t.Errorf("rank %d: metrics msgs %.0f != trace %d", rs.Rank, got, rs.MsgsSent)
		}
		if got := reg.SumSeries("overd_par_bytes_sent_total", rs.Rank); got != float64(rs.BytesSent) {
			t.Errorf("rank %d: metrics bytes %.0f != trace %d", rs.Rank, got, rs.BytesSent)
		}
		// The post-run roll-up copies the summary's per-rank totals, so
		// busy/wait gauges are bit-identical to the trace aggregates.
		for _, chk := range []struct {
			metric string
			want   float64
		}{
			{"overd_trace_rank_busy_seconds", rs.Busy},
			{"overd_trace_rank_recv_wait_seconds", rs.RecvWait},
			{"overd_trace_rank_barrier_wait_seconds", rs.BarrierWait},
			{"overd_trace_rank_fault_wait_seconds", rs.FaultWait},
		} {
			if got, _ := reg.GaugeValue(chk.metric, rs.Rank); got != chk.want {
				t.Errorf("rank %d: %s %.17g != summary %.17g", rs.Rank, chk.metric, got, chk.want)
			}
		}
	}
	// Rank 0's metrics wait totals also reconcile with the always-on
	// Result wait columns (same tolerance as the trace comparison above:
	// Result accumulates per-phase float counters in a different order).
	var metWait0 float64
	for p := range s.Ranks[0].ByPhase {
		_, rsum := reg.HistogramStats("overd_par_recv_wait_seconds", 0, p)
		_, bsum := reg.HistogramStats("overd_par_barrier_wait_seconds", 0, p)
		metWait0 += rsum + bsum
	}
	if math.Abs(metWait0-res.TotalWaitTime()) > tol {
		t.Errorf("rank 0 metrics wait %.12g != Result wait %.12g", metWait0, res.TotalWaitTime())
	}
	// And the rolled-up window gauge matches the summary window.
	if win, _ := reg.GaugeValue("overd_trace_window_seconds", 0); win != s.WindowEnd-s.WindowStart {
		t.Errorf("window gauge %.17g != summary window %.17g", win, s.WindowEnd-s.WindowStart)
	}
}

// TestMetricsRunIsBitIdentical: attaching a metrics registry (with or
// without tracing) must not perturb the virtual clocks — the registry
// observes the run, it does not participate in it.
func TestMetricsRunIsBitIdentical(t *testing.T) {
	plain, err := Run(smallAirfoil(3, math.Inf(1), 3))
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallAirfoil(3, math.Inf(1), 3)
	cfg.Metrics = metrics.New()
	metered, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.TotalTime != metered.TotalTime ||
		plain.FlowTime != metered.FlowTime ||
		plain.ConnectTime != metered.ConnectTime ||
		plain.Flops != metered.Flops {
		t.Errorf("metered run diverged: total %.17g vs %.17g, flow %.17g vs %.17g",
			plain.TotalTime, metered.TotalTime, plain.FlowTime, metered.FlowTime)
	}
	// Result-derived roll-up is published even without a trace recorder.
	if v, _ := cfg.Metrics.GaugeValue("overd_run_virtual_seconds", 0); v != metered.TotalTime {
		t.Errorf("overd_run_virtual_seconds %.17g != TotalTime %.17g", v, metered.TotalTime)
	}
	if v := cfg.Metrics.CounterValue("overd_fault_recoveries_total", 0); v != 0 {
		t.Errorf("fault-free run reports %v recoveries", v)
	}
}

// TestTraceCriticalPathExplainsMakespan: the extracted path must span the
// measured window and name a dominant rank/phase.
func TestTraceCriticalPathExplainsMakespan(t *testing.T) {
	cfg := smallAirfoil(3, math.Inf(1), 3)
	rec := trace.NewRecorder()
	cfg.Trace = rec
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cp := rec.CriticalPath()
	if math.Abs(cp.Makespan-res.TotalTime) > 1e-9*res.TotalTime {
		t.Errorf("path makespan %.12g != TotalTime %.12g", cp.Makespan, res.TotalTime)
	}
	// The chain should explain essentially the whole window: every gap is
	// a dependency the walk failed to follow.
	if cp.Covered < 0.95*cp.Makespan {
		t.Errorf("path covers %.4g of %.4g makespan (%.1f%%)",
			cp.Covered, cp.Makespan, 100*cp.Covered/cp.Makespan)
	}
	rank, phase, sec := cp.Dominant()
	if rank < 0 || rank >= cfg.Nodes || sec <= 0 {
		t.Errorf("dominant = rank %d phase %d %.4gs", rank, phase, sec)
	}
	// In a barrier-separated run the flow module dominates the airfoil
	// case's makespan, as in the paper's Table 1 breakdown.
	byPhase := cp.TimeByPhase()
	if byPhase[0] <= byPhase[2] { // PhaseFlow vs PhaseConnect
		t.Errorf("expected flow-dominated path, got %v", byPhase)
	}
}

// TestTraceChromeExportFromRun exercises the full pipeline: a real run's
// recorder exports valid catapult JSON with one track per rank and at least
// four event categories (the Perfetto-loadability criteria).
func TestTraceChromeExportFromRun(t *testing.T) {
	cfg := smallAirfoil(3, math.Inf(1), 2)
	rec := trace.NewRecorder()
	cfg.Trace = rec
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rec.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	cats := map[string]bool{}
	tracks := map[float64]bool{}
	for _, e := range doc.TraceEvents {
		if c, ok := e["cat"].(string); ok && e["ph"] != "M" {
			cats[c] = true
		}
		if e["ph"] == "X" {
			tracks[e["tid"].(float64)] = true
		}
	}
	if len(tracks) != cfg.Nodes {
		t.Errorf("%d rank tracks, want %d", len(tracks), cfg.Nodes)
	}
	if len(cats) < 4 {
		t.Errorf("%d event categories %v, want >= 4", len(cats), cats)
	}
}
