package overset

import (
	"math"
	"testing"

	"overd/internal/geom"
	"overd/internal/grid"
	"overd/internal/gridgen"
)

func TestAirfoilCutter(t *testing.T) {
	c := NewAirfoilCutter(0.01)
	if !c.Inside(geom.Vec3{X: 0.3, Y: 0}) {
		t.Error("chord interior should be inside")
	}
	if !c.Inside(geom.Vec3{X: 0.3, Y: 0.05}) {
		t.Error("point under surface should be inside")
	}
	if c.Inside(geom.Vec3{X: 0.3, Y: 0.2}) {
		t.Error("point above airfoil should be outside")
	}
	if c.Inside(geom.Vec3{X: 2, Y: 0}) {
		t.Error("point behind airfoil should be outside")
	}
	// Rotated cutter follows the transform.
	c.SetTransform(geom.Transform{R: geom.RotZ(math.Pi / 2), T: geom.Vec3{}})
	if !c.Inside(geom.Vec3{X: 0, Y: 0.3}) {
		t.Error("rotated airfoil should contain rotated chord point")
	}
	if !c.Bounds().Contains(geom.Vec3{X: 0, Y: 0.9}) {
		t.Error("rotated bounds should cover rotated chord")
	}
}

func TestRevolvedCutter(t *testing.T) {
	c := NewRevolvedCutter(gridgen.OgiveProfile(4, 0.4), 0.02)
	if !c.Inside(geom.Vec3{X: 2, Y: 0.2, Z: 0.2}) {
		t.Error("midbody interior should be inside")
	}
	if c.Inside(geom.Vec3{X: 2, Y: 0.5, Z: 0.3}) {
		t.Error("outside radius should be outside")
	}
	if c.Inside(geom.Vec3{X: 5, Y: 0, Z: 0}) {
		t.Error("beyond tail should be outside")
	}
	if !c.Bounds().Contains(geom.Vec3{X: 2, Y: 0.3, Z: 0}) {
		t.Error("bounds should cover the body")
	}
}

func TestEllipsoidAndBoxCutters(t *testing.T) {
	e := NewEllipsoidCutter(2, 0.5, 1, 0)
	if !e.Inside(geom.Vec3{X: 1, Y: 0, Z: 0}) || e.Inside(geom.Vec3{X: 2.5, Y: 0, Z: 0}) {
		t.Error("ellipsoid cutter wrong")
	}
	b := NewBoxCutter(geom.Box{Min: geom.Vec3{X: -1, Y: -1, Z: -1}, Max: geom.Vec3{X: 1, Y: 1, Z: 1}})
	if !b.Inside(geom.Vec3{}) || b.Inside(geom.Vec3{X: 2}) {
		t.Error("box cutter wrong")
	}
	b.SetTransform(geom.Transform{R: geom.Identity3(), T: geom.Vec3{X: 5}})
	if !b.Inside(geom.Vec3{X: 5}) || b.Inside(geom.Vec3{}) {
		t.Error("translated box cutter wrong")
	}
}

func TestHoleMapMatchesCutter(t *testing.T) {
	c := NewAirfoilCutter(0.02)
	hm := NewHoleMap(c, 32)
	// Sample points: map answers must agree with the analytic cutter.
	for xi := 0; xi <= 40; xi++ {
		for yi := -20; yi <= 20; yi++ {
			p := geom.Vec3{X: float64(xi)/20 - 0.5, Y: float64(yi) / 100}
			if hm.Inside(p) != c.Inside(p) {
				t.Fatalf("hole map disagrees at %v", p)
			}
		}
	}
	if hm.Fallbacks >= hm.Queries {
		t.Errorf("hole map should answer most queries without fallback: %d/%d",
			hm.Fallbacks, hm.Queries)
	}
}

func TestFindDonorCartesianDirect(t *testing.T) {
	g := gridgen.CartesianBox(0, "bg", 11, 11, 11,
		geom.Box{Min: geom.Vec3{X: -5, Y: -5, Z: -5}, Max: geom.Vec3{X: 5, Y: 5, Z: 5}})
	res := FindDonor(g, 0, geom.Vec3{X: 0.3, Y: -1.6, Z: 2.2}, [3]int{0, 0, 0})
	if !res.OK {
		t.Fatal("Cartesian locate failed")
	}
	if res.Steps != 1 {
		t.Errorf("Cartesian locate should take 1 step, took %d", res.Steps)
	}
	d := res.Donor
	// Verify the interpolated position reproduces the query point.
	pos := reconstructPos(g, d)
	if pos.Dist(geom.Vec3{X: 0.3, Y: -1.6, Z: 2.2}) > 1e-9 {
		t.Errorf("donor reconstructs %v", pos)
	}
	// Outside the grid fails.
	if FindDonor(g, 0, geom.Vec3{X: 50}, [3]int{0, 0, 0}).OK {
		t.Error("outside point should fail")
	}
}

// reconstructPos evaluates the cell's trilinear map at the donor coords.
func reconstructPos(g *grid.Grid, d Donor) geom.Vec3 {
	var p [8]geom.Vec3
	kmax := 1
	if g.NK == 1 {
		kmax = 0
	}
	for dk := 0; dk <= kmax; dk++ {
		for dj := 0; dj <= 1; dj++ {
			for di := 0; di <= 1; di++ {
				p[di+2*dj+4*dk] = cornerPoint(g, d.I+di, d.J+dj, d.K+dk)
			}
		}
	}
	if g.NK == 1 {
		for m := 0; m < 4; m++ {
			p[m+4] = p[m]
		}
	}
	c := d.C
	if g.NK == 1 {
		c = 0
	}
	return trilerp(p, d.A, d.B, c)
}

func TestFindDonorCurvilinearWalk(t *testing.T) {
	g := gridgen.Annulus(0, "ring", 64, 16, 0, 0, 1, 4)
	// Points at several radii/angles; start the walk far away.
	for _, probe := range []geom.Vec3{
		{X: 2, Y: 0}, {X: -1.5, Y: 1.5}, {X: 0, Y: -3.2}, {X: 1.1, Y: 0.4},
	} {
		res := FindDonor(g, 0, probe, [3]int{0, 0, 0})
		if !res.OK {
			t.Fatalf("walk failed for %v", probe)
		}
		pos := reconstructPos(g, res.Donor)
		if pos.Dist(probe) > 1e-6 {
			t.Fatalf("donor for %v reconstructs %v", probe, pos)
		}
	}
	// A point inside the inner radius (outside the ring) must fail.
	if FindDonor(g, 0, geom.Vec3{X: 0.1, Y: 0}, [3]int{30, 8, 0}).OK {
		t.Error("point inside the hole of the ring should fail")
	}
}

func TestFindDonorRestartIsFaster(t *testing.T) {
	g := gridgen.Annulus(0, "ring", 128, 32, 0, 0, 1, 4)
	probe := geom.Vec3{X: 2.4, Y: 1.1}
	cold := FindDonor(g, 0, probe, [3]int{0, 0, 0})
	if !cold.OK {
		t.Fatal("cold search failed")
	}
	warm := FindDonor(g, 0, probe, [3]int{cold.Donor.I, cold.Donor.J, cold.Donor.K})
	if !warm.OK {
		t.Fatal("warm search failed")
	}
	if warm.Steps >= cold.Steps {
		t.Errorf("restart (%d steps) should beat cold start (%d steps)", warm.Steps, cold.Steps)
	}
}

func TestFindDonorRejectsBlankedCells(t *testing.T) {
	g := gridgen.CartesianBox(0, "bg", 8, 8, 1,
		geom.Box{Min: geom.Vec3{}, Max: geom.Vec3{X: 7, Y: 7}})
	g.IBlank[g.Idx(3, 3, 0)] = grid.IBHole
	if FindDonor(g, 0, geom.Vec3{X: 3.4, Y: 3.4}, [3]int{0, 0, 0}).OK {
		t.Error("cell with blanked corner must be rejected")
	}
	if !FindDonor(g, 0, geom.Vec3{X: 5.5, Y: 5.5}, [3]int{0, 0, 0}).OK {
		t.Error("clean cell should succeed")
	}
}

// airfoilSystem builds the paper's three-grid oscillating-airfoil system at
// a reduced size: airfoil O-grid, intermediate ring, Cartesian background.
func airfoilSystem(ni, nj int) (*grid.System, *Config) {
	af := gridgen.AirfoilOGrid(0, "airfoil", ni, nj, 1.2)
	af.Moving = true
	// The ring overlaps the airfoil body (inner radius 0.3 around
	// mid-chord) so the moving airfoil cuts holes in it, as in Fig. 2.
	ring := gridgen.Annulus(1, "ring", ni, nj, 0.5, 0, 0.3, 3.0)
	bgN := int(math.Sqrt(float64(ni * nj)))
	bg := gridgen.CartesianBox(2, "background", bgN+4, bgN+4, 1,
		geom.Box{Min: geom.Vec3{X: -6.5, Y: -7}, Max: geom.Vec3{X: 7.5, Y: 7}})
	sys := &grid.System{Grids: []*grid.Grid{af, ring, bg}}
	cfg := &Config{
		Sys: sys,
		Cutters: []*BodyCutter{{
			Cutter:     NewAirfoilCutter(0.015),
			OwnGrids:   []int{0},
			FollowGrid: 0,
		}},
		Search: map[int][]int{
			0: {1, 2},
			1: {0, 2},
			2: {1, 0},
		},
		FringeDepth: 2,
	}
	return sys, cfg
}

func TestAssembleAirfoilSystem(t *testing.T) {
	sys, cfg := airfoilSystem(64, 16)
	conn := cfg.Assemble()
	if len(conn.IGBPs) == 0 {
		t.Fatal("no IGBPs found")
	}
	// The airfoil cuts holes in the ring and/or background.
	holes := 0
	for _, g := range sys.Grids[1:] {
		holes += g.CountIBlank(grid.IBHole)
	}
	if holes == 0 {
		t.Error("airfoil should cut holes in overlapping grids")
	}
	// Most IGBPs find donors; a small orphan rate can occur at corners.
	orphanRate := float64(conn.Orphans) / float64(len(conn.IGBPs))
	if orphanRate > 0.05 {
		t.Errorf("orphan rate %.3f too high (%d of %d)", orphanRate, conn.Orphans, len(conn.IGBPs))
	}
	// Donors reconstruct receiver positions.
	for n, pt := range conn.IGBPs {
		d := conn.Donors[n]
		if d.Grid < 0 {
			continue
		}
		pos := reconstructPos(sys.Grids[d.Grid], d)
		if pos.Dist(pt.Pos) > 1e-5 {
			t.Fatalf("IGBP %d: donor reconstructs %v, want %v", n, pos, pt.Pos)
		}
		if d.Grid == pt.Grid {
			t.Fatalf("IGBP %d: self-donation", n)
		}
	}
	// IGBP/gridpoint ratio lands in the paper's neighborhood (44e-3) for
	// this class of three-grid systems.
	ratio := sys.IGBPRatio()
	if ratio < 0.01 || ratio > 0.25 {
		t.Errorf("IGBP ratio %v implausible", ratio)
	}
}

func TestAssembleRestartReducesWork(t *testing.T) {
	_, cfg := airfoilSystem(64, 16)
	first := cfg.Assemble()
	// Move the airfoil slightly (small rotation) and reassemble.
	cfg.Sys.Grids[0].ApplyTransform(geom.Transform{
		R: geom.RotZ(0.01), T: geom.Vec3{},
	})
	second := cfg.Assemble()
	if second.Steps >= first.Steps {
		t.Errorf("nth-level restart should cut search work: first %d, second %d",
			first.Steps, second.Steps)
	}
	// Ablation: disabling restart restores the from-scratch cost.
	cfg.Sys.Grids[0].ApplyTransform(geom.Transform{R: geom.RotZ(0.02), T: geom.Vec3{}})
	cfg.DisableRestart = true
	third := cfg.Assemble()
	if third.Steps <= second.Steps {
		t.Errorf("disabling restart should cost more: restart %d, scratch %d",
			second.Steps, third.Steps)
	}
}

func TestInterpolateLinearField(t *testing.T) {
	g := gridgen.CartesianBox(0, "bg", 6, 6, 6,
		geom.Box{Min: geom.Vec3{}, Max: geom.Vec3{X: 5, Y: 5, Z: 5}})
	d := Donor{Grid: 0, I: 1, J: 2, K: 3, A: 0.25, B: 0.5, C: 0.75}
	q := Interpolate(g, d, func(i, j, k int) [5]float64 {
		return [5]float64{float64(i), float64(j), float64(k), float64(i + j + k), 1}
	})
	want := [5]float64{1.25, 2.5, 3.75, 7.5, 1}
	for c := 0; c < 5; c++ {
		if math.Abs(q[c]-want[c]) > 1e-12 {
			t.Errorf("component %d = %v, want %v", c, q[c], want[c])
		}
	}
}

func TestMarkFringesDepth(t *testing.T) {
	g := gridgen.CartesianBox(0, "bg", 12, 12, 1,
		geom.Box{Min: geom.Vec3{X: -2, Y: -2}, Max: geom.Vec3{X: 2, Y: 2}})
	g.BCs[grid.JMax] = grid.BCOverset
	sys := &grid.System{Grids: []*grid.Grid{g}}
	cfg := &Config{Sys: sys, FringeDepth: 2, Search: map[int][]int{}}
	cfg.CutHoles()
	cfg.MarkFringes()
	// Two j layers at JMax are fringes.
	for i := 0; i < g.NI; i++ {
		for _, j := range []int{g.NJ - 1, g.NJ - 2} {
			if g.IBlank[g.Idx(i, j, 0)] != grid.IBFringe {
				t.Fatalf("(%d,%d) not fringe", i, j)
			}
		}
		if g.IBlank[g.Idx(i, g.NJ-3, 0)] != grid.IBField {
			t.Fatalf("third layer should stay field")
		}
	}
}

func TestHoleFringeSurroundsHole(t *testing.T) {
	g := gridgen.CartesianBox(0, "bg", 20, 20, 1,
		geom.Box{Min: geom.Vec3{X: -2, Y: -2}, Max: geom.Vec3{X: 2, Y: 2}})
	sys := &grid.System{Grids: []*grid.Grid{g}}
	cut := NewBoxCutter(geom.Box{
		Min: geom.Vec3{X: -0.5, Y: -0.5, Z: -1},
		Max: geom.Vec3{X: 0.5, Y: 0.5, Z: 1}})
	cfg := &Config{Sys: sys, FringeDepth: 1,
		Cutters: []*BodyCutter{{Cutter: cut, FollowGrid: -1}},
		Search:  map[int][]int{}}
	cfg.CutHoles()
	cfg.MarkFringes()
	if g.CountIBlank(grid.IBHole) == 0 {
		t.Fatal("no holes cut")
	}
	// Every hole's field-neighbors are fringes.
	for j := 1; j < g.NJ-1; j++ {
		for i := 1; i < g.NI-1; i++ {
			if g.IBlank[g.Idx(i, j, 0)] != grid.IBHole {
				continue
			}
			for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
				n := g.Idx(i+d[0], j+d[1], 0)
				if g.IBlank[n] == grid.IBField {
					t.Fatalf("field point adjacent to hole at (%d+%d,%d+%d)", i, d[0], j, d[1])
				}
			}
		}
	}
}
