package overset

import (
	"math"

	"overd/internal/geom"
	"overd/internal/grid"
)

// Donor identifies an interpolation source: the cell whose lowest-index
// corner is (I,J,K) in component grid Grid, with trilinear coordinates
// (A,B,C) in [0,1]³ locating the receiver point inside the cell.
type Donor struct {
	Grid    int
	I, J, K int
	A, B, C float64
}

// SearchResult reports one donor search.
type SearchResult struct {
	Donor Donor
	// Steps counts stencil-walk cell moves plus Newton iterations — the
	// work measure that feeds the connectivity cost model.
	Steps int
	OK    bool
}

// maxWalkSteps bounds a single stencil walk.
const maxWalkSteps = 400

// newtonIters per cell containment test.
const newtonIters = 4

// FindDonor walks the donor grid's cells from the start guess toward the
// world-frame point x, inverting the trilinear (bilinear in 2-D) cell
// mapping with Newton's method at each visited cell and stepping to the
// neighbor indicated by out-of-range local coordinates. The walk handles
// periodic wrap in i. Valid donors require all cell corners to be field
// points. Cartesian grids resolve directly without walking.
func FindDonor(g *grid.Grid, gi int, x geom.Vec3, start [3]int) SearchResult {
	if g.Cartesian && !g.Moving {
		return cartesianLocate(g, gi, x)
	}
	twoD := g.NK == 1
	ni, nj, nk := g.NI, g.NJ, g.NK
	// Cell index bounds (cell (i,j,k) spans points i..i+1 etc.).
	maxI := ni - 2
	if g.PeriodicI() {
		maxI = ni - 1 // the seam cell wraps to point 0
	}
	i, j, k := clampCell(start[0], 0, maxI), clampCell(start[1], 0, nj-2), 0
	if !twoD {
		k = clampCell(start[2], 0, nk-2)
	}

	// A walk pinned against an index boundary can mean the linearized
	// direction points through a topological hole (the center of an
	// annular grid, where no cells exist). Restart a few times from
	// azimuthally shifted cells before giving up.
	retries := 0
	const maxRetries = 3

	steps := 0
	for steps < maxWalkSteps {
		a, b, c, conv := invertCell(g, i, j, k, x)
		steps += newtonIters
		const tol = 1e-8
		if conv && a >= -tol && a <= 1+tol && b >= -tol && b <= 1+tol &&
			(twoD || c >= -tol && c <= 1+tol) {
			// Containment: validate corners.
			if cellIsField(g, i, j, k) {
				return SearchResult{
					Donor: Donor{Grid: gi, I: i, J: j, K: k,
						A: clamp01(a), B: clamp01(b), C: clamp01(c)},
					Steps: steps, OK: true,
				}
			}
			return SearchResult{Steps: steps} // inside a blanked cell
		}
		// Step toward the point. Move by the integer excess, clamped to a
		// modest jump so a bad Newton solution cannot fling the walk.
		di := walkStep(a)
		dj := walkStep(b)
		dk := 0
		if !twoD {
			dk = walkStep(c)
		}
		stuck := !conv || (di == 0 && dj == 0 && dk == 0)
		if !stuck {
			// Clamp to the valid cell range, sliding along boundaries so
			// the walk can travel around O-grids and along edges.
			niNew := i + di
			if g.PeriodicI() {
				niNew = ((niNew % ni) + ni) % ni
			} else {
				niNew = clampCell(niNew, 0, maxI)
			}
			njNew := clampCell(j+dj, 0, nj-2)
			nkNew := k
			if !twoD {
				nkNew = clampCell(k+dk, 0, nk-2)
			}
			if niNew == i && njNew == j && nkNew == k {
				stuck = true // pinned against the boundary
			} else {
				i, j, k = niNew, njNew, nkNew
				steps++
			}
		}
		if stuck {
			if retries >= maxRetries {
				return SearchResult{Steps: steps}
			}
			retries++
			i = ((i + (ni/(maxRetries+1))*retries) % (maxI + 1))
			j = (nj - 1) / 2
			if !twoD {
				k = (nk - 1) / 2
			}
			steps++
		}
	}
	return SearchResult{Steps: steps}
}

func walkStep(a float64) int {
	switch {
	case a < 0:
		d := int(a)
		if d == 0 {
			d = -1
		}
		if d < -8 {
			d = -8
		}
		return d
	case a > 1:
		d := int(a)
		if d < 1 {
			d = 1
		}
		if d > 8 {
			d = 8
		}
		return d
	}
	return 0
}

func clampCell(v, lo, hi int) int {
	if hi < lo {
		hi = lo
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// cornerPoint returns grid point (i,j,k) with periodic wrap in i.
func cornerPoint(g *grid.Grid, i, j, k int) geom.Vec3 {
	if g.PeriodicI() {
		i = ((i % g.NI) + g.NI) % g.NI
	}
	return g.At(i, j, k)
}

// cellIsField reports whether every corner of cell (i,j,k) carries valid
// data: field points preferred, fringe corners tolerated (their values are
// one-level-stale interpolated data — the standard relaxation when two
// grids' fringe halos overlap), holes rejected. The wrapped i-columns and
// the row index are hoisted out of the corner loop.
func cellIsField(g *grid.Grid, i, j, k int) bool {
	kmax := 1
	if g.NK == 1 {
		kmax = 0
	}
	i0, i1 := i, i+1
	if g.PeriodicI() {
		i0 = ((i0 % g.NI) + g.NI) % g.NI
		i1 = ((i1 % g.NI) + g.NI) % g.NI
	}
	ib := g.IBlank
	for dk := 0; dk <= kmax; dk++ {
		for dj := 0; dj <= 1; dj++ {
			row := g.NI * (j + dj + g.NJ*(k+dk))
			if ib[row+i0] == grid.IBHole || ib[row+i1] == grid.IBHole {
				return false
			}
		}
	}
	return true
}

// invertCell solves the trilinear mapping of cell (i,j,k) for the local
// coordinates of x via Newton iteration. Returns the (possibly out of
// range) coordinates and whether the iteration stayed finite.
func invertCell(g *grid.Grid, i, j, k int, x geom.Vec3) (a, b, c float64, ok bool) {
	twoD := g.NK == 1
	// Gather corners (periodic wrap hoisted; the two i-columns repeat
	// across the j/k corner pairs).
	var p [8]geom.Vec3
	kmax := 1
	if twoD {
		kmax = 0
	}
	i0, i1 := i, i+1
	if g.PeriodicI() {
		i0 = ((i0 % g.NI) + g.NI) % g.NI
		i1 = ((i1 % g.NI) + g.NI) % g.NI
	}
	gx, gy, gz := g.X, g.Y, g.Z
	for dk := 0; dk <= kmax; dk++ {
		for dj := 0; dj <= 1; dj++ {
			row := g.NI * (j + dj + g.NJ*(k+dk))
			n0, n1 := row+i0, row+i1
			m := 2*dj + 4*dk
			p[m] = geom.Vec3{X: gx[n0], Y: gy[n0], Z: gz[n0]}
			p[m+1] = geom.Vec3{X: gx[n1], Y: gy[n1], Z: gz[n1]}
		}
	}
	if twoD {
		for m := 0; m < 4; m++ {
			p[m+4] = p[m].Add(geom.Vec3{Z: 1})
		}
	}
	a, b, c = 0.5, 0.5, 0.5
	if twoD {
		c = 0
	}
	for iter := 0; iter < newtonIters; iter++ {
		// Position and partials of the trilinear map at (a,b,c).
		pos, ra, rb, rc := trilinearKernel(&p, a, b, c)
		res := x.Sub(pos)
		m := geom.Mat3{
			{ra.X, rb.X, rc.X},
			{ra.Y, rb.Y, rc.Y},
			{ra.Z, rb.Z, rc.Z},
		}
		inv, invOK := m.Inverse()
		if !invOK {
			return a, b, c, false
		}
		d := inv.MulVec(res)
		a += d.X
		b += d.Y
		c += d.Z
		if twoD {
			c = 0
		}
		// Keep the iterate from exploding; the walk uses the overshoot
		// direction, so a moderate clamp preserves that signal.
		a = clampF(a, -20, 21)
		b = clampF(b, -20, 21)
		c = clampF(c, -20, 21)
	}
	if math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(c) {
		return 0.5, 0.5, 0.5, false
	}
	return a, b, c, true
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func trilerp(p [8]geom.Vec3, a, b, c float64) geom.Vec3 {
	var out geom.Vec3
	for m := 0; m < 8; m++ {
		w := lw(a, m&1) * lw(b, (m>>1)&1) * lw(c, (m>>2)&1)
		if w == 0 {
			continue
		}
		out = out.Add(p[m].Scale(w))
	}
	return out
}

// trilinearKernel evaluates the trilinear map and its three directional
// differences at (a,b,c) in one pass over the corners, bit-identical to the
// seven trilerp evaluations it replaces: pos = T(a,b,c),
// ra = T(1,b,c)−T(0,b,c), rb = T(a,1,c)−T(a,0,c), rc = T(a,b,1)−T(a,b,0).
// Each partial sum keeps trilerp's ascending-m accumulation order, its
// left-associated weight products (substituting 1·x = x and dropping the
// ±0-weight terms trilerp skips), and its skip-on-zero-weight semantics —
// the weights can be negative for out-of-cell iterates, so a ±0 product
// must be skipped, not accumulated.
func trilinearKernel(p *[8]geom.Vec3, a, b, c float64) (pos, ra, rb, rc geom.Vec3) {
	wa := [2]float64{1 - a, a}
	wb := [2]float64{1 - b, b}
	wc := [2]float64{1 - c, c}
	var raHi, raLo, rbHi, rbLo, rcHi, rcLo geom.Vec3
	for m := 0; m < 8; m++ {
		i, j, k := m&1, (m>>1)&1, (m>>2)&1
		pm := p[m]
		wab := wa[i] * wb[j]
		if w := wab * wc[k]; w != 0 {
			pos = pos.Add(pm.Scale(w))
		}
		if w := wb[j] * wc[k]; w != 0 { // T(1,b,c) / T(0,b,c): lw(a,·) → 1
			if i == 1 {
				raHi = raHi.Add(pm.Scale(w))
			} else {
				raLo = raLo.Add(pm.Scale(w))
			}
		}
		if w := wa[i] * wc[k]; w != 0 { // T(a,1,c) / T(a,0,c): lw(b,·) → 1
			if j == 1 {
				rbHi = rbHi.Add(pm.Scale(w))
			} else {
				rbLo = rbLo.Add(pm.Scale(w))
			}
		}
		if wab != 0 { // T(a,b,1) / T(a,b,0): lw(c,·) → 1
			if k == 1 {
				rcHi = rcHi.Add(pm.Scale(wab))
			} else {
				rcLo = rcLo.Add(pm.Scale(wab))
			}
		}
	}
	return pos, raHi.Sub(raLo), rbHi.Sub(rbLo), rcHi.Sub(rcLo)
}

func lw(f float64, d int) float64 {
	if d == 1 {
		return f
	}
	return 1 - f
}

// cartesianLocate resolves a donor directly on a uniform Cartesian grid —
// the §5 observation that "costly donor searches are avoided" when donors
// live in Cartesian components.
func cartesianLocate(g *grid.Grid, gi int, x geom.Vec3) SearchResult {
	o := g.At(0, 0, 0)
	var dx, dy, dz float64
	if g.NI > 1 {
		dx = g.At(1, 0, 0).X - o.X
	}
	if g.NJ > 1 {
		dy = g.At(0, 1, 0).Y - o.Y
	}
	if g.NK > 1 {
		dz = g.At(0, 0, 1).Z - o.Z
	}
	twoD := g.NK == 1
	fi := posToCell(x.X-o.X, dx, g.NI)
	fj := posToCell(x.Y-o.Y, dy, g.NJ)
	fk := 0.0
	if !twoD {
		fk = posToCell(x.Z-o.Z, dz, g.NK)
	}
	if fi < 0 || fj < 0 || fk < 0 {
		return SearchResult{Steps: 1}
	}
	i, a := splitCell(fi, g.NI)
	j, b := splitCell(fj, g.NJ)
	k, c := 0, 0.0
	if !twoD {
		k, c = splitCell(fk, g.NK)
	}
	if !cellIsField(g, i, j, k) {
		return SearchResult{Steps: 1}
	}
	return SearchResult{
		Donor: Donor{Grid: gi, I: i, J: j, K: k, A: a, B: b, C: c},
		Steps: 1, OK: true,
	}
}

// posToCell returns the fractional cell coordinate, or -1 if outside.
func posToCell(d, delta float64, n int) float64 {
	if n == 1 {
		return 0
	}
	if delta == 0 {
		return -1
	}
	f := d / delta
	if f < 0 || f > float64(n-1) {
		return -1
	}
	return f
}

func splitCell(f float64, n int) (int, float64) {
	i := int(f)
	if i > n-2 {
		i = n - 2
	}
	return i, f - float64(i)
}
