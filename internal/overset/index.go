package overset

// GridRankIndex accelerates donor-grid candidate lookup in a partitioned
// system: it maps each component grid to the ranks owning parts of it, in
// ascending rank order. A donor search that must route a point to the ranks
// of grid g scans Of(g) — typically a handful of ranks — instead of every
// part in the system. Because the per-grid lists preserve ascending rank
// order, a scan over Of(g) visits candidates in exactly the order a full
// rank-indexed part scan filtered by grid would, so routing decisions (and
// with them message order and virtual time) are unchanged.
type GridRankIndex struct {
	byGrid [][]int
}

// BuildGridRankIndex constructs the index from gridOf, which gives the
// component grid owned by each rank (index = rank). Reuses prev's storage
// when possible; pass the previous index (or the zero value) and keep the
// result.
func BuildGridRankIndex(ngrids int, gridOf []int, prev GridRankIndex) GridRankIndex {
	byGrid := prev.byGrid
	if len(byGrid) != ngrids {
		byGrid = make([][]int, ngrids)
	} else {
		for g := range byGrid {
			byGrid[g] = byGrid[g][:0]
		}
	}
	for rank, g := range gridOf {
		byGrid[g] = append(byGrid[g], rank)
	}
	return GridRankIndex{byGrid: byGrid}
}

// Of returns the ranks owning parts of grid g, ascending. The slice is
// owned by the index; callers must not modify it.
func (ix GridRankIndex) Of(g int) []int {
	if g < 0 || g >= len(ix.byGrid) {
		return nil
	}
	return ix.byGrid[g]
}

// Built reports whether the index holds any grids.
func (ix GridRankIndex) Built() bool { return len(ix.byGrid) > 0 }
