package overset

import (
	"reflect"
	"testing"
)

func TestGridRankIndex(t *testing.T) {
	// Ranks 0..5 owning grids 1,0,1,2,0,1.
	ix := BuildGridRankIndex(3, []int{1, 0, 1, 2, 0, 1}, GridRankIndex{})
	if !ix.Built() {
		t.Fatal("index should report Built")
	}
	want := [][]int{{1, 4}, {0, 2, 5}, {3}}
	for g, w := range want {
		if got := ix.Of(g); !reflect.DeepEqual(got, w) {
			t.Errorf("Of(%d) = %v, want %v (ascending rank order)", g, got, w)
		}
	}
	if got := ix.Of(-1); got != nil {
		t.Errorf("Of(-1) = %v, want nil", got)
	}
	if got := ix.Of(3); got != nil {
		t.Errorf("Of(3) = %v, want nil", got)
	}
}

func TestGridRankIndexRebuildReusesStorage(t *testing.T) {
	ix := BuildGridRankIndex(2, []int{0, 1, 0}, GridRankIndex{})
	first := ix.Of(0)
	ix = BuildGridRankIndex(2, []int{0, 0, 1}, ix)
	if got, want := ix.Of(0), []int{0, 1}; !reflect.DeepEqual(got, want) {
		t.Errorf("rebuilt Of(0) = %v, want %v", got, want)
	}
	if cap(first) > 0 && &first[:cap(first)][0] != &ix.Of(0)[:1][0] {
		// Same backing array is an implementation detail, but the rebuild
		// path must at least produce correct contents; nothing to assert
		// beyond that if the runtime chose to reallocate.
		t.Log("storage was reallocated (allowed)")
	}
	var zero GridRankIndex
	if zero.Built() {
		t.Error("zero index should not report Built")
	}
}

func TestPackIGBPKeyDistinct(t *testing.T) {
	seen := map[igbpKey][4]int{}
	for _, q := range [][4]int{
		{0, 0, 0, 0}, {0, 0, 0, 1}, {0, 0, 1, 0}, {0, 1, 0, 0},
		{1, 0, 0, 0}, {3, 200, 150, 99}, {3, 150, 200, 99},
	} {
		k := packIGBPKey(q[0], q[1], q[2], q[3])
		if prev, dup := seen[k]; dup {
			t.Fatalf("key collision: %v and %v both pack to %#x", prev, q, uint64(k))
		}
		seen[k] = q
	}
}
