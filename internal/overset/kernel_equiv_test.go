package overset

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"overd/internal/geom"
	"overd/internal/gridgen"
)

// This file keeps naive copies of the fused connectivity kernels and
// asserts bit-for-bit agreement: the single-pass trilinear position+partials
// kernel against four independent trilerp evaluations (the old Newton inner
// step), and the shared-corner-lattice hole-map rebuild against the old
// nine-probes-per-cell form.

func cmpVec(t *testing.T, name string, got, want geom.Vec3) {
	t.Helper()
	if math.Float64bits(got.X) != math.Float64bits(want.X) ||
		math.Float64bits(got.Y) != math.Float64bits(want.Y) ||
		math.Float64bits(got.Z) != math.Float64bits(want.Z) {
		t.Fatalf("%s: fused %+v != reference %+v", name, got, want)
	}
}

// TestTrilinearKernelEquivalence drives the fused kernel over randomized
// hexahedra (including degenerate and inverted cells) and out-of-range
// local coordinates — everything the clamped Newton iterates can produce.
func TestTrilinearKernelEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		var p [8]geom.Vec3
		for m := 0; m < 8; m++ {
			p[m] = geom.Vec3{
				X: float64(m&1) + 0.6*(rng.Float64()-0.5),
				Y: float64(m>>1&1) + 0.6*(rng.Float64()-0.5),
				Z: float64(m>>2&1) + 0.6*(rng.Float64()-0.5),
			}
		}
		// Cover the Newton clamp range, exact 0/1 weights, and interior.
		var a, b, c float64
		switch trial % 4 {
		case 0:
			a, b, c = rng.Float64(), rng.Float64(), rng.Float64()
		case 1:
			a, b, c = 41*rng.Float64()-20, 41*rng.Float64()-20, 41*rng.Float64()-20
		case 2:
			a, b, c = float64(rng.Intn(2)), float64(rng.Intn(2)), rng.Float64()
		default:
			a, b, c = 0.5, 0.5, 0 // the 2-D planar start
		}

		pos, ra, rb, rc := trilinearKernel(&p, a, b, c)
		cmpVec(t, fmt.Sprintf("trial %d pos", trial), pos, trilerp(p, a, b, c))
		cmpVec(t, fmt.Sprintf("trial %d ra", trial), ra,
			trilerp(p, 1, b, c).Sub(trilerp(p, 0, b, c)))
		cmpVec(t, fmt.Sprintf("trial %d rb", trial), rb,
			trilerp(p, a, 1, c).Sub(trilerp(p, a, 0, c)))
		cmpVec(t, fmt.Sprintf("trial %d rc", trial), rc,
			trilerp(p, a, b, 1).Sub(trilerp(p, a, b, 0)))
	}
}

// refRebuildStates is the old HoleMap.Rebuild: nine probes per cell, no
// corner sharing. Returns the state lattice for the map's current placement.
func refRebuildStates(hm *HoleMap, res int) []uint8 {
	state := make([]uint8, res*res*res)
	for k := 0; k < res; k++ {
		for j := 0; j < res; j++ {
			for i := 0; i < res; i++ {
				inside, outside := 0, 0
				for _, f := range [][3]float64{
					{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {1, 1, 0},
					{0, 0, 1}, {1, 0, 1}, {0, 1, 1}, {1, 1, 1},
					{0.5, 0.5, 0.5},
				} {
					p := geom.Vec3{
						X: hm.origin.X + (float64(i)+f[0])*hm.delta.X,
						Y: hm.origin.Y + (float64(j)+f[1])*hm.delta.Y,
						Z: hm.origin.Z + (float64(k)+f[2])*hm.delta.Z,
					}
					if hm.cutter.Inside(p) {
						inside++
					} else {
						outside++
					}
				}
				st := uint8(2)
				if outside == 0 {
					st = 1
				} else if inside == 0 {
					st = 0
				}
				state[i+res*(j+res*k)] = st
			}
		}
	}
	return state
}

// TestHoleMapRebuildEquivalence compares the corner-lattice rebuild against
// the naive probe-per-cell form for several cutters and resolutions,
// including after a transform (the moving-body path).
func TestHoleMapRebuildEquivalence(t *testing.T) {
	cutters := []struct {
		name string
		c    Cutter
	}{
		{"airfoil", NewAirfoilCutter(0.02)},
		{"revolved", NewRevolvedCutter(gridgen.OgiveProfile(3, 0.25), 0.05)},
		{"ellipsoid", NewEllipsoidCutter(1, 0.4, 0.25, 0.03)},
	}
	for _, tc := range cutters {
		for _, res := range []int{2, 7, 24} {
			t.Run(fmt.Sprintf("%s/res%d", tc.name, res), func(t *testing.T) {
				hm := NewHoleMap(tc.c, res)
				want := refRebuildStates(hm, res)
				for i, st := range hm.state {
					if st != want[i] {
						t.Fatalf("cell %d: fused state %d != reference %d", i, st, want[i])
					}
				}
				// Move the body and rebuild into the reused buffers.
				tc.c.SetTransform(geom.Transform{
					R: geom.RotZ(0.2),
					T: geom.Vec3{X: 0.3, Y: -0.1, Z: 0.05},
				})
				hm.Rebuild(res)
				want = refRebuildStates(hm, res)
				for i, st := range hm.state {
					if st != want[i] {
						t.Fatalf("after transform, cell %d: fused state %d != reference %d", i, st, want[i])
					}
				}
				tc.c.SetTransform(geom.IdentityTransform())
			})
		}
	}
}

// TestInvertCellMatchesTrilerp closes the loop on real grid cells: the
// coordinates invertCell finds must reproduce the probe position through
// the retained naive trilerp.
func TestInvertCellMatchesTrilerp(t *testing.T) {
	g := gridgen.Annulus(0, "ring", 64, 16, 0, 0, 1, 3)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		ang := 2 * math.Pi * rng.Float64()
		rad := 1.05 + 1.9*rng.Float64()
		probe := geom.Vec3{X: rad * math.Cos(ang), Y: rad * math.Sin(ang)}
		res := FindDonor(g, 0, probe, [3]int{0, 0, 0})
		if !res.OK {
			continue
		}
		d := res.Donor
		var p [8]geom.Vec3
		for dk := 0; dk <= 0; dk++ {
			for dj := 0; dj <= 1; dj++ {
				for di := 0; di <= 1; di++ {
					p[di+2*dj+4*dk] = cornerPoint(g, d.I+di, d.J+dj, d.K+dk)
				}
			}
		}
		for m := 0; m < 4; m++ {
			p[m+4] = p[m].Add(geom.Vec3{Z: 1})
		}
		pos := trilerp(p, d.A, d.B, d.C)
		if pos.Sub(probe).Norm() > 1e-8 {
			t.Fatalf("trial %d: donor cell (%d,%d,%d) at (%g,%g,%g) maps to %+v, probe %+v",
				trial, d.I, d.J, d.K, d.A, d.B, d.C, pos, probe)
		}
	}
}
