// Package overset implements the Chimera domain-connectivity machinery of
// DCF3D: analytic hole cutting with Cartesian hole-map acceleration, fringe
// (intergrid boundary point) identification, stencil-walking donor searches
// with trilinear Newton inversion, nth-level restart, and interpolation-
// coefficient computation. Package dcf layers the distributed protocol on
// top of these primitives.
package overset

import (
	"math"

	"overd/internal/geom"
	"overd/internal/gridgen"
)

// Cutter is a solid body that blanks ("cuts holes in") grid points of
// overlapping component grids, in world-frame coordinates.
type Cutter interface {
	// Inside reports whether the world-frame point is inside the body
	// (including the hole margin).
	Inside(p geom.Vec3) bool
	// Bounds returns a world-frame bounding box of the cut region.
	Bounds() geom.Box
	// SetTransform places the body in the world frame (bodies attached to
	// moving grids follow them).
	SetTransform(t geom.Transform)
}

// AirfoilCutter cuts the interior of a NACA 0012 airfoil section (2-D).
type AirfoilCutter struct {
	// Margin inflates the cut region so fringe points sit off the surface.
	Margin float64
	xf     geom.Transform
	inv    geom.Transform
}

// NewAirfoilCutter returns an airfoil cutter with the given hole margin.
func NewAirfoilCutter(margin float64) *AirfoilCutter {
	return &AirfoilCutter{Margin: margin, xf: geom.IdentityTransform(), inv: geom.IdentityTransform()}
}

// SetTransform implements Cutter.
func (c *AirfoilCutter) SetTransform(t geom.Transform) {
	c.xf = t
	c.inv = t.Inverse()
}

// Inside implements Cutter.
func (c *AirfoilCutter) Inside(p geom.Vec3) bool {
	b := c.inv.Apply(p)
	if b.X < -c.Margin || b.X > 1+c.Margin {
		return false
	}
	return math.Abs(b.Y) <= gridgen.NACA0012Thickness(b.X)+c.Margin
}

// Bounds implements Cutter.
func (c *AirfoilCutter) Bounds() geom.Box {
	body := geom.Box{
		Min: geom.Vec3{X: -c.Margin, Y: -0.08 - c.Margin, Z: -1},
		Max: geom.Vec3{X: 1 + c.Margin, Y: 0.08 + c.Margin, Z: 1},
	}
	return c.xf.ApplyBox(body)
}

// RevolvedCutter cuts the interior of an axisymmetric body (store, jet
// pipe) whose body frame has the axis along +x from the origin.
type RevolvedCutter struct {
	Profile gridgen.Profile
	Margin  float64
	xf      geom.Transform
	inv     geom.Transform
}

// NewRevolvedCutter returns a cutter for the given body of revolution.
func NewRevolvedCutter(p gridgen.Profile, margin float64) *RevolvedCutter {
	return &RevolvedCutter{Profile: p, Margin: margin, xf: geom.IdentityTransform(), inv: geom.IdentityTransform()}
}

// SetTransform implements Cutter.
func (c *RevolvedCutter) SetTransform(t geom.Transform) {
	c.xf = t
	c.inv = t.Inverse()
}

// Inside implements Cutter.
func (c *RevolvedCutter) Inside(p geom.Vec3) bool {
	b := c.inv.Apply(p)
	if b.X < -c.Margin || b.X > c.Profile.Length+c.Margin {
		return false
	}
	t := b.X / c.Profile.Length
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	r := math.Hypot(b.Y, b.Z)
	return r <= c.Profile.Radius(t)+c.Margin
}

// Bounds implements Cutter.
func (c *RevolvedCutter) Bounds() geom.Box {
	rmax := 0.0
	for i := 0; i <= 20; i++ {
		if r := c.Profile.Radius(float64(i) / 20); r > rmax {
			rmax = r
		}
	}
	rmax += c.Margin
	body := geom.Box{
		Min: geom.Vec3{X: -c.Margin, Y: -rmax, Z: -rmax},
		Max: geom.Vec3{X: c.Profile.Length + c.Margin, Y: rmax, Z: rmax},
	}
	return c.xf.ApplyBox(body)
}

// EllipsoidCutter cuts the interior of an ellipsoid with semi-axes A, B, C
// centered at the body-frame origin (the wing analog).
type EllipsoidCutter struct {
	A, B, C float64
	Margin  float64
	xf      geom.Transform
	inv     geom.Transform
}

// NewEllipsoidCutter returns a cutter for the given ellipsoid.
func NewEllipsoidCutter(a, b, c, margin float64) *EllipsoidCutter {
	return &EllipsoidCutter{A: a, B: b, C: c, Margin: margin,
		xf: geom.IdentityTransform(), inv: geom.IdentityTransform()}
}

// SetTransform implements Cutter.
func (c *EllipsoidCutter) SetTransform(t geom.Transform) {
	c.xf = t
	c.inv = t.Inverse()
}

// Inside implements Cutter.
func (c *EllipsoidCutter) Inside(p geom.Vec3) bool {
	b := c.inv.Apply(p)
	ea, eb, ec := c.A+c.Margin, c.B+c.Margin, c.C+c.Margin
	v := b.X*b.X/(ea*ea) + b.Y*b.Y/(eb*eb) + b.Z*b.Z/(ec*ec)
	return v <= 1
}

// Bounds implements Cutter.
func (c *EllipsoidCutter) Bounds() geom.Box {
	body := geom.Box{
		Min: geom.Vec3{X: -(c.A + c.Margin), Y: -(c.B + c.Margin), Z: -(c.C + c.Margin)},
		Max: geom.Vec3{X: c.A + c.Margin, Y: c.B + c.Margin, Z: c.C + c.Margin},
	}
	return c.xf.ApplyBox(body)
}

// BoxCutter cuts an axis-aligned body-frame box (fin and pylon analog).
type BoxCutter struct {
	Box geom.Box
	xf  geom.Transform
	inv geom.Transform
}

// NewBoxCutter returns a cutter for the given body-frame box.
func NewBoxCutter(b geom.Box) *BoxCutter {
	return &BoxCutter{Box: b, xf: geom.IdentityTransform(), inv: geom.IdentityTransform()}
}

// SetTransform implements Cutter.
func (c *BoxCutter) SetTransform(t geom.Transform) {
	c.xf = t
	c.inv = t.Inverse()
}

// Inside implements Cutter.
func (c *BoxCutter) Inside(p geom.Vec3) bool { return c.Box.Contains(c.inv.Apply(p)) }

// Bounds implements Cutter.
func (c *BoxCutter) Bounds() geom.Box { return c.xf.ApplyBox(c.Box) }
