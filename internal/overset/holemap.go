package overset

import (
	"overd/internal/geom"
)

// HoleMap accelerates inside/outside queries for one cutter with a uniform
// Cartesian lattice over its bounding box, the technique DCF3D uses to make
// hole cutting cheap: cells fully inside or fully outside answer in O(1);
// only boundary ("mixed") cells fall back to the analytic test.
type HoleMap struct {
	cutter     Cutter
	origin     geom.Vec3
	delta      geom.Vec3
	nx, ny, nz int
	// state: 0 = outside, 1 = inside, 2 = mixed
	state []uint8
	// corner is the Rebuild scratch: one inside/outside sample per lattice
	// corner, shared by the up-to-eight cells touching it.
	corner []uint8
	// Queries and fallbacks are counted for the ablation bench.
	Queries   int
	Fallbacks int
}

// NewHoleMap samples the cutter onto an n³-ish lattice (n per axis derived
// from res). Rebuild after the cutter's transform changes.
func NewHoleMap(c Cutter, res int) *HoleMap {
	if res < 2 {
		res = 2
	}
	hm := &HoleMap{cutter: c}
	hm.Rebuild(res)
	return hm
}

// Rebuild resamples the lattice from the cutter's current placement. Each
// cell's state comes from its eight corners plus its center; corners are
// shared by up to eight cells, so the corner lattice is probed once
// ((res+1)³ probes) instead of eight times per cell, cutting analytic
// cutter evaluations ~4x. The probe coordinates are identical to the naive
// per-cell form: float64(i)+1 == float64(i+1) exactly. Buffers are reused
// across Rebuilds (every element is overwritten).
func (hm *HoleMap) Rebuild(res int) {
	raw := hm.cutter.Bounds()
	// Inflate proportionally so degenerate (flat) boxes keep positive cell
	// sizes in every axis.
	b := raw.Inflate(1e-9 + 1e-6*raw.Size().Norm())
	hm.origin = b.Min
	size := b.Size()
	hm.nx, hm.ny, hm.nz = res, res, res
	hm.delta = geom.Vec3{X: size.X / float64(res), Y: size.Y / float64(res), Z: size.Z / float64(res)}
	if n := res * res * res; cap(hm.state) >= n {
		hm.state = hm.state[:n]
	} else {
		hm.state = make([]uint8, n)
	}
	cres := res + 1
	if n := cres * cres * cres; cap(hm.corner) >= n {
		hm.corner = hm.corner[:n]
	} else {
		hm.corner = make([]uint8, n)
	}
	ox, oy, oz := hm.origin.X, hm.origin.Y, hm.origin.Z
	dx, dy, dz := hm.delta.X, hm.delta.Y, hm.delta.Z
	corner := hm.corner
	for k := 0; k < cres; k++ {
		z := oz + float64(k)*dz
		for j := 0; j < cres; j++ {
			y := oy + float64(j)*dy
			row := cres * (j + cres*k)
			for i := 0; i < cres; i++ {
				var in uint8
				if hm.cutter.Inside(geom.Vec3{X: ox + float64(i)*dx, Y: y, Z: z}) {
					in = 1
				}
				corner[row+i] = in
			}
		}
	}
	for k := 0; k < res; k++ {
		zc := oz + (float64(k)+0.5)*dz
		for j := 0; j < res; j++ {
			yc := oy + (float64(j)+0.5)*dy
			row00 := cres * (j + cres*k)
			row10 := cres * (j + 1 + cres*k)
			row01 := cres * (j + cres*(k+1))
			row11 := cres * (j + 1 + cres*(k+1))
			srow := res * (j + res*k)
			for i := 0; i < res; i++ {
				inside := int(corner[row00+i]) + int(corner[row00+i+1]) +
					int(corner[row10+i]) + int(corner[row10+i+1]) +
					int(corner[row01+i]) + int(corner[row01+i+1]) +
					int(corner[row11+i]) + int(corner[row11+i+1])
				if hm.cutter.Inside(geom.Vec3{X: ox + (float64(i)+0.5)*dx, Y: yc, Z: zc}) {
					inside++
				}
				st := uint8(2)
				if inside == 9 {
					st = 1
				} else if inside == 0 {
					st = 0
				}
				hm.state[srow+i] = st
			}
		}
	}
}

// Inside answers the hole query through the map, falling back to the
// analytic cutter only in mixed cells.
func (hm *HoleMap) Inside(p geom.Vec3) bool {
	hm.Queries++
	i := int((p.X - hm.origin.X) / hm.delta.X)
	j := int((p.Y - hm.origin.Y) / hm.delta.Y)
	k := int((p.Z - hm.origin.Z) / hm.delta.Z)
	if i < 0 || i >= hm.nx || j < 0 || j >= hm.ny || k < 0 || k >= hm.nz {
		return false
	}
	switch hm.state[i+hm.nx*(j+hm.ny*k)] {
	case 0:
		return false
	case 1:
		return true
	}
	hm.Fallbacks++
	return hm.cutter.Inside(p)
}

// InsideQuiet answers like Inside without updating the query counters,
// making it safe for concurrent use by many ranks once the map is built.
func (hm *HoleMap) InsideQuiet(p geom.Vec3) bool {
	i := int((p.X - hm.origin.X) / hm.delta.X)
	j := int((p.Y - hm.origin.Y) / hm.delta.Y)
	k := int((p.Z - hm.origin.Z) / hm.delta.Z)
	if i < 0 || i >= hm.nx || j < 0 || j >= hm.ny || k < 0 || k >= hm.nz {
		return false
	}
	switch hm.state[i+hm.nx*(j+hm.ny*k)] {
	case 0:
		return false
	case 1:
		return true
	}
	return hm.cutter.Inside(p)
}

// Bounds returns the mapped region.
func (hm *HoleMap) Bounds() geom.Box {
	return geom.Box{Min: hm.origin, Max: geom.Vec3{
		X: hm.origin.X + float64(hm.nx)*hm.delta.X,
		Y: hm.origin.Y + float64(hm.ny)*hm.delta.Y,
		Z: hm.origin.Z + float64(hm.nz)*hm.delta.Z,
	}}
}
