package overset

import (
	"overd/internal/geom"
)

// HoleMap accelerates inside/outside queries for one cutter with a uniform
// Cartesian lattice over its bounding box, the technique DCF3D uses to make
// hole cutting cheap: cells fully inside or fully outside answer in O(1);
// only boundary ("mixed") cells fall back to the analytic test.
type HoleMap struct {
	cutter     Cutter
	origin     geom.Vec3
	delta      geom.Vec3
	nx, ny, nz int
	// state: 0 = outside, 1 = inside, 2 = mixed
	state []uint8
	// Queries and fallbacks are counted for the ablation bench.
	Queries   int
	Fallbacks int
}

// NewHoleMap samples the cutter onto an n³-ish lattice (n per axis derived
// from res). Rebuild after the cutter's transform changes.
func NewHoleMap(c Cutter, res int) *HoleMap {
	if res < 2 {
		res = 2
	}
	hm := &HoleMap{cutter: c}
	hm.Rebuild(res)
	return hm
}

// Rebuild resamples the lattice from the cutter's current placement.
func (hm *HoleMap) Rebuild(res int) {
	raw := hm.cutter.Bounds()
	// Inflate proportionally so degenerate (flat) boxes keep positive cell
	// sizes in every axis.
	b := raw.Inflate(1e-9 + 1e-6*raw.Size().Norm())
	hm.origin = b.Min
	size := b.Size()
	hm.nx, hm.ny, hm.nz = res, res, res
	hm.delta = geom.Vec3{X: size.X / float64(res), Y: size.Y / float64(res), Z: size.Z / float64(res)}
	hm.state = make([]uint8, res*res*res)
	for k := 0; k < res; k++ {
		for j := 0; j < res; j++ {
			for i := 0; i < res; i++ {
				// Probe the cell's corners and center.
				inside, outside := 0, 0
				for _, f := range [][3]float64{
					{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {1, 1, 0},
					{0, 0, 1}, {1, 0, 1}, {0, 1, 1}, {1, 1, 1},
					{0.5, 0.5, 0.5},
				} {
					p := geom.Vec3{
						X: hm.origin.X + (float64(i)+f[0])*hm.delta.X,
						Y: hm.origin.Y + (float64(j)+f[1])*hm.delta.Y,
						Z: hm.origin.Z + (float64(k)+f[2])*hm.delta.Z,
					}
					if hm.cutter.Inside(p) {
						inside++
					} else {
						outside++
					}
				}
				st := uint8(2)
				if outside == 0 {
					st = 1
				} else if inside == 0 {
					st = 0
				}
				hm.state[i+res*(j+res*k)] = st
			}
		}
	}
}

// Inside answers the hole query through the map, falling back to the
// analytic cutter only in mixed cells.
func (hm *HoleMap) Inside(p geom.Vec3) bool {
	hm.Queries++
	i := int((p.X - hm.origin.X) / hm.delta.X)
	j := int((p.Y - hm.origin.Y) / hm.delta.Y)
	k := int((p.Z - hm.origin.Z) / hm.delta.Z)
	if i < 0 || i >= hm.nx || j < 0 || j >= hm.ny || k < 0 || k >= hm.nz {
		return false
	}
	switch hm.state[i+hm.nx*(j+hm.ny*k)] {
	case 0:
		return false
	case 1:
		return true
	}
	hm.Fallbacks++
	return hm.cutter.Inside(p)
}

// InsideQuiet answers like Inside without updating the query counters,
// making it safe for concurrent use by many ranks once the map is built.
func (hm *HoleMap) InsideQuiet(p geom.Vec3) bool {
	i := int((p.X - hm.origin.X) / hm.delta.X)
	j := int((p.Y - hm.origin.Y) / hm.delta.Y)
	k := int((p.Z - hm.origin.Z) / hm.delta.Z)
	if i < 0 || i >= hm.nx || j < 0 || j >= hm.ny || k < 0 || k >= hm.nz {
		return false
	}
	switch hm.state[i+hm.nx*(j+hm.ny*k)] {
	case 0:
		return false
	case 1:
		return true
	}
	return hm.cutter.Inside(p)
}

// Bounds returns the mapped region.
func (hm *HoleMap) Bounds() geom.Box {
	return geom.Box{Min: hm.origin, Max: geom.Vec3{
		X: hm.origin.X + float64(hm.nx)*hm.delta.X,
		Y: hm.origin.Y + float64(hm.ny)*hm.delta.Y,
		Z: hm.origin.Z + float64(hm.nz)*hm.delta.Z,
	}}
}
