package overset

import (
	"testing"

	"overd/internal/geom"
	"overd/internal/grid"
	"overd/internal/gridgen"
)

// BenchmarkDonorSearchCold measures a from-scratch stencil walk on a
// curvilinear donor grid.
func BenchmarkDonorSearchCold(b *testing.B) {
	g := gridgen.Annulus(0, "ring", 128, 32, 0, 0, 1, 4)
	probe := geom.Vec3{X: 2.4, Y: 1.1}
	for i := 0; i < b.N; i++ {
		if !FindDonor(g, 0, probe, [3]int{0, 0, 0}).OK {
			b.Fatal("search failed")
		}
	}
}

// BenchmarkDonorSearchRestart measures the nth-level-restart path.
func BenchmarkDonorSearchRestart(b *testing.B) {
	g := gridgen.Annulus(0, "ring", 128, 32, 0, 0, 1, 4)
	probe := geom.Vec3{X: 2.4, Y: 1.1}
	cold := FindDonor(g, 0, probe, [3]int{0, 0, 0})
	if !cold.OK {
		b.Fatal("setup failed")
	}
	start := [3]int{cold.Donor.I, cold.Donor.J, cold.Donor.K}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !FindDonor(g, 0, probe, start).OK {
			b.Fatal("restart search failed")
		}
	}
}

// BenchmarkDonorSearchCartesian measures the search-free Cartesian path.
func BenchmarkDonorSearchCartesian(b *testing.B) {
	g := gridgen.CartesianBox(0, "bg", 64, 64, 64,
		geom.Box{Min: geom.Vec3{X: -5, Y: -5, Z: -5}, Max: geom.Vec3{X: 5, Y: 5, Z: 5}})
	probe := geom.Vec3{X: 1.7, Y: -2.3, Z: 0.4}
	for i := 0; i < b.N; i++ {
		if !FindDonor(g, 0, probe, [3]int{0, 0, 0}).OK {
			b.Fatal("locate failed")
		}
	}
}

// BenchmarkHoleCutDirect measures hole cutting with analytic cutters.
func BenchmarkHoleCutDirect(b *testing.B) {
	benchHoleCut(b, 0)
}

// BenchmarkHoleCutMapped measures hole cutting through the hole map.
func BenchmarkHoleCutMapped(b *testing.B) {
	benchHoleCut(b, 32)
}

func benchHoleCut(b *testing.B, res int) {
	af := gridgen.AirfoilOGrid(0, "airfoil", 96, 24, 1.2)
	ring := gridgen.Annulus(1, "ring", 96, 24, 0.5, 0, 0.3, 3)
	sys := &grid.System{Grids: []*grid.Grid{af, ring}}
	cfg := &Config{
		Sys: sys,
		Cutters: []*BodyCutter{{
			Cutter: NewAirfoilCutter(0.02), OwnGrids: []int{0}, FollowGrid: -1,
		}},
		Search:      map[int][]int{},
		FringeDepth: 1,
		HoleMapRes:  res,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.CutHoles()
	}
}
