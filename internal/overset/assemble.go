package overset

import (
	"overd/internal/geom"
	"overd/internal/grid"
)

// BodyCutter pairs a cutter with the component grids that belong to the
// same body (which it must not cut) and the grid whose motion it follows.
type BodyCutter struct {
	Cutter Cutter
	// OwnGrids are exempt from this cutter (the body's own grids).
	OwnGrids []int
	// FollowGrid is the moving grid whose transform the cutter tracks
	// (-1 for static bodies).
	FollowGrid int
	// holeMap accelerates queries; rebuilt when the transform changes.
	holeMap *HoleMap
}

// Owns reports whether grid gi belongs to this cutter's own body (and is
// therefore exempt from its hole cutting).
func (bc *BodyCutter) Owns(gi int) bool {
	for _, g := range bc.OwnGrids {
		if g == gi {
			return true
		}
	}
	return false
}

// HoleMap returns the acceleration map, if built.
func (bc *BodyCutter) HoleMap() *HoleMap { return bc.holeMap }

// IGBP is one intergrid boundary point: a fringe point needing donor data.
type IGBP struct {
	Grid    int
	I, J, K int
	Pos     geom.Vec3
}

// Connectivity is the result of one domain-connectivity solution.
type Connectivity struct {
	IGBPs []IGBP
	// Donors is parallel to IGBPs; Donors[i].Grid < 0 marks an orphan
	// (no valid donor found; the receiver keeps its previous data).
	Donors []Donor
	// Steps is the total donor-search work (walk steps + Newton iterations).
	Steps int
	// Orphans counts IGBPs with no donor.
	Orphans int
}

// Config describes one overset system's connectivity problem.
type Config struct {
	Sys     *grid.System
	Cutters []*BodyCutter
	// Search gives, per receiver grid, the donor grids in hierarchy order
	// ("the grids are listed in hierarchical manner with the corresponding
	// grids searched in the order they are listed").
	Search map[int][]int
	// FringeDepth is the number of fringe layers at overset boundaries and
	// around holes (2 supports the second-order stencils).
	FringeDepth int
	// HoleMapRes enables hole-map acceleration at the given lattice
	// resolution (0 queries cutters directly).
	HoleMapRes int
	// restart holds the previous solution's donors for nth-level restart.
	restart map[igbpKey]Donor
	// DisableRestart forces every search to start from scratch (ablation).
	DisableRestart bool

	// bounds caches per-grid world bounding boxes for the current geometry.
	bounds []geom.Box
}

// RebuildHoleMaps refreshes every cutter's hole-map acceleration for the
// current transforms (no-op when HoleMapRes is 0).
func (c *Config) RebuildHoleMaps() {
	if c.HoleMapRes <= 0 {
		for _, bc := range c.Cutters {
			bc.holeMap = nil
		}
		return
	}
	for _, bc := range c.Cutters {
		if bc.holeMap == nil {
			bc.holeMap = NewHoleMap(bc.Cutter, c.HoleMapRes)
		} else {
			bc.holeMap.Rebuild(c.HoleMapRes)
		}
	}
}

// RefreshBounds recomputes the cached per-grid bounding boxes. Call after
// any grid moves and before search queries.
func (c *Config) RefreshBounds() {
	if cap(c.bounds) < len(c.Sys.Grids) {
		c.bounds = make([]geom.Box, len(c.Sys.Grids))
	}
	c.bounds = c.bounds[:len(c.Sys.Grids)]
	for i, g := range c.Sys.Grids {
		c.bounds[i] = g.Bounds()
	}
}

// igbpKey is an IGBP identity (grid, i, j, k) packed into one word so the
// restart cache hashes 8 bytes instead of a 4-word struct. 16 bits per
// field is far beyond any component grid dimension here.
type igbpKey uint64

func packIGBPKey(grid, i, j, k int) igbpKey {
	return igbpKey(uint64(grid)<<48 | uint64(i)<<32 | uint64(j)<<16 | uint64(k))
}

// CutHoles recomputes the iblank field of every grid: points inside a
// foreign body become holes; everything else returns to field state.
// Fringe marking happens in MarkFringes. Returns the number of points
// tested (the hole-cutting work measure).
func (c *Config) CutHoles() int {
	tested := 0
	for _, bc := range c.Cutters {
		if bc.FollowGrid >= 0 {
			bc.Cutter.SetTransform(c.Sys.Grids[bc.FollowGrid].Xform)
		}
		if c.HoleMapRes > 0 {
			if bc.holeMap == nil {
				bc.holeMap = NewHoleMap(bc.Cutter, c.HoleMapRes)
			} else {
				bc.holeMap.Rebuild(c.HoleMapRes)
			}
		} else {
			bc.holeMap = nil
		}
	}
	c.RefreshBounds()
	for gi, g := range c.Sys.Grids {
		g.ResetIBlank()
		for _, bc := range c.Cutters {
			if bc.Owns(gi) {
				continue
			}
			cb := bc.Cutter.Bounds()
			if !cb.Overlaps(c.bounds[gi]) {
				continue
			}
			inside := bc.Cutter.Inside
			if bc.holeMap != nil {
				inside = bc.holeMap.Inside
			}
			for k := 0; k < g.NK; k++ {
				for j := 0; j < g.NJ; j++ {
					for i := 0; i < g.NI; i++ {
						n := g.Idx(i, j, k)
						if g.IBlank[n] == grid.IBHole {
							continue
						}
						p := geom.Vec3{X: g.X[n], Y: g.Y[n], Z: g.Z[n]}
						if !cb.Contains(p) {
							continue
						}
						tested++
						if inside(p) {
							g.IBlank[n] = grid.IBHole
						}
					}
				}
			}
		}
	}
	return tested
}

// MarkFringes marks fringe layers: FringeDepth layers of field points
// adjacent to holes, and FringeDepth layers at every overset boundary face.
func (c *Config) MarkFringes() {
	depth := c.FringeDepth
	if depth < 1 {
		depth = 2
	}
	for _, g := range c.Sys.Grids {
		// Hole fringes, layer by layer.
		for layer := 0; layer < depth; layer++ {
			var marks []int
			for k := 0; k < g.NK; k++ {
				for j := 0; j < g.NJ; j++ {
					for i := 0; i < g.NI; i++ {
						n := g.Idx(i, j, k)
						if g.IBlank[n] != grid.IBField {
							continue
						}
						if AdjacentToNonField(g, i, j, k, layer) {
							marks = append(marks, n)
						}
					}
				}
			}
			for _, n := range marks {
				g.IBlank[n] = grid.IBFringe
			}
		}
		// Overset boundary fringes.
		for f := grid.IMin; f <= grid.KMax; f++ {
			if g.BCs[f] != grid.BCOverset {
				continue
			}
			c.markFaceFringe(g, f, depth)
		}
	}
}

// AdjacentToNonField reports whether (i,j,k) neighbors a hole (layer 0) or
// a fringe (subsequent layers) across the six index directions. Exported so
// the distributed implementation can mark fringes over per-rank subdomains.
func AdjacentToNonField(g *grid.Grid, i, j, k, layer int) bool {
	var want int8 = grid.IBHole
	if layer > 0 {
		want = grid.IBFringe
	}
	check := func(ii, jj, kk int) bool {
		if g.PeriodicI() {
			ii = ((ii % g.NI) + g.NI) % g.NI
		}
		if ii < 0 || ii >= g.NI || jj < 0 || jj >= g.NJ || kk < 0 || kk >= g.NK {
			return false
		}
		return g.IBlank[g.Idx(ii, jj, kk)] == want
	}
	if check(i-1, j, k) || check(i+1, j, k) || check(i, j-1, k) || check(i, j+1, k) {
		return true
	}
	if g.NK > 1 && (check(i, j, k-1) || check(i, j, k+1)) {
		return true
	}
	return false
}

// markFaceFringe marks `depth` point layers at grid face f as fringes.
func (c *Config) markFaceFringe(g *grid.Grid, f grid.Face, depth int) {
	MarkFaceFringeBox(g, f, depth, g.Full())
}

// MarkFaceFringeBox marks `depth` point layers at grid face f as fringes,
// restricted to points inside `box` (one rank's subdomain).
func MarkFaceFringeBox(g *grid.Grid, f grid.Face, depth int, box grid.IBox) {
	for layer := 0; layer < depth; layer++ {
		var ilo, ihi, jlo, jhi, klo, khi int
		ilo, ihi, jlo, jhi, klo, khi = 0, g.NI-1, 0, g.NJ-1, 0, g.NK-1
		switch f {
		case grid.IMin:
			ilo, ihi = layer, layer
		case grid.IMax:
			ilo, ihi = g.NI-1-layer, g.NI-1-layer
		case grid.JMin:
			jlo, jhi = layer, layer
		case grid.JMax:
			jlo, jhi = g.NJ-1-layer, g.NJ-1-layer
		case grid.KMin:
			klo, khi = layer, layer
		case grid.KMax:
			klo, khi = g.NK-1-layer, g.NK-1-layer
		}
		for k := klo; k <= khi; k++ {
			for j := jlo; j <= jhi; j++ {
				for i := ilo; i <= ihi; i++ {
					if !box.Contains(i, j, k) {
						continue
					}
					n := g.Idx(i, j, k)
					if g.IBlank[n] == grid.IBField {
						g.IBlank[n] = grid.IBFringe
					}
				}
			}
		}
	}
}

// CollectIGBPs lists every fringe point of every grid.
func (c *Config) CollectIGBPs() []IGBP {
	var out []IGBP
	for gi, g := range c.Sys.Grids {
		for k := 0; k < g.NK; k++ {
			for j := 0; j < g.NJ; j++ {
				for i := 0; i < g.NI; i++ {
					n := g.Idx(i, j, k)
					if g.IBlank[n] == grid.IBFringe {
						out = append(out, IGBP{
							Grid: gi, I: i, J: j, K: k,
							Pos: geom.Vec3{X: g.X[n], Y: g.Y[n], Z: g.Z[n]},
						})
					}
				}
			}
		}
	}
	return out
}

// Assemble runs the complete serial connectivity solution: hole cutting,
// fringe marking, and donor searches with nth-level restart. It mirrors
// what the distributed implementation computes collectively and serves as
// its correctness reference.
func (c *Config) Assemble() *Connectivity {
	c.CutHoles()
	c.MarkFringes()
	igbps := c.CollectIGBPs()
	conn := &Connectivity{IGBPs: igbps, Donors: make([]Donor, len(igbps))}
	newRestart := make(map[igbpKey]Donor, len(igbps))
	for n, pt := range igbps {
		res := c.SearchIGBP(pt)
		conn.Steps += res.Steps
		if res.OK {
			conn.Donors[n] = res.Donor
			newRestart[packIGBPKey(pt.Grid, pt.I, pt.J, pt.K)] = res.Donor
		} else {
			conn.Donors[n] = Donor{Grid: -1}
			conn.Orphans++
		}
	}
	c.restart = newRestart
	return conn
}

// SearchIGBP performs the hierarchical donor search for one IGBP, using the
// previous donor as the starting guess when available (nth-level restart).
func (c *Config) SearchIGBP(pt IGBP) SearchResult {
	key := packIGBPKey(pt.Grid, pt.I, pt.J, pt.K)
	var prev *Donor
	if !c.DisableRestart && c.restart != nil {
		if d, ok := c.restart[key]; ok {
			prev = &d
		}
	}
	total := 0
	order := c.Search[pt.Grid]
	// Restart: try the previous donor grid first.
	if prev != nil {
		g := c.Sys.Grids[prev.Grid]
		res := FindDonor(g, prev.Grid, pt.Pos, [3]int{prev.I, prev.J, prev.K})
		total += res.Steps
		if res.OK {
			res.Steps = total
			return res
		}
	}
	for _, dgi := range order {
		if dgi == pt.Grid {
			continue
		}
		g := c.Sys.Grids[dgi]
		if c.bounds == nil || len(c.bounds) <= dgi {
			c.RefreshBounds()
		}
		if !c.bounds[dgi].Inflate(1e-9).Contains(pt.Pos) {
			total++
			continue
		}
		start := searchStart(g, pt.Pos)
		res := FindDonor(g, dgi, pt.Pos, start)
		total += res.Steps
		if res.OK {
			res.Steps = total
			return res
		}
	}
	return SearchResult{Steps: total}
}

// searchStart picks a from-scratch starting cell: the nearest of a coarse
// sample of cells (the first-timestep situation where "nothing is known
// about the possible donor location").
func searchStart(g *grid.Grid, x geom.Vec3) [3]int {
	best := [3]int{g.NI / 2, g.NJ / 2, g.NK / 2}
	bestD := x.Sub(g.At(best[0], best[1], best[2])).Norm2()
	const samples = 4
	for sk := 0; sk <= samples; sk++ {
		k := (g.NK - 1) * sk / samples
		for sj := 0; sj <= samples; sj++ {
			j := (g.NJ - 1) * sj / samples
			for si := 0; si <= samples; si++ {
				i := (g.NI - 1) * si / samples
				d := x.Sub(g.At(i, j, k)).Norm2()
				if d < bestD {
					bestD = d
					best = [3]int{i, j, k}
				}
			}
		}
	}
	return best
}

// Interpolate evaluates the donor interpolation for the given donor from
// the full (serial) grid data accessor. qAt returns the conserved state at
// a grid point.
func Interpolate(g *grid.Grid, d Donor, qAt func(i, j, k int) [5]float64) [5]float64 {
	var out [5]float64
	kmax := 1
	if g.NK == 1 {
		kmax = 0
	}
	for dk := 0; dk <= kmax; dk++ {
		wk := lw(d.C, dk)
		if g.NK == 1 {
			wk = 1
		}
		for dj := 0; dj <= 1; dj++ {
			for di := 0; di <= 1; di++ {
				w := lw(d.A, di) * lw(d.B, dj) * wk
				if w == 0 {
					continue
				}
				ii := d.I + di
				if g.PeriodicI() {
					ii = ((ii % g.NI) + g.NI) % g.NI
				}
				q := qAt(ii, d.J+dj, d.K+dk)
				for c := 0; c < 5; c++ {
					out[c] += w * q[c]
				}
			}
		}
	}
	return out
}
