package overset

import (
	"runtime"
	"testing"

	"overd/internal/geom"
	"overd/internal/gridgen"
)

// pinOneProc pins GOMAXPROCS to 1 for the duration of the test.
// testing.AllocsPerRun counts every allocation in the process during its
// runs, so at GOMAXPROCS>1 a concurrently scheduled goroutine can charge
// allocations to the measured hot path and flake the zero-alloc assertion
// — the measurement needs serial execution even though the measured code
// is parallel-safe.
func pinOneProc(t *testing.T) {
	t.Helper()
	old := runtime.GOMAXPROCS(1)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// The donor stencil walk (cell inversion, trilinear Newton, hole checks) is
// the inner loop of every connectivity solve and must not allocate.
func TestFindDonorZeroAlloc(t *testing.T) {
	pinOneProc(t)
	g := gridgen.Annulus(0, "ring", 128, 32, 0, 0, 1, 4)
	probe := geom.Vec3{X: 2.4, Y: 1.1}
	cold := FindDonor(g, 0, probe, [3]int{0, 0, 0})
	if !cold.OK {
		t.Fatal("setup search failed")
	}
	start := [3]int{cold.Donor.I, cold.Donor.J, cold.Donor.K}

	if n := testing.AllocsPerRun(10, func() {
		if !FindDonor(g, 0, probe, [3]int{0, 0, 0}).OK {
			t.Fatal("cold search failed")
		}
	}); n != 0 {
		t.Fatalf("FindDonor (from scratch) allocates %v times per call, want 0", n)
	}
	if n := testing.AllocsPerRun(10, func() {
		if !FindDonor(g, 0, probe, start).OK {
			t.Fatal("restart search failed")
		}
	}); n != 0 {
		t.Fatalf("FindDonor (restart) allocates %v times per call, want 0", n)
	}
}

// The subdomain-limited walk used by the distributed solver is equally hot.
func TestFindDonorLimitedZeroAlloc(t *testing.T) {
	pinOneProc(t)
	g := gridgen.Annulus(0, "ring", 128, 32, 0, 0, 1, 4)
	probe := geom.Vec3{X: 2.4, Y: 1.1}
	box := g.Full()
	if res := FindDonorLimited(g, 0, probe, [3]int{0, 0, 0}, box, 2); !res.OK {
		t.Fatal("setup search failed")
	}
	if n := testing.AllocsPerRun(10, func() {
		if !FindDonorLimited(g, 0, probe, [3]int{0, 0, 0}, box, 2).OK {
			t.Fatal("limited search failed")
		}
	}); n != 0 {
		t.Fatalf("FindDonorLimited allocates %v times per call, want 0", n)
	}
}

// Hole-map rebuilds reuse the state and corner-lattice buffers.
func TestHoleMapRebuildZeroAlloc(t *testing.T) {
	pinOneProc(t)
	hm := NewHoleMap(NewAirfoilCutter(0.02), 24)
	if n := testing.AllocsPerRun(5, func() {
		hm.Rebuild(24)
	}); n != 0 {
		t.Fatalf("HoleMap.Rebuild allocates %v times per call, want 0", n)
	}
}
