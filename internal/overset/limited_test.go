package overset

import (
	"testing"

	"overd/internal/geom"
	"overd/internal/grid"
	"overd/internal/gridgen"
)

func TestLimitedFindsDonorInsideBox(t *testing.T) {
	g := gridgen.Annulus(0, "ring", 64, 16, 0, 0, 1, 4)
	full := g.Full()
	probe := geom.Vec3{X: 2, Y: 0.3}
	res := FindDonorLimited(g, 0, probe, [3]int{0, 8, 0}, full, 3)
	if !res.OK {
		t.Fatal("full-box limited search should succeed")
	}
	if res.Exited {
		t.Error("full-box search cannot exit")
	}
}

func TestLimitedExitsTowardDonor(t *testing.T) {
	g := gridgen.Annulus(0, "ring", 64, 16, 0, 0, 1, 4)
	// Split the ring azimuthally in half; search the wrong half for a
	// point in the other half: the walk must exit with a forward hint.
	left := grid.IBox{ILo: 0, IHi: 31, JLo: 0, JHi: 15, KLo: 0, KHi: 0}
	right := grid.IBox{ILo: 32, IHi: 63, JLo: 0, JHi: 15, KLo: 0, KHi: 0}
	// The ring is generated clockwise; find where a probe really lives.
	probe := geom.Vec3{X: -2, Y: -1}
	fullRes := FindDonor(g, 0, probe, [3]int{0, 8, 0})
	if !fullRes.OK {
		t.Fatal("setup: unlimited search failed")
	}
	owner, other := left, right
	if right.Contains(fullRes.Donor.I, fullRes.Donor.J, fullRes.Donor.K) {
		owner, other = right, left
	}
	// Search the box that does NOT own the donor.
	res := FindDonorLimited(g, 0, probe, [3]int{other.ILo, 8, 0}, other, 3)
	if res.OK {
		t.Fatal("wrong half should not find the donor")
	}
	if !res.Exited {
		t.Fatal("walk should exit toward the owning half")
	}
	if !owner.Contains(res.ExitCell[0], res.ExitCell[1], res.ExitCell[2]) {
		t.Errorf("exit cell %v not in the owning half %v", res.ExitCell, owner)
	}
	// Continuing the search in the owner's box from the hint succeeds.
	res2 := FindDonorLimited(g, 0, probe, res.ExitCell, owner, 3-res.Restarts)
	if !res2.OK {
		t.Error("forwarded search should succeed in the owning half")
	}
}

func TestLimitedCartesianExit(t *testing.T) {
	g := gridgen.CartesianBox(0, "bg", 20, 20, 1,
		geom.Box{Min: geom.Vec3{X: 0, Y: 0}, Max: geom.Vec3{X: 19, Y: 19}})
	left := grid.IBox{ILo: 0, IHi: 9, JLo: 0, JHi: 19, KLo: 0, KHi: 0}
	res := FindDonorLimited(g, 0, geom.Vec3{X: 15.5, Y: 4.5}, [3]int{0, 0, 0}, left, 3)
	if res.OK || !res.Exited {
		t.Fatalf("Cartesian locate off-box should exit: %+v", res)
	}
	if res.ExitCell[0] != 15 {
		t.Errorf("exit cell %v, want i=15", res.ExitCell)
	}
}

func TestLimitedRestartBudgetExhausts(t *testing.T) {
	g := gridgen.Annulus(0, "ring", 64, 16, 0, 0, 1, 4)
	// A point in the ring's central hole can never be found; with zero
	// restart budget the walk must fail quickly rather than bounce.
	res := FindDonorLimited(g, 0, geom.Vec3{X: 0.1, Y: 0}, [3]int{0, 8, 0}, g.Full(), 0)
	if res.OK {
		t.Fatal("point in the topological hole cannot have a donor")
	}
	if res.Steps > 200 {
		t.Errorf("exhausted search took %d steps, should fail fast", res.Steps)
	}
}

func TestLimitedRejectsBlankedContainingCell(t *testing.T) {
	g := gridgen.CartesianBox(0, "bg", 10, 10, 1,
		geom.Box{Min: geom.Vec3{}, Max: geom.Vec3{X: 9, Y: 9}})
	g.IBlank[g.Idx(4, 4, 0)] = grid.IBHole
	res := FindDonorLimited(g, 0, geom.Vec3{X: 4.2, Y: 4.2}, [3]int{0, 0, 0}, g.Full(), 3)
	if res.OK {
		t.Error("containing cell with a hole corner must be rejected")
	}
}
