package overset

import (
	"overd/internal/geom"
	"overd/internal/grid"
)

// LimitedResult extends SearchResult with the forwarding information of the
// distributed donor search: when a walk leaves the serving processor's
// subdomain but remains inside the component grid, the request must be
// forwarded to the neighboring processor ("if the search happens to hit a
// processor boundary, the search request is forwarded").
type LimitedResult struct {
	SearchResult
	// Exited reports that the walk left `box` while still inside the grid;
	// ExitCell is the first out-of-box cell visited, the forward hint.
	Exited   bool
	ExitCell [3]int
	// Restarts is the number of stuck-walk restarts consumed.
	Restarts int
}

// FindDonorLimited is FindDonor restricted to donor cells whose base point
// lies in box (one processor's subdomain). Cartesian grids resolve directly
// and report an exit if the located cell is off-box. restartBudget bounds
// the stuck-walk azimuthal restarts available to the whole forwarding chain
// (each restart that leaves the box consumes one at the next server); the
// Restarts field of the result reports how many were used locally.
func FindDonorLimited(g *grid.Grid, gi int, x geom.Vec3, start [3]int, box grid.IBox, restartBudget int) LimitedResult {
	if g.Cartesian && !g.Moving {
		res := cartesianLocate(g, gi, x)
		if res.OK && !box.Contains(res.Donor.I, res.Donor.J, res.Donor.K) {
			return LimitedResult{
				SearchResult: SearchResult{Steps: res.Steps},
				Exited:       true,
				ExitCell:     [3]int{res.Donor.I, res.Donor.J, res.Donor.K},
			}
		}
		return LimitedResult{SearchResult: res}
	}

	twoD := g.NK == 1
	ni, nj, nk := g.NI, g.NJ, g.NK
	maxI := ni - 2
	if g.PeriodicI() {
		maxI = ni - 1
	}
	i := clampCell(start[0], 0, maxI)
	j := clampCell(start[1], 0, nj-2)
	k := 0
	if !twoD {
		k = clampCell(start[2], 0, nk-2)
	}
	// Pull the start into the box (requests are routed to the processor
	// whose subdomain the hint or bounding box indicated).
	i = clampCell(i, box.ILo, min(box.IHi, maxI))
	j = clampCell(j, box.JLo, min(box.JHi, nj-2))
	if !twoD {
		k = clampCell(k, box.KLo, min(box.KHi, nk-2))
	}

	// A pinned walk (the linearized direction points through a topological
	// hole, as at the center of an annular grid) restarts from azimuthally
	// shifted cells; a restart landing outside the subdomain becomes a
	// forwarded request. The budget is shared across the forwarding chain
	// so a point that is simply not in this grid cannot bounce among
	// subdomains indefinitely.
	retries := 0
	stuckAt := func(steps int) LimitedResult {
		if retries >= restartBudget {
			return LimitedResult{SearchResult: SearchResult{Steps: steps}, Restarts: retries}
		}
		retries++
		denom := restartBudget + 1
		if denom < 2 {
			denom = 2
		}
		jump := [3]int{
			(i + (ni/denom)*retries) % (maxI + 1),
			(nj - 1) / 2,
			0,
		}
		if !twoD {
			jump[2] = (nk - 1) / 2
		}
		if !box.Contains(jump[0], jump[1], jump[2]) {
			return LimitedResult{
				SearchResult: SearchResult{Steps: steps},
				Exited:       true,
				ExitCell:     jump,
				Restarts:     retries,
			}
		}
		i, j, k = jump[0], jump[1], jump[2]
		return LimitedResult{SearchResult: SearchResult{Steps: -1}} // sentinel: continue
	}

	// A walk that keeps pressing against the grid's radial or axial extent
	// while drifting azimuthally is chasing a point outside the component's
	// shell; cap those boundary slides so it fails fast instead of crawling
	// across every subdomain of the grid.
	slides := 0
	const maxSlides = 6

	steps := 0
	for steps < maxWalkSteps {
		a, b, c, conv := invertCell(g, i, j, k, x)
		steps += newtonIters
		const tol = 1e-8
		if conv && a >= -tol && a <= 1+tol && b >= -tol && b <= 1+tol &&
			(twoD || c >= -tol && c <= 1+tol) {
			if cellIsField(g, i, j, k) {
				return LimitedResult{SearchResult: SearchResult{
					Donor: Donor{Grid: gi, I: i, J: j, K: k,
						A: clamp01(a), B: clamp01(b), C: clamp01(c)},
					Steps: steps, OK: true,
				}}
			}
			return LimitedResult{SearchResult: SearchResult{Steps: steps}}
		}
		di := walkStep(a)
		dj := walkStep(b)
		dk := 0
		if !twoD {
			dk = walkStep(c)
		}
		stuck := !conv || (di == 0 && dj == 0 && dk == 0)
		if !stuck {
			niNew := i + di
			if g.PeriodicI() {
				niNew = ((niNew % ni) + ni) % ni
			} else {
				niNew = clampCell(niNew, 0, maxI)
			}
			njNew := clampCell(j+dj, 0, nj-2)
			nkNew := k
			if !twoD {
				nkNew = clampCell(k+dk, 0, nk-2)
			}
			// Grid-boundary clamping in the overshoot direction: a slide.
			if (dj != 0 && njNew == j) || (!twoD && dk != 0 && nkNew == k) ||
				(!g.PeriodicI() && di != 0 && niNew == i) {
				slides++
			}
			if niNew == i && njNew == j && nkNew == k {
				stuck = true
			} else if slides > maxSlides {
				stuck = true
			} else {
				i, j, k = niNew, njNew, nkNew
				steps++
				if !box.Contains(i, j, k) {
					return LimitedResult{
						SearchResult: SearchResult{Steps: steps},
						Exited:       true,
						ExitCell:     [3]int{i, j, k},
						Restarts:     retries,
					}
				}
				continue
			}
		}
		if stuck {
			res := stuckAt(steps)
			if res.Steps >= 0 {
				return res
			}
			slides = 0
		}
	}
	return LimitedResult{SearchResult: SearchResult{Steps: steps}, Restarts: retries}
}
