package cases

import (
	"testing"

	"overd/internal/grid"
)

func TestOscAirfoilPaperStatistics(t *testing.T) {
	c := OscAirfoil(1)
	if len(c.Sys.Grids) != 3 {
		t.Fatalf("grid count = %d, want 3 (paper §4.1)", len(c.Sys.Grids))
	}
	np := c.Sys.NPoints()
	// Paper: composite total of 64K gridpoints (63.6K in the scaling study).
	if np < 58000 || np > 70000 {
		t.Errorf("composite points = %d, want ~64K", np)
	}
	// The three grids have roughly equal numbers of gridpoints.
	sizes := c.GridSizes()
	for _, s := range sizes {
		if float64(s) < float64(np)/3*0.85 || float64(s) > float64(np)/3*1.15 {
			t.Errorf("grid sizes %v not roughly equal", sizes)
		}
	}
	conn := c.Overset.Assemble()
	ratio := c.Sys.IGBPRatio()
	// Paper: IGBPs/gridpoints ≈ 44e-3.
	if ratio < 0.030 || ratio > 0.060 {
		t.Errorf("IGBP ratio = %.1fe-3, want ~44e-3", ratio*1000)
	}
	if conn.Orphans > len(conn.IGBPs)/50 {
		t.Errorf("orphans %d of %d", conn.Orphans, len(conn.IGBPs))
	}
	// 2-D case.
	for _, g := range c.Sys.Grids {
		if !g.Is2D() {
			t.Errorf("grid %s should be 2-D", g.Name)
		}
	}
	if !c.Sys.Grids[0].Moving || c.Sys.Grids[1].Moving {
		t.Error("only the airfoil grid moves")
	}
}

func TestDeltaWingPaperStatistics(t *testing.T) {
	c := DeltaWing(1)
	if len(c.Sys.Grids) != 4 {
		t.Fatalf("grid count = %d, want 4 (paper §4.2)", len(c.Sys.Grids))
	}
	np := c.Sys.NPoints()
	// Paper: about 1 million gridpoints.
	if np < 850000 || np > 1150000 {
		t.Errorf("composite points = %d, want ~1M", np)
	}
	conn := c.Overset.Assemble()
	ratio := c.Sys.IGBPRatio()
	// Paper: 33e-3.
	if ratio < 0.020 || ratio > 0.050 {
		t.Errorf("IGBP ratio = %.1fe-3, want ~33e-3", ratio*1000)
	}
	if conn.Orphans > len(conn.IGBPs)/20 {
		t.Errorf("orphans %d of %d", conn.Orphans, len(conn.IGBPs))
	}
	// Three curvilinear grids move; the background is static and Cartesian.
	for gi := 0; gi < 3; gi++ {
		if !c.Sys.Grids[gi].Moving {
			t.Errorf("grid %d should move", gi)
		}
	}
	if c.Sys.Grids[3].Moving || !c.Sys.Grids[3].Cartesian {
		t.Error("background should be static Cartesian")
	}
	if !c.ViscousAll {
		t.Error("delta wing has viscous terms in all directions")
	}
	// No turbulence model (paper: "no turbulence models are used").
	for _, g := range c.Sys.Grids {
		if g.Turbulent {
			t.Errorf("grid %s should not be turbulent", g.Name)
		}
	}
}

func TestStoreSepPaperStatistics(t *testing.T) {
	c := StoreSep(1)
	if len(c.Sys.Grids) != 16 {
		t.Fatalf("grid count = %d, want 16 (paper §4.3)", len(c.Sys.Grids))
	}
	np := c.Sys.NPoints()
	// Paper: 0.81 million gridpoints.
	if np < 650000 || np > 980000 {
		t.Errorf("composite points = %d, want ~0.81M", np)
	}
	conn := c.Overset.Assemble()
	ratio := c.Sys.IGBPRatio()
	// Paper: 66e-3, "1.5-2 times larger than either of the previous two".
	if ratio < 0.045 || ratio > 0.095 {
		t.Errorf("IGBP ratio = %.1fe-3, want ~66e-3", ratio*1000)
	}
	if conn.Orphans > len(conn.IGBPs)/10 {
		t.Errorf("orphans %d of %d", conn.Orphans, len(conn.IGBPs))
	}
	// Ten store grids move; wing/pylon and backgrounds are static.
	for gi := 0; gi < 10; gi++ {
		if !c.Sys.Grids[gi].Moving {
			t.Errorf("store grid %d should move", gi)
		}
	}
	for gi := 10; gi < 16; gi++ {
		if c.Sys.Grids[gi].Moving {
			t.Errorf("grid %d should be static", gi)
		}
	}
	// Three inviscid Cartesian backgrounds; turbulence on curvilinear grids.
	nCart := 0
	for _, g := range c.Sys.Grids {
		if g.Cartesian {
			nCart++
			if g.Viscous || g.Turbulent {
				t.Errorf("background %s should be inviscid", g.Name)
			}
		}
	}
	if nCart != 3 {
		t.Errorf("Cartesian backgrounds = %d, want 3", nCart)
	}
}

func TestIGBPRatioOrdering(t *testing.T) {
	// The paper: the store case's IGBP ratio is 1.5-2x the other cases'.
	a := OscAirfoil(0.3)
	d := DeltaWing(0.05)
	s := StoreSep(0.05)
	a.Overset.Assemble()
	d.Overset.Assemble()
	s.Overset.Assemble()
	ra, rd, rs := a.Sys.IGBPRatio(), d.Sys.IGBPRatio(), s.Sys.IGBPRatio()
	if rs <= rd {
		t.Errorf("store ratio %.1fe-3 should exceed delta wing %.1fe-3", rs*1000, rd*1000)
	}
	_ = ra
}

func TestCasesScaleDown(t *testing.T) {
	for _, mk := range []func(float64) *Case{OscAirfoil, DeltaWing, StoreSep} {
		small := mk(0.02)
		big := mk(0.3)
		if small.Sys.NPoints() >= big.Sys.NPoints() {
			t.Errorf("%s: scaling broken (%d !< %d)", small.Name,
				small.Sys.NPoints(), big.Sys.NPoints())
		}
		// All grids valid.
		for _, g := range small.Sys.Grids {
			if g.NPoints() <= 0 {
				t.Errorf("%s: invalid grid %s", small.Name, g.Name)
			}
		}
	}
}

func TestGridDimsMatchSystem(t *testing.T) {
	c := OscAirfoil(0.05)
	dims := c.GridDims()
	for i, g := range c.Sys.Grids {
		if dims[i] != [3]int{g.NI, g.NJ, g.NK} {
			t.Errorf("dims[%d] = %v", i, dims[i])
		}
	}
	sizes := c.GridSizes()
	for i, g := range c.Sys.Grids {
		if sizes[i] != g.NPoints() {
			t.Errorf("sizes[%d] = %d", i, sizes[i])
		}
	}
	_ = grid.IBField
}

func TestStoreSepFreeConfiguration(t *testing.T) {
	c := StoreSepFree(0.05)
	if c.FreeBody == nil {
		t.Fatal("free case needs a 6-DOF body")
	}
	if len(c.BodyGrids) != 10 {
		t.Errorf("body grids = %v, want the ten store grids", c.BodyGrids)
	}
	for _, gi := range c.BodyGrids {
		if c.Motions[gi] != nil {
			t.Errorf("grid %d: prescribed motion should be cleared", gi)
		}
	}
	if c.FreeBody.Mass <= 0 || c.FreeBody.Inertia.X <= 0 {
		t.Error("body needs positive mass and inertia")
	}
	// Same grid system as the prescribed case.
	p := StoreSep(0.05)
	if c.Sys.NPoints() != p.Sys.NPoints() {
		t.Error("free variant should share the prescribed grid system")
	}
}
