// Package cases constructs the paper's three evaluation problems — the 2-D
// oscillating NACA 0012 airfoil, the descending delta wing, and the
// wing/pylon/finned-store separation — as programmatic grid systems that
// match the published statistics: component counts, composite gridpoint
// totals (64K / ~1M / 0.81M), and intergrid-boundary-point densities
// (44e-3 / 33e-3 / 66e-3). A scale parameter shrinks every dimension for
// fast tests; scale 1 reproduces the paper sizes.
package cases

import (
	"math"

	"overd/internal/flow"
	"overd/internal/geom"
	"overd/internal/grid"
	"overd/internal/gridgen"
	"overd/internal/overset"
	"overd/internal/sixdof"
)

// Case bundles everything OVERFLOW-D1 needs to run one problem.
type Case struct {
	Name string
	Sys  *grid.System
	// Overset holds cutters and the donor-search hierarchy.
	Overset *overset.Config
	// Motions gives each grid's prescribed motion (nil entries are static).
	Motions []sixdof.Motion
	// FreeBody optionally couples one grid set to 6-DOF dynamics: loads
	// integrated over BodyGrids drive Body, which overrides Motions for
	// those grids.
	FreeBody  *sixdof.Body
	BodyGrids []int
	// FS is the freestream condition.
	FS flow.Freestream
	// DT is the fixed timestep (chosen so donor cells move at most about
	// one receiver cell per step, as the paper notes).
	DT float64
	// ViscousAll activates viscous terms in all index directions (the
	// delta-wing case); otherwise viscous grids use wall-normal thin layer.
	ViscousAll bool
	// ForceRef is the moment reference point.
	ForceRef geom.Vec3
}

// GridSizes returns the per-component gridpoint counts (Algorithm 1 input).
func (c *Case) GridSizes() []int {
	sizes := make([]int, len(c.Sys.Grids))
	for i, g := range c.Sys.Grids {
		sizes[i] = g.NPoints()
	}
	return sizes
}

// GridDims returns per-component index dimensions for subdivision.
func (c *Case) GridDims() [][3]int {
	dims := make([][3]int, len(c.Sys.Grids))
	for i, g := range c.Sys.Grids {
		dims[i] = [3]int{g.NI, g.NJ, g.NK}
	}
	return dims
}

func scaled(n int, scale float64, min int) int {
	v := int(math.Round(float64(n) * scale))
	if v < min {
		v = min
	}
	return v
}

// OscAirfoil builds the 2-D oscillating-airfoil case (paper §4.1): three
// grids — a near-field O-grid on the airfoil, an intermediate annulus, and
// a square Cartesian background — with a composite total of ~64K points at
// scale 1 and an IGBP ratio near 44e-3. The airfoil pitches sinusoidally,
// α(t) = 5°·sin(πt/2), at freestream Mach 0.8, Re 1e6.
func OscAirfoil(scale float64) *Case {
	lin := math.Sqrt(scale)
	// Minimum dimensions keep enough overset overlap for valid donors at
	// small test scales (coarse fringe bands must not swallow the cells
	// that neighbor-grid fringes land in).
	afNI, afNJ := scaled(448, lin, 32), scaled(47, lin, 15)
	rgNI, rgNJ := scaled(448, lin, 32), scaled(47, lin, 15)
	bgN := scaled(146, lin, 16)

	af := gridgen.AirfoilOGrid(0, "airfoil", afNI, afNJ, 1.2)
	af.Moving = true
	af.Turbulent = true
	ring := gridgen.Annulus(1, "intermediate", rgNI, rgNJ, 0.5, 0, 0.35, 3.0)
	bg := gridgen.CartesianBox(2, "background", bgN, bgN, 1,
		geom.Box{Min: geom.Vec3{X: -6.5, Y: -7}, Max: geom.Vec3{X: 7.5, Y: 7}})
	sys := &grid.System{Grids: []*grid.Grid{af, ring, bg}}

	ov := &overset.Config{
		Sys: sys,
		Cutters: []*overset.BodyCutter{{
			Cutter:     overset.NewAirfoilCutter(0.02),
			OwnGrids:   []int{0},
			FollowGrid: 0,
		}},
		Search: map[int][]int{
			0: {1, 2},
			1: {0, 2},
			2: {1, 0},
		},
		FringeDepth: 2,
		HoleMapRes:  32,
	}

	return &Case{
		Name:    "osc-airfoil",
		Sys:     sys,
		Overset: ov,
		Motions: []sixdof.Motion{
			sixdof.PitchMotion{
				Alpha0: 5 * math.Pi / 180,
				Omega:  math.Pi / 2,
				Pivot:  geom.Vec3{X: 0.25},
			},
			nil, nil,
		},
		FS:       flow.Freestream{Mach: 0.8, Re: 1e6},
		DT:       0.02,
		ForceRef: geom.Vec3{X: 0.25},
	}
}

// DeltaWing builds the descending delta-wing case (paper §4.2): four grids
// — a flattened-ellipsoid wing analog, two pipe-jet bodies of revolution,
// and a Cartesian background — a composite ~1M points at scale 1 with an
// IGBP ratio near 33e-3. The three curvilinear grids descend at M = 0.064;
// viscous terms are active in all directions and no turbulence model is
// used.
func DeltaWing(scale float64) *Case {
	lin := math.Cbrt(scale)
	// Component sizes are chosen so Algorithm 1 balances well at the
	// paper's node counts (7/12/26/55): ~260K + 2x150K + 440K = ~1M.
	wing := gridgen.EllipsoidGrid(0, "wing", scaled(112, lin, 20), scaled(30, lin, 12),
		scaled(78, lin, 14), 2.4, 0.22, 1.5, 3.0)
	wing.Moving = true
	jetProfile := gridgen.Profile{Length: 2.2, Radius: func(float64) float64 { return 0.18 }}
	jet1 := gridgen.BodyOfRevolutionGrid(1, "jet1", scaled(64, lin, 14), scaled(30, lin, 10),
		scaled(78, lin, 12), jetProfile, 0.9)
	jet1.Moving = true
	jet2 := gridgen.BodyOfRevolutionGrid(2, "jet2", scaled(64, lin, 14), scaled(30, lin, 10),
		scaled(78, lin, 12), jetProfile, 0.9)
	jet2.Moving = true
	// Place the jets under the wing (body frame).
	shift1 := geom.Transform{R: geom.Identity3(), T: geom.Vec3{X: -1.4, Y: -0.7, Z: -0.9}}
	shift2 := geom.Transform{R: geom.Identity3(), T: geom.Vec3{X: -1.4, Y: -0.7, Z: 0.9}}
	offsetBody(jet1, shift1)
	offsetBody(jet2, shift2)
	bgN := scaled(76, lin, 14)
	bg := gridgen.CartesianBox(3, "background", bgN, bgN, bgN,
		geom.Box{Min: geom.Vec3{X: -10, Y: -10, Z: -10}, Max: geom.Vec3{X: 10, Y: 10, Z: 10}})
	// "The viscous terms are active in all directions on all four grids."
	bg.Viscous = true
	sys := &grid.System{Grids: []*grid.Grid{wing, jet1, jet2, bg}}

	ov := &overset.Config{
		Sys: sys,
		Cutters: []*overset.BodyCutter{
			{
				Cutter:     overset.NewEllipsoidCutter(2.4, 0.22, 1.5, 0.05),
				OwnGrids:   []int{0},
				FollowGrid: 0,
			},
			{
				Cutter:     newShiftedRevolvedCutter(jetProfile, 0.04, shift1),
				OwnGrids:   []int{1},
				FollowGrid: 1,
			},
			{
				Cutter:     newShiftedRevolvedCutter(jetProfile, 0.04, shift2),
				OwnGrids:   []int{2},
				FollowGrid: 2,
			},
		},
		Search: map[int][]int{
			0: {3, 1, 2},
			1: {0, 3, 2},
			2: {0, 3, 1},
			3: {0, 1, 2},
		},
		FringeDepth: 2,
		HoleMapRes:  24,
	}

	descent := sixdof.TranslationMotion{Velocity: geom.Vec3{Y: -0.064}}
	return &Case{
		Name:    "delta-wing",
		Sys:     sys,
		Overset: ov,
		Motions: []sixdof.Motion{descent, descent, descent, nil},
		FS:      flow.Freestream{Mach: 0.3, Re: 5e5},
		// All grids viscous in all directions, no turbulence model.
		ViscousAll: true,
		DT:         0.05,
		ForceRef:   geom.Vec3{},
	}
}

// offsetBody bakes a placement into a grid's body frame (used to position
// sub-components relative to their parent before any motion).
func offsetBody(g *grid.Grid, t geom.Transform) {
	for n := range g.X0 {
		p := t.Apply(geom.Vec3{X: g.X0[n], Y: g.Y0[n], Z: g.Z0[n]})
		g.X0[n], g.Y0[n], g.Z0[n] = p.X, p.Y, p.Z
		g.X[n], g.Y[n], g.Z[n] = p.X, p.Y, p.Z
	}
}

// shiftedRevolvedCutter wraps a RevolvedCutter whose body frame is offset
// from its grid's frame (the jet pipes are placed relative to the wing).
type shiftedRevolvedCutter struct {
	inner *overset.RevolvedCutter
	shift geom.Transform
}

func newShiftedRevolvedCutter(p gridgen.Profile, margin float64, shift geom.Transform) overset.Cutter {
	return &shiftedRevolvedCutter{inner: overset.NewRevolvedCutter(p, margin), shift: shift}
}

func (c *shiftedRevolvedCutter) Inside(p geom.Vec3) bool { return c.inner.Inside(p) }
func (c *shiftedRevolvedCutter) Bounds() geom.Box        { return c.inner.Bounds() }
func (c *shiftedRevolvedCutter) SetTransform(t geom.Transform) {
	c.inner.SetTransform(t.Compose(c.shift))
}

// StoreSep builds the wing/pylon/finned-store separation case (paper §4.3):
// sixteen grids — ten defining the finned store (body, nose, tail, four
// fins, three collars), three for the wing/pylon, and three Cartesian
// background boxes — a composite ~0.81M points at scale 1 with an IGBP
// ratio near 66e-3, at Mach 1.6 with Baldwin-Lomax on the curvilinear
// grids. The store's separation trajectory is prescribed.
func StoreSep(scale float64) *Case {
	lin := math.Cbrt(scale)
	storeLen := 4.0
	prof := gridgen.OgiveProfile(storeLen, 0.35)
	mk := func(id int, name string, ni, nj, nk int, p gridgen.Profile, outer float64) *grid.Grid {
		g := gridgen.BodyOfRevolutionGrid(id, name,
			scaled(ni, lin, 12), scaled(nj, lin, 10), scaled(nk, lin, 8), p, outer)
		g.Moving = true
		g.Turbulent = true
		return g
	}

	// Store component grids (ids 0-9), body frame: store axis +x from 0.
	body := mk(0, "store-body", 68, 32, 56, prof, 1.1)
	noseP := gridgen.Profile{Length: 1.2, Radius: func(t float64) float64 { return prof.Radius(t * 0.28) }}
	nose := mk(1, "store-nose", 48, 26, 32, noseP, 0.9)
	tailP := gridgen.Profile{Length: 1.0, Radius: func(t float64) float64 { return prof.Radius(0.76 + t*0.24) }}
	tail := mk(2, "store-tail", 48, 26, 28, tailP, 0.9)
	offsetBody(tail, geom.Transform{R: geom.Identity3(), T: geom.Vec3{X: storeLen - 1.0}})

	fins := make([]*grid.Grid, 4)
	for f := 0; f < 4; f++ {
		fin := gridgen.FinGrid(3+f, finName(f), scaled(36, lin, 8), scaled(20, lin, 6),
			scaled(16, lin, 6), 0.5, 0.55, 0.05, 4)
		fin.Moving = true
		fin.Turbulent = true
		ang := float64(f) * math.Pi / 2
		place := geom.Transform{
			R: geom.RotX(ang),
			T: geom.Vec3{X: storeLen - 0.65},
		}
		// Fin extends radially (body z before rotation).
		offsetBody(fin, place.Compose(geom.Transform{R: geom.Identity3(), T: geom.Vec3{Z: 0.3}}))
		fins[f] = fin
	}

	collarP := gridgen.Profile{Length: 0.8, Radius: func(float64) float64 { return 0.37 }}
	collar1 := mk(7, "store-collar1", 44, 22, 18, collarP, 0.8)
	offsetBody(collar1, geom.Transform{R: geom.Identity3(), T: geom.Vec3{X: 0.9}})
	collar2 := mk(8, "store-collar2", 44, 22, 18, collarP, 0.8)
	offsetBody(collar2, geom.Transform{R: geom.Identity3(), T: geom.Vec3{X: 2.2}})
	collar3 := mk(9, "store-collar3", 44, 22, 18, collarP, 0.8)
	offsetBody(collar3, geom.Transform{R: geom.Identity3(), T: geom.Vec3{X: 3.0}})

	// Wing/pylon grids (ids 10-12), static, above the store (y > 0).
	// The largest component is held near 2x the 16-node mean load, the
	// imbalance the paper's Table 4 implies at its smallest partition.
	wing := gridgen.EllipsoidGrid(10, "wing", scaled(88, lin, 16), scaled(26, lin, 10),
		scaled(44, lin, 10), 3.0, 0.25, 2.0, 3.2)
	wing.Turbulent = true
	offsetBody(wing, geom.Transform{R: geom.Identity3(), T: geom.Vec3{X: 2, Y: 2.2}})
	pylonP := gridgen.Profile{Length: 1.4, Radius: func(float64) float64 { return 0.16 }}
	pylon := gridgen.BodyOfRevolutionGrid(11, "pylon", scaled(48, lin, 10), scaled(26, lin, 8),
		scaled(28, lin, 8), pylonP, 0.7)
	pylon.Turbulent = true
	offsetBody(pylon, geom.Transform{R: geom.RotZ(-math.Pi / 2), T: geom.Vec3{X: 1.8, Y: 1.9}})
	flap := gridgen.EllipsoidGrid(12, "wing-flap", scaled(68, lin, 12), scaled(24, lin, 8),
		scaled(36, lin, 8), 1.2, 0.12, 1.0, 3.0)
	flap.Turbulent = true
	offsetBody(flap, geom.Transform{R: geom.Identity3(), T: geom.Vec3{X: 5.2, Y: 2.1}})

	// Cartesian backgrounds (ids 13-15), inviscid, nested around the store.
	bgNear := gridgen.CartesianBox(13, "bg-near", scaled(60, lin, 10), scaled(46, lin, 8), scaled(44, lin, 8),
		geom.Box{Min: geom.Vec3{X: -1.5, Y: -3.5, Z: -2.5}, Max: geom.Vec3{X: 6, Y: 3.2, Z: 2.5}})
	bgMid := gridgen.CartesianBox(14, "bg-mid", scaled(56, lin, 8), scaled(48, lin, 8), scaled(44, lin, 8),
		geom.Box{Min: geom.Vec3{X: -5, Y: -8, Z: -5.5}, Max: geom.Vec3{X: 10, Y: 6, Z: 5.5}})
	bgFar := gridgen.CartesianBox(15, "bg-far", scaled(50, lin, 8), scaled(44, lin, 8), scaled(44, lin, 8),
		geom.Box{Min: geom.Vec3{X: -14, Y: -16, Z: -12}, Max: geom.Vec3{X: 20, Y: 12, Z: 12}})

	grids := []*grid.Grid{body, nose, tail, fins[0], fins[1], fins[2], fins[3],
		collar1, collar2, collar3, wing, pylon, flap, bgNear, bgMid, bgFar}
	sys := &grid.System{Grids: grids}

	storeIDs := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	ov := &overset.Config{
		Sys: sys,
		Cutters: []*overset.BodyCutter{
			{
				Cutter:     overset.NewRevolvedCutter(prof, 0.05),
				OwnGrids:   storeIDs,
				FollowGrid: 0,
			},
			{
				Cutter: newShiftedEllipsoidCutter(3.0, 0.25, 2.0, 0.05,
					geom.Transform{R: geom.Identity3(), T: geom.Vec3{X: 2, Y: 2.2}}),
				OwnGrids:   []int{10, 11, 12},
				FollowGrid: -1,
			},
		},
		Search:      storeSearchOrder(len(grids)),
		FringeDepth: 2,
		HoleMapRes:  24,
	}

	release := sixdof.StoreReleaseMotion{
		Drop:      0.02,
		Decel:     0.004,
		PitchRate: 0.01,
		Pivot:     geom.Vec3{X: storeLen / 2},
	}
	motions := make([]sixdof.Motion, len(grids))
	for _, id := range storeIDs {
		motions[id] = release
	}

	return &Case{
		Name:     "store-separation",
		Sys:      sys,
		Overset:  ov,
		Motions:  motions,
		FS:       flow.Freestream{Mach: 1.6, Re: 2e6},
		DT:       0.02,
		ForceRef: geom.Vec3{X: storeLen / 2},
	}
}

// StoreSepFree is StoreSep with the store's motion computed from the
// integrated aerodynamic loads through the six-degree-of-freedom model
// instead of prescribed — the paper notes "the free motion can be computed
// with negligible change in the parallel performance of the code."
func StoreSepFree(scale float64) *Case {
	c := StoreSep(scale)
	c.Name = "store-separation-free"
	storeLen := 4.0
	body := sixdof.NewBody(
		40.0,                          // mass (nondimensional)
		geom.Vec3{X: 4, Y: 30, Z: 30}, // principal inertia
		geom.Vec3{X: storeLen / 2},    // CG at mid-body
	)
	body.Gravity = geom.Vec3{Y: -0.02}
	c.FreeBody = body
	c.BodyGrids = []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	for _, gi := range c.BodyGrids {
		c.Motions[gi] = nil
	}
	return c
}

func finName(f int) string {
	return [...]string{"fin-north", "fin-east", "fin-south", "fin-west"}[f]
}

// storeSearchOrder builds the donor hierarchy: store components search the
// store body, then the near background, then outward; wing components
// search the wing then backgrounds; backgrounds search finer neighbors
// first then curvilinear grids.
func storeSearchOrder(n int) map[int][]int {
	order := make(map[int][]int, n)
	storeFirst := []int{0, 13, 14, 15}
	for _, id := range []int{1, 2, 3, 4, 5, 6, 7, 8, 9} {
		order[id] = storeFirst
	}
	order[0] = []int{13, 14, 15}
	order[10] = []int{13, 14, 15}
	order[11] = []int{10, 13, 14, 15}
	order[12] = []int{10, 13, 14, 15}
	order[13] = []int{0, 10, 14, 15}
	order[14] = []int{13, 15, 0, 10}
	order[15] = []int{14, 13}
	return order
}

type shiftedEllipsoidCutter struct {
	inner *overset.EllipsoidCutter
	shift geom.Transform
}

func newShiftedEllipsoidCutter(a, b, c, margin float64, shift geom.Transform) overset.Cutter {
	ec := overset.NewEllipsoidCutter(a, b, c, margin)
	ec.SetTransform(shift)
	return &shiftedEllipsoidCutter{inner: ec, shift: shift}
}

func (c *shiftedEllipsoidCutter) Inside(p geom.Vec3) bool { return c.inner.Inside(p) }
func (c *shiftedEllipsoidCutter) Bounds() geom.Box        { return c.inner.Bounds() }
func (c *shiftedEllipsoidCutter) SetTransform(t geom.Transform) {
	c.inner.SetTransform(t.Compose(c.shift))
}
