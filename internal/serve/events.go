package serve

import "sync"

// Event is one progress record on a job's event stream, serialized as one
// NDJSON line on GET /jobs/{id}/events.
type Event struct {
	// Type is queued, replayed (re-queued from the journal after a
	// restart), start, step, retry (infrastructure failure given its one
	// retry), done, cancelled, error, or heartbeat (synthesized per
	// subscriber at stream time — never stored in the log).
	Type string `json:"type"`
	// Seq is the per-subscriber monotonic sequence number, stamped at
	// stream-write time (a late subscriber's replayed history renumbers
	// from 0; heartbeats consume numbers too). Not stored in the log.
	Seq int `json:"seq"`
	// Step and VClock carry a step event's index and rank-0 virtual clock.
	Step   int     `json:"step,omitempty"`
	VClock float64 `json:"vclock,omitempty"`
	// Snapshot is the step's phase breakdown plus live windowed-metrics
	// reads (messages/bytes so far), present on step events.
	Snapshot *StepSnapshot `json:"snapshot,omitempty"`
	// Cached marks a done event served from the result cache.
	Cached bool `json:"cached,omitempty"`
	// Steps is a done event's executed solver step count (0 when cached).
	Steps int `json:"steps,omitempty"`
	// Error carries an error event's message.
	Error string `json:"error,omitempty"`
}

// StepSnapshot is the per-step progress payload: the step's virtual-time
// phase split and cumulative message traffic from the live metrics window.
type StepSnapshot struct {
	Flow      float64 `json:"flow"`
	Motion    float64 `json:"motion"`
	Connect   float64 `json:"connect"`
	Balance   float64 `json:"balance"`
	IGBPs     int     `json:"igbps"`
	MaxF      float64 `json:"max_f"`
	MsgsSent  float64 `json:"msgs_sent"`
	BytesSent float64 `json:"bytes_sent"`
}

// eventLog is an append-only event sequence with blocking reads: streamers
// wait for growth on a broadcast channel that is swapped on every append.
type eventLog struct {
	mu     sync.Mutex
	events []Event
	grown  chan struct{}
	closed bool
}

func newEventLog() *eventLog {
	return &eventLog{grown: make(chan struct{})}
}

// append records an event and wakes every waiting streamer.
func (l *eventLog) append(e Event) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.events = append(l.events, e)
	close(l.grown)
	l.grown = make(chan struct{})
}

// closeLog marks the stream complete (after a terminal done/error event)
// and wakes waiters one last time.
func (l *eventLog) closeLog() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	close(l.grown)
	l.grown = make(chan struct{})
}

// from returns the events at index >= i, whether the log is complete, and a
// channel that is closed on the next change (for blocking waits).
func (l *eventLog) from(i int) ([]Event, bool, <-chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	if i < len(l.events) {
		out = append(out, l.events[i:]...)
	}
	return out, l.closed, l.grown
}
