package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// The job journal is the service's write-ahead log: one NDJSON record per
// state transition, fsync'd before the transition is acknowledged. Its
// contract is exactly-once execution of accepted work across process
// death — an admitted job either reaches a terminal marker in the journal
// or is re-queued, in original admission order, on the next start.
//
// Record types:
//
//	{"type":"meta","seq":N}                          highest id ever issued
//	{"type":"admit","seq":N,"id":"j-…","tenant":…,
//	 "job":<canonical JSON + deadline/max_steps>}    job accepted
//	{"type":"done","id":"j-…","status":"done|failed|cancelled","error":…}
//
// Only the last line of the file may be torn (the file is opened
// O_APPEND and every record is one write); replay tolerates exactly that.
// On startup the journal is compacted: terminal pairs are dropped, the
// surviving admits are rewritten behind a meta record carrying the highest
// sequence ever issued (so job ids are never reused), and the new file is
// published with tmp+fsync+rename+dir-sync.

// journalRecord is one WAL line.
type journalRecord struct {
	Type   string          `json:"type"`
	Seq    int             `json:"seq,omitempty"`
	ID     string          `json:"id,omitempty"`
	Tenant string          `json:"tenant,omitempty"`
	Job    json.RawMessage `json:"job,omitempty"`
	Status JobStatus       `json:"status,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// journal is the open WAL. The Server serializes every append under its
// own lock, so the struct needs no mutex of its own.
type journal struct {
	path string
	f    *os.File
}

// journalName is the WAL's filename inside the journal directory.
const journalName = "jobs.wal"

// openJournal replays and compacts the WAL in dir (creating both as
// needed) and returns the open journal, the admitted-but-unfinished
// records in original admission order, and the highest job sequence ever
// issued.
func openJournal(dir string) (*journal, []journalRecord, int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, 0, fmt.Errorf("serve: journal dir: %w", err)
	}
	path := filepath.Join(dir, journalName)
	pending, maxSeq, err := replayJournal(path)
	if err != nil {
		return nil, nil, 0, err
	}
	// Compact: pending admits behind a meta record, atomically published.
	var buf bytes.Buffer
	writeRec := func(r journalRecord) {
		b, err := json.Marshal(r)
		if err != nil {
			panic(fmt.Sprintf("serve: journal marshal: %v", err)) // no unmarshalable fields
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	writeRec(journalRecord{Type: "meta", Seq: maxSeq})
	for _, r := range pending {
		writeRec(r)
	}
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, buf.Bytes()); err != nil {
		return nil, nil, 0, fmt.Errorf("serve: journal compact: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, nil, 0, fmt.Errorf("serve: journal publish: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return nil, nil, 0, fmt.Errorf("serve: journal dir sync: %w", err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("serve: journal open: %w", err)
	}
	return &journal{path: path, f: f}, pending, maxSeq, nil
}

// replayJournal reads the WAL and reduces it to the unfinished admits (in
// file = admission order) and the highest sequence seen. A missing file is
// an empty journal. Only a torn final line is tolerated; corruption
// anywhere else is an error — silently skipping a record would break the
// exactly-once contract.
func replayJournal(path string) ([]journalRecord, int, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("serve: journal read: %w", err)
	}
	lines := bytes.Split(data, []byte("\n"))
	var pending []journalRecord
	byID := make(map[string]int) // id → index into pending, -1 once finished
	maxSeq := 0
	for i, line := range lines {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var r journalRecord
		if err := json.Unmarshal(line, &r); err != nil {
			if i == len(lines)-1 {
				// Torn tail: the process died mid-append, after fsync of
				// everything before it. The record was never acknowledged.
				break
			}
			return nil, 0, fmt.Errorf("serve: journal corrupt at line %d: %v", i+1, err)
		}
		switch r.Type {
		case "meta":
			if r.Seq > maxSeq {
				maxSeq = r.Seq
			}
		case "admit":
			if r.ID == "" || len(r.Job) == 0 {
				return nil, 0, fmt.Errorf("serve: journal corrupt at line %d: admit without id/job", i+1)
			}
			if r.Seq > maxSeq {
				maxSeq = r.Seq
			}
			byID[r.ID] = len(pending)
			pending = append(pending, r)
		case "done":
			idx, ok := byID[r.ID]
			if !ok || idx < 0 {
				// A done for an unknown id can only follow compaction of a
				// crashed run that lost the admit — impossible given the
				// admit is fsync'd first. Treat as corruption.
				return nil, 0, fmt.Errorf("serve: journal corrupt at line %d: done for unknown job %s", i+1, r.ID)
			}
			pending[idx].Type = "" // tombstone
			byID[r.ID] = -1
		default:
			return nil, 0, fmt.Errorf("serve: journal corrupt at line %d: unknown record type %q", i+1, r.Type)
		}
	}
	// Squeeze out the tombstones, preserving admission order.
	out := pending[:0]
	for _, r := range pending {
		if r.Type == "admit" {
			out = append(out, r)
		}
	}
	return out, maxSeq, nil
}

// append writes one record and fsyncs it. An error means the record may or
// may not be durable; callers treat it as infrastructure failure.
func (j *journal) append(r journalRecord) error {
	b, err := json.Marshal(r)
	if err != nil {
		panic(fmt.Sprintf("serve: journal marshal: %v", err))
	}
	b = append(b, '\n')
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("serve: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("serve: journal sync: %w", err)
	}
	return nil
}

func (j *journal) close() error { return j.f.Close() }

// writeFileSync writes data to path and fsyncs the file before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if _, err := w.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a rename inside it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
