// Package serve is the multi-tenant simulation job service: a canonical job
// model, a bounded worker pool with admission control and per-tenant fair
// scheduling, a content-addressed result cache, and the HTTP API that
// cmd/overd -serve mounts.
//
// The whole design leans on one property the rest of the repository pins
// with golden tests: a run's tables, traces and metrics are a pure function
// of its request. Two requests that normalize to the same canonical bytes
// therefore hash to the same key and may share one result — a cache hit
// serves byte-identical artifacts without executing a single solver step.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"overd"
)

// Job is one simulation request. The zero values of optional fields are
// filled by Normalize so that two requests meaning the same run serialize
// to the same canonical bytes (and so hash to the same cache key).
//
// Tenant is deliberately NOT part of the canonical form: who asked for a
// result does not change what the result is, and cross-tenant sharing of
// cached artifacts is the point of content addressing.
type Job struct {
	// Case is the paper case: airfoil, deltawing or storesep.
	Case string `json:"case"`
	// Machine is the modeled machine (SP2, SP, YMP, C90). Default SP2.
	Machine string `json:"machine"`
	// Nodes is the simulated processor count. Default 8.
	Nodes int `json:"nodes"`
	// Steps is the measured timestep count. Default 5.
	Steps int `json:"steps"`
	// Scale multiplies the case's gridpoint budget. Default 1.
	Scale float64 `json:"scale"`
	// Fo is the dynamic load-balance factor (Algorithm 2); 0 — JSON has
	// no +Inf — means disabled (pure static balancing).
	Fo float64 `json:"fo"`
	// CheckEvery is the number of steps between dynamic-balance checks.
	// Default 5.
	CheckEvery int `json:"check_every"`
	// Balancer selects the load-balancing strategy by registry name
	// (overd.BalancerNames). Empty resolves from Fo — "dynamic" when
	// Fo > 0, "static" otherwise — so older requests hash as before the
	// field's introduction only in spelling, not in meaning: the resolved
	// name is canonical and participates in the cache key.
	Balancer string `json:"balancer"`
	// Tables optionally selects paper tables ("1".."6", "5f") to
	// regenerate at this job's Scale/Steps and append to the tables
	// artifact after the run's own rows.
	Tables []string `json:"tables,omitempty"`
	// Faults is an inline deterministic fault plan (see package fault).
	Faults *overd.FaultPlan `json:"faults,omitempty"`
	// CheckpointEvery is the steps between crash-recovery checkpoints;
	// meaningful only with a fault plan (0 = auto when the plan crashes
	// ranks).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// Seed overrides the fault plan's loss-hash seed; rejected without a
	// plan (it would be dead weight in the cache key).
	Seed int64 `json:"seed,omitempty"`

	// Deadline is a wall-clock budget in seconds: the job is cancelled if
	// it is still running past it, and rejected at admission (503) when
	// the estimated queue wait alone already exceeds it. 0 means none.
	// Like Tenant, it is excluded from the canonical form: how long the
	// caller is willing to wait does not change what the result is.
	Deadline float64 `json:"deadline,omitempty"`
	// MaxSteps caps the solver timesteps spent on this job (a compute
	// budget: the run is cancelled, not truncated-and-returned, when it
	// would exceed it). 0 means unlimited. Excluded from the canonical
	// form for the same reason as Deadline.
	MaxSteps int `json:"max_steps,omitempty"`
	// Workers bounds how many of this job's rank goroutines run host code
	// simultaneously (see overd.Config.Workers). 0 means unbounded. Like
	// Deadline it is excluded from the canonical form: parallelism is a
	// host-side resource knob, and the runtime guarantees any value yields
	// byte-identical results — jobs differing only here share one cache
	// entry by construction.
	Workers int `json:"workers_per_job,omitempty"`

	// Tenant is the fairness bucket the job is scheduled under. Filled
	// from the X-Overd-Tenant header when absent; excluded from the
	// canonical form and the hash.
	Tenant string `json:"tenant,omitempty"`
}

// Limits caps the resources one job may request, so an absurd submission
// gets a clear 400 instead of attempting a giant world build. Zero values
// pick the package defaults (DefaultLimits); -1 disables a single cap.
type Limits struct {
	// MaxNodes caps the simulated processor count.
	MaxNodes int
	// MaxSteps caps the requested timestep count.
	MaxSteps int
	// MaxScale caps the gridpoint budget multiplier.
	MaxScale float64
}

// DefaultLimits is the admission guard applied when a Limits field is zero:
// generous enough for every paper table at severalfold scale, small enough
// that a typo ("nodes": 1000000) cannot take the service down.
var DefaultLimits = Limits{MaxNodes: 256, MaxSteps: 10000, MaxScale: 64}

// withDefaults fills zero fields from DefaultLimits and maps -1 to "off".
func (l Limits) withDefaults() Limits {
	if l.MaxNodes == 0 {
		l.MaxNodes = DefaultLimits.MaxNodes
	}
	if l.MaxSteps == 0 {
		l.MaxSteps = DefaultLimits.MaxSteps
	}
	if l.MaxScale == 0 {
		l.MaxScale = DefaultLimits.MaxScale
	}
	return l
}

// tableOrder is the fixed canonical order of table ids, matching
// overd.EmitTablesJSON's emission order.
var tableOrder = []string{"1", "2", "3", "4", "5", "5f", "6"}

// caseByName validates a case name without building the (large) grid
// system; the builder itself runs later, on a worker.
func caseByName(name string) (func(scale float64) *overd.Case, error) {
	switch name {
	case "airfoil":
		return overd.OscillatingAirfoil, nil
	case "deltawing":
		return overd.DescendingDeltaWing, nil
	case "storesep":
		return overd.StoreSeparation, nil
	}
	return nil, fmt.Errorf("unknown case %q (valid: airfoil, deltawing, storesep)", name)
}

// Normalize validates the job under the default resource limits and
// returns a canonical copy: defaults filled, machine name resolved to its
// canonical spelling, table selection deduplicated and sorted into emission
// order, empty fault plans dropped, the seed folded into the plan, and the
// tenant stripped. Two jobs that mean the same run normalize to identical
// structs.
func (j Job) Normalize() (Job, error) {
	return j.NormalizeLimits(Limits{})
}

// NormalizeLimits is Normalize under server-configured resource caps.
func (j Job) NormalizeLimits(lim Limits) (Job, error) {
	lim = lim.withDefaults()
	n := j
	n.Tenant = ""

	if n.Case == "" {
		return n, fmt.Errorf("job: missing case (valid: airfoil, deltawing, storesep)")
	}
	if _, err := caseByName(n.Case); err != nil {
		return n, fmt.Errorf("job: %w", err)
	}
	if n.Machine == "" {
		n.Machine = "SP2"
	}
	m, err := overd.MachineByName(n.Machine)
	if err != nil {
		return n, fmt.Errorf("job: %w", err)
	}
	n.Machine = m.Name
	if n.Nodes == 0 {
		n.Nodes = 8
	}
	if n.Nodes < 0 {
		return n, fmt.Errorf("job: nodes %d: the simulated machine needs at least one processor", n.Nodes)
	}
	if lim.MaxNodes > 0 && n.Nodes > lim.MaxNodes {
		return n, fmt.Errorf("job: nodes %d exceeds this server's limit of %d", n.Nodes, lim.MaxNodes)
	}
	if n.Steps == 0 {
		n.Steps = 5
	}
	if n.Steps < 0 {
		return n, fmt.Errorf("job: steps %d: the timestep count must be positive", n.Steps)
	}
	if lim.MaxSteps > 0 && n.Steps > lim.MaxSteps {
		return n, fmt.Errorf("job: steps %d exceeds this server's limit of %d", n.Steps, lim.MaxSteps)
	}
	if n.Scale == 0 {
		n.Scale = 1
	}
	if n.Scale < 0 {
		return n, fmt.Errorf("job: scale %g: the gridpoint budget multiplier must be positive", n.Scale)
	}
	if lim.MaxScale > 0 && n.Scale > lim.MaxScale {
		return n, fmt.Errorf("job: scale %g exceeds this server's limit of %g", n.Scale, lim.MaxScale)
	}
	if n.Fo < 0 {
		return n, fmt.Errorf("job: fo %g: the load-balance factor cannot be negative (0 disables)", n.Fo)
	}
	if n.CheckEvery == 0 {
		n.CheckEvery = 5
	}
	if n.CheckEvery < 0 {
		return n, fmt.Errorf("job: check_every %d: the balance-check interval must be positive", n.CheckEvery)
	}
	if n.Balancer == "" {
		if n.Fo > 0 {
			n.Balancer = "dynamic"
		} else {
			n.Balancer = "static"
		}
	}
	if err := overd.ValidateBalancer(n.Balancer, foRuntime(n.Fo)); err != nil {
		return n, fmt.Errorf("job: %w", err)
	}

	if len(n.Tables) > 0 {
		sel, err := overd.ParseTableSelection(strings.Join(n.Tables, ","))
		if err != nil {
			return n, fmt.Errorf("job: %w", err)
		}
		n.Tables = nil
		for _, id := range tableOrder {
			if sel[id] {
				n.Tables = append(n.Tables, id)
			}
		}
	}

	if n.Faults != nil {
		if err := n.Faults.Validate(); err != nil {
			return n, fmt.Errorf("job: %w", err)
		}
		if n.Faults.Empty() && n.Faults.Seed == 0 && n.Seed == 0 {
			n.Faults = nil
		}
	}
	if n.Faults == nil {
		if n.Seed != 0 {
			return n, fmt.Errorf("job: seed %d without a fault plan has no effect on a deterministic run", n.Seed)
		}
		if n.CheckpointEvery > 0 {
			return n, fmt.Errorf("job: checkpoint_every %d without faults: checkpoints only matter when the plan can crash ranks", n.CheckpointEvery)
		}
	} else if n.Seed != 0 {
		// One canonical home for the seed: inside the plan.
		plan := *n.Faults
		plan.Seed = n.Seed
		n.Faults = &plan
		n.Seed = 0
	}
	if n.CheckpointEvery < 0 {
		n.CheckpointEvery = -1 // all negatives mean the same thing: off
	}
	if n.Deadline < 0 {
		return n, fmt.Errorf("job: deadline %g: the wall-clock budget cannot be negative (0 means none)", n.Deadline)
	}
	if n.MaxSteps < 0 {
		return n, fmt.Errorf("job: max_steps %d: the step budget cannot be negative (0 means unlimited)", n.MaxSteps)
	}
	if n.MaxSteps > 0 && n.MaxSteps < n.Steps {
		return n, fmt.Errorf("job: max_steps %d is below the %d steps the run needs; it would always be cancelled", n.MaxSteps, n.Steps)
	}
	if n.Workers < 0 {
		return n, fmt.Errorf("job: workers_per_job %d: the parallelism bound cannot be negative (0 means unbounded)", n.Workers)
	}
	return n, nil
}

// foRuntime maps the job-model load-balance factor (0 = disabled, JSON has
// no +Inf) to the runtime convention (+Inf = disabled) that the balancer
// validation rules are written against.
func foRuntime(fo float64) float64 {
	if fo > 0 {
		return fo
	}
	return math.Inf(1)
}

// Canonical returns the canonical JSON bytes of the job. It must be called
// on a normalized job; field order is the struct declaration order, which
// encoding/json emits deterministically. Tenant, Deadline, MaxSteps and
// Workers are excluded: they say who wants the result, how long they'll
// wait, and how many cores to burn — not what the result is — so jobs
// differing only there share one cache entry.
func (j Job) Canonical() []byte {
	j.Tenant = ""
	j.Deadline = 0
	j.MaxSteps = 0
	j.Workers = 0
	b, err := json.Marshal(j)
	if err != nil {
		// Job has no cyclic or non-marshalable fields; this is unreachable.
		panic(fmt.Sprintf("serve: canonical marshal: %v", err))
	}
	return b
}

// Hash returns the content address of a normalized job: the hex SHA-256 of
// its canonical bytes.
func (j Job) Hash() string {
	sum := sha256.Sum256(j.Canonical())
	return hex.EncodeToString(sum[:])
}

// ParseJob decodes, validates and normalizes a JSON job request under the
// default resource limits. Unknown fields are rejected so that a typo
// ("scael") cannot silently select the default and collide with a
// different job's cache entry.
func ParseJob(data []byte) (Job, error) {
	return ParseJobLimits(data, Limits{})
}

// ParseJobLimits is ParseJob under server-configured resource caps.
func ParseJobLimits(data []byte, lim Limits) (Job, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var j Job
	if err := dec.Decode(&j); err != nil {
		return j, fmt.Errorf("job: parsing request: %v", err)
	}
	tenant := j.Tenant
	n, err := j.NormalizeLimits(lim)
	if err != nil {
		return n, err
	}
	n.Tenant = tenant
	return n, nil
}
