package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"

	"overd"
)

// Runner executes one job, reporting progress events along the way, and
// returns its artifacts. The context is the job's cancellation scope
// (DELETE /jobs/{id}, deadline expiry, server kill): a Runner should stop
// promptly once it is done and return ctx.Err(). The Server's default is
// RunJob; tests substitute stubs to script timing and failures without
// paying for real solves.
type Runner func(ctx context.Context, job Job, progress func(Event)) (*Artifacts, error)

// RunJob executes a normalized job through the real pipeline and assembles
// its cacheable artifacts: the tables JSON-lines document (the run's own
// rows plus any selected paper tables), the trace-summary JSON, and the
// metrics JSON. Every byte is a pure function of the job's canonical form —
// the property the content-addressed cache relies on.
//
// The context and the job's max_steps budget are threaded into the
// solver's Config.Interrupt hook, which rank 0 polls at step boundaries:
// a cancelled run stops at the next boundary, and a run that never trips
// the hook is bit-identical to one with no hook at all (the poll is
// host-side and charges nothing to the virtual clocks).
//
// progress (may be nil) receives one step event per completed timestep,
// carrying the step's virtual-time phase split and a live windowed-metrics
// snapshot (cumulative messages/bytes sent). The snapshot reads the run's
// registry mid-flight, which the registry's shard locks make safe and the
// bit-identity tests prove free.
func RunJob(ctx context.Context, job Job, progress func(Event)) (*Artifacts, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	mk, err := caseByName(job.Case)
	if err != nil {
		return nil, err
	}
	m, err := overd.MachineByName(job.Machine)
	if err != nil {
		return nil, err
	}
	fo := math.Inf(1) // canonical 0 means "dynamic balancing off"
	if job.Fo > 0 {
		fo = job.Fo
	}
	rec := overd.NewTraceRecorder()
	reg := overd.NewMetricsRegistry()
	cfg := overd.Config{
		Case: mk(job.Scale), Nodes: job.Nodes, Machine: m,
		Steps: job.Steps, Fo: fo, CheckInterval: job.CheckEvery,
		Balancer: job.Balancer,
		Faults:   job.Faults, CheckpointEvery: job.CheckpointEvery,
		Trace: rec, Metrics: reg,
		// Host-side parallelism bound; excluded from the cache key because
		// the runtime guarantees it cannot change a single artifact byte.
		Workers: job.Workers,
	}
	// The cancellation hook. Each poll marks one completed step, so the
	// monotonic count doubles as the max_steps budget meter (it keeps
	// counting across checkpoint-recovery attempts, which re-execute
	// steps). The final step of a run is never polled, so max_steps ==
	// steps lets a clean run finish.
	executed := 0
	cfg.Interrupt = func(step int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		executed++
		if job.MaxSteps > 0 && executed >= job.MaxSteps {
			return fmt.Errorf("max_steps budget of %d exhausted", job.MaxSteps)
		}
		return nil
	}
	if progress != nil {
		nodes := job.Nodes
		cfg.OnStep = func(step int, stats overd.StepStats, vclock float64) {
			snap := &StepSnapshot{
				Flow: stats.Flow, Motion: stats.Motion,
				Connect: stats.Connect, Balance: stats.Balance,
				IGBPs: stats.IGBPs, MaxF: stats.MaxF,
			}
			for rank := 0; rank < nodes; rank++ {
				snap.MsgsSent += reg.SumSeries("overd_par_msgs_sent_total", rank)
				snap.BytesSent += reg.SumSeries("overd_par_bytes_sent_total", rank)
			}
			progress(Event{Type: "step", Step: step, VClock: vclock, Snapshot: snap})
		}
	}
	res, err := overd.Run(cfg)
	if err != nil {
		return nil, err
	}

	var tables bytes.Buffer
	if err := overd.EmitRunJSON(&tables, res); err != nil {
		return nil, fmt.Errorf("serve: emitting run rows: %w", err)
	}
	if len(job.Tables) > 0 {
		want := make(map[string]bool, len(job.Tables))
		for _, id := range job.Tables {
			want[id] = true
		}
		opt := overd.Options{Scale: job.Scale, Steps: job.Steps}
		if err := overd.EmitTablesJSON(&tables, opt, want); err != nil {
			return nil, fmt.Errorf("serve: emitting tables %v: %w", job.Tables, err)
		}
	}

	traceJSON, err := json.MarshalIndent(rec.Summarize(), "", "  ")
	if err != nil {
		return nil, fmt.Errorf("serve: encoding trace summary: %w", err)
	}
	traceJSON = append(traceJSON, '\n')

	var metricsBuf bytes.Buffer
	if err := reg.WriteJSON(&metricsBuf); err != nil {
		return nil, fmt.Errorf("serve: encoding metrics: %w", err)
	}

	// The full virtual-time timeline, kept as an artifact so the span layer
	// can later merge the service's wall-clock spans next to it (GET
	// /jobs/{id}/spans?format=chrome) without re-running the solve. Like
	// every artifact it is a pure function of the canonical job.
	var chromeBuf bytes.Buffer
	if err := rec.WriteChromeTrace(&chromeBuf); err != nil {
		return nil, fmt.Errorf("serve: encoding chrome trace: %w", err)
	}

	return &Artifacts{
		Tables:  tables.Bytes(),
		Trace:   traceJSON,
		Metrics: metricsBuf.Bytes(),
		Chrome:  chromeBuf.Bytes(),
		Steps:   len(res.Steps) + res.RecoverySteps,
	}, nil
}
