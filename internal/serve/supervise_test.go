package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// waitStatus polls until the job reaches any terminal status.
func waitStatus(t *testing.T, s *Server, id string) JobStatus {
	t.Helper()
	js, ok := s.Job(id)
	if !ok {
		t.Fatalf("unknown job %s", id)
	}
	select {
	case <-js.done:
	case <-time.After(20 * time.Second):
		t.Fatalf("job %s never finished", id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return js.status
}

// TestWorkerPanicIsolated is the headline supervision test: a panicking
// runner marks its job failed — sanitized message, no stack — and the
// daemon keeps serving. Before this layer existed the panic killed the
// whole process, which is why the scenario was untestable.
func TestWorkerPanicIsolated(t *testing.T) {
	var logMu sync.Mutex
	var logged []string
	stub := func(_ context.Context, job Job, _ func(Event)) (*Artifacts, error) {
		if job.Steps == 13 {
			panic("index out of range [4096] with length 3\nsecret internal detail")
		}
		return art(job.Case, job.Steps), nil
	}
	_, ts := newTestServer(t, Config{
		Workers: 1, Runner: stub, RetryBackoff: time.Millisecond,
		Logf: func(format string, args ...any) {
			logMu.Lock()
			logged = append(logged, fmt.Sprintf(format, args...))
			logMu.Unlock()
		},
	})
	_, v := postJob(t, ts, `{"case":"airfoil","steps":13}`, "")
	done := waitDone(t, ts, v.ID)
	if done.Status != string(StatusFailed) {
		t.Fatalf("panicking job status = %q, want failed", done.Status)
	}
	if !strings.Contains(done.Error, "runner panic: index out of range") {
		t.Errorf("errMsg = %q, want the sanitized panic message", done.Error)
	}
	if strings.Contains(done.Error, "\n") || strings.Contains(done.Error, "goroutine") {
		t.Errorf("errMsg leaks raw panic detail: %q", done.Error)
	}
	logMu.Lock()
	if len(logged) == 0 || !strings.Contains(logged[0], "supervise_test.go") {
		t.Errorf("full stack should land in Logf, got %q", logged)
	}
	logMu.Unlock()

	// A panic is infrastructure-classified: one retry, which panics again.
	if got := promCounter(t, ts, "overd_serve_panics_total"); got != 2 {
		t.Errorf("panics_total = %g, want 2 (attempt + its one retry)", got)
	}
	if got := promCounter(t, ts, "overd_serve_retries_total"); got != 1 {
		t.Errorf("retries_total = %g, want 1", got)
	}
	if got := promCounter(t, ts, "overd_serve_jobs_failed_total"); got != 1 {
		t.Errorf("jobs_failed_total = %g, want 1", got)
	}

	// The daemon survived: the next job runs normally.
	_, v2 := postJob(t, ts, `{"case":"airfoil","steps":2}`, "")
	if done2 := waitDone(t, ts, v2.ID); done2.Status != string(StatusDone) {
		t.Fatalf("daemon did not survive the panic: next job %+v", done2)
	}
}

// TestPanicRetryRecovers: a transient panic (first invocation only) is
// healed by the single retry; the job completes with attempts = 2.
func TestPanicRetryRecovers(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	stub := func(_ context.Context, job Job, _ func(Event)) (*Artifacts, error) {
		mu.Lock()
		calls++
		first := calls == 1
		mu.Unlock()
		if first {
			panic("transient infrastructure hiccup")
		}
		return art(job.Case, job.Steps), nil
	}
	s, ts := newTestServer(t, Config{Workers: 1, Runner: stub, RetryBackoff: time.Millisecond})
	_ = s
	_, v := postJob(t, ts, `{"case":"airfoil","steps":3}`, "")
	done := waitDone(t, ts, v.ID)
	if done.Status != string(StatusDone) {
		t.Fatalf("job = %+v, want done after the retry", done)
	}
	resp, err := http.Get(ts.URL + "/jobs/" + v.ID)
	if err != nil {
		t.Fatal(err)
	}
	var full struct {
		Attempts int `json:"attempts"`
	}
	if err := jsonDecode(resp, &full); err != nil {
		t.Fatal(err)
	}
	if full.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", full.Attempts)
	}
	if got := promCounter(t, ts, "overd_serve_retries_total"); got != 1 {
		t.Errorf("retries_total = %g, want 1", got)
	}
}

// TestDeterministicErrorNotRetried: a plain runner error is deterministic
// — the same inputs would fail identically — so it gets no retry.
func TestDeterministicErrorNotRetried(t *testing.T) {
	var mu sync.Mutex
	calls := 0
	stub := func(_ context.Context, job Job, _ func(Event)) (*Artifacts, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		return nil, fmt.Errorf("solver diverged")
	}
	_, ts := newTestServer(t, Config{Workers: 1, Runner: stub, RetryBackoff: time.Millisecond})
	_, v := postJob(t, ts, `{"case":"airfoil"}`, "")
	if done := waitDone(t, ts, v.ID); done.Status != string(StatusFailed) {
		t.Fatalf("job = %+v, want failed", done)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Errorf("deterministic failure invoked the runner %d times, want 1", calls)
	}
}

// TestCancelQueuedJob: DELETE on a queued job removes it before it ever
// reaches a worker — 202, terminal "cancelled", result 409.
func TestCancelQueuedJob(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	var mu sync.Mutex
	ran := map[int]bool{}
	stub := func(_ context.Context, job Job, _ func(Event)) (*Artifacts, error) {
		mu.Lock()
		ran[job.Steps] = true
		mu.Unlock()
		started <- struct{}{}
		<-release
		return art(job.Case, job.Steps), nil
	}
	s, ts := newTestServer(t, Config{Workers: 1, Runner: stub})
	defer close(release)
	_, v1 := postJob(t, ts, `{"case":"airfoil","steps":1}`, "")
	<-started // worker pinned on job 1
	_, v2 := postJob(t, ts, `{"case":"airfoil","steps":2}`, "")

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+v2.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE queued job: status %d, want 202", resp.StatusCode)
	}
	if st := waitStatus(t, s, v2.ID); st != StatusCancelled {
		t.Fatalf("cancelled job status = %q", st)
	}
	r, err := http.Get(ts.URL + "/jobs/" + v2.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusConflict {
		t.Errorf("cancelled job result: status %d, want 409", r.StatusCode)
	}
	// Unknown id → 404; finishing the running job then DELETE → 409.
	req404, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/j-999999", nil)
	if resp, err := http.DefaultClient.Do(req404); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("DELETE unknown job: status %d, want 404", resp.StatusCode)
		}
	}
	release <- struct{}{}
	waitDone(t, ts, v1.ID)
	reqDone, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+v1.ID, nil)
	if resp, err := http.DefaultClient.Do(reqDone); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Errorf("DELETE finished job: status %d, want 409", resp.StatusCode)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if ran[2] {
		t.Error("cancelled queued job still reached the worker")
	}
	if got := promCounter(t, ts, "overd_serve_jobs_cancelled_total"); got != 1 {
		t.Errorf("jobs_cancelled_total = %g, want 1", got)
	}
}

// TestCancelRunningJob: DELETE on a running job cancels its context; a
// context-respecting runner winds down and the job lands "cancelled".
func TestCancelRunningJob(t *testing.T) {
	started := make(chan struct{}, 1)
	stub := func(ctx context.Context, job Job, _ func(Event)) (*Artifacts, error) {
		started <- struct{}{}
		<-ctx.Done()
		return nil, ctx.Err()
	}
	s, ts := newTestServer(t, Config{Workers: 1, Runner: stub})
	_, v := postJob(t, ts, `{"case":"airfoil"}`, "")
	<-started
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+v.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE running job: status %d, want 202", resp.StatusCode)
	}
	if st := waitStatus(t, s, v.ID); st != StatusCancelled {
		t.Fatalf("status after cancel = %q, want cancelled", st)
	}
	js, _ := s.Job(v.ID)
	s.mu.Lock()
	msg := js.errMsg
	s.mu.Unlock()
	if !strings.Contains(msg, "cancelled by request") {
		t.Errorf("errMsg = %q", msg)
	}
}

// TestDeadlineCancelsRun: a job whose wall budget expires mid-run is
// cancelled at the context deadline with a message naming the budget.
func TestDeadlineCancelsRun(t *testing.T) {
	stub := func(ctx context.Context, job Job, _ func(Event)) (*Artifacts, error) {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(20 * time.Second):
			return art(job.Case, job.Steps), nil
		}
	}
	s, ts := newTestServer(t, Config{Workers: 1, Runner: stub})
	_, v := postJob(t, ts, `{"case":"airfoil","deadline":0.05}`, "")
	if st := waitStatus(t, s, v.ID); st != StatusCancelled {
		t.Fatalf("status = %q, want cancelled on deadline expiry", st)
	}
	js, _ := s.Job(v.ID)
	s.mu.Lock()
	msg := js.errMsg
	s.mu.Unlock()
	if !strings.Contains(msg, "deadline of 0.05s exceeded") {
		t.Errorf("errMsg = %q", msg)
	}
	if got := promCounter(t, ts, "overd_serve_jobs_cancelled_total"); got != 1 {
		t.Errorf("jobs_cancelled_total = %g, want 1", got)
	}
}

// TestDeadlineLoadShedding: with the queue backed up past a job's
// deadline, admission refuses it with 503 + Retry-After instead of
// queueing doomed work — and a patient job is still accepted.
func TestDeadlineLoadShedding(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 32)
	stub := func(_ context.Context, job Job, _ func(Event)) (*Artifacts, error) {
		started <- struct{}{}
		<-release
		return art(job.Case, job.Steps), nil
	}
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 16, Runner: stub})
	defer close(release)
	_, _ = postJob(t, ts, `{"case":"airfoil","steps":1}`, "")
	<-started
	for i := 2; i <= 6; i++ {
		if resp, _ := postJob(t, ts, fmt.Sprintf(`{"case":"airfoil","steps":%d}`, i), ""); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("queue fill POST %d: status %d", i, resp.StatusCode)
		}
	}
	// Five queued jobs, one worker, no duration history → the estimate is
	// 5 × 1s / 1 = 5s. A 2-second deadline cannot be met.
	resp, v := postJob(t, ts, `{"case":"airfoil","steps":7,"deadline":2}`, "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("doomed job: status %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(v.Error, "exceeds the job's 2.0s deadline") {
		t.Errorf("503 body: %s", v.Error)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 {
		t.Errorf("503 Retry-After = %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	if got := promCounter(t, ts, "overd_serve_jobs_shed_total"); got != 1 {
		t.Errorf("jobs_shed_total = %g, want 1", got)
	}
	// Plenty of budget → accepted despite the same backlog.
	if resp, _ := postJob(t, ts, `{"case":"airfoil","steps":7,"deadline":600}`, ""); resp.StatusCode != http.StatusAccepted {
		t.Errorf("patient job: status %d, want 202", resp.StatusCode)
	}
}

// TestRetryAfterScalesWithBacklog pins the honest-backoff satellite: the
// 429's Retry-After grows with queue depth instead of sitting at a
// constant. With no duration history the estimate is 1s per queued job
// per worker.
func TestRetryAfterScalesWithBacklog(t *testing.T) {
	retryAfterAtDepth := func(depth int) int {
		release := make(chan struct{})
		started := make(chan struct{}, 32)
		stub := func(_ context.Context, job Job, _ func(Event)) (*Artifacts, error) {
			started <- struct{}{}
			<-release
			return art(job.Case, job.Steps), nil
		}
		_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: depth, Runner: stub})
		defer close(release)
		_, _ = postJob(t, ts, `{"case":"airfoil","steps":1}`, "")
		<-started
		for i := 0; i < depth; i++ {
			if resp, _ := postJob(t, ts, fmt.Sprintf(`{"case":"airfoil","steps":%d}`, i+2), ""); resp.StatusCode != http.StatusAccepted {
				t.Fatalf("fill POST %d: status %d", i, resp.StatusCode)
			}
		}
		resp, _ := postJob(t, ts, `{"case":"airfoil","steps":99}`, "")
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("overflow POST: status %d, want 429", resp.StatusCode)
		}
		ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil {
			t.Fatalf("Retry-After %q: %v", resp.Header.Get("Retry-After"), err)
		}
		return ra
	}
	shallow := retryAfterAtDepth(2) // ceil(1s × 3 / 1) = 3
	deep := retryAfterAtDepth(12)   // ceil(1s × 13 / 1) = 13
	if shallow != 3 || deep != 13 {
		t.Errorf("Retry-After = %d at depth 2 and %d at depth 12, want 3 and 13", shallow, deep)
	}
	if deep <= shallow {
		t.Errorf("Retry-After does not scale with backlog: %d then %d", shallow, deep)
	}
}

// TestEstQueueWaitDegenerateRing pins the shedding floor: a duration ring
// full of near-zero entries (instant cache hits, stub runners) must not
// estimate a zero wait for a deep backlog — that would silently disable
// deadline shedding exactly when the history is least representative. The
// floor applies only to the shedding estimate; Retry-After keeps tracking
// the true mean.
func TestEstQueueWaitDegenerateRing(t *testing.T) {
	s, err := NewServer(Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < durWindow; i++ {
		s.recordDurLocked(1e-6)
	}
	s.queued = 10

	if est := s.estQueueWaitLocked(); est < 10*minEstJobDur/2 {
		t.Errorf("degenerate ring: estimated wait %gs for 10 queued on 2 workers, want >= %g",
			est, 10*minEstJobDur/2)
	}
	if ra := s.retryAfterLocked(); ra != 1 {
		t.Errorf("Retry-After = %d with a near-zero mean, want the 1s clamp (floor must not leak here)", ra)
	}

	// A healthy ring is unaffected by the floor.
	s.durs = s.durs[:0]
	s.durNext = 0
	for i := 0; i < durWindow; i++ {
		s.recordDurLocked(4.0)
	}
	if est := s.estQueueWaitLocked(); est != 4.0*10/2 {
		t.Errorf("healthy ring: estimated wait %gs, want 20", est)
	}
}

// TestEventsSubscriberDisconnect pins the hardened /events path: a client
// that vanishes mid-stream is dropped — the handler goroutine exits and
// the subscriber gauge returns to zero — instead of leaking for the life
// of the job.
func TestEventsSubscriberDisconnect(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	stub := func(_ context.Context, job Job, progress func(Event)) (*Artifacts, error) {
		started <- struct{}{}
		<-release
		progress(Event{Type: "step", Step: 0})
		return art(job.Case, job.Steps), nil
	}
	s, ts := newTestServer(t, Config{Workers: 1, Runner: stub, EventWriteTimeout: 100 * time.Millisecond})
	_, v := postJob(t, ts, `{"case":"airfoil"}`, "")
	<-started

	resp, err := http.Get(ts.URL + "/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	// The stream is live (job still running): one subscriber registered.
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.subscribers == 1
	}, "subscriber registered")
	// Client walks away without reading to the end.
	resp.Body.Close()
	close(release)
	waitDone(t, ts, v.ID)
	waitFor(t, func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.subscribers == 0
	}, "subscriber released after disconnect")
}

// waitFor polls cond until it holds or the deadline lapses.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// jsonDecode decodes a response body and closes it.
func jsonDecode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}
