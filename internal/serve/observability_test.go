package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"
)

// spanViewResp mirrors the span.View JSON for decoding in tests.
type spanViewResp struct {
	ID              string  `json:"id"`
	Tenant          string  `json:"tenant"`
	Balancer        string  `json:"balancer"`
	Outcome         string  `json:"outcome"`
	Cache           string  `json:"cache"`
	Finished        bool    `json:"finished"`
	DurationSeconds float64 `json:"duration_seconds"`
	Spans           []struct {
		Stage           string            `json:"stage"`
		Start           time.Time         `json:"start"`
		DurationSeconds float64           `json:"duration_seconds"`
		Attrs           map[string]string `json:"attrs"`
	} `json:"spans"`
	Logs []struct {
		Text string `json:"text"`
	} `json:"logs"`
}

func getSpans(t *testing.T, ts *httptest.Server, id string) (int, spanViewResp) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/jobs/" + id + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v spanViewResp
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("decoding span view: %v", err)
		}
	}
	return resp.StatusCode, v
}

// statusResp mirrors the GET /status document for decoding in tests.
type statusResp struct {
	Service       string  `json:"service"`
	Incarnation   string  `json:"incarnation"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Workers       int     `json:"workers"`
	Draining      bool    `json:"draining"`
	Queue         struct {
		Depth    int `json:"depth"`
		Capacity int `json:"capacity"`
	} `json:"queue"`
	Running struct {
		Total    int            `json:"total"`
		ByTenant map[string]int `json:"by_tenant"`
	} `json:"running"`
	Jobs  map[string]float64 `json:"jobs"`
	Cache struct {
		Hits   int64 `json:"hits"`
		Misses int64 `json:"misses"`
	} `json:"cache"`
	Journal *struct {
		Open    bool  `json:"open"`
		Appends int64 `json:"appends"`
	} `json:"journal"`
	FlightRecorder struct {
		Enabled  bool `json:"enabled"`
		Resident int  `json:"resident"`
		Capacity int  `json:"capacity"`
	} `json:"flight_recorder"`
	RecentFailures []struct {
		ID     string `json:"id"`
		Tenant string `json:"tenant"`
		Status string `json:"status"`
		Error  string `json:"error"`
	} `json:"recent_failures"`
}

func getStatus(t *testing.T, ts *httptest.Server) statusResp {
	t.Helper()
	resp, err := http.Get(ts.URL + "/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /status: %d", resp.StatusCode)
	}
	var v statusResp
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding /status: %v", err)
	}
	return v
}

// TestSpanLifecycleEndToEnd runs one real job and checks that its span
// record tells the whole story: admit → queue → execute → publish, cache
// miss, outcome done, every duration non-negative, spans sorted by start.
func TestSpanLifecycleEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	_, v := postJob(t, ts, `{"case":"airfoil","nodes":4,"steps":2,"scale":0.05}`, "acme")
	waitDone(t, ts, v.ID)

	code, sv := getSpans(t, ts, v.ID)
	if code != http.StatusOK {
		t.Fatalf("GET spans: %d", code)
	}
	if sv.ID != v.ID || sv.Tenant != "acme" {
		t.Errorf("record identity = (%q, %q), want (%q, acme)", sv.ID, sv.Tenant, v.ID)
	}
	if !sv.Finished || sv.Outcome != "done" {
		t.Errorf("finished=%v outcome=%q, want finished done", sv.Finished, sv.Outcome)
	}
	if sv.Cache != "miss" {
		t.Errorf("cache disposition %q, want miss", sv.Cache)
	}
	if sv.DurationSeconds < 0 {
		t.Errorf("root duration %g < 0", sv.DurationSeconds)
	}
	got := make(map[string]int)
	for i, sp := range sv.Spans {
		got[sp.Stage]++
		if sp.DurationSeconds < 0 {
			t.Errorf("span %s duration %g < 0", sp.Stage, sp.DurationSeconds)
		}
		if i > 0 && sp.Start.Before(sv.Spans[i-1].Start) {
			t.Errorf("spans not sorted by start at index %d", i)
		}
	}
	for _, stage := range []string{"admit", "cache-lookup", "queue", "execute", "publish"} {
		if got[stage] == 0 {
			t.Errorf("no %s span in %v", stage, got)
		}
	}
	// The execute span carries its attempt number.
	for _, sp := range sv.Spans {
		if sp.Stage == "execute" && sp.Attrs["attempt"] != "1" {
			t.Errorf("execute attempt attr = %q, want 1", sp.Attrs["attempt"])
		}
	}

	// OnFinish fed the wall-clock histograms: both families expose samples.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`overd_serve_stage_seconds_count{stage="execute",outcome="done"}`,
		`overd_serve_job_seconds_count{outcome="done"}`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// TestStatusOverview checks the GET /status shape: identity, load, flight
// recorder residency, lifetime counters and the recent-failure ring.
func TestStatusOverview(t *testing.T) {
	stub := func(_ context.Context, job Job, _ func(Event)) (*Artifacts, error) {
		if job.Steps == 3 {
			return nil, fmt.Errorf("solver diverged")
		}
		return art("s", 8), nil
	}
	_, ts := newTestServer(t, Config{Workers: 1, JournalDir: t.TempDir(), Runner: stub})

	_, ok := postJob(t, ts, `{"case":"airfoil","steps":2}`, "acme")
	waitDone(t, ts, ok.ID)
	_, bad := postJob(t, ts, `{"case":"airfoil","steps":3}`, "acme")
	waitDone(t, ts, bad.ID)

	st := getStatus(t, ts)
	if st.Service != "overd-job-service" {
		t.Errorf("service = %q", st.Service)
	}
	if st.Incarnation == "" {
		t.Error("incarnation is empty")
	}
	if st.UptimeSeconds < 0 {
		t.Errorf("uptime %g < 0", st.UptimeSeconds)
	}
	if st.Workers != 1 || st.Draining {
		t.Errorf("workers=%d draining=%v", st.Workers, st.Draining)
	}
	if st.Queue.Capacity <= 0 {
		t.Errorf("queue capacity %d", st.Queue.Capacity)
	}
	if got := st.Jobs["accepted"]; got != 2 {
		t.Errorf("jobs.accepted = %g, want 2", got)
	}
	if got := st.Jobs["failed"]; got != 1 {
		t.Errorf("jobs.failed = %g, want 1", got)
	}
	if st.Journal == nil || !st.Journal.Open || st.Journal.Appends < 2 {
		t.Errorf("journal status = %+v, want open with >= 2 appends", st.Journal)
	}
	if !st.FlightRecorder.Enabled || st.FlightRecorder.Capacity != 64 {
		t.Errorf("flight recorder = %+v, want enabled cap 64", st.FlightRecorder)
	}
	if st.FlightRecorder.Resident != 2 {
		t.Errorf("flight resident = %d, want 2", st.FlightRecorder.Resident)
	}
	if len(st.RecentFailures) != 1 {
		t.Fatalf("recent failures = %+v, want exactly the failed job", st.RecentFailures)
	}
	f := st.RecentFailures[0]
	if f.ID != bad.ID || f.Status != "failed" || !strings.Contains(f.Error, "solver diverged") {
		t.Errorf("failure note = %+v", f)
	}
}

// TestFlightRecorderEviction bounds retention: with a 2-slot ring, the
// third finished job evicts the first, whose spans URL then answers 410.
func TestFlightRecorderEviction(t *testing.T) {
	stub := func(_ context.Context, job Job, _ func(Event)) (*Artifacts, error) {
		return art("e", 4), nil
	}
	_, ts := newTestServer(t, Config{Workers: 1, FlightRecorder: 2, Runner: stub})
	var ids []string
	for steps := 2; steps <= 4; steps++ {
		_, v := postJob(t, ts, fmt.Sprintf(`{"case":"airfoil","steps":%d}`, steps), "")
		waitDone(t, ts, v.ID)
		ids = append(ids, v.ID)
	}
	if code, _ := getSpans(t, ts, ids[0]); code != http.StatusGone {
		t.Errorf("evicted job spans: %d, want 410", code)
	}
	for _, id := range ids[1:] {
		if code, sv := getSpans(t, ts, id); code != http.StatusOK || !sv.Finished {
			t.Errorf("resident job %s spans: %d finished=%v", id, code, sv.Finished)
		}
	}
	if st := getStatus(t, ts); st.FlightRecorder.Resident != 2 || st.FlightRecorder.Capacity != 2 {
		t.Errorf("flight recorder = %+v, want 2/2", st.FlightRecorder)
	}
}

// TestSpansDisabled turns the layer off (FlightRecorder -1): jobs still
// run, the spans route 404s, and /status reports the layer disabled.
func TestSpansDisabled(t *testing.T) {
	stub := func(_ context.Context, job Job, _ func(Event)) (*Artifacts, error) {
		return art("d", 4), nil
	}
	_, ts := newTestServer(t, Config{Workers: 1, FlightRecorder: -1, Runner: stub})
	_, v := postJob(t, ts, `{"case":"airfoil","steps":2}`, "")
	if got := waitDone(t, ts, v.ID); got.Status != "done" {
		t.Fatalf("job with layer disabled: %+v", got)
	}
	if code, _ := getSpans(t, ts, v.ID); code != http.StatusNotFound {
		t.Errorf("spans with layer disabled: %d, want 404", code)
	}
	if st := getStatus(t, ts); st.FlightRecorder.Enabled {
		t.Error("/status reports flight recorder enabled")
	}
}

// TestSpansCacheHitAndUnknown covers the instant-finish path (a content-
// address hit never queues, so its record is admit+cache-lookup only) and
// the unknown-id 404.
func TestSpansCacheHitAndUnknown(t *testing.T) {
	stub := func(_ context.Context, job Job, _ func(Event)) (*Artifacts, error) {
		return art("h", 4), nil
	}
	_, ts := newTestServer(t, Config{Workers: 1, Runner: stub})
	_, first := postJob(t, ts, `{"case":"airfoil","steps":2}`, "")
	waitDone(t, ts, first.ID)
	resp, second := postJob(t, ts, `{"case":"airfoil","steps":2}`, "")
	if resp.StatusCode != http.StatusOK || second.Cache != "hit" {
		t.Fatalf("second POST: %d cache=%q, want 200 hit", resp.StatusCode, second.Cache)
	}
	code, sv := getSpans(t, ts, second.ID)
	if code != http.StatusOK {
		t.Fatalf("hit job spans: %d", code)
	}
	if !sv.Finished || sv.Outcome != "done" || sv.Cache != "hit" {
		t.Errorf("hit record = finished=%v outcome=%q cache=%q", sv.Finished, sv.Outcome, sv.Cache)
	}
	for _, sp := range sv.Spans {
		if sp.Stage == "execute" || sp.Stage == "queue" {
			t.Errorf("cache-hit record has a %s span", sp.Stage)
		}
	}
	if code, _ := getSpans(t, ts, "j-999999"); code != http.StatusNotFound {
		t.Errorf("unknown job spans: %d, want 404", code)
	}
}

// TestEventsSeqAndHeartbeat subscribes to a deliberately idle job with a
// short heartbeat interval: the stream must carry per-subscriber monotonic
// seq numbers, synthesize heartbeats while idle, and never store them (a
// post-hoc subscriber replays the log without any heartbeat lines).
func TestEventsSeqAndHeartbeat(t *testing.T) {
	release := make(chan struct{})
	stub := func(ctx context.Context, job Job, _ func(Event)) (*Artifacts, error) {
		select {
		case <-release:
			return art("b", 4), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	_, ts := newTestServer(t, Config{Workers: 1, Runner: stub, EventHeartbeat: 20 * time.Millisecond})
	_, v := postJob(t, ts, `{"case":"airfoil","steps":2}`, "")

	resp, err := http.Get(ts.URL + "/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	time.AfterFunc(150*time.Millisecond, func() { close(release) })

	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	heartbeats := 0
	for i, e := range events {
		if e.Seq != i {
			t.Fatalf("event %d has seq %d — not per-subscriber monotonic", i, e.Seq)
		}
		if e.Type == "heartbeat" {
			heartbeats++
		}
	}
	if heartbeats == 0 {
		t.Error("no heartbeat on a >=150ms idle stream with a 20ms interval")
	}
	if last := events[len(events)-1]; last.Type != "done" {
		t.Errorf("stream ended with %q, want done", last.Type)
	}

	// A late subscriber replays the stored log: no heartbeats in it, and
	// its own seq numbering restarts at 0.
	resp2, err := http.Get(ts.URL + "/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var replay []Event
	sc2 := bufio.NewScanner(resp2.Body)
	for sc2.Scan() {
		var e Event
		if err := json.Unmarshal(sc2.Bytes(), &e); err != nil {
			t.Fatal(err)
		}
		replay = append(replay, e)
	}
	for i, e := range replay {
		if e.Type == "heartbeat" {
			t.Error("heartbeat leaked into the stored event log")
		}
		if e.Seq != i {
			t.Fatalf("replay event %d has seq %d", i, e.Seq)
		}
	}
	if len(replay) != len(events)-heartbeats {
		t.Errorf("replay has %d events, want %d (live minus heartbeats)",
			len(replay), len(events)-heartbeats)
	}

	// Both subscriber windows landed as stream spans on the record.
	_, sv := getSpans(t, ts, v.ID)
	streams := 0
	for _, sp := range sv.Spans {
		if sp.Stage == "stream" {
			streams++
			if sp.Attrs["fate"] != "completed" {
				t.Errorf("stream span fate = %q, want completed", sp.Attrs["fate"])
			}
		}
	}
	if streams != 2 {
		t.Errorf("stream spans = %d, want 2 (one per subscriber)", streams)
	}
}

// TestStructuredLogCorrelation panics a runner and checks the flight
// record carries the correlated key=value line (stackless) while the sink
// still gets the full stack (supervise_test.go pins that separately).
func TestStructuredLogCorrelation(t *testing.T) {
	calls := 0
	stub := func(_ context.Context, job Job, _ func(Event)) (*Artifacts, error) {
		calls++
		if calls == 1 {
			panic("kaboom")
		}
		return nil, fmt.Errorf("deterministic failure")
	}
	_, ts := newTestServer(t, Config{Workers: 1, Runner: stub, RetryBackoff: time.Millisecond})
	_, v := postJob(t, ts, `{"case":"airfoil","steps":2}`, "acme")
	waitDone(t, ts, v.ID)

	_, sv := getSpans(t, ts, v.ID)
	var panicLine, retryLine string
	for _, l := range sv.Logs {
		if strings.Contains(l.Text, "event=panic") {
			panicLine = l.Text
		}
		if strings.Contains(l.Text, "event=retry") {
			retryLine = l.Text
		}
	}
	if panicLine == "" {
		t.Fatalf("no event=panic line in record logs: %+v", sv.Logs)
	}
	for _, want := range []string{"job_id=" + v.ID, "tenant=acme", "incarnation="} {
		if !strings.Contains(panicLine, want) {
			t.Errorf("panic line %q missing %q", panicLine, want)
		}
	}
	if strings.Contains(panicLine, "goroutine") {
		t.Error("stack leaked into the span-correlated log line")
	}
	if retryLine == "" {
		t.Errorf("no event=retry line in record logs: %+v", sv.Logs)
	}
	// Two execute spans: the panicked attempt and its retry.
	executes := 0
	for _, sp := range sv.Spans {
		if sp.Stage == "execute" {
			executes++
		}
	}
	if executes != 2 {
		t.Errorf("execute spans = %d, want 2 (attempt + retry)", executes)
	}
}

// TestMergedChromeTrace fetches ?format=chrome for a real job and re-parses
// the merged document: solver virtual time on pid 0, service wall clock on
// pid 1, both present and non-negative.
func TestMergedChromeTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	_, v := postJob(t, ts, `{"case":"airfoil","nodes":4,"steps":1,"scale":0.05}`, "")
	waitDone(t, ts, v.ID)

	resp, err := http.Get(ts.URL + "/jobs/" + v.ID + "/spans?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET spans?format=chrome: %d", resp.StatusCode)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Cat  string  `json:"cat"`
			PID  int     `json:"pid"`
			TID  int     `json:"tid"`
			TS   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("merged chrome trace does not re-parse: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("merged trace has no events")
	}
	pids := make(map[int]int)
	serviceSlices := 0
	for _, e := range doc.TraceEvents {
		pids[e.PID]++
		if e.Cat == "service" && e.Ph == "X" {
			serviceSlices++
			if e.TS < 0 || e.Dur < 0 {
				t.Errorf("service slice %q has negative ts/dur (%g, %g)", e.Name, e.TS, e.Dur)
			}
			if e.PID != 1 {
				t.Errorf("service slice %q on pid %d, want 1", e.Name, e.PID)
			}
		}
	}
	if pids[0] == 0 {
		t.Error("no solver virtual-time events (pid 0) in merged trace")
	}
	if pids[1] == 0 {
		t.Error("no service wall-clock events (pid 1) in merged trace")
	}
	if serviceSlices == 0 {
		t.Error("no service duration slices in merged trace")
	}
}

// TestServeBitIdenticalWithSpans is the determinism contract for the third
// observability plane: the same job run with the span layer attached and
// detached yields byte-identical tables artifacts, and the table-4 rows
// still match the repo golden — the wall-clock plane cannot move a
// virtual-time bit.
func TestServeBitIdenticalWithSpans(t *testing.T) {
	if testing.Short() {
		t.Skip("table sweep; skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("two real table-4 solves; too slow under the race detector")
	}
	want, err := os.ReadFile("../../testdata/tables_scale005_steps2.jsonl")
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	const body = `{"case":"airfoil","nodes":4,"steps":2,"scale":0.05,"tables":["4"]}`
	run := func(cfg Config) []byte {
		_, ts := newTestServer(t, cfg)
		_, v := postJob(t, ts, body, "")
		waitDone(t, ts, v.ID)
		return getArtifact(t, ts, v.ID, "tables")
	}
	withSpans := run(Config{Workers: 1})
	withoutSpans := run(Config{Workers: 1, FlightRecorder: -1})
	if !bytes.Equal(withSpans, withoutSpans) {
		t.Fatal("tables artifact changed when the span layer was attached")
	}
	rows := 0
	for _, line := range bytes.Split(bytes.TrimSpace(withSpans), []byte("\n")) {
		if !bytes.HasPrefix(line, []byte(`{"table":"4"`)) {
			continue
		}
		rows++
		if !bytes.Contains(want, line) {
			t.Fatalf("table-4 line not found in golden: %s", line)
		}
	}
	if rows == 0 {
		t.Fatal("no table-4 rows in the tables artifact")
	}
}
